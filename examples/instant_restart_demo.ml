(* The ICDE'16 demonstration, in miniature: load the same dataset into a
   log-based engine and into Hyrise-NV, pull the plug on both, and watch
   one replay its log while the other restarts instantly.

   The demo paper's headline: a 92.2 GB dataset recovers in ~53 s from the
   log but in < 1 s from NVM. We reproduce the *shape* at laptop scale —
   log recovery grows linearly with the dataset, NVM recovery does not.

     dune exec examples/instant_restart_demo.exe -- [scale]   (default 3) *)

module Engine = Core.Engine
module Region = Nvm.Region
module Ycsb = Workload.Ycsb
module Prng = Util.Prng
module Tabular = Util.Tabular

let tmpdir () =
  let d = Filename.temp_file "instant_restart" "" in
  Sys.remove d;
  d

let now_ns () = Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1e9))

let load_and_crash ~mk_engine ~rows =
  let engine = mk_engine () in
  let cfg = { Ycsb.default_config with rows; fields = 4; field_length = 64 } in
  let sess = Ycsb.setup engine (Prng.create 42L) cfg in
  ignore (Ycsb.run sess (Prng.create 43L) ~ops:(rows / 10));
  let bytes = Engine.data_bytes engine in
  let log = Engine.log_bytes engine in
  let crashed = Engine.crash engine Region.Drop_unfenced in
  let t0 = now_ns () in
  let engine, stats = Engine.recover crashed in
  let wall = now_ns () - t0 in
  let sess = Ycsb.attach engine cfg in
  let recovered_rows = Ycsb.row_count sess in
  (wall, stats, bytes, log, recovered_rows)

let () =
  let scale =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 3
  in
  let table =
    Tabular.create ~title:"instant restart: log-based vs Hyrise-NV"
      [
        ("rows", Tabular.Right);
        ("data on NVM", Tabular.Right);
        ("log bytes", Tabular.Right);
        ("log recovery", Tabular.Right);
        ("NVM recovery", Tabular.Right);
        ("speedup", Tabular.Right);
      ]
  in
  let base_rows = 2_000 in
  for s = 0 to scale - 1 do
    let rows = base_rows * (1 lsl s) in
    let size = 64 * 1024 * 1024 * (1 lsl s) in
    Printf.printf "scale %d: loading %d rows twice (log engine, NVM engine) ...\n%!"
      s rows;
    let log_wall, _, _, log_sz, log_rows =
      load_and_crash ~rows ~mk_engine:(fun () ->
          Engine.create
            {
              Engine.region = Region.config_with_size size;
              durability =
                Engine.Logging
                  { Wal.Log.dir = tmpdir (); group_commit_size = 8; fsync = false };
              salvage = None;
            })
    in
    let nvm_wall, nvm_stats, bytes, _, nvm_rows =
      load_and_crash ~rows ~mk_engine:(fun () ->
          Engine.create (Engine.default_config ~size Engine.Nvm))
    in
    assert (abs (log_rows - nvm_rows) <= 8 (* group-commit window *));
    Tabular.add_row table
      [
        Tabular.fmt_int rows;
        Tabular.fmt_bytes bytes;
        Tabular.fmt_bytes log_sz;
        Tabular.fmt_ns log_wall;
        Tabular.fmt_ns nvm_wall;
        Printf.sprintf "%.0fx" (float_of_int log_wall /. float_of_int nvm_wall);
      ];
    match nvm_stats.Engine.detail with
    | Engine.Rv_nvm { heap_open_ns; attach_ns; rollback_ns; _ } ->
        Printf.printf
          "  NVM breakdown: heap %s, attach %s, rollback %s\n%!"
          (Tabular.fmt_ns heap_open_ns) (Tabular.fmt_ns attach_ns)
          (Tabular.fmt_ns rollback_ns)
    | _ -> ()
  done;
  print_newline ();
  Tabular.print table;
  print_endline
    "log recovery grows with the dataset; Hyrise-NV's does not (the paper's\n\
     92.2 GB instance: 53 s from the log, < 1 s from NVM)."
