(* Unit and property tests for the deterministic PRNG, histograms and the
   table renderer. *)

open Util

let test_prng_determinism () =
  let a = Prng.create 42L and b = Prng.create 42L in
  for _ = 1 to 1000 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_copy () =
  let a = Prng.create 7L in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  for _ = 1 to 100 do
    Alcotest.(check int64) "copy continues stream" (Prng.next_int64 a)
      (Prng.next_int64 b)
  done

let test_prng_split_independent () =
  let a = Prng.create 1L in
  let b = Prng.split a in
  let xa = Prng.next_int64 a and xb = Prng.next_int64 b in
  Alcotest.(check bool) "split streams differ" true (xa <> xb)

let test_prng_bounds () =
  let rng = Prng.create 3L in
  for _ = 1 to 10_000 do
    let v = Prng.int rng 17 in
    Alcotest.(check bool) "int in bounds" true (v >= 0 && v < 17);
    let v = Prng.int_in rng (-5) 5 in
    Alcotest.(check bool) "int_in in bounds" true (v >= -5 && v <= 5);
    let f = Prng.float rng 2.5 in
    Alcotest.(check bool) "float in bounds" true (f >= 0.0 && f < 2.5)
  done

let test_prng_uniformity () =
  (* chi-square-ish sanity: each of 8 buckets within 20% of expectation *)
  let rng = Prng.create 99L in
  let buckets = Array.make 8 0 in
  let n = 80_000 in
  for _ = 1 to n do
    let v = Prng.int rng 8 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "bucket near uniform" true
        (abs (c - (n / 8)) < n / 40))
    buckets

let test_alpha_string () =
  let rng = Prng.create 5L in
  let s = Prng.alpha_string rng 64 in
  Alcotest.(check int) "length" 64 (String.length s);
  String.iter
    (fun c -> Alcotest.(check bool) "lowercase" true (c >= 'a' && c <= 'z'))
    s

let test_shuffle_permutation () =
  let rng = Prng.create 11L in
  let a = Array.init 100 Fun.id in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 100 Fun.id) sorted

let test_zipf_bounds_and_skew () =
  let rng = Prng.create 21L in
  let g = Prng.Zipf.create ~n:1000 ~theta:0.99 in
  let counts = Array.make 1000 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let v = Prng.Zipf.draw g rng in
    Alcotest.(check bool) "zipf in range" true (v >= 0 && v < 1000);
    counts.(v) <- counts.(v) + 1
  done;
  (* item 0 must be the hottest and carry far more than uniform share *)
  let hottest = Array.fold_left max 0 counts in
  Alcotest.(check int) "item 0 is hottest" hottest counts.(0);
  Alcotest.(check bool) "strongly skewed" true (counts.(0) > 10 * (n / 1000))

let test_histogram_basic () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "count" 5 (Histogram.count h);
  Alcotest.(check int) "total" 15 (Histogram.total h);
  Alcotest.(check int) "min" 1 (Histogram.min_value h);
  Alcotest.(check int) "max" 5 (Histogram.max_value h);
  Alcotest.(check (float 0.001)) "mean" 3.0 (Histogram.mean h);
  Alcotest.(check int) "p100 = max" 5 (Histogram.percentile h 100.0)

let test_histogram_empty_raises () =
  let h = Histogram.create () in
  Alcotest.check_raises "mean on empty"
    (Invalid_argument "Histogram.mean: empty") (fun () ->
      ignore (Histogram.mean h))

let test_histogram_percentile_monotone () =
  let rng = Prng.create 77L in
  let h = Histogram.create () in
  for _ = 1 to 10_000 do
    Histogram.record h (Prng.int rng 1_000_000)
  done;
  let prev = ref 0 in
  List.iter
    (fun p ->
      let v = Histogram.percentile h p in
      Alcotest.(check bool) "monotone percentiles" true (v >= !prev);
      prev := v)
    [ 1.0; 10.0; 25.0; 50.0; 75.0; 90.0; 99.0; 99.9; 100.0 ]

let test_histogram_accuracy () =
  (* bucket error for large values stays within ~2% *)
  let h = Histogram.create () in
  let v = 1_000_000 in
  Histogram.record h v;
  let p = Histogram.percentile h 50.0 in
  Alcotest.(check bool) "2% relative accuracy" true
    (p >= v && float_of_int (p - v) /. float_of_int v < 0.02)

let test_histogram_quantile_exact () =
  (* a single repeated value is reported exactly at every quantile — in
     particular around the 127/128 linear->log bucket boundary, where
     upper-edge reporting used to answer 129 for a distribution of pure
     128s *)
  List.iter
    (fun v ->
      let h = Histogram.create () in
      for _ = 1 to 100 do
        Histogram.record h v
      done;
      Alcotest.(check int) "p50 exact" v (Histogram.percentile h 50.0);
      Alcotest.(check int) "p99 exact" v (Histogram.percentile h 99.0);
      Alcotest.(check int) "p100 = max" v (Histogram.percentile h 100.0);
      Alcotest.(check int) "quantile = percentile" v (Histogram.quantile h 0.5))
    [ 1; 127; 128; 129; 1000; 1_000_000 ]

let test_histogram_quantile_boundary_mix () =
  (* 3x127 + 1x128 straddles the linear cutoff *)
  let h = Histogram.create () in
  Histogram.record_n h 127 3;
  Histogram.record h 128;
  Alcotest.(check int) "p50" 127 (Histogram.percentile h 50.0);
  Alcotest.(check int) "p75" 127 (Histogram.percentile h 75.0);
  Alcotest.(check int) "p99 = max" 128 (Histogram.percentile h 99.0);
  Alcotest.(check int) "max" 128 (Histogram.max_value h);
  (* 128 and 129 share a log bucket: its representative is the LOWER
     edge, so p50 must not overstate to 129 *)
  let h2 = Histogram.create () in
  Histogram.record h2 128;
  Histogram.record h2 129;
  Alcotest.(check int) "lower edge, not upper" 128 (Histogram.percentile h2 50.0);
  Alcotest.(check int) "top rank is exact max" 129 (Histogram.percentile h2 100.0)

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.record a 10;
  Histogram.record b 20;
  Histogram.merge_into ~src:a ~dst:b;
  Alcotest.(check int) "merged count" 2 (Histogram.count b);
  Alcotest.(check int) "merged total" 30 (Histogram.total b);
  Alcotest.(check int) "merged min" 10 (Histogram.min_value b)

let test_histogram_clear () =
  let h = Histogram.create () in
  Histogram.record h 3;
  Histogram.clear h;
  Alcotest.(check int) "cleared" 0 (Histogram.count h)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_tabular_render () =
  let t =
    Tabular.create ~title:"demo"
      [ ("name", Tabular.Left); ("value", Tabular.Right) ]
  in
  Tabular.add_row t [ "rows"; "1,000" ];
  Tabular.add_separator t;
  Tabular.add_row t [ "bytes"; "42" ];
  let s = Tabular.render t in
  Alcotest.(check bool) "has title" true
    (String.length s > 3 && String.sub s 0 3 = "== ");
  Alcotest.(check bool) "right alignment pads 42" true (contains s "    42 |")

let test_tabular_mismatch () =
  let t = Tabular.create ~title:"x" [ ("a", Tabular.Left) ] in
  Alcotest.check_raises "cell count"
    (Invalid_argument "Tabular.add_row: cell count mismatch") (fun () ->
      Tabular.add_row t [ "1"; "2" ])

let test_formatters () =
  Alcotest.(check string) "fmt_int" "1,234,567" (Tabular.fmt_int 1234567);
  Alcotest.(check string) "fmt_int negative" "-1,000" (Tabular.fmt_int (-1000));
  Alcotest.(check string) "fmt_int small" "42" (Tabular.fmt_int 42);
  Alcotest.(check string) "fmt_bytes" "1.00 KiB" (Tabular.fmt_bytes 1024);
  Alcotest.(check string) "fmt_bytes gib" "2.00 GiB"
    (Tabular.fmt_bytes (2 * 1024 * 1024 * 1024));
  Alcotest.(check string) "fmt_ns us" "1.50 us" (Tabular.fmt_ns 1500);
  Alcotest.(check string) "fmt_ns s" "2.00 s" (Tabular.fmt_ns 2_000_000_000);
  Alcotest.(check string) "fmt_float" "3.14" (Tabular.fmt_float 3.14159)

(* -- qcheck properties -- *)

let prop_histogram_percentile_bounds =
  QCheck.Test.make ~name:"histogram percentile within [min,max]" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 200) (int_bound 10_000_000))
    (fun values ->
      let h = Histogram.create () in
      List.iter (Histogram.record h) values;
      let p50 = Histogram.percentile h 50.0 in
      p50 >= Histogram.min_value h && p50 <= Histogram.max_value h)

let prop_histogram_count_total =
  QCheck.Test.make ~name:"histogram count/total match input" ~count:200
    QCheck.(list (int_bound 1_000_000))
    (fun values ->
      let h = Histogram.create () in
      List.iter (Histogram.record h) values;
      Histogram.count h = List.length values
      && Histogram.total h = List.fold_left ( + ) 0 values)

let prop_prng_int_bound =
  QCheck.Test.make ~name:"prng int respects bound" ~count:500
    QCheck.(pair int64 (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Prng.create seed in
      let v = Prng.int rng bound in
      v >= 0 && v < bound)

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "split independence" `Quick
            test_prng_split_independent;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "uniformity" `Quick test_prng_uniformity;
          Alcotest.test_case "alpha_string" `Quick test_alpha_string;
          Alcotest.test_case "shuffle is permutation" `Quick
            test_shuffle_permutation;
          Alcotest.test_case "zipf bounds and skew" `Quick
            test_zipf_bounds_and_skew;
          QCheck_alcotest.to_alcotest prop_prng_int_bound;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "basic stats" `Quick test_histogram_basic;
          Alcotest.test_case "empty raises" `Quick test_histogram_empty_raises;
          Alcotest.test_case "percentile monotone" `Quick
            test_histogram_percentile_monotone;
          Alcotest.test_case "bucket accuracy" `Quick test_histogram_accuracy;
          Alcotest.test_case "quantiles exact" `Quick test_histogram_quantile_exact;
          Alcotest.test_case "linear/log boundary" `Quick
            test_histogram_quantile_boundary_mix;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "clear" `Quick test_histogram_clear;
          QCheck_alcotest.to_alcotest prop_histogram_percentile_bounds;
          QCheck_alcotest.to_alcotest prop_histogram_count_total;
        ] );
      ( "tabular",
        [
          Alcotest.test_case "render" `Quick test_tabular_render;
          Alcotest.test_case "row mismatch" `Quick test_tabular_mismatch;
          Alcotest.test_case "formatters" `Quick test_formatters;
        ] );
    ]
