(* Serve-while-salvaging: segment-granular quarantine and query-driven
   online restore (PROTOCOLS.md §15).

   Deterministic halves pin the acceptance contract: after wounding one
   segment of a two-segment table, a point read in a healthy segment
   answers correctly before any salvage runs; the first touch of the
   damaged segment repairs exactly that segment; writes gate
   restore-then-apply; the background drain walks what queries never
   asked for; and the blackbox timeline shows [engine-ready] preceding
   [full-health] with [segment-salvaged] events between.

   The differential fuzzer is the confluence gate: for each seed it
   wounds a crashed image with Corrupt_range / Torn_word faults, then
   runs the same scan+write schedule on two recoveries of that image —
   one serving *during* restore (demand gates, write gates, interleaved
   background steps), one fully drained before serving — under an armed
   persist-order sanitizer at jobs 1/2/4. Query results must match the
   row oracle on both, and when no structural rebuild reallocates the
   table, the final media digests must be byte-identical: online restore
   order is invisible to the durable image. *)

module E = Core.Engine
module Region = Nvm.Region
module Seal = Nvm.Seal
module A = Nvm_alloc.Allocator
module Pbitvec = Pstruct.Pbitvec
module Value = Storage.Value
module Schema = Storage.Schema
module Table = Storage.Table
module Predicate = Query.Predicate
module Prng = Util.Prng

let mib = 1024 * 1024

let tmpdir () =
  let d = Filename.temp_file "restoretest" "" in
  Sys.remove d;
  d

let counter name = Obs.counter_value (Obs.counter name)

let with_jobs n f =
  let was = Par.jobs () in
  Par.set_jobs n;
  Fun.protect ~finally:(fun () -> Par.set_jobs was) f

let kv_schema =
  [| Schema.column ~indexed:true "k" Value.Int_t; Schema.column "v" Value.Text_t |]

let kv k v = [| Value.Int k; Value.Text v |]

let salvage_config () =
  { Wal.Log.dir = tmpdir (); group_commit_size = 1; fsync = false }

let nvm_engine ?salvage ?(size = 16 * mib) () =
  E.create ~sanitize:true (E.default_config ~size ?salvage E.Nvm)

let dump e name =
  E.with_txn e (fun txn ->
      List.sort compare
        (List.map snd (E.select e txn name ~where:(fun _ -> true))))

(* -------- deterministic: a two-segment table with one wounded segment ---- *)

let seg = Table.segment_rows (* 4096 *)
let big_rows = seg + 1500 (* rows 0..5595: segment 0 full, segment 1 partial *)

(* one table, [big_rows] rows, batched commits, merged to main *)
let populate_big e =
  E.create_table e ~name:"t" kv_schema;
  let i = ref 0 in
  while !i < big_rows do
    E.with_txn e (fun txn ->
        for _ = 1 to 250 do
          if !i < big_rows then begin
            ignore (E.insert e txn "t" (kv !i (Printf.sprintf "row-%05d" !i)));
            incr i
          end
        done)
  done;
  ignore (E.checkpoint e)

(* byte offset of the first payload word of main-avec segment [s] for
   column 0 ("k") — the same arithmetic recovery uses to map a fault
   offset back to a segment (Pbitvec layout: header 24B, then packed
   words; 4096 entries * bits is always word-aligned) *)
let avec_seg_payload e s =
  let ctrl = Table.handle (E.table e "t") in
  let h = Seal.read (E.region e) ~what:"main avec handle" (ctrl + 64 + 24) in
  let bits = Pbitvec.bits (Pbitvec.attach (E.allocator e) h) in
  Alcotest.(check bool) "packed column is non-trivial" true (bits > 0);
  h + 24 + (s * seg * bits / 64 * 8)

let flip region ~off ~bit =
  let rng = Prng.create 1L in
  Region.inject_fault region rng (Region.Flip_bit { off; bit })

let wound_and_recover ?(segs = [ 1 ]) () =
  let e = nvm_engine ~salvage:(salvage_config ()) () in
  populate_big e;
  let oracle = dump e "t" in
  let offs = List.map (fun s -> avec_seg_payload e s) segs in
  let region = E.region e in
  let crashed = E.crash e Region.Drop_unfenced in
  List.iter (fun off -> flip region ~off ~bit:2) offs;
  let e2, rs = E.recover ~verify:`Deep crashed in
  (match rs.E.detail with
  | E.Rv_nvm { quarantined; salvaged; deferred; heap_reset; _ } ->
      Alcotest.(check (list string)) "nothing quarantined" [] quarantined;
      Alcotest.(check (list string)) "nothing rebuilt eagerly" [] salvaged;
      Alcotest.(check (list (pair string (list int))))
        "exactly the wounded segments deferred" [ ("t", segs) ] deferred;
      Alcotest.(check bool) "instant restart kept" false heap_reset
  | _ -> Alcotest.fail "expected Rv_nvm");
  (e2, oracle)

let test_healthy_segment_serves_first () =
  with_jobs 1 @@ fun () ->
  let e2, oracle = wound_and_recover () in
  let s0 = counter "media.segment.salvaged" in
  (* point reads inside healthy segment 0: correct rows, zero salvage *)
  E.with_txn e2 (fun txn ->
      List.iter
        (fun r ->
          match E.get_row e2 txn "t" r with
          | Some row ->
              Alcotest.(check bool)
                (Printf.sprintf "row %d correct before any salvage" r)
                true
                (row = List.nth oracle r)
          | None -> Alcotest.failf "healthy row %d not visible" r)
        [ 0; 100; seg - 1 ]);
  Alcotest.(check int) "no segment salvaged by healthy reads" s0
    (counter "media.segment.salvaged");
  Alcotest.(check bool) "damage still pending" true
    ((E.blackbox e2).E.full_health_ns = None);
  (* first touch of the damaged segment: exactly one bounded repair *)
  E.with_txn e2 (fun txn ->
      match E.get_row e2 txn "t" (seg + 700) with
      | Some row ->
          Alcotest.(check bool) "restored row correct" true
            (row = List.nth oracle (seg + 700))
      | None -> Alcotest.fail "restored row not visible");
  Alcotest.(check int) "exactly one segment salvaged" (s0 + 1)
    (counter "media.segment.salvaged");
  Alcotest.(check (list (pair string (list int)))) "map drained" []
    (E.quarantined_segments e2);
  (* timeline: engine-ready .. segment-salvaged .. full-health, in order *)
  let bb = E.blackbox e2 in
  Alcotest.(check bool) "full health announced" true
    (bb.E.full_health_ns <> None);
  let pos k =
    let rec go i = function
      | [] -> -1
      | ev :: tl -> if ev.Obs.Event.kind = k then i else go (i + 1) tl
    in
    go 0 bb.E.restart
  in
  let ready = pos Obs.Event.Engine_ready
  and salv = pos Obs.Event.Segment_salvaged
  and health = pos Obs.Event.Full_health in
  Alcotest.(check bool) "engine-ready < segment-salvaged < full-health" true
    (ready >= 0 && salv > ready && health > salv);
  (* the whole table now equals the pre-crash oracle *)
  Alcotest.(check bool) "table equals oracle" true (dump e2 "t" = oracle)

let test_scan_touching_damage_heals_it () =
  with_jobs 1 @@ fun () ->
  let e2, oracle = wound_and_recover () in
  let s0 = counter "media.segment.salvaged" in
  (* a gated block scan walks every block, so it demand-heals the one
     damaged segment on the way through — and returns oracle rows *)
  let got =
    E.with_txn e2 (fun txn ->
        List.sort compare
          (List.map snd
             (E.where e2 txn "t" [ ("k", Predicate.Cmp (Ge, Value.Int 0)) ])))
  in
  Alcotest.(check bool) "gated scan equals oracle" true (got = oracle);
  Alcotest.(check int) "scan healed exactly the damaged segment" (s0 + 1)
    (counter "media.segment.salvaged");
  Alcotest.(check (list (pair string (list int)))) "map drained" []
    (E.quarantined_segments e2)

let test_write_gate_restores_then_applies () =
  with_jobs 1 @@ fun () ->
  let e2, oracle = wound_and_recover ~segs:[ 0 ] () in
  let w0 = counter "media.segment.write_gated" in
  let s0 = counter "media.segment.salvaged" in
  (* update a row inside the damaged segment: the write gate must
     restore the segment before the new version lands, or the later
     twin copy would clobber the committed write. Row id = key here
     (sequential load, no deletes) — a lookup would heal the table
     through the read gate first and hide the write gate. *)
  E.with_txn e2 (fun txn -> ignore (E.update e2 txn "t" 42 (kv 42 "rewritten")));
  Alcotest.(check bool) "write gate fired" true
    (counter "media.segment.write_gated" > w0);
  Alcotest.(check bool) "segment restored by the gate" true
    (counter "media.segment.salvaged" > s0);
  let expect =
    List.sort compare
      (kv 42 "rewritten"
      :: List.filter (fun row -> row.(0) <> Value.Int 42) oracle)
  in
  Alcotest.(check bool) "update visible over restored segment" true
    (dump e2 "t" = expect);
  Alcotest.(check (list (pair string (list int)))) "map drained" []
    (E.quarantined_segments e2)

let test_background_drain_lowest_priority () =
  with_jobs 1 @@ fun () ->
  let e2, oracle = wound_and_recover ~segs:[ 0; 1 ] () in
  let b0 = counter "media.segment.background" in
  Alcotest.(check (list (pair string (list int)))) "both segments pending"
    [ ("t", [ 0; 1 ]) ]
    (E.quarantined_segments e2);
  Alcotest.(check bool) "one step repairs one segment" true (E.restore_step e2);
  Alcotest.(check (list (pair string (list int)))) "ascending order"
    [ ("t", [ 1 ]) ]
    (E.quarantined_segments e2);
  Alcotest.(check bool) "second step" true (E.restore_step e2);
  Alcotest.(check (list (pair string (list int)))) "drained" []
    (E.quarantined_segments e2);
  Alcotest.(check bool) "idle drain reports empty" false (E.restore_step e2);
  Alcotest.(check int) "both counted as background work" (b0 + 2)
    (counter "media.segment.background");
  Alcotest.(check bool) "full health announced" true
    ((E.blackbox e2).E.full_health_ns <> None);
  Alcotest.(check bool) "table equals oracle" true (dump e2 "t" = oracle)

let test_structural_damage_rebuilds_on_first_write () =
  with_jobs 1 @@ fun () ->
  let e = nvm_engine ~salvage:(salvage_config ()) () in
  populate_big e;
  let oracle = dump e "t" in
  let ctrl = Table.handle (E.table e "t") in
  let region = E.region e in
  let crashed = E.crash e Region.Drop_unfenced in
  flip region ~off:(ctrl + 16) ~bit:3;
  (* control word: nothing a row range can name *)
  let t0 = counter "media.salvaged_tables" in
  let e2, rs = E.recover ~verify:`Deep crashed in
  (match rs.E.detail with
  | E.Rv_nvm { deferred; quarantined; _ } ->
      Alcotest.(check (list (pair string (list int))))
        "structural damage deferred whole-table" [ ("t", []) ] deferred;
      Alcotest.(check (list string)) "not quarantined" [] quarantined
  | _ -> Alcotest.fail "expected Rv_nvm");
  Alcotest.(check int) "no rebuild at recovery" t0
    (counter "media.salvaged_tables");
  (* an append must swap in the rebuild first — otherwise the row would
     land on the doomed generation and vanish at the rebuild *)
  E.with_txn e2 (fun txn ->
      ignore (E.insert e2 txn "t" (kv 777_000 "post-restart")));
  Alcotest.(check int) "first write triggered the rebuild" (t0 + 1)
    (counter "media.salvaged_tables");
  Alcotest.(check bool) "rebuilt table = oracle + the new row" true
    (dump e2 "t" = List.sort compare (kv 777_000 "post-restart" :: oracle))

(* -------- differential fuzz: online restore vs offline drain -------- *)

(* two tables, alternating keys, a few in-batch deletes; the model
   hashtables mirror exactly what is committed *)
let populate_pair e model rows =
  E.create_table e ~name:"a" kv_schema;
  E.create_table e ~name:"b" kv_schema;
  let i = ref 0 in
  while !i < rows do
    E.with_txn e (fun txn ->
        for _ = 1 to 50 do
          if !i < rows then begin
            let k = !i in
            let t = if k land 1 = 0 then "a" else "b" in
            let row = kv k (Printf.sprintf "value-%05d" k) in
            let r = E.insert e txn t row in
            if k mod 7 = 3 then E.delete e txn t r
            else Hashtbl.replace model (t, k) row;
            incr i
          end
        done)
  done;
  ignore (E.checkpoint e)

let model_rows model t pred =
  Hashtbl.fold
    (fun (t', k) row acc -> if t' = t && pred k then row :: acc else acc)
    model []
  |> List.sort compare

let used_extent e =
  List.fold_left
    (fun acc (b : A.block_info) ->
      if b.state = `Allocated then max acc (b.offset + b.size) else acc)
    4096
    (A.blocks (E.allocator e))

(* the shared schedule: writes first (so write gates see damage before a
   scan heals everything), then gated scans, with [step] interleaved —
   the online engine passes a background [restore_step] tick, the
   drained engine a no-op of identical transaction shape *)
let run_schedule e model rows seed ~targets =
  let step () = ignore (E.restore_step e) in
  let upd_a, del_a, upd_b, del_b = targets in
  E.with_txn e (fun txn ->
      ignore (E.insert e txn "a" (kv (rows + seed) "fresh-a")));
  Hashtbl.replace model ("a", rows + seed) (kv (rows + seed) "fresh-a");
  step ();
  E.with_txn e (fun txn -> ignore (E.update e txn "a" upd_a (kv 2 "upd-a")));
  Hashtbl.replace model ("a", 2) (kv 2 "upd-a");
  step ();
  E.with_txn e (fun txn -> E.delete e txn "a" del_a);
  Hashtbl.remove model ("a", 4);
  E.with_txn e (fun txn ->
      ignore (E.insert e txn "b" (kv (rows + seed + 1) "fresh-b")));
  Hashtbl.replace model ("b", rows + seed + 1) (kv (rows + seed + 1) "fresh-b");
  step ();
  E.with_txn e (fun txn -> ignore (E.update e txn "b" upd_b (kv 1 "upd-b")));
  Hashtbl.replace model ("b", 1) (kv 1 "upd-b");
  E.with_txn e (fun txn -> E.delete e txn "b" del_b);
  Hashtbl.remove model ("b", 5);
  step ();
  (* gated scans during (or after) restore: every result checked against
     the row oracle *)
  let half = rows / 2 in
  List.iter
    (fun t ->
      let lo =
        E.with_txn e (fun txn ->
            List.sort compare
              (List.map snd
                 (E.where e txn t
                    [ ("k", Predicate.Cmp (Lt, Value.Int half)) ])))
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: %s low-half scan = oracle" seed t)
        true
        (lo = model_rows model t (fun k -> k < half));
      step ();
      let n =
        E.with_txn e (fun txn ->
            E.count_where e txn t
              [ ("k", Predicate.Cmp (Ge, Value.Int half)) ])
      in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: %s high-half count" seed t)
        (List.length (model_rows model t (fun k -> k >= half)))
        n;
      step ())
    [ "a"; "b" ]

(* snapshot the salvage archive next to the image snapshot: the offline
   twin must recover from the archive *as of the crash*, not from a dir
   the online engine keeps appending post-restart commits to (a total
   loss rebuild replays the whole log — the crash-time invariant that
   every frame is committed state would not survive sharing) *)
let copy_dir src =
  let dst = tmpdir () in
  Sys.mkdir dst 0o755;
  Array.iter
    (fun f ->
      let ic = open_in_bin (Filename.concat src f) in
      let n = in_channel_length ic in
      let b = really_input_string ic n in
      close_in ic;
      let oc = open_out_bin (Filename.concat dst f) in
      output_string oc b;
      close_out oc)
    (Sys.readdir src);
  dst

let row_of e name k =
  E.with_txn e (fun txn ->
      match E.lookup e txn name ~col:"k" (Value.Int k) with
      | [ (r, _) ] -> r
      | l -> Alcotest.failf "key %d in %s: %d rows" k name (List.length l))

let fuzz_outcomes = Hashtbl.create 8

let record outcome =
  Hashtbl.replace fuzz_outcomes outcome
    (1 + try Hashtbl.find fuzz_outcomes outcome with Not_found -> 0)

let differential_trial ~jobs seed =
  with_jobs jobs @@ fun () ->
  let rows = if seed mod 6 = 0 then seg + 400 else 240 in
  let salvage = salvage_config () in
  let cfg = E.default_config ~size:(16 * mib) ~salvage E.Nvm in
  let e = E.create ~sanitize:true cfg in
  let model = Hashtbl.create 64 in
  populate_pair e model rows;
  let targets = (row_of e "a" 2, row_of e "a" 4, row_of e "b" 1, row_of e "b" 5) in
  let hi = used_extent e in
  let region = E.region e in
  let crashed = E.crash e Region.Drop_unfenced in
  let rng = Prng.create (Int64.of_int (0xD1FF + seed)) in
  let faults = 1 + Prng.int rng 4 in
  for i = 1 to faults do
    let off = Prng.int rng (hi - 32) in
    let fault =
      if i land 1 = 0 then Region.Torn_word { off = off land lnot 7 }
      else Region.Corrupt_range { off; len = 1 + Prng.int rng 24 }
    in
    Region.inject_fault region rng fault
  done;
  let img = Filename.temp_file "restorefuzz" ".img" in
  Region.save_to_file region img;
  let cfg_off =
    { cfg with E.salvage = Some { salvage with Wal.Log.dir = copy_dir salvage.Wal.Log.dir } }
  in
  (* online: serve while salvaging *)
  match E.recover ~verify:`Deep crashed with
  | exception exn ->
      Alcotest.failf "seed %d (jobs %d): online recovery panicked: %s" seed
        jobs (Printexc.to_string exn)
  | e2, rs ->
      let deferred, heap_reset =
        match rs.E.detail with
        | E.Rv_nvm { quarantined; deferred; heap_reset; _ } ->
            Alcotest.(check (list string))
              (Printf.sprintf "seed %d: archive leaves no quarantine" seed)
              [] quarantined;
            (deferred, heap_reset)
        | _ -> ([], false)
      in
      (* digest comparison holds whenever the schedule triggers no
         mid-stream table rebuild: segment restores patch in place, so
         their order is invisible; a structural rebuild mid-schedule
         interleaves allocations differently than a drain-first rebuild
         and legitimately lands at different addresses. A total-loss
         rebuild happens before the schedule on both sides, so it stays
         comparable. *)
      let structural_free =
        List.for_all (fun (_, segs) -> segs <> []) deferred
      in
      let t0 = counter "media.salvaged_tables" in
      run_schedule e2 model rows seed ~targets;
      E.restore_drain e2;
      Alcotest.(check (list (pair string (list int))))
        (Printf.sprintf "seed %d: online map drains" seed)
        [] (E.quarantined_segments e2);
      let structural_free =
        structural_free && counter "media.salvaged_tables" = t0
      in
      let digest_online = E.media_digest e2 in
      (* offline: drain fully, then run the identical schedule. Its model
         starts from the drained engine's own dump — which doubles as the
         "clean twin" row-oracle check for the offline recovery *)
      let e3, _ = E.open_image ~verify:`Deep ~sanitize:true cfg_off img in
      E.restore_drain e3;
      let model_fresh = Hashtbl.create 64 in
      List.iter
        (fun t ->
          List.iter
            (fun row ->
              match row.(0) with
              | Value.Int k -> Hashtbl.replace model_fresh (t, k) row
              | _ -> ())
            (dump e3 t))
        [ "a"; "b" ];
      run_schedule e3 model_fresh rows seed ~targets;
      List.iter
        (fun t ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: offline %s = online oracle" seed t)
            true
            (model_rows model t (fun _ -> true)
            = model_rows model_fresh t (fun _ -> true)))
        [ "a"; "b" ];
      if structural_free then
        Alcotest.(check string)
          (Printf.sprintf "seed %d: online digest = offline digest" seed)
          (E.media_digest e3) digest_online;
      record
        (if heap_reset then "rebuilt"
         else if not structural_free then "structural"
         else if deferred <> [] then "segments-differential"
         else "clean");
      Sys.remove img

let test_differential_fuzz () =
  let seeds = 36 in
  for seed = 0 to seeds - 1 do
    differential_trial ~jobs:[| 1; 2; 4 |].(seed mod 3) seed
  done;
  let hits o = try Hashtbl.find fuzz_outcomes o with Not_found -> 0 in
  (* the sweep must exercise both the byte-identity gate and restores *)
  Alcotest.(check bool) "digest-compared segment trials happened" true
    (hits "segments-differential" > 0);
  Alcotest.(check bool) "non-clean outcomes reached" true
    (hits "segments-differential" + hits "structural" + hits "rebuilt" > 0)

let () =
  Obs.set_enabled true;
  Alcotest.run "restore"
    [
      ( "segments",
        [
          Alcotest.test_case "healthy segment serves before any salvage"
            `Quick test_healthy_segment_serves_first;
          Alcotest.test_case "scan heals exactly the damaged segment" `Quick
            test_scan_touching_damage_heals_it;
          Alcotest.test_case "write gate restores then applies" `Quick
            test_write_gate_restores_then_applies;
          Alcotest.test_case "background drain, ascending" `Quick
            test_background_drain_lowest_priority;
          Alcotest.test_case "structural damage rebuilds on first write"
            `Quick test_structural_damage_rebuilds_on_first_write;
        ] );
      ( "differential",
        [
          Alcotest.test_case "36 seeds, online vs offline drain" `Slow
            test_differential_fuzz;
        ] );
    ]
