(* Tests for the persistent data structures: vectors, strings, hash table,
   bit-packed vector, B+-tree — functional behaviour plus the
   crash-consistency protocols each structure relies on. *)

module Region = Nvm.Region
module A = Nvm_alloc.Allocator
module Pvector = Pstruct.Pvector
module Pstring = Pstruct.Pstring
module Phash = Pstruct.Phash
module Pbitvec = Pstruct.Pbitvec
module Pbtree = Pstruct.Pbtree

(* Every region the suite creates runs under the persist-order sanitizer;
   the final test case asserts the whole suite produced zero ordering
   violations. *)
let armed : Nvm.Sanitizer.t list ref = ref []

let fresh ?(size = 4 * 1024 * 1024) () =
  let region = Region.create { Region.default_config with size } in
  armed := Nvm.Sanitizer.attach region :: !armed;
  A.format region

let reopen alloc = A.open_existing (A.region alloc)

(* -------- Pvector -------- *)

let test_pvector_append_get () =
  let a = fresh () in
  let v = Pvector.create a in
  for i = 0 to 999 do
    Alcotest.(check int) "index" i (Pvector.append_int v (i * 3))
  done;
  Alcotest.(check int) "length" 1000 (Pvector.length v);
  for i = 0 to 999 do
    Alcotest.(check int) "value" (i * 3) (Pvector.get_int v i)
  done

let test_pvector_set () =
  let a = fresh () in
  let v = Pvector.create a in
  ignore (Pvector.append_int v 1);
  Pvector.set_int v 0 42;
  Alcotest.(check int) "updated" 42 (Pvector.get_int v 0)

let test_pvector_bounds () =
  let a = fresh () in
  let v = Pvector.create a in
  Alcotest.check_raises "oob get" (Invalid_argument "Pvector.get: index 0 out of 0")
    (fun () -> ignore (Pvector.get v 0))

let test_pvector_publish_then_crash () =
  let a = fresh () in
  let v = Pvector.create a in
  A.set_root a 0 (Pvector.handle v);
  for i = 0 to 99 do
    ignore (Pvector.append_int v i)
  done;
  Pvector.publish v;
  (* unpublished tail *)
  ignore (Pvector.append_int v 1000);
  Region.crash (A.region a) Region.Drop_unfenced;
  let a2 = reopen a in
  let v2 = Pvector.attach a2 (A.get_root a2 0) in
  Alcotest.(check int) "published survives, tail dropped" 100
    (Pvector.length v2);
  for i = 0 to 99 do
    Alcotest.(check int) "content" i (Pvector.get_int v2 i)
  done

let test_pvector_growth_preserves () =
  let a = fresh () in
  let v = Pvector.create ~capacity:2 a in
  for i = 0 to 9999 do
    ignore (Pvector.append_int v i)
  done;
  for i = 0 to 9999 do
    Alcotest.(check int) "after many growths" i (Pvector.get_int v i)
  done

let test_pvector_growth_crash_atomic () =
  (* Crash right after appends that forced a growth but before publish:
     recovered vector must be exactly the published prefix. *)
  for seed = 0 to 19 do
    let rng = Util.Prng.create (Int64.of_int seed) in
    let a = fresh () in
    let v = Pvector.create ~capacity:2 a in
    A.set_root a 0 (Pvector.handle v);
    let published = Util.Prng.int rng 20 in
    for i = 0 to published - 1 do
      ignore (Pvector.append_int v i)
    done;
    Pvector.publish v;
    (* force growth with unpublished appends *)
    for i = published to published + 20 do
      ignore (Pvector.append_int v i)
    done;
    Region.crash (A.region a) (Region.Adversarial rng);
    let a2 = reopen a in
    let v2 = Pvector.attach a2 (A.get_root a2 0) in
    Alcotest.(check int) "published prefix" published (Pvector.length v2);
    for i = 0 to published - 1 do
      Alcotest.(check int) "prefix content" i (Pvector.get_int v2 i)
    done
  done

let test_pvector_publish_unfenced_ordering () =
  (* publish_unfenced alone is not durable; it needs the caller's fence *)
  let a = fresh () in
  let v = Pvector.create a in
  A.set_root a 0 (Pvector.handle v);
  ignore (Pvector.append_int v 7);
  Region.fence (A.region a);
  Pvector.publish_unfenced v;
  (* no fence: the new length must not survive *)
  Region.crash (A.region a) Region.Drop_unfenced;
  let a2 = reopen a in
  let v2 = Pvector.attach a2 (A.get_root a2 0) in
  Alcotest.(check int) "unfenced length lost" 0 (Pvector.length v2);
  (* now with the fence *)
  let a = fresh () in
  let v = Pvector.create a in
  A.set_root a 0 (Pvector.handle v);
  ignore (Pvector.append_int v 7);
  Region.fence (A.region a);
  Pvector.publish_unfenced v;
  Region.fence (A.region a);
  Region.crash (A.region a) Region.Drop_unfenced;
  let a2 = reopen a in
  let v2 = Pvector.attach a2 (A.get_root a2 0) in
  Alcotest.(check int) "fenced length durable" 1 (Pvector.length v2)

let test_pvector_iter_to_list () =
  let a = fresh () in
  let v = Pvector.create a in
  List.iter (fun x -> ignore (Pvector.append v x)) [ 5L; 6L; 7L ];
  Alcotest.(check (list int64)) "to_list" [ 5L; 6L; 7L ] (Pvector.to_list v);
  let sum = ref 0L in
  Pvector.iter (fun x -> sum := Int64.add !sum x) v;
  Alcotest.(check int64) "iter" 18L !sum

let test_pvector_destroy_releases () =
  let a = fresh () in
  let before = (A.heap_stats a).A.free_bytes in
  let v = Pvector.create a in
  ignore (Pvector.append v 1L);
  Pvector.destroy v;
  Alcotest.(check int) "space released" before (A.heap_stats a).A.free_bytes

(* Bulk int decodes for the block scan engine: [read_into_int] must equal
   per-element [get_int]; the [_sat] variant must map the huge CID
   sentinels ([Cid.infinity] = [Int64.max_int] and anything >= 2^62) to
   [max_int] while leaving ordinary values alone. *)
let test_pvector_read_into_int () =
  let a = fresh () in
  let v = Pvector.create a in
  for i = 0 to 299 do
    ignore (Pvector.append_int v ((i * 7919) land 0xFFFF))
  done;
  let dst = Array.make 300 (-1) in
  Pvector.read_into_int v ~pos:0 ~len:300 dst;
  Alcotest.(check (array int)) "full"
    (Array.init 300 (Pvector.get_int v))
    dst;
  let dst = Array.make 10 (-1) in
  Pvector.read_into_int v ~pos:123 ~len:10 dst;
  Alcotest.(check (array int)) "offset"
    (Array.init 10 (fun i -> Pvector.get_int v (123 + i)))
    dst;
  Pvector.read_into_int v ~pos:300 ~len:0 dst;
  Alcotest.check_raises "dst too small"
    (Invalid_argument "Pvector.read_into_int: destination too small")
    (fun () -> Pvector.read_into_int v ~pos:0 ~len:11 dst)

let test_pvector_read_into_int_sat () =
  let a = fresh () in
  let v = Pvector.create a in
  ignore (Pvector.append v 0L);
  ignore (Pvector.append v 42L);
  ignore (Pvector.append v (Int64.of_int max_int)); (* 2^62 - 1: unchanged *)
  ignore (Pvector.append v 4611686018427387904L); (* 2^62: saturates *)
  ignore (Pvector.append v Int64.max_int); (* Cid.infinity *)
  let expect = [| 0; 42; max_int; max_int; max_int |] in
  let dst = Array.make 5 (-1) in
  Pvector.read_into_int_sat v ~pos:0 ~len:5 dst;
  Alcotest.(check (array int)) "saturated bulk" expect dst;
  Alcotest.(check (array int)) "saturated point" expect
    (Array.init 5 (Pvector.get_int_sat v))

(* -------- Pstring -------- *)

let test_pstring_roundtrip () =
  let a = fresh () in
  let cases = [ ""; "x"; "hello"; String.make 1000 'z'; "embedded\000null" ] in
  List.iter
    (fun s ->
      let off = Pstring.add a s in
      Alcotest.(check string) "roundtrip" s (Pstring.get a off);
      Alcotest.(check int) "length_at" (String.length s)
        (Pstring.length_at a off))
    cases

let test_pstring_durable () =
  let a = fresh () in
  let off = Pstring.add a "durable" in
  A.set_root a 1 off;
  Region.crash (A.region a) Region.Drop_unfenced;
  let a2 = reopen a in
  Alcotest.(check string) "after crash" "durable" (Pstring.get a2 (A.get_root a2 1))

(* -------- Parena -------- *)

module Parena = Pstruct.Parena

let test_parena_roundtrip () =
  let a = fresh () in
  let ar = Parena.create ~chunk_bytes:256 a in
  let offs =
    List.map (fun s -> (Parena.add ar s, s))
      [ ""; "a"; "hello world"; String.make 100 'q'; "last" ]
  in
  List.iter
    (fun (off, s) ->
      Alcotest.(check string) "arena get" s (Parena.get ar off);
      (* Pstring reads the same layout *)
      Alcotest.(check string) "pstring-compatible" s (Pstring.get a off))
    offs

let test_parena_packs_chunks () =
  let a = fresh () in
  let ar = Parena.create ~chunk_bytes:1024 a in
  for i = 0 to 99 do
    ignore (Parena.add ar (Printf.sprintf "string-%04d" i))
  done;
  (* 100 x 24 bytes = ~2400 bytes -> a handful of chunks, not 100 blocks *)
  Alcotest.(check bool) "few chunks" true (Parena.chunk_count ar <= 4);
  Alcotest.(check bool) "used accounted" true (Parena.used_bytes ar >= 2000)

let test_parena_oversize () =
  let a = fresh () in
  let ar = Parena.create ~chunk_bytes:128 a in
  let big = String.make 1000 'z' in
  let off = Parena.add ar big in
  Alcotest.(check string) "oversize string" big (Parena.get ar off);
  (* normal allocation continues afterwards *)
  let off2 = Parena.add ar "small" in
  Alcotest.(check string) "small after oversize" "small" (Parena.get ar off2)

let test_parena_durable_across_crash () =
  let a = fresh () in
  let ar = Parena.create ~chunk_bytes:256 a in
  A.set_root a 0 (Parena.handle ar);
  let offs = List.map (fun s -> (Parena.add ar s, s)) [ "x"; "yy"; "zzz" ] in
  Region.crash (A.region a) Region.Drop_unfenced;
  let a2 = reopen a in
  let ar2 = Parena.attach a2 (A.get_root a2 0) in
  List.iter
    (fun (off, s) ->
      Alcotest.(check string) "string durable" s (Parena.get ar2 off))
    offs;
  (* and the arena keeps allocating without clobbering old strings *)
  let off4 = Parena.add ar2 "after-crash" in
  Alcotest.(check string) "new alloc" "after-crash" (Parena.get ar2 off4);
  List.iter
    (fun (off, s) ->
      Alcotest.(check string) "old intact" s (Parena.get ar2 off))
    offs

let test_parena_destroy_releases_all () =
  let a = fresh () in
  let ar = Parena.create ~chunk_bytes:256 a in
  for i = 0 to 49 do
    ignore (Parena.add ar (string_of_int i))
  done;
  Parena.destroy ar;
  Alcotest.(check int) "no live blocks remain" 0 (A.heap_stats a).A.live_blocks

let prop_parena_model =
  QCheck.Test.make ~name:"parena stores arbitrary strings" ~count:60
    QCheck.(list (string_of_size Gen.(int_range 0 300)))
    (fun strings ->
      let a = fresh () in
      let ar = Parena.create ~chunk_bytes:512 a in
      let offs = List.map (fun s -> (Parena.add ar s, s)) strings in
      List.for_all (fun (off, s) -> Parena.get ar off = s) offs)

(* -------- Phash -------- *)

let test_phash_insert_find () =
  let a = fresh () in
  let h = Phash.create a in
  for i = 0 to 499 do
    Phash.insert h (Int64.of_int (i * 7)) (Int64.of_int i)
  done;
  Alcotest.(check int) "length" 500 (Phash.length h);
  for i = 0 to 499 do
    Alcotest.(check (option int64)) "find" (Some (Int64.of_int i))
      (Phash.find h (Int64.of_int (i * 7)))
  done;
  Alcotest.(check (option int64)) "missing" None (Phash.find h 3L)

let test_phash_duplicate_key_rejected () =
  let a = fresh () in
  let h = Phash.create a in
  Phash.insert h 1L 1L;
  Alcotest.check_raises "dup" (Invalid_argument "Phash.insert: key already bound")
    (fun () -> Phash.insert h 1L 2L)

let test_phash_negative_value_rejected () =
  let a = fresh () in
  let h = Phash.create a in
  Alcotest.check_raises "neg" (Invalid_argument "Phash.insert: negative value")
    (fun () -> Phash.insert h 1L (-2L))

let test_phash_negative_keys_ok () =
  let a = fresh () in
  let h = Phash.create a in
  Phash.insert h (-1L) 7L;
  Phash.insert h Int64.min_int 8L;
  Alcotest.(check (option int64)) "neg key" (Some 7L) (Phash.find h (-1L));
  Alcotest.(check (option int64)) "min key" (Some 8L) (Phash.find h Int64.min_int)

let test_phash_find_or_insert () =
  let a = fresh () in
  let h = Phash.create a in
  let calls = ref 0 in
  let mk () = incr calls; 9L in
  Alcotest.(check int64) "inserted" 9L (Phash.find_or_insert h 5L mk);
  Alcotest.(check int64) "found" 9L (Phash.find_or_insert h 5L mk);
  Alcotest.(check int) "mk called once" 1 !calls

let test_phash_survives_crash () =
  let a = fresh () in
  let h = Phash.create ~capacity:4 a in
  A.set_root a 0 (Phash.handle h);
  for i = 0 to 199 do
    (* forces several resizes *)
    Phash.insert h (Int64.of_int i) (Int64.of_int (1000 + i))
  done;
  Region.crash (A.region a) Region.Drop_unfenced;
  let a2 = reopen a in
  let h2 = Phash.attach a2 (A.get_root a2 0) in
  Alcotest.(check int) "length recounted" 200 (Phash.length h2);
  for i = 0 to 199 do
    Alcotest.(check (option int64)) "binding" (Some (Int64.of_int (1000 + i)))
      (Phash.find h2 (Int64.of_int i))
  done

let test_phash_crash_mid_insert_never_half_bound () =
  for seed = 0 to 29 do
    let rng = Util.Prng.create (Int64.of_int seed) in
    let a = fresh () in
    let h = Phash.create a in
    A.set_root a 0 (Phash.handle h);
    Phash.insert h 10L 1L;
    Phash.insert h 20L 2L;
    (* stores without the final fence: emulate an interrupted insert by
       writing key+value manually through low-level stores is internal; at
       this level we instead crash adversarially right after inserts and
       check bindings are all-or-nothing *)
    Phash.insert h 30L 3L;
    Region.crash (A.region a) (Region.Adversarial rng);
    let a2 = reopen a in
    let h2 = Phash.attach a2 (A.get_root a2 0) in
    List.iter
      (fun (k, v) ->
        match Phash.find h2 k with
        | None -> ()
        | Some v' -> Alcotest.(check int64) "binding intact" v v')
      [ (10L, 1L); (20L, 2L); (30L, 3L) ]
  done

(* -------- Pbitvec -------- *)

let test_pbitvec_roundtrip () =
  let a = fresh () in
  let cases =
    [
      [||];
      [| 0 |];
      [| 1 |];
      [| 0; 1; 2; 3; 4; 5; 6; 7 |];
      Array.init 100 (fun i -> i * i);
      Array.init 257 (fun i -> i mod 2);
      [| 0; 0; 0 |];
    ]
  in
  List.iter
    (fun arr ->
      let bv = Pbitvec.build a arr in
      Alcotest.(check int) "length" (Array.length arr) (Pbitvec.length bv);
      Alcotest.(check (array int)) "roundtrip" arr (Pbitvec.to_array bv);
      Pbitvec.destroy bv)
    cases

let test_pbitvec_bit_width_minimal () =
  let a = fresh () in
  let bv = Pbitvec.build a [| 7 |] in
  Alcotest.(check int) "3 bits for 7" 3 (Pbitvec.bits bv);
  let bv8 = Pbitvec.build a [| 8 |] in
  Alcotest.(check int) "4 bits for 8" 4 (Pbitvec.bits bv8);
  let bv0 = Pbitvec.build a [| 0; 0 |] in
  Alcotest.(check int) "0 bits for zeros" 0 (Pbitvec.bits bv0)

let test_pbitvec_unaligned_widths () =
  (* widths that straddle word boundaries *)
  let a = fresh () in
  let rng = Util.Prng.create 5L in
  List.iter
    (fun bits ->
      let bound = (1 lsl bits) - 1 in
      let arr = Array.init 333 (fun _ -> Util.Prng.int rng (bound + 1)) in
      let bv = Pbitvec.build a arr in
      Alcotest.(check (array int))
        (Printf.sprintf "width %d" bits)
        arr (Pbitvec.to_array bv);
      Pbitvec.destroy bv)
    [ 1; 3; 5; 7; 11; 13; 17; 23; 31 ]

let test_pbitvec_durable () =
  let a = fresh () in
  let arr = Array.init 100 (fun i -> i) in
  let bv = Pbitvec.build a arr in
  A.set_root a 0 (Pbitvec.handle bv);
  Region.crash (A.region a) Region.Drop_unfenced;
  let a2 = reopen a in
  let bv2 = Pbitvec.attach a2 (A.get_root a2 0) in
  Alcotest.(check (array int)) "durable" arr (Pbitvec.to_array bv2)

(* Block decode: [unpack_into] must agree bit-for-bit with [get] across
   both decode paths — the native-int window path (bits <= 55) and the
   two-word Int64 path above it. 61 bits is the widest a non-negative
   OCaml int can pin ([bits_needed] of anything larger overflows). *)
let test_pbitvec_unpack_widths () =
  let a = fresh ~size:(8 * 1024 * 1024) () in
  let rng = Util.Prng.create 17L in
  List.iter
    (fun bits ->
      let top = (1 lsl bits) - 1 in
      let n = 400 in
      let arr =
        Array.init n (fun i -> if i = 0 then top else Util.Prng.int rng (top + 1))
      in
      let bv = Pbitvec.build a arr in
      Alcotest.(check int) (Printf.sprintf "width pinned to %d" bits) bits
        (Pbitvec.bits bv);
      let oracle = Array.init n (Pbitvec.get bv) in
      Alcotest.(check (array int))
        (Printf.sprintf "full block, %d bits" bits)
        oracle
        (Pbitvec.get_block bv ~pos:0 ~len:n);
      (* random sub-ranges, including empty and suffix-at-end *)
      for _ = 1 to 25 do
        let pos = Util.Prng.int rng (n + 1) in
        let len = Util.Prng.int rng (n - pos + 1) in
        Alcotest.(check (array int))
          (Printf.sprintf "range [%d,+%d), %d bits" pos len bits)
          (Array.sub oracle pos len)
          (Pbitvec.get_block bv ~pos ~len)
      done;
      Pbitvec.destroy bv)
    [ 1; 7; 13; 31; 55; 56; 61 ]

let test_pbitvec_unpack_zero_bits () =
  let a = fresh () in
  let bv = Pbitvec.build a (Array.make 50 0) in
  Alcotest.(check int) "zero bits" 0 (Pbitvec.bits bv);
  (* a dirty destination must come back zeroed *)
  let dst = Array.make 50 999 in
  Pbitvec.unpack_into bv ~pos:10 ~len:30 dst;
  Alcotest.(check (array int)) "zeros" (Array.make 30 0) (Array.sub dst 0 30);
  Alcotest.(check int) "tail untouched" 999 dst.(30)

(* The last entry of every (width, length) shape — in particular lengths
   whose final entry straddles a word boundary or ends flush with the last
   data byte, where the fast path's 8-byte window runs into the scratch
   padding. *)
let test_pbitvec_unpack_last_straddle () =
  let a = fresh ~size:(16 * 1024 * 1024) () in
  let rng = Util.Prng.create 23L in
  List.iter
    (fun bits ->
      let top = (1 lsl bits) - 1 in
      for n = 1 to 130 do
        let arr =
          Array.init n (fun i ->
              if i = n - 1 then top else Util.Prng.int rng (top + 1))
        in
        let bv = Pbitvec.build a arr in
        let last = [| -1 |] in
        Pbitvec.unpack_into bv ~pos:(n - 1) ~len:1 last;
        Alcotest.(check int)
          (Printf.sprintf "last of %d x %d bits" n bits)
          (Pbitvec.get bv (n - 1))
          last.(0);
        Pbitvec.destroy bv
      done)
    [ 1; 7; 13; 31; 55; 61 ]

let test_pbitvec_unpack_bounds () =
  let a = fresh () in
  let bv = Pbitvec.build a [| 1; 2; 3 |] in
  Alcotest.check_raises "range oob"
    (Invalid_argument "Pbitvec.unpack_into: range [2,+2) out of 3") (fun () ->
      Pbitvec.unpack_into bv ~pos:2 ~len:2 (Array.make 4 0));
  Alcotest.check_raises "dst too small"
    (Invalid_argument "Pbitvec.unpack_into: destination too small") (fun () ->
      Pbitvec.unpack_into bv ~pos:0 ~len:3 (Array.make 2 0))

let prop_pbitvec_unpack_matches_get =
  QCheck.Test.make ~name:"unpack_into agrees with get on arbitrary ranges"
    ~count:100
    QCheck.(
      pair
        (array_of_size Gen.(int_range 1 300) (int_bound 1_000_000))
        (pair small_nat small_nat))
    (fun (arr, (a', b')) ->
      let n = Array.length arr in
      let pos = a' mod (n + 1) in
      let len = b' mod (n - pos + 1) in
      let alloc = fresh ~size:(1 lsl 20) () in
      let bv = Pbitvec.build alloc arr in
      Pbitvec.get_block bv ~pos ~len = Array.sub arr pos len)

(* -------- Pbtree -------- *)

let test_pbtree_insert_find () =
  let a = fresh () in
  let t = Pbtree.create a in
  for i = 0 to 999 do
    Pbtree.insert t (Int64.of_int (i * 2)) (Int64.of_int i)
  done;
  Alcotest.(check int) "length" 1000 (Pbtree.length t);
  for i = 0 to 999 do
    Alcotest.(check (option int64)) "find" (Some (Int64.of_int i))
      (Pbtree.find t (Int64.of_int (i * 2)))
  done;
  Alcotest.(check (option int64)) "missing odd" None (Pbtree.find t 3L);
  Alcotest.(check bool) "many leaves" true (Pbtree.leaf_count t > 10)

let test_pbtree_sorted_iteration () =
  let a = fresh () in
  let t = Pbtree.create a in
  let rng = Util.Prng.create 9L in
  let keys = Array.init 500 (fun i -> Int64.of_int i) in
  Util.Prng.shuffle rng keys;
  Array.iter (fun k -> Pbtree.insert t k k) keys;
  let result = List.map fst (Pbtree.to_list t) in
  Alcotest.(check (list int64)) "sorted"
    (List.init 500 Int64.of_int)
    result

let test_pbtree_range () =
  let a = fresh () in
  let t = Pbtree.create a in
  for i = 0 to 99 do
    Pbtree.insert t (Int64.of_int (i * 10)) (Int64.of_int i)
  done;
  let acc = ref [] in
  Pbtree.iter_range t ~lo:95L ~hi:250L (fun k _ -> acc := k :: !acc);
  Alcotest.(check (list int64)) "range [95,250]" [ 100L; 110L; 120L; 130L; 140L;
    150L; 160L; 170L; 180L; 190L; 200L; 210L; 220L; 230L; 240L; 250L ]
    (List.rev !acc);
  let acc = ref [] in
  Pbtree.iter_range t ~lo:400L ~hi:100L (fun k _ -> acc := k :: !acc);
  Alcotest.(check (list int64)) "empty range" [] !acc

let test_pbtree_duplicate_keys_multimap () =
  let a = fresh () in
  let t = Pbtree.create a in
  (* many values under the same key, enough to straddle splits *)
  for v = 0 to 199 do
    Pbtree.insert t 42L (Int64.of_int v)
  done;
  for i = 0 to 99 do
    Pbtree.insert t (Int64.of_int i) 0L
  done;
  let vals = ref [] in
  Pbtree.iter_range t ~lo:42L ~hi:42L (fun _ v -> vals := v :: !vals);
  Alcotest.(check int) "all values under hot key" 200 (List.length !vals);
  Alcotest.(check (list int64)) "values sorted"
    (List.init 200 Int64.of_int)
    (List.rev !vals)

let test_pbtree_exact_duplicate_merged () =
  let a = fresh () in
  let t = Pbtree.create a in
  Pbtree.insert t 1L 1L;
  Pbtree.insert t 1L 1L;
  Alcotest.(check int) "merged" 1 (Pbtree.length t)

let test_pbtree_attach_after_crash () =
  let a = fresh () in
  let t = Pbtree.create a in
  A.set_root a 0 (Pbtree.handle t);
  for i = 0 to 499 do
    Pbtree.insert t (Int64.of_int i) (Int64.of_int (i * 2))
  done;
  Region.crash (A.region a) Region.Drop_unfenced;
  let a2 = reopen a in
  let t2 = Pbtree.attach a2 (A.get_root a2 0) in
  Alcotest.(check int) "length" 500 (Pbtree.length t2);
  for i = 0 to 499 do
    Alcotest.(check (option int64)) "binding" (Some (Int64.of_int (i * 2)))
      (Pbtree.find t2 (Int64.of_int i))
  done

let test_pbtree_crash_fuzz_prefix () =
  (* After an adversarial crash mid-insertion-stream, the recovered tree
     contains every fully inserted pair and no torn ones. *)
  for seed = 0 to 19 do
    let rng = Util.Prng.create (Int64.of_int seed) in
    let a = fresh () in
    let t = Pbtree.create a in
    A.set_root a 0 (Pbtree.handle t);
    let n = 50 + Util.Prng.int rng 200 in
    for i = 0 to n - 1 do
      Pbtree.insert t (Int64.of_int i) (Int64.of_int i)
    done;
    Region.crash (A.region a) (Region.Adversarial rng);
    let a2 = reopen a in
    let t2 = Pbtree.attach a2 (A.get_root a2 0) in
    (* every insert completed (its bitmap persist is a full fence), so all
       pairs must be present exactly once *)
    Alcotest.(check int) (Printf.sprintf "all pairs (seed %d)" seed) n
      (Pbtree.length t2);
    let l = Pbtree.to_list t2 in
    Alcotest.(check int) "no duplicates in scan" n (List.length l)
  done

(* -------- Pring (flight-recorder ring) -------- *)

module Pring = Pstruct.Pring

(* recognisable payload per sequence number *)
let pring_append r ~lane ~seq =
  Pring.append r ~lane ~seq (Int64.of_int (seq * 3)) (Int64.of_int (seq * 7))

let check_pring_prefix ~msg records =
  List.iteri
    (fun i (rc : Pring.record) ->
      Alcotest.(check int) (msg ^ ": seq") (i + 1) rc.Pring.r_seq;
      Alcotest.(check int64) (msg ^ ": w1")
        (Int64.of_int ((i + 1) * 3))
        rc.Pring.r_w1;
      Alcotest.(check int64) (msg ^ ": w2")
        (Int64.of_int ((i + 1) * 7))
        rc.Pring.r_w2)
    records

let test_pring_roundtrip () =
  let a = fresh () in
  let r = Pring.create ~lanes:2 ~capacity:16 a in
  for s = 1 to 10 do
    pring_append r ~lane:(s mod 2) ~seq:s
  done;
  let records, truncated = Pring.decode r in
  Alcotest.(check int) "all records decode" 10 (List.length records);
  Alcotest.(check int) "no lane truncated" 0 truncated;
  (* merged across lanes in ascending sequence order *)
  check_pring_prefix ~msg:"roundtrip" records;
  Alcotest.(check int) "max_seq" 10 (Pring.max_seq r)

let test_pring_fresh_empty () =
  let a = fresh () in
  let r = Pring.create ~lanes:4 ~capacity:8 a in
  let records, truncated = Pring.decode r in
  Alcotest.(check int) "fresh ring decodes empty" 0 (List.length records);
  Alcotest.(check int) "nothing truncated" 0 truncated;
  Alcotest.(check int) "max_seq of empty" 0 (Pring.max_seq r)

let test_pring_durable_across_crash () =
  let a = fresh () in
  let r = Pring.create ~lanes:1 ~capacity:8 a in
  A.set_root a 0 (Pring.handle r);
  for s = 1 to 5 do
    pring_append r ~lane:0 ~seq:s
  done;
  (* every append ends in a fence, so Drop_unfenced loses nothing *)
  Region.crash (A.region a) Region.Drop_unfenced;
  let a2 = reopen a in
  let r2 = Pring.attach a2 (A.get_root a2 0) in
  let records, truncated = Pring.decode r2 in
  Alcotest.(check int) "all published records survive" 5 (List.length records);
  Alcotest.(check int) "no truncation" 0 truncated;
  check_pring_prefix ~msg:"durable" records;
  (* the recovered append position continues the chain *)
  pring_append r2 ~lane:0 ~seq:6;
  let records, _ = Pring.decode r2 in
  Alcotest.(check int) "append after reattach" 6 (List.length records)

let test_pring_wraparound () =
  let a = fresh () in
  let r = Pring.create ~lanes:1 ~capacity:8 a in
  for s = 1 to 20 do
    pring_append r ~lane:0 ~seq:s
  done;
  let records, truncated = Pring.decode r in
  Alcotest.(check int) "capacity newest records" 8 (List.length records);
  Alcotest.(check int) "wrap is not truncation" 0 truncated;
  Alcotest.(check (list int)) "newest window survives"
    [ 13; 14; 15; 16; 17; 18; 19; 20 ]
    (List.map (fun (rc : Pring.record) -> rc.Pring.r_seq) records)

let test_pring_torn_tail_fuzz () =
  (* Crash at every point inside the publish window of one more record:
     decode must return exactly the fully published prefix — the torn
     tail fails its CRC and is dropped, never a torn record surfaced,
     never an earlier record lost. *)
  for seed = 0 to 29 do
    let rng = Util.Prng.create (Int64.of_int (1000 + seed)) in
    let a = fresh () in
    let r = Pring.create ~lanes:1 ~capacity:32 a in
    A.set_root a 0 (Pring.handle r);
    let n = 5 + Util.Prng.int rng 20 in
    for s = 1 to n do
      pring_append r ~lane:0 ~seq:s
    done;
    let region = A.region a in
    Region.arm_crash region ~after_ops:(Util.Prng.int rng 8);
    let completed =
      match pring_append r ~lane:0 ~seq:(n + 1) with
      | () -> true
      | exception Region.Power_failure -> false
    in
    Region.disarm_crash region;
    Region.crash region (Region.Adversarial rng);
    let a2 = reopen a in
    let r2 = Pring.attach a2 (A.get_root a2 0) in
    let records, _ = Pring.decode r2 in
    let m = List.length records in
    let msg = Printf.sprintf "seed %d (n=%d, completed=%b)" seed n completed in
    if completed then
      Alcotest.(check int) (msg ^ ": fenced tail survives") (n + 1) m
    else
      Alcotest.(check bool)
        (msg ^ ": prefix only, torn tail dropped")
        true
        (m = n || m = n + 1);
    check_pring_prefix ~msg records
  done

let test_pring_mid_ring_corruption () =
  (* A media fault on a mid-ring record truncates the lane there — the
     still-CRC-valid records after the hole are dropped (WAL posture),
     and the decode reports the truncation. *)
  let rng = Util.Prng.create 77L in
  let a = fresh () in
  let r = Pring.create ~lanes:1 ~capacity:16 a in
  for s = 1 to 10 do
    pring_append r ~lane:0 ~seq:s
  done;
  let data_off =
    match Pring.extents r with [ _; (d, _) ] -> d | _ -> assert false
  in
  (* wound record seq 4 (ring position 3) *)
  Region.inject_fault (A.region a) rng
    (Region.Corrupt_range { off = data_off + (3 * 32) + 4; len = 8 });
  let records, truncated = Pring.decode r in
  Alcotest.(check int) "kept only the prefix before the hole" 3
    (List.length records);
  Alcotest.(check int) "lane reported truncated" 1 truncated;
  check_pring_prefix ~msg:"mid-ring corruption" records

(* -------- qcheck properties -------- *)

let prop_pvector_model =
  QCheck.Test.make ~name:"pvector behaves like a growable array" ~count:100
    QCheck.(list (pair bool (int_bound 1_000_000)))
    (fun ops ->
      let a = fresh ~size:(1 lsl 20) () in
      let v = Pvector.create a in
      let model = ref [] in
      List.iter
        (fun (is_set, x) ->
          if is_set && !model <> [] then begin
            let i = x mod List.length !model in
            Pvector.set_int v i x;
            model := List.mapi (fun j y -> if j = i then x else y) !model
          end
          else begin
            ignore (Pvector.append_int v x);
            model := !model @ [ x ]
          end)
        ops;
      List.length !model = Pvector.length v
      && List.for_all2 ( = ) !model
           (List.map Int64.to_int (Pvector.to_list v)))

let prop_phash_model =
  QCheck.Test.make ~name:"phash agrees with Hashtbl" ~count:100
    QCheck.(list (pair (int_bound 500) (int_bound 10_000)))
    (fun bindings ->
      let a = fresh ~size:(1 lsl 20) () in
      let h = Phash.create a in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (k, v) ->
          let k = Int64.of_int k and v = Int64.of_int v in
          if not (Hashtbl.mem model k) then begin
            Hashtbl.add model k v;
            Phash.insert h k v
          end)
        bindings;
      Hashtbl.length model = Phash.length h
      && Hashtbl.fold (fun k v ok -> ok && Phash.find h k = Some v) model true)

let prop_pbtree_model =
  QCheck.Test.make ~name:"pbtree agrees with sorted list" ~count:60
    QCheck.(list (pair (int_bound 1000) (int_bound 1000)))
    (fun pairs ->
      let a = fresh ~size:(1 lsl 22) () in
      let t = Pbtree.create a in
      let module S = Set.Make (struct
        type t = int64 * int64

        let compare (k1, v1) (k2, v2) =
          match Int64.compare k1 k2 with 0 -> Int64.compare v1 v2 | c -> c
      end) in
      let model = ref S.empty in
      List.iter
        (fun (k, v) ->
          let k = Int64.of_int k and v = Int64.of_int v in
          Pbtree.insert t k v;
          model := S.add (k, v) !model)
        pairs;
      Pbtree.to_list t = S.elements !model)

let prop_pbitvec_roundtrip =
  QCheck.Test.make ~name:"pbitvec roundtrips arbitrary arrays" ~count:100
    QCheck.(array_of_size Gen.(int_range 0 300) (int_bound 1_000_000))
    (fun arr ->
      let a = fresh ~size:(1 lsl 20) () in
      let bv = Pbitvec.build a arr in
      Pbitvec.to_array bv = arr)

let () =
  Alcotest.run "pstruct"
    [
      ( "pvector",
        [
          Alcotest.test_case "append/get" `Quick test_pvector_append_get;
          Alcotest.test_case "set" `Quick test_pvector_set;
          Alcotest.test_case "bounds" `Quick test_pvector_bounds;
          Alcotest.test_case "publish then crash" `Quick
            test_pvector_publish_then_crash;
          Alcotest.test_case "growth preserves" `Quick
            test_pvector_growth_preserves;
          Alcotest.test_case "growth crash atomic" `Quick
            test_pvector_growth_crash_atomic;
          Alcotest.test_case "publish_unfenced ordering" `Quick
            test_pvector_publish_unfenced_ordering;
          Alcotest.test_case "iter/to_list" `Quick test_pvector_iter_to_list;
          Alcotest.test_case "destroy releases" `Quick
            test_pvector_destroy_releases;
          Alcotest.test_case "read_into_int" `Quick test_pvector_read_into_int;
          Alcotest.test_case "read_into_int_sat" `Quick
            test_pvector_read_into_int_sat;
          QCheck_alcotest.to_alcotest prop_pvector_model;
        ] );
      ( "pstring",
        [
          Alcotest.test_case "roundtrip" `Quick test_pstring_roundtrip;
          Alcotest.test_case "durable" `Quick test_pstring_durable;
        ] );
      ( "parena",
        [
          Alcotest.test_case "roundtrip" `Quick test_parena_roundtrip;
          Alcotest.test_case "packs chunks" `Quick test_parena_packs_chunks;
          Alcotest.test_case "oversize" `Quick test_parena_oversize;
          Alcotest.test_case "durable across crash" `Quick
            test_parena_durable_across_crash;
          Alcotest.test_case "destroy releases" `Quick
            test_parena_destroy_releases_all;
          QCheck_alcotest.to_alcotest prop_parena_model;
        ] );
      ( "phash",
        [
          Alcotest.test_case "insert/find" `Quick test_phash_insert_find;
          Alcotest.test_case "duplicate rejected" `Quick
            test_phash_duplicate_key_rejected;
          Alcotest.test_case "negative value rejected" `Quick
            test_phash_negative_value_rejected;
          Alcotest.test_case "negative keys ok" `Quick
            test_phash_negative_keys_ok;
          Alcotest.test_case "find_or_insert" `Quick test_phash_find_or_insert;
          Alcotest.test_case "survives crash" `Quick test_phash_survives_crash;
          Alcotest.test_case "crash never half-binds" `Quick
            test_phash_crash_mid_insert_never_half_bound;
          QCheck_alcotest.to_alcotest prop_phash_model;
        ] );
      ( "pbitvec",
        [
          Alcotest.test_case "roundtrip" `Quick test_pbitvec_roundtrip;
          Alcotest.test_case "minimal width" `Quick
            test_pbitvec_bit_width_minimal;
          Alcotest.test_case "unaligned widths" `Quick
            test_pbitvec_unaligned_widths;
          Alcotest.test_case "durable" `Quick test_pbitvec_durable;
          Alcotest.test_case "unpack widths" `Quick test_pbitvec_unpack_widths;
          Alcotest.test_case "unpack zero bits" `Quick
            test_pbitvec_unpack_zero_bits;
          Alcotest.test_case "unpack last straddle" `Quick
            test_pbitvec_unpack_last_straddle;
          Alcotest.test_case "unpack bounds" `Quick test_pbitvec_unpack_bounds;
          QCheck_alcotest.to_alcotest prop_pbitvec_roundtrip;
          QCheck_alcotest.to_alcotest prop_pbitvec_unpack_matches_get;
        ] );
      ( "pbtree",
        [
          Alcotest.test_case "insert/find" `Quick test_pbtree_insert_find;
          Alcotest.test_case "sorted iteration" `Quick
            test_pbtree_sorted_iteration;
          Alcotest.test_case "range scan" `Quick test_pbtree_range;
          Alcotest.test_case "duplicate keys multimap" `Quick
            test_pbtree_duplicate_keys_multimap;
          Alcotest.test_case "exact duplicate merged" `Quick
            test_pbtree_exact_duplicate_merged;
          Alcotest.test_case "attach after crash" `Quick
            test_pbtree_attach_after_crash;
          Alcotest.test_case "crash fuzz" `Quick test_pbtree_crash_fuzz_prefix;
          QCheck_alcotest.to_alcotest prop_pbtree_model;
        ] );
      ( "pring",
        [
          Alcotest.test_case "roundtrip" `Quick test_pring_roundtrip;
          Alcotest.test_case "fresh ring decodes empty" `Quick
            test_pring_fresh_empty;
          Alcotest.test_case "durable across crash" `Quick
            test_pring_durable_across_crash;
          Alcotest.test_case "wraparound keeps newest" `Quick
            test_pring_wraparound;
          Alcotest.test_case "torn tail crash fuzz" `Quick
            test_pring_torn_tail_fuzz;
          Alcotest.test_case "mid-ring corruption truncates" `Quick
            test_pring_mid_ring_corruption;
        ] );
      ( "sanitizer",
        [
          (* must run last: sums violations over every region above *)
          Alcotest.test_case "suite ran clean under the checker" `Quick
            (fun () ->
              Alcotest.(check bool) "checker was armed" true (!armed <> []);
              let bad =
                List.fold_left
                  (fun n s -> n + Nvm.Sanitizer.correctness_violations s)
                  0 !armed
              in
              Alcotest.(check int) "ordering violations across the suite" 0 bad);
        ] );
    ]
