let () =
  Alcotest.run "repro"
    [ ("core", [ Alcotest.test_case "placeholder" `Quick (fun () -> Core.placeholder ()) ]) ]
