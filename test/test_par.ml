(* Tests for the domain pool and the three parallel engine paths.

   The contract under test (docs/PROTOCOLS.md §10): every parallel path
   produces byte-identical results at any --jobs level — same rows in
   the same order from scans, the same new generation from a merge, the
   same recovered database — and the sharded Region accounting sums to
   exactly the serial totals (the static chunk assignment issues the
   same loads whatever the lane count). *)

module E = Core.Engine
module Region = Nvm.Region
module Value = Storage.Value
module Schema = Storage.Schema
module Predicate = Query.Predicate
module Aggregate = Query.Aggregate
module Prng = Util.Prng

let mib = 1024 * 1024

let nvm_engine ?(size = 64 * mib) () = E.create (E.default_config ~size E.Nvm)

(* run [f] at a given pool width, restoring the entry width after *)
let with_jobs n f =
  let was = Par.jobs () in
  Par.set_jobs n;
  Fun.protect ~finally:(fun () -> Par.set_jobs was) f

(* -------- pool primitives -------- *)

let test_parallel_for () =
  with_jobs 4 @@ fun () ->
  let n = 10_000 in
  let hits = Array.make n 0 in
  Par.parallel_for ~n (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        hits.(i) <- hits.(i) + 1
      done);
  Alcotest.(check bool)
    "every index exactly once" true
    (Array.for_all (fun c -> c = 1) hits);
  (* n at or below min_chunk runs inline *)
  let small = Array.make 8 0 in
  Par.parallel_for ~min_chunk:64 ~n:8 (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        small.(i) <- 1
      done);
  Alcotest.(check bool) "inline small n" true (Array.for_all (( = ) 1) small)

let test_map_chunks_order () =
  with_jobs 4 @@ fun () ->
  let n = 1_000 and chunk = 37 in
  let got = Par.map_chunks ~chunk ~n (fun ~lo ~hi -> (lo, hi)) in
  let nchunks = (n + chunk - 1) / chunk in
  Alcotest.(check int) "chunk count" nchunks (Array.length got);
  Array.iteri
    (fun j (lo, hi) ->
      Alcotest.(check (pair int int))
        (Printf.sprintf "chunk %d bounds" j)
        (j * chunk, min n ((j + 1) * chunk))
        (lo, hi))
    got

let test_map_array_and_fork_join () =
  with_jobs 4 @@ fun () ->
  let arr = Array.init 100 (fun i -> i) in
  Alcotest.(check (array int))
    "map_array in order"
    (Array.map (fun i -> i * i) arr)
    (Par.map_array (fun i -> i * i) arr);
  Alcotest.(check (list int))
    "fork_join in order" [ 10; 20; 30 ]
    (Par.fork_join [ (fun () -> 10); (fun () -> 20); (fun () -> 30) ])

exception Boom

let test_exception_propagates () =
  with_jobs 4 @@ fun () ->
  (try
     Par.parallel_for ~n:1_000 (fun ~lo ~hi:_ -> if lo = 0 then raise Boom);
     Alcotest.fail "expected Boom"
   with Boom -> ());
  (* the pool survives a failed job *)
  let ok = ref 0 in
  Par.parallel_for ~n:100 (fun ~lo:_ ~hi:_ -> incr ok);
  Alcotest.(check bool) "pool usable after failure" true (!ok > 0)

let test_jobs_one_is_inline () =
  with_jobs 1 @@ fun () ->
  (* with one lane nothing may run on another domain: a chunk body that
     checks its slot proves inline execution *)
  Par.parallel_for ~n:5_000 (fun ~lo:_ ~hi:_ ->
      Alcotest.(check int) "slot 0" 0 (Util.Domain_slot.get ()));
  ignore (Par.map_chunks ~chunk:64 ~n:1_000 (fun ~lo ~hi -> (lo, hi)))

(* -------- differential fuzz: parallel scan vs serial vs row oracle -------- *)

let scan_schema =
  [|
    Schema.column "k" Value.Int_t;
    Schema.column "city" Value.Text_t;
    Schema.column "v" Value.Int_t;
  |]

let cities = [| "berlin"; "amsterdam"; "chicago"; "delhi"; "essen" |]

(* [main_rows] committed rows merged into the main partition, then
   [delta_rows] committed delta rows, then [uncommitted] rows left
   staged by a still-open writer txn *)
let build_scan_engine ~seed ~main_rows ~delta_rows ~uncommitted =
  let rng = Prng.create (Int64.of_int seed) in
  let e = nvm_engine () in
  E.create_table e ~name:"t" scan_schema;
  let insert_n txn n =
    for _ = 1 to n do
      ignore
        (E.insert e txn "t"
           [|
             Value.Int (Prng.int rng 1_000);
             Value.Text cities.(Prng.int rng (Array.length cities));
             Value.Int (Prng.int rng 50);
           |])
    done
  in
  E.with_txn e (fun txn -> insert_n txn main_rows);
  if main_rows > 0 then ignore (E.merge e "t");
  E.with_txn e (fun txn -> insert_n txn delta_rows);
  let writer = E.begin_txn e in
  insert_n writer uncommitted;
  (* leave [writer] open: its rows are invisible to later snapshots, and
     the visibility filtering that hides them runs inside the chunks *)
  e

let filters =
  [
    [ ("k", Predicate.Cmp (Predicate.Lt, Value.Int 100)) ];
    [ ("city", Predicate.Cmp (Predicate.Eq, Value.Text "berlin")) ];
    [
      ("k", Predicate.Between (Value.Int 200, Value.Int 800));
      ("v", Predicate.Cmp (Predicate.Ge, Value.Int 25));
    ];
    [ ("k", Predicate.Cmp (Predicate.Ne, Value.Int 3)) ];
  ]

let rows_of e ~impl fs =
  E.with_txn e (fun txn -> List.map fst (E.where ~impl e txn "t" fs))

let agg_of e fs =
  E.with_txn e (fun txn ->
      let r =
        E.aggregate e txn "t" ~group_by:"city"
          ~specs:[ Aggregate.Count; Aggregate.Sum "v" ]
          ~filters:fs ()
      in
      List.map
        (fun (key, cells) ->
          ( (match key with Some v -> Value.to_string v | None -> "-"),
            Array.to_list (Array.map Aggregate.cell_to_string cells) ))
        r.Aggregate.groups)

let test_scan_differential () =
  List.iteri
    (fun case (main_rows, delta_rows, uncommitted) ->
      let mk () =
        build_scan_engine ~seed:(41 + case) ~main_rows ~delta_rows ~uncommitted
      in
      let e = mk () in
      List.iteri
        (fun fi fs ->
          let name lvl what =
            Printf.sprintf "case %d filter %d: %s (jobs %d)" case fi what lvl
          in
          let oracle = rows_of e ~impl:`Row fs in
          let serial = with_jobs 1 (fun () -> rows_of e ~impl:`Block fs) in
          Alcotest.(check (list int)) (name 1 "block = row oracle") oracle serial;
          let agg1 = with_jobs 1 (fun () -> agg_of e fs) in
          List.iter
            (fun jobs ->
              with_jobs jobs (fun () ->
                  Alcotest.(check (list int))
                    (name jobs "parallel rows = serial, same order")
                    serial
                    (rows_of e ~impl:`Block fs);
                  Alcotest.(check (list (pair string (list string))))
                    (name jobs "parallel aggregate = serial")
                    agg1 (agg_of e fs)))
            [ 2; 4 ])
        filters)
    [ (6_000, 1_500, 300); (0, 3_000, 200); (2_500, 0, 0); (900, 60, 10) ]

(* -------- load-accounting parity across lane counts -------- *)

let scan_workload e =
  List.iter (fun fs -> ignore (rows_of e ~impl:`Block fs)) filters

let region_totals e =
  let s = Region.stats (E.region e) in
  (s.Region.loads, s.Region.stores, s.Region.writebacks, s.Region.fences,
   s.Region.sim_ns)

let test_region_totals_parity () =
  (* identically-built engines, the same scan workload: the summed
     sharded counters must be exactly equal at every lane count *)
  let totals jobs =
    with_jobs jobs @@ fun () ->
    let e = build_scan_engine ~seed:7 ~main_rows:5_000 ~delta_rows:1_200
        ~uncommitted:100 in
    scan_workload e (* warm the lazy per-column compile state *);
    Region.reset_stats (E.region e);
    scan_workload e;
    region_totals e
  in
  let t1 = totals 1 in
  List.iter
    (fun jobs ->
      let l1, s1, w1, f1, n1 = t1 and l, s, w, f, n = totals jobs in
      let check what a b =
        Alcotest.(check int) (Printf.sprintf "%s at jobs %d" what jobs) a b
      in
      check "loads" l1 l;
      check "stores" s1 s;
      check "writebacks" w1 w;
      check "fences" f1 f;
      check "sim_ns" n1 n)
    [ 2; 4 ]

(* -------- merge: byte-identical new generation -------- *)

let build_merge_engine () =
  let rng = Prng.create 1234L in
  let e = nvm_engine () in
  E.create_table e ~name:"m"
    (Array.init 6 (fun i ->
         if i = 4 then Schema.column "c4" Value.Text_t
         else Schema.column ("c" ^ string_of_int i) Value.Int_t));
  for _ = 0 to 7 do
    E.with_txn e (fun txn ->
        for _ = 1 to 400 do
          ignore
            (E.insert e txn "m"
               (Array.init 6 (fun c ->
                    if c = 4 then
                      Value.Text cities.(Prng.int rng (Array.length cities))
                    else Value.Int (Prng.int rng 500))))
        done)
  done;
  e

let test_merge_byte_identical () =
  let digest jobs =
    with_jobs jobs @@ fun () ->
    let e = build_merge_engine () in
    ignore (E.merge e "m");
    E.media_digest e
  in
  let d1 = digest 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "merged media at jobs %d" jobs)
        d1 (digest jobs))
    [ 2; 4 ]

(* -------- recovery: identical database at any lane count -------- *)

let build_crashed ~seed =
  let rng = Prng.create (Int64.of_int seed) in
  let e = nvm_engine () in
  let sess =
    Workload.Tpcc_lite.setup e ~warehouses:2 ~districts_per_wh:3
      ~customers_per_district:8
  in
  ignore (Workload.Tpcc_lite.run sess (Prng.split rng) ~ops:250 ());
  E.crash e Region.Drop_unfenced

let test_recovery_parity () =
  let recover jobs =
    with_jobs jobs @@ fun () ->
    let e, stats = E.recover (build_crashed ~seed:99) in
    let rolled =
      match stats.E.detail with
      | E.Rv_nvm { rolled_back_rows; tables; _ } -> (rolled_back_rows, tables)
      | _ -> (-1, -1)
    in
    let orders =
      E.with_txn e (fun txn -> E.count e txn "orders")
    in
    (E.media_digest e, E.last_cid e, rolled, orders)
  in
  let d1, c1, r1, o1 = recover 1 in
  List.iter
    (fun jobs ->
      let d, c, r, o = recover jobs in
      Alcotest.(check string)
        (Printf.sprintf "post-recovery media at jobs %d" jobs)
        d1 d;
      Alcotest.(check int64) "last cid" c1 c;
      Alcotest.(check (pair int int)) "rolled rows / tables" r1 r;
      Alcotest.(check int) "visible orders" o1 o)
    [ 2; 4 ]

(* -------- rollback plan/apply split = the fused serial rollback -------- *)

let test_rollback_split_equivalence () =
  (* two identically-built crashed engines: one recovered through the
     plan/apply split at jobs 4, one through the serial path; identical
     media proves the split (including its dedup of repeated
     invalidation-log entries) changes nothing *)
  let via_split = with_jobs 4 (fun () -> E.recover (build_crashed ~seed:5)) in
  let via_serial = with_jobs 1 (fun () -> E.recover (build_crashed ~seed:5)) in
  Alcotest.(check string)
    "identical media"
    (E.media_digest (fst via_serial))
    (E.media_digest (fst via_split))

(* -------- flight recorder parity across lane counts -------- *)

let test_blackbox_jobs_differential () =
  (* the same seeded crash must decode the same pre-crash timeline and
     reach the same restart markers at every --jobs level. Sequence
     numbers are process-global (they keep counting across runs) and
     restart events may be delivered from different lanes, so the
     comparison is the (kind, arg) stream for the pre-crash timeline and
     the kind multiset for the restart one. *)
  let run jobs =
    with_jobs jobs @@ fun () ->
    let e, _ = E.recover (build_crashed ~seed:31) in
    let bb = E.blackbox e in
    let pre =
      List.map
        (fun ev -> (Obs.Event.kind_name ev.Obs.Event.kind, ev.Obs.Event.arg))
        bb.E.precrash
    in
    let restart_kinds =
      List.sort compare
        (List.map
           (fun ev -> Obs.Event.kind_name ev.Obs.Event.kind)
           bb.E.restart)
    in
    ( pre,
      restart_kinds,
      bb.E.truncated_lanes,
      bb.E.engine_ready_ns <> None && bb.E.full_health_ns <> None )
  in
  let pre1, rk1, t1, marked1 = run 1 in
  Alcotest.(check bool) "jobs 1 decodes a timeline" true (pre1 <> []);
  Alcotest.(check bool) "jobs 1 reaches both markers" true marked1;
  List.iter
    (fun jobs ->
      let pre, rk, t, marked = run jobs in
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "pre-crash (kind, arg) stream at jobs %d" jobs)
        pre1 pre;
      Alcotest.(check (list string))
        (Printf.sprintf "restart kind multiset at jobs %d" jobs)
        rk1 rk;
      Alcotest.(check int)
        (Printf.sprintf "truncated lanes at jobs %d" jobs)
        t1 t;
      Alcotest.(check bool)
        (Printf.sprintf "markers at jobs %d" jobs)
        true marked)
    [ 2; 4 ]

(* -------- metrics -------- *)

let test_pool_metrics () =
  Obs.set_enabled true;
  with_jobs 4 @@ fun () ->
  let tasks0 = Obs.counter_value (Obs.counter "par.tasks") in
  Par.parallel_for ~n:100_000 (fun ~lo:_ ~hi:_ -> ());
  let tasks1 = Obs.counter_value (Obs.counter "par.tasks") in
  Alcotest.(check bool) "par.tasks advanced" true (tasks1 > tasks0);
  let busy = Par.busy_ns_by_slot () in
  Alcotest.(check int) "busy array is per-slot" Par.max_jobs (Array.length busy)

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "parallel_for covers range" `Quick test_parallel_for;
          Alcotest.test_case "map_chunks order" `Quick test_map_chunks_order;
          Alcotest.test_case "map_array / fork_join" `Quick
            test_map_array_and_fork_join;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagates;
          Alcotest.test_case "jobs=1 runs inline" `Quick test_jobs_one_is_inline;
          Alcotest.test_case "pool metrics" `Quick test_pool_metrics;
        ] );
      ( "differential",
        [
          Alcotest.test_case "scan/aggregate vs serial vs oracle" `Quick
            test_scan_differential;
          Alcotest.test_case "region totals parity" `Quick
            test_region_totals_parity;
        ] );
      ( "merge",
        [
          Alcotest.test_case "byte-identical generation" `Quick
            test_merge_byte_identical;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "parity across lane counts" `Quick
            test_recovery_parity;
          Alcotest.test_case "rollback plan/apply = fused" `Quick
            test_rollback_split_equivalence;
          Alcotest.test_case "black box parity across lane counts" `Quick
            test_blackbox_jobs_differential;
        ] );
    ]
