(* Tests for the multi-lane commit pipeline (docs/PROTOCOLS.md §13).

   The contract: [Engine.run_pipeline] over pre-drawn specs produces a
   byte-identical database at any writer count — writers=1 is the exact
   pre-pipeline serial loop, writers>1 stages on pool lanes and group
   commits in epoch windows, and the only observable differences are the
   txn.lane.* / commit.epoch.* counters and where device time lands.
   A crash inside an epoch is all-or-nothing: either the whole window's
   group commit is durable or none of it survives recovery. *)

module E = Core.Engine
module Mvcc = Txn.Mvcc
module Region = Nvm.Region
module Value = Storage.Value
module Schema = Storage.Schema
module Prng = Util.Prng
module Hist = Util.Histogram
module Ycsb = Workload.Ycsb
module Tpcc = Workload.Tpcc_lite

let mib = 1024 * 1024

let nvm_engine ?(size = 64 * mib) () = E.create (E.default_config ~size E.Nvm)

let with_jobs n f =
  let was = Par.jobs () in
  Par.set_jobs n;
  Fun.protect ~finally:(fun () -> Par.set_jobs was) f

(* run [f] on an engine armed with [w] writer lanes (pool = w + the
   committer slot, as the pipeline prices it) *)
let with_writers w engine f =
  E.set_writers engine w;
  with_jobs (if w <= 1 then 1 else w + 1) f

(* -------- YCSB twin runs: identical database at any writer count ----- *)

(* a contended config: small hot keyspace, update-heavy, so staged
   validation failures and serial re-executions actually happen *)
let contended rows =
  { Ycsb.default_config with rows; read_pct = 20; update_pct = 70;
    zipf_theta = 0.99 }

(* Build a fresh engine+session, generate the identical spec stream
   (sessions over identically-prepared engines draw identical specs),
   run it at [w] writers, and summarize everything observable. *)
let ycsb_fingerprint ~seed ~ops ~cfg w =
  let rng = Prng.create (Int64.of_int seed) in
  let e = nvm_engine () in
  let sess = Ycsb.setup e (Prng.split rng) cfg in
  let specs = Ycsb.gen_specs sess (Prng.split rng) ~ops in
  let st = with_writers w e (fun () -> Ycsb.run_specs sess specs) in
  ( (st.Ycsb.reads, st.Ycsb.updates, st.Ycsb.inserts, st.Ycsb.aborted),
    Ycsb.row_count sess,
    Ycsb.checksum sess,
    E.last_cid e,
    E.media_digest e )

let check_ycsb_parity ~seed ~ops ~cfg =
  let (t1, n1, k1, c1, d1) = ycsb_fingerprint ~seed ~ops ~cfg 1 in
  List.iter
    (fun w ->
      let (tw, nw, kw, cw, dw) = ycsb_fingerprint ~seed ~ops ~cfg w in
      let name fmt = Printf.sprintf fmt seed w in
      Alcotest.(check (pair (pair int int) (pair int int)))
        (name "seed %d writers %d tallies")
        (let a, b, c, d = t1 in ((a, b), (c, d)))
        (let a, b, c, d = tw in ((a, b), (c, d)));
      Alcotest.(check int) (name "seed %d writers %d rows") n1 nw;
      Alcotest.(check int) (name "seed %d writers %d checksum") k1 kw;
      Alcotest.(check int64)
        (name "seed %d writers %d last cid")
        (c1 :> int64) (cw :> int64);
      Alcotest.(check string) (name "seed %d writers %d media digest") d1 dw)
    [ 2; 4 ]

let test_ycsb_parity () = check_ycsb_parity ~seed:11 ~ops:300 ~cfg:(contended 500)

(* seeded multi-lane conflict fuzzer: many small contended streams, each
   compared writers=2/4 against the serial twin after quiesce *)
let test_conflict_fuzzer () =
  for seed = 100 to 139 do
    check_ycsb_parity ~seed ~ops:60 ~cfg:(contended 40)
  done

(* -------- TPC-C twin runs -------- *)

let tpcc_fingerprint ~seed ~ops w =
  let rng = Prng.create (Int64.of_int seed) in
  let e = nvm_engine () in
  let sess =
    Tpcc.setup e ~warehouses:2 ~districts_per_wh:2 ~customers_per_district:8
  in
  let specs = Tpcc.gen_specs sess (Prng.split rng) ~ops () in
  let st = with_writers w e (fun () -> Tpcc.run_specs sess specs) in
  List.iter
    (fun (inv, ok) ->
      Alcotest.(check bool)
        (Printf.sprintf "writers %d invariant %s" w inv)
        true ok)
    (Tpcc.consistency_check sess);
  ( (st.Tpcc.committed, st.Tpcc.aborted),
    Tpcc.total_orders sess,
    E.last_cid e,
    E.media_digest e )

let test_tpcc_parity () =
  let (t1, o1, c1, d1) = tpcc_fingerprint ~seed:7 ~ops:200 1 in
  List.iter
    (fun w ->
      let (tw, ow, cw, dw) = tpcc_fingerprint ~seed:7 ~ops:200 w in
      Alcotest.(check (pair int int))
        (Printf.sprintf "writers %d committed/aborted" w)
        t1 tw;
      Alcotest.(check int) (Printf.sprintf "writers %d orders" w) o1 ow;
      Alcotest.(check int64)
        (Printf.sprintf "writers %d last cid" w)
        (c1 :> int64) (cw :> int64);
      Alcotest.(check string) (Printf.sprintf "writers %d digest" w) d1 dw)
    [ 2; 4 ]

(* -------- writers=1 is byte-identical to the manual serial loop ------ *)

(* writers=1 run_pipeline must be the exact pre-pipeline serial path:
   drive the same transaction bodies once through run_pipeline and once
   through the plain begin / body / commit loop, on twin engines *)
let test_serial_loop_identity () =
  let fingerprint use_pipeline =
    let e = nvm_engine () in
    E.set_writers e 1;
    E.create_table e ~name:"t"
      [| Schema.column ~indexed:true "k" Value.Int_t;
         Schema.column "v" Value.Int_t |];
    let ops =
      Array.init 50 (fun i txn ->
          ignore (E.insert e txn "t" [| Value.Int i; Value.Int (3 * i) |]);
          if i mod 5 = 0 then
            match E.lookup e txn "t" ~col:"k" (Value.Int (i / 2)) with
            | (row, values) :: _ ->
                let values = Array.copy values in
                values.(1) <- Value.Int i;
                ignore (E.update e txn "t" row values)
            | [] -> ())
    in
    if use_pipeline then ignore (E.run_pipeline e ~epoch:4 ops)
    else
      Array.iter
        (fun op ->
          let txn = E.begin_txn e in
          try
            op txn;
            ignore (E.commit e txn)
          with Mvcc.Write_conflict _ -> E.abort e txn)
        ops;
    (E.media_digest e, E.last_cid e)
  in
  let d1, c1 = fingerprint false in
  let d2, c2 = fingerprint true in
  Alcotest.(check string) "media digest" d1 d2;
  Alcotest.(check int64) "last cid" (c1 :> int64) (c2 :> int64)

(* -------- commit latency runs to the epoch's durable fence ----------- *)

let test_latency_to_fence () =
  (* a tick clock: every call returns the next integer, so latencies
     count clock calls — the serial loop calls it twice per txn
     (latency 1 each), while the pipeline stamps all submissions before
     the window's single fence stamp *)
  let make_clock () =
    let t = ref 0 in
    fun () -> incr t; !t
  in
  let specs_for e =
    (* non-conflicting inserts: no re-execution, deterministic shape *)
    E.create_table e ~name:"t"
      [| Schema.column ~indexed:true "k" Value.Int_t;
         Schema.column "v" Value.Int_t |];
    Array.init 4 (fun i txn ->
        ignore (E.insert e txn "t" [| Value.Int i; Value.Int (i * i) |]))
  in
  (* serial: every latency is exactly one tick *)
  let e = nvm_engine () in
  let ops = specs_for e in
  let h = Hist.create () in
  E.set_writers e 1;
  ignore (E.run_pipeline e ~clock:(make_clock ()) ~latencies:h ~epoch:2 ops);
  Alcotest.(check int) "serial count" 4 (Hist.count h);
  Alcotest.(check int) "serial min" 1 (Hist.min_value h);
  Alcotest.(check int) "serial max" 1 (Hist.max_value h);
  (* pipelined, epoch=2 over 4 txns: submissions 1,2 then (window 1
     staged before window 0 seals) 3,4; fences at ticks 5 and 6 — so
     latencies 4,3,3,2. A staging-append boundary would report 0s. *)
  let e = nvm_engine () in
  let ops = specs_for e in
  let h = Hist.create () in
  with_writers 2 e (fun () ->
      ignore (E.run_pipeline e ~clock:(make_clock ()) ~latencies:h ~epoch:2 ops));
  Alcotest.(check int) "pipelined count" 4 (Hist.count h);
  Alcotest.(check int) "pipelined min (to fence)" 2 (Hist.min_value h);
  Alcotest.(check int) "pipelined max (to fence)" 4 (Hist.max_value h);
  Alcotest.(check int) "pipelined total" 12 (Hist.total h)

(* -------- torn-epoch crash fuzzer: all-or-nothing per window --------- *)

let sum_table e name =
  E.with_txn e (fun txn ->
      let acc = ref 0 in
      E.scan e txn name (fun _ values ->
          Array.iter
            (fun v -> match v with Value.Int k -> acc := !acc + k | _ -> ())
            values);
      !acc)

let test_torn_epoch () =
  for seed = 0 to 34 do
    let rng = Prng.create (Int64.of_int (1000 + seed)) in
    let e = nvm_engine () in
    E.set_writers e 2;
    E.create_table e ~name:"t"
      [| Schema.column ~indexed:true "k" Value.Int_t;
         Schema.column "v" Value.Int_t |];
    E.with_txn e (fun txn ->
        for i = 0 to 19 do
          ignore (E.insert e txn "t" [| Value.Int i; Value.Int (7 * i) |])
        done);
    let cid_pre = E.last_cid e in
    let cnt_pre = E.with_txn e (fun txn -> E.count e txn "t") in
    let sum_pre = sum_table e "t" in
    (* hand-drive one epoch: stage k txns, seal a random prefix, then
       power-fail either before or after finish_epoch *)
    let m = E.mvcc e in
    let k = 2 + Prng.int rng 4 in
    let ep = Mvcc.begin_epoch m in
    let txns = Array.init k (fun _ -> Mvcc.begin_staged m) in
    Array.iteri
      (fun i txn ->
        ignore (E.insert e txn "t" [| Value.Int (1000 + i); Value.Int i |]))
      txns;
    let finished = Prng.int rng 2 = 0 in
    let sealed = if finished then k else Prng.int rng (k + 1) in
    for i = 0 to sealed - 1 do
      if Mvcc.seal_check m ep txns.(i) then
        ignore (Mvcc.commit_grouped m ep txns.(i))
    done;
    if finished then Mvcc.finish_epoch m ep;
    let mode =
      if Prng.int rng 2 = 0 then Region.Drop_unfenced
      else Region.Adversarial (Prng.split rng)
    in
    let e2, _ = E.recover (E.crash e mode) in
    let cnt = E.with_txn e2 (fun txn -> E.count e2 txn "t") in
    let sum = sum_table e2 "t" in
    let name what = Printf.sprintf "seed %d %s" seed what in
    if finished then begin
      (* the whole window is durable behind the epoch's last-CID write *)
      Alcotest.(check int) (name "rows (committed epoch)") (cnt_pre + k) cnt;
      Alcotest.(check bool)
        (name "cid advanced")
        true
        (Int64.compare (E.last_cid e2 :> int64) (cid_pre :> int64) > 0)
    end
    else begin
      (* torn epoch: CIDs were stamped but the durable last-CID write
         never happened — recovery must roll the whole window back *)
      Alcotest.(check int) (name "rows (torn epoch)") cnt_pre cnt;
      Alcotest.(check int) (name "contents (torn epoch)") sum_pre sum;
      Alcotest.(check int64)
        (name "cid (torn epoch)")
        (cid_pre :> int64)
        (E.last_cid e2 :> int64)
    end
  done

(* -------- WAL group commit: one flush window per epoch --------------- *)

let tmpdir () =
  let d = Filename.temp_file "pipelinetest" "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let log_engine () =
  E.create
    {
      E.region = Region.config_with_size (32 * mib);
      durability =
        E.Logging { Wal.Log.dir = tmpdir (); group_commit_size = 1; fsync = false };
      salvage = None;
    }

let test_wal_group_window () =
  let flushes w =
    let rng = Prng.create 5L in
    let e = log_engine () in
    let sess = Ycsb.setup e (Prng.split rng) (contended 200) in
    let specs = Ycsb.gen_specs sess (Prng.split rng) ~ops:64 in
    let before = E.log_flushes e in
    let st = with_writers w e (fun () -> Ycsb.run_specs sess specs) in
    Alcotest.(check int)
      (Printf.sprintf "writers %d all committed or aborted" w)
      64
      (st.Ycsb.reads + st.Ycsb.updates + st.Ycsb.inserts + st.Ycsb.aborted);
    E.log_flushes e - before
  in
  let serial = flushes 1 in
  let grouped = flushes 2 in
  (* group_commit_size=1: the serial loop flushes per commit; the
     pipeline holds the group window open across the epoch, so it
     flushes per window (64 txns / epoch 4 = 16 windows) *)
  Alcotest.(check bool)
    (Printf.sprintf "grouped flushes (%d) < serial flushes (%d)" grouped serial)
    true
    (grouped < serial)

(* -------- pipeline under the persist-order sanitizer ----------------- *)

let test_sanitized_pipeline () =
  let rng = Prng.create 17L in
  let e = E.create ~sanitize:true (E.default_config ~size:(64 * mib) E.Nvm) in
  let sess = Ycsb.setup e (Prng.split rng) (contended 300) in
  let specs = Ycsb.gen_specs sess (Prng.split rng) ~ops:200 in
  ignore (with_writers 2 e (fun () -> Ycsb.run_specs sess specs));
  match E.sanitizer e with
  | None -> Alcotest.fail "sanitize:true must attach a checker"
  | Some san ->
      Alcotest.(check int)
        "zero correctness violations" 0
        (Nvm.Sanitizer.correctness_violations san)

(* -------- observability: lane and epoch counters move ---------------- *)

let test_counters_move () =
  let staged0 = Obs.counter_value (Obs.counter "txn.lane.staged") in
  let sealed0 = Obs.counter_value (Obs.counter "commit.epoch.sealed") in
  let txns0 = Obs.counter_value (Obs.counter "commit.epoch.txns") in
  let rng = Prng.create 23L in
  let e = nvm_engine () in
  let sess = Ycsb.setup e (Prng.split rng) (contended 200) in
  let specs = Ycsb.gen_specs sess (Prng.split rng) ~ops:100 in
  ignore (with_writers 4 e (fun () -> Ycsb.run_specs sess specs));
  Alcotest.(check int) "every txn staged" 100
    (Obs.counter_value (Obs.counter "txn.lane.staged") - staged0);
  Alcotest.(check int) "25 epochs of 4 sealed" 25
    (Obs.counter_value (Obs.counter "commit.epoch.sealed") - sealed0);
  Alcotest.(check bool) "grouped txns counted" true
    (Obs.counter_value (Obs.counter "commit.epoch.txns") - txns0 > 0);
  E.sync_metrics e;
  Alcotest.(check int) "writers gauge" 4
    (Obs.gauge_value (Obs.gauge "engine.writers"))

let () =
  Alcotest.run "pipeline"
    [
      ( "parity",
        [
          Alcotest.test_case "ycsb writers 1/2/4" `Quick test_ycsb_parity;
          Alcotest.test_case "tpcc writers 1/2/4" `Quick test_tpcc_parity;
          Alcotest.test_case "serial loop identity" `Quick
            test_serial_loop_identity;
          Alcotest.test_case "conflict fuzzer (40 seeds)" `Slow
            test_conflict_fuzzer;
        ] );
      ( "latency",
        [ Alcotest.test_case "to the durable fence" `Quick test_latency_to_fence ] );
      ( "crash",
        [ Alcotest.test_case "torn epoch (35 seeds)" `Slow test_torn_epoch ] );
      ( "wal",
        [ Alcotest.test_case "group window per epoch" `Quick test_wal_group_window ] );
      ( "sanitizer",
        [ Alcotest.test_case "pipelined run clean" `Quick test_sanitized_pipeline ] );
      ( "obs",
        [ Alcotest.test_case "counters move" `Quick test_counters_move ] );
    ]
