(* Tests for the persistent allocator: allocation protocol, roots, recovery
   scan, and crash-consistency of the reserve/activate/link protocol. *)

module Region = Nvm.Region
module A = Nvm_alloc.Allocator

(* Every region the suite creates runs under the persist-order sanitizer;
   the final test case asserts the whole suite produced zero ordering
   violations. *)
let armed : Nvm.Sanitizer.t list ref = ref []

let region_of_size n =
  let region = Region.create { Region.default_config with size = n } in
  armed := Nvm.Sanitizer.attach region :: !armed;
  region

let fresh ?(size = 64 * 1024) () = A.format (region_of_size size)

let test_format_empty () =
  let t = fresh () in
  (match A.blocks t with
  | [ b ] ->
      Alcotest.(check bool) "single free block" true (b.A.state = `Free);
      Alcotest.(check bool) "covers heap" true (b.A.size > 60_000)
  | bs -> Alcotest.failf "expected 1 block, got %d" (List.length bs));
  for slot = 0 to A.root_slots - 1 do
    Alcotest.(check int) "roots null" 0 (A.get_root t slot)
  done

let test_format_too_small () =
  let r = region_of_size 128 in
  Alcotest.check_raises "too small"
    (Invalid_argument "Allocator.format: region too small") (fun () ->
      ignore (A.format r))

let test_alloc_returns_aligned () =
  let t = fresh () in
  for i = 1 to 50 do
    let p = A.alloc t i in
    Alcotest.(check int) "8-aligned" 0 (p land 7);
    Alcotest.(check bool) "usable >= requested" true (A.usable_size t p >= i);
    A.activate t p
  done

let test_alloc_distinct_blocks () =
  let t = fresh () in
  let a = A.alloc t 100 and b = A.alloc t 100 in
  A.activate t a;
  A.activate t b;
  Alcotest.(check bool) "disjoint" true
    (abs (a - b) >= 100 + 32 (* header *))

let test_payload_roundtrip () =
  let t = fresh () in
  let r = A.region t in
  let p = A.alloc t 64 in
  Region.set_i64 r p 0xDEADL;
  A.activate t p;
  Alcotest.(check int64) "payload" 0xDEADL (Region.get_i64 r p)

let test_out_of_space () =
  let t = fresh ~size:8192 () in
  Alcotest.check_raises "oom" (A.Out_of_space 100_000) (fun () ->
      ignore (A.alloc t 100_000))

let test_free_and_reuse () =
  let t = fresh ~size:8192 () in
  let stats0 = A.heap_stats t in
  let p = A.alloc t 1024 in
  A.activate t p;
  A.free t p;
  let stats1 = A.heap_stats t in
  Alcotest.(check int) "all free again" stats0.A.free_bytes stats1.A.free_bytes;
  (* the freed block is reusable *)
  let p2 = A.alloc t 1024 in
  A.activate t p2;
  Alcotest.(check int) "reused same block" p p2

let test_exhaust_then_free_all () =
  let t = fresh ~size:16384 () in
  let ps = ref [] in
  (try
     while true do
       let p = A.alloc t 256 in
       A.activate t p;
       ps := p :: !ps
     done
   with A.Out_of_space _ -> ());
  Alcotest.(check bool) "allocated several" true (List.length !ps > 10);
  List.iter (A.free t) !ps;
  let s = A.heap_stats t in
  Alcotest.(check int) "no live blocks" 0 s.A.live_blocks;
  (* after full coalescing we can allocate something large again *)
  let p = A.alloc t (s.A.free_bytes - 256) in
  A.activate t p

let test_double_free_detected () =
  let t = fresh () in
  let p = A.alloc t 64 in
  A.activate t p;
  A.free t p;
  Alcotest.check_raises "double free"
    (Invalid_argument "Allocator.free: double free") (fun () -> A.free t p)

let test_roots_roundtrip () =
  let t = fresh () in
  A.set_root t 0 424242;
  A.set_root t (A.root_slots - 1) 1;
  Alcotest.(check int) "root 0" 424242 (A.get_root t 0);
  Alcotest.(check int) "last root" 1 (A.get_root t (A.root_slots - 1));
  Alcotest.check_raises "slot range"
    (Invalid_argument "Allocator: root slot out of range") (fun () ->
      ignore (A.get_root t A.root_slots))

let test_roots_durable () =
  let t = fresh () in
  A.set_root t 3 999;
  Region.crash (A.region t) Region.Drop_unfenced;
  let t2 = A.open_existing (A.region t) in
  Alcotest.(check int) "root survives crash" 999 (A.get_root t2 3)

let test_open_existing_unformatted () =
  let r = region_of_size 65536 in
  Alcotest.check_raises "bad magic" (A.Heap_corrupt { at = 0; what = "bad magic" }) (fun () ->
      ignore (A.open_existing r))

let test_recovery_preserves_allocated () =
  let t = fresh () in
  let r = A.region t in
  let p = A.alloc t 64 in
  Region.set_i64 r p 77L;
  Region.persist r p 8;
  A.activate t p;
  A.set_root t 0 p;
  Region.crash r Region.Drop_unfenced;
  let t2 = A.open_existing r in
  let p2 = A.get_root t2 0 in
  Alcotest.(check int) "root points at block" p p2;
  Alcotest.(check int64) "payload intact" 77L (Region.get_i64 r p2);
  Alcotest.(check int) "no reserved reclaimed"
    0 (Option.get (A.last_recovery t2)).A.reclaimed_reserved

let test_recovery_reclaims_reserved () =
  let t = fresh () in
  let r = A.region t in
  let before = (A.heap_stats t).A.free_bytes in
  let _p = A.alloc t 64 in
  (* crash before activate *)
  Region.crash r Region.Drop_unfenced;
  let t2 = A.open_existing r in
  let rec_stats = Option.get (A.last_recovery t2) in
  Alcotest.(check int) "one reserved reclaimed" 1 rec_stats.A.reclaimed_reserved;
  Alcotest.(check int) "all space free again" before
    (A.heap_stats t2).A.free_bytes

let test_recovery_coalesces_free_runs () =
  let t = fresh ~size:16384 () in
  let r = A.region t in
  let a = A.alloc t 128 and b = A.alloc t 128 and c = A.alloc t 128 in
  A.activate t a;
  A.activate t b;
  A.activate t c;
  A.free t a;
  A.free t c;
  (* a and c are free but not adjacent; free b volatile-side only through a
     crash and let recovery coalesce everything *)
  A.free t b;
  Region.crash r Region.Persist_all;
  let t2 = A.open_existing r in
  let s = A.heap_stats t2 in
  Alcotest.(check int) "coalesced into one free block" 1 s.A.free_blocks

let test_activate_link_publishes () =
  let t = fresh () in
  let r = A.region t in
  (* a root-like pointer cell inside an existing allocated block *)
  let cell = A.alloc t 8 in
  A.activate t cell;
  Region.set_i64 r cell 0L;
  Region.persist r cell 8;
  let p = A.alloc t 32 in
  Region.set_i64 r p 5L;
  Region.persist r p 8;
  A.activate ~link:(cell, Int64.of_int p) t p;
  Alcotest.(check int) "link written" p (Region.get_int r cell);
  Region.crash r Region.Drop_unfenced;
  let _t2 = A.open_existing r in
  Alcotest.(check int) "link durable" p (Region.get_int r cell)

let test_activate_link_atomic_under_crash () =
  (* Crash at every point of the activate+link protocol, adversarially; the
     invariant is: block allocated <=> link published (after recovery). *)
  for seed = 0 to 99 do
    let rng = Util.Prng.create (Int64.of_int seed) in
    let t = fresh () in
    let r = A.region t in
    let cell = A.alloc t 8 in
    A.activate t cell;
    Region.set_i64 r cell 0L;
    Region.persist r cell 8;
    let p = A.alloc t 32 in
    Region.set_i64 r p 5L;
    Region.persist r p 8;
    (* crash in the middle: emulate by crashing either before activate,
       or right after (the post-activate link store is what recovery must
       redo). We cannot interrupt inside activate from here, so this test
       covers the boundaries; the fuzz test below interrupts inside. *)
    if Util.Prng.bool rng then begin
      Region.crash r (Region.Adversarial rng);
      let t2 = A.open_existing r in
      (* block was reserved: must be reclaimed, cell must be null *)
      Alcotest.(check int) "cell untouched" 0 (Region.get_int r cell);
      Alcotest.(check int) "reclaimed" 1
        (Option.get (A.last_recovery t2)).A.reclaimed_reserved
    end
    else begin
      A.activate ~link:(cell, Int64.of_int p) t p;
      Region.crash r (Region.Adversarial rng);
      ignore (A.open_existing r);
      Alcotest.(check int) "cell published" p (Region.get_int r cell);
      Alcotest.(check int64) "payload durable" 5L (Region.get_i64 r p)
    end
  done

let test_heap_stats_consistency () =
  let t = fresh ~size:32768 () in
  let p1 = A.alloc t 100 in
  A.activate t p1;
  let p2 = A.alloc t 200 in
  A.activate t p2;
  A.free t p1;
  let s = A.heap_stats t in
  Alcotest.(check int) "heap = live + free + headers" s.A.heap_bytes
    (s.A.live_bytes + s.A.free_bytes + (32 * (s.A.live_blocks + s.A.free_blocks)));
  Alcotest.(check int) "one live" 1 s.A.live_blocks

let test_sweep_frees_unreachable () =
  let t = fresh ~size:32768 () in
  let keep = A.alloc t 64 in
  A.activate t keep;
  let drop1 = A.alloc t 128 in
  A.activate t drop1;
  let drop2 = A.alloc t 256 in
  A.activate t drop2;
  let blocks, bytes = A.sweep t ~live:(fun p -> p = keep) in
  Alcotest.(check int) "two freed" 2 blocks;
  Alcotest.(check bool) "bytes counted" true (bytes >= 128 + 256);
  (* survivor intact, heap walkable, space reusable *)
  Alcotest.(check int) "one live block" 1 (A.heap_stats t).A.live_blocks;
  let p = A.alloc t 128 in
  A.activate t p

let test_sweep_noop_when_all_live () =
  let t = fresh ~size:32768 () in
  let a = A.alloc t 64 in
  A.activate t a;
  let blocks, bytes = A.sweep t ~live:(fun _ -> true) in
  Alcotest.(check (pair int int)) "nothing freed" (0, 0) (blocks, bytes)

let test_sweep_ignores_free_and_reserved () =
  let t = fresh ~size:32768 () in
  let a = A.alloc t 64 in
  A.activate t a;
  A.free t a;
  let _reserved = A.alloc t 64 in
  (* reserved blocks belong to an in-flight allocation: not swept *)
  let blocks, _ = A.sweep t ~live:(fun _ -> false) in
  Alcotest.(check int) "only nothing allocated" 0 blocks

(* -- qcheck: random alloc/free/crash/recover cycles keep the heap sound -- *)

let prop_heap_soundness =
  let gen_ops =
    QCheck.Gen.(list_size (int_range 1 80) (int_range 0 99))
  in
  QCheck.Test.make ~name:"random alloc/free/crash keeps heap walkable"
    ~count:60
    QCheck.(make ~print:(fun l -> String.concat "," (List.map string_of_int l)) gen_ops)
    (fun ops ->
      let rng = Util.Prng.create 4242L in
      let t = ref (fresh ~size:32768 ()) in
      let live = ref [] in
      List.iter
        (fun op ->
          if op < 60 then (
            (* alloc + activate *)
            match A.alloc !t (1 + (op * 7 mod 500)) with
            | p ->
                A.activate !t p;
                live := p :: !live
            | exception A.Out_of_space _ -> ())
          else if op < 85 then (
            match !live with
            | p :: rest ->
                A.free !t p;
                live := rest
            | [] -> ())
          else begin
            (* crash and recover; reserved-but-unactivated cannot exist here
               (we always activate), so live blocks must all survive *)
            let r = A.region !t in
            Region.crash r (Region.Adversarial rng);
            t := A.open_existing r
          end)
        ops;
      (* final invariants: heap walk succeeds and accounts for all space *)
      let s = A.heap_stats !t in
      s.A.heap_bytes
      = s.A.live_bytes + s.A.free_bytes
        + (32 * (s.A.live_blocks + s.A.free_blocks))
      && s.A.live_blocks >= List.length !live)

let () =
  Alcotest.run "nvm_alloc"
    [
      ( "basics",
        [
          Alcotest.test_case "format" `Quick test_format_empty;
          Alcotest.test_case "format too small" `Quick test_format_too_small;
          Alcotest.test_case "alignment" `Quick test_alloc_returns_aligned;
          Alcotest.test_case "distinct blocks" `Quick test_alloc_distinct_blocks;
          Alcotest.test_case "payload roundtrip" `Quick test_payload_roundtrip;
          Alcotest.test_case "out of space" `Quick test_out_of_space;
          Alcotest.test_case "free and reuse" `Quick test_free_and_reuse;
          Alcotest.test_case "exhaust then free all" `Quick
            test_exhaust_then_free_all;
          Alcotest.test_case "double free" `Quick test_double_free_detected;
          Alcotest.test_case "heap stats" `Quick test_heap_stats_consistency;
        ] );
      ( "roots",
        [
          Alcotest.test_case "roundtrip" `Quick test_roots_roundtrip;
          Alcotest.test_case "durable" `Quick test_roots_durable;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "unformatted region" `Quick
            test_open_existing_unformatted;
          Alcotest.test_case "preserves allocated" `Quick
            test_recovery_preserves_allocated;
          Alcotest.test_case "reclaims reserved" `Quick
            test_recovery_reclaims_reserved;
          Alcotest.test_case "coalesces free runs" `Quick
            test_recovery_coalesces_free_runs;
          Alcotest.test_case "activate+link publishes" `Quick
            test_activate_link_publishes;
          Alcotest.test_case "activate+link atomic" `Quick
            test_activate_link_atomic_under_crash;
          Alcotest.test_case "sweep frees unreachable" `Quick
            test_sweep_frees_unreachable;
          Alcotest.test_case "sweep noop when live" `Quick
            test_sweep_noop_when_all_live;
          Alcotest.test_case "sweep skips free/reserved" `Quick
            test_sweep_ignores_free_and_reserved;
          QCheck_alcotest.to_alcotest prop_heap_soundness;
        ] );
      ( "sanitizer",
        [
          (* must run last: sums violations over every region above *)
          Alcotest.test_case "suite ran clean under the checker" `Quick
            (fun () ->
              Alcotest.(check bool) "checker was armed" true (!armed <> []);
              let bad =
                List.fold_left
                  (fun n s -> n + Nvm.Sanitizer.correctness_violations s)
                  0 !armed
              in
              Alcotest.(check int) "ordering violations across the suite" 0 bad);
        ] );
    ]
