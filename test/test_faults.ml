(* Media-fault injection and self-healing recovery.

   Covers the whole damage ladder: sealed-word detection, deterministic
   fault injection, WAL frame / checkpoint corruption fallbacks, table
   quarantine without a salvage archive, checkpoint+log salvage with one,
   full-rebuild degradation when the heap itself is gone — and a
   randomized fuzz (120 trials) asserting that no fault pattern inside
   the allocated extent ever panics recovery or silently corrupts the
   committed state. *)

module E = Core.Engine
module Region = Nvm.Region
module Seal = Nvm.Seal
module A = Nvm_alloc.Allocator
module Pcheck = Pstruct.Pcheck
module Value = Storage.Value
module Schema = Storage.Schema
module Table = Storage.Table
module Prng = Util.Prng

let mib = 1024 * 1024

let tmpdir () =
  let d = Filename.temp_file "faulttest" "" in
  Sys.remove d;
  d

let counter name = Obs.counter_value (Obs.counter name)

let kv_schema =
  [| Schema.column ~indexed:true "k" Value.Int_t; Schema.column "v" Value.Text_t |]

let kv k v = [| Value.Int k; Value.Text v |]

(* visible values of one table, order-independent *)
let dump e name =
  E.with_txn e (fun txn ->
      List.sort compare
        (List.map snd (E.select e txn name ~where:(fun _ -> true))))

let salvage_config () =
  { Wal.Log.dir = tmpdir (); group_commit_size = 1; fsync = false }

let nvm_engine ?salvage ?(size = 16 * mib) () =
  E.create (E.default_config ~size ?salvage E.Nvm)

let log_engine ?(dir = tmpdir ()) ?(size = 16 * mib) () =
  ( E.create
      {
        E.region = Region.config_with_size size;
        durability = E.Logging { Wal.Log.dir; group_commit_size = 1; fsync = false };
        salvage = None;
      },
    dir )

(* two tables, interleaved commits, a few deletes; returns committed row
   keys so tests can diff against the oracle *)
let populate ?(rows = 40) e =
  E.create_table e ~name:"a" kv_schema;
  E.create_table e ~name:"b" kv_schema;
  for i = 0 to rows - 1 do
    E.with_txn e (fun txn ->
        let t = if i land 1 = 0 then "a" else "b" in
        let r = E.insert e txn t (kv i (Printf.sprintf "value-%04d" i)) in
        if i mod 7 = 3 then E.delete e txn t r)
  done

(* end of the allocated heap extent: random faults aimed below this hit
   real structures instead of virgin space *)
let used_extent e =
  List.fold_left
    (fun acc (b : A.block_info) ->
      if b.state = `Allocated then max acc (b.offset + b.size) else acc)
    4096
    (A.blocks (E.allocator e))

let flip region ~off ~bit =
  let rng = Prng.create 1L in
  Region.inject_fault region rng (Region.Flip_bit { off; bit })

(* -------- sealed words -------- *)

let test_seal_zero () =
  Alcotest.(check bool) "seal 0 nonzero" true (Seal.seal 0 <> 0L);
  Alcotest.(check (option int)) "zeroed media never verifies" None
    (Seal.unseal 0L);
  Alcotest.(check (option int)) "roundtrip" (Some 0) (Seal.unseal (Seal.seal 0))

let test_seal_region_corrupt () =
  let r = Region.create { Region.default_config with size = 4096 } in
  Seal.write r 128 7_654_321;
  Region.persist r 128 8;
  Alcotest.(check int) "read back" 7_654_321 (Seal.read r ~what:"t" 128);
  let crc0 = counter "media.crc_failures" in
  flip r ~off:130 ~bit:5;
  (match Seal.read r ~what:"t" 128 with
  | _ -> Alcotest.fail "corrupt seal accepted"
  | exception Seal.Corrupt { what = "t"; off = 128; _ } -> ());
  Alcotest.(check bool) "crc counter bumped" true
    (counter "media.crc_failures" > crc0)

let prop_seal_roundtrip =
  QCheck.Test.make ~name:"seal/unseal roundtrip" ~count:500
    QCheck.(int_bound Seal.max_value)
    (fun v -> Seal.unseal (Seal.seal v) = Some v)

let prop_seal_detects_any_bitflip =
  QCheck.Test.make ~name:"any single bit flip breaks the seal" ~count:500
    QCheck.(pair (int_bound Seal.max_value) (int_bound 63))
    (fun (v, bit) ->
      Seal.unseal (Int64.logxor (Seal.seal v) (Int64.shift_left 1L bit)) = None)

(* -------- fault injection -------- *)

let test_fault_determinism () =
  let mk () =
    let r = Region.create { Region.default_config with size = 8192 } in
    for w = 0 to 1023 do
      Region.set_i64 r (w * 8) (Int64.of_int (w * 31))
    done;
    Region.persist r 0 8192;
    let rng = Prng.create 99L in
    for _ = 1 to 16 do
      Region.inject_fault r rng (Region.random_fault r rng ~lo:0 ~hi:8192)
    done;
    Alcotest.(check int) "tally" 16 (Region.faults_injected r);
    let f = Filename.temp_file "faultdet" ".img" in
    Region.save_to_file r f;
    let ic = open_in_bin f in
    let n = in_channel_length ic in
    let b = really_input_string ic n in
    close_in ic;
    Sys.remove f;
    b
  in
  Alcotest.(check bool) "same seed, same damage" true (mk () = mk ())

let test_stuck_byte_survives_writeback () =
  let r = Region.create { Region.default_config with size = 4096 } in
  Region.set_i64 r 256 0x1111111111111111L;
  Region.persist r 256 8;
  let rng = Prng.create 5L in
  Region.inject_fault r rng (Region.Stuck_byte { off = 258 });
  let stuck = Region.get_i64 r 256 in
  (* overwrite and persist: the worn cell must not take the new value *)
  Region.set_i64 r 256 0x2222222222222222L;
  Region.persist r 256 8;
  Region.crash r Region.Drop_unfenced;
  let after = Region.get_i64 r 256 in
  Alcotest.(check bool) "stuck byte unchanged" true
    (Int64.logand (Int64.shift_right_logical after 16) 0xFFL
    = Int64.logand (Int64.shift_right_logical stuck 16) 0xFFL);
  Region.clear_stuck r;
  Region.set_i64 r 256 0x3333333333333333L;
  Region.persist r 256 8;
  Region.crash r Region.Drop_unfenced;
  Alcotest.(check bool) "cleared cell writable again" true
    (Region.get_i64 r 256 = 0x3333333333333333L)

(* -------- WAL: mid-log corruption (satellite) -------- *)

let corrupt_file path ~at =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  let at = min at (n - 1) in
  Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor 0x40));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc;
  n

let test_wal_midlog_corruption () =
  let dir = tmpdir () in
  let e, _ = log_engine ~dir () in
  populate e;
  let oracle_a = dump e "a" and oracle_b = dump e "b" in
  let crashed = E.crash e Region.Drop_unfenced in
  let path = Wal.Log.log_path ~dir ~epoch:0 in
  let bad0 = counter "wal.bad_frames" in
  let n = corrupt_file path ~at:(Unix.stat path).Unix.st_size * 3 / 4 in
  ignore n;
  let e2, _ = E.recover crashed in
  Alcotest.(check bool) "bad frame counted" true (counter "wal.bad_frames" > bad0);
  (* clean truncated replay: a strict prefix of the committed state, and
     every surviving row was committed *)
  let sub d oracle = List.for_all (fun r -> List.mem r oracle) d in
  let da = dump e2 "a" and db = dump e2 "b" in
  Alcotest.(check bool) "replay is a committed subset" true
    (sub da oracle_a && sub db oracle_b);
  Alcotest.(check bool) "replay actually truncated" true
    (List.length da + List.length db
    < List.length oracle_a + List.length oracle_b)

(* -------- checkpoint corruption falls back to log replay (satellite) ---- *)

let test_checkpoint_corruption_falls_back () =
  let dir = tmpdir () in
  let e, _ = log_engine ~dir () in
  populate e;
  ignore (E.checkpoint e);
  E.with_txn e (fun txn -> ignore (E.insert e txn "a" (kv 900 "after-ckpt")));
  let oracle_a = dump e "a" and oracle_b = dump e "b" in
  let crashed = E.crash e Region.Drop_unfenced in
  let rejected0 = counter "wal.checkpoint_rejected" in
  ignore (corrupt_file (Wal.Checkpoint.path ~dir) ~at:64);
  let e2, _ = E.recover crashed in
  Alcotest.(check bool) "rejection counted" true
    (counter "wal.checkpoint_rejected" > rejected0);
  Alcotest.(check bool) "full state from retained logs" true
    (dump e2 "a" = oracle_a && dump e2 "b" = oracle_b)

let test_checkpoint_bak_fallback () =
  let dir = tmpdir () in
  let e, _ = log_engine ~dir () in
  populate e;
  ignore (E.checkpoint e);
  E.with_txn e (fun txn -> ignore (E.insert e txn "a" (kv 901 "mid")));
  ignore (E.checkpoint e);
  E.with_txn e (fun txn -> ignore (E.insert e txn "b" (kv 902 "tail")));
  let oracle_a = dump e "a" and oracle_b = dump e "b" in
  let crashed = E.crash e Region.Drop_unfenced in
  Alcotest.(check bool) "bak exists after second checkpoint" true
    (Sys.file_exists (Wal.Checkpoint.bak_path ~dir));
  ignore (corrupt_file (Wal.Checkpoint.path ~dir) ~at:64);
  let e2, _ = E.recover crashed in
  Alcotest.(check bool) "state recovered via checkpoint.bak" true
    (dump e2 "a" = oracle_a && dump e2 "b" = oracle_b)

(* -------- quarantine without a salvage archive -------- *)

let test_quarantine_no_salvage () =
  let e = nvm_engine () in
  populate e;
  let oracle_a = dump e "a" in
  let ctrl_b = Table.handle (E.table e "b") in
  let region = E.region e in
  let crashed = E.crash e Region.Drop_unfenced in
  let q0 = counter "media.quarantined_tables" in
  flip region ~off:(ctrl_b + 16) ~bit:3;
  let e2, rs = E.recover ~verify:`Shallow crashed in
  (match rs.E.detail with
  | E.Rv_nvm { quarantined; salvaged; heap_reset; _ } ->
      Alcotest.(check (list string)) "quarantined" [ "b" ] quarantined;
      Alcotest.(check (list string)) "nothing salvaged" [] salvaged;
      Alcotest.(check bool) "no heap reset" false heap_reset
  | _ -> Alcotest.fail "expected Rv_nvm");
  Alcotest.(check (list string)) "engine reports it" [ "b" ] (E.quarantined e2);
  Alcotest.(check int) "counter bumped" (q0 + 1)
    (counter "media.quarantined_tables");
  Alcotest.(check bool) "healthy table intact" true (dump e2 "a" = oracle_a);
  (match dump e2 "b" with
  | _ -> Alcotest.fail "quarantined table served"
  | exception Not_found -> ());
  (match E.vacuum e2 with
  | _ -> Alcotest.fail "vacuum allowed with quarantined evidence"
  | exception Invalid_argument _ -> ());
  let report = E.scrub e2 in
  Alcotest.(check bool) "scrub lists the quarantined table" true
    (List.mem_assoc "table:b" report)

(* -------- salvage from checkpoint + log -------- *)

let test_salvage_rebuilds_table () =
  let e = nvm_engine ~salvage:(salvage_config ()) () in
  populate e;
  ignore (E.checkpoint e);
  E.with_txn e (fun txn -> ignore (E.insert e txn "b" (kv 950 "post-ckpt")));
  let oracle_a = dump e "a" and oracle_b = dump e "b" in
  let ctrl_b = Table.handle (E.table e "b") in
  let region = E.region e in
  let crashed = E.crash e Region.Drop_unfenced in
  let s0 = counter "media.salvaged_tables" in
  flip region ~off:(ctrl_b + 16) ~bit:3;
  let e2, rs = E.recover ~verify:`Shallow crashed in
  (match rs.E.detail with
  | E.Rv_nvm { quarantined; salvaged; deferred; heap_reset; _ } ->
      Alcotest.(check (list string)) "nothing rebuilt up front" [] salvaged;
      Alcotest.(check (list string)) "nothing unsalvageable" [] quarantined;
      Alcotest.(check (list (pair string (list int)))) "repair deferred online"
        [ ("b", []) ] deferred;
      Alcotest.(check bool) "instant path kept" false heap_reset
  | _ -> Alcotest.fail "expected Rv_nvm");
  (* serve-while-salvaging: the engine opens with the repair still
     pending, and healthy tables answer before any salvage runs *)
  Alcotest.(check int) "no rebuild ran at recovery" s0
    (counter "media.salvaged_tables");
  Alcotest.(check bool) "healthy table served first" true
    (dump e2 "a" = oracle_a);
  Alcotest.(check bool) "full health withheld while damage pends" true
    ((E.blackbox e2).E.full_health_ns = None);
  (* first touch of the damaged table triggers its foreground rebuild *)
  Alcotest.(check bool) "salvaged table equals pre-crash state" true
    (dump e2 "b" = oracle_b);
  Alcotest.(check int) "rebuild counted on first touch" (s0 + 1)
    (counter "media.salvaged_tables");
  Alcotest.(check (list (pair string (list int)))) "restore map drained" []
    (E.quarantined_segments e2);
  Alcotest.(check bool) "full health announced after the heal" true
    ((E.blackbox e2).E.full_health_ns <> None);
  (* the engine must stay fully writable after salvage *)
  E.with_txn e2 (fun txn -> ignore (E.insert e2 txn "b" (kv 951 "after")));
  Alcotest.(check int) "post-salvage commit lands"
    (List.length oracle_b + 1)
    (List.length (dump e2 "b"))

let test_total_loss_rebuild () =
  let e = nvm_engine ~salvage:(salvage_config ()) () in
  populate e;
  ignore (E.checkpoint e);
  let oracle_a = dump e "a" and oracle_b = dump e "b" in
  let region = E.region e in
  let crashed = E.crash e Region.Drop_unfenced in
  (* kill the allocator superblock: instant restart is impossible *)
  flip region ~off:2 ~bit:4;
  let e2, rs = E.recover crashed in
  (match rs.E.detail with
  | E.Rv_nvm { heap_reset; salvaged; _ } ->
      Alcotest.(check bool) "degraded to full rebuild" true heap_reset;
      Alcotest.(check (list string)) "all tables salvaged" [ "a"; "b" ]
        (List.sort compare salvaged)
  | _ -> Alcotest.fail "expected Rv_nvm");
  Alcotest.(check bool) "rebuilt state equals pre-crash commits" true
    (dump e2 "a" = oracle_a && dump e2 "b" = oracle_b)

let test_heap_damage_without_salvage_raises () =
  let e = nvm_engine () in
  populate e;
  let region = E.region e in
  let crashed = E.crash e Region.Drop_unfenced in
  flip region ~off:2 ~bit:4;
  match E.recover crashed with
  | _ -> Alcotest.fail "damaged heap recovered without archive"
  | exception (A.Heap_corrupt _ | Seal.Corrupt _ | Pcheck.Invalid _) -> ()

(* -------- scrub -------- *)

let test_scrub_clean () =
  let e = nvm_engine () in
  populate e;
  Alcotest.(check (list (pair string string))) "clean engine" [] (E.scrub e)

let test_deep_verify_catches_cid_damage () =
  (* knock a live main row's end-CID off its infinity sentinel, bypassing
     [set_end_cid] (which would journal the write): no checksum covers
     the word, but the journal cross-check does *)
  let e = nvm_engine () in
  populate e;
  ignore (E.checkpoint e);
  let region = E.region e in
  let ctrl = Table.handle (E.table e "a") in
  let main_end =
    Pstruct.Pvector.attach (E.allocator e)
      (Seal.read region ~what:"main-end handle" (ctrl + 40))
  in
  Pstruct.Pvector.set main_end 0
    (Int64.shift_right_logical Storage.Cid.infinity 8);
  let report = E.scrub e in
  Alcotest.(check bool) "scrub flags the implausible cid" true
    (List.mem_assoc "table:a" report)

(* -------- randomized fuzz: the acceptance gate -------- *)

let fuzz_outcomes = Hashtbl.create 8

let record outcome =
  Hashtbl.replace fuzz_outcomes outcome
    (1 + try Hashtbl.find fuzz_outcomes outcome with Not_found -> 0)

(* One trial: build, checkpoint (so the delta is merged and the durable
   image is fully inside the checksummed perimeter), crash, damage the
   allocated extent, recover. Stuck bytes are cleared after injection —
   they model permanent wear, which needs block remapping (out of scope);
   their one-shot damage stays. *)
let fuzz_trial ~salvage seed =
  let e =
    if salvage then nvm_engine ~salvage:(salvage_config ()) ()
    else nvm_engine ()
  in
  populate ~rows:24 e;
  ignore (E.checkpoint e);
  let oracle_a = dump e "a" and oracle_b = dump e "b" in
  let hi = used_extent e in
  let region = E.region e in
  let crashed = E.crash e Region.Drop_unfenced in
  let rng = Prng.create (Int64.of_int (0x5EED + seed)) in
  let faults = 1 + Prng.int rng 6 in
  for _ = 1 to faults do
    Region.inject_fault region rng (Region.random_fault region rng ~lo:0 ~hi)
  done;
  Region.clear_stuck region;
  let q0 = counter "media.quarantined_tables" in
  match E.recover ~verify:`Deep crashed with
  | exception (A.Heap_corrupt _ | Seal.Corrupt _ | Pcheck.Invalid _)
    when not salvage ->
      (* no archive: structural heap/catalog damage is a reported failure,
         not a served database — allowed, provided it is structured *)
      record "refused"
  | exception exn ->
      Alcotest.failf "trial %d (salvage=%b) panicked: %s" seed salvage
        (Printexc.to_string exn)
  | e2, rs ->
      let quarantined, salvaged, deferred, heap_reset =
        match rs.E.detail with
        | E.Rv_nvm { quarantined; salvaged; deferred; heap_reset; _ } ->
            (quarantined, salvaged, deferred, heap_reset)
        | _ -> ([], [], [], false)
      in
      (* the counter tallies detections: tables that failed verification,
         whether quarantined outright or deferred to online restore (the
         full-rebuild path abandons the instant walk, so its tally is
         partial) *)
      if not heap_reset then
        Alcotest.(check int) "quarantine counter accounts for the trial"
          (q0 + List.length salvaged + List.length quarantined
         + List.length deferred)
          (counter "media.quarantined_tables");
      if salvage then
        Alcotest.(check (list string))
          (Printf.sprintf "trial %d: salvage leaves no quarantine" seed)
          [] quarantined;
      record
        (if heap_reset then "rebuilt"
         else if salvaged <> [] || deferred <> [] then "salvaged"
         else if quarantined <> [] then "quarantined"
         else "clean");
      List.iter
        (fun (name, oracle) ->
          if List.mem name quarantined then (
            match dump e2 name with
            | _ -> Alcotest.failf "trial %d: quarantined %s served" seed name
            | exception Not_found -> ())
          else if dump e2 name <> oracle then
            Alcotest.failf
              "trial %d (salvage=%b): table %s differs from committed state"
              seed salvage name)
        [ ("a", oracle_a); ("b", oracle_b) ];
      if salvage && not heap_reset then begin
        E.restore_drain e2;
        Alcotest.(check (list (pair string (list int))))
          (Printf.sprintf "trial %d: restore map drains to empty" seed)
          [] (E.quarantined_segments e2)
      end

let test_fuzz_salvage () =
  for seed = 0 to 59 do
    fuzz_trial ~salvage:true seed
  done

let test_fuzz_no_salvage () =
  for seed = 100 to 159 do
    fuzz_trial ~salvage:false seed
  done;
  (* the sweep must actually exercise the damage paths, not skate on
     faults that all landed in block padding *)
  let hits o = try Hashtbl.find fuzz_outcomes o with Not_found -> 0 in
  Alcotest.(check bool) "fuzz reached non-clean outcomes" true
    (hits "salvaged" + hits "rebuilt" + hits "quarantined" + hits "refused" > 0)

let () =
  Obs.set_enabled true;
  Alcotest.run "faults"
    [
      ( "seal",
        [
          Alcotest.test_case "zero & roundtrip" `Quick test_seal_zero;
          Alcotest.test_case "region corrupt word" `Quick
            test_seal_region_corrupt;
          QCheck_alcotest.to_alcotest prop_seal_roundtrip;
          QCheck_alcotest.to_alcotest prop_seal_detects_any_bitflip;
        ] );
      ( "injection",
        [
          Alcotest.test_case "deterministic per seed" `Quick
            test_fault_determinism;
          Alcotest.test_case "stuck byte defeats writeback" `Quick
            test_stuck_byte_survives_writeback;
        ] );
      ( "wal",
        [
          Alcotest.test_case "mid-log corruption truncates cleanly" `Quick
            test_wal_midlog_corruption;
          Alcotest.test_case "checkpoint corruption falls back to logs" `Quick
            test_checkpoint_corruption_falls_back;
          Alcotest.test_case "checkpoint.bak fallback" `Quick
            test_checkpoint_bak_fallback;
        ] );
      ( "quarantine",
        [
          Alcotest.test_case "no archive: serve healthy tables" `Quick
            test_quarantine_no_salvage;
          Alcotest.test_case "heap damage without archive raises" `Quick
            test_heap_damage_without_salvage_raises;
        ] );
      ( "salvage",
        [
          Alcotest.test_case "rebuild one table from checkpoint+log" `Quick
            test_salvage_rebuilds_table;
          Alcotest.test_case "total loss degrades to full rebuild" `Quick
            test_total_loss_rebuild;
        ] );
      ( "scrub",
        [
          Alcotest.test_case "clean image" `Quick test_scrub_clean;
          Alcotest.test_case "cid plausibility cross-check" `Quick
            test_deep_verify_catches_cid_damage;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "60 trials with salvage archive" `Slow
            test_fuzz_salvage;
          Alcotest.test_case "60 trials without archive" `Slow
            test_fuzz_no_salvage;
        ] );
    ]
