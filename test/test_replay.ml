(* Differential tests for partitioned parallel WAL replay and adaptive
   command/value logging (docs/PROTOCOLS.md §14).

   The contract: [Engine.recover_log] over the same log produces a
   byte-identical NVM image ([Engine.media_digest]) at any [Par.jobs],
   under any log policy, through torn log tails and CID bounds — jobs=1
   is the exact pre-parallel serial loop, jobs>1 the wave-pipelined
   partitioned replay. Scratch replays ([~reopen:false]) must leave the
   log bytes untouched and must not re-arm the log. *)

module E = Core.Engine
module Region = Nvm.Region
module Value = Storage.Value
module Prng = Util.Prng
module Ycsb = Workload.Ycsb
module Log = Wal.Log

let mib = 1024 * 1024

let tmpdir () =
  let d = Filename.temp_file "replaytest" "" in
  Sys.remove d;
  d

let with_jobs n f =
  let was = Par.jobs () in
  Par.set_jobs n;
  Fun.protect ~finally:(fun () -> Par.set_jobs was) f

let log_setup ?(size = 64 * mib) () =
  let lc = { (Log.default_config ~dir:(tmpdir ())) with Log.fsync = false } in
  let cfg =
    {
      E.region = Region.config_with_size size;
      durability = E.Logging lc;
      salvage = None;
    }
  in
  (cfg, lc)

let ycsb_cfg rows =
  { Ycsb.default_config with rows; read_pct = 10; update_pct = 60;
    zipf_theta = 0.99 }

(* Build a crashed log-mode database: seeded YCSB spec stream under the
   given log policy (checkpoint right after setup, so the whole op
   stream rides in the log and replays), then power failure. Returns the
   engine config + log config the replays attach to. *)
let build ?(rows = 300) ?(ops = 120) ?(writers = 1) ?(cfg_mix = ycsb_cfg)
    ~seed ~policy () =
  let cfg, lc = log_setup () in
  let e = E.create cfg in
  E.set_log_policy e policy;
  let rng = Prng.create (Int64.of_int seed) in
  let sess = Ycsb.setup e (Prng.split rng) (cfg_mix rows) in
  ignore (E.checkpoint e);
  let specs = Ycsb.gen_specs sess (Prng.split rng) ~ops in
  if writers <= 1 then ignore (Ycsb.run_specs sess specs)
  else begin
    E.set_writers e writers;
    ignore
      (with_jobs (writers + 1) (fun () -> Ycsb.run_specs sess specs))
  end;
  ignore (E.crash e Region.Drop_unfenced);
  (cfg, lc)

(* One scratch replay at [jobs]: the image digest plus the detail the
   assertions read. The replayed engine is disposed via crash (its
   [~reopen:false] recovery never re-armed the log). *)
let replay ?bound ?sanitize ~jobs cfg lc =
  with_jobs jobs (fun () ->
      let e, detail = E.recover_log ?bound ?sanitize ~reopen:false cfg lc in
      let digest = E.media_digest e in
      let restart_events = List.length (E.blackbox e).E.restart in
      ignore (E.crash e Region.Drop_unfenced);
      (digest, detail, restart_events))

let committed = function
  | E.Rv_log { committed_txns; _ } -> committed_txns
  | _ -> Alcotest.fail "expected Rv_log detail"

let cmd_txns = function
  | E.Rv_log { command_txns; _ } -> command_txns
  | _ -> Alcotest.fail "expected Rv_log detail"

let replay_jobs = function
  | E.Rv_log { replay_jobs; _ } -> replay_jobs
  | _ -> Alcotest.fail "expected Rv_log detail"

(* -------- policy x jobs differential fuzzer -------- *)

let check_jobs_parity ~name cfg lc =
  let d1, detail1, _ = replay ~jobs:1 cfg lc in
  Alcotest.(check int) (name ^ " serial detail jobs") 1 (replay_jobs detail1);
  List.iter
    (fun jobs ->
      let dj, detailj, _ = replay ~jobs cfg lc in
      Alcotest.(check string)
        (Printf.sprintf "%s jobs %d media digest" name jobs)
        d1 dj;
      Alcotest.(check int)
        (Printf.sprintf "%s jobs %d committed" name jobs)
        (committed detail1) (committed detailj);
      Alcotest.(check int)
        (Printf.sprintf "%s jobs %d command txns" name jobs)
        (cmd_txns detail1) (cmd_txns detailj))
    [ 2; 4 ]

let test_policy_jobs_matrix () =
  List.iter
    (fun (pname, policy) ->
      List.iter
        (fun seed ->
          let cfg, lc = build ~seed ~policy () in
          check_jobs_parity
            ~name:(Printf.sprintf "%s seed %d" pname seed)
            cfg lc)
        [ 3; 17 ])
    [ ("value", `Value); ("command", `Command); ("adaptive", `Adaptive) ]

(* aborts through the pipeline: buffered command-policy records must
   flush before the Abort record, or replayed row numbering diverges *)
let test_pipeline_aborts_parity () =
  let contended rows =
    { Ycsb.default_config with rows; read_pct = 0; update_pct = 80;
      zipf_theta = 0.99 }
  in
  List.iter
    (fun (pname, policy) ->
      let cfg, lc =
        build ~seed:29 ~rows:150 ~ops:160 ~writers:2 ~cfg_mix:contended
          ~policy ()
      in
      check_jobs_parity ~name:("pipeline " ^ pname) cfg lc)
    [ ("command", `Command); ("adaptive", `Adaptive) ]

(* -------- torn log tail -------- *)

let test_torn_tail_parity () =
  let cfg, lc = build ~seed:7 ~policy:`Command () in
  let _, whole, _ = replay ~jobs:1 cfg lc in
  (* tear the newest epoch's file mid-frame: a partial record past the
     last complete commit *)
  let epoch = List.fold_left max 0 (Log.epochs ~dir:lc.Log.dir) in
  let path = Log.log_path ~dir:lc.Log.dir ~epoch in
  let len = (Unix.stat path).Unix.st_size in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd (len - 7);
  Unix.close fd;
  let d1, torn, _ = replay ~jobs:1 cfg lc in
  Alcotest.(check bool) "tear dropped the tail" true
    (committed torn < committed whole);
  List.iter
    (fun jobs ->
      let dj, tornj, _ = replay ~jobs cfg lc in
      Alcotest.(check string)
        (Printf.sprintf "torn tail jobs %d digest" jobs)
        d1 dj;
      Alcotest.(check int)
        (Printf.sprintf "torn tail jobs %d committed" jobs)
        (committed torn) (committed tornj))
    [ 2; 4 ]

(* -------- armed sanitizer -------- *)

let test_sanitized_parallel_replay () =
  let cfg, lc = build ~seed:5 ~policy:`Adaptive () in
  let d1, _, _ = replay ~jobs:1 cfg lc in
  let d4, _, _ = replay ~sanitize:true ~jobs:4 cfg lc in
  Alcotest.(check string) "sanitized parallel replay digest" d1 d4

(* -------- bound handling and scratch-replay hygiene -------- *)

let dir_fingerprint dir =
  List.sort compare
    (List.filter_map
       (fun f ->
         let p = Filename.concat dir f in
         if Sys.is_directory p then None else Some (f, Digest.file p))
       (Array.to_list (Sys.readdir dir)))

let test_bound_exact () =
  let cfg, lc = build ~seed:13 ~policy:`Command () in
  let before = dir_fingerprint lc.Log.dir in
  let _, whole, _ = replay ~jobs:1 cfg lc in
  let e_last, _ = E.recover_log ~reopen:false cfg lc in
  let last = E.last_cid e_last in
  ignore (E.crash e_last Region.Drop_unfenced);
  (* serial transactions take consecutive CIDs: cutting the bound k
     commits short must replay exactly k fewer transactions *)
  let k = 5 in
  let bound = Int64.sub last (Int64.of_int k) in
  let d1, b1, _ = replay ~bound ~jobs:1 cfg lc in
  Alcotest.(check int) "bound drops exactly k commits"
    (committed whole - k) (committed b1);
  List.iter
    (fun jobs ->
      let dj, bj, _ = replay ~bound ~jobs cfg lc in
      Alcotest.(check string)
        (Printf.sprintf "bounded jobs %d digest" jobs)
        d1 dj;
      Alcotest.(check int)
        (Printf.sprintf "bounded jobs %d committed" jobs)
        (committed b1) (committed bj))
    [ 2; 4 ];
  Alcotest.(check bool) "scratch replays left every log byte untouched"
    true
    (dir_fingerprint lc.Log.dir = before)

let test_no_blackbox_double_emission () =
  (* a command record re-executes engine mutations; none of them may
     reach the flight recorder twice — two scratch replays of the same
     log record identical restart timelines *)
  let cfg, lc = build ~seed:19 ~policy:`Command () in
  let _, _, ev1 = replay ~jobs:1 cfg lc in
  let _, _, ev1' = replay ~jobs:1 cfg lc in
  let _, _, ev4 = replay ~jobs:4 cfg lc in
  Alcotest.(check int) "replay timeline is reproducible" ev1 ev1';
  Alcotest.(check int) "parallel replay emits the same timeline" ev1 ev4

(* -------- adaptive policy choice -------- *)

let test_adaptive_picks_command_for_updates () =
  let update_heavy rows =
    { Ycsb.default_config with rows; read_pct = 0; update_pct = 100;
      zipf_theta = 0.99 }
  in
  let cfg, lc =
    build ~seed:23 ~cfg_mix:update_heavy ~policy:`Adaptive ()
  in
  let _, detail, _ = replay ~jobs:1 cfg lc in
  Alcotest.(check bool) "update txns command-logged" true (cmd_txns detail > 0);
  Alcotest.(check int) "every update txn command-logged" (committed detail)
    (cmd_txns detail)

let test_adaptive_picks_value_for_inserts () =
  let insert_only rows =
    { Ycsb.default_config with rows; read_pct = 0; update_pct = 0;
      zipf_theta = 0.99 }
  in
  let cfg, lc =
    build ~seed:23 ~cfg_mix:insert_only ~policy:`Adaptive ()
  in
  let _, detail, _ = replay ~jobs:1 cfg lc in
  Alcotest.(check bool) "insert txns replayed" true (committed detail > 0);
  Alcotest.(check int) "insert txns value-logged" 0 (cmd_txns detail)

let () =
  Alcotest.run "replay"
    [
      ( "parity",
        [
          Alcotest.test_case "policy x jobs matrix (2 seeds)" `Quick
            test_policy_jobs_matrix;
          Alcotest.test_case "pipelined aborts" `Quick
            test_pipeline_aborts_parity;
          Alcotest.test_case "torn log tail" `Quick test_torn_tail_parity;
          Alcotest.test_case "sanitized parallel replay" `Quick
            test_sanitized_parallel_replay;
        ] );
      ( "scratch",
        [
          Alcotest.test_case "bound honored exactly, log untouched" `Quick
            test_bound_exact;
          Alcotest.test_case "no blackbox double emission" `Quick
            test_no_blackbox_double_emission;
        ] );
      ( "policy",
        [
          Alcotest.test_case "adaptive: updates go command" `Quick
            test_adaptive_picks_command_for_updates;
          Alcotest.test_case "adaptive: inserts go value" `Quick
            test_adaptive_picks_value_for_inserts;
        ] );
    ]
