(* Tests for the query layer: predicate semantics, dictionary-space
   compilation on both partitions, filtered scans, aggregation — with a
   qcheck property checking the compiled path against naive decoded
   evaluation across merge states. *)

module E = Core.Engine
module Value = Storage.Value
module Schema = Storage.Schema
module Predicate = Query.Predicate
module Aggregate = Query.Aggregate
module Prng = Util.Prng

let nvm_engine ?(size = 16 * 1024 * 1024) () =
  E.create (E.default_config ~size E.Nvm)

let schema =
  [|
    Schema.column ~indexed:true "id" Value.Int_t;
    Schema.column "city" Value.Text_t;
    Schema.column "amount" Value.Int_t;
    Schema.column "score" Value.Float_t;
  |]

let mk_engine rows =
  let e = nvm_engine () in
  E.create_table e ~name:"t" schema;
  E.with_txn e (fun txn ->
      List.iteri
        (fun i (city, amount, score) ->
          ignore
            (E.insert e txn "t"
               [| Value.Int i; Value.Text city; Value.Int amount; Value.Float score |]))
        rows);
  e

let sample =
  [
    ("berlin", 10, 1.5);
    ("amsterdam", 20, 2.5);
    ("chicago", 30, 3.5);
    ("berlin", 40, 4.5);
    ("delhi", 50, 0.5);
    ("amsterdam", 60, 2.5);
  ]

let ids e filters =
  E.with_txn e (fun txn -> List.map fst (E.where e txn "t" filters))

(* -------- predicate semantics -------- *)

let test_eval () =
  let open Predicate in
  Alcotest.(check bool) "eq" true (eval (Cmp (Eq, Value.Int 5)) (Value.Int 5));
  Alcotest.(check bool) "ne" true (eval (Cmp (Ne, Value.Int 5)) (Value.Int 6));
  Alcotest.(check bool) "lt" true (eval (Cmp (Lt, Value.Int 5)) (Value.Int 4));
  Alcotest.(check bool) "le edge" true (eval (Cmp (Le, Value.Int 5)) (Value.Int 5));
  Alcotest.(check bool) "gt" false (eval (Cmp (Gt, Value.Int 5)) (Value.Int 5));
  Alcotest.(check bool) "ge" true (eval (Cmp (Ge, Value.Int 5)) (Value.Int 5));
  Alcotest.(check bool) "between inclusive" true
    (eval (Between (Value.Int 1, Value.Int 3)) (Value.Int 3));
  Alcotest.(check bool) "in" true
    (eval (In [ Value.Text "a"; Value.Text "b" ]) (Value.Text "b"));
  Alcotest.(check bool) "any" true (eval Any (Value.Float 0.0))

(* -------- scans on delta, main, and mixed -------- *)

let check_filters e () =
  Alcotest.(check (list int)) "eq text" [ 0; 3 ]
    (ids e [ ("city", Predicate.Cmp (Eq, Value.Text "berlin")) ]);
  Alcotest.(check (list int)) "range int" [ 1; 2; 3 ]
    (ids e [ ("amount", Predicate.Between (Value.Int 20, Value.Int 40)) ]);
  Alcotest.(check (list int)) "gt float" [ 2; 3 ]
    (ids e [ ("score", Predicate.Cmp (Gt, Value.Float 2.5)) ]);
  Alcotest.(check (list int)) "ne" [ 1; 2; 4; 5 ]
    (ids e [ ("city", Predicate.Cmp (Ne, Value.Text "berlin")) ]);
  Alcotest.(check (list int)) "in set" [ 1; 4; 5 ]
    (ids e [ ("city", Predicate.In [ Value.Text "amsterdam"; Value.Text "delhi" ]) ]);
  Alcotest.(check (list int)) "conjunction" [ 3 ]
    (ids e
       [
         ("city", Predicate.Cmp (Eq, Value.Text "berlin"));
         ("amount", Predicate.Cmp (Gt, Value.Int 10));
       ]);
  Alcotest.(check (list int)) "empty result" []
    (ids e [ ("city", Predicate.Cmp (Eq, Value.Text "nowhere")) ]);
  Alcotest.(check (list int)) "any" [ 0; 1; 2; 3; 4; 5 ] (ids e [ ("id", Predicate.Any) ])

let test_scan_delta () = check_filters (mk_engine sample) ()

let test_scan_main () =
  let e = mk_engine sample in
  ignore (E.merge e "t");
  check_filters e ()

let test_scan_mixed () =
  let e = nvm_engine () in
  E.create_table e ~name:"t" schema;
  let insert i (city, amount, score) =
    E.with_txn e (fun txn ->
        ignore
          (E.insert e txn "t"
             [| Value.Int i; Value.Text city; Value.Int amount; Value.Float score |]))
  in
  List.iteri (fun i r -> if i < 3 then insert i r) sample;
  ignore (E.merge e "t");
  List.iteri (fun i r -> if i >= 3 then insert i r) sample;
  check_filters e ()

let test_scan_respects_visibility () =
  let e = mk_engine sample in
  let t1 = E.begin_txn e in
  ignore
    (E.insert e t1 "t"
       [| Value.Int 99; Value.Text "berlin"; Value.Int 1; Value.Float 0.0 |]);
  (* other transactions do not see the staged berlin row *)
  E.with_txn e (fun txn ->
      Alcotest.(check int) "count excludes staged" 2
        (E.count_where e txn "t" [ ("city", Predicate.Cmp (Eq, Value.Text "berlin")) ]));
  (* the writer sees it *)
  Alcotest.(check int) "own write included" 3
    (E.count_where e t1 "t" [ ("city", Predicate.Cmp (Eq, Value.Text "berlin")) ]);
  E.abort e t1

let test_count_where () =
  let e = mk_engine sample in
  E.with_txn e (fun txn ->
      Alcotest.(check int) "count" 3
        (E.count_where e txn "t" [ ("amount", Predicate.Cmp (Ge, Value.Int 40)) ]))

(* -------- aggregation -------- *)

let test_aggregate_ungrouped () =
  let e = mk_engine sample in
  E.with_txn e (fun txn ->
      let r =
        E.aggregate e txn "t"
          ~specs:[ Aggregate.Count; Aggregate.Sum "amount"; Aggregate.Avg "amount";
                   Aggregate.Min "city"; Aggregate.Max "score" ]
          ()
      in
      match r.Aggregate.groups with
      | [ (None, cells) ] ->
          Alcotest.(check string) "count" "6" (Aggregate.cell_to_string cells.(0));
          Alcotest.(check string) "sum" "210" (Aggregate.cell_to_string cells.(1));
          Alcotest.(check string) "avg" "35" (Aggregate.cell_to_string cells.(2));
          Alcotest.(check string) "min city" "amsterdam"
            (Aggregate.cell_to_string cells.(3));
          Alcotest.(check string) "max score" "4.5"
            (Aggregate.cell_to_string cells.(4))
      | _ -> Alcotest.fail "expected one group")

let test_aggregate_grouped () =
  let e = mk_engine sample in
  E.with_txn e (fun txn ->
      let r =
        E.aggregate e txn "t" ~group_by:"city"
          ~specs:[ Aggregate.Count; Aggregate.Sum "amount" ] ()
      in
      let rows =
        List.map
          (fun (k, cells) ->
            ( (match k with Some v -> Value.to_string v | None -> "?"),
              Aggregate.cell_to_string cells.(0),
              Aggregate.cell_to_string cells.(1) ))
          r.Aggregate.groups
      in
      Alcotest.(check (list (triple string string string)))
        "grouped sums (sorted by key)"
        [
          ("amsterdam", "2", "80");
          ("berlin", "2", "50");
          ("chicago", "1", "30");
          ("delhi", "1", "50");
        ]
        rows)

let test_aggregate_filtered () =
  let e = mk_engine sample in
  E.with_txn e (fun txn ->
      let r =
        E.aggregate e txn "t" ~specs:[ Aggregate.Sum "amount" ]
          ~filters:[ ("city", Predicate.Cmp (Eq, Value.Text "amsterdam")) ]
          ()
      in
      match r.Aggregate.groups with
      | [ (None, [| c |]) ] ->
          Alcotest.(check string) "filtered sum" "80" (Aggregate.cell_to_string c)
      | _ -> Alcotest.fail "expected one group")

let test_aggregate_empty_table () =
  let e = nvm_engine () in
  E.create_table e ~name:"t" schema;
  E.with_txn e (fun txn ->
      let r = E.aggregate e txn "t" ~specs:[ Aggregate.Count; Aggregate.Min "id" ] () in
      match r.Aggregate.groups with
      | [ (None, cells) ] ->
          Alcotest.(check string) "count 0" "0" (Aggregate.cell_to_string cells.(0));
          Alcotest.(check string) "min null" "null" (Aggregate.cell_to_string cells.(1))
      | _ -> Alcotest.fail "expected one group")

let test_aggregate_non_numeric_sum_rejected () =
  let e = mk_engine sample in
  E.with_txn e (fun txn ->
      try
        ignore (E.aggregate e txn "t" ~specs:[ Aggregate.Sum "city" ] ());
        Alcotest.fail "expected Invalid_argument"
      with Invalid_argument _ -> ())

let test_aggregate_empty_group_cells () =
  (* Avg/Min/Max over a filter that matches nothing must be null, Count 0,
     Sum 0 — through the block engine and identically through the row
     oracle *)
  let e = mk_engine sample in
  E.with_txn e (fun txn ->
      List.iter
        (fun impl ->
          let r =
            E.aggregate ~impl e txn "t"
              ~specs:
                [ Aggregate.Count; Aggregate.Sum "amount";
                  Aggregate.Avg "amount"; Aggregate.Min "amount";
                  Aggregate.Max "score" ]
              ~filters:[ ("amount", Predicate.Cmp (Predicate.Gt, Value.Int 1000)) ]
              ()
          in
          match r.Aggregate.groups with
          | [ (None, cells) ] ->
              Alcotest.(check (array string)) "empty-group cells"
                [| "0"; "0"; "null"; "null"; "null" |]
                (Array.map Aggregate.cell_to_string cells)
          | _ -> Alcotest.fail "expected one group")
        [ `Block; `Row ])

(* -------- block engine vs row-at-a-time oracle -------- *)

let both_ids e txn filters =
  ( List.map fst (E.where ~impl:`Block e txn "t" filters),
    List.map fst (E.where ~impl:`Row e txn "t" filters) )

let check_both e txn label filters =
  let block, row = both_ids e txn filters in
  Alcotest.(check (list int)) label row block

(* Deterministic block-boundary coverage: enough main rows for several
   full 1024-row blocks plus a partial tail, and a delta straddling one
   boundary. *)
let test_block_boundaries () =
  let e = nvm_engine ~size:(64 * 1024 * 1024) () in
  E.create_table e ~name:"t" schema;
  let insert_range lo hi =
    let i = ref lo in
    while !i < hi do
      let n = min 512 (hi - !i) in
      E.with_txn e (fun txn ->
          for j = !i to !i + n - 1 do
            ignore
              (E.insert e txn "t"
                 [| Value.Int j; Value.Text (string_of_int (j mod 7));
                    Value.Int (j mod 1000); Value.Float 0.0 |])
          done);
      i := !i + n
    done
  in
  insert_range 0 2500;
  ignore (E.merge e "t");
  insert_range 2500 3800;
  E.with_txn e (fun txn ->
      check_both e txn "low selectivity"
        [ ("amount", Predicate.Cmp (Predicate.Lt, Value.Int 10)) ];
      check_both e txn "mid selectivity"
        [ ("amount", Predicate.Cmp (Predicate.Lt, Value.Int 300)) ];
      check_both e txn "all rows" [ ("id", Predicate.Any) ];
      check_both e txn "none"
        [ ("amount", Predicate.Cmp (Predicate.Eq, Value.Int 5000)) ];
      check_both e txn "conjunction"
        [
          ("amount", Predicate.Cmp (Predicate.Lt, Value.Int 500));
          ("city", Predicate.Cmp (Predicate.Eq, Value.Text "3"));
        ];
      (* exactly the rows at block edges *)
      check_both e txn "block edge ids"
        [ ("id", Predicate.In [ Value.Int 1023; Value.Int 1024; Value.Int 2047;
                                Value.Int 2048; Value.Int 2499; Value.Int 2500 ]) ])

let test_block_vs_row_under_uncommitted () =
  let e = mk_engine sample in
  (* a second transaction with staged inserts and a staged delete *)
  let t1 = E.begin_txn e in
  ignore
    (E.insert e t1 "t"
       [| Value.Int 100; Value.Text "berlin"; Value.Int 70; Value.Float 1.0 |]);
  List.iter
    (fun (r, _) -> E.delete e t1 "t" r)
    (E.where e t1 "t" [ ("id", Predicate.Cmp (Predicate.Eq, Value.Int 0)) ]);
  (* a reader does not see t1's writes — on either engine *)
  E.with_txn e (fun txn ->
      check_both e txn "reader ignores staged"
        [ ("city", Predicate.Cmp (Predicate.Eq, Value.Text "berlin")) ]);
  (* t1 sees its own insert and not its own delete — on either engine *)
  check_both e t1 "own writes"
    [ ("city", Predicate.Cmp (Predicate.Eq, Value.Text "berlin")) ];
  let block, row = both_ids e t1 [ ("id", Predicate.Any) ] in
  Alcotest.(check (list int)) "own writes, any" row block;
  Alcotest.(check bool) "deleted row gone" true (not (List.mem 0 block));
  Alcotest.(check bool) "staged insert seen" true (List.mem 6 block);
  E.abort e t1;
  E.with_txn e (fun txn -> check_both e txn "after abort" [ ("id", Predicate.Any) ])

(* Both engines snapshot the delta length at scan start: a row committed
   by another transaction while a scan is in flight is not delivered by
   that scan (and never tears it). Streams through [Scan.run] because
   [E.where] materializes before the caller sees anything. *)
let test_block_scan_mid_scan_inserts () =
  let e = mk_engine sample in
  let next_id = ref 100 in
  let observed impl =
    let acc = ref [] in
    let inserted = ref false in
    E.with_txn e (fun txn ->
        Query.Scan.run ~impl txn (E.table e "t")
          ~filters:[ { Query.Scan.col = "id"; pred = Predicate.Any } ]
          (fun r ->
            acc := r :: !acc;
            if not !inserted then begin
              inserted := true;
              E.with_txn e (fun w ->
                  ignore
                    (E.insert e w "t"
                       [| Value.Int !next_id; Value.Text "x"; Value.Int 0;
                          Value.Float 0.0 |]);
                  incr next_id)
            end));
    List.rev !acc
  in
  (* 6 seed rows; the block run commits row 6 mid-scan, the row run
     (seeing 7 rows at start) commits row 7 mid-scan *)
  Alcotest.(check (list int)) "block run" [ 0; 1; 2; 3; 4; 5 ] (observed `Block);
  Alcotest.(check (list int)) "row run" [ 0; 1; 2; 3; 4; 5; 6 ] (observed `Row)

(* Differential fuzz: random workload of committed inserts, updates,
   deletes, merges and an uncommitted writer, then block and row engines
   must return identical row ids and aggregates — under an armed
   persist-order sanitizer. *)
let prop_block_equals_row =
  QCheck.Test.make ~name:"block engine = row oracle under mixed workloads"
    ~count:60
    QCheck.(
      make
        ~print:(fun (seed, n, merge_at) ->
          Printf.sprintf "seed=%Ld n=%d merge_at=%d" seed n merge_at)
        Gen.(
          triple (map Int64.of_int (int_range 1 100000)) (int_range 0 120)
            (int_range 0 120)))
    (fun (seed, n, merge_at) ->
      let rng = Prng.create seed in
      let e = E.create ~sanitize:true (E.default_config ~size:(32 * 1024 * 1024) E.Nvm) in
      E.create_table e ~name:"t" schema;
      for i = 0 to n - 1 do
        if i = merge_at then ignore (E.merge e "t");
        E.with_txn e (fun txn ->
            ignore
              (E.insert e txn "t"
                 [| Value.Int i; Value.Text (string_of_int (Prng.int rng 5));
                    Value.Int (Prng.int rng 50); Value.Float 0.0 |]);
            (* sometimes mutate an earlier row in the same transaction *)
            if i > 0 && Prng.int rng 4 = 0 then
              let victim = Prng.int rng i in
              let targets =
                E.where e txn "t"
                  [ ("id", Predicate.Cmp (Predicate.Eq, Value.Int victim)) ]
              in
              try
                List.iter
                  (fun (r, values) ->
                    if Prng.int rng 2 = 0 then E.delete e txn "t" r
                    else begin
                      values.(2) <- Value.Int (Prng.int rng 50);
                      ignore (E.update e txn "t" r values)
                    end)
                  targets
              with Txn.Mvcc.Write_conflict _ -> ())
      done;
      (* an uncommitted writer with staged rows while we compare *)
      let w = E.begin_txn e in
      ignore
        (E.insert e w "t"
           [| Value.Int 9999; Value.Text "0"; Value.Int 1; Value.Float 0.0 |]);
      let agree txn =
        List.for_all
          (fun filters ->
            let block, row = both_ids e txn filters in
            block = row)
          [
            [ ("id", Predicate.Any) ];
            [ ("amount", Predicate.Cmp (Predicate.Lt, Value.Int 10)) ];
            [ ("city", Predicate.Cmp (Predicate.Eq, Value.Text "3")) ];
            [ ("amount", Predicate.Between (Value.Int 10, Value.Int 30));
              ("city", Predicate.Cmp (Predicate.Ne, Value.Text "1")) ];
          ]
      in
      let reader_ok = E.with_txn e (fun txn -> agree txn) in
      let writer_ok = agree w in
      E.abort e w;
      let clean =
        match E.sanitizer e with
        | Some san -> Nvm.Sanitizer.correctness_violations san = 0
        | None -> false
      in
      reader_ok && writer_ok && clean)

(* -------- property: compiled scans = naive evaluation -------- *)

let gen_pred =
  QCheck.Gen.(
    let value = map (fun i -> Value.Int i) (int_range 0 30) in
    frequency
      [
        ( 6,
          map2
            (fun op v -> Predicate.Cmp (op, v))
            (oneofl Predicate.[ Eq; Ne; Lt; Le; Gt; Ge ])
            value );
        (2, map2 (fun a b -> Predicate.Between (Value.Int (min a b), Value.Int (max a b)))
             (int_range 0 30) (int_range 0 30));
        (1, map (fun vs -> Predicate.In (List.map (fun v -> Value.Int v) vs))
             (list_size (int_range 0 4) (int_range 0 30)));
      ])

let print_pred p =
  let v = Value.to_string in
  match p with
  | Predicate.Any -> "any"
  | Predicate.Cmp (op, x) ->
      Printf.sprintf "%s %s"
        (match op with
        | Predicate.Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<="
        | Gt -> ">" | Ge -> ">=")
        (v x)
  | Predicate.Between (a, b) -> Printf.sprintf "between %s %s" (v a) (v b)
  | Predicate.In vs -> "in [" ^ String.concat ";" (List.map v vs) ^ "]"

let prop_compiled_equals_naive =
  QCheck.Test.make ~name:"compiled scan = naive evaluation (all partitions)"
    ~count:150
    QCheck.(
      make
        ~print:(fun (rows, merge_at, p) ->
          Printf.sprintf "rows=%s merge_at=%d pred=(%s)"
            (String.concat "," (List.map string_of_int rows))
            merge_at (print_pred p))
        Gen.(
          triple
            (list_size (int_range 0 40) (int_range 0 30))
            (int_range 0 40) gen_pred))
    (fun (amounts, merge_at, pred) ->
      let e = nvm_engine () in
      E.create_table e ~name:"t" schema;
      List.iteri
        (fun i a ->
          if i = merge_at then ignore (E.merge e "t");
          E.with_txn e (fun txn ->
              ignore
                (E.insert e txn "t"
                   [| Value.Int i; Value.Text (string_of_int (a mod 5));
                      Value.Int a; Value.Float (float_of_int a) |])))
        amounts;
      let compiled =
        E.with_txn e (fun txn ->
            List.map fst (E.where e txn "t" [ ("amount", pred) ]))
      in
      let naive =
        List.filteri (fun _ a -> Predicate.eval pred (Value.Int a)) amounts
        |> List.length
      in
      List.length compiled = naive)

let prop_text_predicates_equal_naive =
  (* exercises the string dict_key (hash) path, including collisions-by-
     construction being verified semantically *)
  QCheck.Test.make ~name:"text predicates: compiled = naive" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(int_range 0 30) (int_bound 6))
        (pair (int_bound 6) (oneofl [ `Eq; `Ne; `In ])))
    (fun (rows, (target, op)) ->
      let word i = String.make 1 (Char.chr (Char.code 'a' + i)) in
      let e = nvm_engine () in
      E.create_table e ~name:"t" schema;
      List.iteri
        (fun i w ->
          E.with_txn e (fun txn ->
              ignore
                (E.insert e txn "t"
                   [| Value.Int i; Value.Text (word w); Value.Int 0;
                      Value.Float 0.0 |])))
        rows;
      let target_v = Value.Text (word target) in
      let pred =
        match op with
        | `Eq -> Predicate.Cmp (Predicate.Eq, target_v)
        | `Ne -> Predicate.Cmp (Predicate.Ne, target_v)
        | `In -> Predicate.In [ target_v; Value.Text (word ((target + 1) mod 7)) ]
      in
      let compiled =
        E.with_txn e (fun txn -> E.count_where e txn "t" [ ("city", pred) ])
      in
      let naive =
        List.length
          (List.filter (fun w -> Predicate.eval pred (Value.Text (word w))) rows)
      in
      compiled = naive)

let () =
  Alcotest.run "query"
    [
      ("predicate", [ Alcotest.test_case "eval" `Quick test_eval ]);
      ( "scan",
        [
          Alcotest.test_case "delta partition" `Quick test_scan_delta;
          Alcotest.test_case "main partition" `Quick test_scan_main;
          Alcotest.test_case "mixed partitions" `Quick test_scan_mixed;
          Alcotest.test_case "visibility" `Quick test_scan_respects_visibility;
          Alcotest.test_case "count_where" `Quick test_count_where;
          QCheck_alcotest.to_alcotest prop_compiled_equals_naive;
          QCheck_alcotest.to_alcotest prop_text_predicates_equal_naive;
        ] );
      ( "block-engine",
        [
          Alcotest.test_case "block boundaries" `Quick test_block_boundaries;
          Alcotest.test_case "uncommitted writers" `Quick
            test_block_vs_row_under_uncommitted;
          Alcotest.test_case "mid-scan inserts" `Quick
            test_block_scan_mid_scan_inserts;
          QCheck_alcotest.to_alcotest prop_block_equals_row;
        ] );
      ( "aggregate",
        [
          Alcotest.test_case "ungrouped" `Quick test_aggregate_ungrouped;
          Alcotest.test_case "grouped" `Quick test_aggregate_grouped;
          Alcotest.test_case "filtered" `Quick test_aggregate_filtered;
          Alcotest.test_case "empty table" `Quick test_aggregate_empty_table;
          Alcotest.test_case "non-numeric sum rejected" `Quick
            test_aggregate_non_numeric_sum_rejected;
          Alcotest.test_case "empty group cells" `Quick
            test_aggregate_empty_group_cells;
        ] );
    ]
