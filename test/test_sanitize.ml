(* Persist-order sanitizer tests: shadow-state mirroring, each violation
   class (including the deliberately broken publish the checker must
   catch), the annotated pstruct/allocator protocols running clean, the
   fence-elision savings, and ≥100-point crash fuzzing of
   [Allocator.activate ~link] under adversarial eviction. *)

module Region = Nvm.Region
module S = Nvm.Sanitizer
module A = Nvm_alloc.Allocator
module Pvector = Pstruct.Pvector
module Phash = Pstruct.Phash
module Pbtree = Pstruct.Pbtree
module Parena = Pstruct.Parena
module Prng = Util.Prng
module Engine = Core.Engine

let mk_region ?(size = 256 * 1024) () =
  Region.create { Region.default_config with size }

let fresh ?size () =
  let region = mk_region ?size () in
  let san = S.attach region in
  (region, san)

let check_counts san ~correctness ~perf =
  Alcotest.(check int) "correctness" correctness (S.count san S.Correctness);
  Alcotest.(check int) "perf" perf (S.count san S.Perf)

(* -- shadow-state machine -- *)

let test_word_lifecycle () =
  let r, san = fresh () in
  Alcotest.(check int) "starts empty" 0 (S.tracked_words san);
  Region.set_i64 r 512 1L;
  Alcotest.(check bool) "dirty" true (S.word_state san 512 = `Dirty);
  Region.writeback r 512 8;
  Alcotest.(check bool) "scheduled" true (S.word_state san 512 = `Scheduled);
  Region.fence r;
  Alcotest.(check bool) "clean" true (S.word_state san 512 = `Clean);
  Alcotest.(check int) "drained" 0 (S.tracked_words san);
  check_counts san ~correctness:0 ~perf:0

let test_store_after_writeback_is_dirty () =
  let r, san = fresh () in
  Region.set_i64 r 512 1L;
  Region.writeback r 512 8;
  Region.set_i64 r 512 2L;
  (* the queued snapshot predates the second store *)
  Region.fence r;
  Alcotest.(check bool) "still dirty after fence" true
    (S.word_state san 512 = `Dirty);
  Alcotest.(check bool) "region agrees: not durable" true
    (not (Region.is_durable r 512 8))

let test_line_granular_writeback () =
  let r, san = fresh () in
  (* two words on the same cache line: writing back one schedules both *)
  Region.set_i64 r 512 1L;
  Region.set_i64 r 520 2L;
  Region.writeback r 512 8;
  Alcotest.(check bool) "neighbour scheduled too" true
    (S.word_state san 520 = `Scheduled);
  Region.fence r;
  Alcotest.(check int) "both drained" 0 (S.tracked_words san)

(* -- violation class: unordered publish (the acceptance criterion) -- *)

let test_broken_publish_detected () =
  let r, san = fresh () in
  let data = 512 and handle = 1024 in
  Region.set_i64 r data 7L;
  Region.writeback r data 8;
  (* BUG under test: the fence is skipped, then the commit variable is
     stored — adversarial eviction may persist it before the data *)
  Region.expect_ordered r ~label:"test.broken_publish" ~before:[ (data, 8) ]
    ~after:handle;
  Region.set_i64 r handle 1L;
  (match S.violations san with
  | [ v ] ->
      Alcotest.(check bool) "kind" true (v.S.v_kind = S.Unordered_publish);
      Alcotest.(check int) "offset is the commit variable" handle v.S.v_offset;
      Alcotest.(check string) "labeled call-site" "test.broken_publish"
        v.S.v_label;
      let mentions_guard =
        (* the report names the un-persisted guard word's offset *)
        let needle = Printf.sprintf "0x%x" data in
        let hay = v.S.v_detail in
        let n = String.length needle and h = String.length hay in
        let rec scan i =
          i + n <= h && (String.sub hay i n = needle || scan (i + 1))
        in
        scan 0
      in
      Alcotest.(check bool) "detail names the guard offset" true mentions_guard
  | vs -> Alcotest.failf "expected exactly 1 violation, got %d" (List.length vs));
  Alcotest.(check bool) "tallied per label" true
    (List.mem_assoc "unordered-publish@test.broken_publish" (S.tallies san))

let test_correct_publish_passes () =
  let r, san = fresh () in
  let data = 512 and handle = 1024 in
  Region.set_i64 r data 7L;
  Region.writeback r data 8;
  Region.fence r;
  Region.expect_ordered r ~label:"test.ok_publish" ~before:[ (data, 8) ]
    ~after:handle;
  Region.set_i64 r handle 1L;
  Region.persist r handle 8;
  check_counts san ~correctness:0 ~perf:0;
  Alcotest.(check int) "watch fired" 1 (S.counters san).S.c_watches_fired

let test_global_publish_watch () =
  let r, san = fresh () in
  Region.set_i64 r 2048 9L (* dirty, unrelated to the ranges *);
  Region.expect_ordered r ~label:"test.global" ~before:[] ~after:512;
  Region.set_i64 r 512 1L;
  Alcotest.(check int) "before=[] demands global durability" 1
    (S.count san S.Correctness)

let test_watch_cleared_on_crash () =
  let r, san = fresh () in
  Region.expect_ordered r ~label:"test.stale" ~before:[ (2048, 8) ] ~after:512;
  Region.set_i64 r 2048 1L;
  Region.crash r Region.Drop_unfenced;
  (* post-recovery store to the watched word: the aborted protocol's
     watch must not fire against it *)
  Region.set_i64 r 512 1L;
  Region.persist r 512 8;
  check_counts san ~correctness:0 ~perf:0

(* -- violation class: unflushed at commit -- *)

let test_unflushed_at_commit () =
  let r, san = fresh () in
  Region.set_i64 r 512 1L;
  Region.annotate_commit_point r ~label:"test.commit" [ (512, 8) ];
  Alcotest.(check int) "dirty word flagged" 1 (S.count san S.Correctness);
  Region.writeback r 512 8;
  Region.annotate_commit_point r ~label:"test.commit" [ (512, 8) ];
  Alcotest.(check int) "merely scheduled still flagged" 2
    (S.count san S.Correctness);
  Region.fence r;
  Region.annotate_commit_point r ~label:"test.commit" [ (512, 8) ];
  Alcotest.(check int) "durable passes" 2 (S.count san S.Correctness);
  (match S.violations san with
  | v :: _ ->
      Alcotest.(check bool) "kind" true (v.S.v_kind = S.Unflushed_at_commit);
      Alcotest.(check int) "offset" 512 v.S.v_offset
  | [] -> Alcotest.fail "no violation recorded")

let test_global_commit_point () =
  let r, san = fresh () in
  Region.set_i64 r 4096 1L;
  Region.annotate_commit_point r ~label:"test.gcommit" [];
  Alcotest.(check int) "any in-flight word fails the global form" 1
    (S.count san S.Correctness);
  Region.persist r 4096 8;
  Region.annotate_commit_point r ~label:"test.gcommit" [];
  Alcotest.(check int) "clean region passes" 1 (S.count san S.Correctness)

(* -- violation class: redundant writeback / fence (perf) -- *)

let test_redundant_writeback () =
  let r, san = fresh () in
  Region.set_i64 r 512 1L;
  Region.writeback r 512 8;
  Region.with_label r "test.site" (fun () -> Region.writeback r 512 8);
  Alcotest.(check int) "re-queueing scheduled lines flagged" 1
    (S.count san S.Perf);
  Alcotest.(check bool) "counted per call-site" true
    (List.mem_assoc "redundant-writeback@test.site" (S.tallies san));
  (* write-back of an untouched (clean) range is a free CLWB no-op *)
  Region.writeback r 8192 64;
  Alcotest.(check int) "clean-range writeback not flagged" 1
    (S.count san S.Perf)

let test_redundant_fence () =
  let r, san = fresh () in
  Region.set_i64 r 512 1L;
  Region.persist r 512 8;
  Region.with_label r "test.site" (fun () -> Region.fence r);
  Alcotest.(check int) "fence draining nothing flagged" 1 (S.count san S.Perf);
  Alcotest.(check bool) "counted per call-site" true
    (List.mem_assoc "redundant-fence@test.site" (S.tallies san))

(* -- violation class: recovery reads of lost words -- *)

let test_recovery_read_lost () =
  let r, san = fresh () in
  Region.set_i64 r 512 7L;
  Region.writeback r 512 8 (* scheduled but never fenced *);
  Region.crash r Region.Drop_unfenced;
  ignore (Region.get_i64 r 512);
  Alcotest.(check int) "info diagnostic" 1 (S.count san S.Info);
  Alcotest.(check int) "not a correctness violation" 0
    (S.count san S.Correctness);
  ignore (Region.get_i64 r 512);
  Alcotest.(check int) "reported once per word" 1 (S.count san S.Info)

(* -- annotated production protocols run clean -- *)

let test_pstruct_protocols_clean () =
  let region = mk_region ~size:(1024 * 1024) () in
  let san = S.attach region in
  let a = A.format region in
  let v = Pvector.create a in
  for i = 0 to 199 do
    ignore (Pvector.append_int v i)
  done;
  Pvector.publish v;
  Pvector.set_int v 7 999;
  Pvector.publish v;
  let h = Phash.create a in
  for i = 0 to 99 do
    Phash.insert h (Int64.of_int i) (Int64.of_int (i * 2))
  done;
  let b = Pbtree.create a in
  for i = 0 to 199 do
    Pbtree.insert b (Int64.of_int (i mod 50)) (Int64.of_int i)
  done;
  let ar = Parena.create a in
  for i = 0 to 49 do
    ignore (Parena.add ar (String.make (1 + (i mod 40)) 'x'))
  done;
  check_counts san ~correctness:0 ~perf:0;
  Alcotest.(check bool) "watches actually armed" true
    ((S.counters san).S.c_watches_fired > 100)

let test_publish_elision_measurable () =
  let region = mk_region ~size:(1024 * 1024) () in
  let san = S.attach region in
  let a = A.format region in
  let v = Pvector.create a in
  for i = 0 to 49 do
    ignore (Pvector.append_int v i)
  done;
  Pvector.publish v;
  let fences_before = (Region.stats region).Region.fences in
  (* nothing changed: a republish must cost zero fences (it used to cost
     two — measurable simulated time) *)
  Pvector.publish v;
  Pvector.publish v;
  Alcotest.(check int) "no-op publish elides all fences" fences_before
    (Region.stats region).Region.fences;
  check_counts san ~correctness:0 ~perf:0

(* -- satellite: adversarial crash fuzz of activate ~link -- *)

let test_activate_link_crash_fuzz () =
  let crash_points = ref 0 in
  let bad = ref 0 in
  for seed = 0 to 119 do
    let region = mk_region ~size:(64 * 1024) () in
    let san = S.attach region in
    let a = A.format region in
    let target = A.alloc a 16 in
    A.activate a target;
    let p = A.alloc a 64 in
    Region.set_i64 region p 42L;
    Region.persist region p 8;
    (* activate ~link is 13 persistence ops; cut it at every interior
       point across the seeds *)
    Region.arm_crash region ~after_ops:(1 + (seed mod 12));
    (match A.activate ~link:(target, Int64.of_int p) a p with
    | () -> Region.disarm_crash region
    | exception Region.Power_failure ->
        incr crash_points;
        Region.crash region
          (Region.Adversarial (Prng.create (Int64.of_int seed)));
        let a2 = A.open_existing region in
        (* the link either fully happened (possibly redone) or not at all *)
        let linked = Region.get_int region target in
        Alcotest.(check bool) "link atomic" true (linked = p || linked = 0);
        ignore a2);
    bad := !bad + S.correctness_violations san;
    S.detach san
  done;
  Alcotest.(check bool)
    (Printf.sprintf "at least 100 seeded crash points (got %d)" !crash_points)
    true
    (!crash_points >= 100);
  Alcotest.(check int) "zero ordering violations across all of them" 0 !bad

(* -- engine mode -- *)

let nvm_cfg = Engine.default_config ~size:(8 * 1024 * 1024) Engine.Nvm

let schema =
  Storage.Schema.
    [| column "k" Storage.Value.Int_t; column "s" Storage.Value.Text_t |]

let test_engine_sanitize_mode () =
  let e = Engine.create ~sanitize:true nvm_cfg in
  let san =
    match Engine.sanitizer e with
    | Some s -> s
    | None -> Alcotest.fail "sanitize:true must attach a checker"
  in
  Engine.create_table e ~name:"t" schema;
  for i = 0 to 49 do
    Engine.with_txn e (fun txn ->
        ignore
          (Engine.insert e txn "t"
             [| Storage.Value.Int i; Storage.Value.Text (string_of_int i) |]))
  done;
  let crashed = Engine.crash e (Region.Adversarial (Prng.create 99L)) in
  let e2, _ = Engine.recover crashed in
  Alcotest.(check bool) "checker survives recovery" true
    (Engine.sanitizer e2 == Some san
    ||
    match Engine.sanitizer e2 with Some _ -> true | None -> false);
  for i = 50 to 79 do
    Engine.with_txn e2 (fun txn ->
        ignore
          (Engine.insert e2 txn "t"
             [| Storage.Value.Int i; Storage.Value.Text (string_of_int i) |]))
  done;
  ignore (Engine.merge e2 "t");
  Alcotest.(check int) "workload + crash + recovery + merge: clean" 0
    (S.correctness_violations san);
  Alcotest.(check bool) "commit points were checked" true
    ((S.counters san).S.c_commit_points > 50)

let test_engine_default_has_no_checker () =
  let e = Engine.create nvm_cfg in
  Alcotest.(check bool) "default path untraced" true (Engine.sanitizer e = None)

(* -- concurrency: happens-before race detection over the pool -- *)

(* run [f] at a given pool width, restoring the entry width after *)
let with_jobs n f =
  let was = Par.jobs () in
  Par.set_jobs n;
  Fun.protect ~finally:(fun () -> Par.set_jobs was) f

let has_kind san k = List.exists (fun v -> v.S.v_kind = k) (S.violations san)

(* Deliberate unsynchronized two-lane writer: every lane stores the same
   8-byte word inside one pool job. The test mutex keeps the region's
   volatile internals coherent but is invisible to the happens-before
   model, so the checker must flag the race — and because the verdict
   is a vector-clock fact, not a scheduling observation, detection is
   deterministic: 60/60 trials, at any lane count >= 2. *)
let test_seeded_race_fuzzer () =
  let lanes = max 2 (min 4 (Par.jobs ())) in
  with_jobs lanes @@ fun () ->
  let trials = 60 in
  let flagged = ref 0 in
  for seed = 0 to trials - 1 do
    let r, san = fresh () in
    let m = Mutex.create () in
    let word = 512 + (8 * (seed mod 32)) in
    Par.parallel_for ~min_chunk:1 ~n:(4 * lanes) (fun ~lo ~hi ->
        for i = lo to hi - 1 do
          Mutex.lock m;
          Region.set_i64 r word (Int64.of_int i);
          Mutex.unlock m
        done);
    if has_kind san S.Racy_store then incr flagged;
    S.detach san
  done;
  Alcotest.(check int) "every injected race flagged" trials !flagged

let test_racy_load_detected () =
  with_jobs 2 @@ fun () ->
  let r, san = fresh () in
  let m = Mutex.create () in
  (* even chunks land on lane 0 (stores), odd chunks on lane 1 (loads) *)
  Par.parallel_for ~min_chunk:1 ~n:4 (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        Mutex.lock m;
        if i mod 2 = 0 then Region.set_i64 r 1024 7L
        else ignore (Region.get_i64 r 1024);
        Mutex.unlock m
      done);
  Alcotest.(check bool) "cross-lane load vs store flagged" true
    (has_kind san S.Racy_load);
  S.detach san

let test_cross_lane_publish () =
  with_jobs 2 @@ fun () ->
  let r, san = fresh () in
  let m = Mutex.create () in
  let data = 2048 and handle = 4096 in
  Region.expect_ordered r ~label:"test.xlane" ~before:[ (data, 8) ]
    ~after:handle;
  (* chunk 0 (lane 0) dirties the guarded word; chunk 1 (lane 1) stores
     the commit variable — different words, so no data race, but the
     publish crosses lanes with the payload still volatile *)
  Par.parallel_for ~min_chunk:1 ~n:2 (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        Mutex.lock m;
        if i = 0 then Region.set_i64 r data 7L
        else Region.set_i64 r handle 1L;
        Mutex.unlock m
      done);
  Alcotest.(check bool) "cross-lane publish flagged" true
    (has_kind san S.Cross_lane_publish);
  Alcotest.(check bool) "not misreported as a race" true
    (not (has_kind san S.Racy_store));
  S.detach san

let test_note_external_slot_aware () =
  with_jobs 2 @@ fun () ->
  let r, san = fresh () in
  Par.parallel_for ~min_chunk:1 ~n:4 (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        S.note_external san (Printf.sprintf "ext-%d" i)
      done);
  (* the worker-lane notes must have reached the ring at the join: force
     a violation and look for them in its backtrace *)
  Region.set_i64 r 512 1L;
  Region.annotate_commit_point r ~label:"test.ext" [ (512, 8) ];
  let v = List.hd (S.violations san) in
  (* chunk 1 belongs to lane 1, so its note replays lane-tagged *)
  Alcotest.(check bool) "worker-lane note in backtrace" true
    (List.mem "L1 ext-1" v.S.v_backtrace);
  Alcotest.(check bool) "caller-lane note in backtrace" true
    (List.mem "ext-0" v.S.v_backtrace);
  S.detach san

let test_report_json_shape () =
  let r, san = fresh () in
  Region.set_i64 r 512 1L;
  Region.persist r 512 8;
  (match S.report_json san with
  | Obs.Json.Obj fields ->
      List.iter
        (fun k ->
          Alcotest.(check bool) (k ^ " present") true (List.mem_assoc k fields))
        [ "counters"; "violations"; "tallies"; "in_flight" ]
  | _ -> Alcotest.fail "report_json must be an object");
  S.detach san

(* Differential property: on the read-only parallel paths (scan, merge
   visibility pass, recovery) the merged parallel shadow state — and
   every violation total — must equal the serial run's, at any lane
   count. *)
let test_parallel_differential () =
  let run jobs =
    with_jobs jobs @@ fun () ->
    let e = Engine.create ~sanitize:true nvm_cfg in
    let san = Option.get (Engine.sanitizer e) in
    Engine.create_table e ~name:"t" schema;
    for i = 0 to 2999 do
      Engine.with_txn e (fun txn ->
          ignore
            (Engine.insert e txn "t"
               [|
                 Storage.Value.Int (i mod 97);
                 Storage.Value.Text (string_of_int i);
               |]))
    done;
    let n1 = Engine.with_txn e (fun txn -> Engine.count_where e txn "t" []) in
    ignore (Engine.merge e "t");
    let crashed = Engine.crash e (Region.Adversarial (Prng.create 7L)) in
    let e2, _ = Engine.recover crashed in
    let n2 =
      Engine.with_txn e2 (fun txn -> Engine.count_where e2 txn "t" [])
    in
    let san2 = Option.get (Engine.sanitizer e2) in
    Alcotest.(check int) "clean parallel run" 0 (S.correctness_violations san2);
    ignore san;
    ( n1,
      n2,
      S.count san2 S.Correctness,
      S.count san2 S.Perf,
      S.count san2 S.Info,
      S.in_flight_words san2,
      List.sort compare (S.tallies san2) )
  in
  let n1, n2, c, p, i, words, tal = run 1 in
  List.iter
    (fun jobs ->
      let n1', n2', c', p', i', words', tal' = run jobs in
      Alcotest.(check int) "rows pre-crash" n1 n1';
      Alcotest.(check int) "rows post-recovery" n2 n2';
      Alcotest.(check int) "correctness total" c c';
      Alcotest.(check int) "perf total" p p';
      Alcotest.(check int) "info total" i i';
      Alcotest.(check bool) "in-flight shadow state identical" true
        (words = words');
      Alcotest.(check bool) "per-call-site tallies identical" true (tal = tal'))
    [ 2; 4 ]

let test_traced_scan_fans_out () =
  with_jobs 4 @@ fun () ->
  let e = Engine.create ~sanitize:true nvm_cfg in
  let san = Option.get (Engine.sanitizer e) in
  Engine.create_table e ~name:"t" schema;
  for i = 0 to 1499 do
    Engine.with_txn e (fun txn ->
        ignore
          (Engine.insert e txn "t"
             [| Storage.Value.Int i; Storage.Value.Text "x" |]))
  done;
  let n = Engine.with_txn e (fun txn -> Engine.count_where e txn "t" []) in
  Alcotest.(check int) "rows" 1500 n;
  Alcotest.(check bool) "traced scan used the pool" true
    ((S.counters san).S.c_par_jobs > 0);
  Alcotest.(check int) "and stayed clean" 0 (S.correctness_violations san)

let () =
  Alcotest.run "sanitize"
    [
      ( "shadow",
        [
          Alcotest.test_case "word lifecycle" `Quick test_word_lifecycle;
          Alcotest.test_case "store after writeback" `Quick
            test_store_after_writeback_is_dirty;
          Alcotest.test_case "line granularity" `Quick
            test_line_granular_writeback;
        ] );
      ( "violations",
        [
          Alcotest.test_case "broken publish detected" `Quick
            test_broken_publish_detected;
          Alcotest.test_case "correct publish passes" `Quick
            test_correct_publish_passes;
          Alcotest.test_case "global publish watch" `Quick
            test_global_publish_watch;
          Alcotest.test_case "watch cleared on crash" `Quick
            test_watch_cleared_on_crash;
          Alcotest.test_case "unflushed at commit" `Quick
            test_unflushed_at_commit;
          Alcotest.test_case "global commit point" `Quick
            test_global_commit_point;
          Alcotest.test_case "redundant writeback" `Quick
            test_redundant_writeback;
          Alcotest.test_case "redundant fence" `Quick test_redundant_fence;
          Alcotest.test_case "recovery read of lost word" `Quick
            test_recovery_read_lost;
        ] );
      ( "protocols",
        [
          Alcotest.test_case "pstruct protocols clean" `Quick
            test_pstruct_protocols_clean;
          Alcotest.test_case "publish elision measurable" `Quick
            test_publish_elision_measurable;
          Alcotest.test_case "activate ~link crash fuzz" `Slow
            test_activate_link_crash_fuzz;
        ] );
      ( "engine",
        [
          Alcotest.test_case "sanitize mode end to end" `Quick
            test_engine_sanitize_mode;
          Alcotest.test_case "default has no checker" `Quick
            test_engine_default_has_no_checker;
        ] );
      ( "races",
        [
          Alcotest.test_case "seeded race fuzzer 60/60" `Slow
            test_seeded_race_fuzzer;
          Alcotest.test_case "racy load detected" `Quick
            test_racy_load_detected;
          Alcotest.test_case "cross-lane publish" `Quick
            test_cross_lane_publish;
          Alcotest.test_case "note_external slot-aware" `Quick
            test_note_external_slot_aware;
          Alcotest.test_case "report json shape" `Quick
            test_report_json_shape;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "jobs 1/2/4 differential" `Slow
            test_parallel_differential;
          Alcotest.test_case "traced scan fans out" `Quick
            test_traced_scan_fans_out;
        ] );
    ]
