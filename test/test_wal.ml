(* Tests for the write-ahead log and checkpoint files: codec, framing,
   group commit, torn tails, epochs, atomic checkpoint replacement. *)

module Value = Storage.Value
module Schema = Storage.Schema
module Codec = Wal.Codec
module Log = Wal.Log
module Checkpoint = Wal.Checkpoint

let tmpdir () =
  let d = Filename.temp_file "waltest" "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let cfg ?(group = 1) dir = { Log.dir; group_commit_size = group; fsync = false }

let schema =
  [| Schema.column ~indexed:true "k" Value.Int_t; Schema.column "s" Value.Text_t |]

(* -------- codec -------- *)

let test_codec_scalars () =
  let buf = Buffer.create 64 in
  Codec.w_u8 buf 200;
  Codec.w_u32 buf 123456;
  Codec.w_i64 buf (-42L);
  Codec.w_string buf "hello";
  let r = Codec.reader_of_string (Buffer.contents buf) in
  Alcotest.(check int) "u8" 200 (Codec.r_u8 r);
  Alcotest.(check int) "u32" 123456 (Codec.r_u32 r);
  Alcotest.(check int64) "i64" (-42L) (Codec.r_i64 r);
  Alcotest.(check string) "string" "hello" (Codec.r_string r);
  Alcotest.(check bool) "at end" true (Codec.at_end r)

let test_codec_values () =
  let buf = Buffer.create 64 in
  let vs = [ Value.Int (-7); Value.Float 2.5; Value.Text "text" ] in
  List.iter (Codec.w_value buf) vs;
  let r = Codec.reader_of_string (Buffer.contents buf) in
  List.iter
    (fun v -> Alcotest.(check bool) "value roundtrip" true (Codec.r_value r = v))
    vs

let test_codec_schema () =
  let buf = Buffer.create 64 in
  Codec.w_schema buf schema;
  let r = Codec.reader_of_string (Buffer.contents buf) in
  let s = Codec.r_schema r in
  Alcotest.(check int) "arity" 2 (Schema.arity s);
  Alcotest.(check bool) "indexed" true s.(0).Schema.indexed;
  Alcotest.(check string) "name" "s" s.(1).Schema.name

let frame_payload = function Codec.Frame p -> Some p | _ -> None

let test_codec_frame () =
  let buf = Buffer.create 64 in
  Codec.frame buf "payload-1";
  Codec.frame buf "payload-2";
  let r = Codec.reader_of_string (Buffer.contents buf) in
  Alcotest.(check (option string))
    "frame 1" (Some "payload-1")
    (frame_payload (Codec.r_frame r));
  Alcotest.(check (option string))
    "frame 2" (Some "payload-2")
    (frame_payload (Codec.r_frame r));
  Alcotest.(check bool) "end" true (Codec.r_frame r = Codec.Torn)

let test_codec_torn_frame () =
  let buf = Buffer.create 64 in
  Codec.frame buf "complete";
  Codec.frame buf "torn-record";
  let s = Buffer.contents buf in
  let torn = String.sub s 0 (String.length s - 4) in
  let r = Codec.reader_of_string torn in
  Alcotest.(check (option string))
    "first ok" (Some "complete")
    (frame_payload (Codec.r_frame r));
  Alcotest.(check bool) "torn detected" true (Codec.r_frame r = Codec.Torn)

let test_codec_corrupt_frame () =
  let buf = Buffer.create 64 in
  Codec.frame buf "tamperme";
  let s = Bytes.of_string (Buffer.contents buf) in
  Bytes.set s (Bytes.length s - 1) 'X';
  let r = Codec.reader_of_string (Bytes.to_string s) in
  (* a complete frame failing its CRC is damage, not a torn tail *)
  Alcotest.(check bool) "crc catches corruption" true
    (Codec.r_frame r = Codec.Bad_crc)

let test_codec_cmd_ops () =
  let ops =
    [
      Codec.Cmd_insert
        { table_id = 3; values = [| Value.Int 9; Value.Text "row" |] };
      Codec.Cmd_update
        {
          table_id = 0;
          key_col = 0;
          key = Value.Int 41;
          sets = [| (1, Codec.Set (Value.Text "new")); (0, Codec.Add_int (-2)) |];
        };
      Codec.Cmd_delete { table_id = 1; key_col = 0; key = Value.Text "k" };
    ]
  in
  let buf = Buffer.create 64 in
  List.iter (Codec.w_cmd_op buf) ops;
  let r = Codec.reader_of_string (Buffer.contents buf) in
  List.iter
    (fun op ->
      let before = Codec.pos r in
      Alcotest.(check bool) "cmd op roundtrip" true (Codec.r_cmd_op r = op);
      (* the adaptive estimator prices records without encoding them:
         the size oracle must match the bytes actually written *)
      Alcotest.(check int) "cmd_op_size exact" (Codec.cmd_op_size op)
        (Codec.pos r - before))
    ops;
  Alcotest.(check bool) "at end" true (Codec.at_end r);
  List.iter
    (fun v ->
      let b = Buffer.create 16 in
      Codec.w_value b v;
      Alcotest.(check int)
        ("value_size " ^ Value.to_string v)
        (Buffer.length b) (Codec.value_size v))
    [ Value.Int 7; Value.Float 1.5; Value.Text "some text" ]

let test_crc32_known () =
  (* standard test vector *)
  Alcotest.(check int32) "crc32 of '123456789'" 0xCBF43926l
    (Codec.crc32 "123456789")

(* -------- log -------- *)

let test_log_roundtrip () =
  let dir = tmpdir () in
  let log = Log.create (cfg dir) ~epoch:0 in
  let records =
    [
      Log.Create_table { name = "t"; schema };
      Log.Insert { tid = 1; table_id = 0; values = [| Value.Int 1; Value.Text "a" |] };
      Log.Commit { tid = 1; cid = 1L; invalidated = [ (0, 7) ] };
      Log.Command
        {
          tid = 3;
          ops =
            [|
              Codec.Cmd_update
                {
                  table_id = 0;
                  key_col = 0;
                  key = Value.Int 1;
                  sets = [| (1, Codec.Set (Value.Text "b")) |];
                };
              Codec.Cmd_delete { table_id = 0; key_col = 0; key = Value.Int 2 };
            |];
        };
      Log.Commit { tid = 3; cid = 2L; invalidated = [] };
      Log.Abort { tid = 2 };
    ]
  in
  List.iter (Log.append log) records;
  Log.close log;
  let read, bytes = Log.read_all ~dir ~expected_epoch:0 in
  Alcotest.(check int) "record count" 6 (List.length read);
  Alcotest.(check bool) "bytes > 0" true (bytes > 0);
  Alcotest.(check bool) "roundtrip equal" true (read = records);
  (* the parallel replay's split read path: frame scan + per-payload
     decode must agree with the one-pass reader, and the adaptive
     estimator's size oracle with the bytes actually framed *)
  let payloads, pbytes = Log.read_payloads ~dir ~expected_epoch:0 in
  Alcotest.(check int) "payload bytes agree" bytes pbytes;
  Alcotest.(check bool) "payload decode parity" true
    (Array.to_list (Array.map Log.decode_record payloads) = records);
  List.iteri
    (fun i r ->
      Alcotest.(check int)
        (Printf.sprintf "encoded_size exact (record %d)" i)
        (String.length payloads.(i))
        (Log.encoded_size r))
    records

let test_log_group_commit_window () =
  let dir = tmpdir () in
  let log = Log.create (cfg ~group:4 dir) ~epoch:0 in
  (* 3 commits: below the group size, so nothing is flushed *)
  for tid = 1 to 3 do
    Log.append log (Log.Insert { tid; table_id = 0; values = [| Value.Int tid |] });
    Log.append log (Log.Commit { tid; cid = Int64.of_int tid; invalidated = [] })
  done;
  Log.crash log;
  let read, _ = Log.read_all ~dir ~expected_epoch:0 in
  Alcotest.(check int) "group window lost" 0 (List.length read);
  (* now with 4 commits the group flushes *)
  let log = Log.create (cfg ~group:4 dir) ~epoch:0 in
  for tid = 1 to 5 do
    Log.append log (Log.Commit { tid; cid = Int64.of_int tid; invalidated = [] })
  done;
  Log.crash log;
  let read, _ = Log.read_all ~dir ~expected_epoch:0 in
  Alcotest.(check int) "first group durable, fifth lost" 4 (List.length read)

let test_log_flush_forces () =
  let dir = tmpdir () in
  let log = Log.create (cfg ~group:100 dir) ~epoch:0 in
  Log.append log (Log.Commit { tid = 1; cid = 1L; invalidated = [] });
  Log.flush log;
  Log.crash log;
  let read, _ = Log.read_all ~dir ~expected_epoch:0 in
  Alcotest.(check int) "flushed" 1 (List.length read)

let test_log_epoch_mismatch () =
  let dir = tmpdir () in
  let log = Log.create (cfg dir) ~epoch:3 in
  Log.append log (Log.Commit { tid = 1; cid = 1L; invalidated = [] });
  Log.close log;
  let read, _ = Log.read_all ~dir ~expected_epoch:4 in
  Alcotest.(check int) "stale epoch ignored" 0 (List.length read);
  let read, _ = Log.read_all ~dir ~expected_epoch:3 in
  Alcotest.(check int) "right epoch read" 1 (List.length read)

let test_log_torn_tail_truncated_on_append () =
  let dir = tmpdir () in
  let log = Log.create (cfg dir) ~epoch:0 in
  Log.append log (Log.Commit { tid = 1; cid = 1L; invalidated = [] });
  Log.close log;
  (* simulate a torn tail: append garbage bytes *)
  let fd =
    Unix.openfile (Log.log_path ~dir ~epoch:0) [ Unix.O_WRONLY; Unix.O_APPEND ] 0
  in
  ignore (Unix.write_substring fd "GARBAGE" 0 7);
  Unix.close fd;
  let read, bytes = Log.read_all ~dir ~expected_epoch:0 in
  Alcotest.(check int) "valid prefix" 1 (List.length read);
  (* continue appending after truncation *)
  let log = Log.open_append (cfg dir) ~epoch:0 ~truncate_at:bytes in
  Log.append log (Log.Commit { tid = 2; cid = 2L; invalidated = [] });
  Log.close log;
  let read, _ = Log.read_all ~dir ~expected_epoch:0 in
  Alcotest.(check int) "both records" 2 (List.length read)

let test_log_missing_file () =
  let dir = tmpdir () in
  let read, bytes = Log.read_all ~dir ~expected_epoch:0 in
  Alcotest.(check int) "no file, no records" 0 (List.length read);
  Alcotest.(check int) "no bytes" 0 bytes

(* -------- checkpoint -------- *)

let dump =
  {
    Checkpoint.cid = 42L;
    epoch = 2;
    tables =
      [
        {
          Checkpoint.name = "t";
          schema;
          rows = 3;
          columns =
            [|
              { Checkpoint.dict = [| Value.Int 1; Value.Int 2 |]; avec = [| 0; 1; 0 |] };
              {
                Checkpoint.dict = [| Value.Text "a"; Value.Text "b" |];
                avec = [| 1; 1; 0 |];
              };
            |];
        };
      ];
  }

let test_checkpoint_roundtrip () =
  let dir = tmpdir () in
  let bytes = Checkpoint.write ~dir dump in
  Alcotest.(check bool) "bytes" true (bytes > 0);
  match Checkpoint.read ~dir with
  | None -> Alcotest.fail "checkpoint unreadable"
  | Some c ->
      Alcotest.(check int64) "cid" 42L c.Checkpoint.cid;
      Alcotest.(check int) "epoch" 2 c.Checkpoint.epoch;
      Alcotest.(check bool) "tables equal" true (c.Checkpoint.tables = dump.Checkpoint.tables)

let test_checkpoint_missing () =
  let dir = tmpdir () in
  Alcotest.(check bool) "absent" true (Checkpoint.read ~dir = None)

let test_checkpoint_corruption_detected () =
  let dir = tmpdir () in
  ignore (Checkpoint.write ~dir dump);
  let p = Checkpoint.path ~dir in
  let fd = Unix.openfile p [ Unix.O_WRONLY ] 0 in
  ignore (Unix.lseek fd 20 Unix.SEEK_SET);
  ignore (Unix.write_substring fd "X" 0 1);
  Unix.close fd;
  Alcotest.(check bool) "crc rejects" true (Checkpoint.read ~dir = None)

let test_checkpoint_v2_compat () =
  (* images checkpointed before the sliced v3 format must keep loading:
     a file in the v2 layout reads back the same dump *)
  let dir = tmpdir () in
  let payload = Checkpoint.encode_v2 dump in
  let buf = Buffer.create (String.length payload + 4) in
  Buffer.add_string buf payload;
  Buffer.add_int32_le buf (Codec.crc32 payload);
  let oc = open_out_bin (Checkpoint.path ~dir) in
  output_string oc (Buffer.contents buf);
  close_out oc;
  match Checkpoint.read ~dir with
  | None -> Alcotest.fail "v2 checkpoint unreadable"
  | Some c ->
      Alcotest.(check int64) "cid" 42L c.Checkpoint.cid;
      Alcotest.(check int) "epoch" 2 c.Checkpoint.epoch;
      Alcotest.(check bool) "tables equal" true
        (c.Checkpoint.tables = dump.Checkpoint.tables)

let test_checkpoint_overwrite_is_atomic () =
  let dir = tmpdir () in
  ignore (Checkpoint.write ~dir dump);
  let dump2 = { dump with Checkpoint.cid = 43L } in
  ignore (Checkpoint.write ~dir dump2);
  match Checkpoint.read ~dir with
  | Some c -> Alcotest.(check int64) "latest wins" 43L c.Checkpoint.cid
  | None -> Alcotest.fail "unreadable"

(* qcheck: arbitrary record lists roundtrip *)
let gen_record =
  QCheck.Gen.(
    frequency
      [
        ( 4,
          map3
            (fun tid table_id k ->
              Log.Insert
                { tid; table_id; values = [| Value.Int k; Value.Text (string_of_int k) |] })
            (int_bound 100) (int_bound 5) (int_bound 10_000) );
        ( 2,
          map2
            (fun tid cid ->
              Log.Commit { tid; cid = Int64.of_int cid; invalidated = [ (0, cid) ] })
            (int_bound 100) (int_bound 10_000) );
        ( 2,
          map3
            (fun tid key delta ->
              Log.Command
                {
                  tid;
                  ops =
                    [|
                      Codec.Cmd_update
                        {
                          table_id = 0;
                          key_col = 0;
                          key = Value.Int key;
                          sets =
                            [|
                              (1, Codec.Set (Value.Text (string_of_int key)));
                              (0, Codec.Add_int delta);
                            |];
                        };
                      Codec.Cmd_delete
                        { table_id = 1; key_col = 0; key = Value.Int key };
                    |];
                })
            (int_bound 100) (int_bound 10_000) (int_bound 50) );
        (1, map (fun tid -> Log.Abort { tid }) (int_bound 100));
      ])

let prop_log_roundtrip =
  QCheck.Test.make ~name:"arbitrary record lists roundtrip" ~count:60
    (QCheck.make QCheck.Gen.(list_size (int_range 0 50) gen_record))
    (fun records ->
      let dir = tmpdir () in
      let log = Log.create (cfg dir) ~epoch:0 in
      List.iter (Log.append log) records;
      Log.close log;
      let read, _ = Log.read_all ~dir ~expected_epoch:0 in
      read = records)

let () =
  Alcotest.run "wal"
    [
      ( "codec",
        [
          Alcotest.test_case "scalars" `Quick test_codec_scalars;
          Alcotest.test_case "values" `Quick test_codec_values;
          Alcotest.test_case "schema" `Quick test_codec_schema;
          Alcotest.test_case "frames" `Quick test_codec_frame;
          Alcotest.test_case "torn frame" `Quick test_codec_torn_frame;
          Alcotest.test_case "corrupt frame" `Quick test_codec_corrupt_frame;
          Alcotest.test_case "crc32 vector" `Quick test_crc32_known;
          Alcotest.test_case "command ops" `Quick test_codec_cmd_ops;
        ] );
      ( "log",
        [
          Alcotest.test_case "roundtrip" `Quick test_log_roundtrip;
          Alcotest.test_case "group commit window" `Quick
            test_log_group_commit_window;
          Alcotest.test_case "flush forces" `Quick test_log_flush_forces;
          Alcotest.test_case "epoch mismatch" `Quick test_log_epoch_mismatch;
          Alcotest.test_case "torn tail handling" `Quick
            test_log_torn_tail_truncated_on_append;
          Alcotest.test_case "missing file" `Quick test_log_missing_file;
          QCheck_alcotest.to_alcotest prop_log_roundtrip;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "v2 compatibility" `Quick test_checkpoint_v2_compat;
          Alcotest.test_case "missing" `Quick test_checkpoint_missing;
          Alcotest.test_case "corruption detected" `Quick
            test_checkpoint_corruption_detected;
          Alcotest.test_case "atomic overwrite" `Quick
            test_checkpoint_overwrite_is_atomic;
        ] );
    ]
