(* Integration tests for the engine: query surface, merge/checkpoint,
   crash/recovery in all three durability modes, and golden-model crash
   fuzzing — the test that backs the paper's "transactionally consistent
   on NVM" claim. *)

module E = Core.Engine
module Region = Nvm.Region
module Value = Storage.Value
module Schema = Storage.Schema
module Cid = Storage.Cid
module Mvcc = Txn.Mvcc
module Prng = Util.Prng

let value_t = Alcotest.testable (Fmt.of_to_string Value.to_string) Value.equal

let tmpdir () =
  let d = Filename.temp_file "enginetest" "" in
  Sys.remove d;
  d

let nvm_engine ?(size = 16 * 1024 * 1024) () =
  E.create (E.default_config ~size E.Nvm)

let log_engine ?(size = 16 * 1024 * 1024) ?(group = 1) () =
  let dir = tmpdir () in
  E.create
    {
      E.region = Region.config_with_size size;
      durability = E.Logging { Wal.Log.dir; group_commit_size = group; fsync = false };
      salvage = None;
    }

let volatile_engine ?(size = 16 * 1024 * 1024) () =
  E.create (E.default_config ~size E.Volatile)

let kv_schema =
  [| Schema.column ~indexed:true "k" Value.Int_t; Schema.column "v" Value.Text_t |]

let kv k v = [| Value.Int k; Value.Text v |]

let setup_kv e =
  E.create_table e ~name:"kv" kv_schema;
  e

(* visible contents as a sorted (k, v) assoc list *)
let dump e =
  E.with_txn e (fun txn ->
      List.sort compare
        (List.map
           (fun (_, values) ->
             match values with
             | [| Value.Int k; Value.Text v |] -> (k, v)
             | _ -> assert false)
           (E.select e txn "kv" ~where:(fun _ -> true))))

(* -------- basic query surface -------- *)

let test_ddl () =
  let e = nvm_engine () in
  E.create_table e ~name:"a" kv_schema;
  E.create_table e ~name:"b" kv_schema;
  Alcotest.(check (list string)) "names in order" [ "a"; "b" ] (E.table_names e);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Engine.create_table: duplicate table a") (fun () ->
      E.create_table e ~name:"a" kv_schema);
  Alcotest.check_raises "unknown table" Not_found (fun () -> ignore (E.table e "zz"))

let test_insert_select () =
  let e = setup_kv (nvm_engine ()) in
  E.with_txn e (fun txn ->
      ignore (E.insert e txn "kv" (kv 1 "one"));
      ignore (E.insert e txn "kv" (kv 2 "two")));
  Alcotest.(check (list (pair int string))) "contents" [ (1, "one"); (2, "two") ]
    (dump e);
  E.with_txn e (fun txn ->
      Alcotest.(check int) "count" 2 (E.count e txn "kv");
      match E.lookup e txn "kv" ~col:"k" (Value.Int 2) with
      | [ (_, values) ] -> Alcotest.check value_t "lookup" (Value.Text "two") values.(1)
      | l -> Alcotest.failf "expected 1 hit, got %d" (List.length l))

let test_update_delete () =
  let e = setup_kv (nvm_engine ()) in
  let r =
    E.with_txn e (fun txn -> E.insert e txn "kv" (kv 1 "old"))
  in
  E.with_txn e (fun txn -> ignore (E.update e txn "kv" r (kv 1 "new")));
  Alcotest.(check (list (pair int string))) "updated" [ (1, "new") ] (dump e);
  E.with_txn e (fun txn ->
      match E.lookup e txn "kv" ~col:"k" (Value.Int 1) with
      | [ (row, _) ] -> E.delete e txn "kv" row
      | _ -> Alcotest.fail "lookup failed");
  Alcotest.(check (list (pair int string))) "deleted" [] (dump e)

let test_with_txn_aborts_on_exception () =
  let e = setup_kv (nvm_engine ()) in
  (try
     E.with_txn e (fun txn ->
         ignore (E.insert e txn "kv" (kv 1 "x"));
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check (list (pair int string))) "rolled back" [] (dump e);
  Alcotest.(check int) "no active txns" 0 (E.active_txns e)

let test_get_row_visibility () =
  let e = setup_kv (nvm_engine ()) in
  let t1 = E.begin_txn e in
  let r = E.insert e t1 "kv" (kv 1 "x") in
  let t2 = E.begin_txn e in
  Alcotest.(check bool) "invisible to t2" true (E.get_row e t2 "kv" r = None);
  Alcotest.(check bool) "visible to t1" true (E.get_row e t1 "kv" r <> None);
  Alcotest.(check bool) "out of range" true (E.get_row e t2 "kv" 999 = None);
  ignore (E.commit e t1);
  E.abort e t2

let test_sum_int () =
  let e = nvm_engine () in
  E.create_table e ~name:"n"
    [| Schema.column "a" Value.Int_t; Schema.column "b" Value.Text_t |];
  E.with_txn e (fun txn ->
      List.iter
        (fun i -> ignore (E.insert e txn "n" [| Value.Int i; Value.Text "x" |]))
        [ 1; 2; 3; 4 ]);
  E.with_txn e (fun txn ->
      Alcotest.(check int) "sum" 10 (E.sum_int e txn "n" ~col:"a"))

let test_write_conflict_surfaces () =
  let e = setup_kv (nvm_engine ()) in
  let r = E.with_txn e (fun txn -> E.insert e txn "kv" (kv 1 "x")) in
  let t1 = E.begin_txn e and t2 = E.begin_txn e in
  ignore (E.update e t1 "kv" r (kv 1 "y"));
  (try
     ignore (E.update e t2 "kv" r (kv 1 "z"));
     Alcotest.fail "expected conflict"
   with Mvcc.Write_conflict _ -> E.abort e t2);
  ignore (E.commit e t1)

(* -------- merge / checkpoint -------- *)

let test_engine_merge () =
  let e = setup_kv (nvm_engine ()) in
  let r = E.with_txn e (fun txn -> E.insert e txn "kv" (kv 1 "a")) in
  E.with_txn e (fun txn -> ignore (E.update e txn "kv" r (kv 1 "b")));
  E.with_txn e (fun txn -> ignore (E.insert e txn "kv" (kv 2 "c")));
  let stats = E.merge e "kv" in
  Alcotest.(check int) "dead compacted" 2 stats.Storage.Merge.rows_out;
  Alcotest.(check (list (pair int string))) "contents preserved"
    [ (1, "b"); (2, "c") ] (dump e);
  (* writes continue after merge *)
  E.with_txn e (fun txn -> ignore (E.insert e txn "kv" (kv 3 "d")));
  Alcotest.(check (list (pair int string))) "delta after merge"
    [ (1, "b"); (2, "c"); (3, "d") ] (dump e)

let test_merge_requires_quiescence () =
  let e = setup_kv (nvm_engine ()) in
  let t = E.begin_txn e in
  Alcotest.check_raises "active txns"
    (Invalid_argument "Engine.merge: active transactions") (fun () ->
      ignore (E.merge e "kv"));
  E.abort e t

let test_merge_rejected_in_log_mode () =
  let e = setup_kv (log_engine ()) in
  (try
     ignore (E.merge e "kv");
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_checkpoint_all_modes () =
  List.iter
    (fun mk ->
      let e = setup_kv (mk ()) in
      E.with_txn e (fun txn -> ignore (E.insert e txn "kv" (kv 1 "a")));
      ignore (E.checkpoint e);
      Alcotest.(check (list (pair int string))) "contents survive checkpoint"
        [ (1, "a") ] (dump e))
    [ nvm_engine ~size:(16 * 1024 * 1024); (fun () -> log_engine ()); volatile_engine ~size:(16 * 1024 * 1024) ]

(* -------- crash and recovery -------- *)

let fill e n =
  for i = 1 to n do
    E.with_txn e (fun txn -> ignore (E.insert e txn "kv" (kv i (string_of_int i))))
  done

let expected n = List.init n (fun i -> (i + 1, string_of_int (i + 1)))

let test_nvm_recovery_exact () =
  List.iter
    (fun mode ->
      let e = setup_kv (nvm_engine ()) in
      fill e 50;
      let before = dump e in
      let rng = Prng.create 5L in
      let m =
        match mode with
        | `Drop -> Region.Drop_unfenced
        | `Adversarial -> Region.Adversarial rng
        | `All -> Region.Persist_all
      in
      let e2, stats = E.recover (E.crash e m) in
      Alcotest.(check (list (pair int string))) "exact state" before (dump e2);
      Alcotest.(check int64) "cid preserved" 50L (E.last_cid e2);
      match stats.E.detail with
      | E.Rv_nvm { tables; _ } -> Alcotest.(check int) "tables attached" 1 tables
      | _ -> Alcotest.fail "wrong detail")
    [ `Drop; `Adversarial; `All ]

let test_nvm_recovery_rolls_back_inflight () =
  let e = setup_kv (nvm_engine ()) in
  fill e 10;
  (* an in-flight transaction at crash time *)
  let t = E.begin_txn e in
  ignore (E.insert e t "kv" (kv 999 "uncommitted"));
  let e2, stats = E.recover (E.crash e Region.Drop_unfenced) in
  Alcotest.(check (list (pair int string))) "in-flight gone" (expected 10) (dump e2);
  (match stats.E.detail with
  | E.Rv_nvm _ -> ()
  | _ -> Alcotest.fail "wrong detail");
  (* and the engine keeps working *)
  E.with_txn e2 (fun txn -> ignore (E.insert e2 txn "kv" (kv 11 "11")));
  Alcotest.(check (list (pair int string))) "continues" (expected 11) (dump e2)

let fill_more e =
  for i = 21 to 30 do
    E.with_txn e (fun txn -> ignore (E.insert e txn "kv" (kv i (string_of_int i))))
  done

let test_nvm_recovery_after_merge () =
  let e = setup_kv (nvm_engine ()) in
  fill e 20;
  ignore (E.merge e "kv");
  fill_more e;
  let before = dump e in
  let e2, _ = E.recover (E.crash e Region.Drop_unfenced) in
  Alcotest.(check (list (pair int string))) "main+delta recovered" before (dump e2)

let test_log_recovery_every_commit_flushed () =
  let e = setup_kv (log_engine ~group:1 ()) in
  fill e 30;
  let before = dump e in
  let e2, stats = E.recover (E.crash e Region.Drop_unfenced) in
  Alcotest.(check (list (pair int string))) "no loss at group=1" before (dump e2);
  match stats.E.detail with
  | E.Rv_log { committed_txns; log_bytes; _ } ->
      Alcotest.(check int) "committed txns" 30 committed_txns;
      Alcotest.(check bool) "replayed bytes" true (log_bytes > 0)
  | _ -> Alcotest.fail "wrong detail"

let test_log_recovery_group_window_loss () =
  let e = setup_kv (log_engine ~group:8 ()) in
  fill e 30;
  let e2, _ = E.recover (E.crash e Region.Drop_unfenced) in
  let recovered = dump e2 in
  let n = List.length recovered in
  (* 30 commits with groups of 8: 24 durable, 6 in the lost window *)
  Alcotest.(check int) "whole groups survive" 24 n;
  Alcotest.(check (list (pair int string))) "prefix semantics" (expected n) recovered

let test_log_recovery_with_checkpoint () =
  let e = setup_kv (log_engine ~group:1 ()) in
  fill e 20;
  ignore (E.checkpoint e);
  for i = 21 to 25 do
    E.with_txn e (fun txn -> ignore (E.insert e txn "kv" (kv i (string_of_int i))))
  done;
  let e2, stats = E.recover (E.crash e Region.Drop_unfenced) in
  Alcotest.(check (list (pair int string))) "checkpoint + tail" (expected 25) (dump e2);
  (match stats.E.detail with
  | E.Rv_log { checkpoint_rows; committed_txns; _ } ->
      Alcotest.(check int) "checkpoint rows" 20 checkpoint_rows;
      Alcotest.(check int) "only tail replayed" 5 committed_txns
  | _ -> Alcotest.fail "wrong detail");
  (* crash again right away: double recovery works *)
  let e3, _ = E.recover (E.crash e2 Region.Drop_unfenced) in
  Alcotest.(check (list (pair int string))) "second recovery" (expected 25) (dump e3)

let test_log_recovery_updates_and_deletes () =
  let e = setup_kv (log_engine ~group:1 ()) in
  fill e 10;
  E.with_txn e (fun txn ->
      match E.lookup e txn "kv" ~col:"k" (Value.Int 3) with
      | [ (row, _) ] -> ignore (E.update e txn "kv" row (kv 3 "updated"))
      | _ -> Alcotest.fail "lookup");
  E.with_txn e (fun txn ->
      match E.lookup e txn "kv" ~col:"k" (Value.Int 7) with
      | [ (row, _) ] -> E.delete e txn "kv" row
      | _ -> Alcotest.fail "lookup");
  let before = dump e in
  let e2, _ = E.recover (E.crash e Region.Drop_unfenced) in
  Alcotest.(check (list (pair int string))) "updates+deletes replayed" before (dump e2)

let test_volatile_recovery_loses_everything () =
  let e = setup_kv (volatile_engine ()) in
  fill e 10;
  let e2, stats = E.recover (E.crash e Region.Drop_unfenced) in
  Alcotest.(check bool) "empty database" true (E.table_names e2 = []);
  match stats.E.detail with
  | E.Rv_volatile -> ()
  | _ -> Alcotest.fail "wrong detail"

let test_crashed_engine_closed () =
  let e = setup_kv (nvm_engine ()) in
  ignore (E.crash e Region.Drop_unfenced);
  Alcotest.check_raises "closed" E.Closed (fun () -> ignore (E.begin_txn e))

(* -------- golden-model crash fuzzing -------- *)

(* A model of committed state per CID, driven by the same random schedule
   as the engine. At a random point we crash adversarially and recover;
   NVM must match the model at the last committed CID, Logging at the
   model of whatever CID it recovered (prefix semantics). *)

type model = (int * string) list (* sorted *)

let apply_model (m : model) ops : model =
  List.sort compare
    (List.fold_left
       (fun m op ->
         match op with
         | `Put (k, v) -> (k, v) :: List.remove_assoc k m
         | `Del k -> List.remove_assoc k m)
       m ops)

let run_schedule ?(pos0 = 0) e (script : (int * int) list) =
  (* returns the list of (cid, model) snapshots *)
  let model = ref [] in
  let snapshots = ref [ (Cid.zero, []) ] in
  List.iteri
    (fun i (key, action) ->
      let pos = pos0 + i in
      let k = 1 + (key mod 25) in
      let txn = E.begin_txn e in
      let ops = ref [] in
      (try
         (match action mod 3 with
         | 0 ->
             (* upsert *)
             (match E.lookup e txn "kv" ~col:"k" (Value.Int k) with
             | (row, _) :: _ ->
                 ignore (E.update e txn "kv" row (kv k (string_of_int action)))
             | [] -> ignore (E.insert e txn "kv" (kv k (string_of_int action))));
             ops := [ `Put (k, string_of_int action) ]
         | 1 -> (
             (* delete if present *)
             match E.lookup e txn "kv" ~col:"k" (Value.Int k) with
             | (row, _) :: _ ->
                 E.delete e txn "kv" row;
                 ops := [ `Del k ]
             | [] -> ())
         | _ ->
             (* blind insert of a fresh key, unique per script position *)
             let k2 = 1000 + pos in
             ignore (E.insert e txn "kv" (kv k2 "blind"));
             ops := [ `Put (k2, "blind") ]);
         let cid = E.commit e txn in
         if !ops <> [] then begin
           model := apply_model !model !ops;
           snapshots := (cid, !model) :: !snapshots
         end
       with Mvcc.Write_conflict _ -> E.abort e txn))
    script;
  !snapshots

let prop_nvm_crash_consistency =
  QCheck.Test.make ~name:"NVM: adversarial crash recovers last committed state"
    ~count:40
    QCheck.(
      pair int64 (list_of_size Gen.(int_range 1 40) (pair (int_bound 1000) (int_bound 1000))))
    (fun (seed, script) ->
      let e = setup_kv (nvm_engine ()) in
      let snapshots = run_schedule e script in
      let rng = Prng.create seed in
      let e2, _ = E.recover (E.crash e (Region.Adversarial rng)) in
      (* NVM commits synchronously: recovery must land on the LAST cid *)
      let last = List.hd snapshots in
      E.last_cid e2 = fst last
      && dump e2 = snd last)

let prop_publish_modes_crash_consistency =
  QCheck.Test.make
    ~name:"all publish modes recover the last committed state" ~count:30
    QCheck.(
      triple (oneofl [ `Batched; `Per_table; `Per_vector ])
        (list_of_size Gen.(int_range 1 30) (pair (int_bound 1000) (int_bound 1000)))
        int64)
    (fun (mode, script, seed) ->
      let e = E.create ~publish_mode:mode (E.default_config ~size:(16 * 1024 * 1024) E.Nvm) in
      E.create_table e ~name:"kv" kv_schema;
      let snapshots = run_schedule e script in
      let rng = Prng.create seed in
      let e2, _ = E.recover (E.crash e (Region.Adversarial rng)) in
      let last = List.hd snapshots in
      E.last_cid e2 = fst last && dump e2 = snd last)

(* The strongest crash test: arm a power failure that fires in the middle
   of some engine operation — inside the multi-fence commit protocol,
   inside a dictionary insert, inside an allocator split — then recover
   and check the database equals the committed-state model at the
   recovered CID. *)
let prop_mid_operation_power_failure =
  QCheck.Test.make ~name:"mid-operation power failure is atomic" ~count:60
    QCheck.(
      triple int64
        (list_of_size Gen.(int_range 5 40) (pair (int_bound 1000) (int_bound 1000)))
        (int_bound 5000))
    (fun (seed, script, fuse) ->
      let e = setup_kv (nvm_engine ()) in
      let region = E.region e in
      (* run a prefix normally so there is committed state to protect *)
      let k = List.length script / 2 in
      let prefix = List.filteri (fun i _ -> i < k) script in
      let suffix = List.filteri (fun i _ -> i >= k) script in
      let snapshots = ref (run_schedule e prefix) in
      (* arm the fuse, then keep operating until the power dies (or the
         script ends with the fuse unspent) *)
      Region.arm_crash region ~after_ops:fuse;
      (try
         let more = run_schedule ~pos0:k e suffix in
         (* run_schedule starts its own model from []; recompute instead:
            rerun semantics are tracked by re-walking the combined script
            below, so just note the extra snapshots' cids *)
         ignore more
       with Region.Power_failure -> ());
      Region.disarm_crash region;
      (* rebuild the authoritative cid->model map by replaying the full
         script against a pure model, using the cids the engine assigned:
         cids are sequential, and run_schedule's snapshots carry them. We
         can't reuse [more] (its model restarted from []), so recompute
         from scratch against a fresh shadow engine is overkill — instead
         derive: committed state must match SOME prefix model of the pure
         fold. *)
      let rng = Prng.create seed in
      let e2, _ = E.recover (E.crash e (Region.Adversarial rng)) in
      (* fold the full script into the cid-indexed model exactly like
         run_schedule does, using a shadow volatile engine for row lookups *)
      let shadow = setup_kv (volatile_engine ()) in
      let all_snapshots = run_schedule shadow (prefix @ suffix) in
      ignore !snapshots;
      let cid = E.last_cid e2 in
      match List.assoc_opt cid all_snapshots with
      | None -> false
      | Some m -> dump e2 = m)

let prop_log_crash_prefix_consistency =
  QCheck.Test.make ~name:"Log: crash recovers a committed prefix" ~count:30
    QCheck.(
      triple (int_range 1 6)
        (list_of_size Gen.(int_range 1 40) (pair (int_bound 1000) (int_bound 1000)))
        int64)
    (fun (group, script, seed) ->
      let e = setup_kv (log_engine ~group ()) in
      let snapshots = run_schedule e script in
      let rng = Prng.create seed in
      let e2, _ = E.recover (E.crash e (Region.Adversarial rng)) in
      let cid = E.last_cid e2 in
      (* recovered state must equal the model at the recovered cid, and
         the loss is bounded by the group window *)
      let last = fst (List.hd snapshots) in
      match List.assoc_opt cid snapshots with
      | None -> false
      | Some m ->
          dump e2 = m
          && Int64.sub last cid <= Int64.of_int group)

let test_tpcc_consistency_after_adversarial_crash () =
  for seed = 1 to 3 do
    let e = nvm_engine ~size:(32 * 1024 * 1024) () in
    let sess =
      Workload.Tpcc_lite.setup e ~warehouses:2 ~districts_per_wh:2
        ~customers_per_district:4
    in
    let rng = Prng.create (Int64.of_int seed) in
    ignore (Workload.Tpcc_lite.run sess rng ~ops:150 ());
    (* crash mid-transaction *)
    let t = E.begin_txn e in
    ignore (E.insert e t "orders"
        [| Value.Int 99999; Value.Int 1; Value.Int 1; Value.Int 0; Value.Int 1;
           Value.Int 0 |]);
    let e2, _ = E.recover (E.crash e (Region.Adversarial rng)) in
    let sess2 =
      Workload.Tpcc_lite.attach e2 ~warehouses:2 ~districts_per_wh:2
        ~customers_per_district:4
    in
    List.iter
      (fun (name, ok) ->
        Alcotest.(check bool) (Printf.sprintf "%s (seed %d)" name seed) true ok)
      (Workload.Tpcc_lite.consistency_check sess2);
    (* the in-flight order must be gone *)
    E.with_txn e2 (fun txn ->
        Alcotest.(check (list (pair int (array value_t)))) "in-flight gone" []
          (E.lookup e2 txn "orders" ~col:"o_id" (Value.Int 99999)))
  done

let prop_log_mid_operation_power_failure =
  (* same fuse, log durability: the recovered state must be the model at
     some fsynced commit horizon *)
  QCheck.Test.make ~name:"log: mid-operation power failure recovers a prefix"
    ~count:40
    QCheck.(
      triple (int_range 1 6)
        (list_of_size Gen.(int_range 5 30) (pair (int_bound 1000) (int_bound 1000)))
        (int_bound 3000))
    (fun (group, script, fuse) ->
      let e = setup_kv (log_engine ~group ()) in
      let region = E.region e in
      let k = List.length script / 2 in
      let prefix = List.filteri (fun i _ -> i < k) script in
      let suffix = List.filteri (fun i _ -> i >= k) script in
      ignore (run_schedule e prefix);
      Region.arm_crash region ~after_ops:fuse;
      (try ignore (run_schedule ~pos0:k e suffix)
       with Region.Power_failure -> ());
      Region.disarm_crash region;
      let e2, _ = E.recover (E.crash e Region.Drop_unfenced) in
      let shadow = setup_kv (volatile_engine ()) in
      let all_snapshots = run_schedule shadow (prefix @ suffix) in
      match List.assoc_opt (E.last_cid e2) all_snapshots with
      | None -> false
      | Some m -> dump e2 = m)

(* -------- vacuum -------- *)

let test_vacuum_clean_engine_reclaims_nothing () =
  let e = setup_kv (nvm_engine ()) in
  fill e 20;
  ignore (E.merge e "kv");
  fill e 0;
  let blocks, bytes = E.vacuum e in
  Alcotest.(check (pair int int)) "no leaks in normal operation" (0, 0)
    (blocks, bytes);
  Alcotest.(check (list (pair int string))) "data untouched" (expected 20) (dump e)

let test_vacuum_reclaims_crash_leaks () =
  (* force a crash inside a merge: the half-built new generation leaks *)
  let found_leak = ref false in
  let fuse = ref 50 in
  while (not !found_leak) && !fuse < 3000 do
    let e = setup_kv (nvm_engine ()) in
    fill e 30;
    let region = E.region e in
    Region.arm_crash region ~after_ops:!fuse;
    (try ignore (E.merge e "kv") with Region.Power_failure -> ());
    Region.disarm_crash region;
    let e2, _ = E.recover (E.crash e Region.Drop_unfenced) in
    Alcotest.(check (list (pair int string)))
      "committed data intact after mid-merge crash" (expected 30) (dump e2);
    let blocks, _ = E.vacuum e2 in
    if blocks > 0 then begin
      found_leak := true;
      (* data still intact after the sweep, and a second vacuum is a noop *)
      Alcotest.(check (list (pair int string))) "data intact after vacuum"
        (expected 30) (dump e2);
      Alcotest.(check (pair int int)) "idempotent" (0, 0) (E.vacuum e2);
      (* the engine still works end to end *)
      E.with_txn e2 (fun txn -> ignore (E.insert e2 txn "kv" (kv 31 "31")));
      ignore (E.merge e2 "kv");
      Alcotest.(check (list (pair int string))) "still functional"
        (expected 31) (dump e2)
    end;
    fuse := !fuse + 150
  done;
  Alcotest.(check bool) "found at least one leaking crash point" true !found_leak

let test_vacuum_requires_quiescence () =
  let e = setup_kv (nvm_engine ()) in
  let t = E.begin_txn e in
  Alcotest.check_raises "active txns"
    (Invalid_argument "Engine.vacuum: active transactions") (fun () ->
      ignore (E.vacuum e));
  E.abort e t

(* -------- observability: recovery spans and metrics -------- *)

let span_count name = Util.Histogram.count (Obs.histogram ("span." ^ name))

let span_total name =
  let h = Obs.histogram ("span." ^ name) in
  if Util.Histogram.count h = 0 then 0 else Util.Histogram.total h

let with_spans f =
  let was = Obs.is_enabled () in
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect ~finally:(fun () -> Obs.set_enabled was) f

(* span timestamps are ~us-granular; allow a little slack per phase when
   comparing sums against the enclosing span *)
let clock_slack = 10_000

let check_phases parent phases =
  Alcotest.(check int) (parent ^ " recorded once") 1 (span_count parent);
  List.iter
    (fun p ->
      Alcotest.(check int)
        (parent ^ "." ^ p ^ " recorded once")
        1
        (span_count (parent ^ "." ^ p)))
    phases;
  let sum = List.fold_left (fun a p -> a + span_total (parent ^ "." ^ p)) 0 phases in
  let wall = span_total parent in
  Alcotest.(check bool)
    (Printf.sprintf "phase sum %d <= wall %d" sum wall)
    true
    (sum <= wall + (clock_slack * List.length phases))

let test_nvm_recovery_spans () =
  with_spans (fun () ->
      let e = setup_kv (nvm_engine ()) in
      fill e 20;
      let t = E.begin_txn e in
      ignore (E.insert e t "kv" (kv 999 "uncommitted"));
      let _, stats = E.recover (E.crash e Region.Drop_unfenced) in
      check_phases "recover.nvm" [ "heap_scan"; "attach"; "rollback" ];
      match stats.E.detail with
      | E.Rv_nvm { heap_open_ns; attach_ns; rollback_ns; rolled_back_rows; _ } ->
          Alcotest.(check bool) "detail sum <= recovery wall" true
            (heap_open_ns + attach_ns + rollback_ns <= stats.E.wall_ns);
          Alcotest.(check int) "rollback rows attr matches detail"
            rolled_back_rows
            (Obs.counter_value (Obs.counter "span.recover.nvm.rollback.rows"))
      | _ -> Alcotest.fail "wrong detail")

let test_log_recovery_spans () =
  with_spans (fun () ->
      let e = setup_kv (log_engine ~group:1 ()) in
      fill e 20;
      ignore (E.checkpoint e);
      fill_more e;
      let _, stats = E.recover (E.crash e Region.Drop_unfenced) in
      check_phases "recover.log"
        [ "format"; "checkpoint_load"; "replay"; "reopen_log" ];
      Alcotest.(check int) "checkpoint span recorded" 1 (span_count "checkpoint");
      match stats.E.detail with
      | E.Rv_log { checkpoint_rows; _ } ->
          Alcotest.(check int) "checkpoint rows attr matches detail"
            checkpoint_rows
            (Obs.counter_value (Obs.counter "span.recover.log.checkpoint_load.rows"))
      | _ -> Alcotest.fail "wrong detail")

let test_spans_off_by_default () =
  Obs.set_enabled false;
  Obs.reset ();
  let e = setup_kv (nvm_engine ()) in
  fill e 5;
  let _ = E.recover (E.crash e Region.Drop_unfenced) in
  Alcotest.(check int) "nothing recorded when disarmed" 0
    (span_count "recover.nvm")

let test_txn_counters_and_gauges () =
  let commits0 = Obs.counter_value (Obs.counter "txn.commit") in
  let begins0 = Obs.counter_value (Obs.counter "txn.begin") in
  let e = setup_kv (nvm_engine ()) in
  fill e 5;
  Alcotest.(check bool) "commit counter advanced" true
    (Obs.counter_value (Obs.counter "txn.commit") - commits0 >= 5);
  Alcotest.(check bool) "begin >= commit" true
    (Obs.counter_value (Obs.counter "txn.begin") - begins0
    >= Obs.counter_value (Obs.counter "txn.commit") - commits0);
  E.sync_metrics e;
  Alcotest.(check bool) "stores gauge mirrors the region" true
    (Obs.gauge_value (Obs.gauge "nvm.stores") > 0);
  Alcotest.(check int) "no active txns" 0
    (Obs.gauge_value (Obs.gauge "engine.active_txns"));
  Alcotest.(check bool) "data bytes gauge set" true
    (Obs.gauge_value (Obs.gauge "engine.data_bytes") > 0)

let test_json_non_finite_floats_are_null () =
  (* a nan/inf metric means the source is broken; masking it as 0 would
     hide that, so the JSON encoder emits null *)
  let s v = Obs.Json.to_string (Obs.Json.Float v) in
  Alcotest.(check string) "nan" "null" (s Float.nan);
  Alcotest.(check string) "+inf" "null" (s Float.infinity);
  Alcotest.(check string) "-inf" "null" (s Float.neg_infinity);
  Alcotest.(check string) "finite untouched" "1.5" (s 1.5)

let test_counter_rejects_negative_delta () =
  let c = Obs.counter "test.engine.negative_delta" in
  Obs.add c 3;
  Alcotest.check_raises "negative delta refused"
    (Invalid_argument "Obs.add: negative delta -1 on a counter") (fun () ->
      Obs.add c (-1));
  Alcotest.(check int) "counter unchanged by the refused add" 3
    (Obs.counter_value c)

let test_event_pack_unpack_roundtrip () =
  let open Obs.Event in
  let kinds =
    [ Txn_begin; Txn_commit; Txn_abort; Txn_conflict; Ckpt_begin; Ckpt_end;
      Merge_begin; Merge_end; Fault_injected; Crc_failure; Quarantine;
      Salvage; Recovery_begin; Recovery_phase; Table_attach; Engine_ready;
      Full_health ]
  in
  List.iteri
    (fun i kind ->
      let ev = { seq = i + 1; lane = i mod 8; kind; arg = i * 1_000_003; t_ns = i * 17 } in
      let w1, w2 = pack ev in
      match unpack ~seq:ev.seq w1 w2 with
      | Some got -> Alcotest.(check bool) (kind_name kind ^ " roundtrips") true (got = ev)
      | None -> Alcotest.failf "unpack rejected %s" (kind_name kind))
    kinds;
  (* an unknown kind byte is a schema gap, not corruption: skipped *)
  Alcotest.(check bool) "unknown kind skipped" true
    (unpack ~seq:1 (Int64.shift_left 200L 56) 0L = None)

(* -------- flight recorder -------- *)

let bb_kinds evs = List.map (fun ev -> ev.Obs.Event.kind) evs
let bb_seqs evs = List.map (fun ev -> ev.Obs.Event.seq) evs
let ascending l = List.sort_uniq compare l = l

let test_blackbox_fresh_engine () =
  let e = nvm_engine () in
  let bb = E.blackbox e in
  Alcotest.(check int) "no pre-crash history on a fresh region" 0
    (List.length bb.E.precrash);
  Alcotest.(check int) "nothing truncated" 0 bb.E.truncated_lanes;
  Alcotest.(check bool) "engine-ready marked" true
    (List.mem Obs.Event.Engine_ready (bb_kinds bb.E.restart));
  Alcotest.(check bool) "full-health marked" true
    (bb.E.full_health_ns <> None)

let test_blackbox_timeline_across_crash () =
  let e = setup_kv (nvm_engine ()) in
  for i = 1 to 8 do
    E.with_txn e (fun txn ->
        ignore (E.insert e txn "kv" (kv i (string_of_int i))))
  done;
  let crashed = E.crash e Region.Drop_unfenced in
  let e2, stats = E.recover crashed in
  let bb = E.blackbox e2 in
  let pre_kinds = bb_kinds bb.E.precrash in
  Alcotest.(check bool) "pre-crash txns reconstructed" true
    (List.mem Obs.Event.Txn_begin pre_kinds
    && List.mem Obs.Event.Txn_commit pre_kinds);
  Alcotest.(check bool) "pre-crash seqs strictly ascending" true
    (ascending (bb_seqs bb.E.precrash));
  (match stats.E.detail with
  | E.Rv_nvm { blackbox_records; _ } ->
      Alcotest.(check int) "Rv_nvm.blackbox_records matches the decode"
        (List.length bb.E.precrash) blackbox_records
  | _ -> Alcotest.fail "expected Rv_nvm detail");
  (* the restart narrative: begins with recovery-begin, attaches the
     table, and ends ready *)
  (match bb.E.restart with
  | first :: _ ->
      Alcotest.(check bool) "restart opens with recovery-begin" true
        (first.Obs.Event.kind = Obs.Event.Recovery_begin)
  | [] -> Alcotest.fail "restart timeline is empty");
  let rk = bb_kinds bb.E.restart in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Obs.Event.kind_name k ^ " present in restart timeline")
        true (List.mem k rk))
    [ Obs.Event.Recovery_phase; Obs.Event.Table_attach; Obs.Event.Engine_ready;
      Obs.Event.Full_health ];
  (* seq floor: everything after the restart sorts after everything
     before the crash *)
  let max_pre = List.fold_left max 0 (bb_seqs bb.E.precrash) in
  Alcotest.(check bool) "restart seqs above the pre-crash timeline" true
    (List.for_all (fun s -> s > max_pre) (bb_seqs bb.E.restart));
  (match (bb.E.recovery_begin_ns, bb.E.engine_ready_ns, bb.E.full_health_ns) with
  | Some t0, Some t1, Some t2 ->
      Alcotest.(check bool) "marker clocks ordered" true (t0 <= t1 && t1 <= t2)
  | _ -> Alcotest.fail "expected all three restart markers")

let test_blackbox_survives_second_crash () =
  (* the restart narrative itself is on NVM: crash again and the first
     recovery's markers come back as pre-crash history *)
  let e = setup_kv (nvm_engine ()) in
  E.with_txn e (fun txn -> ignore (E.insert e txn "kv" (kv 1 "one")));
  let e2, _ = E.recover (E.crash e Region.Drop_unfenced) in
  E.with_txn e2 (fun txn -> ignore (E.insert e2 txn "kv" (kv 2 "two")));
  let e3, _ = E.recover (E.crash e2 Region.Drop_unfenced) in
  let bb = E.blackbox e3 in
  let pre = bb_kinds bb.E.precrash in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Obs.Event.kind_name k ^ " from the first restart survives")
        true (List.mem k pre))
    [ Obs.Event.Recovery_begin; Obs.Event.Engine_ready; Obs.Event.Full_health;
      Obs.Event.Txn_commit ];
  Alcotest.(check bool) "merged pre-crash seqs still ascending" true
    (ascending (bb_seqs bb.E.precrash))

let test_blackbox_adversarial_truncates_only_tail () =
  (* adversarial eviction may tear the very last record, never an
     earlier one: the decoded timeline is a prefix and recovery still
     reaches full health *)
  let rng = Prng.create 4242L in
  for round = 1 to 5 do
    let e = setup_kv (nvm_engine ()) in
    for i = 1 to 20 do
      E.with_txn e (fun txn ->
          ignore (E.insert e txn "kv" (kv i (string_of_int i))))
    done;
    let e2, _ = E.recover (E.crash e (Region.Adversarial (Prng.split rng))) in
    let bb = E.blackbox e2 in
    Alcotest.(check bool)
      (Printf.sprintf "round %d: timeline reconstructed" round)
      true
      (List.mem Obs.Event.Txn_commit (bb_kinds bb.E.precrash));
    Alcotest.(check bool)
      (Printf.sprintf "round %d: seqs ascending" round)
      true
      (ascending (bb_seqs bb.E.precrash));
    Alcotest.(check bool)
      (Printf.sprintf "round %d: full health" round)
      true (bb.E.full_health_ns <> None)
  done

let () =
  Alcotest.run "engine"
    [
      ( "queries",
        [
          Alcotest.test_case "ddl" `Quick test_ddl;
          Alcotest.test_case "insert/select" `Quick test_insert_select;
          Alcotest.test_case "update/delete" `Quick test_update_delete;
          Alcotest.test_case "with_txn aborts" `Quick test_with_txn_aborts_on_exception;
          Alcotest.test_case "get_row visibility" `Quick test_get_row_visibility;
          Alcotest.test_case "sum_int" `Quick test_sum_int;
          Alcotest.test_case "write conflict" `Quick test_write_conflict_surfaces;
        ] );
      ( "merge",
        [
          Alcotest.test_case "merge" `Quick test_engine_merge;
          Alcotest.test_case "requires quiescence" `Quick test_merge_requires_quiescence;
          Alcotest.test_case "rejected in log mode" `Quick test_merge_rejected_in_log_mode;
          Alcotest.test_case "checkpoint all modes" `Quick test_checkpoint_all_modes;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "nvm exact (all crash modes)" `Quick test_nvm_recovery_exact;
          Alcotest.test_case "nvm rolls back in-flight" `Quick
            test_nvm_recovery_rolls_back_inflight;
          Alcotest.test_case "nvm after merge" `Quick test_nvm_recovery_after_merge;
          Alcotest.test_case "log group=1 lossless" `Quick
            test_log_recovery_every_commit_flushed;
          Alcotest.test_case "log group window loss" `Quick
            test_log_recovery_group_window_loss;
          Alcotest.test_case "log with checkpoint" `Quick
            test_log_recovery_with_checkpoint;
          Alcotest.test_case "log updates+deletes" `Quick
            test_log_recovery_updates_and_deletes;
          Alcotest.test_case "volatile loses all" `Quick
            test_volatile_recovery_loses_everything;
          Alcotest.test_case "crashed engine closed" `Quick test_crashed_engine_closed;
        ] );
      ( "vacuum",
        [
          Alcotest.test_case "clean engine" `Quick
            test_vacuum_clean_engine_reclaims_nothing;
          Alcotest.test_case "reclaims crash leaks" `Slow
            test_vacuum_reclaims_crash_leaks;
          Alcotest.test_case "requires quiescence" `Quick
            test_vacuum_requires_quiescence;
        ] );
      ( "observability",
        [
          Alcotest.test_case "nvm recovery spans" `Quick test_nvm_recovery_spans;
          Alcotest.test_case "log recovery spans" `Quick test_log_recovery_spans;
          Alcotest.test_case "spans off by default" `Quick
            test_spans_off_by_default;
          Alcotest.test_case "txn counters + gauges" `Quick
            test_txn_counters_and_gauges;
          Alcotest.test_case "json nan/inf -> null" `Quick
            test_json_non_finite_floats_are_null;
          Alcotest.test_case "counter rejects negative delta" `Quick
            test_counter_rejects_negative_delta;
          Alcotest.test_case "event pack/unpack roundtrip" `Quick
            test_event_pack_unpack_roundtrip;
        ] );
      ( "blackbox",
        [
          Alcotest.test_case "fresh engine" `Quick test_blackbox_fresh_engine;
          Alcotest.test_case "timeline across crash" `Quick
            test_blackbox_timeline_across_crash;
          Alcotest.test_case "survives a second crash" `Quick
            test_blackbox_survives_second_crash;
          Alcotest.test_case "adversarial truncates only the tail" `Quick
            test_blackbox_adversarial_truncates_only_tail;
        ] );
      ( "crash-fuzz",
        [
          QCheck_alcotest.to_alcotest prop_nvm_crash_consistency;
          QCheck_alcotest.to_alcotest prop_publish_modes_crash_consistency;
          QCheck_alcotest.to_alcotest prop_mid_operation_power_failure;
          QCheck_alcotest.to_alcotest prop_log_crash_prefix_consistency;
          QCheck_alcotest.to_alcotest prop_log_mid_operation_power_failure;
          Alcotest.test_case "tpcc invariants after crash" `Slow
            test_tpcc_consistency_after_adversarial_crash;
        ] );
    ]
