(* Benchmark harness: regenerates every table/figure of the evaluation
   (see DESIGN.md's per-experiment index and EXPERIMENTS.md for the
   paper-vs-measured record).

     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- --only E1    -- one experiment
     dune exec bench/main.exe -- --fast       -- smaller scales (CI)
     dune exec bench/main.exe -- --smoke      -- only BENCH_*.json, tiny scales

   Every run (and --smoke in particular) ends by writing two
   machine-readable files next to the working directory:
   BENCH_recovery.json (restart time per durability mode across dataset
   scales, with per-phase breakdowns) and BENCH_throughput.json (YCSB and
   TPC-C-lite throughput/latency plus the tracer-overhead check).

   Experiments:
     E1  recovery time vs dataset size (the headline demo result)
     E2  OLTP throughput: volatile vs log-based vs NVM durability
     E3  throughput sensitivity to NVM latency (simulated time)
     E4  persistence-primitive cost per transaction + micro-benchmarks
     E5  delta->main merge behaviour
     E6  NVM instant-restart breakdown across scales
     T1  dataset / workload characteristics *)

module Engine = Core.Engine
module Region = Nvm.Region
module Ycsb = Workload.Ycsb
module Tpcc = Workload.Tpcc_lite
module Prng = Util.Prng
module Tabular = Util.Tabular

let mib = 1024 * 1024
let now_ns () = Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1e9))

let tmpdir () =
  let d = Filename.temp_file "hyrise_bench" "" in
  Sys.remove d;
  d

let log_config ?(group = 8) ?(fsync = true) () =
  { Wal.Log.dir = tmpdir (); group_commit_size = group; fsync }

let nvm_engine size = Engine.create (Engine.default_config ~size Engine.Nvm)

let volatile_engine size =
  Engine.create (Engine.default_config ~size Engine.Volatile)

let log_engine ?group ?fsync size =
  Engine.create
    {
      Engine.region = Region.config_with_size size;
      durability = Engine.Logging (log_config ?group ?fsync ());
      salvage = None;
    }

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* Every measured interval goes through [timed], which accumulates into a
   [bench.*] histogram in the Obs registry — the printed tables and the
   BENCH_*.json files below read the same data. *)
let timed name f =
  let t0 = now_ns () in
  let r = f () in
  let dt = now_ns () - t0 in
  Util.Histogram.record (Obs.histogram ("bench." ^ name)) dt;
  (r, dt)

let fmt_pctl lat p = Tabular.fmt_ns (Util.Histogram.percentile lat p)

module J = Obs.Json

(* Every Rv_log phase field, machine-readable (the smoke CI asserts on
   the per-phase keys and the per-slot device attribution). *)
let rv_log_phases = function
  | Engine.Rv_log
      {
        checkpoint_load_ns;
        replay_ns;
        replay_decode_ns;
        replay_stage_ns;
        replay_apply_ns;
        replay_waves;
        replay_jobs;
        replay_dev_by_slot;
        command_txns;
        checkpoint_rows;
        checkpoint_bytes;
        log_records;
        log_bytes;
        committed_txns;
      } ->
      Some
        ( J.Obj
            [
              ("checkpoint_load_ns", J.Int checkpoint_load_ns);
              ("replay_ns", J.Int replay_ns);
              ("replay_decode_ns", J.Int replay_decode_ns);
              ("replay_stage_ns", J.Int replay_stage_ns);
              ("replay_apply_ns", J.Int replay_apply_ns);
              ("replay_waves", J.Int replay_waves);
              ("replay_jobs", J.Int replay_jobs);
              ( "replay_dev_by_slot",
                J.List
                  (Array.to_list (Array.map (fun n -> J.Int n) replay_dev_by_slot))
              );
              ("command_txns", J.Int command_txns);
              ("checkpoint_rows", J.Int checkpoint_rows);
              ("checkpoint_bytes", J.Int checkpoint_bytes);
              ("log_records", J.Int log_records);
              ("log_bytes", J.Int log_bytes);
              ("committed_txns", J.Int committed_txns);
            ],
          replay_dev_by_slot )
  | _ -> None

(* The tentpole matrix: replay the same crashed log under jobs 1/2/4 for
   one logging policy. Scratch replays ([reopen:false]) leave the log
   bytes untouched, so every cell replays identical input; digests are
   compared against the jobs-1 baseline and the modeled speedup is
   serial total device time over the parallel critical path (the
   worst-loaded slot), the core-count-independent number EXPERIMENTS.md
   E1 tracks. *)
let replay_matrix_for ~tag ~policy ~rows ~size ~jobs_axis =
  let lc = log_config ~fsync:false () in
  let cfg =
    {
      Engine.region = Region.config_with_size size;
      durability = Engine.Logging lc;
      salvage = None;
    }
  in
  let engine = Engine.create cfg in
  Engine.set_log_policy engine policy;
  let ycfg = { Ycsb.default_config with rows } in
  (* spec-driven population: spec bodies declare their command ops, so
     the `Command/`Adaptive policies actually emit command records. The
     checkpoint covers only the loaded table; the whole measured op run
     rides in the log, so the matrix times a replay-dominated restart. *)
  let sess = Ycsb.setup engine (Prng.create 1L) ycfg in
  ignore (Engine.checkpoint engine);
  ignore (Ycsb.run_specs sess (Ycsb.gen_specs sess (Prng.create 2L) ~ops:(rows / 5)));
  let log_bytes = Engine.log_bytes engine in
  let data_bytes = Engine.data_bytes engine in
  let crashed = Engine.crash engine Region.Drop_unfenced in
  let jobs0 = Par.jobs () in
  let baseline = ref None (* (digest, dev_total) at jobs 1 *) in
  let cells =
    List.map
      (fun j ->
        Par.set_jobs j;
        let (e, detail), dt =
          timed
            (Printf.sprintf "%s.replay.%s.j%d" tag (Engine.log_policy_name policy) j)
            (fun () -> Engine.recover_log ~reopen:false cfg lc)
        in
        let digest = Engine.media_digest e in
        let phases, dev =
          match rv_log_phases detail with
          | Some (p, d) -> (p, d)
          | None -> (J.Obj [], [||])
        in
        let dev_total = Array.fold_left ( + ) 0 dev in
        let dev_critical = Array.fold_left max 0 dev in
        (match !baseline with
        | None -> baseline := Some (digest, dev_total)
        | Some _ -> ());
        let base_digest, base_dev =
          match !baseline with Some (d, t) -> (d, t) | None -> (digest, dev_total)
        in
        ignore (Engine.crash e Region.Drop_unfenced);
        J.Obj
          [
            ("policy", J.Str (Engine.log_policy_name policy));
            ("jobs", J.Int j);
            ("wall_ns", J.Int dt);
            ("dev_total_ns", J.Int dev_total);
            ("dev_critical_ns", J.Int dev_critical);
            ( "modeled_speedup",
              J.Float
                (if dev_critical = 0 then 1.0
                 else float_of_int base_dev /. float_of_int dev_critical) );
            ("digest_match", J.Bool (String.equal digest base_digest));
            ("phases", phases);
          ])
      jobs_axis
  in
  Par.set_jobs jobs0;
  (cells, crashed, cfg, lc, log_bytes, data_bytes)

(* ------------------------------------------------------------------ *)
(* E1: recovery time vs dataset size                                   *)
(* ------------------------------------------------------------------ *)

let e1 ~fast () =
  header
    "E1  Recovery time vs dataset size (paper: 92.2 GB -> 53 s log, < 1 s NVM)";
  let scales = if fast then 3 else 5 in
  let table =
    Tabular.create ~title:"E1: restart time after power failure"
      [
        ("rows", Tabular.Right);
        ("data on NVM", Tabular.Right);
        ("log bytes", Tabular.Right);
        ("log replay", Tabular.Right);
        ("ckpt+log replay", Tabular.Right);
        ("Hyrise-NV", Tabular.Right);
        ("speedup", Tabular.Right);
      ]
  in
  for s = 0 to scales - 1 do
    let rows = 1_000 * (1 lsl s) in
    let size = 48 * mib * (1 lsl s) in
    let ycfg = { Ycsb.default_config with rows } in
    Printf.printf "  scale %d (%d rows) ...\n%!" s rows;
    let populate engine =
      let sess = Ycsb.setup engine (Prng.create 1L) ycfg in
      ignore (Ycsb.run sess (Prng.create 2L) ~ops:(rows / 5));
      sess
    in
    let time_recovery name engine =
      let crashed = Engine.crash engine Region.Drop_unfenced in
      let (engine', stats), dt = timed name (fun () -> Engine.recover crashed) in
      (dt, engine', stats)
    in
    (* pure log replay (no checkpoint) *)
    let e_log = log_engine ~fsync:false size in
    ignore (populate e_log);
    let log_bytes = Engine.log_bytes e_log in
    let t_log, _, _ = time_recovery "e1.recover_log" e_log in
    (* same load, but checkpointed: replay covers only a small tail *)
    let e_ck = log_engine ~fsync:false size in
    let sess = populate e_ck in
    ignore (Engine.checkpoint e_ck);
    ignore (Ycsb.run sess (Prng.create 3L) ~ops:(rows / 20));
    let t_ck, _, _ = time_recovery "e1.recover_ckpt" e_ck in
    (* Hyrise-NV *)
    let e_nvm = nvm_engine size in
    ignore (populate e_nvm);
    let data_bytes = Engine.data_bytes e_nvm in
    let t_nvm, _, _ = time_recovery "e1.recover_nvm" e_nvm in
    Tabular.add_row table
      [
        Tabular.fmt_int rows;
        Tabular.fmt_bytes data_bytes;
        Tabular.fmt_bytes log_bytes;
        Tabular.fmt_ns t_log;
        Tabular.fmt_ns t_ck;
        Tabular.fmt_ns t_nvm;
        Printf.sprintf "%.0fx" (float_of_int t_log /. float_of_int t_nvm);
      ]
  done;
  Tabular.print table;
  print_endline
    "expected shape: log replay grows ~linearly with data; Hyrise-NV stays flat.";
  (* partitioned-replay matrix at the largest scale: wall time and
     modeled device speedup per policy x jobs (PROTOCOLS.md §14) *)
  let rows = 1_000 * (1 lsl (scales - 1)) in
  let size = 48 * mib * (1 lsl (scales - 1)) in
  let mtable =
    Tabular.create ~title:"E1: partitioned parallel replay (policy x jobs)"
      [
        ("policy", Tabular.Left);
        ("jobs", Tabular.Right);
        ("replay wall", Tabular.Right);
        ("device critical", Tabular.Right);
        ("modeled speedup", Tabular.Right);
        ("digest", Tabular.Right);
      ]
  in
  List.iter
    (fun policy ->
      let cells, _, _, _, _, _ =
        replay_matrix_for ~tag:"e1" ~policy ~rows ~size ~jobs_axis:[ 1; 2; 4 ]
      in
      List.iter
        (fun cell ->
          match cell with
          | Obs.Json.Obj fields ->
              let geti k =
                match List.assoc_opt k fields with
                | Some (Obs.Json.Int n) -> n
                | _ -> 0
              in
              let speedup =
                match List.assoc_opt "modeled_speedup" fields with
                | Some (Obs.Json.Float f) -> f
                | _ -> 1.0
              in
              let ok =
                List.assoc_opt "digest_match" fields = Some (Obs.Json.Bool true)
              in
              Tabular.add_row mtable
                [
                  Engine.log_policy_name policy;
                  Tabular.fmt_int (geti "jobs");
                  Tabular.fmt_ns (geti "wall_ns");
                  Tabular.fmt_ns (geti "dev_critical_ns");
                  Printf.sprintf "%.2fx" speedup;
                  (if ok then "=" else "MISMATCH");
                ]
          | _ -> ())
        cells)
    [ `Value; `Command; `Adaptive ];
  Tabular.print mtable;
  print_endline
    "expected shape: device critical path shrinks with jobs, identical digests;\n\
     command/adaptive shrink log bytes for update-heavy tails."

(* ------------------------------------------------------------------ *)
(* E2: OLTP throughput per durability mechanism                        *)
(* ------------------------------------------------------------------ *)

let run_tpcc engine ops =
  let sess =
    Tpcc.setup engine ~warehouses:2 ~districts_per_wh:4 ~customers_per_district:10
  in
  let rng = Prng.create 7L in
  (* warmup *)
  ignore (Tpcc.run sess rng ~ops:(ops / 10) ());
  timed "tpcc.run" (fun () -> Tpcc.run sess rng ~ops ())

let e2 ~fast () =
  header "E2  OLTP throughput under each durability mechanism (TPC-C-lite)";
  let ops = if fast then 1_500 else 5_000 in
  let size = 96 * mib in
  let table =
    Tabular.create ~title:"E2: transaction throughput"
      [
        ("durability", Tabular.Left);
        ("committed", Tabular.Right);
        ("wall ns/txn", Tabular.Right);
        ("device ns/txn", Tabular.Right);
        ("p50", Tabular.Right);
        ("p99", Tabular.Right);
        ("est. txn/s", Tabular.Right);
        ("vs volatile", Tabular.Right);
      ]
  in
  let measure mk =
    (* best of two runs to damp GC/layout noise *)
    let once () =
      Gc.compact ();
      let engine = mk () in
      let region = Engine.region engine in
      let sess =
        Tpcc.setup engine ~warehouses:2 ~districts_per_wh:4
          ~customers_per_district:10
      in
      let rng = Prng.create 7L in
      ignore (Tpcc.run sess rng ~ops:(ops / 10) ());
      Region.reset_stats region;
      let lat = Util.Histogram.create () in
      let stats, dt =
        timed "e2.tpcc_run" (fun () -> Tpcc.run sess rng ~latencies:lat ~ops ())
      in
      let s = Region.stats region in
      (* extra device time the durability mechanism costs on NVM: the
         write-backs and fences (volatile/log modes issue none) *)
      let dev =
        (s.Region.writebacks * Region.default_config.Region.writeback_ns)
        + (s.Region.fences * Region.default_config.Region.fence_ns)
      in
      (stats.Tpcc.committed, dt, dev, lat)
    in
    let ((_, dt1, _, _) as r1) = once () in
    let ((_, dt2, _, _) as r2) = once () in
    if dt2 < dt1 then r2 else r1
  in
  let base = ref 0.0 in
  List.iter
    (fun (name, mk) ->
      Printf.printf "  %s ...\n%!" name;
      let committed, dt, dev, lat = measure mk in
      let wall_per = dt / max 1 committed in
      let dev_per = dev / max 1 committed in
      let est = 1e9 /. float_of_int (wall_per + dev_per) in
      if !base = 0.0 then base := est;
      Tabular.add_row table
        [
          name;
          Tabular.fmt_int committed;
          Tabular.fmt_int wall_per;
          Tabular.fmt_int dev_per;
          fmt_pctl lat 50.0;
          fmt_pctl lat 99.0;
          Tabular.fmt_float ~decimals:0 est;
          Printf.sprintf "%.0f%%" (est /. !base *. 100.0);
        ])
    [
      ("volatile (no durability)", fun () -> volatile_engine size);
      ("log, group commit 8 + fsync", fun () -> log_engine ~group:8 ~fsync:true size);
      ("log, fsync every commit", fun () -> log_engine ~group:1 ~fsync:true size);
      ("Hyrise-NV (all data on NVM)", fun () -> nvm_engine size);
    ];
  Tabular.print table;
  print_endline
    "expected shape: NVM within a modest factor of volatile; per-commit fsync\n\
     logging pays the most, group commit recovers part of it."

(* ------------------------------------------------------------------ *)
(* E3: sensitivity to NVM latency                                      *)
(* ------------------------------------------------------------------ *)

let e3 ~fast () =
  header "E3  Throughput sensitivity to NVM latency (simulated device time)";
  let ops = if fast then 800 else 2_000 in
  let size = 96 * mib in
  let table =
    Tabular.create ~title:"E3: NVM latency sweep (TPC-C-lite)"
      [
        ("load ns", Tabular.Right);
        ("writeback ns", Tabular.Right);
        ("device ns/txn", Tabular.Right);
        ("est. txn/s", Tabular.Right);
        ("vs 90 ns", Tabular.Right);
      ]
  in
  (* CPU-side cost per transaction, measured once (latency-independent) *)
  let cpu_ns_per_txn =
    let engine = nvm_engine size in
    let stats, dt = run_tpcc engine ops in
    dt / max 1 stats.Tpcc.committed
  in
  let base = ref 0.0 in
  List.iter
    (fun (load_ns, writeback_ns) ->
      Printf.printf "  latency %d/%d ...\n%!" load_ns writeback_ns;
      let engine = nvm_engine size in
      let region = Engine.region engine in
      Region.set_latencies region ~load_ns ~store_ns:(load_ns / 3) ~writeback_ns
        ~fence_ns:20;
      let sess =
        Tpcc.setup engine ~warehouses:2 ~districts_per_wh:4
          ~customers_per_district:10
      in
      let rng = Prng.create 7L in
      Region.reset_stats region;
      let stats = Tpcc.run sess rng ~ops () in
      let sim = (Region.stats region).Region.sim_ns in
      let dev_per_txn = sim / max 1 stats.Tpcc.committed in
      let est_tps = 1e9 /. float_of_int (cpu_ns_per_txn + dev_per_txn) in
      if !base = 0.0 then base := est_tps;
      Tabular.add_row table
        [
          string_of_int load_ns;
          string_of_int writeback_ns;
          Tabular.fmt_int dev_per_txn;
          Tabular.fmt_float ~decimals:0 est_tps;
          Printf.sprintf "%.0f%%" (est_tps /. !base *. 100.0);
        ])
    [ (90, 120); (200, 240); (300, 360); (500, 550); (700, 780) ];
  Tabular.print table;
  print_endline
    "expected shape: graceful degradation as NVM latency grows 90 -> 700 ns\n\
     (device time is a fraction of the whole transaction)."

(* ------------------------------------------------------------------ *)
(* E4: persistence-primitive cost per transaction + micro-benchmarks   *)
(* ------------------------------------------------------------------ *)

let e4 ~fast () =
  header "E4  Persistence primitives: cost per committed transaction";
  let ops = if fast then 500 else 1_500 in
  let size = 64 * mib in
  let table =
    Tabular.create ~title:"E4: write-backs and fences per transaction"
      [
        ("durability", Tabular.Left);
        ("stores/txn", Tabular.Right);
        ("writebacks/txn", Tabular.Right);
        ("fences/txn", Tabular.Right);
        ("log bytes/txn", Tabular.Right);
      ]
  in
  List.iter
    (fun (name, mk) ->
      let engine : Engine.t = mk () in
      let sess =
        Tpcc.setup engine ~warehouses:1 ~districts_per_wh:2
          ~customers_per_district:10
      in
      let region = Engine.region engine in
      let log0 = Engine.log_bytes engine in
      Region.reset_stats region;
      let stats = Tpcc.run sess (Prng.create 3L) ~ops () in
      let s = Region.stats region in
      let n = max 1 stats.Tpcc.committed in
      Tabular.add_row table
        [
          name;
          Tabular.fmt_int (s.Region.stores / n);
          Tabular.fmt_int (s.Region.writebacks / n);
          Tabular.fmt_int (s.Region.fences / n);
          Tabular.fmt_int ((Engine.log_bytes engine - log0) / n);
        ])
    [
      ("volatile", fun () -> volatile_engine size);
      ("log (group 8)", fun () -> log_engine ~group:8 ~fsync:false size);
      ("Hyrise-NV", fun () -> nvm_engine size);
    ];
  Tabular.print table;

  (* Bechamel micro-benchmarks of the primitives themselves *)
  print_endline "micro-benchmarks (Bechamel, monotonic clock):";
  let open Bechamel in
  let region = Region.create (Region.config_with_size (4 * mib)) in
  let alloc =
    Nvm_alloc.Allocator.format (Region.create (Region.config_with_size (64 * mib)))
  in
  let vec = Pstruct.Pvector.create alloc in
  let hash = Pstruct.Phash.create alloc in
  let tree = Pstruct.Pbtree.create alloc in
  let counter = ref 0 in
  let tests =
    [
      Test.make ~name:"region store 8B"
        (Staged.stage (fun () -> Region.set_i64 region 512 42L));
      Test.make ~name:"region store+persist 8B"
        (Staged.stage (fun () ->
             Region.set_i64 region 1024 42L;
             Region.persist region 1024 8));
      Test.make ~name:"pvector append+publish"
        (Staged.stage (fun () ->
             ignore (Pstruct.Pvector.append vec 7L);
             Pstruct.Pvector.publish vec));
      Test.make ~name:"phash insert (durable)"
        (Staged.stage (fun () ->
             incr counter;
             Pstruct.Phash.insert hash (Int64.of_int !counter) 1L));
      Test.make ~name:"pbtree insert (durable)"
        (Staged.stage (fun () ->
             incr counter;
             Pstruct.Pbtree.insert tree (Int64.of_int !counter) 1L));
    ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-28s %10.1f ns/op\n" name est
          | _ -> Printf.printf "  %-28s (no estimate)\n" name)
        ols)
    tests

(* ------------------------------------------------------------------ *)
(* E5: merge behaviour                                                 *)
(* ------------------------------------------------------------------ *)

let e5 ~fast () =
  header "E5  Delta->main merge: duration and compaction vs delta size";
  let scales = if fast then 3 else 4 in
  let table =
    Tabular.create ~title:"E5: merge of the YCSB table"
      [
        ("delta rows", Tabular.Right);
        ("survivors", Tabular.Right);
        ("bytes before", Tabular.Right);
        ("bytes after", Tabular.Right);
        ("merge (NVM)", Tabular.Right);
        ("merge (volatile)", Tabular.Right);
        ("NVM device time", Tabular.Right);
      ]
  in
  for s = 0 to scales - 1 do
    let rows = 2_000 * (1 lsl s) in
    Printf.printf "  delta of %d rows ...\n%!" rows;
    let run mk =
      let engine = mk (64 * mib * (1 lsl s)) in
      let cfg = { Ycsb.default_config with rows; zipf_theta = 0.9 } in
      let sess = Ycsb.setup engine (Prng.create 1L) cfg in
      ignore (Ycsb.run sess (Prng.create 2L) ~ops:(rows / 2));
      Gc.compact ();
      let region = Engine.region engine in
      Region.reset_stats region;
      let stats, dt =
        timed "e5.merge" (fun () -> Engine.merge engine Ycsb.table_name)
      in
      ((Region.stats region).Region.sim_ns, dt, stats)
    in
    let dev_nvm, t_nvm, stats = run nvm_engine in
    let _, t_vol, _ = run volatile_engine in
    Tabular.add_row table
      [
        Tabular.fmt_int stats.Storage.Merge.rows_in;
        Tabular.fmt_int stats.Storage.Merge.rows_out;
        Tabular.fmt_bytes stats.Storage.Merge.bytes_before;
        Tabular.fmt_bytes stats.Storage.Merge.bytes_after;
        Tabular.fmt_ns t_nvm;
        Tabular.fmt_ns t_vol;
        Tabular.fmt_ns dev_nvm;
      ]
  done;
  Tabular.print table;
  print_endline
    "expected shape: merge time ~linear in delta size; persisting the new\n\
     main adds device time linear in the merged size."

(* ------------------------------------------------------------------ *)
(* E6: instant-restart breakdown                                       *)
(* ------------------------------------------------------------------ *)

let e6 ~fast () =
  header "E6  Hyrise-NV restart breakdown across dataset scales";
  let scales = if fast then 3 else 5 in
  let table =
    Tabular.create ~title:"E6: where the (sub-second) restart time goes"
      [
        ("rows", Tabular.Right);
        ("heap scan", Tabular.Right);
        ("catalog+attach", Tabular.Right);
        ("MVCC rollback", Tabular.Right);
        ("total", Tabular.Right);
        ("rolled back", Tabular.Right);
      ]
  in
  for s = 0 to scales - 1 do
    let rows = 1_000 * (1 lsl s) in
    let size = 48 * mib * (1 lsl s) in
    Printf.printf "  scale %d (%d rows) ...\n%!" s rows;
    let engine = nvm_engine size in
    let sess =
      Ycsb.setup engine (Prng.create 1L) { Ycsb.default_config with rows }
    in
    ignore (Ycsb.run sess (Prng.create 2L) ~ops:(rows / 5));
    (* crash with a transaction in flight so rollback has work to do *)
    let txn = Engine.begin_txn engine in
    for i = 0 to 9 do
      ignore
        (Engine.insert engine txn Ycsb.table_name
           (Array.append
              [| Storage.Value.Int (10_000_000 + i) |]
              (Array.init Ycsb.default_config.Ycsb.fields (fun _ ->
                   Storage.Value.Text "inflight"))))
    done;
    let crashed = Engine.crash engine Region.Drop_unfenced in
    let _, stats = Engine.recover crashed in
    match stats.Engine.detail with
    | Engine.Rv_nvm { heap_open_ns; attach_ns; rollback_ns; rolled_back_rows; _ }
      ->
        Tabular.add_row table
          [
            Tabular.fmt_int rows;
            Tabular.fmt_ns heap_open_ns;
            Tabular.fmt_ns attach_ns;
            Tabular.fmt_ns rollback_ns;
            Tabular.fmt_ns stats.Engine.wall_ns;
            Tabular.fmt_int rolled_back_rows;
          ]
    | _ -> ()
  done;
  Tabular.print table;
  print_endline
    "expected shape: attach is O(tables) (indexes rebuild lazily on first\n\
     use, as in SOFORT-style instant recovery); rollback depends on in-flight\n\
     work only; the heap scan grows with allocator blocks, orders of\n\
     magnitude slower than log replay grows with data."

(* ------------------------------------------------------------------ *)
(* E7: block-at-a-time scan engine vs the row-at-a-time oracle         *)
(* ------------------------------------------------------------------ *)

(* Table of [rows] rows whose key column cycles 0..999, so the predicate
   [k < permille] matches exactly permille/1000 of the rows. [merged]
   puts everything in the bit-packed main partition; otherwise the rows
   stay in the uncompressed delta. *)
let scan_setup ~rows ~merged mk =
  let engine : Engine.t = mk (160 * mib) in
  Engine.create_table engine ~name:"t"
    [|
      Storage.Schema.column "k" Storage.Value.Int_t;
      Storage.Schema.column "v" Storage.Value.Int_t;
    |];
  let n = ref 0 in
  while !n < rows do
    Engine.with_txn engine (fun txn ->
        for _ = 1 to 512 do
          if !n < rows then begin
            ignore
              (Engine.insert engine txn "t"
                 [| Storage.Value.Int (!n mod 1000); Storage.Value.Int !n |]);
            incr n
          end
        done)
  done;
  if merged then ignore (Engine.merge engine "t");
  engine

(* Best-of-[reps] wall time plus the simulated device time the scan adds
   (the region's sim_ns delta — what the load batching actually saves). *)
let time_scan engine ~impl ~permille ~reps =
  let region = Engine.region engine in
  let preds =
    [ ("k", Query.Predicate.Cmp (Query.Predicate.Lt, Storage.Value.Int permille)) ]
  in
  let best_wall = ref max_int and best_dev = ref max_int and cnt = ref 0 in
  for _ = 1 to reps do
    Engine.with_txn engine (fun txn ->
        let s0 = (Region.stats region).Region.sim_ns in
        let t0 = now_ns () in
        let n = Engine.count_where ~impl engine txn "t" preds in
        let wall = now_ns () - t0 in
        let dev = (Region.stats region).Region.sim_ns - s0 in
        if wall < !best_wall then best_wall := wall;
        if dev < !best_dev then best_dev := dev;
        cnt := n)
  done;
  (!cnt, !best_wall, !best_dev)

let permilles = [ 1; 10; 100; 900 ]

(* effective scan time: measured wall plus the simulated NVM device time
   (on real hardware the loads are wall time; the simulator keeps them in
   a separate ledger) *)
let effective wall dev = wall + dev

let e7 ~fast () =
  header "E7  Scan engine: block-at-a-time vs the row-at-a-time oracle";
  let rows = if fast then 20_000 else 100_000 in
  let reps = if fast then 3 else 5 in
  let table =
    Tabular.create
      ~title:
        (Printf.sprintf "E7: filtered count of %d rows (wall+device ns)" rows)
      [
        ("partition", Tabular.Left);
        ("durability", Tabular.Left);
        ("sel %", Tabular.Right);
        ("matched", Tabular.Right);
        ("row engine", Tabular.Right);
        ("block engine", Tabular.Right);
        ("row dev", Tabular.Right);
        ("block dev", Tabular.Right);
        ("speedup", Tabular.Right);
      ]
  in
  List.iter
    (fun (pname, merged) ->
      List.iter
        (fun (mname, mk) ->
          Printf.printf "  %s / %s ...\n%!" pname mname;
          let engine = scan_setup ~rows ~merged mk in
          List.iter
            (fun permille ->
              let cr, wr, dr = time_scan engine ~impl:`Row ~permille ~reps in
              let cb, wb, db = time_scan engine ~impl:`Block ~permille ~reps in
              if cr <> cb then
                Printf.printf
                  "  MISMATCH: row engine counted %d, block engine %d\n" cr cb;
              Tabular.add_row table
                [
                  pname;
                  mname;
                  Printf.sprintf "%.1f" (float_of_int permille /. 10.0);
                  Tabular.fmt_int cb;
                  Tabular.fmt_ns (effective wr dr);
                  Tabular.fmt_ns (effective wb db);
                  Tabular.fmt_ns dr;
                  Tabular.fmt_ns db;
                  Printf.sprintf "%.1fx"
                    (float_of_int (effective wr dr)
                    /. float_of_int (max 1 (effective wb db)));
                ])
            permilles)
        [ ("volatile", volatile_engine); ("nvm", nvm_engine) ])
    [ ("main", true); ("delta", false) ];
  Tabular.print table;
  print_endline
    "expected shape: speedup grows as selectivity drops (empty blocks cost\n\
     one bulk decode and no visibility reads); the device-time gap is the\n\
     word-wise unpacking reading each packed word once per block."

(* ------------------------------------------------------------------ *)
(* E8: domain-parallel execution (scan / merge / recovery vs --jobs)   *)
(* ------------------------------------------------------------------ *)

let jobs_levels = [ 1; 2; 4 ]

(* Snapshot-delta measurement around one parallel operation: wall time
   plus the per-slot simulated NVM device time (the pool's static
   round-robin chunk assignment makes each lane's share deterministic —
   independent of scheduling, so the same on this host and on a real
   multi-core one). Returns the per-slot device deltas; the sweep below
   turns them into a modeled effective time. *)
let measure_par region f =
  Gc.compact ();
  let d0 = Region.sim_ns_by_slot region in
  let t0 = now_ns () in
  let r = f () in
  let wall = now_ns () - t0 in
  let d1 = Region.sim_ns_by_slot region in
  let dev = Array.mapi (fun i d -> d - d0.(i)) d1 in
  (r, wall, dev)

(* Modeled effective time on a machine with [jobs] real cores.

   The serial cost of the operation is [base = wall@jobs1 + device
   total] — E7's [effective], measured once per sweep at --jobs 1. Every
   call site does uniform per-row work (decode/compare per scan row,
   decode/re-encode per merge cell, header reads per recovered block),
   so a lane's share of the total NVM words touched {e is} its share of
   the work; the slowest lane bounds completion:

     effective(jobs) = base * max_lane (device_lane / device_total)

   Serial phases (the merge's new-generation build, the allocator's
   repair pass, rollback apply) stay on the caller's slot 0, so their
   device time inflates lane 0's share and is never credited with a
   speedup. At --jobs 1 one lane holds everything and this reduces to
   [base]. Measured parallel wall is reported raw alongside, but on a
   core-oversubscribed host (this container has one core; lanes
   timeslice) it carries no signal about multi-core behaviour, which is
   exactly why the model keys off the device ledger instead. *)
let e8_effective ~base dev =
  let total = Array.fold_left ( + ) 0 dev in
  if total = 0 then base
  else begin
    let worst = Array.fold_left max 0 dev in
    int_of_float
      (float_of_int base *. float_of_int worst /. float_of_int total)
  end

(* Multi-column table with every row in the delta, so the merge's
   per-column rebuild has [cols] independent units of work. *)
let e8_merge_setup ~rows ~cols mk =
  let engine : Engine.t = mk (256 * mib) in
  Engine.create_table engine ~name:"m"
    (Array.init cols (fun i ->
         Storage.Schema.column ("c" ^ string_of_int i) Storage.Value.Int_t));
  let n = ref 0 in
  while !n < rows do
    Engine.with_txn engine (fun txn ->
        for _ = 1 to 512 do
          if !n < rows then begin
            ignore
              (Engine.insert engine txn "m"
                 (Array.init cols (fun c -> Storage.Value.Int ((!n * (c + 1)) mod 977))));
            incr n
          end
        done)
  done;
  engine

(* A crashed TPC-C-lite engine mid-workload: recovery has several
   tables to attach, an allocator heap to scan, and a populated delta
   for the rollback plan scan. (The rolled-row count itself is 0 after
   a clean power loss — commit is fully fenced, see E6 — but the plan
   scan reads the whole delta either way; that is the parallel work.) *)
let e8_recovery_setup ~ops () =
  let engine = nvm_engine (96 * mib) in
  let sess =
    Tpcc.setup engine ~warehouses:2 ~districts_per_wh:4 ~customers_per_district:10
  in
  ignore (Tpcc.run sess (Prng.create 7L) ~ops ());
  let region = Engine.region engine in
  let txn = Engine.begin_txn engine in
  for i = 0 to 9 do
    ignore
      (Engine.insert engine txn "customer"
         [|
           Storage.Value.Int (9_000_000 + i);
           Storage.Value.Text "inflight";
           Storage.Value.Int 0;
         |])
  done;
  (Engine.crash engine Region.Drop_unfenced, region)

(* One jobs sweep of one operation: measure at every level (jobs=1
   first, which sets the serial baseline), attach the modeled effective
   time. [measure] returns (result-count, wall, per-slot device). *)
let e8_sweep_op measure =
  let base = ref 0 in
  List.map
    (fun jobs ->
      Par.set_jobs jobs;
      let count, wall, dev = measure jobs in
      let dev_total = Array.fold_left ( + ) 0 dev in
      if jobs = 1 then base := wall + dev_total;
      (jobs, count, wall, dev_total, e8_effective ~base:!base dev))
    jobs_levels

(* The three operations across jobs levels. [reps] is best-of wall for
   the scan (the only cheap-to-repeat one; its device shares are
   deterministic, so only wall needs damping). Prints nothing itself. *)
let e8_sweep ~rows ~merge_rows ~merge_cols ~recovery_ops ~reps =
  let entry_jobs = Par.jobs () in
  let scan_engine = scan_setup ~rows ~merged:true nvm_engine in
  let scan_region = Engine.region scan_engine in
  let scan =
    e8_sweep_op (fun _jobs ->
        let best = ref None in
        for _ = 1 to reps do
          let m =
            measure_par scan_region (fun () ->
                Engine.with_txn scan_engine (fun txn ->
                    Engine.count_where ~impl:`Block scan_engine txn "t"
                      [
                        ( "k",
                          Query.Predicate.Cmp
                            (Query.Predicate.Lt, Storage.Value.Int 100) );
                      ]))
          in
          let _, wall, _ = m in
          match !best with
          | Some (_, w, _) when w <= wall -> ()
          | _ -> best := Some m
        done;
        Option.get !best)
  in
  let merge =
    e8_sweep_op (fun _jobs ->
        let engine = e8_merge_setup ~rows:merge_rows ~cols:merge_cols nvm_engine in
        let region = Engine.region engine in
        let stats, wall, dev =
          measure_par region (fun () -> Engine.merge engine "m")
        in
        (stats.Storage.Merge.rows_out, wall, dev))
  in
  let recovery =
    e8_sweep_op (fun _jobs ->
        let crashed, region = e8_recovery_setup ~ops:recovery_ops () in
        let (_, rs), wall, dev =
          measure_par region (fun () -> Engine.recover crashed)
        in
        let rolled =
          match rs.Engine.detail with
          | Engine.Rv_nvm { rolled_back_rows; _ } -> rolled_back_rows
          | _ -> 0
        in
        (rolled, wall, dev))
  in
  Par.set_jobs entry_jobs;
  (scan, merge, recovery)

let e8_speedup levels ~at =
  let eff j =
    match List.find_opt (fun (jobs, _, _, _, _) -> jobs = j) levels with
    | Some (_, _, _, _, e) -> float_of_int e
    | None -> nan
  in
  eff 1 /. Float.max 1.0 (eff at)

let e8 ~fast () =
  header "E8  Domain-parallel execution: scan / merge / recovery vs --jobs";
  let rows = if fast then 24_000 else 80_000 in
  let merge_rows = if fast then 6_000 else 16_000 in
  let scan, merge, recovery =
    e8_sweep ~rows ~merge_rows ~merge_cols:8
      ~recovery_ops:(if fast then 400 else 1_200)
      ~reps:(if fast then 2 else 3)
  in
  let table =
    Tabular.create ~title:"E8: effective time per jobs level (wall+device model)"
      [
        ("operation", Tabular.Left);
        ("jobs", Tabular.Right);
        ("result", Tabular.Right);
        ("wall", Tabular.Right);
        ("device", Tabular.Right);
        ("effective", Tabular.Right);
        ("speedup", Tabular.Right);
      ]
  in
  List.iter
    (fun (name, levels) ->
      List.iter
        (fun (jobs, count, wall, dev, eff) ->
          Tabular.add_row table
            [
              name;
              string_of_int jobs;
              Tabular.fmt_int count;
              Tabular.fmt_ns wall;
              Tabular.fmt_ns dev;
              Tabular.fmt_ns eff;
              Printf.sprintf "%.2fx" (e8_speedup levels ~at:jobs);
            ])
        levels)
    [ ("scan", scan); ("merge", merge); ("recovery", recovery) ];
  Tabular.print table;
  Printf.printf
    "scan speedup at 2 domains: %.2fx (want >= 1.5)\n\
     merge speedup at 2 domains: %.2fx (want >= 1.3)\n\
     recovery at 2 domains vs 1: %.2fx (want ~>= 1.0)\n"
    (e8_speedup scan ~at:2) (e8_speedup merge ~at:2)
    (e8_speedup recovery ~at:2);
  print_endline
    "expected shape: device time splits across lanes while results stay\n\
     identical; scan scales best (fully parallel), merge keeps a serial\n\
     tail (the new generation's NVM build), recovery is bounded by the\n\
     serial allocator repairs."

(* ------------------------------------------------------------------ *)
(* E9: media faults — verify overhead and salvage recovery             *)
(* ------------------------------------------------------------------ *)

(* Verify-overhead sweep: one saved image per scale, restarted once per
   verify level, so the three measurements differ only in scrub work.
   The claim under test: `Shallow grows with table/structure count, not
   with rows — the instant-restart property survives the checksums. *)
let e9_verify_sweep ~scales =
  List.map
    (fun s ->
      let rows = 1_000 * (1 lsl s) in
      let size = 48 * mib * (1 lsl s) in
      let ycfg = { Ycsb.default_config with rows } in
      let engine = nvm_engine size in
      let sess = Ycsb.setup engine (Prng.create 1L) ycfg in
      ignore (Ycsb.run sess (Prng.create 2L) ~ops:(rows / 5));
      let data = Engine.data_bytes engine in
      let img = Filename.temp_file "hyrise_e9" ".img" in
      Engine.save_image engine img;
      (* best-of-3: the shallow scrub is a few hundred µs, well inside
         scheduling noise on a shared host *)
      let measure level =
        let one () =
          Gc.compact ();
          let cfg = Engine.default_config ~size Engine.Nvm in
          let _, rs = Engine.open_image ~verify:level cfg img in
          let verify_ns =
            match rs.Engine.detail with
            | Engine.Rv_nvm { verify_ns; _ } -> verify_ns
            | _ -> 0
          in
          (rs.Engine.wall_ns, verify_ns)
        in
        let best (w0, v0) (w1, v1) = (min w0 w1, min v0 v1) in
        best (one ()) (best (one ()) (one ()))
      in
      let off = measure `Off in
      let shallow = measure `Shallow in
      let deep = measure `Deep in
      Sys.remove img;
      (s, rows, data, off, shallow, deep))
    scales

type e9_run = {
  faults : int;
  outcome : string;  (** clean | salvaged | rebuilt | quarantined | raised *)
  wall_ns : int;
  verify_ns : int;
  salvage_ns : int;
  quarantined : int;
  salvaged : int;
  deferred : int;  (** tables left to serve-while-salvaging (§15) *)
  heap_reset : bool;
  crc_failures : int;
  rows_intact : bool;  (** committed row count survived the damage *)
}

(* One damaged restart under salvage: populate with the WAL archive
   armed, checkpoint midway (so salvage exercises the checkpoint + log
   ladder), crash, hit the durable image with [faults] random media
   faults, recover deep-verified, and compare the surviving committed
   row count against the pre-crash truth. *)
let e9_salvage_run ~rows ~faults ~seed =
  let lc = log_config ~group:1 ~fsync:false () in
  let cfg = Engine.default_config ~size:(64 * mib) ~salvage:lc Engine.Nvm in
  let engine = Engine.create cfg in
  let ycfg = { Ycsb.default_config with rows } in
  let sess = Ycsb.setup engine (Prng.create 1L) ycfg in
  ignore (Ycsb.run sess (Prng.create 2L) ~ops:(rows / 5));
  ignore (Engine.checkpoint engine);
  ignore (Ycsb.run sess (Prng.create 3L) ~ops:(rows / 20));
  let committed =
    Engine.with_txn engine (fun txn -> Engine.count engine txn Ycsb.table_name)
  in
  let region = Engine.region engine in
  (* aim at the allocated extent, not the mostly-empty region tail —
     media faults in never-written space are free wins *)
  let used_end =
    List.fold_left
      (fun acc (b : Nvm_alloc.Allocator.block_info) ->
        if b.state = `Allocated then max acc (b.offset + b.size) else acc)
      4096
      (Nvm_alloc.Allocator.blocks (Engine.allocator engine))
  in
  let crashed = Engine.crash engine Region.Drop_unfenced in
  let rng = Prng.create (Int64.of_int seed) in
  for _ = 1 to faults do
    Region.inject_fault region rng
      (Region.random_fault region rng ~lo:0 ~hi:used_end)
  done;
  let crc0 = Obs.counter_value (Obs.counter "media.crc_failures") in
  let t0 = now_ns () in
  match Engine.recover ~verify:`Deep crashed with
  | exception exn ->
      {
        faults;
        outcome = "raised: " ^ Printexc.to_string exn;
        wall_ns = now_ns () - t0;
        verify_ns = 0;
        salvage_ns = 0;
        quarantined = 0;
        salvaged = 0;
        deferred = 0;
        heap_reset = false;
        crc_failures =
          Obs.counter_value (Obs.counter "media.crc_failures") - crc0;
        rows_intact = false;
      }
  | e2, rs ->
      let verify_ns, salvage_ns, quarantined, salvaged, deferred, heap_reset =
        match rs.Engine.detail with
        | Engine.Rv_nvm
            {
              verify_ns;
              salvage_ns;
              quarantined;
              salvaged;
              deferred;
              heap_reset;
              _;
            } ->
            ( verify_ns,
              salvage_ns,
              List.length quarantined,
              List.length salvaged,
              List.length deferred,
              heap_reset )
        | _ -> (0, 0, 0, 0, 0, false)
      in
      (* the count gates through the online restore map, so this both
         checks the committed prefix and heals any deferred segments *)
      let rows_intact =
        match
          Engine.with_txn e2 (fun txn ->
              Engine.count e2 txn Ycsb.table_name)
        with
        | n -> n = committed
        | exception _ -> false
      in
      Engine.restore_drain e2;
      {
        faults;
        outcome =
          (if heap_reset then "rebuilt"
           else if salvaged > 0 || deferred > 0 then "salvaged"
           else if quarantined > 0 then "quarantined"
           else "clean");
        wall_ns = rs.Engine.wall_ns;
        verify_ns;
        salvage_ns;
        quarantined;
        salvaged;
        deferred;
        heap_reset;
        crc_failures =
          Obs.counter_value (Obs.counter "media.crc_failures") - crc0;
        rows_intact;
      }

let e9_fault_counts = [ 0; 4; 16; 64 ]

(* E9b: serve-while-salvaging — fault count × query pressure.  Instead
   of draining repairs before opening, the engine opens instantly and
   point reads during the degraded window pull their segments in on
   demand while a background loop drains the rest.  The curve under
   test: time-to-first-query stays at instant-restart scale no matter
   how many faults landed; only time-to-full-health grows with damage. *)
type e9b_run = {
  b_faults : int;
  b_pressure : int;  (** point reads issued per background restore step *)
  b_outcome : string;
  b_segments : int;
      (** restore-map units pending at recovery: quarantined segments,
          plus one per structurally deferred table *)
  b_first_query_ns : int;  (** engine-ready minus recovery-begin *)
  b_full_health_ns : int;  (** full-health minus recovery-begin *)
  b_degraded_queries : int;  (** point reads served before full health *)
  b_degraded_rows : int;  (** rows those reads returned *)
  b_demand : int;  (** segments healed because a query touched them *)
  b_background : int;  (** segments healed by the drain loop *)
}

let e9b_pressures = [ 0; 8; 64 ]
let e9b_fault_counts = [ 4; 16; 64 ]

let e9b_run ~rows ~faults ~pressure ~seed =
  let lc = log_config ~group:1 ~fsync:false () in
  let cfg = Engine.default_config ~size:(64 * mib) ~salvage:lc Engine.Nvm in
  let engine = Engine.create cfg in
  let ycfg = { Ycsb.default_config with rows } in
  let sess = Ycsb.setup engine (Prng.create 1L) ycfg in
  ignore (Ycsb.run sess (Prng.create 2L) ~ops:(rows / 5));
  ignore (Engine.checkpoint engine);
  ignore (Ycsb.run sess (Prng.create 3L) ~ops:(rows / 20));
  let region = Engine.region engine in
  let used_end =
    List.fold_left
      (fun acc (b : Nvm_alloc.Allocator.block_info) ->
        if b.state = `Allocated then max acc (b.offset + b.size) else acc)
      4096
      (Nvm_alloc.Allocator.blocks (Engine.allocator engine))
  in
  let crashed = Engine.crash engine Region.Drop_unfenced in
  let rng = Prng.create (Int64.of_int seed) in
  for _ = 1 to faults do
    Region.inject_fault region rng
      (Region.random_fault region rng ~lo:0 ~hi:used_end)
  done;
  let seg_counter name = Obs.counter_value (Obs.counter name) in
  let d0 = seg_counter "media.segment.demand" in
  let b0 = seg_counter "media.segment.background" in
  match Engine.recover ~verify:`Deep crashed with
  | exception exn ->
      {
        b_faults = faults;
        b_pressure = pressure;
        b_outcome = "raised: " ^ Printexc.to_string exn;
        b_segments = 0;
        b_first_query_ns = 0;
        b_full_health_ns = 0;
        b_degraded_queries = 0;
        b_degraded_rows = 0;
        b_demand = 0;
        b_background = 0;
      }
  | e2, rs ->
      let heap_reset, deferred =
        match rs.Engine.detail with
        | Engine.Rv_nvm { heap_reset; deferred; _ } ->
            (heap_reset, List.length deferred)
        | _ -> (false, 0)
      in
      let pending =
        List.fold_left
          (fun acc (_, segs) -> acc + max 1 (List.length segs))
          0
          (Engine.quarantined_segments e2)
      in
      (* degraded window: [pressure] random point reads per background
         restore step, until the map drains.  Reads that land in a
         quarantined segment heal it on demand; the rest are served
         from healthy segments immediately. *)
      let qrng = Prng.create (Int64.of_int ((seed * 7919) + 13)) in
      let queries = ref 0 and rows_served = ref 0 in
      while Engine.quarantined_segments e2 <> [] do
        for _ = 1 to pressure do
          incr queries;
          match
            Engine.with_txn e2 (fun txn ->
                Engine.get_row e2 txn Ycsb.table_name (Prng.int qrng rows))
          with
          | Some _ -> incr rows_served
          | None -> ()
        done;
        ignore (Engine.restore_step e2)
      done;
      Engine.restore_drain e2;
      let bb = Engine.blackbox e2 in
      let rel marker =
        match (marker, bb.Engine.recovery_begin_ns) with
        | Some t, Some t0 -> t - t0
        | _ -> 0
      in
      {
        b_faults = faults;
        b_pressure = pressure;
        b_outcome =
          (if heap_reset then "rebuilt"
           else if pending > 0 || deferred > 0 then "salvaged"
           else "clean");
        b_segments = pending;
        b_first_query_ns = rel bb.Engine.engine_ready_ns;
        b_full_health_ns = rel bb.Engine.full_health_ns;
        b_degraded_queries = !queries;
        b_degraded_rows = !rows_served;
        b_demand = seg_counter "media.segment.demand" - d0;
        b_background = seg_counter "media.segment.background" - b0;
      }

let e9b_sweep ~fast =
  let rows = if fast then 6_000 else 12_000 in
  (* the seed depends only on the fault count: within one row of the
     sweep every pressure cell replays the identical damage, so query
     pressure is the only variable *)
  List.concat_map
    (fun faults ->
      List.map
        (fun pressure -> e9b_run ~rows ~faults ~pressure ~seed:((faults * 131) + 19))
        e9b_pressures)
    e9b_fault_counts

let e9_sweeps ~fast =
  let scales = if fast then [ 0; 1; 2 ] else [ 0; 1; 2; 3 ] in
  let verify = e9_verify_sweep ~scales in
  let rows = if fast then 4_000 else 10_000 in
  let salvage =
    List.map
      (fun f -> e9_salvage_run ~rows ~faults:f ~seed:(100 + f))
      e9_fault_counts
  in
  (verify, salvage)

(* verify_ns growth from smallest to largest scale, relative to the row
   growth — < 1.0 means sub-linear, i.e. the scrub does not re-read the
   data and instant restart survives it. *)
let e9_sublinearity verify =
  match (verify, List.rev verify) with
  | (_, r0, _, _, (_, v0), _) :: _, (_, r1, _, _, (_, v1), _) :: _
    when r1 > r0 && v0 > 0 ->
      float_of_int v1 /. float_of_int v0
      /. (float_of_int r1 /. float_of_int r0)
  | _ -> nan

let e9 ~fast () =
  header "E9  Media faults: verify overhead and salvage recovery";
  let verify, salvage = e9_sweeps ~fast in
  let vt =
    Tabular.create ~title:"E9: restart wall per verify level (undamaged image)"
      [
        ("scale", Tabular.Right);
        ("rows", Tabular.Right);
        ("data", Tabular.Right);
        ("off", Tabular.Right);
        ("shallow", Tabular.Right);
        ("verify(ns)", Tabular.Right);
        ("deep", Tabular.Right);
      ]
  in
  List.iter
    (fun (s, rows, data, (off, _), (shw, shv), (deep, _)) ->
      Tabular.add_row vt
        [
          string_of_int s;
          Tabular.fmt_int rows;
          Tabular.fmt_bytes data;
          Tabular.fmt_ns off;
          Tabular.fmt_ns shw;
          Tabular.fmt_ns shv;
          Tabular.fmt_ns deep;
        ])
    verify;
  Tabular.print vt;
  Printf.printf
    "shallow verify growth vs row growth: %.2f (want < 1.0: sub-linear)\n"
    (e9_sublinearity verify);
  let st =
    Tabular.create ~title:"E9: salvage recovery vs injected fault count"
      [
        ("faults", Tabular.Right);
        ("outcome", Tabular.Left);
        ("wall", Tabular.Right);
        ("salvage", Tabular.Right);
        ("salvaged", Tabular.Right);
        ("deferred", Tabular.Right);
        ("crc fails", Tabular.Right);
        ("rows ok", Tabular.Left);
      ]
  in
  List.iter
    (fun r ->
      Tabular.add_row st
        [
          string_of_int r.faults;
          r.outcome;
          Tabular.fmt_ns r.wall_ns;
          Tabular.fmt_ns r.salvage_ns;
          string_of_int r.salvaged;
          string_of_int r.deferred;
          string_of_int r.crc_failures;
          (if r.rows_intact then "yes" else "NO");
        ])
    salvage;
  Tabular.print st;
  let online = e9b_sweep ~fast in
  let ot =
    Tabular.create
      ~title:"E9b: online restore — fault count x query pressure"
      [
        ("faults", Tabular.Right);
        ("pressure", Tabular.Right);
        ("outcome", Tabular.Left);
        ("segments", Tabular.Right);
        ("first query", Tabular.Right);
        ("full health", Tabular.Right);
        ("degraded q", Tabular.Right);
        ("rows served", Tabular.Right);
        ("demand", Tabular.Right);
        ("bg", Tabular.Right);
      ]
  in
  List.iter
    (fun r ->
      Tabular.add_row ot
        [
          string_of_int r.b_faults;
          string_of_int r.b_pressure;
          r.b_outcome;
          string_of_int r.b_segments;
          Tabular.fmt_ns r.b_first_query_ns;
          Tabular.fmt_ns r.b_full_health_ns;
          string_of_int r.b_degraded_queries;
          Tabular.fmt_int r.b_degraded_rows;
          string_of_int r.b_demand;
          string_of_int r.b_background;
        ])
    online;
  Tabular.print ot;
  print_endline
    "expected shape: shallow verify stays near-constant while rows grow;\n\
     damaged restarts end salvaged or rebuilt with the committed row\n\
     count intact, paying for the archive replay only when hit;\n\
     time-to-first-query stays at instant-restart scale while\n\
     time-to-full-health alone grows with the damage."

(* ------------------------------------------------------------------ *)
(* T1: dataset characteristics                                         *)
(* ------------------------------------------------------------------ *)

let t1 ~fast () =
  header "T1  Dataset and workload characteristics";
  let scales = if fast then 3 else 5 in
  let table =
    Tabular.create ~title:"T1: per-scale dataset characteristics (YCSB load)"
      [
        ("scale", Tabular.Right);
        ("rows", Tabular.Right);
        ("NVM bytes", Tabular.Right);
        ("bytes/row", Tabular.Right);
        ("log bytes", Tabular.Right);
        ("checkpoint bytes", Tabular.Right);
      ]
  in
  for s = 0 to scales - 1 do
    let rows = 1_000 * (1 lsl s) in
    let size = 48 * mib * (1 lsl s) in
    let ycfg = { Ycsb.default_config with rows } in
    let e_nvm = nvm_engine size in
    ignore (Ycsb.setup e_nvm (Prng.create 1L) ycfg);
    let lc = log_config ~group:1 ~fsync:false () in
    let e_log =
      Engine.create
        {
          Engine.region = Region.config_with_size size;
          durability = Engine.Logging lc;
          salvage = None;
        }
    in
    ignore (Ycsb.setup e_log (Prng.create 1L) ycfg);
    let log_bytes = Engine.log_bytes e_log in
    ignore (Engine.checkpoint e_log);
    let ckpt_bytes =
      try (Unix.stat (Wal.Checkpoint.path ~dir:lc.Wal.Log.dir)).Unix.st_size
      with Unix.Unix_error _ -> 0
    in
    Tabular.add_row table
      [
        string_of_int s;
        Tabular.fmt_int rows;
        Tabular.fmt_bytes (Engine.data_bytes e_nvm);
        Tabular.fmt_int (Engine.data_bytes e_nvm / rows);
        Tabular.fmt_bytes log_bytes;
        Tabular.fmt_bytes ckpt_bytes;
      ]
  done;
  Tabular.print table


(* ------------------------------------------------------------------ *)
(* Ablations: design choices DESIGN.md calls out                       *)
(* ------------------------------------------------------------------ *)

(* A1: the group-commit window trades durability for throughput *)
let a1 ~fast () =
  header "A1  Ablation: group-commit window (log durability)";
  let ops = if fast then 800 else 2_500 in
  let size = 64 * mib in
  let table =
    Tabular.create ~title:"A1: fsync batching vs throughput vs loss window"
      [
        ("group size", Tabular.Right);
        ("txn/s", Tabular.Right);
        ("fsyncs", Tabular.Right);
        ("txns lost at crash", Tabular.Right);
      ]
  in
  List.iter
    (fun group ->
      Printf.printf "  group %d ...\n%!" group;
      let engine = log_engine ~group ~fsync:true size in
      let sess =
        Tpcc.setup engine ~warehouses:2 ~districts_per_wh:4
          ~customers_per_district:10
      in
      let rng = Prng.create 7L in
      let stats, dt = timed "a1.tpcc_run" (fun () -> Tpcc.run sess rng ~ops ()) in
      let flushes = Engine.log_flushes engine in
      let committed_before = stats.Tpcc.committed in
      let last_before = Engine.last_cid engine in
      let e2, _ = Engine.recover (Engine.crash engine Region.Drop_unfenced) in
      let lost = Int64.to_int (Int64.sub last_before (Engine.last_cid e2)) in
      Tabular.add_row table
        [
          string_of_int group;
          Tabular.fmt_float ~decimals:0
            (float_of_int committed_before *. 1e9 /. float_of_int dt);
          Tabular.fmt_int flushes;
          string_of_int lost;
        ])
    [ 1; 4; 16; 64 ];
  Tabular.print table;
  print_endline
    "expected shape: throughput rises with the window; so does the number of\n\
     committed-but-lost transactions after a crash."

(* A2: commit publication protocol (fence batching) *)
let a2 ~fast () =
  header "A2  Ablation: commit publication protocol (fences per transaction)";
  let ops = if fast then 600 else 1_500 in
  let size = 64 * mib in
  let table =
    Tabular.create ~title:"A2: fence count and throughput per publish mode"
      [
        ("publish mode", Tabular.Left);
        ("fences/txn", Tabular.Right);
        ("writebacks/txn", Tabular.Right);
        ("device ns/txn", Tabular.Right);
      ]
  in
  List.iter
    (fun (name, mode) ->
      let engine =
        Engine.create ~publish_mode:mode (Engine.default_config ~size Engine.Nvm)
      in
      let sess =
        Tpcc.setup engine ~warehouses:1 ~districts_per_wh:2
          ~customers_per_district:10
      in
      let region = Engine.region engine in
      Region.reset_stats region;
      let stats = Tpcc.run sess (Prng.create 3L) ~ops () in
      let s = Region.stats region in
      let n = max 1 stats.Tpcc.committed in
      Tabular.add_row table
        [
          name;
          Tabular.fmt_int (s.Region.fences / n);
          Tabular.fmt_int (s.Region.writebacks / n);
          Tabular.fmt_int (s.Region.sim_ns / n);
        ])
    [
      ("per-vector (naive)", `Per_vector);
      ("per-table", `Per_table);
      ("batched (Hyrise-NV)", `Batched);
    ];
  Tabular.print table;
  print_endline
    "expected shape: batching cuts commit fences to O(1); remaining fences\n\
     come from durable dictionary/index inserts."

(* A3: secondary index benefit for point lookups *)
let a3 ~fast () =
  header "A3  Ablation: persistent secondary index vs delta scan";
  let rows = if fast then 4_000 else 16_000 in
  let size = 128 * mib in
  let table =
    Tabular.create ~title:"A3: point lookup latency on the delta partition"
      [
        ("delta rows", Tabular.Right);
        ("indexed lookup", Tabular.Right);
        ("scan lookup", Tabular.Right);
        ("speedup", Tabular.Right);
      ]
  in
  let build ~indexed =
    let engine = nvm_engine size in
    Engine.create_table engine ~name:"t"
      [|
        Storage.Schema.column ~indexed "k" Storage.Value.Int_t;
        Storage.Schema.column "v" Storage.Value.Int_t;
      |];
    let batch = 256 in
    let n = ref 0 in
    while !n < rows do
      Engine.with_txn engine (fun txn ->
          for _ = 1 to batch do
            incr n;
            ignore
              (Engine.insert engine txn "t"
                 [| Storage.Value.Int !n; Storage.Value.Int (!n * 2) |])
          done)
    done;
    engine
  in
  let time_lookups engine =
    let rng = Prng.create 11L in
    let q = 200 in
    let (), dt =
      timed "a3.lookups" (fun () ->
          Engine.with_txn engine (fun txn ->
              for _ = 1 to q do
                ignore
                  (Engine.lookup engine txn "t" ~col:"k"
                     (Storage.Value.Int (1 + Prng.int rng rows)))
              done))
    in
    dt / q
  in
  let e_idx = build ~indexed:true and e_scan = build ~indexed:false in
  let t_idx = time_lookups e_idx and t_scan = time_lookups e_scan in
  Tabular.add_row table
    [
      Tabular.fmt_int rows;
      Tabular.fmt_ns t_idx;
      Tabular.fmt_ns t_scan;
      Printf.sprintf "%.0fx" (float_of_int t_scan /. float_of_int t_idx);
    ];
  Tabular.print table;
  print_endline
    "expected shape: the persistent index turns O(delta) scans into\n\
     O(log delta) lookups; the gap widens with delta size."

(* A4: dictionary compression: delta vs merged-main footprint *)
let a4 ~fast () =
  header "A4  Ablation: dictionary + bit-packing compression at merge";
  let rows = if fast then 4_000 else 10_000 in
  let table =
    Tabular.create ~title:"A4: footprint of the same data, delta vs main"
      [
        ("distinct values", Tabular.Right);
        ("delta bytes", Tabular.Right);
        ("main bytes", Tabular.Right);
        ("compression", Tabular.Right);
        ("bits/entry", Tabular.Right);
      ]
  in
  List.iter
    (fun distinct ->
      let engine = nvm_engine (128 * mib) in
      Engine.create_table engine ~name:"t"
        [| Storage.Schema.column "v" Storage.Value.Int_t |];
      let rng = Prng.create 5L in
      let n = ref 0 in
      while !n < rows do
        Engine.with_txn engine (fun txn ->
            for _ = 1 to 256 do
              incr n;
              ignore
                (Engine.insert engine txn "t"
                   [| Storage.Value.Int (Prng.int rng distinct) |])
            done)
      done;
      let before = Engine.data_bytes engine in
      ignore (Engine.merge engine "t");
      let after = Engine.data_bytes engine in
      let tbl = Engine.table engine "t" in
      let bits =
        (* bits per entry of the packed attribute vector *)
        let dict = Storage.Table.main_dictionary_size tbl 0 in
        let rec lg b = if dict <= 1 lsl b then b else lg (b + 1) in
        lg 0
      in
      Tabular.add_row table
        [
          Tabular.fmt_int distinct;
          Tabular.fmt_bytes before;
          Tabular.fmt_bytes after;
          Printf.sprintf "%.1fx" (float_of_int before /. float_of_int after);
          string_of_int bits;
        ])
    [ 2; 16; 256; 4096 ];
  Tabular.print table;
  print_endline
    "expected shape: fewer distinct values -> narrower bit-packed vectors\n\
     -> higher compression of the merged main."

(* ------------------------------------------------------------------ *)
(* Machine-readable output: BENCH_recovery.json, BENCH_throughput.json  *)
(* ------------------------------------------------------------------ *)

let write_json path doc =
  let oc = open_out path in
  output_string oc (J.pretty doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" path

let latency_json lat =
  if Util.Histogram.count lat = 0 then J.Obj [ ("count", J.Int 0) ]
  else
    J.Obj
      [
        ("count", J.Int (Util.Histogram.count lat));
        ("mean", J.Float (Util.Histogram.mean lat));
        ("p50", J.Int (Util.Histogram.percentile lat 50.0));
        ("p95", J.Int (Util.Histogram.percentile lat 95.0));
        ("p99", J.Int (Util.Histogram.percentile lat 99.0));
        ("max", J.Int (Util.Histogram.max_value lat));
      ]

(* Restart time per durability mode across dataset scales. The headline
   claim in machine-checkable form: log-mode wall_ns grows with rows, NVM
   wall_ns stays near-constant. *)
let recovery_json ~scales () =
  (* the last scale's recovered NVM engine, kept so the doc can include
     what its flight recorder reconstructed across the crash *)
  let last_nvm = ref None in
  let scale_objs =
    List.map
      (fun s ->
        let rows = 1_000 * (1 lsl s) in
        let size = 48 * mib * (1 lsl s) in
        let ycfg = { Ycsb.default_config with rows } in
        Printf.printf "  json scale %d (%d rows) ...\n%!" s rows;
        let populate engine =
          let sess = Ycsb.setup engine (Prng.create 1L) ycfg in
          ignore (Ycsb.run sess (Prng.create 2L) ~ops:(rows / 5));
          sess
        in
        let crash_recover name engine =
          let crashed = Engine.crash engine Region.Drop_unfenced in
          let (e2, rs), _ = timed name (fun () -> Engine.recover crashed) in
          (e2, rs)
        in
        (* log mode, checkpointed mid-run so recovery exercises both the
           checkpoint-load and replay phases. The value-policy engine
           doubles as the legacy single-run measurement; the matrix adds
           `Command and `Adaptive engines and jobs 1/2/4 scratch replays
           of each. *)
        let matrix, v_crashed, _, _, log_bytes, log_data =
          replay_matrix_for ~tag:"json" ~policy:`Value ~rows ~size
            ~jobs_axis:[ 1; 2; 4 ]
        in
        let matrix =
          matrix
          @ List.concat_map
              (fun policy ->
                let cells, _, _, _, _, _ =
                  replay_matrix_for ~tag:"json" ~policy ~rows ~size
                    ~jobs_axis:[ 1; 2; 4 ]
                in
                cells)
              [ `Command; `Adaptive ]
        in
        let speedup_jobs2 =
          (* the command-policy jobs-2 cell's modeled speedup (CI floor:
             replay re-execution is the work partitioning parallelizes;
             value-policy replay is append-bound and honestly ~1.0) *)
          List.fold_left
            (fun acc cell ->
              match cell with
              | J.Obj fields -> (
                  match
                    (List.assoc_opt "policy" fields, List.assoc_opt "jobs" fields)
                  with
                  | Some (J.Str "command"), Some (J.Int 2) ->
                      List.assoc_opt "modeled_speedup" fields
                  | _ -> acc)
              | _ -> acc)
            None matrix
        in
        let digests_equal =
          List.for_all
            (fun cell ->
              match cell with
              | J.Obj fields -> List.assoc_opt "digest_match" fields <> Some (J.Bool false)
              | _ -> true)
            matrix
        in
        let (_, rs_log), _ =
          timed "json.recover_log" (fun () -> Engine.recover v_crashed)
        in
        let log_phases =
          match rv_log_phases rs_log.Engine.detail with
          | Some (p, _) -> p
          | None -> J.Obj []
        in
        let e_nvm = nvm_engine size in
        ignore (populate e_nvm);
        let nvm_data = Engine.data_bytes e_nvm in
        let e2_nvm, rs_nvm = crash_recover "json.recover_nvm" e_nvm in
        last_nvm := Some e2_nvm;
        let nvm_phases =
          match rs_nvm.Engine.detail with
          | Engine.Rv_nvm
              {
                heap_open_ns;
                attach_ns;
                rollback_ns;
                heap_blocks;
                rolled_back_rows;
                tables;
                blackbox_records;
                blackbox_ns;
                _;
              } ->
              J.Obj
                [
                  ("heap_scan_ns", J.Int heap_open_ns);
                  ("attach_ns", J.Int attach_ns);
                  ("rollback_ns", J.Int rollback_ns);
                  ("blackbox_ns", J.Int blackbox_ns);
                  ("heap_blocks", J.Int heap_blocks);
                  ("rolled_back_rows", J.Int rolled_back_rows);
                  ("tables", J.Int tables);
                  ("blackbox_records", J.Int blackbox_records);
                ]
          | _ -> J.Obj []
        in
        J.Obj
          [
            ("scale", J.Int s);
            ("rows", J.Int rows);
            ( "log",
              J.Obj
                [
                  ("wall_ns", J.Int rs_log.Engine.wall_ns);
                  ("data_bytes", J.Int log_data);
                  ("log_bytes", J.Int log_bytes);
                  ("phases", log_phases);
                ] );
            ("replay_matrix", J.List matrix);
            ( "replay_speedup_jobs2",
              Option.value ~default:J.Null speedup_jobs2 );
            ("replay_digests_equal", J.Bool digests_equal);
            ( "nvm",
              J.Obj
                [
                  ("wall_ns", J.Int rs_nvm.Engine.wall_ns);
                  ("data_bytes", J.Int nvm_data);
                  ("phases", nvm_phases);
                ] );
          ])
      scales
  in
  (* what the flight recorder of the last scale's NVM engine carried
     across the crash: the restart timeline is the machine-checkable form
     of the "instant restart" claim (engine-ready relative to
     recovery-begin), and precrash proves the ring survived the power cut *)
  let blackbox_obj =
    match !last_nvm with
    | None -> J.Obj []
    | Some e ->
        let bb = Engine.blackbox e in
        let rel m =
          match (bb.Engine.recovery_begin_ns, m) with
          | Some t0, Some t -> J.Int (t - t0)
          | _ -> J.Null
        in
        let kinds evs =
          let seen = Hashtbl.create 16 in
          List.filter_map
            (fun ev ->
              let k = Obs.Event.kind_name ev.Obs.Event.kind in
              if Hashtbl.mem seen k then None
              else begin
                Hashtbl.replace seen k ();
                Some (J.Str k)
              end)
            evs
        in
        J.Obj
          [
            ("precrash_records", J.Int (List.length bb.Engine.precrash));
            ("restart_records", J.Int (List.length bb.Engine.restart));
            ("truncated_lanes", J.Int bb.Engine.truncated_lanes);
            ("engine_ready_rel_ns", rel bb.Engine.engine_ready_ns);
            ("full_health_rel_ns", rel bb.Engine.full_health_ns);
            ("precrash_kinds", J.List (kinds bb.Engine.precrash));
            ("restart_kinds", J.List (kinds bb.Engine.restart));
          ]
  in
  J.Obj
    [
      ("experiment", J.Str "recovery");
      ("scales", J.List scale_objs);
      ("blackbox", blackbox_obj);
      ("registry", Obs.to_json ());
    ]

(* Writer-scaling sweep: the same pre-drawn TPC-C spec stream through
   [Engine.run_pipeline] at writers = 1/2/4 under each durability mode.
   Every level gets a fresh engine and the same generation seed, so the
   spec streams are identical and the committed counts and the media
   digest must agree across levels — the pipeline's parity contract in
   machine-checkable form. The pool runs one slot wider than the writer
   count (slot 0 is the dedicated committer and takes no staging work,
   like a group-commit log writer thread). Effective time follows the
   E8 device-ledger model: staging spreads the read-side device time
   across the writer slots while the serial seal (and the single
   group-commit fence) stays on slot 0, so the slowest slot bounds
   completion and writers=1 reduces to the serial baseline. Latency is
   measured to the window's durable fence (submit -> fence), keeping
   the percentiles comparable with the per-transaction [tpcc.*] numbers
   above. *)
let writers_levels = [ 1; 2; 4 ]

let lanes_json ~ops () =
  let size = 64 * mib in
  let entry_jobs = Par.jobs () in
  let mode_json (key, mk) =
    Printf.printf "  json lanes %s ...\n%!" key;
    let base = ref 0 in
    let base_dev = ref 0 in
    let base_committed = ref 0 in
    let base_digest = ref "" in
    List.map
      (fun w ->
        let engine : Engine.t = mk size in
        let sess =
          Tpcc.setup engine ~warehouses:8 ~districts_per_wh:4
            ~customers_per_district:64
        in
        let specs = Tpcc.gen_specs sess (Prng.create 7L) ~ops () in
        (* writers staging lanes + the committer slot *)
        Par.set_jobs (if w <= 1 then 1 else w + 1);
        Engine.set_writers engine w;
        let lat = Util.Histogram.create () in
        let stats, wall, dev =
          measure_par (Engine.region engine) (fun () ->
              Tpcc.run_specs ~latencies:lat sess specs)
        in
        Par.set_jobs entry_jobs;
        let dev_total = Array.fold_left ( + ) 0 dev in
        let digest = Engine.media_digest engine in
        if w = 1 then begin
          base := wall + dev_total;
          base_dev := dev_total;
          base_committed := stats.Tpcc.committed;
          base_digest := digest
        end;
        (* stricter than [e8_effective]: the denominator is the SERIAL
           run's device total, not this run's — staging work that gets
           re-executed at the seal is duplicated effort and must not
           count as useful distributed work. At writers=1 this reduces
           to [base] exactly. *)
        let eff =
          if w = 1 || !base_dev = 0 then !base
          else
            let worst = Array.fold_left max 0 dev in
            int_of_float
              (float_of_int !base *. float_of_int worst
              /. float_of_int !base_dev)
        in
        ( w,
          stats,
          wall,
          dev_total,
          eff,
          lat,
          stats.Tpcc.committed = !base_committed && digest = !base_digest ))
      writers_levels
  in
  let modes =
    List.map
      (fun (key, mk) -> (key, mode_json (key, mk)))
      [
        ("volatile", volatile_engine);
        ("log", fun size -> log_engine ~group:8 ~fsync:false size);
        ("nvm", nvm_engine);
      ]
  in
  let level_json (w, stats, wall, dev, eff, lat, _) =
    J.Obj
      [
        ("writers", J.Int w);
        ("committed", J.Int stats.Tpcc.committed);
        ("aborted", J.Int stats.Tpcc.aborted);
        ("wall_ns", J.Int wall);
        ("device_ns", J.Int dev);
        ("effective_ns", J.Int eff);
        ( "txn_per_sec",
          J.Float
            (float_of_int stats.Tpcc.committed *. 1e9
            /. float_of_int (max 1 wall)) );
        ( "effective_txn_per_sec",
          J.Float
            (float_of_int stats.Tpcc.committed *. 1e9
            /. float_of_int (max 1 eff)) );
        ("latency_ns", latency_json lat);
      ]
  in
  let eff_at levels w =
    match List.find_opt (fun (w', _, _, _, _, _, _) -> w' = w) levels with
    | Some (_, _, _, _, eff, _, _) -> float_of_int eff
    | None -> nan
  in
  let nvm = List.assoc "nvm" modes in
  let parity_ok =
    List.for_all
      (fun (_, levels) ->
        List.for_all (fun (_, _, _, _, _, _, ok) -> ok) levels)
      modes
  in
  J.Obj
    [
      ("ops", J.Int ops);
      ("writers_levels", J.List (List.map (fun w -> J.Int w) writers_levels));
      ( "modes",
        J.Obj
          (List.map
             (fun (key, levels) ->
               (key, J.Obj [ ("levels", J.List (List.map level_json levels)) ]))
             modes) );
      ( "shape",
        J.Obj
          [
            ( "nvm_speedup_2x",
              J.Float (eff_at nvm 1 /. Float.max 1.0 (eff_at nvm 2)) );
            ( "nvm_speedup_4x",
              J.Float (eff_at nvm 1 /. Float.max 1.0 (eff_at nvm 4)) );
            ("counts_and_digests_equal", J.Bool parity_ok);
          ] );
    ]

(* Throughput + latency per workload, plus the tracer-overhead check
   (spans default off must cost nothing measurable). *)
let throughput_json ~ops ~rows () =
  let size = 64 * mib in
  let ycsb_cfg = { Ycsb.default_config with rows } in
  let ycsb_obj =
    Printf.printf "  json ycsb (%d ops) ...\n%!" ops;
    let engine = nvm_engine size in
    let sess = Ycsb.setup engine (Prng.create 1L) ycsb_cfg in
    let rng = Prng.create 2L in
    let lat = Obs.histogram "bench.json.ycsb_op" in
    Util.Histogram.clear lat;
    let t0 = now_ns () in
    for _ = 1 to ops do
      let o0 = now_ns () in
      ignore (Ycsb.run_one sess rng);
      Util.Histogram.record lat (now_ns () - o0)
    done;
    let dt = now_ns () - t0 in
    J.Obj
      [
        ("ops", J.Int ops);
        ("ops_per_sec", J.Float (float_of_int ops *. 1e9 /. float_of_int dt));
        ("latency_ns", latency_json lat);
      ]
  in
  let tpcc_modes =
    List.map
      (fun (key, mk) ->
        Printf.printf "  json tpcc %s ...\n%!" key;
        let engine : Engine.t = mk () in
        let sess =
          Tpcc.setup engine ~warehouses:2 ~districts_per_wh:3
            ~customers_per_district:8
        in
        let lat = Util.Histogram.create () in
        let stats, dt =
          timed ("json.tpcc." ^ key) (fun () ->
              Tpcc.run sess (Prng.create 7L) ~latencies:lat ~ops ())
        in
        ( key,
          J.Obj
            [
              ("committed", J.Int stats.Tpcc.committed);
              ( "txn_per_sec",
                J.Float
                  (float_of_int stats.Tpcc.committed
                  *. 1e9
                  /. float_of_int (max 1 dt)) );
              ("latency_ns", latency_json lat);
            ] ))
      [
        ("volatile", fun () -> volatile_engine size);
        ("log", fun () -> log_engine ~group:8 ~fsync:false size);
        ("nvm", fun () -> nvm_engine size);
      ]
  in
  let obs_overhead_pct =
    (* same YCSB run, spans disarmed vs armed; best-of-3 each to damp
       noise. The disabled tracer's only cost is one boolean test per
       span site, so this should sit well under 2%. *)
    Printf.printf "  json tracer overhead ...\n%!";
    let once () =
      let engine = nvm_engine size in
      let sess = Ycsb.setup engine (Prng.create 1L) ycsb_cfg in
      let t0 = now_ns () in
      ignore (Ycsb.run sess (Prng.create 2L) ~ops);
      ignore (Engine.checkpoint engine);
      now_ns () - t0
    in
    let was = Obs.is_enabled () in
    ignore (once ()) (* warm up allocator/page cache before either side *);
    let off = ref max_int and on = ref max_int in
    (* interleave the two sides so drift hits both equally *)
    for _ = 1 to 4 do
      Obs.set_enabled false;
      let d = once () in
      if d < !off then off := d;
      Obs.set_enabled true;
      let d = once () in
      if d < !on then on := d
    done;
    Obs.set_enabled was;
    100.0 *. float_of_int (!on - !off) /. float_of_int !off
  in
  let lanes = lanes_json ~ops () in
  J.Obj
    [
      ("experiment", J.Str "throughput");
      ("ycsb", ycsb_obj);
      ("tpcc", J.Obj tpcc_modes);
      ("lanes", lanes);
      ("obs_overhead_pct", J.Float obs_overhead_pct);
      ("registry", Obs.to_json ());
    ]

(* Block vs row engine over the selectivity/partition/durability grid.
   The headline entry (1% selectivity, main partition, NVM) is the
   machine-checkable form of the scan-engine claim: same result count,
   >= 5x less time at the largest bench scale. *)
let scan_json ~rows ~reps () =
  Printf.printf "  json scan grid (%d rows) ...\n%!" rows;
  let case ~partition ~merged ~mode ~engine permille =
    let cr, wr, dr = time_scan engine ~impl:`Row ~permille ~reps in
    let cb, wb, db = time_scan engine ~impl:`Block ~permille ~reps in
    let speedup =
      float_of_int (effective wr dr) /. float_of_int (max 1 (effective wb db))
    in
    J.Obj
      [
        ("partition", J.Str partition);
        ("mode", J.Str mode);
        ("merged", J.Bool merged);
        ("selectivity_pct", J.Float (float_of_int permille /. 10.0));
        ("row_count", J.Int cr);
        ("block_count", J.Int cb);
        ("counts_equal", J.Bool (cr = cb));
        ("row_wall_ns", J.Int wr);
        ("block_wall_ns", J.Int wb);
        ("row_device_ns", J.Int dr);
        ("block_device_ns", J.Int db);
        ("row_ns", J.Int (effective wr dr));
        ("block_ns", J.Int (effective wb db));
        ("speedup", J.Float speedup);
      ]
  in
  let cases =
    List.concat_map
      (fun (partition, merged) ->
        List.concat_map
          (fun (mode, mk) ->
            let engine = scan_setup ~rows ~merged mk in
            List.map
              (fun permille -> case ~partition ~merged ~mode ~engine permille)
              permilles)
          [ ("volatile", volatile_engine); ("nvm", nvm_engine) ])
      [ ("main", true); ("delta", false) ]
  in
  let headline =
    List.find
      (fun c ->
        match c with
        | J.Obj fields ->
            List.assoc "partition" fields = J.Str "main"
            && List.assoc "mode" fields = J.Str "nvm"
            && List.assoc "selectivity_pct" fields = J.Float 1.0
        | _ -> false)
      cases
  in
  J.Obj
    [
      ("experiment", J.Str "scan");
      ("rows", J.Int rows);
      ("block_rows", J.Int Query.Scan.block_rows);
      ("cases", J.List cases);
      ("headline", headline);
      ("registry", Obs.to_json ());
    ]

(* Scan/merge/recovery across jobs levels, in machine-checkable form.
   [shape] carries the acceptance thresholds the CI validator asserts:
   effective-time speedup at 2 domains and result identity across all
   levels. *)
let par_json ~rows ~merge_rows ~recovery_ops ~reps () =
  Printf.printf "  json par sweep (%d scan rows, jobs %s) ...\n%!" rows
    (String.concat "/" (List.map string_of_int jobs_levels));
  let scan, merge, recovery =
    e8_sweep ~rows ~merge_rows ~merge_cols:8 ~recovery_ops ~reps
  in
  let levels_json count_key levels =
    J.List
      (List.map
         (fun (jobs, count, wall, dev, eff) ->
           J.Obj
             [
               ("jobs", J.Int jobs);
               (count_key, J.Int count);
               ("wall_ns", J.Int wall);
               ("device_ns", J.Int dev);
               ("effective_ns", J.Int eff);
             ])
         levels)
  in
  let counts_equal levels =
    match levels with
    | (_, c0, _, _, _) :: rest ->
        List.for_all (fun (_, c, _, _, _) -> c = c0) rest
    | [] -> true
  in
  J.Obj
    [
      ("experiment", J.Str "par");
      ("jobs_levels", J.List (List.map (fun j -> J.Int j) jobs_levels));
      ( "scan",
        J.Obj [ ("rows", J.Int rows); ("levels", levels_json "matched" scan) ] );
      ( "merge",
        J.Obj
          [
            ("rows", J.Int merge_rows);
            ("cols", J.Int 8);
            ("levels", levels_json "rows_out" merge);
          ] );
      ("recovery", J.Obj [ ("levels", levels_json "rolled_back_rows" recovery) ]);
      ( "shape",
        J.Obj
          [
            ("scan_speedup_2x", J.Float (e8_speedup scan ~at:2));
            ("merge_speedup_2x", J.Float (e8_speedup merge ~at:2));
            ("recovery_speedup_2x", J.Float (e8_speedup recovery ~at:2));
            ( "counts_equal",
              J.Bool
                (counts_equal scan && counts_equal merge && counts_equal recovery)
            );
          ] );
      ("registry", Obs.to_json ());
    ]

let faults_json ~fast () =
  Printf.printf "  json faults sweep (%s mode) ...\n%!"
    (if fast then "fast" else "full");
  let verify, salvage = e9_sweeps ~fast in
  let online = e9b_sweep ~fast in
  let level_json (wall, verify_ns) =
    J.Obj [ ("wall_ns", J.Int wall); ("verify_ns", J.Int verify_ns) ]
  in
  J.Obj
    [
      ("experiment", J.Str "faults");
      ( "verify_overhead",
        J.List
          (List.map
             (fun (s, rows, data, off, shallow, deep) ->
               J.Obj
                 [
                   ("scale", J.Int s);
                   ("rows", J.Int rows);
                   ("data_bytes", J.Int data);
                   ("off", level_json off);
                   ("shallow", level_json shallow);
                   ("deep", level_json deep);
                 ])
             verify) );
      ( "salvage",
        J.List
          (List.map
             (fun r ->
               J.Obj
                 [
                   ("faults", J.Int r.faults);
                   ("outcome", J.Str r.outcome);
                   ("wall_ns", J.Int r.wall_ns);
                   ("verify_ns", J.Int r.verify_ns);
                   ("salvage_ns", J.Int r.salvage_ns);
                   ("quarantined", J.Int r.quarantined);
                   ("salvaged", J.Int r.salvaged);
                   ("deferred", J.Int r.deferred);
                   ("heap_reset", J.Bool r.heap_reset);
                   ("crc_failures", J.Int r.crc_failures);
                   ("rows_intact", J.Bool r.rows_intact);
                 ])
             salvage) );
      ( "online_restore",
        J.List
          (List.map
             (fun r ->
               J.Obj
                 [
                   ("faults", J.Int r.b_faults);
                   ("pressure", J.Int r.b_pressure);
                   ("outcome", J.Str r.b_outcome);
                   ("segments", J.Int r.b_segments);
                   ("time_to_first_query_ns", J.Int r.b_first_query_ns);
                   ("time_to_full_health_ns", J.Int r.b_full_health_ns);
                   ("degraded_queries", J.Int r.b_degraded_queries);
                   ("degraded_rows", J.Int r.b_degraded_rows);
                   ("demand_restores", J.Int r.b_demand);
                   ("background_restores", J.Int r.b_background);
                 ])
             online) );
      ( "shape",
        J.Obj
          [
            (* < 1.0: shallow verify grows sub-linearly in rows *)
            ("shallow_growth_vs_rows", J.Float (e9_sublinearity verify));
            ( "all_rows_intact",
              J.Bool (List.for_all (fun r -> r.rows_intact) salvage) );
            ( "no_raised_outcomes",
              J.Bool
                (List.for_all
                   (fun r -> not (String.length r.outcome > 6
                                  && String.sub r.outcome 0 6 = "raised"))
                   salvage) );
            (* the serve-while-salvaging claim: the engine answers its
               first query before (or at worst when) the last repair
               lands, at every fault count and query pressure *)
            ( "first_query_before_full_health",
              J.Bool
                (List.for_all
                   (fun r -> r.b_first_query_ns <= r.b_full_health_ns)
                   online) );
            ( "online_no_raised",
              J.Bool
                (List.for_all
                   (fun r -> not (String.length r.b_outcome > 6
                                  && String.sub r.b_outcome 0 6 = "raised"))
                   online) );
          ] );
      ("registry", Obs.to_json ());
    ]

let emit_faults_json ~fast () =
  Obs.set_enabled true;
  write_json "BENCH_faults.json" (faults_json ~fast ())

let emit_scan_json ~rows ~reps () =
  Obs.set_enabled true;
  write_json "BENCH_scan.json" (scan_json ~rows ~reps ())

let emit_par_json ~rows ~merge_rows ~recovery_ops ~reps () =
  Obs.set_enabled true;
  write_json "BENCH_par.json" (par_json ~rows ~merge_rows ~recovery_ops ~reps ())

let emit_throughput_json ~ops ~rows () =
  Obs.set_enabled true;
  write_json "BENCH_throughput.json" (throughput_json ~ops ~rows ())

let emit_json ~scales ~ops ~rows () =
  header
    "JSON  BENCH_recovery.json / BENCH_throughput.json / BENCH_scan.json / \
     BENCH_par.json / BENCH_faults.json";
  Obs.set_enabled true;
  write_json "BENCH_recovery.json" (recovery_json ~scales ());
  emit_throughput_json ~ops ~rows ();
  write_json "BENCH_scan.json" (scan_json ~rows:(rows * 10) ~reps:2 ());
  write_json "BENCH_par.json"
    (par_json ~rows:(rows * 10) ~merge_rows:(rows * 2) ~recovery_ops:(ops * 2)
       ~reps:2 ());
  write_json "BENCH_faults.json" (faults_json ~fast:(List.length scales <= 3) ())

(* ------------------------------------------------------------------ *)

let experiments =
  [ ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6);
    ("E7", e7); ("E8", e8); ("E9", e9); ("T1", t1); ("A1", a1); ("A2", a2);
    ("A3", a3); ("A4", a4) ]

let () =
  let only = ref [] and fast = ref false and smoke = ref false in
  Array.iteri
    (fun i arg ->
      match arg with
      | "--fast" -> fast := true
      | "--smoke" -> smoke := true
      | "--only" when i + 1 < Array.length Sys.argv ->
          only := Sys.argv.(i + 1) :: !only
      | "--jobs" when i + 1 < Array.length Sys.argv -> (
          match int_of_string_opt Sys.argv.(i + 1) with
          | Some n -> Par.set_jobs n
          | None -> failwith "--jobs expects an integer")
      | "--log-policy" when i + 1 < Array.length Sys.argv ->
          (* validate, then let every engine the bench creates pick it
             up as its default (the E1 replay matrix still sweeps all
             three policies explicitly) *)
          ignore (Engine.log_policy_of_string Sys.argv.(i + 1));
          Unix.putenv "HYRISE_NV_LOG_POLICY" Sys.argv.(i + 1)
      | _ -> ())
    Sys.argv;
  Printf.printf "jobs: %d (of %d recommended; --jobs N or HYRISE_NV_JOBS)\n"
    (Par.jobs ())
    (Domain.recommended_domain_count ());
  if !smoke then begin
    if !only = [ "E7" ] then begin
      (* CI smoke of the scan engine alone: just BENCH_scan.json, tiny
         scale (a handful of blocks per partition) *)
      print_endline "Hyrise-NV reproduction benchmarks (smoke: scan JSON only)";
      emit_scan_json ~rows:4_000 ~reps:2 ()
    end
    else if !only = [ "E8" ] then begin
      (* CI smoke of the parallel paths alone: just BENCH_par.json at a
         scale that still spans several chunks per lane *)
      print_endline "Hyrise-NV reproduction benchmarks (smoke: par JSON only)";
      emit_par_json ~rows:12_000 ~merge_rows:4_000 ~recovery_ops:300 ~reps:2 ()
    end
    else if !only = [ "E2" ] then begin
      (* CI smoke of the OLTP paths alone: just BENCH_throughput.json
         (including the writer-pipeline lanes sweep) at tiny scale *)
      print_endline
        "Hyrise-NV reproduction benchmarks (smoke: throughput JSON only)";
      emit_throughput_json ~ops:400 ~rows:1_000 ()
    end
    else if !only = [ "E9" ] then begin
      (* CI smoke of the media-fault pipeline alone: just
         BENCH_faults.json at fast scale *)
      print_endline
        "Hyrise-NV reproduction benchmarks (smoke: faults JSON only)";
      emit_faults_json ~fast:true ()
    end
    else begin
      (* CI smoke: skip the table experiments, emit only the JSON files at
         tiny scale (still three dataset scales, so the log-grows /
         NVM-stays-flat shape is checkable) *)
      print_endline "Hyrise-NV reproduction benchmarks (smoke: JSON only)";
      emit_json ~scales:[ 0; 1; 2 ] ~ops:400 ~rows:1_000 ()
    end
  end
  else begin
    let selected =
      if !only = [] then experiments
      else List.filter (fun (name, _) -> List.mem name !only) experiments
    in
    print_endline "Hyrise-NV reproduction benchmarks";
    print_endline
      (if !fast then "(fast mode: reduced scales)"
       else "(full scales; use --fast for a quicker run)");
    let t0 = Unix.gettimeofday () in
    List.iter (fun (_, f) -> f ~fast:!fast ()) selected;
    (if !only = [] then
       let scales = if !fast then [ 0; 1; 2 ] else [ 0; 1; 2; 3; 4 ] in
       let ops = if !fast then 600 else 2_000 in
       emit_json ~scales ~ops ~rows:(if !fast then 2_000 else 5_000) ());
    Printf.printf "\nall selected experiments done in %.1f s\n"
      (Unix.gettimeofday () -. t0)
  end
