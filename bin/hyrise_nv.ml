(* hyrise_nv — command-line driver for the Hyrise-NV reproduction.

   The demonstration flow of the ICDE'16 demo paper:

     hyrise_nv load --rows 50000 --image db.img     # populate, save NVM image
     hyrise_nv restart --image db.img               # instant restart from it
     hyrise_nv demo --scales 3                      # log vs NVM side by side
     hyrise_nv torture --rounds 10                  # adversarial crash loop *)

module Engine = Core.Engine
module Region = Nvm.Region
module Ycsb = Workload.Ycsb
module Tpcc = Workload.Tpcc_lite
module Prng = Util.Prng
module Tabular = Util.Tabular
open Cmdliner

let mib = 1024 * 1024

let size_arg =
  let doc = "Simulated NVM region size in MiB." in
  Arg.(value & opt int 64 & info [ "size-mb" ] ~docv:"MIB" ~doc)

let seed_arg =
  let doc = "PRNG seed; equal seeds reproduce identical runs." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

(* -- load -- *)

let load rows image size_mb seed =
  let cfg = Engine.default_config ~size:(size_mb * mib) Engine.Nvm in
  let engine = Engine.create cfg in
  let ycfg = { Ycsb.default_config with rows } in
  Printf.printf "loading %d rows into an NVM-resident table ...\n%!" rows;
  let t0 = Unix.gettimeofday () in
  let sess = Ycsb.setup engine (Prng.create (Int64.of_int seed)) ycfg in
  ignore (Ycsb.run sess (Prng.create (Int64.of_int (seed + 1))) ~ops:(rows / 10));
  Printf.printf "loaded in %.2f s — %s of table data, last CID %Ld\n"
    (Unix.gettimeofday () -. t0)
    (Tabular.fmt_bytes (Engine.data_bytes engine))
    (Engine.last_cid engine);
  Engine.save_image engine image;
  Printf.printf "durable NVM image written to %s (%s)\n" image
    (Tabular.fmt_bytes (Unix.stat image).Unix.st_size)

let load_cmd =
  let rows =
    Arg.(value & opt int 50_000 & info [ "rows" ] ~docv:"N" ~doc:"Rows to load.")
  in
  let image =
    Arg.(value & opt string "db.img" & info [ "image" ] ~docv:"FILE"
           ~doc:"Where to write the NVM image.")
  in
  Cmd.v
    (Cmd.info "load" ~doc:"Populate a database and save its NVM image.")
    Term.(const load $ rows $ image $ size_arg $ seed_arg)

(* -- restart -- *)

let restart image size_mb =
  let cfg = Engine.default_config ~size:(size_mb * mib) Engine.Nvm in
  Printf.printf "mapping %s ...\n%!" image;
  let engine, stats = Engine.open_image cfg image in
  Printf.printf "instant restart in %s\n" (Tabular.fmt_ns stats.Engine.wall_ns);
  (match stats.Engine.detail with
  | Engine.Rv_nvm { heap_open_ns; attach_ns; rollback_ns; heap_blocks; rolled_back_rows; tables } ->
      Printf.printf
        "  heap scan %s (%d blocks) | attach %s (%d tables) | rollback %s (%d rows)\n"
        (Tabular.fmt_ns heap_open_ns) heap_blocks (Tabular.fmt_ns attach_ns)
        tables (Tabular.fmt_ns rollback_ns) rolled_back_rows
  | _ -> ());
  Engine.with_txn engine (fun txn ->
      Printf.printf "database is open: %d rows visible in %s, last CID %Ld\n"
        (Engine.count engine txn Ycsb.table_name)
        Ycsb.table_name (Engine.last_cid engine))

let restart_cmd =
  let image =
    Arg.(value & opt string "db.img" & info [ "image" ] ~docv:"FILE"
           ~doc:"NVM image written by $(b,load).")
  in
  Cmd.v
    (Cmd.info "restart" ~doc:"Instant restart from a saved NVM image.")
    Term.(const restart $ image $ size_arg)

(* -- demo (log vs NVM) -- *)

let tmpdir () =
  let d = Filename.temp_file "hyrise_demo" "" in
  Sys.remove d;
  d

let demo scales seed =
  let now_ns () = Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1e9)) in
  let table =
    Tabular.create ~title:"restart time: log-based vs Hyrise-NV"
      [
        ("rows", Tabular.Right);
        ("data", Tabular.Right);
        ("log recovery", Tabular.Right);
        ("NVM recovery", Tabular.Right);
        ("speedup", Tabular.Right);
      ]
  in
  for s = 0 to scales - 1 do
    let rows = 2_000 * (1 lsl s) in
    let size = 64 * mib * (1 lsl s) in
    let run mk =
      let engine = mk () in
      let cfg = { Ycsb.default_config with rows } in
      let sess = Ycsb.setup engine (Prng.create (Int64.of_int seed)) cfg in
      ignore (Ycsb.run sess (Prng.create (Int64.of_int (seed + 1))) ~ops:(rows / 10));
      let bytes = Engine.data_bytes engine in
      let crashed = Engine.crash engine Region.Drop_unfenced in
      let t0 = now_ns () in
      let _engine, _ = Engine.recover crashed in
      (now_ns () - t0, bytes)
    in
    Printf.printf "scale %d (%d rows) ...\n%!" s rows;
    let log_ns, _ =
      run (fun () ->
          Engine.create
            {
              Engine.region = Region.config_with_size size;
              durability =
                Engine.Logging
                  { Wal.Log.dir = tmpdir (); group_commit_size = 8; fsync = false };
            })
    in
    let nvm_ns, bytes =
      run (fun () -> Engine.create (Engine.default_config ~size Engine.Nvm))
    in
    Tabular.add_row table
      [
        Tabular.fmt_int rows;
        Tabular.fmt_bytes bytes;
        Tabular.fmt_ns log_ns;
        Tabular.fmt_ns nvm_ns;
        Printf.sprintf "%.0fx" (float_of_int log_ns /. float_of_int nvm_ns);
      ]
  done;
  Tabular.print table

let demo_cmd =
  let scales =
    Arg.(value & opt int 3 & info [ "scales" ] ~docv:"N"
           ~doc:"Number of doubling dataset scales to compare.")
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"The demo paper's comparison: log vs NVM restart.")
    Term.(const demo $ scales $ seed_arg)

(* -- torture -- *)

let torture rounds seed =
  let rng = Prng.create (Int64.of_int seed) in
  let engine = ref (Engine.create (Engine.default_config ~size:(64 * mib) Engine.Nvm)) in
  let sess = ref (Tpcc.setup !engine ~warehouses:2 ~districts_per_wh:3 ~customers_per_district:8) in
  for round = 1 to rounds do
    let stats = Tpcc.run !sess (Prng.split rng) ~ops:(50 + Prng.int rng 150) () in
    let before = Tpcc.total_orders !sess in
    let crashed = Engine.crash !engine (Region.Adversarial (Prng.split rng)) in
    let e2, rstats = Engine.recover crashed in
    engine := e2;
    sess := Tpcc.attach e2 ~warehouses:2 ~districts_per_wh:3 ~customers_per_district:8;
    let after = Tpcc.total_orders !sess in
    let ok = List.for_all snd (Tpcc.consistency_check !sess) && before = after in
    Printf.printf "round %2d: %3d committed, recovered in %8s, %s\n%!" round
      stats.Tpcc.committed
      (Tabular.fmt_ns rstats.Engine.wall_ns)
      (if ok then "consistent" else "INCONSISTENT");
    if not ok then exit 1
  done;
  Printf.printf "survived %d adversarial crashes\n" rounds

let torture_cmd =
  let rounds =
    Arg.(value & opt int 10 & info [ "rounds" ] ~docv:"N" ~doc:"Crash rounds.")
  in
  Cmd.v
    (Cmd.info "torture" ~doc:"Adversarial crash loop with invariant checks.")
    Term.(const torture $ rounds $ seed_arg)

(* -- sanitize -- *)

let sanitize size_mb seed ops =
  let failures = ref 0 in
  let phase name f =
    Printf.printf "=== %s under the persist-order sanitizer ===\n%!" name;
    let san = f () in
    print_string (Nvm.Sanitizer.report san);
    let c = Nvm.Sanitizer.correctness_violations san in
    if c > 0 then begin
      Printf.printf "FAIL: %d correctness violation(s) in %s\n" c name;
      incr failures
    end
    else Printf.printf "OK: zero correctness violations in %s\n" name;
    print_newline ()
  in
  let cfg = Engine.default_config ~size:(size_mb * mib) Engine.Nvm in
  phase "YCSB" (fun () ->
      let rng = Prng.create (Int64.of_int seed) in
      let engine = Engine.create ~sanitize:true cfg in
      let ycfg = { Ycsb.default_config with rows = 2_000 } in
      let sess = Ycsb.setup engine (Prng.split rng) ycfg in
      ignore (Ycsb.run sess (Prng.split rng) ~ops);
      (* power-fail with adversarial eviction, recover under the same
         checker, keep working, then merge (the generation swap) *)
      let crashed = Engine.crash engine (Region.Adversarial (Prng.split rng)) in
      let e2, _ = Engine.recover crashed in
      let sess2 = Ycsb.attach e2 ycfg in
      ignore (Ycsb.run sess2 (Prng.split rng) ~ops:(ops / 2));
      ignore (Engine.merge e2 Ycsb.table_name);
      Option.get (Engine.sanitizer e2));
  phase "TPC-C-lite" (fun () ->
      let rng = Prng.create (Int64.of_int (seed + 7)) in
      let engine = Engine.create ~sanitize:true cfg in
      let sess =
        Tpcc.setup engine ~warehouses:2 ~districts_per_wh:3
          ~customers_per_district:8
      in
      ignore (Tpcc.run sess (Prng.split rng) ~ops ());
      let crashed = Engine.crash engine (Region.Adversarial (Prng.split rng)) in
      let e2, _ = Engine.recover crashed in
      let sess2 =
        Tpcc.attach e2 ~warehouses:2 ~districts_per_wh:3
          ~customers_per_district:8
      in
      ignore (Tpcc.run sess2 (Prng.split rng) ~ops:(ops / 2) ());
      Option.get (Engine.sanitizer e2));
  if !failures > 0 then exit 1

let sanitize_cmd =
  let ops =
    Arg.(value & opt int 2_000 & info [ "ops" ] ~docv:"N"
           ~doc:"Operations per workload phase.")
  in
  Cmd.v
    (Cmd.info "sanitize"
       ~doc:"Run the workloads under the persist-order crash-consistency \
             checker and report violations.")
    Term.(const sanitize $ size_arg $ seed_arg $ ops)

(* -- repl -- *)

let repl size_mb seed execute =
  let engine =
    ref (Engine.create (Engine.default_config ~size:(size_mb * mib) Engine.Nvm))
  in
  let crash_rng = Prng.create (Int64.of_int seed) in
  let run_line line =
    let line = String.trim line in
    if line = "" then ()
    else
      match String.lowercase_ascii line with
      | "exit" | "quit" -> raise Exit
      | "crash" ->
          (* the REPL-level power switch: adversarial crash + instant
             restart, so the user can watch committed data survive *)
          let crashed = Engine.crash !engine (Region.Adversarial crash_rng) in
          let e2, stats = Engine.recover crashed in
          engine := e2;
          Printf.printf "power failed; instant restart in %s (last CID %Ld)\n"
            (Tabular.fmt_ns stats.Engine.wall_ns)
            (Engine.last_cid e2)
      | _ -> (
          match Repl.Sql.parse line with
          | stmt -> (
              try print_endline (Repl.Sql.execute !engine stmt) with
              | Txn.Mvcc.Write_conflict m -> Printf.printf "conflict: %s\n" m
              | Invalid_argument m | Failure m -> Printf.printf "error: %s\n" m
              | Not_found -> print_endline "error: no such table")
          | exception Repl.Sql.Parse_error m -> Printf.printf "parse error: %s\n" m)
  in
  match execute with
  | Some stmts -> List.iter run_line (String.split_on_char ';' stmts)
  | None -> (
      print_endline "Hyrise-NV SQL repl — HELP for syntax, CRASH to test the headline, EXIT to quit";
      try
        while true do
          print_string "hyrise-nv> ";
          run_line (read_line ())
        done
      with Exit | End_of_file -> print_endline "bye")

let repl_cmd =
  let execute =
    Arg.(value & opt (some string) None
           & info [ "e"; "execute" ] ~docv:"SQL"
               ~doc:"Run semicolon-separated statements and exit.")
  in
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive SQL shell over an NVM engine.")
    Term.(const repl $ size_arg $ seed_arg $ execute)

let () =
  let info =
    Cmd.info "hyrise_nv" ~version:"1.0.0"
      ~doc:"Hyrise-NV: instant restarts of an in-memory database on NVM"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ load_cmd; restart_cmd; demo_cmd; torture_cmd; sanitize_cmd; repl_cmd ]))
