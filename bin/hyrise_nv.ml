(* hyrise_nv — command-line driver for the Hyrise-NV reproduction.

   The demonstration flow of the ICDE'16 demo paper:

     hyrise_nv load --rows 50000 --image db.img     # populate, save NVM image
     hyrise_nv restart --image db.img               # instant restart from it
     hyrise_nv demo --scales 3                      # log vs NVM side by side
     hyrise_nv torture --rounds 10                  # adversarial crash loop *)

module Engine = Core.Engine
module Region = Nvm.Region
module Ycsb = Workload.Ycsb
module Tpcc = Workload.Tpcc_lite
module Prng = Util.Prng
module Tabular = Util.Tabular
open Cmdliner

let mib = 1024 * 1024

let size_arg =
  let doc = "Simulated NVM region size in MiB." in
  Arg.(value & opt int 64 & info [ "size-mb" ] ~docv:"MIB" ~doc)

let seed_arg =
  let doc = "PRNG seed; equal seeds reproduce identical runs." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let trace_arg =
  let doc =
    "Write one line per completed span to $(docv) (greppable \
     `SPAN <path> wall_ns=... depth=...` format); also arms the tracer."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let arm_trace = function
  | Some file -> Obs.Span.set_trace_file file
  | None -> ()

let jobs_arg =
  let doc =
    "Domains for parallel scans, delta merge, and recovery (default: \
     $(b,HYRISE_NV_JOBS) or the machine's core count; $(b,1) runs the \
     exact serial engine)."
  in
  Arg.(value & opt (some int) None & info [ "jobs" ] ~docv:"N" ~doc)

let set_jobs = function Some n -> Par.set_jobs n | None -> ()

let log_policy_arg =
  let pol =
    Arg.enum
      [ ("value", `Value); ("command", `Command); ("adaptive", `Adaptive) ]
  in
  let doc =
    "WAL record policy for log-mode engines: $(b,value) logs row images, \
     $(b,command) logs re-executable operations, $(b,adaptive) prices \
     both per transaction and writes the cheaper one (PROTOCOLS.md §14). \
     Defaults to $(b,HYRISE_NV_LOG_POLICY) or $(b,value)."
  in
  Arg.(
    value
    & opt (some pol) None
    & info [ "log-policy" ] ~docv:"POLICY" ~doc)

let set_policy engine = function
  | Some p -> Engine.set_log_policy engine p
  | None -> ()

let writers_arg =
  let doc =
    "Writer lanes for the epoch-batched commit pipeline (default: \
     $(b,HYRISE_NV_WRITERS) or $(b,1), the exact serial commit path). \
     With $(b,N) > 1 the workloads run through pre-drawn transaction \
     specs and the multi-lane pipeline, and the domain pool is widened \
     to at least N+1 slots (N staging lanes plus the committer)."
  in
  Arg.(value & opt (some int) None & info [ "writers" ] ~docv:"N" ~doc)

(* Apply the --writers override (the engine already honours
   HYRISE_NV_WRITERS on its own) and make sure the pool can actually
   carry the pipeline: [writers] staging lanes plus the committer
   slot 0. Returns the effective writer count. *)
let arm_writers writers engine =
  (match writers with Some n -> Engine.set_writers engine n | None -> ());
  let w = Engine.writers engine in
  if w > 1 && Par.jobs () < w + 1 then Par.set_jobs (w + 1);
  w

(* -- load -- *)

let load jobs rows image size_mb seed =
  set_jobs jobs;
  let cfg = Engine.default_config ~size:(size_mb * mib) Engine.Nvm in
  let engine = Engine.create cfg in
  let ycfg = { Ycsb.default_config with rows } in
  Printf.printf "loading %d rows into an NVM-resident table ...\n%!" rows;
  let t0 = Unix.gettimeofday () in
  let sess = Ycsb.setup engine (Prng.create (Int64.of_int seed)) ycfg in
  ignore (Ycsb.run sess (Prng.create (Int64.of_int (seed + 1))) ~ops:(rows / 10));
  Printf.printf "loaded in %.2f s — %s of table data, last CID %Ld\n"
    (Unix.gettimeofday () -. t0)
    (Tabular.fmt_bytes (Engine.data_bytes engine))
    (Engine.last_cid engine);
  Engine.save_image engine image;
  Printf.printf "durable NVM image written to %s (%s)\n" image
    (Tabular.fmt_bytes (Unix.stat image).Unix.st_size)

let load_cmd =
  let rows =
    Arg.(value & opt int 50_000 & info [ "rows" ] ~docv:"N" ~doc:"Rows to load.")
  in
  let image =
    Arg.(value & opt string "db.img" & info [ "image" ] ~docv:"FILE"
           ~doc:"Where to write the NVM image.")
  in
  Cmd.v
    (Cmd.info "load" ~doc:"Populate a database and save its NVM image.")
    Term.(const load $ jobs_arg $ rows $ image $ size_arg $ seed_arg)

(* -- restart -- *)

let restart jobs image size_mb trace =
  set_jobs jobs;
  arm_trace trace;
  let cfg = Engine.default_config ~size:(size_mb * mib) Engine.Nvm in
  Printf.printf "mapping %s ...\n%!" image;
  let engine, stats = Engine.open_image cfg image in
  Printf.printf "instant restart in %s\n" (Tabular.fmt_ns stats.Engine.wall_ns);
  (match stats.Engine.detail with
  | Engine.Rv_nvm { heap_open_ns; attach_ns; rollback_ns; heap_blocks; rolled_back_rows; tables; _ } ->
      Printf.printf
        "  heap scan %s (%d blocks) | attach %s (%d tables) | rollback %s (%d rows)\n"
        (Tabular.fmt_ns heap_open_ns) heap_blocks (Tabular.fmt_ns attach_ns)
        tables (Tabular.fmt_ns rollback_ns) rolled_back_rows
  | _ -> ());
  Engine.with_txn engine (fun txn ->
      Printf.printf "database is open: %d rows visible in %s, last CID %Ld\n"
        (Engine.count engine txn Ycsb.table_name)
        Ycsb.table_name (Engine.last_cid engine))

let restart_cmd =
  let image =
    Arg.(value & opt string "db.img" & info [ "image" ] ~docv:"FILE"
           ~doc:"NVM image written by $(b,load).")
  in
  Cmd.v
    (Cmd.info "restart" ~doc:"Instant restart from a saved NVM image.")
    Term.(const restart $ jobs_arg $ image $ size_arg $ trace_arg)

(* -- demo (log vs NVM) -- *)

let tmpdir () =
  let d = Filename.temp_file "hyrise_demo" "" in
  Sys.remove d;
  d

let demo jobs scales seed policy =
  set_jobs jobs;
  let now_ns () = Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1e9)) in
  let table =
    Tabular.create ~title:"restart time: log-based vs Hyrise-NV"
      [
        ("rows", Tabular.Right);
        ("data", Tabular.Right);
        ("log recovery", Tabular.Right);
        ("NVM recovery", Tabular.Right);
        ("speedup", Tabular.Right);
      ]
  in
  for s = 0 to scales - 1 do
    let rows = 2_000 * (1 lsl s) in
    let size = 64 * mib * (1 lsl s) in
    let run mk =
      let engine = mk () in
      set_policy engine policy;
      let cfg = { Ycsb.default_config with rows } in
      let sess = Ycsb.setup engine (Prng.create (Int64.of_int seed)) cfg in
      (* spec-driven: bodies declare their command form, so --log-policy
         genuinely shapes the replayed WAL *)
      ignore
        (Ycsb.run_specs sess
           (Ycsb.gen_specs sess
              (Prng.create (Int64.of_int (seed + 1)))
              ~ops:(rows / 10)));
      let bytes = Engine.data_bytes engine in
      let crashed = Engine.crash engine Region.Drop_unfenced in
      let t0 = now_ns () in
      let _engine, _ = Engine.recover crashed in
      (now_ns () - t0, bytes)
    in
    Printf.printf "scale %d (%d rows) ...\n%!" s rows;
    let log_ns, _ =
      run (fun () ->
          Engine.create
            {
              Engine.region = Region.config_with_size size;
              durability =
                Engine.Logging
                  { Wal.Log.dir = tmpdir (); group_commit_size = 8; fsync = false };
              salvage = None;
            })
    in
    let nvm_ns, bytes =
      run (fun () -> Engine.create (Engine.default_config ~size Engine.Nvm))
    in
    Tabular.add_row table
      [
        Tabular.fmt_int rows;
        Tabular.fmt_bytes bytes;
        Tabular.fmt_ns log_ns;
        Tabular.fmt_ns nvm_ns;
        Printf.sprintf "%.0fx" (float_of_int log_ns /. float_of_int nvm_ns);
      ]
  done;
  Tabular.print table

let demo_cmd =
  let scales =
    Arg.(value & opt int 3 & info [ "scales" ] ~docv:"N"
           ~doc:"Number of doubling dataset scales to compare.")
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"The demo paper's comparison: log vs NVM restart.")
    Term.(const demo $ jobs_arg $ scales $ seed_arg $ log_policy_arg)

(* -- torture -- *)

let torture jobs rounds seed =
  set_jobs jobs;
  let rng = Prng.create (Int64.of_int seed) in
  let engine = ref (Engine.create (Engine.default_config ~size:(64 * mib) Engine.Nvm)) in
  let sess = ref (Tpcc.setup !engine ~warehouses:2 ~districts_per_wh:3 ~customers_per_district:8) in
  for round = 1 to rounds do
    let stats = Tpcc.run !sess (Prng.split rng) ~ops:(50 + Prng.int rng 150) () in
    let before = Tpcc.total_orders !sess in
    let crashed = Engine.crash !engine (Region.Adversarial (Prng.split rng)) in
    let e2, rstats = Engine.recover crashed in
    engine := e2;
    sess := Tpcc.attach e2 ~warehouses:2 ~districts_per_wh:3 ~customers_per_district:8;
    let after = Tpcc.total_orders !sess in
    let ok = List.for_all snd (Tpcc.consistency_check !sess) && before = after in
    Printf.printf "round %2d: %3d committed, recovered in %8s, %s\n%!" round
      stats.Tpcc.committed
      (Tabular.fmt_ns rstats.Engine.wall_ns)
      (if ok then "consistent" else "INCONSISTENT");
    if not ok then exit 1
  done;
  Printf.printf "survived %d adversarial crashes\n" rounds

let torture_cmd =
  let rounds =
    Arg.(value & opt int 10 & info [ "rounds" ] ~docv:"N" ~doc:"Crash rounds.")
  in
  Cmd.v
    (Cmd.info "torture" ~doc:"Adversarial crash loop with invariant checks.")
    Term.(const torture $ jobs_arg $ rounds $ seed_arg)

(* -- sanitize -- *)

let sanitize jobs writers size_mb seed ops json =
  (* traced engines fan out like any other since the sanitizer merges
     per-lane traces at each join — --jobs N is the real lane count *)
  set_jobs jobs;
  let failures = ref 0 in
  let writers_used = ref 1 in
  let phase_docs = ref [] in
  let phase name f =
    Printf.printf "=== %s under the persist-order sanitizer (%d lane(s)) ===\n%!"
      name (Par.jobs ());
    let san = f () in
    print_string (Nvm.Sanitizer.report san);
    let c = Nvm.Sanitizer.correctness_violations san in
    (let module J = Obs.Json in
     let fields =
       match Nvm.Sanitizer.report_json san with J.Obj fs -> fs | d -> [ ("report", d) ]
     in
     phase_docs := J.Obj (("name", J.Str name) :: fields) :: !phase_docs);
    if c > 0 then begin
      Printf.printf "FAIL: %d correctness violation(s) in %s\n" c name;
      incr failures
    end
    else Printf.printf "OK: zero correctness violations in %s\n" name;
    print_newline ()
  in
  let cfg = Engine.default_config ~size:(size_mb * mib) Engine.Nvm in
  phase "YCSB" (fun () ->
      let rng = Prng.create (Int64.of_int seed) in
      let engine = Engine.create ~sanitize:true cfg in
      let w = arm_writers writers engine in
      writers_used := max !writers_used w;
      let ycfg = { Ycsb.default_config with rows = 2_000 } in
      let sess = Ycsb.setup engine (Prng.split rng) ycfg in
      (* with writers > 1 the run goes through the multi-lane pipeline,
         so the sanitizer sees lane-staged reads + the grouped seal *)
      let drive sess rng ~ops =
        if Engine.writers (Ycsb.engine sess) > 1 then
          ignore (Ycsb.run_specs sess (Ycsb.gen_specs sess rng ~ops))
        else ignore (Ycsb.run sess rng ~ops)
      in
      drive sess (Prng.split rng) ~ops;
      (* power-fail with adversarial eviction, recover under the same
         checker, keep working, then merge (the generation swap) *)
      let crashed = Engine.crash engine (Region.Adversarial (Prng.split rng)) in
      let e2, _ = Engine.recover crashed in
      ignore (arm_writers writers e2);
      let sess2 = Ycsb.attach e2 ycfg in
      drive sess2 (Prng.split rng) ~ops:(ops / 2);
      ignore (Engine.merge e2 Ycsb.table_name);
      Option.get (Engine.sanitizer e2));
  phase "TPC-C-lite" (fun () ->
      let rng = Prng.create (Int64.of_int (seed + 7)) in
      let engine = Engine.create ~sanitize:true cfg in
      let w = arm_writers writers engine in
      writers_used := max !writers_used w;
      let drive sess rng ~ops =
        if Engine.writers (Tpcc.engine sess) > 1 then
          ignore (Tpcc.run_specs sess (Tpcc.gen_specs sess rng ~ops ()))
        else ignore (Tpcc.run sess rng ~ops ())
      in
      let sess =
        Tpcc.setup engine ~warehouses:2 ~districts_per_wh:3
          ~customers_per_district:8
      in
      drive sess (Prng.split rng) ~ops;
      let crashed = Engine.crash engine (Region.Adversarial (Prng.split rng)) in
      let e2, _ = Engine.recover crashed in
      ignore (arm_writers writers e2);
      let sess2 =
        Tpcc.attach e2 ~warehouses:2 ~districts_per_wh:3
          ~customers_per_district:8
      in
      drive sess2 (Prng.split rng) ~ops:(ops / 2);
      Option.get (Engine.sanitizer e2));
  (match json with
  | None -> ()
  | Some path ->
      let module J = Obs.Json in
      let doc =
        J.Obj
          [
            ("experiment", J.Str "sanitize");
            ("jobs", J.Int (Par.jobs ()));
            ("writers", J.Int !writers_used);
            ("seed", J.Int seed);
            ("ops", J.Int ops);
            ("phases", J.List (List.rev !phase_docs));
            ("failures", J.Int !failures);
            ("registry", Obs.to_json ());
          ]
      in
      let oc = open_out path in
      output_string oc (J.pretty doc);
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s\n%!" path);
  if !failures > 0 then exit 1

let sanitize_cmd =
  let ops =
    Arg.(value & opt int 2_000 & info [ "ops" ] ~docv:"N"
           ~doc:"Operations per workload phase.")
  in
  let json =
    Arg.(value
         & opt ~vopt:(Some "BENCH_sanitize.json") (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Also write the violation tallies and counters as JSON \
                   (same shape as the BENCH_*.json artifacts; default \
                   $(docv) is BENCH_sanitize.json).")
  in
  Cmd.v
    (Cmd.info "sanitize"
       ~doc:"Run the workloads under the persist-order crash-consistency \
             checker (fanned out across --jobs lanes) and report \
             violations.")
    Term.(
      const sanitize $ jobs_arg $ writers_arg $ size_arg $ seed_arg $ ops
      $ json)

(* -- stats -- *)

let span_ns name =
  let h = Obs.histogram ("span." ^ name) in
  if Util.Histogram.count h = 0 then 0 else Util.Histogram.total h

let phase_table ~title parent phases =
  let wall = span_ns parent in
  let pct ns =
    if wall = 0 then "-"
    else Printf.sprintf "%.1f%%" (100. *. float_of_int ns /. float_of_int wall)
  in
  let t =
    Tabular.create ~title
      [ ("phase", Tabular.Left); ("time", Tabular.Right); ("share", Tabular.Right) ]
  in
  let sum =
    List.fold_left
      (fun acc p ->
        let ns = span_ns (parent ^ "." ^ p) in
        Tabular.add_row t [ p; Tabular.fmt_ns ns; pct ns ];
        acc + ns)
      0 phases
  in
  Tabular.add_row t [ "phase sum"; Tabular.fmt_ns sum; pct sum ];
  Tabular.add_row t [ "wall (" ^ parent ^ ")"; Tabular.fmt_ns wall; pct wall ];
  Tabular.print t;
  (sum, wall)

let stats jobs writers size_mb seed ops trace json policy =
  set_jobs jobs;
  arm_trace trace;
  Obs.set_enabled true;
  if not json then
    Printf.printf "jobs: %d (of %d recommended)\n\n" (Par.jobs ())
      (Domain.recommended_domain_count ());
  let rows = 5_000 in
  let walls = ref [] in
  let run_mode label mk_engine ~checkpoint_midway parent phases =
    let rng = Prng.create (Int64.of_int seed) in
    let engine = mk_engine () in
    set_policy engine policy;
    let ycfg = { Ycsb.default_config with rows } in
    let sess = Ycsb.setup engine (Prng.split rng) ycfg in
    (* spec-driven so transaction bodies declare their command form and
       --log-policy genuinely shapes the WAL (PROTOCOLS.md §14) *)
    let run_ops n =
      ignore (Ycsb.run_specs sess (Ycsb.gen_specs sess (Prng.split rng) ~ops:n))
    in
    run_ops (ops / 2);
    if checkpoint_midway then ignore (Engine.checkpoint engine);
    run_ops (ops - (ops / 2));
    let crashed = Engine.crash engine Region.Drop_unfenced in
    let e2, rstats = Engine.recover crashed in
    Engine.sync_metrics e2;
    walls := (label, rstats.Engine.wall_ns) :: !walls;
    if not json then begin
      let sum, wall = phase_table ~title:(label ^ " recovery") parent phases in
      Printf.printf
        "%s: recovered in %s; instrumented phases cover %.1f%% of the span wall\n\n"
        label
        (Tabular.fmt_ns rstats.Engine.wall_ns)
        (if wall = 0 then 0.
         else 100. *. float_of_int sum /. float_of_int wall)
    end
  in
  run_mode "NVM"
    (fun () -> Engine.create (Engine.default_config ~size:(size_mb * mib) Engine.Nvm))
    ~checkpoint_midway:false "recover.nvm"
    [ "heap_scan"; "attach"; "blackbox"; "verify"; "salvage"; "rollback" ];
  run_mode "log-based"
    (fun () ->
      Engine.create
        {
          Engine.region = Region.config_with_size (size_mb * mib);
          durability =
            Engine.Logging
              { Wal.Log.dir = tmpdir (); group_commit_size = 8; fsync = false };
          salvage = None;
        })
    ~checkpoint_midway:true "recover.log"
    [ "format"; "checkpoint_load"; "replay"; "reopen_log" ];
  (* exercise the block scan engine (main + delta) so the scan.* counters
     and the scan.block_ns histogram show up in the registry dump *)
  (let rng = Prng.create (Int64.of_int (seed + 13)) in
   let engine =
     Engine.create (Engine.default_config ~size:(size_mb * mib) Engine.Nvm)
   in
   let sess =
     Ycsb.setup engine (Prng.split rng) { Ycsb.default_config with rows }
   in
   ignore sess;
   ignore (Engine.merge engine Ycsb.table_name);
   ignore (Ycsb.run (Ycsb.attach engine Ycsb.default_config) (Prng.split rng) ~ops:(ops / 4));
   Engine.with_txn engine (fun txn ->
       let n =
         Engine.count_where engine txn Ycsb.table_name
           [ ("key", Query.Predicate.Cmp (Query.Predicate.Le, Storage.Value.Int (rows / 100))) ]
       in
       if not json then
         Printf.printf "block scan over %s: %d of %d rows match key <= %d\n\n"
           Ycsb.table_name n rows (rows / 100)));
  (* exercise the writer pipeline (default 2 lanes) so the txn.lane.* /
     commit.epoch.* counters and gauges are live in the registry dump *)
  let pipeline_writers = Option.value writers ~default:2 in
  (let rng = Prng.create (Int64.of_int (seed + 21)) in
   let engine =
     Engine.create (Engine.default_config ~size:(size_mb * mib) Engine.Nvm)
   in
   Engine.set_writers engine pipeline_writers;
   ignore (arm_writers None engine);
   let sess =
     Ycsb.setup engine (Prng.split rng) { Ycsb.default_config with rows = 1_000 }
   in
   let specs = Ycsb.gen_specs sess (Prng.split rng) ~ops:(max 8 (ops / 4)) in
   let st = Ycsb.run_specs sess specs in
   Engine.sync_metrics engine;
   if not json then begin
     let c name = Obs.counter_value (Obs.counter name) in
     Printf.printf
       "writer pipeline (%d lane(s) + committer): %d txns committed, %d \
        aborted | %d staged, %d re-executed | %d epochs sealed, %d grouped \
        txns (avg x100: %d)\n\n"
       (Engine.writers engine)
       (st.Ycsb.reads + st.Ycsb.updates + st.Ycsb.inserts)
       st.Ycsb.aborted (c "txn.lane.staged") (c "txn.lane.reexec")
       (c "commit.epoch.sealed")
       (c "commit.epoch.txns")
       (Obs.gauge_value (Obs.gauge "commit.epoch.avg_txns_x100"))
   end);
  if json then
    let module J = Obs.Json in
    print_endline
      (J.pretty
         (J.Obj
            [
              ("experiment", J.Str "stats");
              ("jobs", J.Int (Par.jobs ()));
              ("writers", J.Int pipeline_writers);
              ("seed", J.Int seed);
              ("ops", J.Int ops);
              ( "recovery_wall_ns",
                J.Obj (List.rev_map (fun (l, ns) -> (l, J.Int ns)) !walls) );
              ("registry", Obs.to_json ());
            ]))
  else print_string (Obs.render ())

let stats_cmd =
  let ops =
    Arg.(value & opt int 2_000 & info [ "ops" ] ~docv:"N"
           ~doc:"YCSB operations to run before the crash.")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Print one JSON object (recovery walls + the full metrics \
                 registry) instead of the human-readable tables.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Crash and recover under both durability modes, then print the \
             per-phase recovery breakdown and the full metrics registry.")
    Term.(
      const stats $ jobs_arg $ writers_arg $ size_arg $ seed_arg $ ops
      $ trace_arg $ json $ log_policy_arg)

(* -- scrub -- *)

(* Exit codes (documented in the man page and README):
     0  image verifies clean
     2  damage confined to individual tables (quarantinable/salvageable)
     3  structural damage — heap, catalog, or an unrecoverable image
   [--online] judges the residual instead: recovery runs the deep verify
   ladder, the serve-while-salvaging restore map drains (segment repairs,
   deferred rebuilds, reseals), and only damage that survives the heal
   counts toward the exit code. *)

let scrub jobs image size_mb shallow inject seed online =
  set_jobs jobs;
  let cfg = Engine.default_config ~size:(size_mb * mib) Engine.Nvm in
  let image =
    if inject = 0 then image
    else begin
      let region = Region.load_from_file cfg.Engine.region image in
      let rng = Prng.create (Int64.of_int seed) in
      for _ = 1 to inject do
        Region.inject_fault region rng
          (Region.random_fault region rng ~lo:0 ~hi:(Region.size region))
      done;
      let damaged = Filename.temp_file "hyrise_scrub" ".img" in
      Region.save_to_file region damaged;
      Printf.printf "injected %d media fault(s) (seed %d) -> %s\n%!" inject
        seed damaged;
      damaged
    end
  in
  Printf.printf "mapping %s ...\n%!" image;
  match Engine.open_image ~verify:(if online then `Deep else `Off) cfg image with
  | exception exn ->
      Printf.printf "UNRECOVERABLE  image did not attach: %s\n"
        (Printexc.to_string exn);
      exit 3
  | engine, _ ->
      let report = Engine.scrub ~deep:(not shallow) ~online engine in
      let crc = Obs.counter_value (Obs.counter "media.crc_failures") in
      if online then begin
        let c n = Obs.counter_value (Obs.counter n) in
        Printf.printf
          "online restore: %d segment(s) healed, %d table(s) rebuilt, %d \
           segment(s) still pending\n"
          (c "media.segment.salvaged")
          (c "media.salvaged_tables")
          (List.fold_left
             (fun acc (_, segs) -> acc + max 1 (List.length segs))
             0
             (Engine.quarantined_segments engine))
      end;
      if report = [] then begin
        Printf.printf "image is clean: %d table(s) verified, %d CRC failure(s)\n"
          (List.length (Engine.table_names engine)) crc;
        exit 0
      end;
      List.iter
        (fun (comp, reason) -> Printf.printf "DAMAGED  %-20s %s\n" comp reason)
        report;
      let structural =
        List.exists (fun (c, _) -> c = "heap" || c = "catalog") report
      in
      Printf.printf "%d damaged component(s), %d CRC failure(s) -> exit %d\n"
        (List.length report) crc
        (if structural then 3 else 2);
      exit (if structural then 3 else 2)

let scrub_cmd =
  let image =
    Arg.(value & opt string "db.img" & info [ "image" ] ~docv:"FILE"
           ~doc:"NVM image to verify (written by $(b,load)).")
  in
  let shallow =
    Arg.(value & flag & info [ "shallow" ]
           ~doc:"Structural checks only; skip payload checksum recomputation.")
  in
  let inject =
    Arg.(value & opt int 0 & info [ "inject" ] ~docv:"N"
           ~doc:"First inject $(docv) random media faults (deterministic per \
                 $(b,--seed)) into a scratch copy of the image, then scrub \
                 that copy. The original file is never modified.")
  in
  let online =
    Arg.(value & flag & info [ "online" ]
           ~doc:"Serve-while-salvaging audit: recover through the deep \
                 verify ladder, drain the online restore map (segment \
                 repairs, deferred rebuilds, reseals), then judge only the \
                 residual damage. Exit codes keep their offline meaning — \
                 0 now means $(i,healed or clean), 2 means damage survived \
                 the heal, 3 means structural damage.")
  in
  Cmd.v
    (Cmd.info "scrub"
       ~doc:"Verify every checksummed structure of an NVM image. Exits 0 if \
             clean, 2 if damage is confined to individual tables, 3 on \
             heap or catalog damage. With $(b,--online), heals what the \
             serve-while-salvaging restore path can repair first and judges \
             the residual.")
    Term.(const scrub $ jobs_arg $ image $ size_arg $ shallow $ inject
          $ seed_arg $ online)

(* -- blackbox -- *)

let print_timeline title events =
  if events = [] then Printf.printf "%s: (empty)\n" title
  else begin
    let t0 =
      List.fold_left (fun acc ev -> min acc ev.Obs.Event.t_ns) max_int events
    in
    Printf.printf "%s (%d record(s)):\n" title (List.length events);
    List.iter
      (fun ev ->
        let arg =
          (* phase markers carry a phase code, not a plain integer *)
          if ev.Obs.Event.kind = Obs.Event.Recovery_phase then
            Obs.Event.phase_name ev.Obs.Event.arg
          else string_of_int ev.Obs.Event.arg
        in
        Printf.printf "  %6d  lane %d  %-16s %-12s +%s\n" ev.Obs.Event.seq
          ev.Obs.Event.lane
          (Obs.Event.kind_name ev.Obs.Event.kind)
          arg
          (Tabular.fmt_ns (ev.Obs.Event.t_ns - t0)))
      events
  end

let blackbox_json ~seed bb =
  let module J = Obs.Json in
  let abs = function Some t -> J.Int t | None -> J.Null in
  let rel m =
    match (bb.Engine.recovery_begin_ns, m) with
    | Some t0, Some t -> J.Int (t - t0)
    | _ -> J.Null
  in
  let timeline evs =
    J.Obj
      [
        ("records", J.Int (List.length evs));
        ("events", J.List (List.map Obs.Event.to_json evs));
      ]
  in
  J.Obj
    [
      ("experiment", J.Str "blackbox");
      ("jobs", J.Int (Par.jobs ()));
      ("seed", J.Int seed);
      ("precrash", timeline bb.Engine.precrash);
      ("restart", timeline bb.Engine.restart);
      ("truncated_lanes", J.Int bb.Engine.truncated_lanes);
      ( "markers",
        J.Obj
          [
            ("recovery_begin_ns", abs bb.Engine.recovery_begin_ns);
            ("engine_ready_ns", abs bb.Engine.engine_ready_ns);
            ("full_health_ns", abs bb.Engine.full_health_ns);
            ("engine_ready_rel_ns", rel bb.Engine.engine_ready_ns);
            ("full_health_rel_ns", rel bb.Engine.full_health_ns);
          ] );
      ("registry", Obs.to_json ());
    ]

let blackbox jobs image size_mb seed ops faults trace json =
  set_jobs jobs;
  arm_trace trace;
  let cfg = Engine.default_config ~size:(size_mb * mib) Engine.Nvm in
  let engine, selftest =
    match image with
    | Some file ->
        Printf.printf "mapping %s ...\n%!" file;
        let e, _ = Engine.open_image cfg file in
        (e, false)
    | None ->
        (* self-test: run a workload, optionally wound the media, pull the
           plug adversarially, restart — then read the black box back *)
        let rng = Prng.create (Int64.of_int seed) in
        let e =
          Engine.create
            {
              cfg with
              Engine.salvage =
                Some
                  { Wal.Log.dir = tmpdir (); group_commit_size = 8; fsync = false };
            }
        in
        let sess =
          Ycsb.setup e (Prng.split rng) { Ycsb.default_config with rows = 2_000 }
        in
        ignore (Ycsb.run sess (Prng.split rng) ~ops:(ops / 2));
        ignore (Engine.checkpoint e);
        ignore (Ycsb.run sess (Prng.split rng) ~ops:(ops - (ops / 2)));
        (* wound the media last, so the fault-injected events sit at the
           tail of the timeline: the black box names what preceded the
           power cut even after the ring has wrapped *)
        if faults > 0 then Engine.inject_faults e (Prng.split rng) faults;
        Printf.printf
          "ran %d op(s), injected %d fault(s); adversarial power cut ...\n%!"
          ops faults;
        let crashed = Engine.crash e (Region.Adversarial (Prng.split rng)) in
        let e2, rstats = Engine.recover crashed in
        Printf.printf "recovered in %s\n" (Tabular.fmt_ns rstats.Engine.wall_ns);
        (e2, true)
  in
  let bb = Engine.blackbox engine in
  print_timeline "pre-crash timeline" bb.Engine.precrash;
  if bb.Engine.truncated_lanes > 0 then
    Printf.printf "  (%d lane(s) truncated at a torn or corrupt record)\n"
      bb.Engine.truncated_lanes;
  print_newline ();
  print_timeline "restart timeline" bb.Engine.restart;
  (match (bb.Engine.recovery_begin_ns, bb.Engine.engine_ready_ns) with
  | Some t0, Some t ->
      Printf.printf "\nengine-ready %s after recovery-begin" (Tabular.fmt_ns (t - t0));
      (match bb.Engine.full_health_ns with
      | Some th -> Printf.printf "; full-health %s after\n" (Tabular.fmt_ns (th - t0))
      | None -> print_string "; full-health not reached (tables quarantined)\n")
  | _ -> print_endline "\nno engine-ready marker recorded");
  (match json with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Obs.Json.pretty (blackbox_json ~seed bb));
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s\n%!" path);
  let ok =
    bb.Engine.engine_ready_ns <> None
    && ((not selftest) || bb.Engine.precrash <> [])
  in
  if not ok then begin
    print_endline "FAIL: black box did not reconstruct the expected timeline";
    exit 1
  end

let blackbox_cmd =
  let image =
    Arg.(value & opt (some string) None & info [ "image" ] ~docv:"FILE"
           ~doc:"Read the flight recorder out of a saved NVM image (written \
                 by $(b,load)) instead of running the crash self-test.")
  in
  let ops =
    Arg.(value & opt int 600 & info [ "ops" ] ~docv:"N"
           ~doc:"YCSB operations to run before the self-test crash.")
  in
  let faults =
    Arg.(value & opt int 0 & info [ "faults" ] ~docv:"N"
           ~doc:"Media faults to inject before the self-test crash; each is \
                 recorded as a $(b,fault-injected) event, so the black box \
                 names the damage that preceded the power cut.")
  in
  let json =
    Arg.(value
         & opt ~vopt:(Some "BENCH_blackbox.json") (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Also write the decoded timelines, markers, and metrics \
                   registry as JSON (default $(docv) is BENCH_blackbox.json).")
  in
  Cmd.v
    (Cmd.info "blackbox"
       ~doc:"Dump the NVM-resident flight recorder: the pre-crash timeline \
             decoded from the ring (truncated at torn records) plus the \
             restart timeline with the engine-ready / full-health markers. \
             Without $(b,--image), runs a crash self-test first. Exits 1 if \
             the timeline fails to reconstruct.")
    Term.(const blackbox $ jobs_arg $ image $ size_arg $ seed_arg $ ops
          $ faults $ trace_arg $ json)

(* -- repl -- *)

let repl jobs size_mb seed execute =
  set_jobs jobs;
  let engine =
    ref (Engine.create (Engine.default_config ~size:(size_mb * mib) Engine.Nvm))
  in
  let crash_rng = Prng.create (Int64.of_int seed) in
  let run_line line =
    let line = String.trim line in
    if line = "" then ()
    else
      match String.lowercase_ascii line with
      | "exit" | "quit" -> raise Exit
      | ".stats" ->
          (* dot-command alias for the SQL STATS statement *)
          print_endline (Repl.Sql.execute !engine Repl.Sql.Stats)
      | "crash" ->
          (* the REPL-level power switch: adversarial crash + instant
             restart, so the user can watch committed data survive *)
          let crashed = Engine.crash !engine (Region.Adversarial crash_rng) in
          let e2, stats = Engine.recover crashed in
          engine := e2;
          Printf.printf "power failed; instant restart in %s (last CID %Ld)\n"
            (Tabular.fmt_ns stats.Engine.wall_ns)
            (Engine.last_cid e2)
      | _ -> (
          match Repl.Sql.parse line with
          | stmt -> (
              try print_endline (Repl.Sql.execute !engine stmt) with
              | Txn.Mvcc.Write_conflict m -> Printf.printf "conflict: %s\n" m
              | Invalid_argument m | Failure m -> Printf.printf "error: %s\n" m
              | Not_found -> print_endline "error: no such table")
          | exception Repl.Sql.Parse_error m -> Printf.printf "parse error: %s\n" m)
  in
  match execute with
  | Some stmts -> List.iter run_line (String.split_on_char ';' stmts)
  | None -> (
      print_endline "Hyrise-NV SQL repl — HELP for syntax, CRASH to test the headline, EXIT to quit";
      try
        while true do
          print_string "hyrise-nv> ";
          run_line (read_line ())
        done
      with Exit | End_of_file -> print_endline "bye")

let repl_cmd =
  let execute =
    Arg.(value & opt (some string) None
           & info [ "e"; "execute" ] ~docv:"SQL"
               ~doc:"Run semicolon-separated statements and exit.")
  in
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive SQL shell over an NVM engine.")
    Term.(const repl $ jobs_arg $ size_arg $ seed_arg $ execute)

let () =
  let man =
    [
      `S Manpage.s_description;
      `P "A reproduction of Hyrise-NV: an in-memory columnar database whose \
          primary data and MVCC state live in (simulated) non-volatile \
          memory, giving restart times independent of dataset size.";
      `S Manpage.s_commands;
      `P "$(b,load)     Populate a database and save its NVM image.";
      `Noblank;
      `P "$(b,restart)  Instant restart from a saved NVM image.";
      `Noblank;
      `P "$(b,demo)     The demo paper's comparison: log vs NVM restart.";
      `Noblank;
      `P "$(b,torture)  Adversarial crash loop with invariant checks.";
      `Noblank;
      `P "$(b,sanitize) Run workloads under the persist-order checker.";
      `Noblank;
      `P "$(b,stats)    Per-phase recovery breakdown + metrics registry.";
      `Noblank;
      `P "$(b,scrub)    Verify an image's checksums; exit 0/2/3 by damage.";
      `Noblank;
      `P "$(b,blackbox) Dump the crash-surviving flight recorder's timelines.";
      `Noblank;
      `P "$(b,repl)     Interactive SQL shell over an NVM engine.";
      `P "Benchmarks (recovery scaling, throughput, BENCH_*.json emission) \
          live in a separate binary: $(b,bench/main.exe).";
    ]
  in
  let info =
    Cmd.info "hyrise_nv" ~version:"1.0.0"
      ~doc:"Hyrise-NV: instant restarts of an in-memory database on NVM" ~man
  in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group info ~default
          [
            load_cmd;
            restart_cmd;
            demo_cmd;
            torture_cmd;
            sanitize_cmd;
            stats_cmd;
            scrub_cmd;
            blackbox_cmd;
            repl_cmd;
          ]))
