module Table = Storage.Table
module Schema = Storage.Schema
module Value = Storage.Value

type spec = Count | Sum of string | Avg of string | Min of string | Max of string

type cell = Num of float | Val of Value.t | Null

type acc = {
  mutable count : int;
  mutable sum : float;
  mutable minv : Value.t option;
  mutable maxv : Value.t option;
}

type result = { groups : (Value.t option * cell array) list }

let numeric = function
  | Value.Int i -> float_of_int i
  | Value.Float f -> f
  | v ->
      invalid_arg
        (Printf.sprintf "Aggregate: non-numeric value %s" (Value.to_string v))

let col_of table name = Schema.find_column (Table.schema table) name

let run ?impl ?gate txn table ?group_by ~specs ~filters () =
  let key_col = Option.map (col_of table) group_by in
  let spec_cols =
    List.map
      (function
        | Count -> (Count, -1)
        | Sum c -> (Sum c, col_of table c)
        | Avg c -> (Avg c, col_of table c)
        | Min c -> (Min c, col_of table c)
        | Max c -> (Max c, col_of table c))
      specs
  in
  (* each spec becomes one fold closure, compiled once: the per-row loop
     is a closure-array walk with no spec dispatch or list traversal *)
  let folds =
    Array.of_list
      (List.map
         (fun (spec, ci) ->
           match spec with
           | Count -> fun (a : acc) _r -> a.count <- a.count + 1
           | Sum _ | Avg _ ->
               fun a r ->
                 a.count <- a.count + 1;
                 a.sum <- a.sum +. numeric (Table.get table r ci)
           | Min _ ->
               fun a r ->
                 a.count <- a.count + 1;
                 let v = Table.get table r ci in
                 a.minv <-
                   (match a.minv with
                   | None -> Some v
                   | Some m -> if Value.compare v m < 0 then Some v else Some m)
           | Max _ ->
               fun a r ->
                 a.count <- a.count + 1;
                 let v = Table.get table r ci in
                 a.maxv <-
                   (match a.maxv with
                   | None -> Some v
                   | Some m -> if Value.compare v m > 0 then Some v else Some m))
         spec_cols)
  in
  let nspecs = Array.length folds in
  let groups : (Value.t option, acc array) Hashtbl.t = Hashtbl.create 16 in
  let get_group k =
    match Hashtbl.find_opt groups k with
    | Some a -> a
    | None ->
        let a =
          Array.init nspecs (fun _ ->
              { count = 0; sum = 0.0; minv = None; maxv = None })
        in
        Hashtbl.replace groups k a;
        a
  in
  (* ungrouped aggregation has exactly one accumulator set — resolve it
     outside the row loop *)
  let ungrouped = if key_col = None then Some (get_group None) else None in
  Scan.run ?impl ?gate txn table ~filters (fun r ->
      let accs =
        match ungrouped with
        | Some accs -> accs
        | None ->
            get_group (Option.map (fun ci -> Table.get table r ci) key_col)
      in
      for i = 0 to nspecs - 1 do
        folds.(i) accs.(i) r
      done);
  let cell spec a =
    match spec with
    | Count -> Num (float_of_int a.count)
    | Sum _ -> Num a.sum
    | Avg _ -> if a.count = 0 then Null else Num (a.sum /. float_of_int a.count)
    | Min _ -> ( match a.minv with Some v -> Val v | None -> Null)
    | Max _ -> ( match a.maxv with Some v -> Val v | None -> Null)
  in
  let rows =
    Hashtbl.fold
      (fun k accs rest ->
        (k, Array.of_list (List.mapi (fun i (spec, _) -> cell spec accs.(i)) spec_cols))
        :: rest)
      groups []
  in
  let rows =
    (* ungrouped aggregation over zero rows still yields one group *)
    if rows = [] && key_col = None then
      [ (None, Array.of_list (List.map (fun (spec, _) ->
          match spec with Count | Sum _ -> Num 0.0 | _ -> Null) spec_cols)) ]
    else rows
  in
  let compare_keys a b =
    match (fst a, fst b) with
    | None, None -> 0
    | None, Some _ -> -1
    | Some _, None -> 1
    | Some x, Some y -> Value.compare x y
  in
  { groups = List.sort compare_keys rows }

let cell_to_string = function
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        string_of_int (int_of_float f)
      else Printf.sprintf "%g" f
  | Val v -> Value.to_string v
  | Null -> "null"
