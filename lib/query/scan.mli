(** Filtered table scans in value-id space.

    A scan compiles every filter once per partition ({!Predicate}), then
    filters the attribute vectors and applies MVCC visibility. Two
    engines share that contract:

    - [`Block] (default) — block-at-a-time: 1024-row blocks are
      bulk-decoded with one region read per column ({!Pstruct.Pbitvec}
      word-wise unpacking on the main, {!Pstruct.Pvector} block reads on
      the delta), predicates run cheapest-first as selection-vector
      kernels ({!Kernel}), and visibility is one batched pass over
      bulk-read CID vectors — skipped entirely for blocks the filters
      emptied. Visibility is block-granular: CIDs are read before the
      callback runs over a block, so a callback mutating rows of the same
      block would not see its own effect until the next block (nothing in
      the engine does this).
    - [`Row] — the row-at-a-time reference engine (one to two region
      reads per row per predicate, per-row visibility); kept as the
      oracle the block engine is differentially tested and benchmarked
      against.

    Both engines observe [delta_rows] once at scan start, so rows
    appended mid-scan are never delivered.

    Metrics (always-on counters): [scan.blocks], [scan.rows_in] (rows
    entering filter kernels), [scan.rows_out] (rows delivered). With the
    tracer armed ({!Obs.set_enabled}), per-block wall time lands in the
    [scan.block_ns] histogram. *)

type filter = { col : string; pred : Predicate.t }

type impl = [ `Block | `Row ]

val block_rows : int
(** Rows per block of the block engine (1024). *)

val run :
  ?impl:impl ->
  ?gate:(pos:int -> len:int -> unit) ->
  Txn.Mvcc.txn ->
  Storage.Table.t ->
  filters:filter list ->
  (int -> unit) ->
  unit
(** Invoke the callback with every visible, matching physical row id, in
    row order.

    [?gate] is the serve-while-salvaging restore-on-demand hook: it runs
    before each block is decoded, with the block's global row range
    ([pos] counts main rows then delta rows, the same physical row-id
    space the callback sees). The engine points it at
    [Core.Restore.touch_rows] so a block touching a quarantined segment
    salvages exactly that segment first. A gated [`Block] scan never
    takes the parallel path — the gate may write NVM, which worker lanes
    must not (PROTOCOLS.md §10); [`Row] gates the whole table up front. *)

val select :
  ?impl:impl ->
  ?gate:(pos:int -> len:int -> unit) ->
  Txn.Mvcc.txn ->
  Storage.Table.t ->
  filters:filter list ->
  (int * Storage.Value.t array) list
(** Materialized variant. *)

val count :
  ?impl:impl ->
  ?gate:(pos:int -> len:int -> unit) ->
  Txn.Mvcc.txn ->
  Storage.Table.t ->
  filters:filter list ->
  int
