(* Selection-vector kernels over decoded value-id blocks.

   A selection vector holds block-local positions of surviving rows in
   ascending order. Kernels are branch-free where it pays: the store
   happens unconditionally and the write cursor advances by the predicate
   outcome, so the hot Vid_range loop compiles to compares and adds with
   no data-dependent branch. *)

type sel = { mutable data : int array; mutable len : int }

let create capacity = { data = Array.make (max capacity 1) 0; len = 0 }

(* Relative evaluation cost per row, for cheapest-predicate-first
   ordering: short-circuits are free, range compares beat hashtable
   probes. *)
let cost = function
  | Predicate.Nothing | Predicate.Everything -> 0
  | Predicate.Vid_range _ -> 1
  | Predicate.Vid_set _ | Predicate.Vid_complement _ -> 2

let fill_all sel count =
  let d = sel.data in
  for i = 0 to count - 1 do
    d.(i) <- i
  done;
  sel.len <- count

let eval_into c vids ~count sel =
  match c with
  | Predicate.Nothing -> sel.len <- 0
  | Predicate.Everything -> fill_all sel count
  | Predicate.Vid_range (lo, hi) ->
      let d = sel.data in
      let n = ref 0 in
      for i = 0 to count - 1 do
        let v = vids.(i) in
        d.(!n) <- i;
        n := !n + Bool.to_int (lo <= v && v <= hi)
      done;
      sel.len <- !n
  | Predicate.Vid_set s ->
      let d = sel.data in
      let n = ref 0 in
      for i = 0 to count - 1 do
        d.(!n) <- i;
        n := !n + Bool.to_int (Hashtbl.mem s vids.(i))
      done;
      sel.len <- !n
  | Predicate.Vid_complement s ->
      let d = sel.data in
      let n = ref 0 in
      for i = 0 to count - 1 do
        d.(!n) <- i;
        n := !n + Bool.to_int (not (Hashtbl.mem s vids.(i)))
      done;
      sel.len <- !n

let refine c vids sel =
  match c with
  | Predicate.Everything -> ()
  | Predicate.Nothing -> sel.len <- 0
  | Predicate.Vid_range (lo, hi) ->
      let d = sel.data in
      let n = ref 0 in
      for k = 0 to sel.len - 1 do
        let p = d.(k) in
        let v = vids.(p) in
        d.(!n) <- p;
        n := !n + Bool.to_int (lo <= v && v <= hi)
      done;
      sel.len <- !n
  | Predicate.Vid_set s ->
      let d = sel.data in
      let n = ref 0 in
      for k = 0 to sel.len - 1 do
        let p = d.(k) in
        d.(!n) <- p;
        n := !n + Bool.to_int (Hashtbl.mem s vids.(p))
      done;
      sel.len <- !n
  | Predicate.Vid_complement s ->
      let d = sel.data in
      let n = ref 0 in
      for k = 0 to sel.len - 1 do
        let p = d.(k) in
        d.(!n) <- p;
        n := !n + Bool.to_int (not (Hashtbl.mem s vids.(p)))
      done;
      sel.len <- !n
