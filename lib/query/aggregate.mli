(** Grouped aggregation over filtered scans.

    Runs a {!Scan} and folds each surviving row into per-group
    accumulators. The spec list is compiled once per call into an array
    of fold closures — the per-row cost is a closure-array walk, with no
    per-row spec dispatch. Numeric aggregates accept [Int] and [Float]
    columns (results as floats); [Min]/[Max] work on any type by semantic
    comparison. *)

type spec =
  | Count
  | Sum of string
  | Avg of string
  | Min of string
  | Max of string

type cell = Num of float | Val of Storage.Value.t | Null
(** [Null] when the group matched no non-null inputs (empty [Min]/[Max]). *)

type result = {
  groups : (Storage.Value.t option * cell array) list;
      (** group key ([None] when ungrouped) -> one cell per spec, groups
          sorted by key *)
}

val run :
  ?impl:Scan.impl ->
  ?gate:(pos:int -> len:int -> unit) ->
  Txn.Mvcc.txn ->
  Storage.Table.t ->
  ?group_by:string ->
  specs:spec list ->
  filters:Scan.filter list ->
  unit ->
  result
(** [?impl] selects the scan engine (default [`Block]); results are
    identical either way. [?gate] is forwarded to {!Scan.run} — the
    restore-on-demand hook for scans over quarantined tables. *)

val cell_to_string : cell -> string
