module Table = Storage.Table
module Schema = Storage.Schema
module Mvcc = Txn.Mvcc

type filter = { col : string; pred : Predicate.t }

type impl = [ `Block | `Row ]

let block_rows = 1024

let c_blocks = Obs.counter "scan.blocks"
let c_rows_in = Obs.counter "scan.rows_in"
let c_rows_out = Obs.counter "scan.rows_out"
let h_block_ns = Obs.histogram "scan.block_ns"

let now_ns () = Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1e9))

let compile_cols table ~filters =
  List.map
    (fun { col; pred } -> (Schema.find_column (Table.schema table) col, pred))
    filters

(* ------------------------------------------------------------------ *)
(* Row-at-a-time reference engine: one to two region reads per row per
   predicate, one visibility check per surviving row. Kept as the oracle
   the block engine is differentially tested against. *)

let run_row txn table ~filters f =
  let alloc = Table.allocator table in
  let cols = compile_cols table ~filters in
  let main_compiled =
    List.map
      (fun (ci, pred) -> (ci, Predicate.compile_main alloc table ~col:ci pred))
      cols
  in
  let delta_compiled =
    List.map
      (fun (ci, pred) -> (ci, Predicate.compile_delta alloc table ~col:ci pred))
      cols
  in
  let main_rows = Table.main_rows table in
  for r = 0 to main_rows - 1 do
    if
      List.for_all
        (fun (ci, c) -> Predicate.matches c (Table.main_vid table ci r))
        main_compiled
      && Mvcc.row_visible txn table r
    then f r
  done;
  for p = 0 to Table.delta_rows table - 1 do
    if
      List.for_all
        (fun (ci, c) -> Predicate.matches c (Table.delta_vid table ci p))
        delta_compiled
      && Mvcc.row_visible txn table (main_rows + p)
    then f (main_rows + p)
  done

(* ------------------------------------------------------------------ *)
(* Block-at-a-time engine. Per 1024-row block: bulk-decode one column at
   a time into a reusable buffer (predicates ordered cheapest first, each
   refining the selection vector, empty selections bailing out before the
   next column is even decoded), then one batched visibility pass over
   bulk-read CID arrays — touched only if any row survived the filters.

   Visibility is read per block, before the callback runs, so a callback
   that invalidates a row later in the same block still sees that row
   delivered (block-granular snapshot; nothing in the engine mutates rows
   from inside a scan callback). *)

let is_nothing = function Predicate.Nothing -> true | _ -> false
let is_everything = function Predicate.Everything -> true | _ -> false

(* compile, drop Everything, sort cheapest first; None when any predicate
   is unsatisfiable — the whole partition is skipped *)
let prep compile cols =
  let compiled = List.map (fun (ci, pred) -> (ci, compile ci pred)) cols in
  if List.exists (fun (_, c) -> is_nothing c) compiled then None
  else
    let live = List.filter (fun (_, c) -> not (is_everything c)) compiled in
    let arr = Array.of_list live in
    Array.sort (fun (_, a) (_, b) -> compare (Kernel.cost a) (Kernel.cost b)) arr;
    Some arr

let scan_partition ?gate ~base ~count ~vids_into ~read_cids preds f =
  if count > 0 then begin
    let vids = Array.make block_rows 0 in
    let sel = Kernel.create block_rows in
    let npreds = Array.length preds in
    let pos = ref 0 in
    while !pos < count do
      let len = min block_rows (count - !pos) in
      (* restore-on-demand hook: global row coordinates of the block the
         engine is about to read — a quarantined segment under it gets
         salvaged right here, before the first decode touches it *)
      (match gate with
      | Some g -> g ~pos:(base + !pos) ~len
      | None -> ());
      let t0 = if Obs.is_enabled () then now_ns () else 0 in
      Obs.incr c_blocks;
      Obs.add c_rows_in len;
      if npreds = 0 then Kernel.fill_all sel len
      else begin
        let ci0, c0 = preds.(0) in
        vids_into ci0 ~pos:!pos ~len vids;
        Kernel.eval_into c0 vids ~count:len sel;
        let i = ref 1 in
        while !i < npreds && sel.Kernel.len > 0 do
          let ci, c = preds.(!i) in
          vids_into ci ~pos:!pos ~len vids;
          Kernel.refine c vids sel;
          incr i
        done
      end;
      (* CIDs are read lazily: a block the filters emptied never touches
         the MVCC vectors at all *)
      if sel.Kernel.len > 0 then
        sel.Kernel.len <- read_cids ~pos:!pos ~len ~base sel;
      Obs.add c_rows_out sel.Kernel.len;
      if Obs.is_enabled () then
        Util.Histogram.record h_block_ns (now_ns () - t0);
      let d = sel.Kernel.data in
      let row0 = base + !pos in
      for k = 0 to sel.Kernel.len - 1 do
        f (row0 + d.(k))
      done;
      pos := !pos + len
    done
  end

let run_block ?gate txn table ~filters f =
  let alloc = Table.allocator table in
  let cols = compile_cols table ~filters in
  let main_rows = Table.main_rows table in
  let delta_rows = Table.delta_rows table in
  let end_cids = Array.make block_rows 0 in
  let begin_cids = Array.make block_rows 0 in
  (match
     prep (fun ci pred -> Predicate.compile_main alloc table ~col:ci pred) cols
   with
  | None -> ()
  | Some preds ->
      let read_cids ~pos ~len ~base sel =
        (* sparse selections gather per survivor (n loads); dense ones
           amortize better with one bulk read (len loads) *)
        let n = sel.Kernel.len in
        if n * 2 < len then
          Table.main_end_cids_gather table ~pos sel.Kernel.data n end_cids
        else Table.main_end_cids_into table ~pos ~len end_cids;
        Mvcc.visible_block txn table ~base:(base + pos) ~end_cids
          sel.Kernel.data sel.Kernel.len
      in
      scan_partition ?gate ~base:0 ~count:main_rows
        ~vids_into:(fun ci ~pos ~len dst ->
          Table.main_vids_into table ci ~pos ~len dst)
        ~read_cids preds f);
  match
    prep (fun ci pred -> Predicate.compile_delta alloc table ~col:ci pred) cols
  with
  | None -> ()
  | Some preds ->
      let read_cids ~pos ~len ~base sel =
        let n = sel.Kernel.len in
        if n * 2 < len then begin
          Table.delta_begin_cids_gather table ~pos sel.Kernel.data n begin_cids;
          Table.delta_end_cids_gather table ~pos sel.Kernel.data n end_cids
        end
        else begin
          Table.delta_begin_cids_into table ~pos ~len begin_cids;
          Table.delta_end_cids_into table ~pos ~len end_cids
        end;
        Mvcc.visible_block txn table
          ~base:(base + pos)
          ~begin_cids ~end_cids sel.Kernel.data sel.Kernel.len
      in
      scan_partition ?gate ~base:main_rows ~count:delta_rows
        ~vids_into:(fun ci ~pos ~len dst ->
          Table.delta_vids_into table ci ~pos ~len dst)
        ~read_cids preds f

(* ------------------------------------------------------------------ *)
(* Parallel block engine: the same kernel pipeline, fanned out over the
   pool. Chunks are whole numbers of blocks, so block boundaries — and
   with them every bulk read, every sparse-vs-dense CID decision and the
   block-granular visibility snapshot — are exactly the serial engine's;
   each chunk decodes into private buffers and collects its matches into
   a private row buffer; the caller then replays the buffers in chunk
   order, so the callback sees the identical row sequence the serial scan
   would produce. The callback itself (aggregate folds, [Table.get]
   decodes of [select]) always runs on the caller's domain.

   Workers touch only Region reads and per-slot scratch; the Obs
   counters and the per-block histogram are accumulated chunk-locally
   and flushed by the caller after the join (PROTOCOLS.md §10). *)

type chunk_tally = {
  mutable ct_blocks : int;
  mutable ct_rows_in : int;
  mutable ct_rows_out : int;
}

let scan_partition_par ~base ~count ~vids_into ~mk_read_cids preds f =
  if count > 0 then begin
    let lanes = Par.jobs () in
    let nblocks = (count + block_rows - 1) / block_rows in
    let blocks_per_chunk =
      max 1 ((nblocks + (lanes * 4) - 1) / (lanes * 4))
    in
    let chunk = blocks_per_chunk * block_rows in
    let npreds = Array.length preds in
    let results =
      Par.map_chunks ~chunk ~n:count (fun ~lo ~hi ->
          let vids = Array.make block_rows 0 in
          let sel = Kernel.create block_rows in
          let begin_cids = Array.make block_rows 0 in
          let end_cids = Array.make block_rows 0 in
          let read_cids = mk_read_cids ~begin_cids ~end_cids in
          let rows = Util.Intbuf.create 256 in
          let block_ns = Util.Intbuf.create 16 in
          let tally = { ct_blocks = 0; ct_rows_in = 0; ct_rows_out = 0 } in
          let pos = ref lo in
          while !pos < hi do
            let len = min block_rows (hi - !pos) in
            let t0 = if Obs.is_enabled () then now_ns () else 0 in
            tally.ct_blocks <- tally.ct_blocks + 1;
            tally.ct_rows_in <- tally.ct_rows_in + len;
            if npreds = 0 then Kernel.fill_all sel len
            else begin
              let ci0, c0 = preds.(0) in
              vids_into ci0 ~pos:!pos ~len vids;
              Kernel.eval_into c0 vids ~count:len sel;
              let i = ref 1 in
              while !i < npreds && sel.Kernel.len > 0 do
                let ci, c = preds.(!i) in
                vids_into ci ~pos:!pos ~len vids;
                Kernel.refine c vids sel;
                incr i
              done
            end;
            if sel.Kernel.len > 0 then
              sel.Kernel.len <- read_cids ~pos:!pos ~len ~base sel;
            tally.ct_rows_out <- tally.ct_rows_out + sel.Kernel.len;
            if Obs.is_enabled () then
              Util.Intbuf.push block_ns (now_ns () - t0);
            let d = sel.Kernel.data in
            let row0 = base + !pos in
            for k = 0 to sel.Kernel.len - 1 do
              Util.Intbuf.push rows (row0 + d.(k))
            done;
            pos := !pos + len
          done;
          (rows, block_ns, tally))
    in
    Array.iter
      (fun (rows, block_ns, tally) ->
        Obs.add c_blocks tally.ct_blocks;
        Obs.add c_rows_in tally.ct_rows_in;
        Obs.add c_rows_out tally.ct_rows_out;
        Util.Intbuf.iter (Util.Histogram.record h_block_ns) block_ns;
        Util.Intbuf.iter f rows)
      results
  end

let run_block_par txn table ~filters f =
  let alloc = Table.allocator table in
  let cols = compile_cols table ~filters in
  let main_rows = Table.main_rows table in
  let delta_rows = Table.delta_rows table in
  (match
     prep (fun ci pred -> Predicate.compile_main alloc table ~col:ci pred) cols
   with
  | None -> ()
  | Some preds ->
      let mk_read_cids ~begin_cids:_ ~end_cids ~pos ~len ~base sel =
        let n = sel.Kernel.len in
        if n * 2 < len then
          Table.main_end_cids_gather table ~pos sel.Kernel.data n end_cids
        else Table.main_end_cids_into table ~pos ~len end_cids;
        Mvcc.visible_block txn table ~base:(base + pos) ~end_cids
          sel.Kernel.data sel.Kernel.len
      in
      scan_partition_par ~base:0 ~count:main_rows
        ~vids_into:(fun ci ~pos ~len dst ->
          Table.main_vids_into table ci ~pos ~len dst)
        ~mk_read_cids preds f);
  match
    prep (fun ci pred -> Predicate.compile_delta alloc table ~col:ci pred) cols
  with
  | None -> ()
  | Some preds ->
      let mk_read_cids ~begin_cids ~end_cids ~pos ~len ~base sel =
        let n = sel.Kernel.len in
        if n * 2 < len then begin
          Table.delta_begin_cids_gather table ~pos sel.Kernel.data n begin_cids;
          Table.delta_end_cids_gather table ~pos sel.Kernel.data n end_cids
        end
        else begin
          Table.delta_begin_cids_into table ~pos ~len begin_cids;
          Table.delta_end_cids_into table ~pos ~len end_cids
        end;
        Mvcc.visible_block txn table
          ~base:(base + pos)
          ~begin_cids ~end_cids sel.Kernel.data sel.Kernel.len
      in
      scan_partition_par ~base:main_rows ~count:delta_rows
        ~vids_into:(fun ci ~pos ~len dst ->
          Table.delta_vids_into table ci ~pos ~len dst)
        ~mk_read_cids preds f

let run ?(impl = `Block) ?gate txn table ~filters f =
  match impl with
  | `Block -> (
      match gate with
      | Some _ ->
          (* a gate means quarantined segments may need restoring mid-scan
             — NVM writes, which worker lanes must never issue (§10), so a
             gated scan stays serial. The engine pre-restores the table
             instead when it wants the fan-out. *)
          run_block ?gate txn table ~filters f
      | None ->
          (* traced (sanitizer) runs fan out like any other — the sanitizer
             buffers per-lane traces and merges at the join (PROTOCOLS.md
             §10); tiny tables aren't worth the fan-out *)
          if
            Par.jobs () > 1
            && Table.main_rows table + Table.delta_rows table > block_rows
          then run_block_par txn table ~filters f
          else run_block txn table ~filters f)
  | `Row ->
      (* the row oracle reads every row up front: restore everything *)
      (match gate with
      | Some g ->
          g ~pos:0 ~len:(Table.main_rows table + Table.delta_rows table)
      | None -> ());
      run_row txn table ~filters f

let select ?impl ?gate txn table ~filters =
  let acc = ref [] in
  run ?impl ?gate txn table ~filters (fun r ->
      acc := (r, Table.get_row table r) :: !acc);
  List.rev !acc

let count ?impl ?gate txn table ~filters =
  let n = ref 0 in
  run ?impl ?gate txn table ~filters (fun _ -> incr n);
  !n
