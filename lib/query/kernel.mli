(** Selection-vector kernels: the block scan engine's inner loops.

    A kernel evaluates one compiled predicate ({!Predicate.compiled}) over
    a block of decoded value-ids, producing or refining a {e selection
    vector} — the block-local positions of rows that survive, in ascending
    order. Conjunctions are evaluated by running [eval_into] for the first
    (cheapest) predicate and [refine] for the rest, so each successive
    predicate only touches rows still alive.

    The hot loops use the store-then-conditionally-advance idiom
    ([d.(!n) <- i; n := !n + Bool.to_int test]): no data-dependent branch,
    which is what makes low-selectivity scans cheap. *)

type sel = { mutable data : int array; mutable len : int }
(** [data.(0 .. len-1)] are surviving block-local positions, ascending.
    Entries beyond [len] are garbage. *)

val create : int -> sel
(** [create capacity] — an empty selection vector able to hold a block of
    [capacity] rows. Reused across blocks. *)

val cost : Predicate.compiled -> int
(** Relative per-row evaluation cost, for cheapest-predicate-first
    ordering: 0 for [Nothing]/[Everything] (short-circuits), 1 for
    [Vid_range] (two integer compares), 2 for the hashtable forms. *)

val fill_all : sel -> int -> unit
(** Identity selection of a [count]-row block (the no-predicate scan). *)

val eval_into : Predicate.compiled -> int array -> count:int -> sel -> unit
(** [eval_into c vids ~count sel] evaluates [c] over [vids.(0..count-1)]
    and overwrites [sel] with the matching positions. *)

val refine : Predicate.compiled -> int array -> sel -> unit
(** Conjunctive step: keep only the selected positions whose value-id also
    satisfies [c]. In place; [vids] is indexed by the selected positions,
    so it must cover the same block [sel] was built from. *)
