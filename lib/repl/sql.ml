module Engine = Core.Engine
module Value = Storage.Value
module Schema = Storage.Schema
module P = Query.Predicate
module Agg = Query.Aggregate
module Tabular = Util.Tabular

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* -------- lexer -------- *)

type token =
  | Ident of string (* uppercased *)
  | Raw of string (* original spelling, for names *)
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Sym of string (* ( ) , * = != <> < <= > >= *)
  | End

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let push t = tokens := t :: !tokens in
  let i = ref 0 in
  let peek () = if !i < n then Some input.[!i] else None in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = ';' then incr i
    else if c = '\'' then begin
      (* string literal with '' escaping *)
      incr i;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while not !closed do
        match peek () with
        | None -> fail "unterminated string literal"
        | Some '\'' ->
            incr i;
            if peek () = Some '\'' then begin
              Buffer.add_char buf '\'';
              incr i
            end
            else closed := true
        | Some ch ->
            Buffer.add_char buf ch;
            incr i
      done;
      push (Str_lit (Buffer.contents buf))
    end
    else if (c >= '0' && c <= '9') || (c = '-' && !i + 1 < n && input.[!i + 1] >= '0' && input.[!i + 1] <= '9')
    then begin
      let start = !i in
      incr i;
      let is_float = ref false in
      let continue = ref true in
      while !continue do
        match peek () with
        | Some ('0' .. '9') -> incr i
        | Some ('.' | 'e' | 'E' | '+' | '-') when true -> (
            (* only consume - / + right after an exponent *)
            match input.[!i] with
            | '.' ->
                is_float := true;
                incr i
            | 'e' | 'E' ->
                is_float := true;
                incr i
            | '+' | '-' when !i > start && (input.[!i - 1] = 'e' || input.[!i - 1] = 'E') ->
                incr i
            | _ -> continue := false)
        | _ -> continue := false
      done;
      let s = String.sub input start (!i - start) in
      if !is_float then
        push (Float_lit (try float_of_string s with _ -> fail "bad number %s" s))
      else push (Int_lit (try int_of_string s with _ -> fail "bad number %s" s))
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let start = !i in
      while
        match peek () with
        | Some ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_') -> true
        | _ -> false
      do
        incr i
      done;
      let s = String.sub input start (!i - start) in
      push (Ident (String.uppercase_ascii s));
      push (Raw s)
    end
    else begin
      let two =
        if !i + 1 < n then String.sub input !i 2 else ""
      in
      match two with
      | "!=" | "<>" | "<=" | ">=" ->
          push (Sym (if two = "<>" then "!=" else two));
          i := !i + 2
      | _ -> (
          match c with
          | '(' | ')' | ',' | '*' | '=' | '<' | '>' ->
              push (Sym (String.make 1 c));
              incr i
          | _ -> fail "unexpected character %c" c)
    end
  done;
  push End;
  List.rev !tokens

(* -------- parser (recursive descent) --------

   The lexer emits Ident (uppercased) immediately followed by Raw (the
   original spelling); [retok] pairs them back up. *)
type tok =
  | TWord of string * string (* UPPER, original *)
  | TInt of int
  | TFloat of float
  | TStr of string
  | TSym of string
  | TEnd

let retok tokens =
  let rec go = function
    | Ident u :: Raw r :: rest -> TWord (u, r) :: go rest
    | Int_lit v :: rest -> TInt v :: go rest
    | Float_lit v :: rest -> TFloat v :: go rest
    | Str_lit v :: rest -> TStr v :: go rest
    | Sym v :: rest -> TSym v :: go rest
    | End :: rest -> TEnd :: go rest
    | Ident _ :: rest -> go rest (* unreachable *)
    | Raw _ :: rest -> go rest
    | [] -> []
  in
  go tokens

type parser_state = { mutable stream : tok list }

let peek p = match p.stream with [] -> TEnd | t :: _ -> t

let advance p =
  match p.stream with [] -> () | _ :: rest -> p.stream <- rest

let tok_to_string = function
  | TWord (_, r) -> r
  | TInt v -> string_of_int v
  | TFloat v -> string_of_float v
  | TStr s -> Printf.sprintf "'%s'" s
  | TSym s -> s
  | TEnd -> "<end>"

let expect_word p w =
  match peek p with
  | TWord (u, _) when u = w -> advance p
  | t -> fail "expected %s, got %s" w (tok_to_string t)

let expect_sym p s =
  match peek p with
  | TSym s' when s' = s -> advance p
  | t -> fail "expected '%s', got %s" s (tok_to_string t)

let word_is p w = match peek p with TWord (u, _) -> u = w | _ -> false

let name p =
  match peek p with
  | TWord (_, r) ->
      advance p;
      r
  | t -> fail "expected a name, got %s" (tok_to_string t)

let value p =
  match peek p with
  | TInt v ->
      advance p;
      Value.Int v
  | TFloat v ->
      advance p;
      Value.Float v
  | TStr v ->
      advance p;
      Value.Text v
  | t -> fail "expected a literal, got %s" (tok_to_string t)

let ty p =
  match peek p with
  | TWord (("INT" | "INTEGER"), _) ->
      advance p;
      Value.Int_t
  | TWord (("FLOAT" | "REAL" | "DOUBLE"), _) ->
      advance p;
      Value.Float_t
  | TWord (("TEXT" | "STRING" | "VARCHAR"), _) ->
      advance p;
      (match peek p with
      | TSym "(" ->
          (* tolerate VARCHAR(n) *)
          advance p;
          (match peek p with TInt _ -> advance p | _ -> ());
          expect_sym p ")"
      | _ -> ());
      Value.Text_t
  | t -> fail "expected a type (INT, FLOAT, TEXT), got %s" (tok_to_string t)

let comparison p =
  match peek p with
  | TSym "=" ->
      advance p;
      P.Eq
  | TSym "!=" ->
      advance p;
      P.Ne
  | TSym "<" ->
      advance p;
      P.Lt
  | TSym "<=" ->
      advance p;
      P.Le
  | TSym ">" ->
      advance p;
      P.Gt
  | TSym ">=" ->
      advance p;
      P.Ge
  | t -> fail "expected a comparison, got %s" (tok_to_string t)

let rec where_clauses p =
  let col = name p in
  let pred =
    if word_is p "BETWEEN" then begin
      advance p;
      let lo = value p in
      expect_word p "AND";
      let hi = value p in
      P.Between (lo, hi)
    end
    else if word_is p "IN" then begin
      advance p;
      expect_sym p "(";
      let rec values acc =
        let v = value p in
        match peek p with
        | TSym "," ->
            advance p;
            values (v :: acc)
        | _ -> List.rev (v :: acc)
      in
      let vs = values [] in
      expect_sym p ")";
      P.In vs
    end
    else
      let op = comparison p in
      P.Cmp (op, value p)
  in
  if word_is p "AND" then begin
    advance p;
    (col, pred) :: where_clauses p
  end
  else [ (col, pred) ]

let opt_where p =
  if word_is p "WHERE" then begin
    advance p;
    where_clauses p
  end
  else []

type projection = Star | Agg of Agg.spec

type stmt =
  | Create_table of { table : string; schema : Schema.t }
  | Insert of { table : string; values : Value.t array }
  | Select of {
      table : string;
      projections : projection list;
      where : (string * P.t) list;
      group_by : string option;
      limit : int option;
    }
  | Update of {
      table : string;
      sets : (string * Value.t) list;
      where : (string * P.t) list;
    }
  | Delete of { table : string; where : (string * P.t) list }
  | Merge of string
  | Checkpoint
  | Tables
  | Stats
  | Help

let projection p =
  match peek p with
  | TSym "*" ->
      advance p;
      Star
  | TWord (("COUNT" | "SUM" | "AVG" | "MIN" | "MAX"), _) -> (
      let fn = match peek p with TWord (u, _) -> u | _ -> assert false in
      advance p;
      expect_sym p "(";
      let arg =
        match peek p with
        | TSym "*" ->
            advance p;
            None
        | _ -> Some (name p)
      in
      expect_sym p ")";
      match (fn, arg) with
      | "COUNT", _ -> Agg Agg.Count
      | "SUM", Some c -> Agg (Agg.Sum c)
      | "AVG", Some c -> Agg (Agg.Avg c)
      | "MIN", Some c -> Agg (Agg.Min c)
      | "MAX", Some c -> Agg (Agg.Max c)
      | _ -> fail "%s needs a column argument" fn)
  | t -> fail "expected * or an aggregate, got %s" (tok_to_string t)

let parse_select p =
  let rec projections acc =
    let pr = projection p in
    match peek p with
    | TSym "," ->
        advance p;
        projections (pr :: acc)
    | _ -> List.rev (pr :: acc)
  in
  let projections = projections [] in
  expect_word p "FROM";
  let table = name p in
  let where = opt_where p in
  let group_by =
    if word_is p "GROUP" then begin
      advance p;
      expect_word p "BY";
      Some (name p)
    end
    else None
  in
  let limit =
    if word_is p "LIMIT" then begin
      advance p;
      match peek p with
      | TInt v ->
          advance p;
          Some v
      | t -> fail "LIMIT expects a number, got %s" (tok_to_string t)
    end
    else None
  in
  Select { table; projections; where; group_by; limit }

let parse_stmt p =
  match peek p with
  | TWord ("CREATE", _) ->
      advance p;
      expect_word p "TABLE";
      let table = name p in
      expect_sym p "(";
      let rec cols acc =
        let cname = name p in
        let cty = ty p in
        let indexed = word_is p "INDEXED" in
        if indexed then advance p;
        let col = Schema.column ~indexed cname cty in
        match peek p with
        | TSym "," ->
            advance p;
            cols (col :: acc)
        | _ -> List.rev (col :: acc)
      in
      let schema = Array.of_list (cols []) in
      expect_sym p ")";
      Create_table { table; schema }
  | TWord ("INSERT", _) ->
      advance p;
      expect_word p "INTO";
      let table = name p in
      expect_word p "VALUES";
      expect_sym p "(";
      let rec values acc =
        let v = value p in
        match peek p with
        | TSym "," ->
            advance p;
            values (v :: acc)
        | _ -> List.rev (v :: acc)
      in
      let vs = values [] in
      expect_sym p ")";
      Insert { table; values = Array.of_list vs }
  | TWord ("SELECT", _) ->
      advance p;
      parse_select p
  | TWord ("UPDATE", _) ->
      advance p;
      let table = name p in
      expect_word p "SET";
      let rec sets acc =
        let col = name p in
        expect_sym p "=";
        let v = value p in
        match peek p with
        | TSym "," ->
            advance p;
            sets ((col, v) :: acc)
        | _ -> List.rev ((col, v) :: acc)
      in
      let sets = sets [] in
      let where = opt_where p in
      Update { table; sets; where }
  | TWord ("DELETE", _) ->
      advance p;
      expect_word p "FROM";
      let table = name p in
      let where = opt_where p in
      Delete { table; where }
  | TWord ("MERGE", _) ->
      advance p;
      Merge (name p)
  | TWord ("CHECKPOINT", _) ->
      advance p;
      Checkpoint
  | TWord ("TABLES", _) ->
      advance p;
      Tables
  | TWord ("STATS", _) ->
      advance p;
      Stats
  | TWord ("HELP", _) ->
      advance p;
      Help
  | t -> fail "unknown statement start: %s" (tok_to_string t)

let parse input =
  let p = { stream = retok (tokenize input) } in
  let stmt = parse_stmt p in
  (match peek p with
  | TEnd -> ()
  | t -> fail "trailing input: %s" (tok_to_string t));
  stmt

(* -------- execution -------- *)

let help_text =
  String.concat "\n"
    [
      "statements:";
      "  CREATE TABLE t (name TEXT INDEXED, qty INT, price FLOAT)";
      "  INSERT INTO t VALUES ('widget', 3, 9.99)";
      "  SELECT * FROM t WHERE qty >= 2 AND price < 10 LIMIT 20";
      "  SELECT COUNT(*), SUM(qty) FROM t [WHERE ...] [GROUP BY name]";
      "  UPDATE t SET qty = 4 WHERE name = 'widget'";
      "  DELETE FROM t WHERE qty < 1";
      "  MERGE t | CHECKPOINT | TABLES | STATS | HELP";
      "predicates: = != < <= > >=, BETWEEN a AND b, IN (a, b, c)";
    ]

let render_rows engine table rows =
  let schema = Storage.Table.schema (Engine.table engine table) in
  let t =
    Tabular.create ~title:(Printf.sprintf "%s (%d rows)" table (List.length rows))
      (("#row", Tabular.Right)
      :: Array.to_list
           (Array.map (fun c -> (c.Schema.name, Tabular.Left)) schema))
  in
  List.iter
    (fun (row, values) ->
      Tabular.add_row t
        (string_of_int row
        :: Array.to_list (Array.map Value.to_string values)))
    rows;
  Tabular.render t

let render_aggregate group_by specs (result : Agg.result) =
  let spec_name = function
    | Agg.Count -> "count(*)"
    | Agg.Sum c -> "sum(" ^ c ^ ")"
    | Agg.Avg c -> "avg(" ^ c ^ ")"
    | Agg.Min c -> "min(" ^ c ^ ")"
    | Agg.Max c -> "max(" ^ c ^ ")"
  in
  let cols =
    (match group_by with Some g -> [ (g, Tabular.Left) ] | None -> [])
    @ List.map (fun s -> (spec_name s, Tabular.Right)) specs
  in
  let t = Tabular.create ~title:"aggregate" cols in
  List.iter
    (fun (key, cells) ->
      Tabular.add_row t
        ((match (group_by, key) with
         | Some _, Some v -> [ Value.to_string v ]
         | Some _, None -> [ "null" ]
         | None, _ -> [])
        @ Array.to_list (Array.map Agg.cell_to_string cells)))
    result.Agg.groups;
  Tabular.render t

let execute engine stmt =
  match stmt with
  | Help -> help_text
  | Tables ->
      let names = Engine.table_names engine in
      if names = [] then "(no tables)"
      else
        String.concat "\n"
          (List.map
             (fun n ->
               let tbl = Engine.table engine n in
               Printf.sprintf "%-16s %8d main + %6d delta rows, %s" n
                 (Storage.Table.main_rows tbl)
                 (Storage.Table.delta_rows tbl)
                 (Tabular.fmt_bytes (Storage.Table.nvm_bytes tbl)))
             names)
  | Stats ->
      let s = Nvm.Region.stats (Engine.region engine) in
      Engine.sync_metrics engine;
      let c name = Obs.counter_value (Obs.counter name) in
      Printf.sprintf
        "last CID %Ld | data %s | device: %s stores, %s writebacks, %s fences \
         (%s elided), %s device time\n\
         scans (block engine): %s blocks, %s rows in -> %s rows out\n\
         writer pipeline: %d writer(s) | %s staged, %s re-executed | %s \
         epochs sealed, %s grouped txns\n\
         %s"
        (Engine.last_cid engine)
        (Tabular.fmt_bytes (Engine.data_bytes engine))
        (Tabular.fmt_int s.Nvm.Region.stores)
        (Tabular.fmt_int s.Nvm.Region.writebacks)
        (Tabular.fmt_int s.Nvm.Region.fences)
        (Tabular.fmt_int s.Nvm.Region.elided_fences)
        (Tabular.fmt_ns s.Nvm.Region.sim_ns)
        (Tabular.fmt_int (c "scan.blocks"))
        (Tabular.fmt_int (c "scan.rows_in"))
        (Tabular.fmt_int (c "scan.rows_out"))
        (Engine.writers engine)
        (Tabular.fmt_int (c "txn.lane.staged"))
        (Tabular.fmt_int (c "txn.lane.reexec"))
        (Tabular.fmt_int (c "commit.epoch.sealed"))
        (Tabular.fmt_int (c "commit.epoch.txns"))
        (Obs.render ())
  | Create_table { table; schema } ->
      Engine.create_table engine ~name:table schema;
      Printf.sprintf "table %s created" table
  | Insert { table; values } ->
      let row =
        Engine.with_txn engine (fun txn -> Engine.insert engine txn table values)
      in
      Printf.sprintf "1 row inserted (row %d)" row
  | Merge table ->
      let s = Engine.merge engine table in
      Printf.sprintf "merged %s: %d rows -> %d, %s -> %s" table
        s.Storage.Merge.rows_in s.Storage.Merge.rows_out
        (Tabular.fmt_bytes s.Storage.Merge.bytes_before)
        (Tabular.fmt_bytes s.Storage.Merge.bytes_after)
  | Checkpoint ->
      let stats = Engine.checkpoint engine in
      Printf.sprintf "checkpointed %d tables" (List.length stats)
  | Select { table; projections; where; group_by; limit } -> (
      let aggs =
        List.filter_map (function Agg a -> Some a | Star -> None) projections
      in
      match (aggs, List.mem Star projections) with
      | [], _ ->
          Engine.with_txn engine (fun txn ->
              let rows = Engine.where engine txn table where in
              let rows =
                match limit with
                | Some n -> List.filteri (fun i _ -> i < n) rows
                | None -> rows
              in
              render_rows engine table rows)
      | _ :: _, true -> fail "cannot mix * with aggregates"
      | specs, false ->
          Engine.with_txn engine (fun txn ->
              render_aggregate group_by specs
                (Engine.aggregate engine txn table ?group_by ~specs
                   ~filters:where ())))
  | Update { table; sets; where } ->
      Engine.with_txn engine (fun txn ->
          let schema = Storage.Table.schema (Engine.table engine table) in
          let targets = Engine.where engine txn table where in
          let n = ref 0 in
          List.iter
            (fun (row, values) ->
              let values = Array.copy values in
              List.iter
                (fun (col, v) -> values.(Schema.find_column schema col) <- v)
                sets;
              ignore (Engine.update engine txn table row values);
              incr n)
            targets;
          Printf.sprintf "%d rows updated" !n)
  | Delete { table; where } ->
      Engine.with_txn engine (fun txn ->
          let targets = Engine.where engine txn table where in
          List.iter (fun (row, _) -> Engine.delete engine txn table row) targets;
          Printf.sprintf "%d rows deleted" (List.length targets))
