(** TPC-C-inspired order-processing workload (interactive OLTP).

    A faithful-in-spirit subset of the workload the Hyrise-NV evaluation
    drives: warehouses / districts / customers / orders / order lines,
    with the three classic transaction profiles —

    - {b new-order} (write-heavy): read a customer, insert an order and
      5–15 order lines, bump the district's next-order counter;
    - {b payment} (update-heavy): update warehouse, district and customer
      balances;
    - {b order-status} (read-only): find a customer's most recent order
      and its lines;
    - {b delivery} (update-heavy): mark a district's oldest undelivered
      order delivered, invalidating its previous version.

    Keys are globally unique integers over indexed columns, so every
    lookup exercises the persistent dictionary and secondary index path.
    All randomness comes from the supplied PRNG — a fixed seed reproduces
    the exact transaction stream. *)

type t
(** A driver session bound to one engine instance. *)

val table_names : string list

val setup :
  Core.Engine.t ->
  warehouses:int ->
  districts_per_wh:int ->
  customers_per_district:int ->
  t
(** Create and populate the schema (auto-committed transactions). *)

val attach :
  Core.Engine.t ->
  warehouses:int ->
  districts_per_wh:int ->
  customers_per_district:int ->
  t
(** Re-bind a driver to a recovered engine holding an already populated
    instance of the same shape (recomputes the order-id counter). *)

val engine : t -> Core.Engine.t

type mix = {
  new_order_pct : int;
  payment_pct : int;
  delivery_pct : int; (* rest: order-status *)
}

val default_mix : mix
(** 44% new-order, 42% payment, 6% delivery, 8% order-status. *)

type stats = {
  committed : int;
  aborted : int;
  new_orders : int;
  payments : int;
  order_statuses : int;
  deliveries : int;
}

val run :
  t -> Util.Prng.t -> ?mix:mix -> ?latencies:Util.Histogram.t -> ops:int ->
  unit -> stats
(** Execute [ops] transactions. Write conflicts abort the transaction and
    count in [aborted] (no retry). When [latencies] is given, each
    transaction's wall time (ns) is recorded into it. *)

val run_one : t -> Util.Prng.t -> ?mix:mix -> unit -> bool
(** One transaction; [true] if it committed. *)

(** {1 Pre-drawn transaction specs (writer pipeline)} *)

type op_spec
(** One transaction's worth of work with every random draw — including
    the order-id counter — fixed at generation time: safe to execute on
    pool lanes and to re-execute at the serial seal. *)

val gen_specs :
  t -> Util.Prng.t -> ?mix:mix -> ops:int -> unit -> op_spec array
(** Same transaction mix as {!run}; deterministic for a given seed and
    session shape, so two sessions over identically-prepared engines
    generate identical spec streams (the differential tests rely on
    this). Advances the session order-id counter. *)

val run_specs :
  ?epoch:int -> ?latencies:Util.Histogram.t -> ?clock:(unit -> int) ->
  t -> op_spec array -> stats
(** Execute specs through {!Core.Engine.run_pipeline} in windows of
    [epoch] (default 4) transactions — the serial loop when the
    engine's [writers] is 1, the double-buffered multi-lane pipeline
    otherwise; same final database either way. [latencies] records
    per-transaction commit latency to the window's durable fence
    ([clock] substitutes the clock, for boundary tests). *)

val district_revenue : t -> w_id:int -> d_id:int -> int
(** Analytic query: total order amount of one district (CH-benCH-style
    query on the OLTP schema). *)

val total_orders : t -> int

val consistency_check : t -> (string * bool) list
(** Invariants that must hold in any committed state: warehouse YTD equals
    the sum of its districts' YTD, and every order's amount equals the sum
    of its lines (checked on a sample). Used by crash tests. *)
