module Engine = Core.Engine
module Schema = Storage.Schema
module Value = Storage.Value
module Prng = Util.Prng

type config = {
  rows : int;
  field_length : int;
  fields : int;
  read_pct : int;
  update_pct : int;
  zipf_theta : float;
}

let default_config =
  {
    rows = 10_000;
    field_length = 64;
    fields = 4;
    read_pct = 50;
    update_pct = 40;
    zipf_theta = 0.99;
  }

let table_name = "usertable"

type t = {
  engine : Engine.t;
  config : config;
  mutable keys : int; (* keys 1..keys exist *)
  mutable zipf : Prng.Zipf.gen option; (* lazily sized to [keys] *)
}

let engine t = t.engine

let schema config =
  Array.append
    [| Schema.column ~indexed:true "key" Value.Int_t |]
    (Array.init config.fields (fun i ->
         Schema.column (Printf.sprintf "field%d" i) Value.Text_t))

let make_row config rng key =
  Array.append
    [| Value.Int key |]
    (Array.init config.fields (fun _ ->
         Value.Text (Prng.alpha_string rng config.field_length)))

let setup engine rng config =
  Engine.create_table engine ~name:table_name (schema config);
  let batch = 256 in
  let remaining = ref config.rows in
  let next_key = ref 0 in
  while !remaining > 0 do
    let n = min batch !remaining in
    Engine.with_txn engine (fun txn ->
        for _ = 1 to n do
          incr next_key;
          ignore (Engine.insert engine txn table_name (make_row config rng !next_key))
        done);
    remaining := !remaining - n
  done;
  { engine; config; keys = config.rows; zipf = None }

let attach engine config =
  let max_key = ref 0 in
  Engine.with_txn engine (fun txn ->
      Engine.scan engine txn table_name (fun _ values ->
          match values.(0) with
          | Value.Int k -> max_key := max !max_key k
          | _ -> ()));
  { engine; config; keys = !max_key; zipf = None }

let pick_key t rng =
  if t.config.zipf_theta <= 0.0 then 1 + Prng.int rng (max 1 t.keys)
  else begin
    let zipf =
      match t.zipf with
      | Some z -> z
      | None ->
          let z = Prng.Zipf.create ~n:(max 1 t.keys) ~theta:t.config.zipf_theta in
          t.zipf <- Some z;
          z
    in
    1 + Prng.Zipf.draw zipf rng
  end

type stats = { reads : int; updates : int; inserts : int; aborted : int }

type kind = Read | Update | Insert

let pick_kind t rng =
  let r = Prng.int rng 100 in
  if r < t.config.read_pct then Read
  else if r < t.config.read_pct + t.config.update_pct then Update
  else Insert

let exec t rng txn = function
  | Read ->
      ignore
        (Engine.lookup t.engine txn table_name ~col:"key"
           (Value.Int (pick_key t rng)))
  | Update -> (
      let key = pick_key t rng in
      match Engine.lookup t.engine txn table_name ~col:"key" (Value.Int key) with
      | (row, values) :: _ ->
          let values = Array.copy values in
          let f = 1 + Prng.int rng t.config.fields in
          values.(f) <- Value.Text (Prng.alpha_string rng t.config.field_length);
          ignore (Engine.update t.engine txn table_name row values)
      | [] -> ())
  | Insert ->
      (* key growth only becomes visible to the picker on commit *)
      let key = t.keys + 1 in
      ignore (Engine.insert t.engine txn table_name (make_row t.config rng key));
      t.keys <- key;
      t.zipf <- None

let run_one t rng =
  let kind = pick_kind t rng in
  let txn = Engine.begin_txn t.engine in
  match
    exec t rng txn kind;
    Engine.commit t.engine txn
  with
  | _ -> true
  | exception Txn.Mvcc.Write_conflict _ ->
      Engine.abort t.engine txn;
      false

let run t rng ~ops =
  let reads = ref 0 and updates = ref 0 and inserts = ref 0 and aborted = ref 0 in
  for _ = 1 to ops do
    let kind = pick_kind t rng in
    let txn = Engine.begin_txn t.engine in
    match
      exec t rng txn kind;
      Engine.commit t.engine txn
    with
    | _ -> (
        match kind with
        | Read -> incr reads
        | Update -> incr updates
        | Insert -> incr inserts)
    | exception Txn.Mvcc.Write_conflict _ ->
        Engine.abort t.engine txn;
        incr aborted
  done;
  { reads = !reads; updates = !updates; inserts = !inserts; aborted = !aborted }

(* -- pre-drawn operation specs (writer pipeline) --

   The pipeline re-executes a transaction body when its staged validation
   fails, and runs bodies on pool lanes — so all randomness and all
   session-counter movement ([t.keys], the zipf cache) must happen at
   generation time, never inside the body. A spec array is a pure value:
   running it through [run_specs] on engines in identical states produces
   identical databases whether the engine pipelines or not (the
   differential tests compare exactly that). *)

type op_spec =
  | S_read of int (* key *)
  | S_update of int * int * string (* key, column index, replacement text *)
  | S_insert of Value.t array (* full row, key pre-assigned *)

let gen_spec t rng =
  match pick_kind t rng with
  | Read -> S_read (pick_key t rng)
  | Update ->
      let key = pick_key t rng in
      let f = 1 + Prng.int rng t.config.fields in
      S_update (key, f, Prng.alpha_string rng t.config.field_length)
  | Insert ->
      (* inserts never abort, so advancing the key counter at generation
         time reproduces what execution would do *)
      let key = t.keys + 1 in
      let row = make_row t.config rng key in
      t.keys <- key;
      t.zipf <- None;
      S_insert row

let gen_specs t rng ~ops =
  (* explicit loop: key-counter movement must follow spec order *)
  let acc = ref [] in
  for _ = 1 to ops do
    acc := gen_spec t rng :: !acc
  done;
  Array.of_list (List.rev !acc)

let exec_spec t txn spec =
  (* a spec body is a deterministic function of the database (keys are
     pre-drawn and unique), so its writes are declared as command ops —
     the engine's log policy then chooses value vs command records per
     transaction (Engine.declare_command is a no-op under `Value) *)
  (match spec with
  | S_read _ -> ()
  | S_update (key, f, text) ->
      Engine.declare_command t.engine txn
        [
          Engine.C_update
            {
              table = table_name;
              key_col = "key";
              key = Value.Int key;
              sets = [ (Printf.sprintf "field%d" (f - 1), Engine.Set (Value.Text text)) ];
            };
        ]
  | S_insert row ->
      Engine.declare_command t.engine txn
        [ Engine.C_insert { table = table_name; values = row } ]);
  match spec with
  | S_read key ->
      ignore (Engine.lookup t.engine txn table_name ~col:"key" (Value.Int key))
  | S_update (key, f, text) -> (
      match Engine.lookup t.engine txn table_name ~col:"key" (Value.Int key) with
      | (row, values) :: _ ->
          let values = Array.copy values in
          values.(f) <- Value.Text text;
          ignore (Engine.update t.engine txn table_name row values)
      | [] -> ())
  | S_insert row -> ignore (Engine.insert t.engine txn table_name row)

let run_specs ?latencies ?(epoch = 4) t specs =
  let reads = ref 0 and updates = ref 0 and inserts = ref 0 and aborted = ref 0 in
  let ops = Array.map (fun s txn -> exec_spec t txn s) specs in
  let committed = Engine.run_pipeline t.engine ?latencies ~epoch ops in
  Array.iteri
    (fun j ok ->
      if not ok then incr aborted
      else
        match specs.(j) with
        | S_read _ -> incr reads
        | S_update _ -> incr updates
        | S_insert _ -> incr inserts)
    committed;
  { reads = !reads; updates = !updates; inserts = !inserts; aborted = !aborted }

let row_count t =
  Engine.with_txn t.engine (fun txn -> Engine.count t.engine txn table_name)

let checksum t =
  (* order-insensitive: sum of row digests *)
  let acc = ref 0 in
  Engine.with_txn t.engine (fun txn ->
      Engine.scan t.engine txn table_name (fun _ values ->
          let row_digest =
            Array.fold_left
              (fun h v -> (h * 1_000_003) + Hashtbl.hash (Value.to_string v))
              17 values
          in
          acc := !acc + row_digest));
  !acc
