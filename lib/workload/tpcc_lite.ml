module Engine = Core.Engine
module Schema = Storage.Schema
module Value = Storage.Value
module Prng = Util.Prng

let table_names = [ "warehouse"; "district"; "customer"; "orders"; "order_line" ]

(* Globally unique integer keys:
     warehouse : w_id
     district  : d_key = w_id * 1_000 + d_id
     customer  : c_key = d_key * 10_000 + c_id
     orders    : o_id  = a session counter
   Every key column is indexed, so point transactions go through the
   persistent dictionaries and secondary indexes. *)

let d_key ~w_id ~d_id = (w_id * 1_000) + d_id
let c_key ~w_id ~d_id ~c_id = (d_key ~w_id ~d_id * 10_000) + c_id

let warehouse_schema =
  [|
    Schema.column ~indexed:true "w_id" Value.Int_t;
    Schema.column "w_name" Value.Text_t;
    Schema.column "w_ytd" Value.Int_t;
  |]

let district_schema =
  [|
    Schema.column ~indexed:true "d_key" Value.Int_t;
    Schema.column "d_name" Value.Text_t;
    Schema.column "d_ytd" Value.Int_t;
    Schema.column "d_next_o_id" Value.Int_t;
  |]

let customer_schema =
  [|
    Schema.column ~indexed:true "c_key" Value.Int_t;
    Schema.column "c_name" Value.Text_t;
    Schema.column "c_balance" Value.Int_t;
  |]

let orders_schema =
  [|
    Schema.column ~indexed:true "o_id" Value.Int_t;
    Schema.column ~indexed:true "o_c_key" Value.Int_t;
    Schema.column "o_d_key" Value.Int_t;
    Schema.column "o_entry_d" Value.Int_t;
    Schema.column "o_amount" Value.Int_t;
    Schema.column "o_delivered" Value.Int_t;
  |]

let order_line_schema =
  [|
    Schema.column ~indexed:true "ol_o_id" Value.Int_t;
    Schema.column "ol_number" Value.Int_t;
    Schema.column "ol_item" Value.Text_t;
    Schema.column "ol_amount" Value.Int_t;
  |]

type t = {
  engine : Engine.t;
  warehouses : int;
  districts : int;
  customers : int;
  mutable next_o_id : int;
}

let engine t = t.engine

let setup engine ~warehouses ~districts_per_wh ~customers_per_district =
  Engine.create_table engine ~name:"warehouse" warehouse_schema;
  Engine.create_table engine ~name:"district" district_schema;
  Engine.create_table engine ~name:"customer" customer_schema;
  Engine.create_table engine ~name:"orders" orders_schema;
  Engine.create_table engine ~name:"order_line" order_line_schema;
  for w = 1 to warehouses do
    Engine.with_txn engine (fun txn ->
        ignore
          (Engine.insert engine txn "warehouse"
             [|
               Value.Int w;
               Value.Text (Printf.sprintf "warehouse-%d" w);
               Value.Int 0;
             |]);
        for d = 1 to districts_per_wh do
          ignore
            (Engine.insert engine txn "district"
               [|
                 Value.Int (d_key ~w_id:w ~d_id:d);
                 Value.Text (Printf.sprintf "district-%d-%d" w d);
                 Value.Int 0;
                 Value.Int 1;
               |]);
          for c = 1 to customers_per_district do
            ignore
              (Engine.insert engine txn "customer"
                 [|
                   Value.Int (c_key ~w_id:w ~d_id:d ~c_id:c);
                   Value.Text (Printf.sprintf "customer-%d-%d-%d" w d c);
                   Value.Int 1000;
                 |])
          done
        done)
  done;
  {
    engine;
    warehouses;
    districts = districts_per_wh;
    customers = customers_per_district;
    next_o_id = 0;
  }

let int_of v = match v with Value.Int i -> i | _ -> invalid_arg "Tpcc_lite: int expected"

let attach engine ~warehouses ~districts_per_wh ~customers_per_district =
  let max_o_id = ref 0 in
  Engine.with_txn engine (fun txn ->
      Engine.scan engine txn "orders" (fun _ values ->
          max_o_id := max !max_o_id (int_of values.(0))));
  {
    engine;
    warehouses;
    districts = districts_per_wh;
    customers = customers_per_district;
    next_o_id = !max_o_id;
  }

type mix = { new_order_pct : int; payment_pct : int; delivery_pct : int }

let default_mix = { new_order_pct = 44; payment_pct = 42; delivery_pct = 6 }

type stats = {
  committed : int;
  aborted : int;
  new_orders : int;
  payments : int;
  order_statuses : int;
  deliveries : int;
}

let pick_customer t rng =
  let w = Prng.int_in rng 1 t.warehouses in
  let d = Prng.int_in rng 1 t.districts in
  let c = Prng.int_in rng 1 t.customers in
  (w, d, c)

let find_one engine txn tname ~col v =
  match Engine.lookup engine txn tname ~col v with
  | (row, values) :: _ -> Some (row, values)
  | [] -> None

(* Transaction bodies split from their random draws: the writer pipeline
   re-executes bodies and runs them on pool lanes, so every [Prng] draw
   (and the [next_o_id] counter bump) must happen at spec-generation
   time. The classic [run]/[run_one] path drives the same bodies with
   freshly drawn parameters. *)

let new_order_body t txn ~w ~d ~c ~o_id ~lines ~entry_d =
  let e = t.engine in
  let ckey = c_key ~w_id:w ~d_id:d ~c_id:c in
  match find_one e txn "customer" ~col:"c_key" (Value.Int ckey) with
  | None -> failwith "Tpcc_lite: missing customer"
  | Some _ -> (
      let dkey = d_key ~w_id:w ~d_id:d in
      match find_one e txn "district" ~col:"d_key" (Value.Int dkey) with
      | None -> failwith "Tpcc_lite: missing district"
      | Some (drow, dvals) ->
          let total = ref 0 in
          Array.iteri
            (fun i (item, amount) ->
              total := !total + amount;
              ignore
                (Engine.insert e txn "order_line"
                   [|
                     Value.Int o_id;
                     Value.Int (i + 1);
                     Value.Text item;
                     Value.Int amount;
                   |]))
            lines;
          ignore
            (Engine.insert e txn "orders"
               [|
                 Value.Int o_id;
                 Value.Int ckey;
                 Value.Int dkey;
                 Value.Int entry_d;
                 Value.Int !total;
                 Value.Int 0;
               |]);
          let next = int_of dvals.(3) + 1 in
          ignore
            (Engine.update e txn "district" drow
               [| dvals.(0); dvals.(1); dvals.(2); Value.Int next |]))

let draw_order_lines rng =
  let nlines = Prng.int_in rng 5 15 in
  let acc = ref [] in
  for _ = 1 to nlines do
    let amount = Prng.int_in rng 1 9999 in
    let item = Printf.sprintf "item-%d" (Prng.int rng 100_000) in
    acc := (item, amount) :: !acc
  done;
  Array.of_list (List.rev !acc)

let new_order t rng txn =
  let w, d, c = pick_customer t rng in
  t.next_o_id <- t.next_o_id + 1;
  let o_id = t.next_o_id in
  let lines = draw_order_lines rng in
  let entry_d = Prng.int rng 1_000_000 in
  new_order_body t txn ~w ~d ~c ~o_id ~lines ~entry_d

let payment_body t txn ~w ~d ~c ~amount =
  let e = t.engine in
  (match find_one e txn "warehouse" ~col:"w_id" (Value.Int w) with
  | Some (row, vals) ->
      ignore
        (Engine.update e txn "warehouse" row
           [| vals.(0); vals.(1); Value.Int (int_of vals.(2) + amount) |])
  | None -> failwith "Tpcc_lite: missing warehouse");
  (match
     find_one e txn "district" ~col:"d_key" (Value.Int (d_key ~w_id:w ~d_id:d))
   with
  | Some (row, vals) ->
      ignore
        (Engine.update e txn "district" row
           [| vals.(0); vals.(1); Value.Int (int_of vals.(2) + amount); vals.(3) |])
  | None -> failwith "Tpcc_lite: missing district");
  match
    find_one e txn "customer" ~col:"c_key"
      (Value.Int (c_key ~w_id:w ~d_id:d ~c_id:c))
  with
  | Some (row, vals) ->
      ignore
        (Engine.update e txn "customer" row
           [| vals.(0); vals.(1); Value.Int (int_of vals.(2) - amount) |])
  | None -> failwith "Tpcc_lite: missing customer"

let payment t rng txn =
  let w, d, c = pick_customer t rng in
  let amount = Prng.int_in rng 1 5000 in
  payment_body t txn ~w ~d ~c ~amount

let order_status_body t txn ~w ~d ~c =
  let e = t.engine in
  let ckey = c_key ~w_id:w ~d_id:d ~c_id:c in
  let orders = Engine.lookup e txn "orders" ~col:"o_c_key" (Value.Int ckey) in
  match List.rev orders with
  | [] -> ()
  | (_, ovals) :: _ ->
      ignore (Engine.lookup e txn "order_line" ~col:"ol_o_id" ovals.(0))

let order_status t rng txn =
  let w, d, c = pick_customer t rng in
  order_status_body t txn ~w ~d ~c

(* deliver the oldest undelivered order of a random district: an
   update-heavy transaction that invalidates order versions (the merge
   compacts them) *)
let delivery_body t txn ~w ~d =
  let e = t.engine in
  let dkey = d_key ~w_id:w ~d_id:d in
  let candidates =
    Engine.lookup e txn "orders" ~col:"o_d_key" (Value.Int dkey)
  in
  let oldest =
    List.fold_left
      (fun acc (row, vals) ->
        if int_of vals.(5) = 0 then
          match acc with
          | Some (_, best) when int_of best.(0) <= int_of vals.(0) -> acc
          | _ -> Some (row, vals)
        else acc)
      None candidates
  in
  match oldest with
  | None -> ()
  | Some (row, vals) ->
      let vals = Array.copy vals in
      vals.(5) <- Value.Int 1;
      ignore (Engine.update e txn "orders" row vals)

let delivery t rng txn =
  let w = Prng.int_in rng 1 t.warehouses in
  let d = Prng.int_in rng 1 t.districts in
  delivery_body t txn ~w ~d

type kind = New_order | Payment | Order_status | Delivery

let pick_kind rng mix =
  let r = Prng.int rng 100 in
  if r < mix.new_order_pct then New_order
  else if r < mix.new_order_pct + mix.payment_pct then Payment
  else if r < mix.new_order_pct + mix.payment_pct + mix.delivery_pct then
    Delivery
  else Order_status

let exec_kind t rng txn = function
  | New_order -> new_order t rng txn
  | Payment -> payment t rng txn
  | Order_status -> order_status t rng txn
  | Delivery -> delivery t rng txn

let run_one t rng ?(mix = default_mix) () =
  let kind = pick_kind rng mix in
  let txn = Engine.begin_txn t.engine in
  match
    exec_kind t rng txn kind;
    Engine.commit t.engine txn
  with
  | _ -> true
  | exception Txn.Mvcc.Write_conflict _ ->
      Engine.abort t.engine txn;
      false

let now_ns () = Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1e9))

let run t rng ?(mix = default_mix) ?latencies ~ops () =
  let stats =
    ref
      {
        committed = 0;
        aborted = 0;
        new_orders = 0;
        payments = 0;
        order_statuses = 0;
        deliveries = 0;
      }
  in
  for _ = 1 to ops do
    let kind = pick_kind rng mix in
    let t0 = match latencies with Some _ -> now_ns () | None -> 0 in
    let txn = Engine.begin_txn t.engine in
    (match
       exec_kind t rng txn kind;
       Engine.commit t.engine txn
     with
    | _ ->
        let s = !stats in
        stats :=
          {
            s with
            committed = s.committed + 1;
            new_orders = (s.new_orders + if kind = New_order then 1 else 0);
            payments = (s.payments + if kind = Payment then 1 else 0);
            order_statuses =
              (s.order_statuses + if kind = Order_status then 1 else 0);
            deliveries = (s.deliveries + if kind = Delivery then 1 else 0);
          }
    | exception Txn.Mvcc.Write_conflict _ ->
        Engine.abort t.engine txn;
        stats := { !stats with aborted = !stats.aborted + 1 });
    match latencies with
    | Some h -> Util.Histogram.record h (now_ns () - t0)
    | None -> ()
  done;
  !stats

(* -- pre-drawn transaction specs (writer pipeline) --

   All randomness and the order-id counter are drawn at generation time:
   a spec array is a pure value whose execution is independent of lane
   scheduling and survives seal-time re-execution. New-orders never
   abort (a staged district conflict re-executes against the refreshed
   snapshot and claims the new district version, as a serial run would),
   so advancing [next_o_id] at generation reproduces execution order. *)

type op_spec =
  | S_new_order of {
      w : int;
      d : int;
      c : int;
      o_id : int;
      lines : (string * int) array;
      entry_d : int;
    }
  | S_payment of { w : int; d : int; c : int; amount : int }
  | S_order_status of { w : int; d : int; c : int }
  | S_delivery of { w : int; d : int }

let gen_spec t rng mix =
  match pick_kind rng mix with
  | New_order ->
      let w, d, c = pick_customer t rng in
      t.next_o_id <- t.next_o_id + 1;
      let o_id = t.next_o_id in
      let lines = draw_order_lines rng in
      let entry_d = Prng.int rng 1_000_000 in
      S_new_order { w; d; c; o_id; lines; entry_d }
  | Payment ->
      let w, d, c = pick_customer t rng in
      S_payment { w; d; c; amount = Prng.int_in rng 1 5000 }
  | Order_status ->
      let w, d, c = pick_customer t rng in
      S_order_status { w; d; c }
  | Delivery ->
      let w = Prng.int_in rng 1 t.warehouses in
      let d = Prng.int_in rng 1 t.districts in
      S_delivery { w; d }

let gen_specs t rng ?(mix = default_mix) ~ops () =
  (* explicit loop: the o_id sequence must follow spec order *)
  let acc = ref [] in
  for _ = 1 to ops do
    acc := gen_spec t rng mix :: !acc
  done;
  Array.of_list (List.rev !acc)

let exec_spec t txn = function
  | S_new_order { w; d; c; o_id; lines; entry_d } ->
      new_order_body t txn ~w ~d ~c ~o_id ~lines ~entry_d
  | S_payment { w; d; c; amount } -> payment_body t txn ~w ~d ~c ~amount
  | S_order_status { w; d; c } -> order_status_body t txn ~w ~d ~c
  | S_delivery { w; d } -> delivery_body t txn ~w ~d

let run_specs ?(epoch = 4) ?latencies ?clock t specs =
  let ops = Array.map (fun s txn -> exec_spec t txn s) specs in
  let committed = Engine.run_pipeline t.engine ?clock ?latencies ~epoch ops in
  let stats =
    ref
      {
        committed = 0;
        aborted = 0;
        new_orders = 0;
        payments = 0;
        order_statuses = 0;
        deliveries = 0;
      }
  in
  Array.iteri
    (fun j ok ->
      let s = !stats in
      if not ok then stats := { s with aborted = s.aborted + 1 }
      else
        stats :=
          {
            s with
            committed = s.committed + 1;
            new_orders =
              (s.new_orders + match specs.(j) with S_new_order _ -> 1 | _ -> 0);
            payments =
              (s.payments + match specs.(j) with S_payment _ -> 1 | _ -> 0);
            order_statuses =
              (s.order_statuses
              + match specs.(j) with S_order_status _ -> 1 | _ -> 0);
            deliveries =
              (s.deliveries + match specs.(j) with S_delivery _ -> 1 | _ -> 0);
          })
    committed;
  !stats

let district_revenue t ~w_id ~d_id =
  let dkey = d_key ~w_id ~d_id in
  Engine.with_txn t.engine (fun txn ->
      List.fold_left
        (fun acc (_, ovals) -> acc + int_of ovals.(4))
        0
        (Engine.lookup t.engine txn "orders" ~col:"o_d_key" (Value.Int dkey)))

let total_orders t =
  Engine.with_txn t.engine (fun txn -> Engine.count t.engine txn "orders")

let consistency_check t =
  let e = t.engine in
  Engine.with_txn e (fun txn ->
      (* warehouse YTD = sum of district YTD *)
      let wh_ok = ref true in
      Engine.scan e txn "warehouse" (fun _ wvals ->
          let w = int_of wvals.(0) in
          let dsum = ref 0 in
          for d = 1 to t.districts do
            match
              find_one e txn "district" ~col:"d_key"
                (Value.Int (d_key ~w_id:w ~d_id:d))
            with
            | Some (_, dvals) -> dsum := !dsum + int_of dvals.(2)
            | None -> wh_ok := false
          done;
          if !dsum <> int_of wvals.(2) then wh_ok := false);
      (* every order's amount = sum of its line amounts (sampled) *)
      let ord_ok = ref true in
      let checked = ref 0 in
      Engine.scan e txn "orders" (fun _ ovals ->
          if !checked < 50 then begin
            incr checked;
            let sum =
              List.fold_left
                (fun acc (_, lvals) -> acc + int_of lvals.(3))
                0
                (Engine.lookup e txn "order_line" ~col:"ol_o_id" ovals.(0))
            in
            if sum <> int_of ovals.(4) then ord_ok := false
          end);
      [ ("warehouse ytd = sum(district ytd)", !wh_ok);
        ("order amount = sum(line amounts)", !ord_ok) ])
