(** YCSB-style key-value workload over a single wide table.

    Used by the recovery experiments (E1/T1): bulk-load a parameterizable
    number of rows, then run a read/update/insert mix with zipfian key
    selection. The row payload width is configurable so dataset size can
    be scaled independently of row count. *)

type t

type config = {
  rows : int;  (** initial load *)
  field_length : int;  (** bytes per text field *)
  fields : int;  (** text fields per row *)
  read_pct : int;
  update_pct : int;  (** rest: inserts *)
  zipf_theta : float;  (** 0.0 = uniform *)
}

val default_config : config
(** 10k rows, 4 fields x 64 bytes, 50/40/10 read/update/insert,
    theta 0.99. *)

val table_name : string

val setup : Core.Engine.t -> Util.Prng.t -> config -> t
(** Create and bulk-load the table (batched transactions). *)

val attach : Core.Engine.t -> config -> t
(** Re-bind to a recovered engine (recomputes the key counter). *)

val engine : t -> Core.Engine.t

type stats = { reads : int; updates : int; inserts : int; aborted : int }

val run : t -> Util.Prng.t -> ops:int -> stats

val run_one : t -> Util.Prng.t -> bool

(** {1 Pre-drawn operation specs (writer pipeline)} *)

type op_spec
(** One transaction's worth of work with all randomness (and key-counter
    movement) drawn at generation time: safe to execute on pool lanes and
    to re-execute at the serial seal. *)

val gen_specs : t -> Util.Prng.t -> ops:int -> op_spec array
(** Draws the same op mix as {!run}. Advances the session key counter for
    inserts (they never abort), so generation is deterministic given the
    seed and config — two sessions over identically-prepared engines
    generate identical specs. *)

val run_specs :
  ?latencies:Util.Histogram.t -> ?epoch:int -> t -> op_spec array -> stats
(** Execute specs through {!Core.Engine.run_pipeline} in windows of
    [epoch] (default 4) transactions: the serial loop when the engine's
    [writers] is 1, the double-buffered multi-lane pipeline otherwise —
    same final database either way. [latencies] records per-txn commit
    latency to the window's durable fence. *)

val row_count : t -> int

val checksum : t -> int
(** Order-insensitive digest of the visible table contents; equal
    checksums before a crash and after recovery mean no committed data was
    lost or corrupted. *)
