(* A small fixed-size domain pool.

   Workers are spawned once (lazily, at the first parallel call) and
   reused; between jobs they block on a condition variable. A job is
   announced by bumping an epoch under the pool mutex and broadcasting;
   every lane — the caller included — then runs the same closure, which
   walks the chunk index space in a static round-robin stride: lane [l]
   takes chunks [l, l+lanes, l+2*lanes, ...]. The assignment is
   deterministic — which lane touches which rows depends only on the
   lane count, never on scheduling — so the sharded per-slot Region
   accounting is reproducible on any machine (the bench models parallel
   device time from exactly those shares). Chunks are sized several per
   lane, which keeps the static split balanced for the uniform per-row
   work all call sites have. The caller blocks until every worker has
   finished its share, so a completed parallel call is a full
   happens-before barrier: the caller sees every write the workers
   made.

   Lane [i] runs on {!Util.Domain_slot} slot [i] (the caller keeps its
   own slot, normally 0), which is what routes the sharded Region
   accounting and per-slot scratch buffers.

   Worker busy time and condvar waits are tallied per lane under the pool
   mutex and flushed to the [par.*] Obs metrics by the caller after each
   job — workers never touch the (domain-unsafe) registry themselves. *)

let c_tasks = Obs.counter "par.tasks"
let c_steal_waits = Obs.counter "par.steal_waits"
let c_busy = Obs.counter "par.worker_busy_ns"
let g_jobs = Obs.gauge "par.jobs"
let h_run_ns = Obs.histogram "par.run_ns"

let now_ns () = Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1e9))

let max_jobs = Util.Domain_slot.max_slots

let default_jobs () =
  let n =
    match Sys.getenv_opt "HYRISE_NV_JOBS" with
    | Some s -> ( match int_of_string_opt (String.trim s) with
                  | Some n when n >= 1 -> n
                  | _ -> Domain.recommended_domain_count ())
    | None -> Domain.recommended_domain_count ()
  in
  max 1 (min n max_jobs)

type lane_stats = { mutable busy_ns : int; mutable waits : int }

type pool = {
  m : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  lanes : int; (* caller + (lanes - 1) workers *)
  mutable epoch : int;
  mutable task : (unit -> unit) option;
  mutable remaining : int; (* workers still to finish the current epoch *)
  mutable shutdown : bool;
  stats : lane_stats array; (* indexed by slot; slot 0 = caller *)
  mutable domains : unit Domain.t list;
}

let requested = ref (default_jobs ())
let () = Obs.set_gauge g_jobs !requested
let the_pool : pool option ref = ref None

(* cumulative per-slot busy time, mirrored outside the pool so it
   survives pool teardown (bench snapshots deltas across measurements) *)
let busy_total = Array.make max_jobs 0
let waits_total = ref 0

let jobs () = !requested

(* Sync-edge hook: the persist-order sanitizer observes the pool's
   happens-before structure through these callbacks (PROTOCOLS.md §10).
   [on_dispatch] fires on the caller before the job is announced;
   [on_task_start] on every lane (caller included) when it begins its
   share; [on_chunk j] on the owning lane just before chunk [j]'s body;
   [on_task_done] on every lane under the pool mutex when its share is
   complete; [on_join] on the caller after the full barrier, before any
   worker exception is re-raised. The serial fallbacks (one lane, or one
   chunk) bypass the hook entirely — a [jobs () = 1] run is exactly the
   pre-hook serial engine. *)
type sync_hook = {
  on_dispatch : lanes:int -> unit;
  on_task_start : unit -> unit;
  on_chunk : int -> unit;
  on_task_done : unit -> unit;
  on_join : unit -> unit;
}

let the_hook : sync_hook option ref = ref None
let set_sync_hook h = the_hook := h

let[@inline] sync f = match !the_hook with None -> () | Some h -> f h

let worker pool slot () =
  Util.Domain_slot.set slot;
  let st = pool.stats.(slot) in
  Mutex.lock pool.m;
  (* start from the creation epoch, not the current one: a job may have
     been announced before this worker even got scheduled *)
  let seen = ref 0 in
  let rec loop () =
    if pool.shutdown then Mutex.unlock pool.m
    else if pool.epoch = !seen then begin
      st.waits <- st.waits + 1;
      Condition.wait pool.work_ready pool.m;
      loop ()
    end
    else begin
      seen := pool.epoch;
      match pool.task with
      | None -> loop ()
      | Some f ->
          Mutex.unlock pool.m;
          let t0 = now_ns () in
          f ();
          let dt = now_ns () - t0 in
          Mutex.lock pool.m;
          (* lane-complete edge: ordered by the pool mutex, which is the
             sync object the sanitizer's vector clocks piggyback on *)
          sync (fun h -> h.on_task_done ());
          st.busy_ns <- st.busy_ns + dt;
          pool.remaining <- pool.remaining - 1;
          if pool.remaining = 0 then Condition.broadcast pool.work_done;
          loop ()
    end
  in
  loop ()

let spawn_pool lanes =
  let pool =
    {
      m = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      lanes;
      epoch = 0;
      task = None;
      remaining = 0;
      shutdown = false;
      stats = Array.init lanes (fun _ -> { busy_ns = 0; waits = 0 });
      domains = [];
    }
  in
  pool.domains <-
    List.init (lanes - 1) (fun i -> Domain.spawn (worker pool (i + 1)));
  pool

let drain_stats pool =
  (* called with no job in flight; workers only mutate their lane record
     under the pool mutex, so a locked read is exact *)
  Mutex.lock pool.m;
  Array.iteri
    (fun slot st ->
      busy_total.(slot) <- busy_total.(slot) + st.busy_ns;
      Obs.add c_busy st.busy_ns;
      Obs.add c_steal_waits st.waits;
      waits_total := !waits_total + st.waits;
      st.busy_ns <- 0;
      st.waits <- 0)
    pool.stats;
  Mutex.unlock pool.m

let teardown pool =
  Mutex.lock pool.m;
  pool.shutdown <- true;
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.m;
  List.iter Domain.join pool.domains;
  drain_stats pool

let set_jobs n =
  let n = max 1 (min n max_jobs) in
  if n <> !requested then begin
    (match !the_pool with
    | Some p when p.lanes <> n ->
        teardown p;
        the_pool := None
    | _ -> ());
    requested := n
  end;
  Obs.set_gauge g_jobs n

let get_pool () =
  match !the_pool with
  | Some p when p.lanes = !requested -> p
  | Some p ->
      teardown p;
      let p = spawn_pool !requested in
      the_pool := Some p;
      p
  | None ->
      let p = spawn_pool !requested in
      the_pool := Some p;
      p

exception Worker_exn of exn * Printexc.raw_backtrace

(* Run [body] on every lane (caller included) and join. The first
   exception any lane raised is re-raised in the caller once all lanes
   finished — a failing chunk never leaves workers running. *)
let run_lanes body =
  let pool = get_pool () in
  let failed = Atomic.make None in
  let guarded () =
    sync (fun h -> h.on_task_start ());
    try body ()
    with e ->
      let bt = Printexc.get_raw_backtrace () in
      ignore (Atomic.compare_and_set failed None (Some (Worker_exn (e, bt))))
  in
  let t0 = now_ns () in
  (* dispatch edge: the caller's clock is released to the lanes here,
     before the announce below publishes the task under the mutex *)
  sync (fun h -> h.on_dispatch ~lanes:pool.lanes);
  Mutex.lock pool.m;
  pool.task <- Some guarded;
  pool.remaining <- pool.lanes - 1;
  pool.epoch <- pool.epoch + 1;
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.m;
  guarded ();
  Mutex.lock pool.m;
  sync (fun h -> h.on_task_done ());
  let t1 = now_ns () in
  pool.stats.(Util.Domain_slot.get ()).busy_ns <-
    pool.stats.(Util.Domain_slot.get ()).busy_ns + (t1 - t0);
  while pool.remaining > 0 do
    Condition.wait pool.work_done pool.m
  done;
  pool.task <- None;
  Mutex.unlock pool.m;
  (* join edge: fires before a worker exception is re-raised so the
     sanitizer merges whatever the lanes traced up to the failure *)
  sync (fun h -> h.on_join ());
  drain_stats pool;
  (* worker-lane flight-recorder events buffer volatile during the job
     (workers never store into the region, PROTOCOLS.md §10); the caller
     delivers them to the recorder sink here, like the stats above *)
  Obs.Blackbox.drain ();
  Util.Histogram.record h_run_ns (now_ns () - t0);
  match Atomic.get failed with
  | Some (Worker_exn (e, bt)) -> Printexc.raise_with_backtrace e bt
  | Some e -> raise e
  | None -> ()

let effective_lanes force_serial = if force_serial then 1 else !requested

(* [~caller:false] keeps slot 0 out of the strided chunk walk: chunks
   stride over the worker slots only (worker slot s takes chunks s-1,
   s-1+(lanes-1), …), still a static deterministic assignment, while the
   caller only dispatches and joins. The parallel WAL replay uses this so
   the committer slot's device clock carries serial apply work only and
   the worker slots carry the staging reads — mirroring [submit_all]'s
   dedicated-committer shape but with deterministic lane attribution.
   Ignored (the caller works, stride over all lanes) when no worker
   exists to take the chunks. *)
let parallel_for ?(force_serial = false) ?(caller = true) ?(min_chunk = 1) ~n
    body =
  if n > 0 then begin
    let lanes = effective_lanes force_serial in
    if lanes <= 1 || n <= min_chunk then body ~lo:0 ~hi:n
    else begin
      let stride = if caller then lanes else lanes - 1 in
      let chunk = max min_chunk ((n + (stride * 4) - 1) / (stride * 4)) in
      let nchunks = (n + chunk - 1) / chunk in
      run_lanes (fun () ->
          let lane = Util.Domain_slot.get () in
          if caller || lane <> 0 then begin
            let j = ref (if caller then lane else lane - 1) in
            while !j < nchunks do
              sync (fun h -> h.on_chunk !j);
              let lo = !j * chunk in
              body ~lo ~hi:(min n (lo + chunk));
              j := !j + stride
            done
          end);
      Obs.add c_tasks nchunks
    end
  end

let map_chunks ?(force_serial = false) ~chunk ~n f =
  if chunk <= 0 then invalid_arg "Par.map_chunks: chunk must be positive";
  let nchunks = if n <= 0 then 0 else (n + chunk - 1) / chunk in
  let bounds j = (j * chunk, min n ((j + 1) * chunk)) in
  let lanes = effective_lanes force_serial in
  if lanes <= 1 || nchunks <= 1 then
    Array.init nchunks (fun j ->
        let lo, hi = bounds j in
        f ~lo ~hi)
  else begin
    let out = Array.make nchunks None in
    run_lanes (fun () ->
        let lane = Util.Domain_slot.get () in
        let j = ref lane in
        while !j < nchunks do
          sync (fun h -> h.on_chunk !j);
          let lo, hi = bounds !j in
          out.(!j) <- Some (f ~lo ~hi);
          j := !j + lanes
        done);
    Obs.add c_tasks nchunks;
    Array.map (function Some v -> v | None -> assert false) out
  end

(* Submit-style work path (writer pipeline): [n] independent tasks pulled
   off a shared cursor by whichever lane is free. Unlike the strided
   entry points above, task→lane assignment is dynamic — callers must
   not depend on it (the pipeline's staging tasks are Region-read-only
   and commutative, so they don't). Each task still fires the [on_chunk]
   sync edge with its own index, so the sanitizer merges lane traces in
   task order exactly as it does for strided chunks.

   [~caller:false] keeps slot 0 out of the task pull: the caller only
   dispatches and joins. The pipelined commit driver uses this so the
   sealer slot's device clock carries serial seal work only, while the
   worker slots carry the staging reads — the per-slot ledger then
   reflects a stage/seal overlap a concurrent build would get. Ignored
   (the caller works) when no worker exists to take the tasks. *)
let submit_all ?(force_serial = false) ?(caller = true) tasks =
  let n = Array.length tasks in
  if n > 0 then begin
    let lanes = effective_lanes force_serial in
    if lanes <= 1 || (n <= 1 && caller) then
      Array.iter (fun task -> task ()) tasks
    else begin
      let cursor = Atomic.make 0 in
      run_lanes (fun () ->
          if caller || Util.Domain_slot.get () <> 0 then begin
            let continue = ref true in
            while !continue do
              let i = Atomic.fetch_and_add cursor 1 in
              if i >= n then continue := false
              else begin
                sync (fun h -> h.on_chunk i);
                tasks.(i) ()
              end
            done
          end);
      Obs.add c_tasks n
    end
  end

let map_array ?force_serial f arr =
  let n = Array.length arr in
  map_chunks ?force_serial ~chunk:1 ~n (fun ~lo ~hi:_ -> f arr.(lo))

let fork_join ?force_serial thunks =
  let arr = Array.of_list thunks in
  Array.to_list (map_array ?force_serial (fun thunk -> thunk ()) arr)

let busy_ns_by_slot () =
  (match !the_pool with Some p -> drain_stats p | None -> ());
  Array.copy busy_total

let shutdown () =
  match !the_pool with
  | Some p ->
      teardown p;
      the_pool := None
  | None -> ()
