(** Fixed-size domain pool for the engine's three parallel hot paths
    (block scans, delta→main merge, recovery).

    Workers are spawned once at the first parallel call and reused; idle
    domains block on a condition variable, so a configured-but-unused
    pool costs nothing on the serial paths. Every parallel entry point
    below is a full join: when it returns, all worker writes are visible
    to the caller (the pool mutex orders them).

    {b Domain-safety contract} (docs/PROTOCOLS.md §10): chunk bodies run
    on pool domains and may only perform Region {e reads}, may not touch
    the Obs registry, and must not run while a Region tracer is attached
    — callers pass [~force_serial:(Region.traced region)] so sanitized
    runs stay single-domain. With [jobs () = 1] (or [force_serial]) every
    entry point degrades to plain inline iteration: byte-identical to the
    serial engine, no pool involved.

    Width: the [--jobs N] flag / [HYRISE_NV_JOBS] env variable; default
    [Domain.recommended_domain_count ()], clamped to
    [Util.Domain_slot.max_slots]. *)

val jobs : unit -> int
(** Current lane count (caller + workers). *)

val set_jobs : int -> unit
(** Resize the pool (clamped to [1, max_jobs]). An existing pool of a
    different width is torn down; the next parallel call respawns. *)

val max_jobs : int

val parallel_for :
  ?force_serial:bool -> ?min_chunk:int -> n:int -> (lo:int -> hi:int -> unit) -> unit
(** [parallel_for ~n body] runs [body ~lo ~hi] over a partition of
    [0, n): lane [l] takes chunks [l, l+lanes, ...] in a static
    round-robin stride, so which lane touches which indices is
    deterministic for a given lane count (the per-slot Region accounting
    the bench models from is scheduling-independent). [min_chunk] bounds
    the chunk size from below (and any [n] at or below it runs inline on
    the caller). *)

val map_chunks :
  ?force_serial:bool -> chunk:int -> n:int -> (lo:int -> hi:int -> 'a) -> 'a array
(** [map_chunks ~chunk ~n f] — run [f] over fixed chunk boundaries
    [j*chunk, min n ((j+1)*chunk)) and return the results {e in chunk
    order} (the scan engine relies on this for byte-identical output).
    Boundaries depend only on [chunk] and [n], never on the lane count;
    chunk→lane assignment is the same static stride as
    {!parallel_for}. *)

val map_array : ?force_serial:bool -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel map, one task per element (for coarse tasks: merge columns,
    table attach). Results in input order. *)

val fork_join : ?force_serial:bool -> (unit -> 'a) list -> 'a list
(** Run independent thunks in parallel; results in input order. *)

val busy_ns_by_slot : unit -> int array
(** Cumulative in-task wall time per {!Util.Domain_slot} slot (caller
    lane included). The bench snapshots deltas of this to compute the
    modeled parallel critical path on core-limited hosts. *)

val shutdown : unit -> unit
(** Join all workers (tests; also safe to never call — idle workers
    don't block process exit). *)
