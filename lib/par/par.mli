(** Fixed-size domain pool for the engine's three parallel hot paths
    (block scans, delta→main merge, recovery).

    Workers are spawned once at the first parallel call and reused; idle
    domains block on a condition variable, so a configured-but-unused
    pool costs nothing on the serial paths. Every parallel entry point
    below is a full join: when it returns, all worker writes are visible
    to the caller (the pool mutex orders them).

    {b Domain-safety contract} (docs/PROTOCOLS.md §10): chunk bodies run
    on pool domains and may only perform Region {e reads} and may not
    touch the Obs registry. Traced regions run parallel like any other:
    the persist-order sanitizer subscribes to the pool's sync edges via
    {!set_sync_hook}, buffers each lane's trace privately, and merges at
    the join — call sites must {e not} pass
    [~force_serial:(Region.traced region)] (the [@sanitize] lint rejects
    it). With [jobs () = 1] (or [force_serial]) every entry point
    degrades to plain inline iteration: byte-identical to the serial
    engine, no pool (and no sync hook) involved.

    Width: the [--jobs N] flag / [HYRISE_NV_JOBS] env variable; default
    [Domain.recommended_domain_count ()], clamped to
    [Util.Domain_slot.max_slots]. *)

val jobs : unit -> int
(** Current lane count (caller + workers). *)

val set_jobs : int -> unit
(** Resize the pool (clamped to [1, max_jobs]). An existing pool of a
    different width is torn down; the next parallel call respawns. *)

val max_jobs : int

type sync_hook = {
  on_dispatch : lanes:int -> unit;
      (** caller, just before a job is announced to the pool *)
  on_task_start : unit -> unit;
      (** each lane (caller included), before its first chunk *)
  on_chunk : int -> unit;
      (** owning lane, just before chunk [j]'s body runs *)
  on_task_done : unit -> unit;
      (** each lane when its share is complete; held: the pool mutex *)
  on_join : unit -> unit;
      (** caller, after the full barrier (before exception re-raise) *)
}
(** Happens-before edges of one pool job, in the order they fire. Serial
    fallbacks (one lane or one chunk) bypass the hook entirely. *)

val set_sync_hook : sync_hook option -> unit
(** Install the process-wide sync observer. Single consumer by design:
    owned by [Nvm.Sanitizer], which installs it at first attach and
    multiplexes all attached sanitizers behind it. *)

val parallel_for :
  ?force_serial:bool ->
  ?caller:bool ->
  ?min_chunk:int ->
  n:int ->
  (lo:int -> hi:int -> unit) ->
  unit
(** [parallel_for ~n body] runs [body ~lo ~hi] over a partition of
    [0, n): lane [l] takes chunks [l, l+lanes, ...] in a static
    round-robin stride, so which lane touches which indices is
    deterministic for a given lane count (the per-slot Region accounting
    the bench models from is scheduling-independent). [min_chunk] bounds
    the chunk size from below (and any [n] at or below it runs inline on
    the caller). [~caller:false] keeps slot 0 out of the walk: chunks
    stride over the worker slots only (worker slot [s] takes chunks
    [s-1, s-1+(lanes-1), ...]), still statically attributed, while the
    caller dispatches and joins — the parallel WAL replay's staging
    phase uses this to keep the committer slot's device clock clean.
    Ignored when there is no worker to take the chunks. *)

val map_chunks :
  ?force_serial:bool -> chunk:int -> n:int -> (lo:int -> hi:int -> 'a) -> 'a array
(** [map_chunks ~chunk ~n f] — run [f] over fixed chunk boundaries
    [j*chunk, min n ((j+1)*chunk)) and return the results {e in chunk
    order} (the scan engine relies on this for byte-identical output).
    Boundaries depend only on [chunk] and [n], never on the lane count;
    chunk→lane assignment is the same static stride as
    {!parallel_for}. *)

val submit_all : ?force_serial:bool -> ?caller:bool -> (unit -> unit) array -> unit
(** Run [n] independent tasks on the pool, each pulled off a shared
    cursor by whichever lane is free (the writer pipeline's staging
    phase). Task→lane assignment is {e dynamic} — unlike the strided
    entry points, callers must not depend on it; tasks must be
    commutative and, per the §10 contract, Region-read-only. Each task
    fires the [on_chunk] sync edge with its own index. A full join: all
    task writes (to task-private volatile state) are visible at return.
    [~caller:false] keeps slot 0 out of the pull loop (dispatch + join
    only), so its device clock stays free for serial work — used by the
    pipelined commit driver's sealer; ignored when there is no worker.
    One lane or one task degrades to inline iteration, hook-free. *)

val map_array : ?force_serial:bool -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel map, one task per element (for coarse tasks: merge columns,
    table attach). Results in input order. *)

val fork_join : ?force_serial:bool -> (unit -> 'a) list -> 'a list
(** Run independent thunks in parallel; results in input order. *)

val busy_ns_by_slot : unit -> int array
(** Cumulative in-task wall time per {!Util.Domain_slot} slot (caller
    lane included). The bench snapshots deltas of this to compute the
    modeled parallel critical path on core-limited hosts. *)

val shutdown : unit -> unit
(** Join all workers (tests; also safe to never call — idle workers
    don't block process exit). *)
