(** Bump-allocated persistent string arena.

    Dictionary strings are tiny and immortal within a table generation
    (the store is insert-only; the merge retires whole generations), so
    allocating each one its own heap block wastes header space and — worse
    — makes the allocator's recovery scan linear in the number of strings.
    The arena packs strings into large chunks instead: recovery cost is
    per {e chunk}, and a retired generation is freed wholesale.

    Publication protocol: the string bytes are persisted first, the bump
    offset second — a crash leaves at most one unreferenced hole below the
    bump, which the next [add] simply overwrites. An [add] larger than the
    chunk payload gets a dedicated oversize chunk.

    Strings are stored as [len][bytes] at the returned region offset —
    exactly {!Pstring}'s layout, so {!Pstring.get}/[length_at] read arena
    strings unchanged. *)

type t

val default_chunk_bytes : int
(** Payload capacity of a chunk (64 KiB). *)

val create : ?chunk_bytes:int -> Nvm_alloc.Allocator.t -> t
(** Empty arena (no chunks yet); durable on return. *)

val attach : Nvm_alloc.Allocator.t -> int -> t

val handle : t -> int

val add : t -> string -> int
(** Persist a string; returns its stable offset. Durable on return. *)

val get : t -> int -> string
(** Convenience accessor (any [Pstring.get] on the same allocator works
    too). *)

val chunk_count : t -> int

val bytes_on_nvm : t -> int
(** Total chunk capacity currently allocated. *)

val used_bytes : t -> int
(** Bytes actually occupied by strings (including length headers). *)

val owned_blocks : t -> int list

val verify : t -> unit
(** Structural scrub checks over the control words and chunk list.
    Interior strings are verified by whoever holds their offsets (text
    dictionaries), via {!Pstring.verify_at}. @raise Pcheck.Invalid. *)

val destroy : t -> unit
(** Free every chunk and the arena control block. *)
