(* Structural-verification failures for the persistent structures.

   Sealed words already self-check (Nvm.Seal, media.crc_failures); this
   exception covers the second class of damage a scrub walk can find:
   words that unseal fine but violate a cross-word invariant (a length
   above its capacity, a chain that revisits a leaf, a payload checksum
   mismatch). Verification entry points raise it instead of asserting so
   recovery can quarantine the owning table and keep going. *)

exception Invalid of { what : string; at : int }

let () =
  Printexc.register_printer (function
    | Invalid { what; at } ->
        Some (Printf.sprintf "Pstruct.Pcheck.Invalid(%s at %d)" what at)
    | _ -> None)

let fail ~at what = raise (Invalid { what; at })
let require cond ~at what = if not cond then fail ~at what
