module A = Nvm_alloc.Allocator
module Region = Nvm.Region
module Seal = Nvm.Seal

(* Arena control block (24 bytes):
     +0  chunk-list vector handle (Pvector of chunk payload offsets)
     +8  bump offset within the current chunk (bytes used)
     +16 chunk payload capacity
   Chunk = one allocator block of [chunk_bytes] (or larger, for oversize
   strings); strings are stored in the shared Pstring layout
   ([len | crc32 << 32][bytes]) and 8-byte aligned. The three control
   words are sealed. *)

let default_chunk_bytes = 64 * 1024

type t = {
  alloc : A.t;
  region : Region.t;
  handle : int;
  chunks : Pvector.t;
  chunk_bytes : int;
  mutable current : int; (* payload offset of the chunk being filled; 0 = none *)
  mutable used : int;
}

let create ?(chunk_bytes = default_chunk_bytes) alloc =
  if chunk_bytes < 64 then invalid_arg "Parena.create: chunk too small";
  let region = A.region alloc in
  let chunks = Pvector.create alloc in
  let handle = A.alloc alloc 24 in
  Seal.write region handle (Pvector.handle chunks);
  Seal.write region (handle + 8) 0;
  Seal.write region (handle + 16) chunk_bytes;
  Region.persist region handle 24;
  A.activate alloc handle;
  { alloc; region; handle; chunks; chunk_bytes; current = 0; used = 0 }

let attach alloc handle =
  let region = A.region alloc in
  let chunks = Pvector.attach alloc (Seal.read region ~what:"arena chunk list" handle) in
  let chunk_bytes = Seal.read region ~what:"arena chunk capacity" (handle + 16) in
  let used = Seal.read region ~what:"arena bump" (handle + 8) in
  let current =
    if Pvector.length chunks = 0 then 0
    else Pvector.get_int chunks (Pvector.length chunks - 1)
  in
  { alloc; region; handle; chunks; chunk_bytes; current; used }

let handle t = t.handle

let round8 n = (n + 7) land lnot 7

let fresh_chunk t size =
  let chunk = A.alloc t.alloc size in
  A.activate t.alloc chunk;
  (* register the chunk before any string in it becomes reachable, so
     [destroy] after a crash frees it; the published length is the
     registration commit point *)
  ignore (Pvector.append_int t.chunks chunk);
  Pvector.publish t.chunks;
  chunk

let write_payload t off s = Pstring.write_at t.region off s

let add t s =
  let need = round8 (8 + String.length s) in
  if need > t.chunk_bytes then begin
    (* oversize: dedicated chunk, fully consumed; the shared bump offset
       is untouched *)
    let chunk = fresh_chunk t need in
    write_payload t chunk s;
    chunk
  end
  else begin
    if t.current = 0 || t.used + need > t.chunk_bytes then begin
      t.current <- fresh_chunk t t.chunk_bytes;
      t.used <- 0
      (* the durable bump may still hold the previous chunk's value; a
         crash before the first bump below merely wastes this chunk *)
    end;
    let off = t.current + t.used in
    write_payload t off s;
    (* bump AFTER the bytes are durable: the bump is the publication *)
    t.used <- t.used + need;
    Region.expect_ordered t.region ~label:"parena.add"
      ~before:[ (off, 8 + String.length s) ]
      ~after:(t.handle + 8);
    Seal.write t.region (t.handle + 8) t.used;
    Region.persist t.region (t.handle + 8) 8;
    off
  end

let get t off = Pstring.get_at t.region off

let chunk_count t = Pvector.length t.chunks

let bytes_on_nvm t =
  let total = ref 0 in
  Pvector.iter
    (fun chunk -> total := !total + A.usable_size t.alloc (Int64.to_int chunk))
    t.chunks;
  !total + 24 + Pvector.words_on_nvm t.chunks

let used_bytes t =
  (* full chunks count as fully used except the current one *)
  let n = Pvector.length t.chunks in
  let full = max 0 (n - 1) in
  if t.current = 0 then 0 else (full * t.chunk_bytes) + t.used

let owned_blocks t =
  (t.handle :: Pvector.owned_blocks t.chunks)
  @ List.map Int64.to_int (Pvector.to_list t.chunks)

(* Scrub-time structural checks: the chunk list itself, then every
   registered chunk offset against the region and its own block. *)
let verify t =
  Pvector.verify t.chunks;
  Pcheck.require (t.chunk_bytes >= 64) ~at:(t.handle + 16) "arena chunk capacity";
  Pcheck.require
    (t.used >= 0 && t.used <= t.chunk_bytes)
    ~at:(t.handle + 8) "arena bump exceeds chunk capacity";
  Pvector.iter
    (fun chunk ->
      let chunk = Int64.to_int chunk in
      Pcheck.require
        (chunk > 0 && chunk < Region.size t.region)
        ~at:t.handle "arena chunk offset out of range";
      Pcheck.require
        (A.usable_size t.alloc chunk >= 8)
        ~at:chunk "arena chunk block too small")
    t.chunks

let destroy t =
  Pvector.iter (fun chunk -> A.free t.alloc (Int64.to_int chunk)) t.chunks;
  Pvector.destroy t.chunks;
  A.free t.alloc t.handle
