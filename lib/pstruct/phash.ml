module A = Nvm_alloc.Allocator
module Region = Nvm.Region
module Seal = Nvm.Seal

(* Handle block (8 bytes):   +0 bucket-array offset             (sealed)
   Bucket array:             +0 capacity (buckets, power of two) (sealed)
                             +8 buckets: capacity x (key, value)

   value = EMPTY (-1) marks a free bucket; occupancy is volatile and
   recounted on attach. *)

let empty = -1L

type t = {
  alloc : A.t;
  region : Region.t;
  handle : int;
  mutable table : int;
  mutable capacity : int;
  mutable size : int; (* -1 = unknown (after attach), recounted lazily *)
}

let bucket_off table i = table + 8 + (i * 16)

let round_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

(* splitmix64 finalizer: full-avalanche hash of the key *)
let hash k =
  let open Int64 in
  let z = mul (logxor k (shift_right_logical k 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  to_int (shift_right_logical (logxor z (shift_right_logical z 31)) 1)

let alloc_table alloc capacity =
  let region = A.region alloc in
  let table = A.alloc alloc (8 + (capacity * 16)) in
  Seal.write region table capacity;
  for i = 0 to capacity - 1 do
    Region.set_i64 region (bucket_off table i + 8) empty
  done;
  Region.persist region table (8 + (capacity * 16));
  table

let create ?(capacity = 16) alloc =
  let capacity = round_pow2 (max 4 capacity) in
  let region = A.region alloc in
  let table = alloc_table alloc capacity in
  A.activate alloc table;
  let handle = A.alloc alloc 8 in
  Seal.write region handle table;
  Region.persist region handle 8;
  A.activate alloc handle;
  { alloc; region; handle; table; capacity; size = 0 }

let attach alloc handle =
  let region = A.region alloc in
  let table = Seal.read region ~what:"hash table offset" handle in
  let capacity = Seal.read region ~what:"hash capacity" table in
  { alloc; region; handle; table; capacity; size = -1 }

let recount t =
  let size = ref 0 in
  for i = 0 to t.capacity - 1 do
    if Region.get_i64 t.region (bucket_off t.table i + 8) <> empty then
      incr size
  done;
  t.size <- !size

let handle t = t.handle

let length t =
  if t.size < 0 then recount t;
  t.size

let probe t k =
  (* returns [Ok (i, value)] if found, [Error i] with the insertion slot *)
  let mask = t.capacity - 1 in
  let rec go i steps =
    if steps > t.capacity then failwith "Phash: table full during probe"
    else
      let v = Region.get_i64 t.region (bucket_off t.table i + 8) in
      if v = empty then Error i
      else if Region.get_i64 t.region (bucket_off t.table i) = k then Ok (i, v)
      else go ((i + 1) land mask) (steps + 1)
  in
  go (hash k land mask) 0

let find t k = match probe t k with Ok (_, v) -> Some v | Error _ -> None
let mem t k = match probe t k with Ok _ -> true | Error _ -> false

let iter f t =
  for i = 0 to t.capacity - 1 do
    let v = Region.get_i64 t.region (bucket_off t.table i + 8) in
    if v <> empty then f (Region.get_i64 t.region (bucket_off t.table i)) v
  done

let resize t =
  let new_cap = t.capacity * 2 in
  let table = alloc_table t.alloc new_cap in
  let mask = new_cap - 1 in
  iter
    (fun k v ->
      let rec slot i =
        if Region.get_i64 t.region (bucket_off table i + 8) = empty then i
        else slot ((i + 1) land mask)
      in
      let i = slot (hash k land mask) in
      Region.set_i64 t.region (bucket_off table i) k;
      Region.set_i64 t.region (bucket_off table i + 8) v)
    t;
  Region.persist t.region table (8 + (new_cap * 16));
  (* atomic publication of the rebuilt array *)
  Region.expect_ordered t.region ~label:"phash.resize"
    ~before:[ (table, 8 + (new_cap * 16)) ]
    ~after:t.handle;
  A.activate ~link:(t.handle, Seal.seal table) t.alloc table;
  let old = t.table in
  t.table <- table;
  t.capacity <- new_cap;
  A.free t.alloc old

let insert t k v =
  if Int64.compare v 0L < 0 then invalid_arg "Phash.insert: negative value";
  if t.size < 0 then recount t;
  if t.size * 10 >= t.capacity * 7 then resize t;
  match probe t k with
  | Ok _ -> invalid_arg "Phash.insert: key already bound"
  | Error i ->
      let off = bucket_off t.table i in
      Region.with_label t.region "phash.insert" @@ fun () ->
      (* key first, value second: the value write is the publication *)
      Region.set_i64 t.region off k;
      Region.persist t.region off 8;
      Region.expect_ordered t.region ~label:"phash.insert"
        ~before:[ (off, 8) ] ~after:(off + 8);
      Region.set_i64 t.region (off + 8) v;
      Region.persist t.region (off + 8) 8;
      t.size <- t.size + 1

let find_or_insert t k mk =
  match find t k with
  | Some v -> v
  | None ->
      let v = mk () in
      insert t k v;
      v

let destroy t =
  A.free t.alloc t.table;
  A.free t.alloc t.handle

let owned_blocks t = [ t.handle; t.table ]

let bytes_on_nvm t = 8 + 8 + (t.capacity * 16)

let verify t =
  Pcheck.require
    (t.capacity >= 1 && t.capacity land (t.capacity - 1) = 0)
    ~at:t.table "hash capacity not a power of two";
  Pcheck.require
    (A.usable_size t.alloc t.table >= 8 + (t.capacity * 16))
    ~at:t.table "hash buckets exceed their block";
  (* every non-empty bucket's key must hash-chain back to its slot —
     cheap positional sanity that catches scrambled bucket words *)
  for i = 0 to t.capacity - 1 do
    let v = Region.get_i64 t.region (bucket_off t.table i + 8) in
    if v <> empty then
      Pcheck.require
        (Int64.compare v 0L >= 0)
        ~at:(bucket_off t.table i + 8)
        "hash bucket value negative"
  done
