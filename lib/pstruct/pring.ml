module A = Nvm_alloc.Allocator
module Region = Nvm.Region
module Seal = Nvm.Seal

(* Crash-persistent flight-recorder ring (PROTOCOLS.md §12).

   Handle block (32 bytes):  +0  magic (sealed)
                             +8  lanes (sealed)
                             +16 capacity, records per lane (sealed)
                             +24 data block offset (sealed)
   Data block: lanes × capacity records of 32 bytes each, lane-major:

     record  +0  sequence number (sealed)
             +8  caller word 1 (event header)
             +16 caller word 2 (event payload)
             +24 CRC32 of bytes [+0,+24) as stored (sealed)

   A record is published with plain stores, one write-back of its 32
   bytes and one fence — there is no ordered commit word. The CRC is the
   validity witness: a crash inside the publish window leaves a record
   that fails its CRC and is dropped at decode, truncating the lane at
   the torn tail — the same posture as WAL frame replay. Slots the ring
   has not reached yet fail the *seal* check (zeroed or foreign media
   never verifies), so a fresh ring decodes empty.

   Appends happen only on the caller lane (slot 0); worker-lane events
   are buffered volatile and drained caller-side at pool joins
   (PROTOCOLS.md §10), so the ring needs no cross-domain discipline. *)

type t = {
  alloc : A.t;
  region : Region.t;
  handle : int;
  data : int;
  lanes : int;
  capacity : int;
  next : int array; (* volatile per-lane append position *)
  scratch : Bytes.t; (* CRC staging; appends are caller-lane only *)
}

type record = { r_lane : int; r_seq : int; r_w1 : int64; r_w2 : int64 }

let record_bytes = 32
let magic = 0xB1ACB0C5
let max_lanes = Util.Domain_slot.max_slots

let lane_base t lane = t.data + (lane * t.capacity * record_bytes)
let slot_off t lane pos = lane_base t lane + (pos * record_bytes)

(* CRC of the record's first 24 bytes exactly as they sit on media *)
let record_crc buf w0 w1 w2 =
  Bytes.set_int64_le buf 0 w0;
  Bytes.set_int64_le buf 8 w1;
  Bytes.set_int64_le buf 16 w2;
  Int32.to_int (Util.Crc.bytes_sub buf 0 24) land 0xFFFF_FFFF

let create ?(lanes = 8) ?(capacity = 256) alloc =
  let lanes = max 1 (min lanes max_lanes) in
  let capacity = max 4 capacity in
  let region = A.region alloc in
  Region.with_label region "pring.create" @@ fun () ->
  let nbytes = lanes * capacity * record_bytes in
  let data = A.alloc alloc nbytes in
  (* zero the slots: a recycled block could hold stale-but-CRC-valid
     records from a previous life; zeroed words never pass the seal *)
  Region.write_bytes region data (Bytes.make nbytes '\000');
  Region.persist region data nbytes;
  A.activate alloc data;
  let handle = A.alloc alloc 32 in
  Seal.write region handle magic;
  Seal.write region (handle + 8) lanes;
  Seal.write region (handle + 16) capacity;
  Seal.write region (handle + 24) data;
  Region.persist region handle 32;
  A.activate alloc handle;
  {
    alloc;
    region;
    handle;
    data;
    lanes;
    capacity;
    next = Array.make lanes 0;
    scratch = Bytes.create 24;
  }

(* Scan one lane: collect CRC-valid records, order them by sequence
   number, then keep the longest prefix whose ring positions form the
   consecutive append chain (mod capacity). The first chain break is the
   torn tail — or a mid-ring media fault — and everything at or after it
   is dropped, like WAL replay truncating at the first bad frame.
   Returns the kept records (ascending seq), the next append position,
   and whether any valid record was dropped. *)
let scan_lane t lane =
  let buf = Bytes.create 24 in
  let valid = ref [] in
  for pos = 0 to t.capacity - 1 do
    let off = slot_off t lane pos in
    let w0 = Region.get_i64 t.region off in
    match Seal.unseal w0 with
    | None -> ()
    | Some seq -> (
        let w1 = Region.get_i64 t.region (off + 8) in
        let w2 = Region.get_i64 t.region (off + 16) in
        match Seal.unseal (Region.get_i64 t.region (off + 24)) with
        | Some crc when crc = record_crc buf w0 w1 w2 ->
            valid :=
              (pos, { r_lane = lane; r_seq = seq; r_w1 = w1; r_w2 = w2 })
              :: !valid
        | _ -> ())
  done;
  let sorted =
    List.sort (fun (_, a) (_, b) -> compare a.r_seq b.r_seq) !valid
  in
  match sorted with
  | [] -> ([], 0, false)
  | (first_pos, _) :: _ ->
      let expected = ref first_pos in
      let kept = ref [] in
      let dropped = ref false in
      List.iter
        (fun (pos, r) ->
          if !dropped then ()
          else if pos = !expected then begin
            kept := r :: !kept;
            expected := (pos + 1) mod t.capacity
          end
          else dropped := true)
        sorted;
      (List.rev !kept, !expected, !dropped)

let attach alloc handle =
  let region = A.region alloc in
  let m = Seal.read region ~what:"pring magic" handle in
  Pcheck.require (m = magic) ~at:handle "pring magic mismatch";
  let lanes = Seal.read region ~what:"pring lanes" (handle + 8) in
  let capacity = Seal.read region ~what:"pring capacity" (handle + 16) in
  let data = Seal.read region ~what:"pring data offset" (handle + 24) in
  Pcheck.require (lanes >= 1 && lanes <= max_lanes) ~at:handle
    "pring lane count out of range";
  Pcheck.require (capacity >= 4) ~at:handle "pring capacity out of range";
  Pcheck.require
    (A.usable_size alloc data >= lanes * capacity * record_bytes)
    ~at:data "pring data exceeds its block";
  let t =
    {
      alloc;
      region;
      handle;
      data;
      lanes;
      capacity;
      next = Array.make lanes 0;
      scratch = Bytes.create 24;
    }
  in
  for lane = 0 to lanes - 1 do
    let _, next, _ = scan_lane t lane in
    t.next.(lane) <- next
  done;
  t

let handle t = t.handle
let lanes t = t.lanes
let capacity t = t.capacity

let append t ~lane ~seq w1 w2 =
  if lane < 0 || lane >= t.lanes then
    invalid_arg (Printf.sprintf "Pring.append: lane %d of %d" lane t.lanes);
  if seq < 0 || seq > Seal.max_value then
    invalid_arg "Pring.append: seq out of 48-bit range";
  Region.with_label t.region "pring.append" @@ fun () ->
  let pos = t.next.(lane) in
  let off = slot_off t lane pos in
  let w0 = Seal.seal seq in
  Region.set_i64 t.region off w0;
  Region.set_i64 t.region (off + 8) w1;
  Region.set_i64 t.region (off + 16) w2;
  Seal.write t.region (off + 24) (record_crc t.scratch w0 w1 w2);
  Region.writeback t.region off record_bytes;
  (* one fence per record, elided when the queue is already drained; the
     CRC word is the validity witness, not an ordered commit point — a
     crash inside this window tears the record and decode truncates *)
  Region.fence_if_pending t.region;
  t.next.(lane) <- (pos + 1) mod t.capacity

let decode t =
  let all = ref [] in
  let truncated = ref 0 in
  for lane = 0 to t.lanes - 1 do
    let kept, next, dropped = scan_lane t lane in
    t.next.(lane) <- next;
    if dropped then Stdlib.incr truncated;
    all := List.rev_append kept !all
  done;
  (List.sort (fun a b -> compare a.r_seq b.r_seq) !all, !truncated)

let max_seq t =
  let records, _ = decode t in
  List.fold_left (fun acc r -> max acc r.r_seq) 0 records

let owned_blocks t = [ t.handle; t.data ]

let extents t =
  [ (t.handle, 32); (t.data, t.lanes * t.capacity * record_bytes) ]

let verify t =
  Pcheck.require
    (A.usable_size t.alloc t.data >= t.lanes * t.capacity * record_bytes)
    ~at:t.data "pring data exceeds its block"

let words_on_nvm t = 32 + (t.lanes * t.capacity * record_bytes)
