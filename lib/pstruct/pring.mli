(** Crash-persistent flight-recorder ring: per-lane circular buffers of
    fixed-size, CRC-sealed 32-byte records living inside the NVM region
    (PROTOCOLS.md §12).

    Each record carries a sealed sequence number, two caller-owned
    64-bit words (the engine packs an {!Obs.Event.t} into them) and a
    sealed CRC32 of the record body. A record is published with one
    write-back and one fence and {e no} ordered commit word: the CRC is
    the validity witness, so a crash mid-publish leaves a torn record
    that {!decode} drops, truncating the lane at the torn tail — the
    same posture as WAL frame replay.

    Appends are caller-lane-only (PROTOCOLS.md §10): worker-lane events
    buffer volatile in {!Obs.Blackbox} and the pool drains them
    caller-side at each join. *)

type t

type record = {
  r_lane : int;  (** ring lane the record was appended to *)
  r_seq : int;  (** sealed sequence number (merge key) *)
  r_w1 : int64;  (** caller word 1 (event header) *)
  r_w2 : int64;  (** caller word 2 (event payload) *)
}

val create : ?lanes:int -> ?capacity:int -> Nvm_alloc.Allocator.t -> t
(** Allocate, zero and activate a ring of [lanes] (default 8, clamped to
    [1, Util.Domain_slot.max_slots]) sub-rings of [capacity] records
    each (default 256, min 4). *)

val attach : Nvm_alloc.Allocator.t -> int -> t
(** Reattach from a handle offset after restart. Validates the sealed
    handle words ([Nvm.Seal.Corrupt] / {!Pcheck.Invalid} on damage) and
    recovers each lane's append position from the surviving records. *)

val handle : t -> int
val lanes : t -> int
val capacity : t -> int

val append : t -> lane:int -> seq:int -> int64 -> int64 -> unit
(** Publish one record at the lane's next position (overwriting the
    oldest once the lane wraps): four stores, one 32-byte write-back,
    one [fence_if_pending]. The record is durable when [append]
    returns. Caller lane only. *)

val decode : t -> record list * int
(** All CRC-valid records, merged across lanes in ascending sequence
    order, plus the number of lanes that were truncated (a CRC-invalid
    or torn record cut the lane short of some still-valid later
    records). Per lane, decode keeps the longest seq-ordered prefix
    whose positions form the append chain and drops the rest. Also
    re-synchronizes the volatile append positions. *)

val max_seq : t -> int
(** Largest decoded sequence number, 0 if the ring is empty (recovery
    feeds this to {!Obs.Blackbox.seq_floor}). *)

val owned_blocks : t -> int list
(** Allocator blocks owned by the ring (handle and data) — must be part
    of the engine's live set so vacuum never sweeps the recorder. *)

val extents : t -> (int * int) list
(** [(offset, length)] byte ranges of the ring on media — what
    determinism checks exclude from a {!Nvm.Region.media_digest} (ring
    records hold wall clocks). *)

val verify : t -> unit
(** Structural check beyond {!attach}'s sealed reads. *)

val words_on_nvm : t -> int
