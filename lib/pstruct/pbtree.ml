module A = Nvm_alloc.Allocator
module Region = Nvm.Region
module Seal = Nvm.Seal

(* Separators are (key, value) pairs ordered lexicographically: exact
   duplicates being merged, pairs are unique, so equal keys spread across
   many leaves still get distinct separators. *)
module Pair = struct
  type t = int64 * int64

  let compare (k1, v1) (k2, v2) =
    match Int64.compare k1 k2 with 0 -> Int64.compare v1 v2 | c -> c
end

module Imap = Map.Make (Pair)

let leaf_capacity = 32

(* Leaf (528 bytes):        +0   occupancy bitmap (bit i = slot i live)
                            +8   next leaf offset (0 = end of chain)
                            +16  keys,   32 x 8 bytes
                            +272 values, 32 x 8 bytes
   Handle block (24 bytes): +0   head leaf offset             (sealed)
                            +8   leaf-chunk vector handle     (sealed)
                            +16  leaves used in the last chunk (sealed)

   Leaf next-offsets are sealed too; the occupancy bitmap stays raw (it
   IS the publication word) but only its low 32 bits are meaningful, so
   verification rejects any high bit.

   Slots are unsorted (FPTree): publication = flipping a bitmap bit, and
   no insert ever shifts other entries.

   Leaves are bump-allocated from chunks of [leaves_per_chunk] — the
   allocator's recovery scan then costs one block per chunk, not per leaf
   (the nvm_malloc chunking idea). The bump counter is persisted BEFORE a
   leaf is initialized and linked, so a slot referenced by the chain can
   never be handed out again; a crash in between merely wastes slots. *)

let leaf_bytes = 16 + (leaf_capacity * 16)
let leaves_per_chunk = 16
let key_off leaf s = leaf + 16 + (s * 8)
let val_off leaf s = leaf + 16 + (leaf_capacity * 8) + (s * 8)

type t = {
  alloc : A.t;
  region : Region.t;
  handle : int;
  chunks : Pvector.t;
  mutable used : int; (* leaves taken in the last chunk *)
  (* separator (key, value) pair -> leaf; the head leaf's separator is
     (min_int, min_int).  After [attach] the index is rebuilt lazily on
     first use, so a restart pays nothing per tree. *)
  mutable index : int Imap.t;
  mutable size : int;
  mutable built : bool;
  (* volatile per-leaf generation counters, bumped on every mutation of
     a leaf (slot write, split source). A reader can snapshot the
     generations of the leaves it walked and later ask whether the
     walked range is still exactly what it saw ([snap_valid]) — the
     writer pipeline's stage-time dictionary probes revalidate this way
     instead of re-scanning leaves in the serial seal. Never persisted:
     a fresh attach starts every leaf at generation 0, and snapshots do
     not outlive the handle that made them. *)
  leaf_gens : (int, int) Hashtbl.t;
}

let bitmap t leaf = Region.get_i64 t.region leaf
let next t leaf = Seal.read t.region ~what:"btree next leaf" (leaf + 8)
let slot_live bm s = Int64.logand bm (Int64.shift_left 1L s) <> 0L

let leaf_entries t leaf =
  let bm = bitmap t leaf in
  let acc = ref [] in
  for s = leaf_capacity - 1 downto 0 do
    if slot_live bm s then
      acc :=
        (Region.get_i64 t.region (key_off leaf s),
         Region.get_i64 t.region (val_off leaf s))
        :: !acc
  done;
  !acc

let leaf_min_pair t leaf =
  List.fold_left
    (fun acc p ->
      match acc with
      | None -> Some p
      | Some m -> if Pair.compare p m < 0 then Some p else Some m)
    None (leaf_entries t leaf)

(* take a fresh leaf slot: the bump persist precedes any use of the slot *)
let leaf_slot t =
  if t.used >= leaves_per_chunk || Pvector.length t.chunks = 0 then begin
    let chunk = A.alloc t.alloc (leaves_per_chunk * leaf_bytes) in
    A.activate t.alloc chunk;
    (* registration first: [destroy] must reach the chunk even if the
       bump below never lands *)
    ignore (Pvector.append_int t.chunks chunk);
    Pvector.publish t.chunks;
    t.used <- 0
  end;
  let chunk = Pvector.get_int t.chunks (Pvector.length t.chunks - 1) in
  let leaf = chunk + (t.used * leaf_bytes) in
  t.used <- t.used + 1;
  Seal.write t.region (t.handle + 16) t.used;
  Region.persist t.region (t.handle + 16) 8;
  leaf

let init_leaf t leaf ~next_off entries =
  let bm = ref 0L in
  List.iteri
    (fun s (k, v) ->
      Region.set_i64 t.region (key_off leaf s) k;
      Region.set_i64 t.region (val_off leaf s) v;
      bm := Int64.logor !bm (Int64.shift_left 1L s))
    entries;
  Region.set_i64 t.region leaf !bm;
  Seal.write t.region (leaf + 8) next_off;
  Region.persist t.region leaf leaf_bytes

let create alloc =
  let region = A.region alloc in
  let chunks = Pvector.create alloc in
  let handle = A.alloc alloc 24 in
  let t =
    {
      alloc;
      region;
      handle;
      chunks;
      used = leaves_per_chunk (* force a chunk on first slot *);
      index = Imap.empty;
      size = 0;
      built = true;
      leaf_gens = Hashtbl.create 64;
    }
  in
  Seal.write region (handle + 8) (Pvector.handle chunks);
  let head = leaf_slot t in
  init_leaf t head ~next_off:0 [];
  Seal.write region handle head;
  Region.persist region handle 24;
  A.activate alloc handle;
  t.index <- Imap.singleton (Int64.min_int, Int64.min_int) head;
  t

(* Repair an interrupted split: a slot in [leaf] whose exact (key, value)
   pair also lives in the NEXT leaf is a stale duplicate of a moved entry
   (steady-state leaves never share pairs, because [insert] merges exact
   duplicates). *)
let repair_split t leaf =
  match next t leaf with
  | 0 -> ()
  | nleaf ->
      let moved = leaf_entries t nleaf in
      if moved <> [] then begin
        let bm = bitmap t leaf in
        let cleared = ref bm in
        for s = 0 to leaf_capacity - 1 do
          if slot_live bm s then begin
            let k = Region.get_i64 t.region (key_off leaf s) in
            let v = Region.get_i64 t.region (val_off leaf s) in
            if List.mem (k, v) moved then
              cleared :=
                Int64.logand !cleared (Int64.lognot (Int64.shift_left 1L s))
          end
        done;
        if !cleared <> bm then begin
          Region.set_i64 t.region leaf !cleared;
          Region.persist t.region leaf 8
        end
      end

(* Defensive bound on any chain walk: the chunks can hold at most this
   many leaves, so a longer chain means the media lied (a corrupted next
   pointer forming a cycle or jumping into foreign data). *)
let max_leaves t = max 1 (Pvector.length t.chunks * leaves_per_chunk)

let check_leaf_off t leaf =
  if leaf <= 0 || leaf land 7 <> 0 || leaf + leaf_bytes > Region.size t.region
  then Pcheck.fail ~at:leaf "btree leaf offset out of range"

let build_index t =
  t.index <- Imap.empty;
  t.size <- 0;
  let cap = max_leaves t in
  let head = Seal.read t.region ~what:"btree head leaf" t.handle in
  let rec walk leaf sep n =
    if n > cap then Pcheck.fail ~at:leaf "btree leaf chain too long";
    check_leaf_off t leaf;
    repair_split t leaf;
    t.index <- Imap.add sep leaf t.index;
    t.size <- t.size + List.length (leaf_entries t leaf);
    match next t leaf with
    | 0 -> ()
    | nleaf ->
        (* after repair the next leaf's min is a valid separator *)
        walk nleaf (Option.get (leaf_min_pair t nleaf)) (n + 1)
  in
  walk head (Int64.min_int, Int64.min_int) 1;
  t.built <- true

let ensure t = if not t.built then build_index t

let attach alloc handle =
  let region = A.region alloc in
  {
    alloc;
    region;
    handle;
    chunks = Pvector.attach alloc (Seal.read region ~what:"btree chunk list" (handle + 8));
    used = Seal.read region ~what:"btree used leaves" (handle + 16);
    index = Imap.empty;
    size = 0;
    built = false;
    leaf_gens = Hashtbl.create 64;
  }

let handle t = t.handle

let length t =
  ensure t;
  t.size

let lookup_leaf t p =
  match Imap.find_last_opt (fun sep -> Pair.compare sep p <= 0) t.index with
  | Some (_, leaf) -> leaf
  | None -> Imap.find (Int64.min_int, Int64.min_int) t.index

let leaf_gen t leaf =
  match Hashtbl.find_opt t.leaf_gens leaf with Some g -> g | None -> 0

let bump_gen t leaf = Hashtbl.replace t.leaf_gens leaf (leaf_gen t leaf + 1)

let free_slot bm =
  let rec go s =
    if s >= leaf_capacity then None
    else if slot_live bm s then go (s + 1)
    else Some s
  in
  go 0

let split t leaf =
  let entries =
    List.sort
      (fun (k1, v1) (k2, v2) ->
        match Int64.compare k1 k2 with 0 -> Int64.compare v1 v2 | c -> c)
      (leaf_entries t leaf)
  in
  let n = List.length entries in
  let lower = List.filteri (fun i _ -> i < n / 2) entries in
  let upper = List.filteri (fun i _ -> i >= n / 2) entries in
  let sep = List.hd upper in
  let sep_key = fst sep in
  (* 1. persist the new leaf, then atomically link it after [leaf] with a
     single durable word *)
  let nleaf = leaf_slot t in
  init_leaf t nleaf ~next_off:(next t leaf) upper;
  Region.expect_ordered t.region ~label:"pbtree.split"
    ~before:[ (nleaf, leaf_bytes) ]
    ~after:(leaf + 8);
  Seal.write t.region (leaf + 8) nleaf;
  Region.persist t.region (leaf + 8) 8;
  (* 2. retire the moved slots; a crash before this is repaired on attach *)
  let bm = ref 0L in
  let keep = List.length lower in
  (* recompute which slots hold the lower entries: rewrite bitmap only *)
  let old_bm = bitmap t leaf in
  let kept = ref 0 in
  for s = 0 to leaf_capacity - 1 do
    if slot_live old_bm s then begin
      let k = Region.get_i64 t.region (key_off leaf s) in
      let keep_slot =
        Int64.compare k sep_key < 0
        ||
        (* equal keys may straddle the median: keep the ones whose value
           sorts below the first moved entry *)
        (Int64.compare k sep_key = 0
        &&
        let v = Region.get_i64 t.region (val_off leaf s) in
        not
          (List.exists (fun (uk, uv) -> uk = k && uv = v) upper))
      in
      if keep_slot && !kept < keep then begin
        bm := Int64.logor !bm (Int64.shift_left 1L s);
        incr kept
      end
    end
  done;
  Region.set_i64 t.region leaf !bm;
  Region.persist t.region leaf 8;
  bump_gen t leaf;
  t.index <- Imap.add sep nleaf t.index

(* the publication write path shared by [insert] and [insert_fresh]:
   find (splitting as needed) a free slot in the target leaf and
   publish the pair into it — key/value durable first, bitmap bit last *)
let rec insert_slot t k v =
  let leaf = lookup_leaf t (k, v) in
  match free_slot (bitmap t leaf) with
  | None ->
      split t leaf;
      insert_slot t k v
  | Some s ->
      Region.with_label t.region "pbtree.insert" @@ fun () ->
      Region.set_i64 t.region (key_off leaf s) k;
      Region.set_i64 t.region (val_off leaf s) v;
      Region.writeback t.region (key_off leaf s) 8;
      Region.writeback t.region (val_off leaf s) 8;
      Region.fence t.region;
      Region.expect_ordered t.region ~label:"pbtree.insert"
        ~before:[ (key_off leaf s, 8); (val_off leaf s, 8) ]
        ~after:leaf;
      Region.set_i64 t.region leaf
        (Int64.logor (bitmap t leaf) (Int64.shift_left 1L s));
      Region.persist t.region leaf 8;
      bump_gen t leaf;
      t.size <- t.size + 1

let insert t k v =
  ensure t;
  (* merge exact duplicates *)
  let leaf = lookup_leaf t (k, v) in
  let dup =
    List.exists (fun (ek, ev) -> ek = k && ev = v) (leaf_entries t leaf)
  in
  if not dup then insert_slot t k v

let insert_fresh t k v =
  ensure t;
  insert_slot t k v

type snap = (int * int) list

let iter_range_snap t ~lo ~hi f =
  ensure t;
  let snap = ref [] in
  if Int64.compare lo hi <= 0 then begin
    (* start at the STRICT predecessor separator: when equal keys straddle
       a split boundary, entries with key = lo can live one leaf to the
       left of the leaf whose separator equals lo *)
    let start =
      match
        Imap.find_last_opt
          (fun sep -> Pair.compare sep (lo, Int64.min_int) < 0)
          t.index
      with
      | Some (_, leaf) -> leaf
      | None -> Imap.find (Int64.min_int, Int64.min_int) t.index
    in
    let last = ref None in
    let rec walk leaf =
      snap := (leaf, leaf_gen t leaf) :: !snap;
      let entries =
        List.sort
          (fun (k1, v1) (k2, v2) ->
            match Int64.compare k1 k2 with 0 -> Int64.compare v1 v2 | c -> c)
          (leaf_entries t leaf)
      in
      let min_k = match entries with [] -> None | (k, _) :: _ -> Some k in
      List.iter
        (fun (k, v) ->
          if Int64.compare k lo >= 0 && Int64.compare k hi <= 0 then
            (* drop exact duplicates left by a repaired-but-unattached
               interrupted split (they are adjacent across the boundary) *)
            if !last <> Some (k, v) then begin
              f k v;
              last := Some (k, v)
            end)
        entries;
      match next t leaf with
      | 0 -> ()
      | nleaf -> (
          match min_k with
          | Some mk when Int64.compare mk hi > 0 -> ()
          | _ -> walk nleaf)
    in
    walk start
  end;
  !snap

let iter_range t ~lo ~hi f = ignore (iter_range_snap t ~lo ~hi f)

let snap_valid t snap =
  List.for_all (fun (leaf, g) -> leaf_gen t leaf = g) snap

let iter f t = iter_range t ~lo:Int64.min_int ~hi:Int64.max_int f

let to_list t =
  let acc = ref [] in
  iter (fun k v -> acc := (k, v) :: !acc) t;
  List.rev !acc

let find t k =
  let result = ref None in
  (try
     iter_range t ~lo:k ~hi:k (fun _ v ->
         result := Some v;
         raise Exit)
   with Exit -> ());
  !result

let mem t k = find t k <> None

let leaf_count t =
  ensure t;
  Imap.cardinal t.index

let destroy t =
  Pvector.iter (fun chunk -> A.free t.alloc (Int64.to_int chunk)) t.chunks;
  Pvector.destroy t.chunks;
  A.free t.alloc t.handle

let owned_blocks t =
  (t.handle :: Pvector.owned_blocks t.chunks)
  @ List.map Int64.to_int (Pvector.to_list t.chunks)

let bytes_on_nvm t =
  24
  + Pvector.words_on_nvm t.chunks
  + (Pvector.length t.chunks * leaves_per_chunk * leaf_bytes)

(* Scrub: chunk list, control words, then a bounded chain walk checking
   that every leaf lies on a leaf boundary of a registered chunk and
   that no occupancy bitmap sets a bit past [leaf_capacity]. *)
let verify ?(deep = false) t =
  Pvector.verify t.chunks;
  Pcheck.require
    (t.used >= 0 && t.used <= leaves_per_chunk)
    ~at:(t.handle + 16) "btree used-leaves out of range";
  let chunks = List.map Int64.to_int (Pvector.to_list t.chunks) in
  List.iter
    (fun c ->
      Pcheck.require
        (c > 0 && c + (leaves_per_chunk * leaf_bytes) <= Region.size t.region)
        ~at:t.handle "btree chunk out of range";
      Pcheck.require
        (A.usable_size t.alloc c >= leaves_per_chunk * leaf_bytes)
        ~at:c "btree chunk block too small")
    chunks;
  (* the leaf-chain walk reads every leaf header — linear in the data,
     so it rides the deep tier; shallow stays per-chunk *)
  if deep then begin
    let in_chunks leaf =
      List.exists
        (fun c ->
          leaf >= c
          && leaf < c + (leaves_per_chunk * leaf_bytes)
          && (leaf - c) mod leaf_bytes = 0)
        chunks
    in
    let cap = max_leaves t in
    let head = Seal.read t.region ~what:"btree head leaf" t.handle in
    let rec walk leaf n =
      if n > cap then Pcheck.fail ~at:leaf "btree leaf chain too long";
      check_leaf_off t leaf;
      Pcheck.require (in_chunks leaf) ~at:leaf "btree leaf outside its chunks";
      Pcheck.require
        (Int64.shift_right_logical (bitmap t leaf) leaf_capacity = 0L)
        ~at:leaf "btree bitmap sets bits past capacity";
      match next t leaf with 0 -> () | nleaf -> walk nleaf (n + 1)
    in
    walk head 1
  end
