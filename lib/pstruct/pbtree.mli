(** Persistent B+-tree with volatile inner nodes (FPTree-style).

    Hyrise-NV keeps index structures on NVM so that restarts do not pay an
    index rebuild proportional to the table. We reproduce the published
    FPTree recipe: {e leaves} are persistent — fixed-capacity slot arrays
    with an occupancy bitmap, chained into a sorted linked list — while the
    {e inner} search structure is volatile and reconstructed from the leaf
    chain on [attach] (one key read per leaf, not per entry).

    Crash consistency:
    - an insert publishes by setting the slot's bitmap bit {e after} the
      key and value words are durable, so a torn insert is invisible;
    - a split first persists and atomically links the new leaf (via the
      allocator's link-in-activate), then clears the moved slots in the
      old leaf; a crash in between leaves identical duplicate entries in
      two adjacent leaves, which [attach] detects and repairs.

    The tree is insert-only (a multimap on exact-duplicate-free pairs), as
    Hyrise's delta indexes are — deletion happens wholesale when the merge
    rebuilds the index. *)

type t

val leaf_capacity : int
(** Entries per leaf (32). *)

val create : Nvm_alloc.Allocator.t -> t

val attach : Nvm_alloc.Allocator.t -> int -> t
(** Rebuild the volatile inner index by walking the leaf chain, repairing
    any interrupted split on the way. Cost: O(#leaves). *)

val handle : t -> int

val length : t -> int
(** Number of entries (volatile count; recomputed on [attach]). *)

val insert : t -> int64 -> int64 -> unit
(** [insert t k v] durably publishes the pair. Exact duplicates (same key
    {e and} value) are merged; equal keys with distinct values coexist. *)

val insert_fresh : t -> int64 -> int64 -> unit
(** [insert] for a pair the caller {e guarantees} is not in the tree —
    skips the duplicate-merge scan of the target leaf, so the write costs
    a bitmap read plus the publication stores instead of a full leaf
    scan. The column store's insert paths qualify wholesale: dictionary
    entries bind a fresh value-id and index entries a fresh physical row,
    so the pair can never pre-exist. Inserting a duplicate through this
    entry point would make the pair ambiguous to the split repair —
    don't. *)

val find : t -> int64 -> int64 option
(** Any value bound to the key (the minimum one, for determinism). *)

val mem : t -> int64 -> bool

val iter_range : t -> lo:int64 -> hi:int64 -> (int64 -> int64 -> unit) -> unit
(** All pairs with [lo <= key <= hi] (signed compare), in ascending key
    order; ties ordered by value. *)

type snap
(** Volatile witness of a range walk: the leaves visited and their
    generation counters (bumped on every leaf mutation). Tied to this
    handle — meaningless across [attach]. *)

val iter_range_snap :
  t -> lo:int64 -> hi:int64 -> (int64 -> int64 -> unit) -> snap
(** [iter_range] that also returns a witness of the walk. While
    {!snap_valid} holds, the range's contents are exactly what [f] saw —
    any insert that could land a key in [lo..hi] must touch (or split) a
    visited leaf. The writer pipeline's stage-phase dictionary probes use
    this to revalidate a miss at seal time without re-reading leaves. *)

val snap_valid : t -> snap -> bool
(** No leaf visited by the walk has been mutated since. O(#leaves
    visited), pure volatile reads. *)

val iter : (int64 -> int64 -> unit) -> t -> unit

val to_list : t -> (int64 * int64) list

val leaf_count : t -> int

val destroy : t -> unit

val owned_blocks : t -> int list

val bytes_on_nvm : t -> int

val verify : ?deep:bool -> t -> unit
(** Structural scrub: chunk list and control words in constant time per
    chunk. With [~deep:true], additionally a bounded next-chain walk
    checking every leaf sits on a leaf boundary of a registered chunk
    and no bitmap bit exceeds the capacity — linear in the leaves, so it
    rides the deep (payload-checksum) tier. A corrupted next pointer
    (cycle or wild jump) fails the bound instead of looping.
    @raise Pcheck.Invalid or [Nvm.Seal.Corrupt]. *)
