module A = Nvm_alloc.Allocator
module Region = Nvm.Region
module Seal = Nvm.Seal

(* Handle block (16 bytes):  +0 published size (elements)
                             +8 data block offset
   Data block:               +0 capacity (elements)
                             +8 elements, 8 bytes each

   The capacity lives in the data block so that relocation on growth
   changes exactly one durable word (the data offset), which the
   allocator's link-in-activate makes atomic.

   The three metadata words (published size, data offset, capacity) are
   sealed (Nvm.Seal); elements are raw caller words. *)

type t = {
  alloc : A.t;
  region : Region.t;
  handle : int;
  mutable data : int;
  mutable capacity : int;
  mutable size : int; (* volatile length *)
  mutable published : int; (* volatile mirror of the durable length word *)
  scratch : Bytes.t array;
      (* per-domain-slot staging buffers for block reads: parallel scan
         chunks decode the same vector from several domains at once *)
}

let elem_off data i = data + 8 + (i * 8)

let create ?(capacity = 8) alloc =
  let capacity = max 1 capacity in
  let region = A.region alloc in
  let data = A.alloc alloc (8 + (capacity * 8)) in
  Seal.write region data capacity;
  Region.persist region data 8;
  A.activate alloc data;
  let handle = A.alloc alloc 16 in
  Seal.write region handle 0;
  Seal.write region (handle + 8) data;
  Region.persist region handle 16;
  A.activate alloc handle;
  {
    alloc;
    region;
    handle;
    data;
    capacity;
    size = 0;
    published = 0;
    scratch = Array.make Util.Domain_slot.max_slots (Bytes.create 0);
  }

let attach alloc handle =
  let region = A.region alloc in
  let size = Seal.read region ~what:"pvector length" handle in
  let data = Seal.read region ~what:"pvector data offset" (handle + 8) in
  let capacity = Seal.read region ~what:"pvector capacity" data in
  {
    alloc;
    region;
    handle;
    data;
    capacity;
    size;
    published = size;
    scratch = Array.make Util.Domain_slot.max_slots (Bytes.create 0);
  }

let handle t = t.handle
let length t = t.size
let published_length t = Seal.read t.region ~what:"pvector length" t.handle

let check_index t i fn =
  if i < 0 || i >= t.size then
    invalid_arg (Printf.sprintf "Pvector.%s: index %d out of %d" fn i t.size)

let get t i =
  check_index t i "get";
  Region.get_i64 t.region (elem_off t.data i)

let get_int t i = Int64.to_int (get t i)

let get_int_sat t i =
  let v = Int64.to_int (get t i) in
  if v < 0 then max_int else v

let set t i v =
  check_index t i "set";
  let off = elem_off t.data i in
  Region.set_i64 t.region off v;
  Region.writeback t.region off 8

let set_int t i v = set t i (Int64.of_int v)

let check_block t pos len fn =
  if pos < 0 || len < 0 || pos + len > t.size then
    invalid_arg
      (Printf.sprintf "Pvector.%s: range [%d,+%d) out of %d" fn pos len t.size)

(* One bulk region read per block, then in-DRAM decodes: a block of [len]
   elements costs [len] accounted loads but only one range check, one
   cache-line walk and one trace hook — the per-element bookkeeping [get]
   pays disappears. *)
let read_block t pos len fn =
  check_block t pos len fn;
  let nbytes = len * 8 in
  let slot = Util.Domain_slot.get () in
  if Bytes.length t.scratch.(slot) < nbytes then
    t.scratch.(slot) <- Bytes.create nbytes;
  let buf = t.scratch.(slot) in
  if len > 0 then
    Region.read_into_bytes t.region (elem_off t.data pos) buf 0 nbytes;
  buf

let read_into_int t ~pos ~len dst =
  if Array.length dst < len then
    invalid_arg "Pvector.read_into_int: destination too small";
  let buf = read_block t pos len "read_into_int" in
  for i = 0 to len - 1 do
    dst.(i) <- Int64.to_int (Bytes.get_int64_le buf (i * 8))
  done

let read_into_int_sat t ~pos ~len dst =
  if Array.length dst < len then
    invalid_arg "Pvector.read_into_int_sat: destination too small";
  let buf = read_block t pos len "read_into_int_sat" in
  for i = 0 to len - 1 do
    (* words at or above 2^62 — Cid.infinity above all — truncate to a
       negative int; saturate them to max_int so native-int ordering
       matches the stored 64-bit ordering *)
    let v = Int64.to_int (Bytes.get_int64_le buf (i * 8)) in
    dst.(i) <- (if v < 0 then max_int else v)
  done

let grow t =
  let new_cap = t.capacity * 2 in
  let new_data = A.alloc t.alloc (8 + (new_cap * 8)) in
  Seal.write t.region new_data new_cap;
  if t.size > 0 then
    Region.write_bytes t.region (new_data + 8)
      (Region.read_bytes t.region (t.data + 8) (t.size * 8));
  Region.persist t.region new_data (8 + (t.size * 8));
  (* atomic publication of the relocation *)
  Region.expect_ordered t.region ~label:"pvector.grow"
    ~before:[ (new_data, 8 + (t.size * 8)) ]
    ~after:(t.handle + 8);
  A.activate ~link:(t.handle + 8, Seal.seal new_data) t.alloc new_data;
  let old = t.data in
  t.data <- new_data;
  t.capacity <- new_cap;
  A.free t.alloc old

let append t v =
  if t.size = t.capacity then grow t;
  let i = t.size in
  let off = elem_off t.data i in
  Region.set_i64 t.region off v;
  Region.writeback t.region off 8;
  t.size <- i + 1;
  i

let append_int t v = append t (Int64.of_int v)

let publish_unfenced t =
  (* the durable length already matches: storing it again would only
     re-dirty the handle line and force a useless write-back *)
  if t.size <> t.published then begin
    Seal.write t.region t.handle t.size;
    Region.writeback t.region t.handle 8;
    t.published <- t.size
  end

let publish t =
  Region.with_label t.region "pvector.publish" @@ fun () ->
  if t.size <> t.published then begin
    (* data first, then the length word: the length is the commit point.
       The leading fence is elided when nothing is awaiting write-back. *)
    Region.fence_if_pending t.region;
    Region.expect_ordered t.region ~label:"pvector.publish"
      ~before:[ (t.data + 8, t.size * 8) ]
      ~after:t.handle;
    Seal.write t.region t.handle t.size;
    Region.writeback t.region t.handle 8;
    Region.fence t.region;
    t.published <- t.size
  end
  else
    (* length unchanged but [set]/staged stores may be in flight *)
    Region.fence_if_pending t.region

let truncate_volatile t n =
  if n < 0 || n > t.capacity then invalid_arg "Pvector.truncate_volatile";
  t.size <- n

let iter f t =
  for i = 0 to t.size - 1 do
    f (get t i)
  done

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (get t i :: acc) in
  go (t.size - 1) []

(* Free in descending address order so forward coalescing reunites the
   blocks with the free space that follows them. *)
let destroy t =
  let a = min t.data t.handle and b = max t.data t.handle in
  A.free t.alloc b;
  A.free t.alloc a

let owned_blocks t = [ t.handle; t.data ]

(* Scrub-time structural checks beyond what the sealed reads in [attach]
   already enforce: the capacity must fit the allocator block that holds
   it and the published length must fit the capacity. *)
let verify t =
  Pcheck.require (t.capacity >= 1) ~at:t.data "pvector capacity < 1";
  Pcheck.require
    (t.published >= 0 && t.published <= t.capacity)
    ~at:t.handle "pvector length exceeds capacity";
  Pcheck.require
    (A.usable_size t.alloc t.data >= 8 + (t.capacity * 8))
    ~at:t.data "pvector capacity exceeds its block"


let words_on_nvm t = 16 + 8 + (t.capacity * 8)
