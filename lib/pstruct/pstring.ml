module A = Nvm_alloc.Allocator
module Region = Nvm.Region

(* Layout: +0 length word, +8 bytes.

   The length word carries the string length in its low 32 bits and a
   folded CRC32 of the payload in its high 32 bits, written by the same
   single store as before — strings are write-once, so the checksum is
   computed exactly once. Readers only mask out the length (the hot
   decode path pays nothing); [verify_at] recomputes the CRC during
   scrub walks. The fold constant keeps the empty string's word nonzero,
   so zeroed media never verifies. *)

let crc_fold = 0x6E564D53 (* "nNVMS" *)

let len_word s =
  let crc = (Int32.to_int (Util.Crc.string s) land 0xFFFFFFFF) lxor crc_fold in
  Int64.logor
    (Int64.of_int (String.length s))
    (Int64.shift_left (Int64.of_int crc) 32)

let length_at_region region off =
  Int64.to_int (Region.get_i64 region off) land 0xFFFFFFFF

let write_at region off s =
  Region.with_label region "pstring.write" @@ fun () ->
  Region.set_i64 region off (len_word s);
  Region.write_string region (off + 8) s;
  Region.persist region off (8 + String.length s)

let get_at region off =
  let len = length_at_region region off in
  if off + 8 + len > Region.size region then
    Pcheck.fail ~at:off "string length out of bounds";
  Region.read_string region (off + 8) len

let verify_at region off =
  let w = Region.get_i64 region off in
  let len = Int64.to_int w land 0xFFFFFFFF in
  if off + 8 + len > Region.size region then begin
    Nvm.Seal.count_failure ();
    Pcheck.fail ~at:off "string length out of bounds"
  end;
  let stored = Int64.to_int (Int64.shift_right_logical w 32) land 0xFFFFFFFF in
  let actual =
    (Int32.to_int (Util.Crc.string (Region.read_string region (off + 8) len))
    land 0xFFFFFFFF)
    lxor crc_fold
  in
  if actual <> stored then begin
    Nvm.Seal.count_failure ();
    Pcheck.fail ~at:off "string checksum mismatch"
  end

let add alloc s =
  let region = A.region alloc in
  let off = A.alloc alloc (8 + String.length s) in
  write_at region off s;
  A.activate alloc off;
  off

let length_at alloc off = length_at_region (A.region alloc) off
let get alloc off = get_at (A.region alloc) off
let verify alloc off = verify_at (A.region alloc) off

let free alloc off = A.free alloc off

let bytes_on_nvm s = 8 + String.length s
