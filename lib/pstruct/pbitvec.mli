(** Read-only bit-packed integer vector.

    Main-partition attribute vectors store one dictionary value-id per row
    using exactly [ceil(log2 |dict|)] bits — Hyrise's main-side
    compression. The vector is built in one shot by the merge process,
    persisted wholesale, and never mutated, so its crash story is simply
    "publish the offset after persisting the block". *)

type t

val build : Nvm_alloc.Allocator.t -> int array -> t
(** Pack the (non-negative) values with the minimal uniform bit width.
    The block is durable and activated on return; linking it into a parent
    is the caller's job (via [handle]). *)

val attach : Nvm_alloc.Allocator.t -> int -> t

val handle : t -> int

val length : t -> int

val bits : t -> int
(** Bits per entry (0 when the vector is empty or all-zero). *)

val get : t -> int -> int

val unpack_into : t -> pos:int -> len:int -> int array -> unit
(** [unpack_into t ~pos ~len dst] decodes entries [pos, pos+len) into
    [dst.(0 .. len-1)]. The words covering the range are read from the
    region {e once} (one bulk read) and decoded with in-DRAM shifts, so a
    block of rows costs [ceil(len*bits/64)] region loads instead of the
    one-to-two per row that [get] pays — the access-pattern batching the
    block scan engine is built on. [dst] is caller-provided and reusable;
    entries beyond [len] are untouched. *)

val get_block : t -> pos:int -> len:int -> int array
(** Allocating variant of [unpack_into]. *)

val to_array : t -> int array
(** [get_block ~pos:0 ~len:(length t)]. *)

val destroy : t -> unit

val owned_blocks : t -> int list

val bytes_on_nvm : t -> int

val verify : ?deep:bool -> t -> unit
(** Structural scrub checks; with [~deep:true] additionally recomputes
    the payload CRC32 over the packed words (the structure is
    write-once, so the stored checksum is authoritative).
    @raise Pcheck.Invalid on damage. *)

val segment_entries : int
(** Entries per quarantine segment (4096). [4096 * bits] is a multiple
    of 64 for every width, so segments always cover whole-word spans. *)

type segment_report = {
  sr_damaged : int list;
      (** ascending segment indices whose span or directory seal fails *)
  sr_reseal : bool;
      (** the whole-payload CRC word itself needs recomputing after the
          damaged segments are patched *)
}

val verify_segments : ?deep:bool -> t -> segment_report
(** Segment-granular damage map. Shallow mode checks each directory
    entry's seal; [~deep:true] additionally recomputes every segment's
    CRC32. Never raises: unreadable words condemn their segment (and bump
    the CRC-failure counter) instead of aborting the sweep. *)

val patch_segment : t -> seg:int -> int array -> unit
(** [patch_segment t ~seg values] rewrites segment [seg]'s whole-word
    span from [values] (exactly the segment's entries, i.e.
    [min segment_entries (length - seg*segment_entries)] of them),
    persists it, then re-seals the segment's directory CRC — the
    publication word, ordered after the span under the sanitizer. Values
    must fit the vector's existing bit width. *)

val reseal : t -> unit
(** Recompute and rewrite the whole-payload CRC word from the current
    packed data (used after patching when the seal word itself was
    damaged). *)
