(** Persistent immutable strings.

    Dictionary-encoded text columns store each distinct string once on NVM
    and refer to it by offset. Strings are immutable and — the store being
    insert-only — live until the enclosing structure is destroyed, so no
    individual reclamation is needed between merges.

    On-media, the leading length word also carries a folded CRC32 of the
    payload in its high 32 bits (strings are write-once, so it is
    computed exactly once). Reads ignore it; {!verify_at} checks it. *)

val add : Nvm_alloc.Allocator.t -> string -> int
(** Persist a string; returns its stable offset. The string is fully
    durable (and its block activated) on return. *)

val get : Nvm_alloc.Allocator.t -> int -> string
(** Read back a string written by [add]. *)

val length_at : Nvm_alloc.Allocator.t -> int -> int
(** Length without copying the payload. *)

val free : Nvm_alloc.Allocator.t -> int -> unit
(** Release the string's block (used when whole partitions are dropped). *)

val verify : Nvm_alloc.Allocator.t -> int -> unit
(** Recompute the payload CRC32 and compare against the stored tag.
    @raise Pcheck.Invalid (after bumping [media.crc_failures]) on
    mismatch or an out-of-bounds length. *)

val write_at : Nvm.Region.t -> int -> string -> unit
(** Write (and persist) a string at a caller-managed offset — the arena
    uses this for its interior strings, so every string in the system
    shares one layout. *)

val get_at : Nvm.Region.t -> int -> string
(** Read a string written by [write_at]/[add]. A length that runs past
    the region raises [Pcheck.Invalid] rather than a bounds error, so
    defensive walks can contain it. *)

val length_at_region : Nvm.Region.t -> int -> int

val verify_at : Nvm.Region.t -> int -> unit
(** [verify] for caller-managed offsets. *)

val bytes_on_nvm : string -> int
(** Footprint a string of this content will occupy, for size accounting. *)
