(** Insert-only persistent hash table from [int64] keys to non-negative
    [int64] values.

    Backs the delta dictionaries' value → value-id lookup. Open addressing
    with linear probing; a bucket's {e value word} is the publication
    point: writing the key first and the value second (each fenced) means
    a crash can never expose a half-inserted entry — a bucket whose value
    is still the EMPTY sentinel is simply free.

    Deletion is deliberately unsupported: Hyrise's delta is insert-only
    and the structure is rebuilt at merge, which is exactly what makes the
    simple publication protocol sufficient. *)

type t

val create : ?capacity:int -> Nvm_alloc.Allocator.t -> t
(** Fresh table; [capacity] is rounded up to a power of two. *)

val attach : Nvm_alloc.Allocator.t -> int -> t
(** Re-wrap after restart; recounts occupancy with one scan of the
    bucket array (the table is small: one entry per {e distinct} delta
    value). *)

val handle : t -> int

val length : t -> int

val find : t -> int64 -> int64 option

val mem : t -> int64 -> bool

val insert : t -> int64 -> int64 -> unit
(** [insert t k v] publishes the binding durably. Requires [v >= 0] and
    that [k] is not yet bound (checked). Resizes at 70% load; the resized
    bucket array is published atomically. *)

val find_or_insert : t -> int64 -> (unit -> int64) -> int64
(** [find_or_insert t k mk] returns the existing binding or inserts
    [mk ()]. *)

val iter : (int64 -> int64 -> unit) -> t -> unit

val destroy : t -> unit

val owned_blocks : t -> int list

val bytes_on_nvm : t -> int

val verify : t -> unit
(** Structural scrub checks over capacity and bucket words.
    @raise Pcheck.Invalid or [Nvm.Seal.Corrupt]. *)
