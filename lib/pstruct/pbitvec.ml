module A = Nvm_alloc.Allocator
module Region = Nvm.Region
module Seal = Nvm.Seal

(* Layout: +0  length (entries)                 (sealed)
           +8  bits per entry                   (sealed)
           +16 CRC32 of the packed data         (sealed)
           +24 packed data, little-endian within 64-bit words
           +24+words*8  per-segment CRC32 directory, one sealed word per
                        4096-entry segment (ceil(length/4096) entries)

   The structure is write-once in normal operation ([build] persists the
   whole block in one publication), so the payload checksums are computed
   exactly once and never maintained incrementally. Readers skip them;
   [verify ~deep:true] recomputes the whole-payload CRC during a scrub.

   The segment directory makes media damage row-addressable: 4096*bits is
   always a multiple of 64, so every segment covers a whole-word span and
   [verify_segments] can blame a CRC mismatch on one 4K-row segment
   instead of condemning the vector. [patch_segment] is the online-restore
   write path: it rewrites one segment's span byte-exactly from salvaged
   values and re-seals that segment's directory entry, leaving the
   (still-valid) whole-payload CRC untouched. *)

type t = {
  region : Region.t;
  alloc : A.t;
  handle : int;
  length : int;
  bits : int;
  scratch : Bytes.t array;
      (* per-domain-slot staging buffers for block decodes, grown on
         demand — parallel scan chunks unpack concurrently *)
}

let bits_needed max_v =
  if max_v <= 0 then 0
  else
    let rec go b = if max_v < 1 lsl b then b else go (b + 1) in
    go 1

let data_words n bits = ((n * bits) + 63) / 64

let segment_entries = 4096

let seg_count n = (n + segment_entries - 1) / segment_entries

(* whole-word span of segment [s]: 4096*bits bits = 64*bits words *)
let seg_word_lo bits s = s * 64 * bits
let seg_word_hi n bits s = min (data_words n bits) ((s + 1) * 64 * bits)

let build alloc values =
  let region = A.region alloc in
  Region.with_label region "pbitvec.build" @@ fun () ->
  let n = Array.length values in
  let max_v = Array.fold_left max 0 values in
  Array.iter (fun v -> if v < 0 then invalid_arg "Pbitvec.build: negative") values;
  let bits = bits_needed max_v in
  let words = data_words n bits in
  let nseg = seg_count n in
  let handle = A.alloc alloc (24 + (words * 8) + (nseg * 8)) in
  Seal.write region handle n;
  Seal.write region (handle + 8) bits;
  (* pack into a staging buffer, then one blit *)
  let buf = Bytes.make (words * 8) '\000' in
  if bits > 0 then
    Array.iteri
      (fun i v ->
        let bit = i * bits in
        let word = bit / 64 and shift = bit mod 64 in
        let cur = Bytes.get_int64_le buf (word * 8) in
        Bytes.set_int64_le buf (word * 8)
          (Int64.logor cur (Int64.shift_left (Int64.of_int v) shift));
        if shift + bits > 64 then begin
          let cur = Bytes.get_int64_le buf ((word + 1) * 8) in
          Bytes.set_int64_le buf ((word + 1) * 8)
            (Int64.logor cur
               (Int64.shift_right_logical (Int64.of_int v) (64 - shift)))
        end)
      values;
  Seal.write region (handle + 16)
    (Int32.to_int (Util.Crc.bytes buf) land 0xFFFFFFFF);
  if words > 0 then Region.write_bytes region (handle + 24) buf;
  let dir = handle + 24 + (words * 8) in
  for s = 0 to nseg - 1 do
    let lo = seg_word_lo bits s and hi = seg_word_hi n bits s in
    Seal.write region (dir + (s * 8))
      (Int32.to_int (Util.Crc.bytes_sub buf (lo * 8) ((hi - lo) * 8))
      land 0xFFFFFFFF)
  done;
  Region.persist region handle (24 + (words * 8) + (nseg * 8));
  A.activate alloc handle;
  {
    region;
    alloc;
    handle;
    length = n;
    bits;
    scratch = Array.make Util.Domain_slot.max_slots (Bytes.create 0);
  }

let attach alloc handle =
  let region = A.region alloc in
  {
    region;
    alloc;
    handle;
    length = Seal.read region ~what:"pbitvec length" handle;
    bits = Seal.read region ~what:"pbitvec bits" (handle + 8);
    scratch = Array.make Util.Domain_slot.max_slots (Bytes.create 0);
  }

let handle t = t.handle
let length t = t.length
let bits t = t.bits

let get t i =
  if i < 0 || i >= t.length then
    invalid_arg (Printf.sprintf "Pbitvec.get: index %d out of %d" i t.length);
  if t.bits = 0 then 0
  else begin
    let bit = i * t.bits in
    let word = bit / 64 and shift = bit mod 64 in
    let lo =
      Int64.shift_right_logical
        (Region.get_i64 t.region (t.handle + 24 + (word * 8)))
        shift
    in
    let v =
      if shift + t.bits > 64 then
        Int64.logor lo
          (Int64.shift_left
             (Region.get_i64 t.region (t.handle + 24 + ((word + 1) * 8)))
             (64 - shift))
      else lo
    in
    Int64.to_int (Int64.logand v (Int64.sub (Int64.shift_left 1L t.bits) 1L))
  end

let unpack_into t ~pos ~len dst =
  if pos < 0 || len < 0 || pos + len > t.length then
    invalid_arg
      (Printf.sprintf "Pbitvec.unpack_into: range [%d,+%d) out of %d" pos len
         t.length);
  if Array.length dst < len then
    invalid_arg "Pbitvec.unpack_into: destination too small";
  if len > 0 then begin
    if t.bits = 0 then Array.fill dst 0 len 0
    else begin
      (* one bulk read of every word the range touches, then pure in-DRAM
         shifts — the row loop below never goes back to the region. The
         scratch carries 7 pad bytes so the decode windows below stay in
         bounds; pad contents are masked off. *)
      let first_word = pos * t.bits / 64 in
      let last_word = (((pos + len) * t.bits) - 1) / 64 in
      let nbytes = (last_word - first_word + 1) * 8 in
      let slot = Util.Domain_slot.get () in
      if Bytes.length t.scratch.(slot) < nbytes + 7 then
        t.scratch.(slot) <- Bytes.create (nbytes + 7);
      let buf = t.scratch.(slot) in
      Region.read_into_bytes t.region
        (t.handle + 24 + (first_word * 8))
        buf 0 nbytes;
      let base_bit = first_word * 64 in
      if t.bits <= 55 then begin
        (* native-int decode: an entry of <= 55 bits starting at bit r of
           its first byte (r <= 7) ends at window bit r+54 <= 61, so the
           8-byte little-endian window at that byte covers it even after
           Int64.to_int drops bit 63 — the loop runs without a single
           boxed Int64 operation (the compiler has no flambda to unbox
           the two-word arithmetic of the general path below) *)
        let mask = (1 lsl t.bits) - 1 in
        for i = 0 to len - 1 do
          let bit = ((pos + i) * t.bits) - base_bit in
          let byte = bit lsr 3 and r = bit land 7 in
          dst.(i) <- (Int64.to_int (Bytes.get_int64_le buf byte) lsr r) land mask
        done
      end
      else begin
        let mask = Int64.sub (Int64.shift_left 1L t.bits) 1L in
        for i = 0 to len - 1 do
          let bit = ((pos + i) * t.bits) - base_bit in
          let word = bit lsr 6 and shift = bit land 63 in
          let lo =
            Int64.shift_right_logical (Bytes.get_int64_le buf (word * 8)) shift
          in
          let v =
            if shift + t.bits > 64 then
              Int64.logor lo
                (Int64.shift_left
                   (Bytes.get_int64_le buf ((word + 1) * 8))
                   (64 - shift))
            else lo
          in
          dst.(i) <- Int64.to_int (Int64.logand v mask)
        done
      end
    end
  end

let get_block t ~pos ~len =
  let dst = Array.make len 0 in
  unpack_into t ~pos ~len dst;
  dst

let to_array t = get_block t ~pos:0 ~len:t.length

let destroy t = A.free t.alloc t.handle

let owned_blocks t = [ t.handle ]

let bytes_on_nvm t =
  24 + (data_words t.length t.bits * 8) + (seg_count t.length * 8)

let dir_off t = t.handle + 24 + (data_words t.length t.bits * 8)

let verify ?(deep = false) t =
  Pcheck.require (t.length >= 0) ~at:t.handle "pbitvec negative length";
  Pcheck.require
    (t.bits >= 0 && t.bits <= 63)
    ~at:(t.handle + 8) "pbitvec bits out of range";
  let words = data_words t.length t.bits in
  Pcheck.require
    (A.usable_size t.alloc t.handle
    >= 24 + (words * 8) + (seg_count t.length * 8))
    ~at:t.handle "pbitvec data exceeds its block";
  if deep then begin
    let stored = Seal.read t.region ~what:"pbitvec data crc" (t.handle + 16) in
    let buf = Bytes.create (words * 8) in
    if words > 0 then Region.read_into_bytes t.region (t.handle + 24) buf 0 (words * 8);
    let actual = Int32.to_int (Util.Crc.bytes buf) land 0xFFFFFFFF in
    if actual <> stored then begin
      Nvm.Seal.count_failure ();
      Pcheck.fail ~at:(t.handle + 24) "pbitvec data checksum mismatch"
    end
  end

type segment_report = { sr_damaged : int list; sr_reseal : bool }

let verify_segments ?(deep = false) t =
  let words = data_words t.length t.bits in
  let nseg = seg_count t.length in
  let dir = dir_off t in
  let damaged = ref [] in
  let flag s = if not (List.mem s !damaged) then damaged := s :: !damaged in
  (* tolerant reads throughout: a bad word condemns one segment, never
     raises — the caller keeps serving the healthy ones *)
  let payload =
    if deep && words > 0 then begin
      let buf = Bytes.create (words * 8) in
      Region.read_into_bytes t.region (t.handle + 24) buf 0 (words * 8);
      Some buf
    end
    else None
  in
  for s = 0 to nseg - 1 do
    match Seal.unseal (Region.get_i64 t.region (dir + (s * 8))) with
    | None ->
        Seal.count_failure ();
        flag s
    | Some stored -> (
        match payload with
        | None -> ()
        | Some buf ->
            let lo = seg_word_lo t.bits s and hi = seg_word_hi t.length t.bits s in
            let actual =
              Int32.to_int (Util.Crc.bytes_sub buf (lo * 8) ((hi - lo) * 8))
              land 0xFFFFFFFF
            in
            if actual <> stored then begin
              Seal.count_failure ();
              flag s
            end)
  done;
  (* the whole-payload CRC adds nothing beyond the directory, but its own
     seal word may have been hit: flag it for a post-restore reseal *)
  let reseal =
    match Seal.unseal (Region.get_i64 t.region (t.handle + 16)) with
    | None ->
        Seal.count_failure ();
        true
    | Some stored -> (
        match payload with
        | Some buf when !damaged = [] ->
            let actual = Int32.to_int (Util.Crc.bytes buf) land 0xFFFFFFFF in
            if actual <> stored then begin
              (* directory and data agree with each other but not with the
                 whole-payload seal: blame every segment, restore decides *)
              Seal.count_failure ();
              for s = 0 to nseg - 1 do
                flag s
              done;
              true
            end
            else false
        | _ -> false)
  in
  { sr_damaged = List.sort compare !damaged; sr_reseal = reseal }

let patch_segment t ~seg values =
  let n = t.length in
  if seg < 0 || seg >= seg_count n then
    invalid_arg (Printf.sprintf "Pbitvec.patch_segment: segment %d" seg);
  let base = seg * segment_entries in
  let len = min segment_entries (n - base) in
  if Array.length values <> len then
    invalid_arg
      (Printf.sprintf "Pbitvec.patch_segment: want %d values, got %d" len
         (Array.length values));
  Region.with_label t.region "pbitvec.patch_segment" @@ fun () ->
  let lo = seg_word_lo t.bits seg and hi = seg_word_hi n t.bits seg in
  let buf = Bytes.make ((hi - lo) * 8) '\000' in
  if t.bits > 0 then
    Array.iteri
      (fun i v ->
        if v < 0 || (t.bits < 63 && v >= 1 lsl t.bits) then
          invalid_arg "Pbitvec.patch_segment: value out of width";
        let bit = i * t.bits in
        let word = bit / 64 and shift = bit mod 64 in
        let cur = Bytes.get_int64_le buf (word * 8) in
        Bytes.set_int64_le buf (word * 8)
          (Int64.logor cur (Int64.shift_left (Int64.of_int v) shift));
        if shift + t.bits > 64 then begin
          let cur = Bytes.get_int64_le buf ((word + 1) * 8) in
          Bytes.set_int64_le buf ((word + 1) * 8)
            (Int64.logor cur
               (Int64.shift_right_logical (Int64.of_int v) (64 - shift)))
        end)
      values
  else Array.iter (fun v -> if v <> 0 then invalid_arg "Pbitvec.patch_segment: value out of width") values;
  let entry = dir_off t + (seg * 8) in
  if hi > lo then begin
    Region.write_bytes t.region (t.handle + 24 + (lo * 8)) buf;
    Region.persist t.region (t.handle + 24 + (lo * 8)) ((hi - lo) * 8);
    (* the directory seal is the segment's publication word: the span
       must be durable before the seal can land *)
    Region.expect_ordered t.region ~label:"pbitvec.patch_segment"
      ~before:[ (t.handle + 24 + (lo * 8), (hi - lo) * 8) ]
      ~after:entry
  end;
  Seal.write t.region entry
    (Int32.to_int (Util.Crc.bytes buf) land 0xFFFFFFFF);
  Region.persist t.region entry 8

let reseal t =
  let words = data_words t.length t.bits in
  let buf = Bytes.create (words * 8) in
  if words > 0 then
    Region.read_into_bytes t.region (t.handle + 24) buf 0 (words * 8);
  Seal.write t.region (t.handle + 16)
    (Int32.to_int (Util.Crc.bytes buf) land 0xFFFFFFFF);
  Region.persist t.region (t.handle + 16) 8
