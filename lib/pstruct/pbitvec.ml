module A = Nvm_alloc.Allocator
module Region = Nvm.Region
module Seal = Nvm.Seal

(* Layout: +0  length (entries)                 (sealed)
           +8  bits per entry                   (sealed)
           +16 CRC32 of the packed data         (sealed)
           +24 packed data, little-endian within 64-bit words

   The structure is write-once ([build] persists the whole block in one
   publication), so the payload checksum is computed exactly once and
   never maintained incrementally. Readers skip it; [verify ~deep:true]
   recomputes it during a scrub. *)

type t = {
  region : Region.t;
  alloc : A.t;
  handle : int;
  length : int;
  bits : int;
  scratch : Bytes.t array;
      (* per-domain-slot staging buffers for block decodes, grown on
         demand — parallel scan chunks unpack concurrently *)
}

let bits_needed max_v =
  if max_v <= 0 then 0
  else
    let rec go b = if max_v < 1 lsl b then b else go (b + 1) in
    go 1

let data_words n bits = ((n * bits) + 63) / 64

let build alloc values =
  let region = A.region alloc in
  Region.with_label region "pbitvec.build" @@ fun () ->
  let n = Array.length values in
  let max_v = Array.fold_left max 0 values in
  Array.iter (fun v -> if v < 0 then invalid_arg "Pbitvec.build: negative") values;
  let bits = bits_needed max_v in
  let words = data_words n bits in
  let handle = A.alloc alloc (24 + (words * 8)) in
  Seal.write region handle n;
  Seal.write region (handle + 8) bits;
  (* pack into a staging buffer, then one blit *)
  let buf = Bytes.make (words * 8) '\000' in
  if bits > 0 then
    Array.iteri
      (fun i v ->
        let bit = i * bits in
        let word = bit / 64 and shift = bit mod 64 in
        let cur = Bytes.get_int64_le buf (word * 8) in
        Bytes.set_int64_le buf (word * 8)
          (Int64.logor cur (Int64.shift_left (Int64.of_int v) shift));
        if shift + bits > 64 then begin
          let cur = Bytes.get_int64_le buf ((word + 1) * 8) in
          Bytes.set_int64_le buf ((word + 1) * 8)
            (Int64.logor cur
               (Int64.shift_right_logical (Int64.of_int v) (64 - shift)))
        end)
      values;
  Seal.write region (handle + 16)
    (Int32.to_int (Util.Crc.bytes buf) land 0xFFFFFFFF);
  if words > 0 then Region.write_bytes region (handle + 24) buf;
  Region.persist region handle (24 + (words * 8));
  A.activate alloc handle;
  {
    region;
    alloc;
    handle;
    length = n;
    bits;
    scratch = Array.make Util.Domain_slot.max_slots (Bytes.create 0);
  }

let attach alloc handle =
  let region = A.region alloc in
  {
    region;
    alloc;
    handle;
    length = Seal.read region ~what:"pbitvec length" handle;
    bits = Seal.read region ~what:"pbitvec bits" (handle + 8);
    scratch = Array.make Util.Domain_slot.max_slots (Bytes.create 0);
  }

let handle t = t.handle
let length t = t.length
let bits t = t.bits

let get t i =
  if i < 0 || i >= t.length then
    invalid_arg (Printf.sprintf "Pbitvec.get: index %d out of %d" i t.length);
  if t.bits = 0 then 0
  else begin
    let bit = i * t.bits in
    let word = bit / 64 and shift = bit mod 64 in
    let lo =
      Int64.shift_right_logical
        (Region.get_i64 t.region (t.handle + 24 + (word * 8)))
        shift
    in
    let v =
      if shift + t.bits > 64 then
        Int64.logor lo
          (Int64.shift_left
             (Region.get_i64 t.region (t.handle + 24 + ((word + 1) * 8)))
             (64 - shift))
      else lo
    in
    Int64.to_int (Int64.logand v (Int64.sub (Int64.shift_left 1L t.bits) 1L))
  end

let unpack_into t ~pos ~len dst =
  if pos < 0 || len < 0 || pos + len > t.length then
    invalid_arg
      (Printf.sprintf "Pbitvec.unpack_into: range [%d,+%d) out of %d" pos len
         t.length);
  if Array.length dst < len then
    invalid_arg "Pbitvec.unpack_into: destination too small";
  if len > 0 then begin
    if t.bits = 0 then Array.fill dst 0 len 0
    else begin
      (* one bulk read of every word the range touches, then pure in-DRAM
         shifts — the row loop below never goes back to the region. The
         scratch carries 7 pad bytes so the decode windows below stay in
         bounds; pad contents are masked off. *)
      let first_word = pos * t.bits / 64 in
      let last_word = (((pos + len) * t.bits) - 1) / 64 in
      let nbytes = (last_word - first_word + 1) * 8 in
      let slot = Util.Domain_slot.get () in
      if Bytes.length t.scratch.(slot) < nbytes + 7 then
        t.scratch.(slot) <- Bytes.create (nbytes + 7);
      let buf = t.scratch.(slot) in
      Region.read_into_bytes t.region
        (t.handle + 24 + (first_word * 8))
        buf 0 nbytes;
      let base_bit = first_word * 64 in
      if t.bits <= 55 then begin
        (* native-int decode: an entry of <= 55 bits starting at bit r of
           its first byte (r <= 7) ends at window bit r+54 <= 61, so the
           8-byte little-endian window at that byte covers it even after
           Int64.to_int drops bit 63 — the loop runs without a single
           boxed Int64 operation (the compiler has no flambda to unbox
           the two-word arithmetic of the general path below) *)
        let mask = (1 lsl t.bits) - 1 in
        for i = 0 to len - 1 do
          let bit = ((pos + i) * t.bits) - base_bit in
          let byte = bit lsr 3 and r = bit land 7 in
          dst.(i) <- (Int64.to_int (Bytes.get_int64_le buf byte) lsr r) land mask
        done
      end
      else begin
        let mask = Int64.sub (Int64.shift_left 1L t.bits) 1L in
        for i = 0 to len - 1 do
          let bit = ((pos + i) * t.bits) - base_bit in
          let word = bit lsr 6 and shift = bit land 63 in
          let lo =
            Int64.shift_right_logical (Bytes.get_int64_le buf (word * 8)) shift
          in
          let v =
            if shift + t.bits > 64 then
              Int64.logor lo
                (Int64.shift_left
                   (Bytes.get_int64_le buf ((word + 1) * 8))
                   (64 - shift))
            else lo
          in
          dst.(i) <- Int64.to_int (Int64.logand v mask)
        done
      end
    end
  end

let get_block t ~pos ~len =
  let dst = Array.make len 0 in
  unpack_into t ~pos ~len dst;
  dst

let to_array t = get_block t ~pos:0 ~len:t.length

let destroy t = A.free t.alloc t.handle

let owned_blocks t = [ t.handle ]

let bytes_on_nvm t = 24 + (data_words t.length t.bits * 8)

let verify ?(deep = false) t =
  Pcheck.require (t.length >= 0) ~at:t.handle "pbitvec negative length";
  Pcheck.require
    (t.bits >= 0 && t.bits <= 63)
    ~at:(t.handle + 8) "pbitvec bits out of range";
  let words = data_words t.length t.bits in
  Pcheck.require
    (A.usable_size t.alloc t.handle >= 24 + (words * 8))
    ~at:t.handle "pbitvec data exceeds its block";
  if deep then begin
    let stored = Seal.read t.region ~what:"pbitvec data crc" (t.handle + 16) in
    let buf = Bytes.create (words * 8) in
    if words > 0 then Region.read_into_bytes t.region (t.handle + 24) buf 0 (words * 8);
    let actual = Int32.to_int (Util.Crc.bytes buf) land 0xFFFFFFFF in
    if actual <> stored then begin
      Nvm.Seal.count_failure ();
      Pcheck.fail ~at:(t.handle + 24) "pbitvec data checksum mismatch"
    end
  end
