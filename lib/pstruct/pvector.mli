(** Persistent growable vector of 64-bit words.

    The workhorse of Hyrise-NV's delta partitions: attribute vectors,
    dictionaries and MVCC vectors are all persistent vectors. The design
    separates {e writing} from {e publishing}:

    - [append] and [set] store data and schedule cache-line write-backs but
      do not fence, so a transaction touching many vectors pays one fence
      at commit, not one per store;
    - [publish] is the commit point: it fences the data, then durably
      advances the persisted length. A crash before [publish] leaves the
      vector at its previous published length — appended words simply never
      happened.

    Growth relocates the data block and publishes the new location
    atomically through the allocator's link-in-activate, so a crash during
    growth is invisible. *)

type t

val create : ?capacity:int -> Nvm_alloc.Allocator.t -> t
(** Allocate an empty vector. The handle block is activated; persist of the
    caller's pointer to it is the caller's business. *)

val attach : Nvm_alloc.Allocator.t -> int -> t
(** [attach alloc handle] re-wraps a vector found at [handle] after a
    restart. Volatile length = persisted length. *)

val handle : t -> int
(** Stable offset identifying this vector; store it in parent structures. *)

val length : t -> int
(** Volatile length (includes unpublished appends). *)

val published_length : t -> int
(** Durable length as of the last [publish]. *)

val get : t -> int -> int64
(** [get t i] for [0 <= i < length t]. *)

val get_int : t -> int -> int

val get_int_sat : t -> int -> int
(** [get_int] with the saturated decode of {!read_into_int_sat}: words at
    or above [2^62] become [max_int]. The block scan engine's sparse-gather
    path for CID vectors. *)

val set : t -> int -> int64 -> unit
(** In-place update + scheduled write-back (no fence). Used for MVCC
    end-CID invalidations. *)

val set_int : t -> int -> int -> unit

val read_into_int : t -> pos:int -> len:int -> int array -> unit
(** [read_into_int t ~pos ~len dst] copies elements [pos, pos+len) into
    [dst.(0 .. len-1)] with one bulk region read, decoding each word as
    an OCaml int (truncating bit 63) — the block scan engine's path for
    delta attribute vectors. [dst] is caller-provided and reusable;
    entries beyond [len] are untouched. *)

val read_into_int_sat : t -> pos:int -> len:int -> int array -> unit
(** [read_into_int] with saturation: words at or above [2^62] decode to
    [max_int], so native-int comparisons preserve the stored 64-bit
    ordering. The block engine's path for MVCC CID vectors, whose only
    huge value is the [Cid.infinity] sentinel. *)

val append : t -> int64 -> int
(** [append t v] stores [v] past the end and returns its index. Scheduled
    write-back, no fence; invisible after a crash until [publish]. *)

val append_int : t -> int -> int

val publish : t -> unit
(** Fence outstanding data, then durably set the persisted length to the
    volatile length. After [publish] returns, everything appended or [set]
    so far survives any crash. *)

val publish_unfenced : t -> unit
(** Stage the persisted-length update (store + scheduled write-back) with
    {e no} fence. The caller owns the ordering: the data this length
    covers must be fenced before, and a fence after makes the new length
    durable. Lets a transaction publish many vectors with O(1) fences. *)

val truncate_volatile : t -> int -> unit
(** Roll the volatile length back to [n] (>= published length is NOT
    required; used by recovery to discard unpublished tails and by tests). *)

val iter : (int64 -> unit) -> t -> unit

val to_list : t -> int64 list

val destroy : t -> unit
(** Free the handle and data blocks. The caller must have unlinked the
    handle first. *)

val owned_blocks : t -> int list
(** Allocator blocks this vector owns (for reachability sweeps). *)

val words_on_nvm : t -> int
(** Footprint in bytes (handle + data block capacity), for size
    accounting. *)

val verify : t -> unit
(** Structural scrub checks (capacity fits the data block, published
    length fits the capacity). @raise Pcheck.Invalid on damage; the
    sealed metadata words were already checked by [attach]. *)
