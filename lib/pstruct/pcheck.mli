(** Structural-verification failures raised by the [verify] entry points
    of the persistent structures (and by [attach] paths upgraded from
    asserts). Complements {!Nvm.Seal.Corrupt}: sealed words catch damage
    to a single metadata word, [Invalid] catches cross-word invariant
    violations and payload-checksum mismatches. *)

exception Invalid of { what : string; at : int }

val fail : at:int -> string -> 'a
val require : bool -> at:int -> string -> unit
