module Table = Storage.Table

(* Serve-while-salvaging scheduler (PROTOCOLS.md §15).

   Recovery no longer rebuilds damaged tables before opening: the verify
   ladder maps media faults to 4K-row segments, each damaged segment is
   quarantined here, and the engine opens immediately. Repairs then run
   in two lanes:

   - demand: a query (or write) touching a quarantined segment restores
     exactly that segment in its own foreground, bounded by segment size
     — healthy segments never wait;
   - background: the drain loop walks the remaining segments (the ones no
     query asked for — lowest priority by definition) until the map is
     empty and the engine emits the [Full_health] marker.

   Segment content comes from the salvage twin: a volatile rebuild from
   checkpoint + salvage log bounded at the durable commit point, built
   lazily on the first repair (an undamaged restart never pays for it)
   and shared by every entry. All NVM writes happen on the calling
   domain — worker lanes stay read-only per the sanitizer contract
   (§10); the twin rebuild itself fans its replay out on the pool.

   Structural damage (control words, dictionaries, trees — nothing a row
   range can name) quarantines the whole table: the first touch performs
   the PR-5 full rebuild (checkpoint+log twin, rebuild, catalog swap)
   through the engine-provided callback. *)

type origin = Demand | Background | Write

type source = {
  s_live : string -> Table.t;
      (* the currently registered live table (post-attach generation) *)
  s_twin : string -> Table.t option;
      (* salvage-twin accessor; [None] = table absent from the archive *)
  s_rebuild : string -> unit;
      (* full checkpoint+log rebuild & catalog swap (structural damage) *)
  s_index : string -> int;  (* catalog index, for blackbox event args *)
  s_on_full_health : unit -> unit;
}

type entry = {
  e_name : string;
  e_structural : bool;
  e_rows : int;  (* row count when the damage map was taken *)
  e_damaged : (int, unit) Hashtbl.t;
  e_reseal : int list;
}

type t = {
  src : source;
  entries : (string, entry) Hashtbl.t;
  mutable announced : bool;  (* full health fires once *)
}

let seg_quarantined_c = Obs.counter "media.segment.quarantined"
let seg_salvaged_c = Obs.counter "media.segment.salvaged"
let seg_demand_c = Obs.counter "media.segment.demand"
let seg_background_c = Obs.counter "media.segment.background"
let seg_write_gated_c = Obs.counter "media.segment.write_gated"

let create src = { src; entries = Hashtbl.create 4; announced = false }

let event_arg rs name seg = (rs.src.s_index name * 65536) + (seg land 0xFFFF)

let quarantine rs ~name ~rows ~structural ~segments ~reseal =
  let damaged = Hashtbl.create 8 in
  let segments =
    (* structural damage condemns every segment the table had *)
    if structural then
      List.init ((rows + Table.segment_rows - 1) / Table.segment_rows) Fun.id
    else segments
  in
  List.iter (fun s -> Hashtbl.replace damaged s ()) segments;
  Hashtbl.replace rs.entries name
    {
      e_name = name;
      e_structural = structural;
      e_rows = rows;
      e_damaged = damaged;
      e_reseal = reseal;
    };
  rs.announced <- false;
  List.iter
    (fun s ->
      Obs.incr seg_quarantined_c;
      Obs.Blackbox.emit ~arg:(event_arg rs name s) Obs.Event.Segment_quarantine)
    segments

let is_pending rs name = Hashtbl.mem rs.entries name

let pending rs =
  Hashtbl.fold
    (fun name e acc ->
      let segs =
        List.sort compare (Hashtbl.fold (fun s () l -> s :: l) e.e_damaged [])
      in
      (name, segs) :: acc)
    rs.entries []
  |> List.sort compare

let pending_segments rs =
  Hashtbl.fold (fun _ e n -> n + Hashtbl.length e.e_damaged) rs.entries 0

let check_full_health rs =
  if Hashtbl.length rs.entries = 0 && not rs.announced then begin
    rs.announced <- true;
    rs.src.s_on_full_health ()
  end

let count_origin = function
  | Demand -> Obs.incr seg_demand_c
  | Background -> Obs.incr seg_background_c
  | Write ->
      Obs.incr seg_write_gated_c;
      Obs.incr seg_demand_c

let finish_entry rs e =
  (match e.e_reseal with
  | [] -> ()
  | cols ->
      let live = rs.src.s_live e.e_name in
      List.iter (Table.reseal_main_avec live) cols);
  Hashtbl.remove rs.entries e.e_name

(* Structural repair: one full rebuild clears every segment at once. *)
let restore_structural rs e origin =
  rs.src.s_rebuild e.e_name;
  let segs = Hashtbl.length e.e_damaged in
  for _ = 1 to max 1 segs do
    count_origin origin;
    Obs.incr seg_salvaged_c
  done;
  Obs.Blackbox.emit ~arg:(rs.src.s_index e.e_name) Obs.Event.Salvage;
  Hashtbl.remove rs.entries e.e_name;
  check_full_health rs

let restore_one rs e seg origin =
  let live = rs.src.s_live e.e_name in
  match rs.src.s_twin e.e_name with
  | None ->
      (* the salvage archive never saw this table: unhealable *)
      failwith ("Restore: table " ^ e.e_name ^ " missing from salvage archive")
  | Some twin ->
      Table.restore_segment live ~from:twin ~seg ~rows:e.e_rows;
      Hashtbl.remove e.e_damaged seg;
      count_origin origin;
      Obs.incr seg_salvaged_c;
      Obs.Blackbox.emit
        ~arg:(event_arg rs e.e_name seg)
        Obs.Event.Segment_salvaged;
      if Hashtbl.length e.e_damaged = 0 then begin
        finish_entry rs e;
        check_full_health rs
      end

let touch_entry_rows rs e ~pos ~len origin =
  if e.e_structural then restore_structural rs e origin
  else begin
    let s_lo = max 0 pos / Table.segment_rows in
    let s_hi = (max 0 (pos + len - 1)) / Table.segment_rows in
    for s = s_lo to s_hi do
      if Hashtbl.mem e.e_damaged s then restore_one rs e s origin
    done
  end

let touch_rows rs name ~pos ~len origin =
  if len > 0 then
    match Hashtbl.find_opt rs.entries name with
    | None -> ()
    | Some e -> touch_entry_rows rs e ~pos ~len origin

let touch_structural rs name origin =
  match Hashtbl.find_opt rs.entries name with
  | Some e when e.e_structural -> restore_structural rs e origin
  | _ -> ()

let touch_table rs name origin =
  match Hashtbl.find_opt rs.entries name with
  | None -> ()
  | Some e ->
      if e.e_structural then restore_structural rs e origin
      else begin
        let segs =
          List.sort compare
            (Hashtbl.fold (fun s () l -> s :: l) e.e_damaged [])
        in
        List.iter (fun s -> restore_one rs e s origin) segs
      end

(* One background step: repair a single segment (or one structural
   table). Ascending (table, segment) order — anything a query wanted
   was already healed on demand, so what's left is uniformly lowest
   priority and the stable order keeps the drain deterministic. *)
let drain_step rs =
  match pending rs with
  | [] ->
      check_full_health rs;
      false
  | (name, _) :: _ -> (
      match Hashtbl.find_opt rs.entries name with
      | None -> true
      | Some e ->
          (if e.e_structural then restore_structural rs e Background
           else
             match
               List.sort compare
                 (Hashtbl.fold (fun s () l -> s :: l) e.e_damaged [])
             with
             | [] ->
                 finish_entry rs e;
                 check_full_health rs
             | s :: _ -> restore_one rs e s Background);
          true)

let drain rs = while drain_step rs do () done
