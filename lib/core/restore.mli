(** Serve-while-salvaging: segment-granular quarantine and the online
    instant-restore scheduler (PROTOCOLS.md §15).

    Recovery maps media damage to 4K-row segments ({!Storage.Table.segment_rows})
    and registers them here instead of rebuilding tables before the engine
    opens. Queries and writes that touch a quarantined segment trigger a
    bounded foreground repair of exactly that segment; a background drain
    walks the remainder lowest-priority-first; the engine's [Full_health]
    blackbox marker fires when the map empties. All repairs write NVM on
    the calling domain only (sanitizer contract §10). *)

type origin =
  | Demand  (** a read touched the segment *)
  | Background  (** the drain loop got to it first *)
  | Write  (** a write was gated on it (restore-then-apply) *)

type source = {
  s_live : string -> Storage.Table.t;
  s_twin : string -> Storage.Table.t option;
      (** lazily built salvage twin (checkpoint + salvage log, bounded at
          the durable commit point); [None] = absent from the archive *)
  s_rebuild : string -> unit;
      (** full rebuild + catalog swap, for structural damage *)
  s_index : string -> int;  (** catalog index for blackbox event args *)
  s_on_full_health : unit -> unit;
}

type t

val create : source -> t

val quarantine :
  t ->
  name:string ->
  rows:int ->
  structural:bool ->
  segments:int list ->
  reseal:int list ->
  unit
(** Register a table's damage map ([rows] = its row count right now; the
    clamp for later repairs — rows appended afterwards are fresh writes).
    Emits one [Segment_quarantine] blackbox event per damaged segment. *)

val is_pending : t -> string -> bool

val pending : t -> (string * int list) list
(** Outstanding (table, ascending damaged segments) pairs, sorted. *)

val pending_segments : t -> int

val touch_rows : t -> string -> pos:int -> len:int -> origin -> unit
(** Restore-on-demand gate: repair every quarantined segment
    intersecting global rows [pos, pos+len) of the named table (no-op
    when the table has no pending damage). Structural damage repairs the
    whole table. *)

val touch_structural : t -> string -> origin -> unit
(** Rebuild the table now iff its pending damage is structural; no-op
    otherwise. Appends need this (an insert lands on a fresh row, which
    segment-granular damage can't reach, but a structurally damaged
    table must be swapped for its rebuild before rows land on the doomed
    generation). *)

val touch_table : t -> string -> origin -> unit
(** Repair everything pending for one table (full-table reads, and the
    pre-restore step before a parallel scan fans out — workers must not
    write NVM). *)

val drain_step : t -> bool
(** One background repair (one segment, or one structural rebuild);
    [false] when nothing is pending. *)

val drain : t -> unit
(** Run [drain_step] to empty — the background lane's main loop. *)
