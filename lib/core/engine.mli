(** Hyrise-NV storage engine: the paper's contribution.

    One engine instance owns an NVM region, a persistent heap, a catalog
    of column-store tables and an MVCC transaction manager, under one of
    three durability mechanisms:

    - {!Volatile} — no durability at all (the upper bound baseline);
    - {!Logging} — write-ahead value log with group commit plus
      checkpoints; recovery replays the log (time grows with data);
    - {!Nvm} — all table, index and MVCC state transactionally consistent
      on NVM; recovery re-opens the heap, walks the catalog and rolls back
      in-flight transactions (time independent of data size — the
      "instant restart" the demo paper shows).

    All three modes run the {e same} data structures on the same simulated
    region; [Volatile] and [Logging] simply disable the persistence
    primitives, which makes the throughput comparison an apples-to-apples
    measurement of the durability mechanisms themselves. *)

type durability = Volatile | Logging of Wal.Log.config | Nvm

type config = {
  region : Nvm.Region.config;
  durability : durability;
  salvage : Wal.Log.config option;
      (** [Nvm] mode only: additionally maintain a checkpoint + WAL
          archive (flushed on every commit), so media damage found at
          restart is repaired from it — per-table salvage for contained
          damage, a full rebuild when the heap or catalog is gone —
          instead of merely served around. [None] elsewhere. *)
}

val default_config : ?size:int -> ?salvage:Wal.Log.config -> durability -> config
(** [size] defaults to 64 MiB; [salvage] to [None]. *)

type t

type txn = Txn.Mvcc.txn

exception Closed
(** Raised when using an engine after [crash]. *)

val create : ?publish_mode:Txn.Mvcc.publish_mode -> ?sanitize:bool -> config -> t
(** A fresh, empty database. For [Logging], the directory is created and
    any previous log/checkpoint files are superseded. [publish_mode]
    selects the commit publication protocol (ablation A2); the default
    [`Batched] is what Hyrise-NV would do. [sanitize] (default [false])
    attaches a persist-order {!Nvm.Sanitizer} to the region: every
    workload, crash and recovery then runs under the crash-consistency
    checker, reachable via {!sanitizer}. *)

val config : t -> config
val region : t -> Nvm.Region.t
val allocator : t -> Nvm_alloc.Allocator.t
val last_cid : t -> Storage.Cid.t

val sanitizer : t -> Nvm.Sanitizer.t option
(** The checker attached at [create ~sanitize:true] (it survives crash
    and recovery — the recovering engine keeps reporting into it). *)

(** {1 DDL} *)

val create_table : t -> name:string -> Storage.Schema.t -> unit
(** Durable per the engine's mechanism. Raises [Invalid_argument] on
    duplicate names. Not transactional (DDL auto-commits), as in Hyrise. *)

val table_names : t -> string list

val table : t -> string -> Storage.Table.t
(** Current generation of the table (invalidated by [merge]); prefer the
    query functions below. Raises [Not_found]. *)

(** {1 Transactions} *)

val begin_txn : t -> txn

val commit : t -> txn -> Storage.Cid.t

val abort : t -> txn -> unit

val with_txn : t -> (txn -> 'a) -> 'a
(** Run, then commit; aborts and re-raises on exception (including
    {!Txn.Mvcc.Write_conflict}). *)

(** {1 Adaptive command/value logging}

    [Logging] mode writes {e value} records by default: every inserted
    row's full payload. A transaction whose body is a deterministic
    function of the database state may instead {!declare_command} its
    logical operations; the engine then chooses per transaction — at its
    commit record, from the actual encoded sizes — between the value
    records and one compact {e command} record that replay re-executes
    (docs/PROTOCOLS.md §14). *)

type log_policy =
  [ `Value  (** always value records (the pre-PR-9 log) *)
  | `Command  (** always the command record when one is declared *)
  | `Adaptive
    (** per transaction: command iff the bytes it saves outweigh the
        estimated replay re-execution cost *) ]

val log_policy_of_string : string -> log_policy
(** ["value" | "command" | "adaptive"] (the [--log-policy] CLI axis).
    Raises [Invalid_argument] otherwise. *)

val log_policy_name : log_policy -> string

val set_log_policy : t -> log_policy -> unit
(** Defaults to [HYRISE_NV_LOG_POLICY] (else [`Value]). No effect on
    transactions already committed. *)

val log_policy : t -> log_policy

type cell_op = Wal.Codec.cell_op =
  | Set of Storage.Value.t
  | Add_int of int  (** increment an [Int] cell (no-op on other types) *)

type command_op =
  | C_insert of { table : string; values : Storage.Value.t array }
  | C_update of {
      table : string;
      key_col : string;
      key : Storage.Value.t;
      sets : (string * cell_op) list;
    }
      (** update the unique live row whose [key_col] equals [key] by
          appending a new version with [sets] applied *)
  | C_delete of { table : string; key_col : string; key : Storage.Value.t }

val declare_command : t -> txn -> command_op list -> unit
(** Declare that [txn]'s writes are exactly the given logical operations,
    in order, making it eligible for command logging. The §14 determinism
    contract is the caller's to uphold: each [C_update]/[C_delete] key
    must resolve to at most one live row, and the body must not read its
    own writes through those keys. A no-op under [`Value] policy, outside
    [Logging] mode, and during replay. Re-declaring (pipeline
    re-execution) replaces the previous declaration. *)

(** {1 Writer pipeline}

    The multi-lane commit pipeline (docs/PROTOCOLS.md §13): transaction
    bodies stage on the domain pool with zero cross-lane NVM stores, a
    serial seal applies them in submission order, and one durable
    last-CID persist (group commit) covers the whole epoch. *)

val set_writers : t -> int -> unit
(** Arm the pipeline for {!run_epoch}: [n <= 1] keeps the serial path
    (byte-identical to the pre-pipeline engine), [n > 1] batches. Lane
    parallelism itself comes from the {!Par} pool width ([--jobs]);
    benches and the CLI set both together. Defaults to
    [HYRISE_NV_WRITERS] (else 1). *)

val writers : t -> int

val run_epoch :
  t -> ?clock:(unit -> int) -> ?latencies:Util.Histogram.t ->
  (txn -> unit) array -> bool array
(** Run one epoch: each element of the array is one transaction body
    (begin/commit handled by the pipeline; a body may be re-executed
    once serially if its staged validation failed, so it must be a pure
    function of the database state it reads). Requires no other active
    transactions when the pipeline is armed. Returns per-op committed
    flags ([false] = aborted on {!Txn.Mvcc.Write_conflict}).
    [latencies] records per-transaction commit latency measured to the
    epoch's durable fence — not the staging append — so pipelined
    latencies stay comparable with the serial baseline; [clock] (tests)
    substitutes the nanosecond clock those boundaries are read from. *)

val run_pipeline :
  t -> ?clock:(unit -> int) -> ?latencies:Util.Histogram.t -> ?epoch:int ->
  (txn -> unit) array -> bool array
(** Run a whole transaction stream through the pipeline in windows of
    [epoch] (default 4) with {e double-buffered staging}: window [k+1]
    stages on the worker lanes before window [k] seals, the sequential
    rendering of the stage/seal overlap a concurrent build would run —
    slot 0 acts as a dedicated committer and takes no staging work, so
    run the pool one slot wider than the writer count
    ([Par.set_jobs (writers + 1)]). Seal validation of a window also
    covers the previous window's writes (exactly the commits postdating
    its snapshots), so results stay byte-identical to the serial order.
    Same contract as {!run_epoch} otherwise: per-op committed flags,
    latency to each window's durable fence, serial loop when
    [writers <= 1]. *)

(** {1 DML / queries} — table addressed by name; rows by physical id *)

val insert : t -> txn -> string -> Storage.Value.t array -> int

val update : t -> txn -> string -> int -> Storage.Value.t array -> int
(** Raises {!Txn.Mvcc.Write_conflict} (caller should [abort]). *)

val delete : t -> txn -> string -> int -> unit

val get_row : t -> txn -> string -> int -> Storage.Value.t array option
(** [None] when the row version is not visible to the transaction. *)

val scan : t -> txn -> string -> (int -> Storage.Value.t array -> unit) -> unit
(** All visible rows in physical order. *)

val select :
  t -> txn -> string -> where:(Storage.Value.t array -> bool) ->
  (int * Storage.Value.t array) list

val lookup :
  t -> txn -> string -> col:string -> Storage.Value.t ->
  (int * Storage.Value.t array) list
(** Dictionary/index-accelerated equality lookup, visibility applied. *)

val count : t -> txn -> string -> int

val sum_int : t -> txn -> string -> col:string -> int
(** Sum of an integer column over visible rows. *)

(** {1 Predicate queries}

    Dictionary-accelerated scans: predicates are compiled to value-id
    tests per partition (interval on the sorted main dictionary, set on
    the delta), so the hot loop reads only attribute-vector integers.
    [?impl] picks the scan engine ({!Query.Scan.impl}, default the
    block-at-a-time engine); results are identical either way. *)

val where :
  ?impl:Query.Scan.impl ->
  t -> txn -> string -> (string * Query.Predicate.t) list ->
  (int * Storage.Value.t array) list
(** Visible rows satisfying the conjunction of per-column predicates. *)

val count_where :
  ?impl:Query.Scan.impl ->
  t -> txn -> string -> (string * Query.Predicate.t) list -> int

val aggregate :
  ?impl:Query.Scan.impl ->
  t -> txn -> string ->
  ?group_by:string ->
  specs:Query.Aggregate.spec list ->
  ?filters:(string * Query.Predicate.t) list ->
  unit ->
  Query.Aggregate.result
(** Grouped aggregation over a filtered scan. *)

(** {1 Merge and checkpoint} *)

val merge : t -> string -> Storage.Merge.stats
(** Fold the table's delta into a new main generation (requires no active
    transactions). In [Logging] mode — and in [Nvm] mode with a salvage
    log — use [checkpoint] instead: a lone merge would invalidate the row
    numbering the log relies on; calling this raises [Invalid_argument]
    there. *)

val vacuum : t -> int * int
(** Offline reachability reclamation: walk everything reachable from the
    engine's roots (catalog, tables, their structures and arenas) and free
    any allocated heap block outside that set. Such blocks exist only as
    leaks from crash windows between allocation/publication or
    retirement/free (docs/PROTOCOLS.md §7). Requires no active
    transactions. Tables with quarantined {e segments} do not block the
    sweep: their registered generation enumerates its blocks, which are
    simply kept (the damage heals online later). Only damage with no
    registered generation refuses — unsalvageable quarantines and
    structural damage awaiting its deferred rebuild — with the blocking
    tables (and segments) named in the [Invalid_argument] message.
    Returns (blocks, bytes) reclaimed. *)

val checkpoint : t -> Storage.Merge.stats list
(** Merge every table; in [Logging] mode additionally dump a checkpoint
    file and rotate the log to a new epoch. Requires no active
    transactions. *)

(** {1 Crash and recovery} *)

type crashed
(** What survives a power failure: the NVM region's durable image and
    whatever the log device holds. *)

val crash : t -> Nvm.Region.crash_mode -> crashed
(** Simulate power failure; the engine becomes unusable ([Closed]). *)

type recovery_detail =
  | Rv_volatile  (** everything was lost; fresh empty database *)
  | Rv_nvm of {
      heap_open_ns : int;  (** allocator recovery scan *)
      attach_ns : int;  (** catalog walk + table/index attach *)
      verify_ns : int;  (** media scrub of the attached structures *)
      rollback_ns : int;  (** MVCC rollback of in-flight transactions *)
      salvage_ns : int;  (** checkpoint + log repair of damaged tables *)
      heap_blocks : int;
      rolled_back_rows : int;
      tables : int;
      quarantined : string list;
          (** damaged tables with no salvage archive: present in the
              catalog but not served *)
      salvaged : string list;  (** damaged tables rebuilt from the archive *)
      deferred : (string * int list) list;
          (** serve-while-salvaging (docs/PROTOCOLS.md §15): tables whose
              repair recovery handed to the online restore scheduler
              instead of running — [(table, damaged segment indices)];
              an empty segment list means structural damage (full rebuild
              on first touch). Healthy segments of these tables serve
              immediately. *)
      heap_reset : bool;
          (** the NVM image was beyond repair; everything was rebuilt
              from the archive onto a fresh region *)
      blackbox_records : int;
          (** pre-crash flight-recorder events decoded from the ring *)
      blackbox_ns : int;  (** ring attach + decode phase *)
    }
  | Rv_log of {
      checkpoint_load_ns : int;
      replay_ns : int;
      replay_decode_ns : int;  (** frame scan + pool-side payload parse *)
      replay_stage_ns : int;
          (** lane-side witness staging (0 when [replay_jobs <= 1]) *)
      replay_apply_ns : int;  (** serial CID-ordered apply pass *)
      replay_waves : int;
      replay_jobs : int;  (** {!Par.jobs} the replay ran under *)
      replay_dev_by_slot : int array;
          (** modeled device ns per pool slot over the replay span; slot
              0 is the serial applier — its time is the parallel replay's
              modeled critical path, the number E1's speedup compares
              against the serial baseline's total *)
      command_txns : int;
          (** transactions re-executed from command records *)
      checkpoint_rows : int;
      checkpoint_bytes : int;
      log_records : int;
      log_bytes : int;
      committed_txns : int;  (** transactions whose commit replayed *)
    }

type recovery_stats = { wall_ns : int; detail : recovery_detail }

type verify_level = [ `Off | `Shallow | `Deep ]
(** How hard NVM recovery scrubs the image before serving it.
    [`Shallow] (the default) checks every sealed control word and
    cross-structure invariant in near-constant time per structure, so the
    instant-restart property is preserved; [`Deep] additionally
    recomputes payload checksums (linear in the data); [`Off] trusts the
    media entirely, as the engine did before checksums existed. *)

val recover : ?verify:verify_level -> crashed -> t * recovery_stats
(** Bring the database back per its durability mechanism. Under [Nvm],
    the [verify] ladder maps media damage to 4K-row segments
    ({!Storage.Table.segment_rows}). With [config.salvage] set, damaged
    segments are {e quarantined, not repaired}: the engine opens
    immediately ([engine-ready]), healthy segments serve, and each
    quarantined segment is rebuilt from the checkpoint + WAL archive on
    first touch (query, point read, or write) or by the background drain
    ({!restore_step} / {!restore_drain}) — the [full-health] marker fires
    when the map empties. Structural damage (control words, dictionaries
    — nothing a row range can name) defers a whole-table rebuild to the
    first touch the same way, and a damaged heap or catalog still
    degrades to a full archive rebuild up front. Without an archive the
    engine serves only the healthy tables, and the damaged names are
    reported by {!quarantined}. *)

val quarantined : t -> string list
(** Tables quarantined by the last recovery and not salvaged; they raise
    [Not_found] when addressed. *)

(** {1 Online restore (serve-while-salvaging)} *)

val quarantined_segments : t -> (string * int list) list
(** Outstanding damage by table, ascending segment indices (an empty
    list for a table = structural damage pending its full rebuild).
    Empty when the engine is at full health. *)

val restore_step : t -> bool
(** One background repair — a single segment (lowest (table, segment)
    first; anything a query wanted was already healed on demand), or one
    structural rebuild. [false] when nothing is pending. NVM writes run
    on the calling domain only (PROTOCOLS.md §10); call between query
    batches as the background lane. *)

val restore_drain : t -> unit
(** Run {!restore_step} to empty; emits [full-health] when done. *)

val recover_log :
  ?bound:Storage.Cid.t ->
  ?reopen:bool ->
  ?sanitize:bool ->
  config ->
  Wal.Log.config ->
  t * recovery_detail
(** Log recovery with its knobs exposed (tests, salvage tooling; {!recover}
    is the normal entry). [bound] replays only commits at or below the CID
    (beyond-bound transactions stay uncommitted {e and} their command-side
    invalidation intents are dropped); [reopen] (default [true]) re-arms
    the log for appending — scratch replays pass [false] and leave every
    log byte untouched; [sanitize] attaches a persist-order checker for
    the whole replay. Parallelism follows {!Par.jobs}: at 1 the replay is
    the pre-PR-9 serial loop, above it the wave-pipelined partitioned
    replay — byte-identical {!media_digest} either way. *)

val scrub : ?deep:bool -> ?online:bool -> t -> (string * string) list
(** Damage audit over the live engine: the allocator heap ("heap"), the
    catalog directory ("catalog") and every table ("table:<name>"), each
    paired with a damage description; segments awaiting online restore
    are reported per table. An empty list means the image is clean.
    [deep] (default [true]) recomputes payload checksums. [online]
    (default [false]) heals before judging: the restore map is drained
    first — every pending segment and deferred rebuild runs — so a
    healable image scrubs clean. The offline audit never mutates the
    image. *)

val save_image : t -> string -> unit
(** Dump the durable NVM image to a file (NVM mode only) — the moral
    equivalent of the NVDIMM keeping its contents across a reboot of a
    different process. Raises [Invalid_argument] in other modes. *)

val open_image :
  ?verify:verify_level -> ?sanitize:bool -> config -> string -> t * recovery_stats
(** Map a saved image and run NVM recovery on it (cross-process instant
    restart, used by the CLI demo). [sanitize] runs the recovery under a
    freshly attached checker. *)

(** {1 Flight recorder}

    The engine owns an NVM-resident flight recorder ({!Pstruct.Pring}):
    every {!Obs.Blackbox} event — transaction outcomes, merge/checkpoint
    edges, fault injections, recovery phases — is appended to a
    crash-persistent ring inside the region. NVM recovery reads the ring
    back ([span.recover.nvm.blackbox]), truncating each lane at the
    first torn or corrupt record, and then narrates the restart into the
    same ring, ending with the [engine-ready] (time-to-first-query) and
    [full-health] (nothing quarantined) markers. *)

type blackbox = {
  precrash : Obs.Event.t list;
      (** the pre-crash timeline decoded from the ring, merged across
          lanes in ascending sequence order (empty for fresh engines and
          log-mode restarts, which begin on a fresh region) *)
  restart : Obs.Event.t list;
      (** everything recorded since this engine opened, in order —
          recovery phases, markers, and post-restart activity *)
  truncated_lanes : int;
      (** ring lanes cut short at a CRC-invalid record (a torn tail from
          the crash, or a media fault inside the ring) *)
  recovery_begin_ns : int option;  (** wall clock of [recovery-begin] *)
  engine_ready_ns : int option;  (** wall clock of [engine-ready] *)
  full_health_ns : int option;
      (** wall clock of [full-health]; [None] while tables stay
          quarantined *)
}

val blackbox : t -> blackbox
(** Snapshot the engine's flight-recorder state (the [hyrise_nv
    blackbox] subcommand renders this). *)

val media_digest : t -> string
(** {!Nvm.Region.media_digest} of the engine's region with the
    flight-recorder ring excluded: the database portion of the image is
    deterministic for a deterministic workload, while ring records hold
    wall clocks by design. Determinism tests compare this. *)

val inject_faults : t -> Util.Prng.t -> int -> unit
(** Inject [n] random media faults anywhere in the region
    ({!Nvm.Region.random_fault}), recording each as a [fault-injected]
    event {e before} the damage lands — the black box of a subsequent
    crash names the faults that caused it. *)

(** {1 Introspection} *)

val data_bytes : t -> int
(** NVM bytes held by table structures (T1 accounting). *)

val log_bytes : t -> int
(** Bytes written to the log device ([Logging] mode; 0 otherwise). *)

val log_flushes : t -> int
(** Number of fsync batches issued to the log device. *)

val active_txns : t -> int

val mvcc : t -> Txn.Mvcc.manager

val sync_metrics : t -> unit
(** Push a consistent snapshot of engine/region/WAL tallies into the
    default {!Obs} registry as gauges ([nvm.*], [wal.*], [engine.*]).
    Safe to call on a closed engine (size accounting is then skipped). *)
