module Region = Nvm.Region
module Seal = Nvm.Seal
module A = Nvm_alloc.Allocator
module Table = Storage.Table
module Catalog = Storage.Catalog
module Schema = Storage.Schema
module Value = Storage.Value
module Cid = Storage.Cid
module Mvcc = Txn.Mvcc
module Pring = Pstruct.Pring

let log_src = Logs.Src.create "hyrise.engine" ~doc:"Hyrise-NV engine events"

module L = (val Logs.src_log log_src : Logs.LOG)

type durability = Volatile | Logging of Wal.Log.config | Nvm

type config = {
  region : Nvm.Region.config;
  durability : durability;
  salvage : Wal.Log.config option;
}

let default_config ?(size = 64 * 1024 * 1024) ?salvage durability =
  { region = Region.config_with_size size; durability; salvage }

(* the salvage log is flushed on every commit: it exists to out-survive
   the NVM image, so the group-commit loss window would undercut it *)
let salvage_log_config lc = { lc with Wal.Log.group_commit_size = 1 }

type verify_level = [ `Off | `Shallow | `Deep ]

let quarantined_tables_c = Obs.counter "media.quarantined_tables"
let salvaged_tables_c = Obs.counter "media.salvaged_tables"

let damage_reason = function
  | A.Heap_corrupt { at; what } -> Printf.sprintf "heap: %s at +%d" what at
  | Nvm.Seal.Corrupt { what; off; _ } ->
      Printf.sprintf "sealed word (%s) at +%d" what off
  | Pstruct.Pcheck.Invalid { what; at } ->
      Printf.sprintf "structure: %s at +%d" what at
  | e -> Printexc.to_string e

type txn = Mvcc.txn

exception Closed

(* -- adaptive logging policy (docs/PROTOCOLS.md §14) --

   Under [`Value] every write is logged as a row image (the classic
   baseline). A transaction whose body also {e declares} its writes as
   command ops can instead be logged as one [Command] record that replay
   re-executes; [`Command] forces that for every declared transaction,
   [`Adaptive] chooses per transaction by comparing the bytes saved on
   the log device against the estimated re-execution cost at replay. *)

type log_policy = [ `Value | `Command | `Adaptive ]

let log_policy_of_string_opt s : log_policy option =
  match String.lowercase_ascii (String.trim s) with
  | "value" -> Some `Value
  | "command" -> Some `Command
  | "adaptive" -> Some `Adaptive
  | _ -> None

let log_policy_of_string s =
  match log_policy_of_string_opt s with
  | Some p -> p
  | None ->
      invalid_arg
        (Printf.sprintf "log_policy_of_string: %S (want value|command|adaptive)"
           s)

let log_policy_name = function
  | `Value -> "value"
  | `Command -> "command"
  | `Adaptive -> "adaptive"

(* [HYRISE_NV_LOG_POLICY] selects the default process-wide (the CI
   policy legs); [set_log_policy] overrides per engine. *)
let default_log_policy () : log_policy =
  match Sys.getenv_opt "HYRISE_NV_LOG_POLICY" with
  | Some s -> Option.value ~default:`Value (log_policy_of_string_opt s)
  | None -> `Value

type cell_op = Wal.Codec.cell_op = Set of Value.t | Add_int of int

type command_op =
  | C_insert of { table : string; values : Value.t array }
  | C_update of {
      table : string;
      key_col : string;
      key : Value.t;
      sets : (string * cell_op) list;
    }
  | C_delete of { table : string; key_col : string; key : Value.t }

(* A declared transaction's commit-time buffer: its resolved command ops
   plus the value records the observer withholds while the choice is
   open. Guarded by a mutex — staged bodies declare from pool lanes. *)
type pending = {
  p_ops : Wal.Codec.cmd_op array;
  mutable p_records : Wal.Log.record list; (* reversed *)
}

(* Engine control block (root slot 0):
     +0  last committed CID   (the durable commit point)
     +8  catalog handle
     +16 flight-recorder ring handle (Pstruct.Pring) *)
let root_slot = 0

(* flight-recorder ring geometry: 8 lanes (domain slots map onto them
   mod 8), capacity adapted to the region so tiny test regions keep
   their headroom — between 16 and 256 records per lane, ~1/64 of the
   region at most *)
let bb_lanes = 8

let bb_capacity region =
  let budget = Region.size region / 64 in
  max 16 (min 256 (budget / (bb_lanes * 32)))

type t = {
  cfg : config;
  region : Region.t;
  alloc : A.t;
  ctrl : int;
  catalog : Catalog.t;
  mutable log : Wal.Log.t option;
  mutable epoch : int;
  tables : (string, Table.t) Hashtbl.t;
  ids : (string, int) Hashtbl.t; (* table name -> log table id *)
  mutable names_by_id : string list; (* reversed creation order *)
  mutable mgr : Mvcc.manager;
  mutable writers : int; (* > 1 arms the epoch-batched commit pipeline *)
  publish_mode : Mvcc.publish_mode;
  san : Nvm.Sanitizer.t option;
  mutable log_policy : log_policy;
  pending_mu : Mutex.t;
  pending : (int, pending) Hashtbl.t; (* tid -> declared-command buffer *)
  mutable quarantined : string list; (* damaged tables we could not salvage *)
  mutable restore : Restore.t option;
      (* segment-granular damage map + online restore scheduler (§15);
         [Some] iff recovery deferred repairs instead of running them *)
  mutable closed : bool;
  mutable replaying : bool; (* suppress logging during replay *)
  (* flight recorder: the NVM ring plus the volatile timeline mirrors *)
  mutable bb_ring : Pring.t option;
  mutable bb_precrash : Obs.Event.t list; (* decoded at recovery, ascending seq *)
  mutable bb_restart : Obs.Event.t list; (* reversed emission order *)
  mutable bb_truncated : int; (* lanes cut at a torn/corrupt record *)
}

let now_ns () = Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1e9))

let g_writers = Obs.gauge "engine.writers"

(* [HYRISE_NV_WRITERS] arms the writer pipeline process-wide (the CI
   writers leg); [set_writers] overrides per engine. *)
let default_writers () =
  match Sys.getenv_opt "HYRISE_NV_WRITERS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> 1)
  | None -> 1

let check_open t = if t.closed then raise Closed

(* -- serve-while-salvaging gates (docs/PROTOCOLS.md §15) --

   Every read and write path funnels through one of these before touching
   table data: a quarantined segment under the access is restored right
   here, in the caller's foreground, bounded by segment size. All of them
   no-op in O(1) when nothing is pending. *)

let gate_rows t name ~pos ~len origin =
  match t.restore with
  | Some rs -> Restore.touch_rows rs name ~pos ~len origin
  | None -> ()

let gate_table t name origin =
  match t.restore with
  | Some rs -> Restore.touch_table rs name origin
  | None -> ()

let gate_structural t name origin =
  match t.restore with
  | Some rs -> Restore.touch_structural rs name origin
  | None -> ()

(* The block-scan hook. Worker lanes must never write NVM (§10), so when
   the pool would fan the scan out we pre-restore the whole table and
   hand the scan no gate; a serial scan heals block by block instead —
   that is the degraded-serving mode the bench curves measure. *)
let scan_gate t name =
  match t.restore with
  | None -> None
  | Some rs ->
      if not (Restore.is_pending rs name) then None
      else if Par.jobs () > 1 then begin
        Restore.touch_table rs name Restore.Demand;
        None
      end
      else
        Some
          (fun ~pos ~len -> Restore.touch_rows rs name ~pos ~len Restore.Demand)

let config t = t.cfg
let region t = t.region
let allocator t = t.alloc
let last_cid t = Mvcc.last_cid t.mgr

let table_id t name =
  match Hashtbl.find_opt t.ids name with
  | Some id -> id
  | None -> invalid_arg ("Engine: unknown table " ^ name)

let persist_commit_hook region ctrl cid =
  (* the strongest claim in the system: at the instant the commit CID
     becomes durable, nothing anywhere may still be in flight — the
     batched publish protocol fenced it all *)
  Region.annotate_commit_point region ~label:"mvcc.commit" [];
  Seal.write region ctrl (Int64.to_int cid);
  Region.persist region ctrl 8

let read_commit_point region ctrl =
  Int64.of_int (Seal.read region ~what:"engine commit point" ctrl)

let pending_find t tid =
  Mutex.protect t.pending_mu (fun () -> Hashtbl.find_opt t.pending tid)

let pending_take t tid =
  Mutex.protect t.pending_mu (fun () ->
      match Hashtbl.find_opt t.pending tid with
      | Some p ->
          Hashtbl.remove t.pending tid;
          Some p
      | None -> None)

let cmd_txns_c = Obs.counter "wal.policy.command_txns"
let val_txns_c = Obs.counter "wal.policy.value_txns"

(* Adaptive estimator constants: what a log byte costs at commit
   (amortized write + fsync share) vs. what a key lookup + row rebuild
   costs at replay. A command record wins when the bytes it saves on
   every commit outweigh the lookups replay must re-execute once —
   updates of wide rows compress to a key + cell edits and win; inserts
   carry the full row either way and stay value-logged. *)
let log_byte_ns = 25
let replay_lookup_ns = 4000

let command_wins t (p : pending) ~commit =
  match t.log_policy with
  | `Value -> false
  | `Command -> true
  | `Adaptive ->
      let frame = 8 in
      let value_bytes =
        List.fold_left
          (fun a r -> a + frame + Wal.Log.encoded_size r)
          (frame + Wal.Log.encoded_size commit)
          p.p_records
      in
      let command_bytes =
        frame
        + Wal.Log.encoded_size (Wal.Log.Command { tid = 0; ops = p.p_ops })
        + frame + 21 (* the empty-invalidation commit that follows *)
      in
      let lookups =
        Array.fold_left
          (fun a op ->
            match op with
            | Wal.Codec.Cmd_update _ | Wal.Codec.Cmd_delete _ -> a + 1
            | Wal.Codec.Cmd_insert _ -> a)
          0 p.p_ops
      in
      (value_bytes - command_bytes) * log_byte_ns > lookups * replay_lookup_ns

let observer t event =
  if not t.replaying then
    match (t.log, event) with
    | None, _ -> ()
    | Some log, Mvcc.Ev_insert { tid; table; values } -> (
        let r =
          Wal.Log.Insert { tid; table_id = table_id t (Table.name table); values }
        in
        (* a declared transaction's value records are withheld until its
           commit decides the record shape *)
        match pending_find t tid with
        | Some p -> p.p_records <- r :: p.p_records
        | None -> Wal.Log.append log r)
    | Some log, Mvcc.Ev_commit { tid; cid; invalidated } -> (
        let invalidated =
          List.map
            (fun (table, row) -> (table_id t (Table.name table), row))
            invalidated
        in
        let commit = Wal.Log.Commit { tid; cid; invalidated } in
        match pending_take t tid with
        | None -> Wal.Log.append log commit
        | Some p when Array.length p.p_ops > 0 && command_wins t p ~commit ->
            Obs.incr cmd_txns_c;
            Wal.Log.append log (Wal.Log.Command { tid; ops = p.p_ops });
            (* the paired commit carries no invalidation list: replay's
               re-execution recomputes it from the ops *)
            Wal.Log.append log (Wal.Log.Commit { tid; cid; invalidated = [] })
        | Some p ->
            Obs.incr val_txns_c;
            List.iter (Wal.Log.append log) (List.rev p.p_records);
            Wal.Log.append log commit)
    | Some log, Mvcc.Ev_abort { tid } ->
        (* flush the withheld value records even for an abort: replay
           must re-append these rows so later logged row references keep
           resolving against identical physical numbering *)
        (match pending_take t tid with
        | Some p -> List.iter (Wal.Log.append log) (List.rev p.p_records)
        | None -> ());
        Wal.Log.append log (Wal.Log.Abort { tid })

let make_manager t ~last_cid =
  Mvcc.create_manager ~observer:(observer t) ~publish_mode:t.publish_mode
    ~write_gate:(fun table row ->
      (* backstop for direct Mvcc users: a serial claim landing on a
         quarantined segment restores it first, so the end-CID stamp is
         never clobbered by a later twin copy. Fires on the serial claim
         path only — staged (lane) claims are pre-gated by the epoch
         driver instead (§10: no NVM writes on worker lanes). *)
      gate_rows t (Table.name table) ~pos:row ~len:1 Restore.Write)
    ~persist_commit:(persist_commit_hook t.region t.ctrl)
    ~last_cid ()

(* Build the volatile shell around an already-formatted region. *)
let assemble ?(publish_mode = `Batched) ?san cfg region alloc ctrl catalog
    ~log ~epoch =
  let t =
    {
      cfg;
      region;
      alloc;
      ctrl;
      catalog;
      log;
      epoch;
      tables = Hashtbl.create 16;
      ids = Hashtbl.create 16;
      names_by_id = [];
      mgr =
        (* placeholder, replaced right below once [t] exists for the
           observer closure *)
        Mvcc.create_manager ~persist_commit:ignore ~last_cid:Cid.zero ();
      writers = default_writers ();
      publish_mode;
      san;
      log_policy = default_log_policy ();
      pending_mu = Mutex.create ();
      pending = Hashtbl.create 16;
      quarantined = [];
      restore = None;
      closed = false;
      replaying = false;
      bb_ring = None;
      bb_precrash = [];
      bb_restart = [];
      bb_truncated = 0;
    }
  in
  t.mgr <- make_manager t ~last_cid:(read_commit_point region ctrl);
  t

(* Route delivered recorder events into this engine's NVM ring (and the
   volatile restart mirror). Installed by the top-level constructors
   only — [create], [recover], [open_image] — never by [create_raw], so
   scratch salvage engines cannot steal the process-wide sink. *)
let install_ring_sink t =
  match t.bb_ring with
  | None -> Obs.Blackbox.set_sink None
  | Some ring ->
      let lanes = Pring.lanes ring in
      Obs.Blackbox.set_sink
        (Some
           (fun ev ->
             t.bb_restart <- ev :: t.bb_restart;
             let w1, w2 = Obs.Event.pack ev in
             Pring.append ring ~lane:(ev.Obs.Event.lane mod lanes)
               ~seq:ev.Obs.Event.seq w1 w2))

let attach_ring t =
  let h = Seal.read t.region ~what:"flight recorder handle" (t.ctrl + 16) in
  Pring.attach t.alloc h

let create_raw ?publish_mode ?(sanitize = false) (cfg : config) ~with_log =
  let region = Region.create cfg.region in
  Region.set_persist_enabled region (cfg.durability = Nvm);
  let san = if sanitize then Some (Nvm.Sanitizer.attach region) else None in
  let alloc = A.format region in
  let catalog = Catalog.create alloc in
  let ring = Pring.create ~lanes:bb_lanes ~capacity:(bb_capacity region) alloc in
  let ctrl = A.alloc alloc 24 in
  Seal.write region ctrl (Int64.to_int Cid.zero);
  Seal.write region (ctrl + 8) (Catalog.handle catalog);
  Seal.write region (ctrl + 16) (Pring.handle ring);
  Region.persist region ctrl 24;
  A.activate alloc ctrl;
  A.set_root alloc root_slot ctrl;
  let log =
    match (cfg.durability, cfg.salvage) with
    | Logging lc, _ when with_log -> Some (Wal.Log.create lc ~epoch:0)
    | Nvm, Some lc when with_log ->
        Some (Wal.Log.create (salvage_log_config lc) ~epoch:0)
    | _ -> None
  in
  let e = assemble ?publish_mode ?san cfg region alloc ctrl catalog ~log ~epoch:0 in
  e.bb_ring <- Some ring;
  e

let create ?publish_mode ?sanitize cfg =
  let e = create_raw ?publish_mode ?sanitize cfg ~with_log:true in
  install_ring_sink e;
  (* a fresh database is open and healthy the moment it exists *)
  Obs.Blackbox.emit Obs.Event.Engine_ready;
  Obs.Blackbox.emit Obs.Event.Full_health;
  e

let sanitizer t = t.san
let quarantined t = t.quarantined

(* -- DDL -- *)

let register_name t name =
  if not (Hashtbl.mem t.ids name) then begin
    Hashtbl.replace t.ids name (List.length t.names_by_id);
    t.names_by_id <- name :: t.names_by_id
  end

let register_table t name table =
  Hashtbl.replace t.tables name table;
  register_name t name

let create_table t ~name schema =
  check_open t;
  if Hashtbl.mem t.tables name then
    invalid_arg ("Engine.create_table: duplicate table " ^ name);
  let table = Table.create t.alloc ~name schema in
  Catalog.add_table t.catalog ~name ~ctrl:(Table.handle table);
  register_table t name table;
  if not t.replaying then
    match t.log with
    | Some log -> Wal.Log.append log (Wal.Log.Create_table { name; schema })
    | None -> ()

let table t name =
  check_open t;
  (* structurally damaged tables are named in the catalog but carry no
     usable generation until their deferred rebuild runs — the first
     lookup is that first touch *)
  gate_structural t name Restore.Demand;
  match Hashtbl.find_opt t.tables name with
  | Some table -> table
  | None -> raise Not_found

let table_names t =
  check_open t;
  List.rev t.names_by_id

(* -- transactions -- *)

let begin_txn t =
  check_open t;
  Mvcc.begin_txn t.mgr

let commit t txn =
  check_open t;
  Mvcc.commit t.mgr txn

let abort t txn =
  check_open t;
  Mvcc.abort t.mgr txn

let with_txn t f =
  let txn = begin_txn t in
  match f txn with
  | result ->
      ignore (commit t txn);
      result
  | exception e ->
      if Mvcc.is_active txn then abort t txn;
      raise e

(* -- adaptive logging (docs/PROTOCOLS.md §14) -- *)

let set_log_policy t p = t.log_policy <- p
let log_policy t = t.log_policy

(* Declare the transaction's writes as command ops (from the body,
   before the writes happen). Resolution of names to log ids and column
   indices happens here; the buffer keyed by tid is what the observer
   consults at every subsequent event for this transaction. Safe from a
   staged body on a pool lane: the volatile [tables]/[ids] maps are
   read-only during a run, and the pending map is mutex-guarded.

   Determinism contract (§14): the declared ops, re-executed in commit
   order against replayed state, must reproduce exactly the writes the
   body performs — key lookups must resolve a unique live row, and the
   body must not read its own writes. Workload specs (PR 8) satisfy
   this by construction. *)
let declare_command t txn ops =
  check_open t;
  if t.log <> None && (not t.replaying) && t.log_policy <> `Value then begin
    let col tbl name = Schema.find_column (Table.schema tbl) name in
    let resolve = function
      | C_insert { table = name; values } ->
          ignore (table t name);
          Wal.Codec.Cmd_insert { table_id = table_id t name; values }
      | C_update { table = name; key_col; key; sets } ->
          let tbl = table t name in
          Wal.Codec.Cmd_update
            {
              table_id = table_id t name;
              key_col = col tbl key_col;
              key;
              sets =
                Array.of_list
                  (List.map (fun (c, op) -> (col tbl c, op)) sets);
            }
      | C_delete { table = name; key_col; key } ->
          let tbl = table t name in
          Wal.Codec.Cmd_delete
            { table_id = table_id t name; key_col = col tbl key_col; key }
    in
    let p_ops = Array.of_list (List.map resolve ops) in
    let tid = Mvcc.tid txn in
    Mutex.protect t.pending_mu (fun () ->
        (* replace: a re-executed body (pipeline overlap miss) declares
           again for the same tid *)
        Hashtbl.replace t.pending tid { p_ops; p_records = [] })
  end

(* -- writer pipeline (docs/PROTOCOLS.md §13) -- *)

let set_writers t n =
  let n = max 1 n in
  t.writers <- n;
  Obs.set_gauge g_writers n

let writers t = t.writers

(* Run one epoch of the multi-lane commit pipeline: every element of
   [ops] is one transaction body. With [writers <= 1] this is a plain
   serial loop over [begin_txn] / op / [commit] — byte-identical to the
   pre-pipeline engine. With [writers > 1]:

     1. every transaction begins in staging mode and runs its body on
        the domain pool ([Par.submit_all] — lanes perform only Region
        reads, PROTOCOLS.md §10/§13);
     2. a serial seal, in submission order, re-validates each
        transaction against its epoch peers and applies it
        ([Mvcc.commit_grouped]); a transaction whose staged validation
        failed is re-executed inline against a refreshed snapshot (and
        only aborts if the re-execution itself hits [Write_conflict],
        exactly as a serial run would);
     3. [Mvcc.finish_epoch] publishes + persists the whole batch behind
        one durable last-CID write, and in [Logging] mode the WAL group
        window turns the epoch into a single fsync batch.

   Per-transaction commit latency is measured from submission to the
   return of the epoch's durable fence — a transaction is not "done" at
   its staging append (ISSUE 8 satellite; [?clock] lets tests pin the
   boundary). Returns per-op committed flags. *)
let serial_loop t ~clock ~record_latency (ops : (txn -> unit) array) committed =
  Array.iteri
    (fun i op ->
      let t0 = clock () in
      let txn = Mvcc.begin_txn t.mgr in
      (try
         op txn;
         ignore (Mvcc.commit t.mgr txn);
         committed.(i) <- true
       with Mvcc.Write_conflict _ -> Mvcc.abort t.mgr txn);
      record_latency (clock () - t0))
    ops

let run_epoch t ?(clock = now_ns) ?latencies (ops : (txn -> unit) array) =
  check_open t;
  let n = Array.length ops in
  let committed = Array.make n false in
  let record_latency =
    match latencies with
    | Some h -> fun dt -> Util.Histogram.record h dt
    | None -> fun _ -> ()
  in
  if n = 0 then committed
  else if t.writers <= 1 then begin
    serial_loop t ~clock ~record_latency ops committed;
    committed
  end
  else begin
    let m = t.mgr in
    if Mvcc.active_count m > 0 then
      invalid_arg "Engine.run_epoch: transactions already active";
    (* staged bodies run on worker lanes, which must not write NVM (§10),
       so they cannot restore-on-demand: heal everything first *)
    (match t.restore with Some rs -> Restore.drain rs | None -> ());
    let ep = Mvcc.begin_epoch m in
    let submit = Array.make n 0 in
    let txns =
      Array.init n (fun i ->
          submit.(i) <- clock ();
          Mvcc.begin_staged m)
    in
    let ok = Array.make n true in
    (try
       (* lane phase: stage every transaction body on the pool; a staged
          validation failure just marks the slot for serial re-execution *)
       Par.submit_all
         (Array.init n (fun i () ->
              try ops.(i) txns.(i)
              with Mvcc.Staged_conflict _ -> ok.(i) <- false));
       (* serial seal, in submission order *)
       Obs.Blackbox.emit ~arg:n Obs.Event.Epoch_seal;
       (match t.log with Some log -> Wal.Log.begin_group log | None -> ());
       for i = 0 to n - 1 do
         let txn = txns.(i) in
         if ok.(i) && Mvcc.seal_check m ep txn then begin
           ignore (Mvcc.commit_grouped m ep txn);
           committed.(i) <- true
         end
         else begin
           Mvcc.reexec_reset m txn;
           try
             ops.(i) txn;
             ignore (Mvcc.commit_grouped m ep txn);
             committed.(i) <- true
           with Mvcc.Write_conflict _ -> Mvcc.abort m txn
         end
       done;
       Mvcc.finish_epoch m ep;
       (match t.log with Some log -> Wal.Log.end_group log | None -> ())
     with e ->
       (* unexpected failure mid-epoch: abort what is still active, then
          still publish + persist the peers already sealed — they have
          CIDs beyond the durable last-CID and committed volatile state,
          and must not be lost to a later crash *)
       Array.iter (fun txn -> if Mvcc.is_active txn then Mvcc.abort m txn) txns;
       Mvcc.finish_epoch m ep;
       (match t.log with Some log -> Wal.Log.end_group log | None -> ());
       raise e);
    (* commit latency runs to the epoch's durable fence, not the staging
       append: one fence timestamp covers the whole batch *)
    let t_fence = clock () in
    if latencies <> None then
      Array.iter (fun s -> record_latency (t_fence - s)) submit;
    committed
  end

(* Pipelined multi-epoch driver: [ops] is a whole transaction stream,
   committed in windows of [epoch] with {e double-buffered staging} —
   window [k+1]'s bodies stage on the worker lanes before window [k]
   seals on slot 0. That is the sequential rendering of the overlap a
   concurrent build would run (staging of [k+1] concurrent with the
   seal of [k]): a window stages against exactly the state the previous
   window's group commit left behind, and [Mvcc.begin_epoch ~prev]
   widens its seal validation to the previous window's writes, which
   are precisely the commits postdating its snapshots.

   [Par.submit_all ~caller:false] keeps the sealer slot out of staging,
   so the per-slot device ledger prices the pipeline the way the
   overlap would land on hardware: worker slots carry the staging
   reads, slot 0 carries only the serial seal, the re-executions and
   the group commit. The pool should run one more slot than there are
   writer lanes ([Par.set_jobs (writers + 1)]) — slot 0 is the
   committer, a dedicated thread like any group-commit log writer.

   Commit latency still runs from submission to the window's durable
   fence. [writers <= 1] degrades to the plain serial loop,
   byte-identical to the pre-pipeline engine. *)
let run_pipeline t ?(clock = now_ns) ?latencies ?(epoch = 4)
    (ops : (txn -> unit) array) =
  check_open t;
  if epoch <= 0 then invalid_arg "Engine.run_pipeline: epoch must be positive";
  let n = Array.length ops in
  let committed = Array.make n false in
  let record_latency =
    match latencies with
    | Some h -> fun dt -> Util.Histogram.record h dt
    | None -> fun _ -> ()
  in
  if n = 0 then committed
  else if t.writers <= 1 then begin
    serial_loop t ~clock ~record_latency ops committed;
    committed
  end
  else begin
    let m = t.mgr in
    if Mvcc.active_count m > 0 then
      invalid_arg "Engine.run_pipeline: transactions already active";
    (* same rule as [run_epoch]: lanes cannot restore, so drain first *)
    (match t.restore with Some rs -> Restore.drain rs | None -> ());
    let submit = Array.make n 0 in
    let stage lo hi =
      let w = hi - lo in
      let txns =
        Array.init w (fun j ->
            submit.(lo + j) <- clock ();
            Mvcc.begin_staged m)
      in
      let ok = Array.make w true in
      Par.submit_all ~caller:false
        (Array.init w (fun j () ->
             try ops.(lo + j) txns.(j)
             with Mvcc.Staged_conflict _ -> ok.(j) <- false));
      (txns, ok)
    in
    let nwin = (n + epoch - 1) / epoch in
    let bounds k = (k * epoch, min n ((k + 1) * epoch)) in
    let ep = ref (Mvcc.begin_epoch m) in
    let cur = ref (let lo, hi = bounds 0 in stage lo hi) in
    let next = ref None in
    let in_group = ref false in
    (try
       for k = 0 to nwin - 1 do
         let lo, hi = bounds k in
         (* stage the next window before this one seals — the overlap *)
         next :=
           (if k + 1 < nwin then
              Some
                (let nlo, nhi = bounds (k + 1) in
                 stage nlo nhi)
            else None);
         let txns, ok = !cur in
         Obs.Blackbox.emit ~arg:(hi - lo) Obs.Event.Epoch_seal;
         (match t.log with
         | Some log ->
             Wal.Log.begin_group log;
             in_group := true
         | None -> ());
         for j = 0 to hi - lo - 1 do
           let txn = txns.(j) in
           if ok.(j) && Mvcc.seal_check m !ep txn then begin
             ignore (Mvcc.commit_grouped m !ep txn);
             committed.(lo + j) <- true
           end
           else begin
             Mvcc.reexec_reset m txn;
             try
               ops.(lo + j) txn;
               ignore (Mvcc.commit_grouped m !ep txn);
               committed.(lo + j) <- true
             with Mvcc.Write_conflict _ -> Mvcc.abort m txn
           end
         done;
         Mvcc.finish_epoch m !ep;
         (match t.log with
         | Some log ->
             Wal.Log.end_group log;
             in_group := false
         | None -> ());
         let t_fence = clock () in
         if latencies <> None then
           for i = lo to hi - 1 do
             record_latency (t_fence - submit.(i))
           done;
         ep := Mvcc.begin_epoch ~prev:!ep m;
         match !next with Some w -> cur := w | None -> ()
       done
     with e ->
       (* failure mid-stream: abort whatever is still staged in either
          buffer, then publish + persist the already-sealed peers of the
          open window — they hold CIDs beyond the durable last-CID *)
       let abort_window (txns, _) =
         Array.iter
           (fun txn -> if Mvcc.is_active txn then Mvcc.abort m txn)
           txns
       in
       abort_window !cur;
       (match !next with Some w -> abort_window w | None -> ());
       Mvcc.finish_epoch m !ep;
       (match t.log with
       | Some log -> if !in_group then Wal.Log.end_group log
       | None -> ());
       raise e);
    committed
  end

(* -- DML / queries -- *)

(* Gates below skip staged transactions: their bodies run on worker
   lanes, which must not write NVM (§10) — the epoch drivers drain the
   restore map before staging, so a staged body never meets a
   quarantined segment anyway. *)

let insert t txn name values =
  check_open t;
  Mvcc.insert t.mgr txn (table t name) values

let update t txn name row values =
  check_open t;
  let tbl = table t name in
  if not (Mvcc.is_staged txn) then gate_rows t name ~pos:row ~len:1 Restore.Write;
  Mvcc.update t.mgr txn tbl row values

let delete t txn name row =
  check_open t;
  let tbl = table t name in
  if not (Mvcc.is_staged txn) then gate_rows t name ~pos:row ~len:1 Restore.Write;
  Mvcc.delete t.mgr txn tbl row

let get_row t txn name row =
  check_open t;
  let table = table t name in
  if not (Mvcc.is_staged txn) then
    gate_rows t name ~pos:row ~len:1 Restore.Demand;
  Mvcc.read_row txn table row;
  if row < 0 || row >= Table.row_count table then None
  else if Mvcc.row_visible txn table row then Some (Table.get_row table row)
  else None

let scan t txn name f =
  check_open t;
  let table = table t name in
  if not (Mvcc.is_staged txn) then gate_table t name Restore.Demand;
  Mvcc.read_table txn table;
  for row = 0 to Table.row_count table - 1 do
    if Mvcc.row_visible txn table row then f row (Table.get_row table row)
  done

let select t txn name ~where =
  let acc = ref [] in
  scan t txn name (fun row values -> if where values then acc := (row, values) :: !acc);
  List.rev !acc

let lookup t txn name ~col value =
  check_open t;
  let table = table t name in
  (* an index probe walks the dictionary and the full attribute vector:
     whole-table read surface *)
  if not (Mvcc.is_staged txn) then gate_table t name Restore.Demand;
  let ci = Schema.find_column (Table.schema table) col in
  Mvcc.read_point txn table ~col:ci value;
  List.filter_map
    (fun row ->
      if Mvcc.row_visible txn table row then Some (row, Table.get_row table row)
      else None)
    (Table.rows_with_value table ci value)

let count t txn name =
  let n = ref 0 in
  scan t txn name (fun _ _ -> incr n);
  !n

let sum_int t txn name ~col =
  check_open t;
  let table = table t name in
  if not (Mvcc.is_staged txn) then gate_table t name Restore.Demand;
  Mvcc.read_table txn table;
  let ci = Schema.find_column (Table.schema table) col in
  let acc = ref 0 in
  for row = 0 to Table.row_count table - 1 do
    if Mvcc.row_visible txn table row then
      match Table.get table row ci with
      | Value.Int v -> acc := !acc + v
      | v ->
          invalid_arg
            (Printf.sprintf "Engine.sum_int: %s.%s holds %s" name col
               (Value.to_string v))
  done;
  !acc

let to_filters fs =
  List.map (fun (col, pred) -> { Query.Scan.col; pred }) fs

let where ?impl t txn name fs =
  check_open t;
  let table = table t name in
  Mvcc.read_table txn table;
  let gate = if Mvcc.is_staged txn then None else scan_gate t name in
  Query.Scan.select ?impl ?gate txn table ~filters:(to_filters fs)

let count_where ?impl t txn name fs =
  check_open t;
  let table = table t name in
  Mvcc.read_table txn table;
  let gate = if Mvcc.is_staged txn then None else scan_gate t name in
  Query.Scan.count ?impl ?gate txn table ~filters:(to_filters fs)

let aggregate ?impl t txn name ?group_by ~specs ?(filters = []) () =
  check_open t;
  let table = table t name in
  Mvcc.read_table txn table;
  let gate = if Mvcc.is_staged txn then None else scan_gate t name in
  Query.Aggregate.run ?impl ?gate txn table ?group_by ~specs
    ~filters:(to_filters filters) ()

(* -- merge / checkpoint -- *)

let merge_one t name =
  if Mvcc.active_count t.mgr > 0 then
    invalid_arg "Engine.merge: active transactions";
  (* a merge reads every row of both partitions: heal the table first *)
  gate_table t name Restore.Demand;
  let tid = Option.value ~default:0 (Hashtbl.find_opt t.ids name) in
  (* replay reproduces historical merges; recording them again would
     duplicate the pre-crash timeline the ring already holds *)
  if not t.replaying then Obs.Blackbox.emit ~arg:tid Obs.Event.Merge_begin;
  let old_table = table t name in
  let merged, stats, finalize =
    Storage.Merge.run t.alloc old_table ~merge_cid:(Mvcc.last_cid t.mgr)
  in
  (* single durable word: the merge publication *)
  Catalog.swap_table t.catalog ~name ~new_ctrl:(Table.handle merged);
  finalize ();
  Hashtbl.replace t.tables name merged;
  L.info (fun m ->
      m "merged %s: %d rows -> %d, %d -> %d bytes" name
        stats.Storage.Merge.rows_in stats.Storage.Merge.rows_out
        stats.Storage.Merge.bytes_before stats.Storage.Merge.bytes_after);
  if not t.replaying then Obs.Blackbox.emit ~arg:tid Obs.Event.Merge_end;
  stats

let merge t name =
  check_open t;
  match (t.cfg.durability, t.cfg.salvage) with
  | Logging _, _ ->
      invalid_arg
        "Engine.merge: use Engine.checkpoint under log-based durability \
         (a lone merge would invalidate logged row references)"
  | Nvm, Some _ ->
      invalid_arg
        "Engine.merge: use Engine.checkpoint under salvage logging (a lone \
         merge would invalidate the row references the salvage log relies \
         on)"
  | Nvm, None | Volatile, _ -> merge_one t name

let dump_tables t =
  List.map
    (fun name ->
      let table = table t name in
      let rows = Table.main_rows table in
      let columns =
        Array.init
          (Schema.arity (Table.schema table))
          (fun ci ->
            {
              Wal.Checkpoint.dict =
                Array.init
                  (Table.main_dictionary_size table ci)
                  (Table.main_dict_value table ci);
              avec = Array.init rows (Table.main_vid table ci);
            })
      in
      { Wal.Checkpoint.name; schema = Table.schema table; rows; columns })
    (table_names t)

let checkpoint t =
  Obs.Span.with_ ~name:"checkpoint" @@ fun () ->
  check_open t;
  if Mvcc.active_count t.mgr > 0 then
    invalid_arg "Engine.checkpoint: active transactions";
  Obs.Blackbox.emit Obs.Event.Ckpt_begin;
  let stats = List.map (merge_one t) (table_names t) in
  let rotate_to =
    match (t.cfg.durability, t.cfg.salvage, t.log) with
    | Logging lc, _, Some log -> Some (lc, log)
    | Nvm, Some lc, Some log -> Some (salvage_log_config lc, log)
    | _ -> None
  in
  (match rotate_to with
  | Some (lc, log) ->
      let epoch = t.epoch + 1 in
      let on_step = Option.map Nvm.Sanitizer.note_external t.san in
      ignore
        (Wal.Checkpoint.write ?on_step ~dir:lc.Wal.Log.dir
           { Wal.Checkpoint.cid = Mvcc.last_cid t.mgr; epoch; tables = dump_tables t });
      Wal.Log.close log;
      t.log <- Some (Wal.Log.create lc ~epoch);
      t.epoch <- epoch
  | None -> ());
  Obs.Blackbox.emit Obs.Event.Ckpt_end;
  stats

let vacuum t =
  check_open t;
  if Mvcc.active_count t.mgr > 0 then
    invalid_arg "Engine.vacuum: active transactions";
  (* Only damage whose table has no registered (block-enumerable)
     generation blocks the sweep: unsalvageable PR-5 quarantines and
     structurally damaged tables awaiting their deferred rebuild — their
     blocks cannot be marked live, so sweeping would destroy the salvage
     evidence. Segment-quarantined tables ARE registered: their blocks
     are simply kept, and the sweep proceeds around them. *)
  let blockers =
    List.map (fun n -> (n, [])) t.quarantined
    @ (match t.restore with
      | None -> []
      | Some rs ->
          List.filter
            (fun (n, _) -> not (Hashtbl.mem t.tables n))
            (Restore.pending rs))
  in
  if blockers <> [] then
    invalid_arg
      (Printf.sprintf
         "Engine.vacuum: unrestored quarantine evidence for %s (blocks not \
          enumerable; restore or scrub first)"
         (String.concat ", "
            (List.map
               (fun (n, segs) ->
                 match segs with
                 | [] -> n
                 | _ ->
                     Printf.sprintf "%s[segments %s]" n
                       (String.concat "," (List.map string_of_int segs)))
               blockers)));
  let live = Hashtbl.create 4096 in
  Hashtbl.replace live t.ctrl ();
  (match t.bb_ring with
  | Some ring ->
      List.iter (fun b -> Hashtbl.replace live b ()) (Pring.owned_blocks ring)
  | None -> ());
  List.iter (fun b -> Hashtbl.replace live b ()) (Catalog.owned_blocks t.catalog);
  Hashtbl.iter
    (fun _ table ->
      List.iter (fun b -> Hashtbl.replace live b ()) (Table.owned_blocks table))
    t.tables;
  let blocks, bytes = A.sweep t.alloc ~live:(Hashtbl.mem live) in
  if blocks > 0 then
    L.info (fun m -> m "vacuum reclaimed %d blocks (%d bytes)" blocks bytes);
  (blocks, bytes)

(* -- crash and recovery -- *)

type crashed = {
  c_cfg : config;
  c_region : Region.t;
  c_san : Nvm.Sanitizer.t option;
}

let crash t mode =
  check_open t;
  (* the recorder dies with the process; what survives is the ring *)
  Obs.Blackbox.set_sink None;
  (match t.log with Some log -> Wal.Log.crash log | None -> ());
  Region.crash t.region mode;
  t.closed <- true;
  { c_cfg = t.cfg; c_region = t.region; c_san = t.san }

type recovery_detail =
  | Rv_volatile
  | Rv_nvm of {
      heap_open_ns : int;
      attach_ns : int;
      verify_ns : int;
      rollback_ns : int;
      salvage_ns : int;
      heap_blocks : int;
      rolled_back_rows : int;
      tables : int;
      quarantined : string list;
      salvaged : string list;
      deferred : (string * int list) list;
          (* segment-quarantined tables whose repair was deferred to the
             online restore scheduler (table, damaged segments) *)
      heap_reset : bool;
      blackbox_records : int; (* pre-crash events decoded from the ring *)
      blackbox_ns : int; (* ring attach + decode phase *)
    }
  | Rv_log of {
      checkpoint_load_ns : int;
      replay_ns : int;
      replay_decode_ns : int; (* frame scan + payload parse *)
      replay_stage_ns : int; (* lane-side witness staging (jobs > 1) *)
      replay_apply_ns : int; (* serial CID-ordered apply pass *)
      replay_waves : int;
      replay_jobs : int; (* Par.jobs () the replay ran under *)
      replay_dev_by_slot : int array;
          (* modeled device ns attributed to each pool slot during the
             replay span; slot 0 is the serial applier *)
      command_txns : int; (* transactions re-executed from Command records *)
      checkpoint_rows : int;
      checkpoint_bytes : int;
      log_records : int;
      log_bytes : int;
      committed_txns : int;
    }

type recovery_stats = { wall_ns : int; detail : recovery_detail }

let load_checkpoint_tables e (c : Wal.Checkpoint.t) =
  let rows = ref 0 in
  List.iter
    (fun td ->
      (* columnar bulk load: rebuild the main partition directly *)
      let columns =
        Array.map
          (fun cd -> (cd.Wal.Checkpoint.dict, cd.Wal.Checkpoint.avec))
          td.Wal.Checkpoint.columns
      in
      let main_end = Array.make td.Wal.Checkpoint.rows Cid.infinity in
      let table =
        Table.replace_ctrl_for_merge e.alloc ~name:td.Wal.Checkpoint.name
          ~schema:td.Wal.Checkpoint.schema ~columns ~main_end
      in
      Catalog.add_table e.catalog ~name:td.Wal.Checkpoint.name
        ~ctrl:(Table.handle table);
      register_table e td.Wal.Checkpoint.name table;
      rows := !rows + td.Wal.Checkpoint.rows)
    c.Wal.Checkpoint.tables;
  !rows

(* wal.replay.* — the partitioned parallel replay's phase metrics *)
let replay_waves_c = Obs.counter "wal.replay.waves"
let replay_partitions_c = Obs.counter "wal.replay.partitions"
let replay_staged_c = Obs.counter "wal.replay.staged_rows"
let replay_stale_c = Obs.counter "wal.replay.stale_witness"
let replay_stale_lookups_c = Obs.counter "wal.replay.stale_lookups"
let replay_cmd_txns_c = Obs.counter "wal.replay.command_txns"
let replay_lookups_c = Obs.counter "wal.replay.command_lookups"

(* records per replay wave: small enough that staging witnesses are at
   most one wave stale (delta dictionaries only grow, so staleness only
   costs a fallback re-walk, never correctness), large enough to keep
   the worker lanes busy between joins *)
let replay_wave = 256

(* Rebuild from checkpoint + retained logs. The ladder:
   1. checkpoint.bin plus its epoch's log;
   2. (current checkpoint rejected) checkpoint.bak plus the previous
      epoch's log, a merge at the boundary reproducing what the rejected
      checkpoint did, then the current epoch's log;
   3. (no readable checkpoint) an empty database plus every retained
      epoch from 0, with a merge at each boundary.
   [bound] (NVM salvage) drops commit records beyond the NVM durable
   commit point so the rebuilt state matches the surviving image;
   [reopen] re-arms the log for appending (off for scratch replays);
   [sanitize] traces the fresh region (tests drive the parallel replay
   under the armed sanitizer with it). *)
let recover_log_at ?bound ?(reopen = true) ?sanitize cfg lc =
  Obs.Span.with_ ~name:"recover.log" @@ fun () ->
  let e =
    Obs.Span.with_ ~name:"format" (fun () ->
        create_raw ?sanitize cfg ~with_log:false)
  in
  e.replaying <- true;
  let t0 = now_ns () in
  let dir = lc.Wal.Log.dir in
  let ckpt_rows = ref 0 and ckpt_bytes = ref 0 in
  let ckpt =
    Obs.Span.with_ ~name:"checkpoint_load" @@ fun () ->
    let c, src_path =
      match Wal.Checkpoint.read ~dir with
      | Some c -> (Some c, Wal.Checkpoint.path ~dir)
      | None -> (Wal.Checkpoint.read_bak ~dir, Wal.Checkpoint.bak_path ~dir)
    in
    (match c with
    | None -> ()
    | Some c ->
        ckpt_bytes :=
          (try (Unix.stat src_path).Unix.st_size with Unix.Unix_error _ -> 0);
        ckpt_rows := load_checkpoint_tables e c);
    Obs.Span.attr "rows" !ckpt_rows;
    c
  in
  let t1 = now_ns () in
  let base_cid, base_epoch =
    match ckpt with
    | Some c -> (c.Wal.Checkpoint.cid, c.Wal.Checkpoint.epoch)
    | None -> (Cid.zero, 0)
  in
  let top_epoch = List.fold_left max base_epoch (Wal.Log.epochs ~dir) in
  (* -- partitioned parallel replay (docs/PROTOCOLS.md §14) --

     Replay reproduces physical row numbering by applying every logged
     insert, then stamping CIDs at commit records. The parallel shape
     mirrors the writer pipeline (§13): records are processed in waves;
     a wave's insert payloads are partitioned by table and their
     dictionary probes staged on the worker lanes ([Table.stage_probe],
     pure Region reads, deterministic chunk striding via
     [Par.parallel_for ~caller:false]); the next wave stages before the
     current one applies — the sequential rendering of the overlap. All
     NVM writes happen in the serial apply pass on slot 0, which walks
     records in log order — that pass IS the cross-partition commit
     ordering rule: per-record CIDs are stamped exactly in log order, so
     the result is byte-identical to [--jobs 1] (witnesses only change
     read paths; a stale witness falls back to the ordinary walk). *)
  (* staged rows carry their log table id and full values so the commit
     stamp can bump the key versions they make live *)
  let staged : (int, (Table.t * int * int * Value.t array) list) Hashtbl.t =
    Hashtbl.create 64
  in
  (* command re-execution records the rows it invalidates as intents
     keyed by tid (with the lookup key whose liveness the stamp will
     change); the commit record stamps them (or, beyond [bound], drops
     them together with the staged rows) *)
  let intents : (int, (Table.t * int * int * (int * Value.t)) list) Hashtbl.t =
    Hashtbl.create 64
  in
  let last = ref base_cid in
  let committed = ref 0 in
  let total_records = ref 0 and total_bytes = ref 0 in
  let final_bytes = ref 0 in
  let decode_ns = ref 0 and stage_ns = ref 0 and apply_ns = ref 0 in
  let waves = ref 0 in
  let stale = ref 0 in
  let cmd_txns = ref 0 in
  let jobs = Par.jobs () in
  let table_by_id id =
    match List.nth_opt (List.rev e.names_by_id) id with
    | Some name -> table e name
    | None -> failwith "Engine.recover: log references unknown table"
  in
  let snapshot_tables () =
    Array.of_list (List.rev_map (Hashtbl.find e.tables) e.names_by_id)
  in
  let push map tid entry =
    let prev = Option.value ~default:[] (Hashtbl.find_opt map tid) in
    Hashtbl.replace map tid (entry :: prev)
  in
  (* first committed-live row holding the key, ascending physical order —
     the row the live body's lookup resolved per the §14 determinism
     contract (at apply time every preceding transaction has already
     committed, so committed-live equals visible) *)
  let live_row tbl key_col key =
    List.find_opt
      (fun row ->
        Table.begin_cid tbl row <> Cid.infinity
        && Table.end_cid tbl row = Cid.infinity)
      (Table.rows_with_value tbl key_col key)
  in
  (* -- staged key lookups --

     The committed-live row a command lookup resolves changes ONLY when a
     commit stamp begins or ends a row holding that key (appends alone
     stage begin = end = infinity, invisible to [live_row]). So a lookup
     walked on a pool lane a wave ahead stays valid as long as its key's
     version below is unbumped; the serial applier checks the version and
     re-walks on a mismatch (counted as [wal.replay.stale_lookups]). The
     version table is keyed per (table log id, key column, key value) —
     the columns registered from the epoch's own command records. *)
  let key_cols : (int, int list) Hashtbl.t = Hashtbl.create 8 in
  let register_key table_id col =
    let cur = Option.value ~default:[] (Hashtbl.find_opt key_cols table_id) in
    if not (List.mem col cur) then Hashtbl.replace key_cols table_id (col :: cur)
  in
  let keyver : (int * int * Value.t, int) Hashtbl.t = Hashtbl.create 512 in
  let kver k = Option.value ~default:0 (Hashtbl.find_opt keyver k) in
  (* resolved-lookup cache, maintained synchronously by the serial apply
     pass: under the §14 contract a key resolves at most one live row, so
     a committed command update/delete determines the key's next
     resolution outright (the appended version / nothing), and repeated
     hot-key lookups — inherently serial chains, each depending on the
     previous commit — cost O(1) instead of a table walk. Any other
     liveness change for the key (a value-logged commit) just evicts. *)
  let lcache : (int * int * Value.t, int option) Hashtbl.t =
    Hashtbl.create 512
  in
  let bump table_id col v =
    let k = (table_id, col, v) in
    Hashtbl.remove lcache k;
    Hashtbl.replace keyver k (1 + kver k)
  in
  let bump_registered table_id (values : Value.t array) =
    match Hashtbl.find_opt key_cols table_id with
    | None -> ()
    | Some cols ->
        List.iter
          (fun c -> if c < Array.length values then bump table_id c values.(c))
          cols
  in
  let append_with tbl w values =
    match w with
    | Some vids -> Table.append_row_prepared ~stale tbl ~vids values
    | None -> Table.append_row tbl values
  in
  (* [cells] holds the wave's staged witnesses; the plan maps each
     record's op index to a witness cell and a lookup cell, -1 = not
     staged. [lres] holds staged lookup results (resolved row plus, for
     updates, its prefetched values); [lmeta] the key-version each was
     walked under. *)
  let witness cells pcells oi =
    if oi < Array.length pcells && pcells.(oi) >= 0 then cells.(pcells.(oi))
    else None
  in
  let stale_lookups = ref 0 in
  let apply cells pcells lcells lres lmeta r =
    let staged_lookup oi tbl key_col key table_id =
      (* (resolved row, prefetched values if still usable) *)
      let k = (table_id, key_col, key) in
      match Hashtbl.find_opt lcache k with
      | Some row -> (row, None)
      | None ->
          let res =
            if oi < Array.length lcells && lcells.(oi) >= 0 then begin
              let c = lcells.(oi) in
              let _, _, _, v0 = lmeta.(c) in
              if kver k = v0 then lres.(c)
              else begin
                incr stale_lookups;
                (live_row tbl key_col key, None)
              end
            end
            else (live_row tbl key_col key, None)
          in
          Hashtbl.replace lcache k (fst res);
          res
    in
    match r with
    | Wal.Log.Create_table { name; schema } -> create_table e ~name schema
    | Wal.Log.Insert { tid; table_id; values } ->
        let tbl = table_by_id table_id in
        let row = append_with tbl (witness cells pcells 0) values in
        push staged tid (tbl, row, table_id, values)
    | Wal.Log.Command { tid; ops } ->
        (* re-execute the declared ops against replayed state; the key
           lookups are the replay cost the adaptive policy's estimator
           prices (staged on the pool a wave ahead when jobs > 1) *)
        incr cmd_txns;
        Obs.incr replay_cmd_txns_c;
        Array.iteri
          (fun oi op ->
            match op with
            | Wal.Codec.Cmd_insert { table_id; values } ->
                let tbl = table_by_id table_id in
                let row = append_with tbl (witness cells pcells oi) values in
                push staged tid (tbl, row, table_id, values)
            | Wal.Codec.Cmd_update { table_id; key_col; key; sets } -> (
                Obs.incr replay_lookups_c;
                let tbl = table_by_id table_id in
                match staged_lookup oi tbl key_col key table_id with
                | None, _ -> () (* the live body's lookup missed too (§14) *)
                | Some row, pre ->
                    let nv =
                      match pre with
                      | Some v -> Array.copy v
                      | None -> Array.copy (Table.get_row tbl row)
                    in
                    Array.iter
                      (fun (c, cop) ->
                        nv.(c) <-
                          (match (cop, nv.(c)) with
                          | Set v, _ -> v
                          | Add_int d, Value.Int x -> Value.Int (x + d)
                          | Add_int _, v -> v))
                      sets;
                    let nr = Table.append_row tbl nv in
                    push staged tid (tbl, nr, table_id, nv);
                    push intents tid (tbl, row, table_id, (key_col, key)))
            | Wal.Codec.Cmd_delete { table_id; key_col; key } -> (
                Obs.incr replay_lookups_c;
                let tbl = table_by_id table_id in
                match staged_lookup oi tbl key_col key table_id with
                | None, _ -> ()
                | Some row, _ ->
                    push intents tid (tbl, row, table_id, (key_col, key))))
          ops
    | Wal.Log.Commit { tid; cid; invalidated } ->
        let beyond =
          match bound with Some b -> Int64.compare cid b > 0 | None -> false
        in
        if beyond then begin
          (* the NVM image never made this commit durable: its rows stay
             uncommitted and its invalidation intents are dropped,
             exactly like the image-side rollback leaves them *)
          Hashtbl.remove staged tid;
          Hashtbl.remove intents tid
        end
        else begin
          let srows = Option.value ~default:[] (Hashtbl.find_opt staged tid) in
          let irows =
            Option.value ~default:[] (Hashtbl.find_opt intents tid)
          in
          List.iter
            (fun (tbl, row, table_id, values) ->
              Table.set_begin_cid tbl row cid;
              bump_registered table_id values)
            srows;
          Hashtbl.remove staged tid;
          List.iter
            (fun (table_id, row) ->
              let tbl = table_by_id table_id in
              Table.set_end_cid tbl row cid;
              (* a value-logged invalidation kills a live row: bump its
                 registered keys so staged lookups notice *)
              match Hashtbl.find_opt key_cols table_id with
              | None -> ()
              | Some cols ->
                  List.iter (fun c -> bump table_id c (Table.get tbl row c)) cols)
            invalidated;
          List.iter
            (fun (tbl, row, table_id, (kc, key)) ->
              Table.set_end_cid tbl row cid;
              bump table_id kc key)
            irows;
          Hashtbl.remove intents tid;
          (* the commit itself determines each intent key's next
             resolution (§14: at most one live row per key): an update
             staged the key's replacement version, a delete left nothing.
             Runs after the bumps, which evicted these entries. *)
          List.iter
            (fun (_, _, table_id, (kc, key)) ->
              let next =
                List.find_map
                  (fun (_, r, id, values) ->
                    if
                      id = table_id
                      && kc < Array.length values
                      && values.(kc) = key
                    then Some r
                    else None)
                  srows
              in
              Hashtbl.replace lcache (table_id, kc, key) next)
            irows;
          if Int64.compare cid !last > 0 then last := cid;
          incr committed
        end
    | Wal.Log.Abort { tid } ->
        Hashtbl.remove staged tid;
        Hashtbl.remove intents tid
  in
  let dev0 = Region.sim_ns_by_slot e.region in
  Obs.Span.with_ ~name:"replay" (fun () ->
      for epoch = base_epoch to top_epoch do
        (* decode: frame scan serially, then parse payload chunks on the
           pool (pure volatile work, no Region access) *)
        let td0 = now_ns () in
        let payloads, log_bytes =
          Wal.Log.read_payloads ~dir ~expected_epoch:epoch
        in
        let records =
          Array.concat
            (Array.to_list
               (Par.map_chunks ~chunk:512 ~n:(Array.length payloads)
                  (fun ~lo ~hi ->
                    Array.init (hi - lo) (fun i ->
                        Wal.Log.decode_record payloads.(lo + i)))))
        in
        decode_ns := !decode_ns + (now_ns () - td0);
        let n = Array.length records in
        (* register every key column this epoch's command records look
           up, before any lookup is staged against the version table *)
        Array.iter
          (function
            | Wal.Log.Command { ops; _ } ->
                Array.iter
                  (function
                    | Wal.Codec.Cmd_update { table_id; key_col; _ }
                    | Wal.Codec.Cmd_delete { table_id; key_col; _ } ->
                        register_key table_id key_col
                    | Wal.Codec.Cmd_insert _ -> ())
                  ops
            | _ -> ())
          records;
        (* stage one wave: partition its insert payloads by table and
           probe their dictionaries on the worker lanes; walk its command
           key lookups across ALL lanes (caller included — the applier's
           slot takes its fair share of the read work between applies).
           Returns empty arrays at jobs 1 so the serial baseline replays
           on the pristine pre-parallel path. *)
        let build_stage lo hi =
          if jobs <= 1 then ([||], [||], [||], [||])
          else begin
            let ts0 = now_ns () in
            let tbls = snapshot_tables () in
            (* tables created inside this wave are not in the snapshot:
               their inserts stay unstaged (cell -1, plain append) *)
            let tbl_of id =
              if id >= 0 && id < Array.length tbls then Some tbls.(id)
              else None
            in
            let acc = ref [] and count = ref 0 in
            let take id tbl values =
              let c = !count in
              incr count;
              acc := (id, tbl, values, c) :: !acc;
              c
            in
            let lacc = ref [] and lcount = ref 0 in
            let lseen = Hashtbl.create 64 in
            let ltake id tbl key_col key want_values =
              (* hot keys repeat: each occurrence after the first depends
                 on the commit before it (an inherently serial chain), and
                 the apply pass answers it from [lcache] in O(1) — walking
                 it on a lane would be pure waste. Stage only keys not
                 already resolved and not already staged this wave. *)
              let k = (id, key_col, key) in
              if Hashtbl.mem lcache k || Hashtbl.mem lseen k then -1
              else begin
                Hashtbl.add lseen k ();
                let c = !lcount in
                incr lcount;
                (* the version the walk runs under: read here, on the
                   serial side, before any of this wave's applies *)
                let v0 = kver k in
                lacc := (tbl, key_col, key, want_values, id, v0, c) :: !lacc;
                c
              end
            in
            let plan =
              Array.init (hi - lo) (fun j ->
                  match records.(lo + j) with
                  | Wal.Log.Insert { table_id; values; _ } -> (
                      match tbl_of table_id with
                      | Some tbl -> ([| take table_id tbl values |], [| -1 |])
                      | None -> ([| -1 |], [| -1 |]))
                  | Wal.Log.Command { ops; _ } ->
                      let pc = Array.make (Array.length ops) (-1) in
                      let lc = Array.make (Array.length ops) (-1) in
                      Array.iteri
                        (fun oi op ->
                          match op with
                          | Wal.Codec.Cmd_insert { table_id; values } -> (
                              match tbl_of table_id with
                              | Some tbl -> pc.(oi) <- take table_id tbl values
                              | None -> ())
                          | Wal.Codec.Cmd_update { table_id; key_col; key; _ }
                            -> (
                              match tbl_of table_id with
                              | Some tbl ->
                                  lc.(oi) <- ltake table_id tbl key_col key true
                              | None -> ())
                          | Wal.Codec.Cmd_delete { table_id; key_col; key } -> (
                              match tbl_of table_id with
                              | Some tbl ->
                                  lc.(oi) <-
                                    ltake table_id tbl key_col key false
                              | None -> ()))
                        ops;
                      (pc, lc)
                  | _ -> ([||], [||]))
            in
            let items = Array.of_list (List.rev !acc) in
            (* partition: stable sort on the table's log id keeps log
               order within each table's run of probes *)
            Array.stable_sort
              (fun (a, _, _, _) (b, _, _, _) -> compare (a : int) b)
              items;
            let parts = ref 0 in
            Array.iteri
              (fun k (id, _, _, _) ->
                if k = 0 || id <> (let p, _, _, _ = items.(k - 1) in p) then
                  incr parts)
              items;
            Obs.add replay_partitions_c !parts;
            Obs.add replay_staged_c !count;
            let cells = Array.make !count None in
            Par.parallel_for ~caller:false ~min_chunk:8
              ~n:(Array.length items) (fun ~lo:ilo ~hi:ihi ->
                for k = ilo to ihi - 1 do
                  let _, tbl, values, c = items.(k) in
                  cells.(c) <- Some (Table.stage_probe tbl values)
                done);
            let litems = Array.of_list (List.rev !lacc) in
            Array.stable_sort
              (fun (_, _, _, _, a, _, _) (_, _, _, _, b, _, _) ->
                compare (a : int) b)
              litems;
            let lres = Array.make !lcount (None, None) in
            let lmeta = Array.make !lcount (0, 0, Value.Int 0, 0) in
            Array.iter
              (fun (_, kc, key, _, id, v0, c) -> lmeta.(c) <- (id, kc, key, v0))
              litems;
            (* lookups are coarse (a full key walk each): chunk at 1 and
               let the static stride spread them over every lane *)
            Par.parallel_for ~min_chunk:1 ~n:(Array.length litems)
              (fun ~lo:ilo ~hi:ihi ->
                for k = ilo to ihi - 1 do
                  let tbl, kc, key, want_values, _, _, c = litems.(k) in
                  let row = live_row tbl kc key in
                  let pre =
                    match (row, want_values) with
                    | Some r, true -> Some (Table.get_row tbl r)
                    | _ -> None
                  in
                  lres.(c) <- (row, pre)
                done);
            stage_ns := !stage_ns + (now_ns () - ts0);
            (plan, cells, lres, lmeta)
          end
        in
        let nwaves = if n = 0 then 0 else ((n + replay_wave - 1) / replay_wave) in
        let bounds w = (w * replay_wave, min n ((w + 1) * replay_wave)) in
        if nwaves > 0 then begin
          let cur =
            ref
              (let lo, hi = bounds 0 in
               build_stage lo hi)
          in
          for w = 0 to nwaves - 1 do
            Obs.incr replay_waves_c;
            incr waves;
            (* stage the next wave before this one applies — the
               sequential rendering of the stage/apply overlap (§13) *)
            let next =
              if w + 1 < nwaves then
                Some
                  (let nlo, nhi = bounds (w + 1) in
                   build_stage nlo nhi)
              else None
            in
            let lo, hi = bounds w in
            let plan, cells, lres, lmeta = !cur in
            let ta0 = now_ns () in
            for j = lo to hi - 1 do
              let pcells, lcells =
                if Array.length plan = 0 then ([||], [||]) else plan.(j - lo)
              in
              apply cells pcells lcells lres lmeta records.(j)
            done;
            apply_ns := !apply_ns + (now_ns () - ta0);
            match next with Some x -> cur := x | None -> ()
          done
        end;
        total_records := !total_records + n;
        total_bytes := !total_bytes + log_bytes;
        final_bytes := log_bytes;
        if epoch < top_epoch then begin
          (* reproduce the merge the checkpoint at this boundary performed,
             so the next epoch's row references resolve *)
          Hashtbl.reset staged;
          Hashtbl.reset intents;
          (* the merge renumbers physical rows: cached resolutions and
             key versions are meaningless across the boundary *)
          Hashtbl.reset lcache;
          Hashtbl.reset keyver;
          e.mgr <- make_manager e ~last_cid:!last;
          List.iter (fun n -> ignore (merge_one e n)) (table_names e)
        end
      done;
      Obs.add replay_stale_c !stale;
      Obs.add replay_stale_lookups_c !stale_lookups;
      Obs.Span.attr "records" !total_records;
      Obs.Span.attr "committed_txns" !committed;
      Obs.Span.attr "jobs" jobs;
      Obs.Span.attr "waves" !waves;
      Obs.Span.attr "decode_ns" !decode_ns;
      Obs.Span.attr "stage_ns" !stage_ns;
      Obs.Span.attr "apply_ns" !apply_ns);
  let dev1 = Region.sim_ns_by_slot e.region in
  let replay_dev_by_slot =
    Array.init (Array.length dev1) (fun i ->
        dev1.(i) - (if i < Array.length dev0 then dev0.(i) else 0))
  in
  let t2 = now_ns () in
  e.replaying <- false;
  Obs.Span.with_ ~name:"reopen_log" (fun () ->
      persist_commit_hook e.region e.ctrl !last;
      e.mgr <- make_manager e ~last_cid:!last;
      if reopen then begin
        (if Sys.file_exists (Wal.Log.log_path ~dir ~epoch:top_epoch) then
           e.log <-
             Some (Wal.Log.open_append lc ~epoch:top_epoch ~truncate_at:!final_bytes)
         else e.log <- Some (Wal.Log.create lc ~epoch:top_epoch));
        e.epoch <- top_epoch
      end);
  L.info (fun m ->
      m "log recovery: %d checkpoint rows, %d records replayed (%d bytes), %d txns"
        !ckpt_rows !total_records !total_bytes !committed);
  ( e,
    Rv_log
      {
        checkpoint_load_ns = t1 - t0;
        replay_ns = t2 - t1;
        replay_decode_ns = !decode_ns;
        replay_stage_ns = !stage_ns;
        replay_apply_ns = !apply_ns;
        replay_waves = !waves;
        replay_jobs = jobs;
        replay_dev_by_slot;
        command_txns = !cmd_txns;
        checkpoint_rows = !ckpt_rows;
        checkpoint_bytes = !ckpt_bytes;
        log_records = !total_records;
        log_bytes = !total_bytes;
        committed_txns = !committed;
      } )

(* Rebuild one damaged table inside the live heap from its scratch-replay
   twin, preserving physical row numbering exactly (main rows from the
   rebuilt main partition, delta rows re-appended in order), so retained
   log records keep resolving against the salvaged generation. *)
let rebuild_table alloc ~name src =
  let schema = Table.schema src in
  let m = Table.main_rows src in
  let columns =
    Array.init (Schema.arity schema) (fun ci ->
        ( Array.init (Table.main_dictionary_size src ci)
            (Table.main_dict_value src ci),
          Array.init m (Table.main_vid src ci) ))
  in
  let main_end = Array.init m (fun r -> Table.end_cid src r) in
  let t = Table.replace_ctrl_for_merge alloc ~name ~schema ~columns ~main_end in
  for r = m to Table.row_count src - 1 do
    let nr = Table.append_row t (Table.get_row src r) in
    assert (nr = r);
    let b = Table.begin_cid src r in
    if b <> Cid.infinity then Table.set_begin_cid t nr b;
    let e = Table.end_cid src r in
    if e <> Cid.infinity then Table.set_end_cid t nr e
  done;
  Table.publish t;
  t

let crc_failures_c = Obs.counter "media.crc_failures"

let recover_nvm ?(verify = `Shallow) ?san cfg region =
  Obs.Span.with_ ~name:"recover.nvm" @@ fun () ->
  let t0 = now_ns () in
  let crc0 = Obs.counter_value crc_failures_c in
  (* the ring is not attached yet: buffer the early restart markers
     volatile and replay them into the ring the moment it is *)
  let buffered : Obs.Event.t list ref = ref [] in
  Obs.Blackbox.set_sink (Some (fun ev -> buffered := ev :: !buffered));
  let flush_buffered () =
    let evs = List.rev !buffered in
    buffered := [];
    (* re-delivered with fresh seqs: the floor set from the decoded ring
       places them after the whole pre-crash timeline *)
    List.iter Obs.Blackbox.replay evs
  in
  (* pre-crash timeline, stashed outside [instant] so even the
     full-rebuild fallback can hand it to the fresh engine *)
  let decoded_precrash = ref [] in
  let decoded_truncated = ref 0 in
  Obs.Blackbox.emit Obs.Event.Recovery_begin;
  let instant () =
    let alloc =
      Obs.Span.with_ ~name:"heap_scan" @@ fun () ->
      let alloc = A.open_existing region in
      (match A.last_recovery alloc with
      | Some r -> Obs.Span.attr "blocks" r.A.scanned_blocks
      | None -> ());
      alloc
    in
    Obs.Blackbox.emit ~arg:Obs.Event.ph_heap_scan Obs.Event.Recovery_phase;
    let t1 = now_ns () in
    (* a traced (sanitizer) restart fans out like any other; the
       sanitizer merges per-lane traces at each join (PROTOCOLS.md §10) *)
    let e, last, views, attached =
      Obs.Span.with_ ~name:"attach" @@ fun () ->
      let ctrl = A.get_root alloc root_slot in
      let last = read_commit_point region ctrl in
      let catalog =
        Catalog.attach alloc (Seal.read region ~what:"catalog handle" (ctrl + 8))
      in
      (* the directory itself must hold up: per-table damage is contained
         below, but an unreadable directory means no table can be trusted *)
      (match verify with
      | `Off -> ()
      | `Shallow -> Catalog.verify catalog
      | `Deep -> Catalog.verify ~deep:true catalog);
      let e = assemble ?san cfg region alloc ctrl catalog ~log:None ~epoch:0 in
      let views = Catalog.entries_defensive catalog in
      List.iter
        (fun (v : Catalog.entry_view) ->
          if v.Catalog.name = None then
            raise
              (A.Heap_corrupt
                 {
                   at = Option.value ~default:0 v.Catalog.entry_off;
                   what = "unreadable catalog entry";
                 }))
        views;
      (* attaching a table is pure reads into a fresh volatile shell, and
         tables are independent — fan out; a failed attach quarantines the
         table instead of failing the restart *)
      let attached =
        Par.map_array
          (fun (i, (v : Catalog.entry_view)) ->
            (* lanes record their own attaches; worker-lane events buffer
               volatile and drain caller-side at the join *)
            Obs.Blackbox.emit ~arg:i Obs.Event.Table_attach;
            match v.Catalog.ctrl with
            | None -> Error "catalog entry control pointer unreadable"
            | Some tctrl -> (
                try Ok (Table.attach alloc tctrl)
                with exn -> Error (damage_reason exn)))
          (Array.mapi (fun i v -> (i, v)) (Array.of_list views))
      in
      Obs.Span.attr "tables" (List.length views);
      (e, last, Array.of_list views, attached)
    in
    Obs.Blackbox.emit ~arg:Obs.Event.ph_attach Obs.Event.Recovery_phase;
    let t2 = now_ns () in
    (* reconstruct the pre-crash timeline from the flight recorder and
       switch the sink from the volatile buffer to the ring *)
    Obs.Span.with_ ~name:"blackbox" (fun () ->
        (try
           let ring = attach_ring e in
           let records, truncated = Pring.decode ring in
           e.bb_ring <- Some ring;
           decoded_truncated := truncated;
           decoded_precrash :=
             List.filter_map
               (fun (r : Pring.record) ->
                 Obs.Event.unpack ~seq:r.Pring.r_seq r.Pring.r_w1 r.Pring.r_w2)
               records;
           Obs.Blackbox.seq_floor
             (List.fold_left
                (fun acc (r : Pring.record) -> max acc r.Pring.r_seq)
                0 records)
         with
        | A.Heap_corrupt _ | Seal.Corrupt _ | Pstruct.Pcheck.Invalid _
        | Invalid_argument _ ->
            (* the recorder itself took the damage: start a fresh ring —
               losing the black box must never cost the database *)
            let ring =
              Pring.create ~lanes:bb_lanes ~capacity:(bb_capacity region)
                e.alloc
            in
            Seal.write region (e.ctrl + 16) (Pring.handle ring);
            Region.persist region (e.ctrl + 16) 8;
            e.bb_ring <- Some ring);
        e.bb_precrash <- !decoded_precrash;
        e.bb_truncated <- !decoded_truncated;
        install_ring_sink e;
        flush_buffered ();
        Obs.Span.attr "records" (List.length !decoded_precrash);
        Obs.Span.attr "truncated_lanes" !decoded_truncated);
    Obs.Blackbox.emit ~arg:Obs.Event.ph_blackbox Obs.Event.Recovery_phase;
    let t2b = now_ns () in
    (* segment-granular verify (§15): the same ladder, but media damage
       maps to 4K-row segments instead of condemning whole tables; only
       damage no row range can name stays table-granular (structural).
       Pure reads — safe to fan out; the reseal-only repair below runs
       serially after the join. *)
    let health =
      Obs.Span.with_ ~name:"verify" @@ fun () ->
      match verify with
      | `Off ->
          Array.map
            (function
              | Ok table -> `Healthy table
              | Error reason -> `Structural reason)
            attached
      | (`Shallow | `Deep) as level ->
          Par.map_array
            (fun r ->
              match r with
              | Error reason -> `Structural reason
              | Ok table ->
                  let rep =
                    Table.verify_segments ~deep:(level = `Deep) ~last_cid:last
                      table
                  in
                  if rep.Table.sr_structural then
                    `Structural "damage outside any row segment"
                  else if rep.Table.sr_damaged = [] && rep.Table.sr_reseal = []
                  then `Healthy table
                  else `Seg (table, rep.Table.sr_damaged, rep.Table.sr_reseal))
            attached
    in
    (* reseal-only findings (the whole-payload CRC word itself took the
       hit while every per-segment CRC vouches for the data): restamp in
       place, no twin needed *)
    Array.iteri
      (fun i h ->
        match h with
        | `Seg (table, [], reseal) ->
            List.iter (Table.reseal_main_avec table) reseal;
            L.warn (fun m ->
                m "table %s: payload CRC restamped (segment directory clean)"
                  (Option.get views.(i).Catalog.name))
        | _ -> ())
      health;
    Obs.Blackbox.emit ~arg:Obs.Event.ph_verify Obs.Event.Recovery_phase;
    let t3 = now_ns () in
    Array.iteri
      (fun i h ->
        let quarantined reason =
          Obs.incr quarantined_tables_c;
          Obs.Blackbox.emit ~arg:i Obs.Event.Quarantine;
          L.warn (fun m ->
              m "table %s quarantined: %s" (Option.get views.(i).Catalog.name)
                reason)
        in
        match h with
        | `Healthy _ | `Seg (_, [], _) -> ()
        | `Structural reason -> quarantined reason
        | `Seg (_, segs, _) ->
            quarantined
              (Printf.sprintf "%d damaged segment(s)" (List.length segs)))
      health;
    let salvaged = ref [] in
    let deferred = ref [] in
    Obs.Span.with_ ~name:"salvage" (fun () ->
        let have_archive = cfg.salvage <> None in
        (* pending damage for the online scheduler:
           (name, rows-at-quarantine, structural, segments, reseal cols) *)
        let entries = ref [] in
        (* registration pass in catalog order, so log table ids stay
           stable no matter where the damage landed *)
        Array.iteri
          (fun i h ->
            let name = Option.get views.(i).Catalog.name in
            match h with
            | `Healthy table | `Seg (table, [], _) ->
                register_table e name table
            | `Seg (table, segs, reseal) ->
                if have_archive then begin
                  (* serve-while-salvaging: the damaged generation stays
                     registered — healthy segments answer queries now,
                     damaged ones heal on first touch or in the drain *)
                  register_table e name table;
                  deferred := (name, segs) :: !deferred;
                  entries :=
                    (name, Table.row_count table, false, segs, reseal)
                    :: !entries
                end
                else
                  (* graceful degradation: serve the healthy tables *)
                  e.quarantined <- e.quarantined @ [ name ]
            | `Structural _ ->
                if have_archive then begin
                  (* named in the directory but no usable generation: the
                     first touch runs the full checkpoint+log rebuild *)
                  register_name e name;
                  deferred := (name, []) :: !deferred;
                  entries := (name, 0, true, [], []) :: !entries
                end
                else e.quarantined <- e.quarantined @ [ name ])
          health;
        match List.rev !entries with
        | [] -> ()
        | entries ->
            let lc = Option.get cfg.salvage in
            (* the salvage twin is shared by every repair and built
               lazily on the first one — an engine-ready that defers all
               repairs pays nothing for the archive replay *)
            let scratch = ref None in
            let get_scratch () =
              match !scratch with
              | Some s -> s
              | None ->
                  let scratch_cfg =
                    { cfg with durability = Volatile; salvage = None }
                  in
                  let s, _ =
                    recover_log_at ~bound:last ~reopen:false scratch_cfg lc
                  in
                  scratch := Some s;
                  s
            in
            let index_of = Hashtbl.create 8 in
            Array.iteri
              (fun i (v : Catalog.entry_view) ->
                match v.Catalog.name with
                | Some n -> Hashtbl.replace index_of n i
                | None -> ())
              views;
            let rs =
              Restore.create
                {
                  Restore.s_live = (fun name -> Hashtbl.find e.tables name);
                  s_twin =
                    (fun name ->
                      Hashtbl.find_opt (get_scratch ()).tables name);
                  s_rebuild =
                    (fun name ->
                      match Hashtbl.find_opt (get_scratch ()).tables name with
                      | None ->
                          (* the archive does not know this table at all:
                             nothing can rebuild it *)
                          raise
                            (A.Heap_corrupt
                               {
                                 at = 0;
                                 what = name ^ " missing from salvage archive";
                               })
                      | Some src ->
                          let nt = rebuild_table e.alloc ~name src in
                          Catalog.swap_table e.catalog ~name
                            ~new_ctrl:(Table.handle nt);
                          register_table e name nt;
                          Obs.incr salvaged_tables_c;
                          L.warn (fun m ->
                              m "table %s salvaged from checkpoint + log" name));
                  s_index =
                    (fun name ->
                      Option.value ~default:0 (Hashtbl.find_opt index_of name));
                  s_on_full_health =
                    (fun () -> Obs.Blackbox.emit Obs.Event.Full_health);
                }
            in
            e.restore <- Some rs;
            List.iter
              (fun (name, rows, structural, segments, reseal) ->
                Restore.quarantine rs ~name ~rows ~structural ~segments
                  ~reseal)
              entries);
    Obs.Blackbox.emit ~arg:Obs.Event.ph_salvage Obs.Event.Recovery_phase;
    let t4 = now_ns () in
    let rolled = ref 0 in
    Obs.Span.with_ ~name:"rollback" (fun () ->
        (* analyze on the pool (the O(delta) read scan), apply serially
           (the writes), in creation order for a deterministic persist
           sequence *)
        let tbls =
          (* structurally damaged tables have no registered generation
             yet; their rebuild (bounded at the durable commit point)
             needs no rollback *)
          Array.of_list
            (List.filter_map (Hashtbl.find_opt e.tables) (table_names e))
        in
        let plans =
          Par.map_array
            (fun table -> Table.rollback_plan table ~last_cid:last)
            tbls
        in
        Array.iteri
          (fun i plan -> rolled := !rolled + Table.rollback_apply tbls.(i) plan)
          plans;
        (* recovery hands back a fully durable database: a crash immediately
           after restart must change nothing *)
        Region.annotate_commit_point region ~label:"engine.recover" [];
        Obs.Span.attr "rows" !rolled);
    Obs.Blackbox.emit ~arg:Obs.Event.ph_rollback Obs.Event.Recovery_phase;
    let t5 = now_ns () in
    (* re-arm the salvage log: append where the last intact frame ended *)
    (match cfg.salvage with
    | None -> ()
    | Some lc ->
        let dir = lc.Wal.Log.dir in
        let top = List.fold_left max 0 (Wal.Log.epochs ~dir) in
        let lc1 = salvage_log_config lc in
        (if Sys.file_exists (Wal.Log.log_path ~dir ~epoch:top) then begin
           let _, good = Wal.Log.read_all ~dir ~expected_epoch:top in
           e.log <- Some (Wal.Log.open_append lc1 ~epoch:top ~truncate_at:good)
         end
         else e.log <- Some (Wal.Log.create lc1 ~epoch:top));
        e.epoch <- top);
    let crc_delta = Obs.counter_value crc_failures_c - crc0 in
    if crc_delta > 0 then
      Obs.Blackbox.emit ~arg:crc_delta Obs.Event.Crc_failure;
    (* the restart markers: the engine serves queries from here
       (time-to-first-query), and is fully healthy iff nothing stayed
       quarantined and no segment awaits its online restore — otherwise
       [Full_health] fires later, when the restore map empties
       (time-to-full-health) *)
    Obs.Blackbox.emit Obs.Event.Engine_ready;
    if
      e.quarantined = []
      && match e.restore with
         | Some rs -> Restore.pending rs = []
         | None -> true
    then Obs.Blackbox.emit Obs.Event.Full_health;
    let heap_blocks =
      match A.last_recovery alloc with
      | Some r -> r.A.scanned_blocks
      | None -> 0
    in
    L.info (fun m ->
        m
          "NVM recovery: heap %dus (%d blocks), attach %dus, verify %dus, \
           salvage %dus, rollback %dus (%d rows)"
          ((t1 - t0) / 1000) heap_blocks ((t2 - t1) / 1000) ((t3 - t2) / 1000)
          ((t4 - t3) / 1000) ((t5 - t4) / 1000) !rolled);
    ( e,
      Rv_nvm
        {
          heap_open_ns = t1 - t0;
          attach_ns = t2 - t1;
          verify_ns = t3 - t2b;
          salvage_ns = t4 - t3;
          rollback_ns = t5 - t4;
          heap_blocks;
          rolled_back_rows = !rolled;
          tables = Hashtbl.length e.tables;
          quarantined = e.quarantined;
          salvaged = List.rev !salvaged;
          deferred = List.rev !deferred;
          heap_reset = false;
          blackbox_records = List.length e.bb_precrash;
          blackbox_ns = t2b - t2;
        } )
  in
  match instant () with
  | result -> result
  | exception
      ((A.Heap_corrupt _ | Nvm.Seal.Corrupt _ | Pstruct.Pcheck.Invalid _
       | Invalid_argument _ | Not_found | Failure _) as exn) -> (
      (* the named checks are the structured detectors; [Invalid_argument]
         / [Not_found] / [Failure] are bounds errors a fault can provoke
         from plausible-but-wrong offsets before any checksum is reached *)
      match cfg.salvage with
      | None -> raise exn
      | Some lc ->
          (* the heap, control block or catalog is gone: degrade all the
             way to a full rebuild from the salvage archive (the classic
             checkpoint + log recovery, onto a fresh region) *)
          L.warn (fun m ->
              m "instant restart impossible (%s); rebuilding from salvage \
                 archive"
                (damage_reason exn));
          let ts = now_ns () in
          let e, _ = recover_log_at cfg (salvage_log_config lc) in
          let names = table_names e in
          List.iter (fun _ -> Obs.incr salvaged_tables_c) names;
          (* the rebuilt engine has a fresh ring (create_raw); hand it
             whatever the old recorder still yielded, re-point the sink
             at it and finish the restart timeline there *)
          e.bb_precrash <- !decoded_precrash;
          e.bb_truncated <- !decoded_truncated;
          install_ring_sink e;
          flush_buffered ();
          Obs.Blackbox.emit ~arg:Obs.Event.ph_replay Obs.Event.Recovery_phase;
          let crc_delta = Obs.counter_value crc_failures_c - crc0 in
          if crc_delta > 0 then
            Obs.Blackbox.emit ~arg:crc_delta Obs.Event.Crc_failure;
          Obs.Blackbox.emit Obs.Event.Engine_ready;
          Obs.Blackbox.emit Obs.Event.Full_health;
          ( e,
            Rv_nvm
              {
                heap_open_ns = 0;
                attach_ns = 0;
                verify_ns = 0;
                rollback_ns = 0;
                salvage_ns = now_ns () - ts;
                heap_blocks = 0;
                rolled_back_rows = 0;
                tables = List.length names;
                quarantined = [];
                salvaged = names;
                deferred = [];
                heap_reset = true;
                blackbox_records = List.length !decoded_precrash;
                blackbox_ns = 0;
              } ))

let recover ?verify crashed =
  let t0 = now_ns () in
  let e, detail =
    match crashed.c_cfg.durability with
    | Volatile -> (create crashed.c_cfg, Rv_volatile)
    | Nvm ->
        recover_nvm ?verify ?san:crashed.c_san crashed.c_cfg crashed.c_region
    | Logging lc ->
        let e, d = recover_log_at crashed.c_cfg lc in
        (* log-based durability rebuilds onto a fresh region, so there is
           no pre-crash ring to read back — the restart timeline starts
           at the markers *)
        install_ring_sink e;
        Obs.Blackbox.emit ~arg:Obs.Event.ph_ckpt_load Obs.Event.Recovery_phase;
        Obs.Blackbox.emit ~arg:Obs.Event.ph_replay_decode
          Obs.Event.Recovery_phase;
        Obs.Blackbox.emit ~arg:Obs.Event.ph_replay_apply
          Obs.Event.Recovery_phase;
        Obs.Blackbox.emit ~arg:Obs.Event.ph_replay Obs.Event.Recovery_phase;
        Obs.Blackbox.emit Obs.Event.Engine_ready;
        Obs.Blackbox.emit Obs.Event.Full_health;
        (e, d)
  in
  (e, { wall_ns = now_ns () - t0; detail })

(* exported surface of [recover_log_at]: scratch replays (tests, salvage
   tooling) bound the replay and skip log re-arming *)
let recover_log ?bound ?reopen ?sanitize cfg lc =
  recover_log_at ?bound ?reopen ?sanitize cfg lc

let save_image t path =
  check_open t;
  if t.cfg.durability <> Nvm then
    invalid_arg "Engine.save_image: only meaningful under NVM durability";
  Region.save_to_file t.region path

let open_image ?verify ?(sanitize = false) (cfg : config) path =
  let t0 = now_ns () in
  let region = Region.load_from_file cfg.region path in
  let san = if sanitize then Some (Nvm.Sanitizer.attach region) else None in
  let e, detail =
    recover_nvm ?verify ?san { cfg with durability = Nvm } region
  in
  (e, { wall_ns = now_ns () - t0; detail })

(* -- scrub -- *)

let scrub ?(deep = true) ?(online = false) t =
  check_open t;
  (* online mode heals before it judges: drain the restore map (every
     pending segment and structural rebuild), then verify what remains *)
  (match (online, t.restore) with
  | true, Some rs -> Restore.drain rs
  | _ -> ());
  let dmg = ref [] in
  let guard comp f =
    try f () with exn -> dmg := (comp, damage_reason exn) :: !dmg
  in
  guard "heap" (fun () -> ignore (A.heap_stats t.alloc));
  guard "catalog" (fun () -> Catalog.verify ~deep t.catalog);
  let last = last_cid t in
  List.iter
    (fun name ->
      (* deliberately not [table t name]: an offline scrub diagnoses, it
         must not trigger the restore-on-demand gate; tables with no
         registered generation are reported from the restore map below *)
      match Hashtbl.find_opt t.tables name with
      | None -> ()
      | Some tbl ->
          guard ("table:" ^ name) (fun () ->
              Table.verify ~deep ~last_cid:last tbl))
    (table_names t);
  (match t.restore with
  | None -> ()
  | Some rs ->
      List.iter
        (fun (name, segs) ->
          dmg :=
            ( "table:" ^ name,
              match segs with
              | [] -> "structural damage pending online rebuild"
              | _ ->
                  Printf.sprintf "segment(s) %s pending online restore"
                    (String.concat "," (List.map string_of_int segs)) )
            :: !dmg)
        (Restore.pending rs));
  List.iter
    (fun name -> dmg := ("table:" ^ name, "quarantined at recovery") :: !dmg)
    t.quarantined;
  List.rev !dmg

(* -- online restore (docs/PROTOCOLS.md §15) -- *)

let quarantined_segments t =
  match t.restore with Some rs -> Restore.pending rs | None -> []

let restore_step t =
  check_open t;
  match t.restore with Some rs -> Restore.drain_step rs | None -> false

let restore_drain t =
  check_open t;
  match t.restore with Some rs -> Restore.drain rs | None -> ()

(* -- flight recorder -- *)

type blackbox = {
  precrash : Obs.Event.t list;
  restart : Obs.Event.t list;
  truncated_lanes : int;
  recovery_begin_ns : int option;
  engine_ready_ns : int option;
  full_health_ns : int option;
}

let blackbox t =
  let restart = List.rev t.bb_restart in
  let find kind =
    List.find_map
      (fun (ev : Obs.Event.t) ->
        if ev.Obs.Event.kind = kind then Some ev.Obs.Event.t_ns else None)
      restart
  in
  {
    precrash = t.bb_precrash;
    restart;
    truncated_lanes = t.bb_truncated;
    recovery_begin_ns = find Obs.Event.Recovery_begin;
    engine_ready_ns = find Obs.Event.Engine_ready;
    full_health_ns = find Obs.Event.Full_health;
  }

let media_digest t =
  let exclude =
    match t.bb_ring with Some ring -> Pring.extents ring | None -> []
  in
  Region.media_digest ~exclude t.region

let inject_faults t rng n =
  check_open t;
  for _ = 1 to n do
    let f = Region.random_fault t.region rng ~lo:0 ~hi:(Region.size t.region) in
    let off =
      match f with
      | Region.Flip_bit { off; _ }
      | Region.Torn_word { off }
      | Region.Stuck_byte { off }
      | Region.Corrupt_range { off; _ } ->
          off
    in
    (* recorded before the damage lands, so the black box of a crash
       that follows names the faults that caused it *)
    Obs.Blackbox.emit ~arg:off Obs.Event.Fault_injected;
    Region.inject_fault t.region rng f
  done

(* -- introspection -- *)

let data_bytes t =
  check_open t;
  Hashtbl.fold (fun _ table acc -> acc + Table.nvm_bytes table) t.tables 0

let log_bytes t =
  match t.log with Some log -> Wal.Log.bytes_written log | None -> 0

let log_flushes t =
  match t.log with Some log -> Wal.Log.flushes log | None -> 0

let active_txns t = Mvcc.active_count t.mgr

let mvcc t = t.mgr

let sync_metrics t =
  let s = Region.stats t.region in
  Obs.set_gauge (Obs.gauge "nvm.loads") s.Region.loads;
  Obs.set_gauge (Obs.gauge "nvm.stores") s.Region.stores;
  Obs.set_gauge (Obs.gauge "nvm.writebacks") s.Region.writebacks;
  Obs.set_gauge (Obs.gauge "nvm.fences") s.Region.fences;
  Obs.set_gauge (Obs.gauge "nvm.elided_fences") s.Region.elided_fences;
  Obs.set_gauge (Obs.gauge "nvm.sim_ns") s.Region.sim_ns;
  Obs.set_gauge (Obs.gauge "wal.bytes") (log_bytes t);
  Obs.set_gauge (Obs.gauge "wal.flushes") (log_flushes t);
  Obs.set_gauge (Obs.gauge "engine.last_cid") (Int64.to_int (last_cid t));
  Obs.set_gauge (Obs.gauge "engine.active_txns") (active_txns t);
  Obs.set_gauge g_writers t.writers;
  (* writer-pipeline derived gauge: average write txns per group commit *)
  let sealed = Obs.counter_value (Obs.counter "commit.epoch.sealed") in
  let etxns = Obs.counter_value (Obs.counter "commit.epoch.txns") in
  Obs.set_gauge
    (Obs.gauge "commit.epoch.avg_txns_x100")
    (if sealed = 0 then 0 else 100 * etxns / sealed);
  if not t.closed then
    Obs.set_gauge (Obs.gauge "engine.data_bytes") (data_bytes t)
