module Region = Nvm.Region
module A = Nvm_alloc.Allocator
module Table = Storage.Table
module Catalog = Storage.Catalog
module Schema = Storage.Schema
module Value = Storage.Value
module Cid = Storage.Cid
module Mvcc = Txn.Mvcc

let log_src = Logs.Src.create "hyrise.engine" ~doc:"Hyrise-NV engine events"

module L = (val Logs.src_log log_src : Logs.LOG)

type durability = Volatile | Logging of Wal.Log.config | Nvm

type config = { region : Nvm.Region.config; durability : durability }

let default_config ?(size = 64 * 1024 * 1024) durability =
  { region = Region.config_with_size size; durability }

type txn = Mvcc.txn

exception Closed

(* Engine control block (root slot 0):
     +0 last committed CID   (the durable commit point)
     +8 catalog handle *)
let root_slot = 0

type t = {
  cfg : config;
  region : Region.t;
  alloc : A.t;
  ctrl : int;
  catalog : Catalog.t;
  mutable log : Wal.Log.t option;
  mutable epoch : int;
  tables : (string, Table.t) Hashtbl.t;
  ids : (string, int) Hashtbl.t; (* table name -> log table id *)
  mutable names_by_id : string list; (* reversed creation order *)
  mutable mgr : Mvcc.manager;
  publish_mode : Mvcc.publish_mode;
  san : Nvm.Sanitizer.t option;
  mutable closed : bool;
  mutable replaying : bool; (* suppress logging during replay *)
}

let now_ns () = Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1e9))

let check_open t = if t.closed then raise Closed

let config t = t.cfg
let region t = t.region
let allocator t = t.alloc
let last_cid t = Mvcc.last_cid t.mgr

let table_id t name =
  match Hashtbl.find_opt t.ids name with
  | Some id -> id
  | None -> invalid_arg ("Engine: unknown table " ^ name)

let persist_commit_hook region ctrl cid =
  (* the strongest claim in the system: at the instant the commit CID
     becomes durable, nothing anywhere may still be in flight — the
     batched publish protocol fenced it all *)
  Region.annotate_commit_point region ~label:"mvcc.commit" [];
  Region.set_i64 region ctrl cid;
  Region.persist region ctrl 8

let observer t event =
  if not t.replaying then
    match (t.log, event) with
    | None, _ -> ()
    | Some log, Mvcc.Ev_insert { tid; table; values } ->
        Wal.Log.append log
          (Wal.Log.Insert { tid; table_id = table_id t (Table.name table); values })
    | Some log, Mvcc.Ev_commit { tid; cid; invalidated } ->
        let invalidated =
          List.map
            (fun (table, row) -> (table_id t (Table.name table), row))
            invalidated
        in
        Wal.Log.append log (Wal.Log.Commit { tid; cid; invalidated })
    | Some log, Mvcc.Ev_abort { tid } ->
        Wal.Log.append log (Wal.Log.Abort { tid })

let make_manager t ~last_cid =
  Mvcc.create_manager ~observer:(observer t) ~publish_mode:t.publish_mode
    ~persist_commit:(persist_commit_hook t.region t.ctrl)
    ~last_cid ()

(* Build the volatile shell around an already-formatted region. *)
let assemble ?(publish_mode = `Batched) ?san cfg region alloc ctrl catalog
    ~log ~epoch =
  let t =
    {
      cfg;
      region;
      alloc;
      ctrl;
      catalog;
      log;
      epoch;
      tables = Hashtbl.create 16;
      ids = Hashtbl.create 16;
      names_by_id = [];
      mgr =
        (* placeholder, replaced right below once [t] exists for the
           observer closure *)
        Mvcc.create_manager ~persist_commit:ignore ~last_cid:Cid.zero ();
      publish_mode;
      san;
      closed = false;
      replaying = false;
    }
  in
  t.mgr <- make_manager t ~last_cid:(Region.get_i64 region ctrl);
  t

let create_raw ?publish_mode ?(sanitize = false) (cfg : config) ~with_log =
  let region = Region.create cfg.region in
  Region.set_persist_enabled region (cfg.durability = Nvm);
  let san = if sanitize then Some (Nvm.Sanitizer.attach region) else None in
  let alloc = A.format region in
  let catalog = Catalog.create alloc in
  let ctrl = A.alloc alloc 16 in
  Region.set_i64 region ctrl Cid.zero;
  Region.set_int region (ctrl + 8) (Catalog.handle catalog);
  Region.persist region ctrl 16;
  A.activate alloc ctrl;
  A.set_root alloc root_slot ctrl;
  let log =
    match cfg.durability with
    | Logging lc when with_log -> Some (Wal.Log.create lc ~epoch:0)
    | Logging _ | Volatile | Nvm -> None
  in
  assemble ?publish_mode ?san cfg region alloc ctrl catalog ~log ~epoch:0

let create ?publish_mode ?sanitize cfg =
  create_raw ?publish_mode ?sanitize cfg ~with_log:true

let sanitizer t = t.san

(* -- DDL -- *)

let register_table t name table =
  Hashtbl.replace t.tables name table;
  if not (Hashtbl.mem t.ids name) then begin
    Hashtbl.replace t.ids name (List.length t.names_by_id);
    t.names_by_id <- name :: t.names_by_id
  end

let create_table t ~name schema =
  check_open t;
  if Hashtbl.mem t.tables name then
    invalid_arg ("Engine.create_table: duplicate table " ^ name);
  let table = Table.create t.alloc ~name schema in
  Catalog.add_table t.catalog ~name ~ctrl:(Table.handle table);
  register_table t name table;
  if not t.replaying then
    match t.log with
    | Some log -> Wal.Log.append log (Wal.Log.Create_table { name; schema })
    | None -> ()

let table t name =
  check_open t;
  match Hashtbl.find_opt t.tables name with
  | Some table -> table
  | None -> raise Not_found

let table_names t =
  check_open t;
  List.rev t.names_by_id

(* -- transactions -- *)

let begin_txn t =
  check_open t;
  Mvcc.begin_txn t.mgr

let commit t txn =
  check_open t;
  Mvcc.commit t.mgr txn

let abort t txn =
  check_open t;
  Mvcc.abort t.mgr txn

let with_txn t f =
  let txn = begin_txn t in
  match f txn with
  | result ->
      ignore (commit t txn);
      result
  | exception e ->
      if Mvcc.is_active txn then abort t txn;
      raise e

(* -- DML / queries -- *)

let insert t txn name values =
  check_open t;
  Mvcc.insert t.mgr txn (table t name) values

let update t txn name row values =
  check_open t;
  Mvcc.update t.mgr txn (table t name) row values

let delete t txn name row =
  check_open t;
  Mvcc.delete t.mgr txn (table t name) row

let get_row t txn name row =
  check_open t;
  let table = table t name in
  if row < 0 || row >= Table.row_count table then None
  else if Mvcc.row_visible txn table row then Some (Table.get_row table row)
  else None

let scan t txn name f =
  check_open t;
  let table = table t name in
  for row = 0 to Table.row_count table - 1 do
    if Mvcc.row_visible txn table row then f row (Table.get_row table row)
  done

let select t txn name ~where =
  let acc = ref [] in
  scan t txn name (fun row values -> if where values then acc := (row, values) :: !acc);
  List.rev !acc

let lookup t txn name ~col value =
  check_open t;
  let table = table t name in
  let ci = Schema.find_column (Table.schema table) col in
  List.filter_map
    (fun row ->
      if Mvcc.row_visible txn table row then Some (row, Table.get_row table row)
      else None)
    (Table.rows_with_value table ci value)

let count t txn name =
  let n = ref 0 in
  scan t txn name (fun _ _ -> incr n);
  !n

let sum_int t txn name ~col =
  check_open t;
  let table = table t name in
  let ci = Schema.find_column (Table.schema table) col in
  let acc = ref 0 in
  for row = 0 to Table.row_count table - 1 do
    if Mvcc.row_visible txn table row then
      match Table.get table row ci with
      | Value.Int v -> acc := !acc + v
      | v ->
          invalid_arg
            (Printf.sprintf "Engine.sum_int: %s.%s holds %s" name col
               (Value.to_string v))
  done;
  !acc

let to_filters fs =
  List.map (fun (col, pred) -> { Query.Scan.col; pred }) fs

let where ?impl t txn name fs =
  check_open t;
  Query.Scan.select ?impl txn (table t name) ~filters:(to_filters fs)

let count_where ?impl t txn name fs =
  check_open t;
  Query.Scan.count ?impl txn (table t name) ~filters:(to_filters fs)

let aggregate ?impl t txn name ?group_by ~specs ?(filters = []) () =
  check_open t;
  Query.Aggregate.run ?impl txn (table t name) ?group_by ~specs
    ~filters:(to_filters filters) ()

(* -- merge / checkpoint -- *)

let merge_one t name =
  if Mvcc.active_count t.mgr > 0 then
    invalid_arg "Engine.merge: active transactions";
  let old_table = table t name in
  let merged, stats, finalize =
    Storage.Merge.run t.alloc old_table ~merge_cid:(Mvcc.last_cid t.mgr)
  in
  (* single durable word: the merge publication *)
  Catalog.swap_table t.catalog ~name ~new_ctrl:(Table.handle merged);
  finalize ();
  Hashtbl.replace t.tables name merged;
  L.info (fun m ->
      m "merged %s: %d rows -> %d, %d -> %d bytes" name
        stats.Storage.Merge.rows_in stats.Storage.Merge.rows_out
        stats.Storage.Merge.bytes_before stats.Storage.Merge.bytes_after);
  stats

let merge t name =
  check_open t;
  match t.cfg.durability with
  | Logging _ ->
      invalid_arg
        "Engine.merge: use Engine.checkpoint under log-based durability \
         (a lone merge would invalidate logged row references)"
  | Volatile | Nvm -> merge_one t name

let dump_tables t =
  List.map
    (fun name ->
      let table = table t name in
      let rows = Table.main_rows table in
      let columns =
        Array.init
          (Schema.arity (Table.schema table))
          (fun ci ->
            {
              Wal.Checkpoint.dict =
                Array.init
                  (Table.main_dictionary_size table ci)
                  (Table.main_dict_value table ci);
              avec = Array.init rows (Table.main_vid table ci);
            })
      in
      { Wal.Checkpoint.name; schema = Table.schema table; rows; columns })
    (table_names t)

let checkpoint t =
  Obs.Span.with_ ~name:"checkpoint" @@ fun () ->
  check_open t;
  if Mvcc.active_count t.mgr > 0 then
    invalid_arg "Engine.checkpoint: active transactions";
  let stats = List.map (merge_one t) (table_names t) in
  (match (t.cfg.durability, t.log) with
  | Logging lc, Some log ->
      let epoch = t.epoch + 1 in
      let on_step = Option.map Nvm.Sanitizer.note_external t.san in
      ignore
        (Wal.Checkpoint.write ?on_step ~dir:lc.Wal.Log.dir
           { Wal.Checkpoint.cid = Mvcc.last_cid t.mgr; epoch; tables = dump_tables t });
      Wal.Log.close log;
      t.log <- Some (Wal.Log.create lc ~epoch);
      t.epoch <- epoch
  | _ -> ());
  stats

let vacuum t =
  check_open t;
  if Mvcc.active_count t.mgr > 0 then
    invalid_arg "Engine.vacuum: active transactions";
  let live = Hashtbl.create 4096 in
  Hashtbl.replace live t.ctrl ();
  List.iter (fun b -> Hashtbl.replace live b ()) (Catalog.owned_blocks t.catalog);
  Hashtbl.iter
    (fun _ table ->
      List.iter (fun b -> Hashtbl.replace live b ()) (Table.owned_blocks table))
    t.tables;
  let blocks, bytes = A.sweep t.alloc ~live:(Hashtbl.mem live) in
  if blocks > 0 then
    L.info (fun m -> m "vacuum reclaimed %d blocks (%d bytes)" blocks bytes);
  (blocks, bytes)

(* -- crash and recovery -- *)

type crashed = {
  c_cfg : config;
  c_region : Region.t;
  c_san : Nvm.Sanitizer.t option;
}

let crash t mode =
  check_open t;
  (match t.log with Some log -> Wal.Log.crash log | None -> ());
  Region.crash t.region mode;
  t.closed <- true;
  { c_cfg = t.cfg; c_region = t.region; c_san = t.san }

type recovery_detail =
  | Rv_volatile
  | Rv_nvm of {
      heap_open_ns : int;
      attach_ns : int;
      rollback_ns : int;
      heap_blocks : int;
      rolled_back_rows : int;
      tables : int;
    }
  | Rv_log of {
      checkpoint_load_ns : int;
      replay_ns : int;
      checkpoint_rows : int;
      checkpoint_bytes : int;
      log_records : int;
      log_bytes : int;
      committed_txns : int;
    }

type recovery_stats = { wall_ns : int; detail : recovery_detail }

let recover_nvm ?san cfg region =
  Obs.Span.with_ ~name:"recover.nvm" @@ fun () ->
  let t0 = now_ns () in
  let alloc =
    Obs.Span.with_ ~name:"heap_scan" @@ fun () ->
    let alloc = A.open_existing region in
    (match A.last_recovery alloc with
    | Some r -> Obs.Span.attr "blocks" r.A.scanned_blocks
    | None -> ());
    alloc
  in
  let t1 = now_ns () in
  (* a traced (sanitizer) restart stays single-domain: PROTOCOLS.md §10 *)
  let force_serial = Region.traced region in
  let e, last =
    Obs.Span.with_ ~name:"attach" @@ fun () ->
    let ctrl = A.get_root alloc root_slot in
    let last = Region.get_i64 region ctrl in
    let catalog = Catalog.attach alloc (Region.get_int region (ctrl + 8)) in
    let e = assemble ?san cfg region alloc ctrl catalog ~log:None ~epoch:0 in
    (* attaching a table is pure reads into a fresh volatile shell, and
       tables are independent — fan out, then register in catalog order *)
    let attached =
      Par.map_array ~force_serial
        (fun (name, tctrl) -> (name, Table.attach alloc tctrl))
        (Array.of_list (Catalog.tables catalog))
    in
    Array.iter (fun (name, table) -> register_table e name table) attached;
    Obs.Span.attr "tables" (Hashtbl.length e.tables);
    (e, last)
  in
  let t2 = now_ns () in
  let rolled = ref 0 in
  Obs.Span.with_ ~name:"rollback" (fun () ->
      (* analyze on the pool (the O(delta) read scan), apply serially
         (the writes), in creation order for a deterministic persist
         sequence *)
      let tbls =
        Array.of_list (List.map (Hashtbl.find e.tables) (table_names e))
      in
      let plans =
        Par.map_array ~force_serial
          (fun table -> Table.rollback_plan table ~last_cid:last)
          tbls
      in
      Array.iteri
        (fun i plan -> rolled := !rolled + Table.rollback_apply tbls.(i) plan)
        plans;
      (* recovery hands back a fully durable database: a crash immediately
         after restart must change nothing *)
      Region.annotate_commit_point region ~label:"engine.recover" [];
      Obs.Span.attr "rows" !rolled);
  let t3 = now_ns () in
  let heap_blocks =
    match A.last_recovery alloc with
    | Some r -> r.A.scanned_blocks
    | None -> 0
  in
  L.info (fun m ->
      m "NVM recovery: heap %dus (%d blocks), attach %dus, rollback %dus (%d rows)"
        ((t1 - t0) / 1000) heap_blocks ((t2 - t1) / 1000) ((t3 - t2) / 1000)
        !rolled);
  ( e,
    Rv_nvm
      {
        heap_open_ns = t1 - t0;
        attach_ns = t2 - t1;
        rollback_ns = t3 - t2;
        heap_blocks;
        rolled_back_rows = !rolled;
        tables = Hashtbl.length e.tables;
      } )

let recover_log cfg lc =
  Obs.Span.with_ ~name:"recover.log" @@ fun () ->
  (* the region lost everything: rebuild from checkpoint + log *)
  let e =
    Obs.Span.with_ ~name:"format" (fun () -> create_raw cfg ~with_log:false)
  in
  e.replaying <- true;
  let t0 = now_ns () in
  let ckpt_rows = ref 0 and ckpt_bytes = ref 0 in
  let base_cid, epoch =
    Obs.Span.with_ ~name:"checkpoint_load" @@ fun () ->
    let ckpt = Wal.Checkpoint.read ~dir:lc.Wal.Log.dir in
    let r =
      match ckpt with
      | None -> (Cid.zero, 0)
      | Some c ->
          ckpt_bytes :=
            (try
               (Unix.stat (Wal.Checkpoint.path ~dir:lc.Wal.Log.dir)).Unix.st_size
             with Unix.Unix_error _ -> 0);
          List.iter
            (fun td ->
              (* columnar bulk load: rebuild the main partition directly *)
              let columns =
                Array.map
                  (fun cd -> (cd.Wal.Checkpoint.dict, cd.Wal.Checkpoint.avec))
                  td.Wal.Checkpoint.columns
              in
              let main_end = Array.make td.Wal.Checkpoint.rows Cid.infinity in
              let table =
                Table.replace_ctrl_for_merge e.alloc ~name:td.Wal.Checkpoint.name
                  ~schema:td.Wal.Checkpoint.schema ~columns ~main_end
              in
              Catalog.add_table e.catalog ~name:td.Wal.Checkpoint.name
                ~ctrl:(Table.handle table);
              register_table e td.Wal.Checkpoint.name table;
              ckpt_rows := !ckpt_rows + td.Wal.Checkpoint.rows)
            c.Wal.Checkpoint.tables;
          (c.Wal.Checkpoint.cid, c.Wal.Checkpoint.epoch)
    in
    Obs.Span.attr "rows" !ckpt_rows;
    r
  in
  let t1 = now_ns () in
  (* replay: reproduce physical row numbering by applying every logged
     insert, then stamping at commit records *)
  let staged : (int, (Table.t * int) list) Hashtbl.t = Hashtbl.create 64 in
  let last = ref base_cid in
  let committed = ref 0 in
  let table_by_id id =
    match List.nth_opt (List.rev e.names_by_id) id with
    | Some name -> table e name
    | None -> failwith "Engine.recover: log references unknown table"
  in
  let records, log_bytes =
    Obs.Span.with_ ~name:"replay" @@ fun () ->
    let records, log_bytes =
      Wal.Log.read_all ~dir:lc.Wal.Log.dir ~expected_epoch:epoch
    in
    List.iter
      (fun r ->
        match r with
        | Wal.Log.Create_table { name; schema } -> create_table e ~name schema
        | Wal.Log.Insert { tid; table_id; values } ->
            let table = table_by_id table_id in
            let row = Table.append_row table values in
            let prev = Option.value ~default:[] (Hashtbl.find_opt staged tid) in
            Hashtbl.replace staged tid ((table, row) :: prev)
        | Wal.Log.Commit { tid; cid; invalidated } ->
            List.iter
              (fun (table, row) -> Table.set_begin_cid table row cid)
              (Option.value ~default:[] (Hashtbl.find_opt staged tid));
            Hashtbl.remove staged tid;
            List.iter
              (fun (table_id, row) ->
                Table.set_end_cid (table_by_id table_id) row cid)
              invalidated;
            if Int64.compare cid !last > 0 then last := cid;
            incr committed
        | Wal.Log.Abort { tid } -> Hashtbl.remove staged tid)
      records;
    Obs.Span.attr "records" (List.length records);
    Obs.Span.attr "committed_txns" !committed;
    (records, log_bytes)
  in
  let t2 = now_ns () in
  e.replaying <- false;
  Obs.Span.with_ ~name:"reopen_log" (fun () ->
      persist_commit_hook e.region e.ctrl !last;
      e.mgr <- make_manager e ~last_cid:!last;
      e.log <- Some (Wal.Log.open_append lc ~epoch ~truncate_at:log_bytes);
      e.epoch <- epoch);
  L.info (fun m ->
      m "log recovery: %d checkpoint rows, %d records replayed (%d bytes), %d txns"
        !ckpt_rows (List.length records) log_bytes !committed);
  ( e,
    Rv_log
      {
        checkpoint_load_ns = t1 - t0;
        replay_ns = t2 - t1;
        checkpoint_rows = !ckpt_rows;
        checkpoint_bytes = !ckpt_bytes;
        log_records = List.length records;
        log_bytes;
        committed_txns = !committed;
      } )

let recover crashed =
  let t0 = now_ns () in
  let e, detail =
    match crashed.c_cfg.durability with
    | Volatile -> (create crashed.c_cfg, Rv_volatile)
    | Nvm -> recover_nvm ?san:crashed.c_san crashed.c_cfg crashed.c_region
    | Logging lc -> recover_log crashed.c_cfg lc
  in
  (e, { wall_ns = now_ns () - t0; detail })

let save_image t path =
  check_open t;
  if t.cfg.durability <> Nvm then
    invalid_arg "Engine.save_image: only meaningful under NVM durability";
  Region.save_to_file t.region path

let open_image ?(sanitize = false) (cfg : config) path =
  let t0 = now_ns () in
  let region = Region.load_from_file cfg.region path in
  let san = if sanitize then Some (Nvm.Sanitizer.attach region) else None in
  let e, detail = recover_nvm ?san { cfg with durability = Nvm } region in
  (e, { wall_ns = now_ns () - t0; detail })

(* -- introspection -- *)

let data_bytes t =
  check_open t;
  Hashtbl.fold (fun _ table acc -> acc + Table.nvm_bytes table) t.tables 0

let log_bytes t =
  match t.log with Some log -> Wal.Log.bytes_written log | None -> 0

let log_flushes t =
  match t.log with Some log -> Wal.Log.flushes log | None -> 0

let active_txns t = Mvcc.active_count t.mgr

let mvcc t = t.mgr

let sync_metrics t =
  let s = Region.stats t.region in
  Obs.set_gauge (Obs.gauge "nvm.loads") s.Region.loads;
  Obs.set_gauge (Obs.gauge "nvm.stores") s.Region.stores;
  Obs.set_gauge (Obs.gauge "nvm.writebacks") s.Region.writebacks;
  Obs.set_gauge (Obs.gauge "nvm.fences") s.Region.fences;
  Obs.set_gauge (Obs.gauge "nvm.elided_fences") s.Region.elided_fences;
  Obs.set_gauge (Obs.gauge "nvm.sim_ns") s.Region.sim_ns;
  Obs.set_gauge (Obs.gauge "wal.bytes") (log_bytes t);
  Obs.set_gauge (Obs.gauge "wal.flushes") (log_flushes t);
  Obs.set_gauge (Obs.gauge "engine.last_cid") (Int64.to_int (last_cid t));
  Obs.set_gauge (Obs.gauge "engine.active_txns") (active_txns t);
  if not t.closed then
    Obs.set_gauge (Obs.gauge "engine.data_bytes") (data_bytes t)
