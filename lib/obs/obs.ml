module H = Util.Histogram

type metric = Counter of int ref | Gauge of int ref | Histogram of H.t

type registry = { metrics : (string, metric) Hashtbl.t }

let create_registry () = { metrics = Hashtbl.create 64 }

let default = create_registry ()

let enabled = ref false
let set_enabled b = enabled := b
let is_enabled () = !enabled

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let find_or_add reg name mk =
  match Hashtbl.find_opt reg.metrics name with
  | Some m -> m
  | None ->
      let m = mk () in
      Hashtbl.replace reg.metrics name m;
      m

let wrong_kind name got want =
  invalid_arg
    (Printf.sprintf "Obs.%s: %s is already registered as a %s" want name
       (kind_name got))

type counter = int ref

let counter ?(registry = default) name =
  match find_or_add registry name (fun () -> Counter (ref 0)) with
  | Counter r -> r
  | m -> wrong_kind name m "counter"

let incr (c : counter) = Stdlib.incr c

let add (c : counter) n =
  (* counters are documented monotonic; a negative delta would corrupt
     the tally silently (gauges are the kind for values that go down) *)
  if n < 0 then
    invalid_arg (Printf.sprintf "Obs.add: negative delta %d on a counter" n);
  c := !c + n

let counter_value (c : counter) = !c

type gauge = int ref

let gauge ?(registry = default) name =
  match find_or_add registry name (fun () -> Gauge (ref 0)) with
  | Gauge r -> r
  | m -> wrong_kind name m "gauge"

let set_gauge (g : gauge) v = g := v
let gauge_value (g : gauge) = !g

let histogram ?(registry = default) name =
  match find_or_add registry name (fun () -> Histogram (H.create ())) with
  | Histogram h -> h
  | m -> wrong_kind name m "histogram"

let reset ?(registry = default) () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter r | Gauge r -> r := 0
      | Histogram h -> H.clear h)
    registry.metrics

let sorted_names reg =
  List.sort compare (Hashtbl.fold (fun name _ acc -> name :: acc) reg.metrics [])

(* -- spans -- *)

module Span = struct
  type frame = {
    path : string;
    start_ns : int;
    (* time spent inside descendants' instrumentation (histogram creation
       on first use is ~tens of us); subtracted so a parent's wall stays
       comparable to the sum of its children *)
    mutable skew_ns : int;
    mutable attrs : (string * int) list;
  }

  let stack : frame list ref = ref []
  let trace : out_channel option ref = ref None

  let set_trace_channel oc = trace := oc

  let set_trace_file file =
    let oc = open_out file in
    at_exit (fun () -> try close_out oc with Sys_error _ -> ());
    trace := Some oc;
    enabled := true

  let now_ns () = Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1e9))

  let current_path () =
    match !stack with [] -> None | f :: _ -> Some f.path

  let attr key v =
    match !stack with [] -> () | f :: _ -> f.attrs <- (key, v) :: f.attrs

  let emit_trace ~depth f dt =
    match !trace with
    | None -> ()
    | Some oc ->
        Printf.fprintf oc "SPAN %s wall_ns=%d depth=%d" f.path dt depth;
        List.iter
          (fun (k, v) -> Printf.fprintf oc " %s=%d" k v)
          (List.rev f.attrs);
        output_char oc '\n';
        flush oc

  let with_ ?(registry = default) ~name f =
    if not !enabled then f ()
    else begin
      let path =
        match !stack with [] -> name | p :: _ -> p.path ^ "." ^ name
      in
      let frame = { path; start_ns = now_ns (); skew_ns = 0; attrs = [] } in
      stack := frame :: !stack;
      Fun.protect
        ~finally:(fun () ->
          (match !stack with
          | top :: rest when top == frame -> stack := rest
          | _ -> () (* unbalanced: a nested span leaked an exception *));
          let fin_start = now_ns () in
          let dt = fin_start - frame.start_ns - frame.skew_ns in
          let dt = if dt < 0 then 0 else dt in
          H.record (histogram ~registry ("span." ^ path)) dt;
          List.iter
            (fun (k, v) -> add (counter ~registry ("span." ^ path ^ "." ^ k)) v)
            frame.attrs;
          emit_trace ~depth:(List.length !stack) frame dt;
          let spent = now_ns () - fin_start in
          List.iter (fun p -> p.skew_ns <- p.skew_ns + spent) !stack)
        f
    end
end

(* -- export -- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  let add_float buf f =
    match Float.classify_float f with
    | FP_nan | FP_infinite ->
        (* a non-finite value means the source metric is broken; printing
           0 would mask that, and bare nan/inf is not JSON — emit null *)
        Buffer.add_string buf "null"
    | _ ->
        (* %.17g round-trips but is noisy; 6 significant digits suffice
           for bench numbers, and always parses as a JSON number
           ("1e+06" is valid JSON; "1." is not produced by %g) *)
        Buffer.add_string buf (Printf.sprintf "%.6g" f)

  let rec to_buf ~indent ~level buf t =
    let nl pad =
      if indent then begin
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (2 * pad) ' ')
      end
    in
    match t with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> add_float buf f
    | Str s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            nl (level + 1);
            to_buf ~indent ~level:(level + 1) buf item)
          items;
        nl level;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            nl (level + 1);
            escape buf k;
            Buffer.add_char buf ':';
            if indent then Buffer.add_char buf ' ';
            to_buf ~indent ~level:(level + 1) buf v)
          fields;
        nl level;
        Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 256 in
    to_buf ~indent:false ~level:0 buf t;
    Buffer.contents buf

  let pretty t =
    let buf = Buffer.create 1024 in
    to_buf ~indent:true ~level:0 buf t;
    Buffer.contents buf
end

(* -- flight-recorder events -- *)

module Event = struct
  type kind =
    | Txn_begin
    | Txn_commit
    | Txn_abort
    | Txn_conflict
    | Ckpt_begin
    | Ckpt_end
    | Merge_begin
    | Merge_end
    | Fault_injected
    | Crc_failure
    | Quarantine
    | Salvage
    | Recovery_begin
    | Recovery_phase
    | Table_attach
    | Engine_ready
    | Full_health
    | Epoch_seal
    | Group_commit
    | Segment_quarantine
    | Segment_salvaged

  type t = { seq : int; lane : int; kind : kind; arg : int; t_ns : int }

  let kind_code = function
    | Txn_begin -> 0
    | Txn_commit -> 1
    | Txn_abort -> 2
    | Txn_conflict -> 3
    | Ckpt_begin -> 4
    | Ckpt_end -> 5
    | Merge_begin -> 6
    | Merge_end -> 7
    | Fault_injected -> 8
    | Crc_failure -> 9
    | Quarantine -> 10
    | Salvage -> 11
    | Recovery_begin -> 12
    | Recovery_phase -> 13
    | Table_attach -> 14
    | Engine_ready -> 15
    | Full_health -> 16
    | Epoch_seal -> 17
    | Group_commit -> 18
    | Segment_quarantine -> 19
    | Segment_salvaged -> 20

  let kind_of_code = function
    | 0 -> Some Txn_begin
    | 1 -> Some Txn_commit
    | 2 -> Some Txn_abort
    | 3 -> Some Txn_conflict
    | 4 -> Some Ckpt_begin
    | 5 -> Some Ckpt_end
    | 6 -> Some Merge_begin
    | 7 -> Some Merge_end
    | 8 -> Some Fault_injected
    | 9 -> Some Crc_failure
    | 10 -> Some Quarantine
    | 11 -> Some Salvage
    | 12 -> Some Recovery_begin
    | 13 -> Some Recovery_phase
    | 14 -> Some Table_attach
    | 15 -> Some Engine_ready
    | 16 -> Some Full_health
    | 17 -> Some Epoch_seal
    | 18 -> Some Group_commit
    | 19 -> Some Segment_quarantine
    | 20 -> Some Segment_salvaged
    | _ -> None

  let kind_name = function
    | Txn_begin -> "txn-begin"
    | Txn_commit -> "txn-commit"
    | Txn_abort -> "txn-abort"
    | Txn_conflict -> "txn-conflict"
    | Ckpt_begin -> "ckpt-begin"
    | Ckpt_end -> "ckpt-end"
    | Merge_begin -> "merge-begin"
    | Merge_end -> "merge-end"
    | Fault_injected -> "fault-injected"
    | Crc_failure -> "crc-failure"
    | Quarantine -> "quarantine"
    | Salvage -> "salvage"
    | Recovery_begin -> "recovery-begin"
    | Recovery_phase -> "recovery-phase"
    | Table_attach -> "table-attach"
    | Engine_ready -> "engine-ready"
    | Full_health -> "full-health"
    | Epoch_seal -> "epoch-seal"
    | Group_commit -> "group-commit"
    | Segment_quarantine -> "segment-quarantine"
    | Segment_salvaged -> "segment-salvaged"

  (* Recovery_phase arg codes: which phase just completed *)
  let ph_heap_scan = 0
  let ph_attach = 1
  let ph_blackbox = 2
  let ph_verify = 3
  let ph_salvage = 4
  let ph_rollback = 5
  let ph_replay = 6
  let ph_ckpt_load = 7
  let ph_replay_decode = 8
  let ph_replay_apply = 9

  let phase_name = function
    | 0 -> "heap_scan"
    | 1 -> "attach"
    | 2 -> "blackbox"
    | 3 -> "verify"
    | 4 -> "salvage"
    | 5 -> "rollback"
    | 6 -> "replay"
    | 7 -> "ckpt_load"
    | 8 -> "replay_decode"
    | 9 -> "replay_apply"
    | n -> Printf.sprintf "phase-%d" n

  let arg_mask = 0xFFFF_FFFF_FFFF (* 48 bits *)

  (* on-ring encoding: the seq lives in its own sealed word (Pring owns
     it); the remaining two raw words are
       w1 = kind:8 | lane:8 | arg:48        w2 = t_ns *)
  let pack ev =
    let hdr =
      Int64.logor
        (Int64.shift_left (Int64.of_int (kind_code ev.kind)) 56)
        (Int64.logor
           (Int64.shift_left (Int64.of_int (ev.lane land 0xFF)) 48)
           (Int64.of_int (ev.arg land arg_mask)))
    in
    (hdr, Int64.of_int ev.t_ns)

  let unpack ~seq w1 w2 =
    let code = Int64.to_int (Int64.shift_right_logical w1 56) land 0xFF in
    match kind_of_code code with
    | None -> None
    | Some kind ->
        let lane = Int64.to_int (Int64.shift_right_logical w1 48) land 0xFF in
        let arg = Int64.to_int w1 land arg_mask in
        Some { seq; lane; kind; arg; t_ns = Int64.to_int w2 }

  let to_json ev =
    Json.Obj
      [
        ("seq", Json.Int ev.seq);
        ("lane", Json.Int ev.lane);
        ("kind", Json.Str (kind_name ev.kind));
        ("arg", Json.Int ev.arg);
        ("t_ns", Json.Int ev.t_ns);
      ]
end

(* -- flight-recorder front end -- *)

module Blackbox = struct
  type pending = { p_kind : Event.kind; p_arg : int; p_lane : int; p_ns : int }

  (* worker lanes must never store into the NVM region (PROTOCOLS.md
     §10), so off-caller emissions buffer here and the caller delivers
     them at the next pool join — same discipline as the par.* metrics *)
  let queues : pending list ref array =
    Array.init Util.Domain_slot.max_slots (fun _ -> ref [])

  let sink : (Event.t -> unit) option ref = ref None
  let seq = ref 0

  (* caller-side tallies; like counters, always live *)
  let c_events = counter "blackbox.events"
  let c_dropped = counter "blackbox.dropped"

  let set_sink s = sink := s

  let seq_floor n = if n > !seq then seq := n

  let deliver ~lane ~t_ns kind arg =
    match !sink with
    | None -> incr c_dropped
    | Some f ->
        Stdlib.incr seq;
        incr c_events;
        f { Event.seq = !seq; lane; kind; arg; t_ns }

  let replay (ev : Event.t) = deliver ~lane:ev.lane ~t_ns:ev.t_ns ev.kind ev.arg

  let drain () =
    Array.iter
      (fun q ->
        match !q with
        | [] -> ()
        | l ->
            q := [];
            List.iter
              (fun p -> deliver ~lane:p.p_lane ~t_ns:p.p_ns p.p_kind p.p_arg)
              (List.rev l))
      queues

  let emit ?(arg = 0) kind =
    let slot = Util.Domain_slot.get () in
    let t_ns = Span.now_ns () in
    if slot = 0 then deliver ~lane:0 ~t_ns kind arg
    else
      let q = queues.(slot) in
      q := { p_kind = kind; p_arg = arg; p_lane = slot; p_ns = t_ns } :: !q
end

let hist_json h =
  if H.count h = 0 then Json.Obj [ ("count", Json.Int 0) ]
  else
    Json.Obj
      [
        ("count", Json.Int (H.count h));
        ("total", Json.Int (H.total h));
        ("mean", Json.Float (H.mean h));
        ("min", Json.Int (H.min_value h));
        ("p50", Json.Int (H.quantile h 0.5));
        ("p95", Json.Int (H.quantile h 0.95));
        ("p99", Json.Int (H.quantile h 0.99));
        ("max", Json.Int (H.max_value h));
      ]

let to_json ?(registry = default) () =
  Json.Obj
    (List.map
       (fun name ->
         match Hashtbl.find registry.metrics name with
         | Counter r | Gauge r -> (name, Json.Int !r)
         | Histogram h -> (name, hist_json h))
       (sorted_names registry))

let render ?(registry = default) () =
  let t =
    Util.Tabular.create ~title:"metrics registry"
      [
        ("metric", Util.Tabular.Left);
        ("type", Util.Tabular.Left);
        ("value", Util.Tabular.Left);
      ]
  in
  List.iter
    (fun name ->
      let m = Hashtbl.find registry.metrics name in
      let value =
        match m with
        | Counter r | Gauge r -> string_of_int !r
        | Histogram h -> Format.asprintf "%a" H.pp_summary h
      in
      Util.Tabular.add_row t [ name; kind_name m; value ])
    (sorted_names registry);
  Util.Tabular.render t
