(** Engine-wide observability: a zero-dependency metrics registry plus a
    span-based tracer.

    The registry holds three metric kinds, addressed by dotted names
    (docs/OBSERVABILITY.md documents the naming scheme):

    - {b counters} — monotonically increasing event tallies
      ([txn.commit], [span.recover.nvm.rollback.rows]);
    - {b gauges} — last-written values mirrored from elsewhere
      ([nvm.writebacks] mirrors the region's own tally sites);
    - {b histograms} — {!Util.Histogram} distributions, mostly span wall
      times in nanoseconds ([span.recover.nvm.heap_scan]).

    Counters and gauges are plain [int ref]s behind the handle — recording
    costs one increment, so instrumentation stays on in production paths.
    Spans are gated by {!set_enabled} (default {b off}): a disabled
    [Span.with_] costs a single boolean test and a closure call, nothing
    is recorded. The benchmark harness verifies the <2% end-to-end delta
    (the [obs_overhead_pct] key of BENCH_throughput.json). *)

type registry

val default : registry
(** The process-wide registry. All handle constructors below default to
    it; tests can build private registries to stay isolated. *)

val create_registry : unit -> registry

val set_enabled : bool -> unit
(** Arm/disarm the span tracer (global, default off). Counters and gauges
    are unaffected — they are always live. *)

val is_enabled : unit -> bool

val reset : ?registry:registry -> unit -> unit
(** Zero every counter and gauge and clear every histogram. Names stay
    registered; existing handles remain valid. *)

(** {1 Handles} *)

type counter

val counter : ?registry:registry -> string -> counter
(** Find-or-create. Raises [Invalid_argument] if the name is already
    registered as a different metric kind. *)

val incr : counter -> unit

val add : counter -> int -> unit
(** Add a non-negative delta. Counters are monotonic; raises
    [Invalid_argument] on a negative delta (use a gauge for values that
    can go down). *)

val counter_value : counter -> int

type gauge

val gauge : ?registry:registry -> string -> gauge
val set_gauge : gauge -> int -> unit
val gauge_value : gauge -> int

val histogram : ?registry:registry -> string -> Util.Histogram.t
(** Find-or-create; the handle is the histogram itself. *)

(** {1 Spans}

    A span measures one wall-clock interval. Spans nest: the full dotted
    path of a span is its parent's path plus its own name, so
    [with_ ~name:"recover.nvm" (fun () -> with_ ~name:"heap_scan" f)]
    records into the histogram [span.recover.nvm.heap_scan]. Attached
    counters ([attr]) land under the span's path
    ([span.recover.nvm.heap_scan.blocks]).

    When a trace sink is set, every completed span additionally emits one
    greppable line:

    {v SPAN recover.nvm.heap_scan wall_ns=184302 depth=1 blocks=211 v}

    Spans record on exceptions too (the recovery code can die mid-phase
    under crash-point fuzzing; the trace must still show the phase). *)

module Span : sig
  val with_ : ?registry:registry -> name:string -> (unit -> 'a) -> 'a
  (** Run the thunk inside a span. No-op wrapper when disabled. *)

  val attr : string -> int -> unit
  (** Attach a named integer to the innermost open span: added to the
      counter [span.<path>.<key>] and printed on the trace line. Silently
      ignored with no open span (or when disabled). *)

  val set_trace_file : string -> unit
  (** Open (truncate) a trace sink; also enables the tracer. The channel
      is flushed per line and closed at exit. *)

  val set_trace_channel : out_channel option -> unit

  val current_path : unit -> string option
  (** Dotted path of the innermost open span, if any (test helper). *)
end

(** {1 Export} *)

module Json : sig
  (** Minimal JSON document builder (no external dependency). Strings are
      escaped; finite floats print as decimals, [nan]/[inf] as [null]
      (a non-finite value means the source metric is broken — masking it
      as 0 would hide that). *)

  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact, valid JSON. *)

  val pretty : t -> string
  (** Two-space indented. *)
end

(** {1 Flight recorder}

    The event vocabulary and front end of the crash-persistent flight
    recorder (docs/OBSERVABILITY.md, "Flight recorder"). [Obs] owns the
    schema and the emission path; the NVM ring itself is
    [Pstruct.Pring], and [Core.Engine] wires the two together by
    installing a sink that appends each delivered event to the ring. *)

module Event : sig
  type kind =
    | Txn_begin  (** arg = transaction id *)
    | Txn_commit  (** arg = commit CID (0 for read-only commits) *)
    | Txn_abort  (** arg = transaction id *)
    | Txn_conflict  (** write-write conflict detected *)
    | Ckpt_begin
    | Ckpt_end
    | Merge_begin  (** arg = catalog index of the merged table *)
    | Merge_end
    | Fault_injected  (** arg = region offset of the injected fault *)
    | Crc_failure  (** arg = sealed-word/CRC failures since last report *)
    | Quarantine  (** arg = catalog index of the quarantined table *)
    | Salvage  (** arg = catalog index of the salvaged table *)
    | Recovery_begin
    | Recovery_phase  (** arg = phase code ({!ph_heap_scan} …) *)
    | Table_attach  (** arg = catalog index; lane = attaching slot *)
    | Engine_ready  (** first-query point: the engine is open *)
    | Full_health  (** verify/salvage complete, nothing quarantined *)
    | Epoch_seal
        (** writer pipeline: lane staging done, serial seal of the epoch
            begins; arg = transactions in the batch *)
    | Group_commit
        (** writer pipeline: the epoch's single durable last-CID persist
            completed; arg = write transactions covered by it *)
    | Segment_quarantine
        (** arg = catalog index * 65536 + segment index of a
            quarantined row segment *)
    | Segment_salvaged
        (** arg = catalog index * 65536 + segment index of a segment
            restored online *)

  type t = { seq : int; lane : int; kind : kind; arg : int; t_ns : int }
  (** [seq] is a process-global monotonic sequence number (merge key
      across lanes); [lane] the domain slot that emitted; [t_ns] the
      wall clock of emission. *)

  val kind_code : kind -> int
  val kind_of_code : int -> kind option

  val kind_name : kind -> string
  (** Stable dashed names ([txn-commit], [engine-ready], …) used by the
      [blackbox] subcommand's JSON. *)

  (** [Recovery_phase] arg codes (the phase that just completed): *)

  val ph_heap_scan : int
  val ph_attach : int
  val ph_blackbox : int
  val ph_verify : int
  val ph_salvage : int
  val ph_rollback : int
  val ph_replay : int

  val ph_ckpt_load : int
  (** checkpoint image decoded + tables rebuilt (log-mode restart) *)

  val ph_replay_decode : int
  (** all WAL epochs' frames decoded to records (log-mode restart) *)

  val ph_replay_apply : int
  (** staged partition replay + serial commit-order pass done *)

  val phase_name : int -> string

  val pack : t -> int64 * int64
  (** On-ring encoding, excluding [seq] (the ring seals it separately):
      [w1 = kind:8 | lane:8 | arg:48], [w2 = t_ns]. *)

  val unpack : seq:int -> int64 -> int64 -> t option
  (** Inverse of {!pack}; [None] on an unknown kind code (a record from
      a future schema — skipped, not fatal). *)

  val to_json : t -> Json.t
end

module Blackbox : sig
  (** Emission front end. Always on, gated like counters: an emission
      with no sink installed costs one test and bumps
      [blackbox.dropped]. The engine installs a sink that appends to its
      NVM ring; during early recovery it installs a volatile buffering
      sink and replays the buffer into the ring once attached.

      Thread discipline (PROTOCOLS.md §10): only the caller lane (slot
      0) delivers to the sink — and hence stores into NVM. Worker-lane
      emissions buffer into per-slot volatile queues, drained
      caller-side by the pool at every join (like the [par.*] metrics),
      so worker events land in the ring with join-order sequence
      numbers. *)

  val set_sink : (Event.t -> unit) option -> unit

  val emit : ?arg:int -> Event.kind -> unit
  (** Record one event: caller lane delivers immediately (assigning the
      next sequence number), worker lanes buffer. [arg] defaults 0 and
      is truncated to 48 bits on the ring. *)

  val drain : unit -> unit
  (** Deliver all buffered worker-lane events, slots ascending. Caller
      lane only, outside any pool job ([Par] calls this at each join). *)

  val seq_floor : int -> unit
  (** Raise the global sequence counter to at least [n] — recovery calls
      this with the max decoded pre-crash seq so post-restart events
      sort after the pre-crash timeline. *)

  val replay : Event.t -> unit
  (** Re-deliver a buffered event through the current sink, preserving
      its lane/kind/arg/timestamp but assigning a fresh sequence number
      (recovery uses this to flush markers buffered before the ring was
      attached). *)
end

val to_json : ?registry:registry -> unit -> Json.t
(** Snapshot the registry as one JSON object: counters and gauges as
    numbers, histograms as [{count, total, mean, min, p50, p95, p99,
    max}] (empty histograms as [{count: 0}]). Keys are sorted. *)

val render : ?registry:registry -> unit -> string
(** The registry as a human-readable table (the [stats] subcommand and
    the REPL [.stats] command print this). *)
