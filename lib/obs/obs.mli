(** Engine-wide observability: a zero-dependency metrics registry plus a
    span-based tracer.

    The registry holds three metric kinds, addressed by dotted names
    (docs/OBSERVABILITY.md documents the naming scheme):

    - {b counters} — monotonically increasing event tallies
      ([txn.commit], [span.recover.nvm.rollback.rows]);
    - {b gauges} — last-written values mirrored from elsewhere
      ([nvm.writebacks] mirrors the region's own tally sites);
    - {b histograms} — {!Util.Histogram} distributions, mostly span wall
      times in nanoseconds ([span.recover.nvm.heap_scan]).

    Counters and gauges are plain [int ref]s behind the handle — recording
    costs one increment, so instrumentation stays on in production paths.
    Spans are gated by {!set_enabled} (default {b off}): a disabled
    [Span.with_] costs a single boolean test and a closure call, nothing
    is recorded. The benchmark harness verifies the <2% end-to-end delta
    (the [obs_overhead_pct] key of BENCH_throughput.json). *)

type registry

val default : registry
(** The process-wide registry. All handle constructors below default to
    it; tests can build private registries to stay isolated. *)

val create_registry : unit -> registry

val set_enabled : bool -> unit
(** Arm/disarm the span tracer (global, default off). Counters and gauges
    are unaffected — they are always live. *)

val is_enabled : unit -> bool

val reset : ?registry:registry -> unit -> unit
(** Zero every counter and gauge and clear every histogram. Names stay
    registered; existing handles remain valid. *)

(** {1 Handles} *)

type counter

val counter : ?registry:registry -> string -> counter
(** Find-or-create. Raises [Invalid_argument] if the name is already
    registered as a different metric kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

type gauge

val gauge : ?registry:registry -> string -> gauge
val set_gauge : gauge -> int -> unit
val gauge_value : gauge -> int

val histogram : ?registry:registry -> string -> Util.Histogram.t
(** Find-or-create; the handle is the histogram itself. *)

(** {1 Spans}

    A span measures one wall-clock interval. Spans nest: the full dotted
    path of a span is its parent's path plus its own name, so
    [with_ ~name:"recover.nvm" (fun () -> with_ ~name:"heap_scan" f)]
    records into the histogram [span.recover.nvm.heap_scan]. Attached
    counters ([attr]) land under the span's path
    ([span.recover.nvm.heap_scan.blocks]).

    When a trace sink is set, every completed span additionally emits one
    greppable line:

    {v SPAN recover.nvm.heap_scan wall_ns=184302 depth=1 blocks=211 v}

    Spans record on exceptions too (the recovery code can die mid-phase
    under crash-point fuzzing; the trace must still show the phase). *)

module Span : sig
  val with_ : ?registry:registry -> name:string -> (unit -> 'a) -> 'a
  (** Run the thunk inside a span. No-op wrapper when disabled. *)

  val attr : string -> int -> unit
  (** Attach a named integer to the innermost open span: added to the
      counter [span.<path>.<key>] and printed on the trace line. Silently
      ignored with no open span (or when disabled). *)

  val set_trace_file : string -> unit
  (** Open (truncate) a trace sink; also enables the tracer. The channel
      is flushed per line and closed at exit. *)

  val set_trace_channel : out_channel option -> unit

  val current_path : unit -> string option
  (** Dotted path of the innermost open span, if any (test helper). *)
end

(** {1 Export} *)

module Json : sig
  (** Minimal JSON document builder (no external dependency). Strings are
      escaped; floats print as finite decimals ([nan]/[inf] become 0). *)

  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact, valid JSON. *)

  val pretty : t -> string
  (** Two-space indented. *)
end

val to_json : ?registry:registry -> unit -> Json.t
(** Snapshot the registry as one JSON object: counters and gauges as
    numbers, histograms as [{count, total, mean, min, p50, p95, p99,
    max}] (empty histograms as [{count: 0}]). Keys are sorted. *)

val render : ?registry:registry -> unit -> string
(** The registry as a human-readable table (the [stats] subcommand and
    the REPL [.stats] command print this). *)
