module Value = Storage.Value
module Schema = Storage.Schema

(* CRC32 lives in Util.Crc so the NVM media checksums share the table. *)
let crc32 = Util.Crc.string

(* -- writers -- *)

let w_u8 buf v = Buffer.add_uint8 buf (v land 0xff)
let w_u32 buf v = Buffer.add_int32_le buf (Int32.of_int v)
let w_i64 buf v = Buffer.add_int64_le buf v

let w_string buf s =
  w_u32 buf (String.length s);
  Buffer.add_string buf s

let w_value buf v =
  w_u8 buf (Value.ty_tag (Value.ty_of v));
  match v with
  | Value.Int i -> w_i64 buf (Int64.of_int i)
  | Value.Float f -> w_i64 buf (Int64.bits_of_float f)
  | Value.Text s -> w_string buf s

let w_schema buf (schema : Schema.t) =
  w_u32 buf (Schema.arity schema);
  Array.iter
    (fun (c : Schema.column) ->
      w_string buf c.Schema.name;
      w_u8 buf (Value.ty_tag c.Schema.ty);
      w_u8 buf (if c.Schema.indexed then 1 else 0))
    schema

let frame buf payload =
  w_u32 buf (String.length payload);
  Buffer.add_int32_le buf (crc32 payload);
  Buffer.add_string buf payload

(* -- readers -- *)

type reader = { data : string; mutable pos : int }

let reader_of_string data = { data; pos = 0 }
let pos r = r.pos
let at_end r = r.pos >= String.length r.data

exception Short

let need r n = if r.pos + n > String.length r.data then raise Short

let r_u8 r =
  need r 1;
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_u32 r =
  need r 4;
  let v = Int32.to_int (String.get_int32_le r.data r.pos) land 0xFFFFFFFF in
  r.pos <- r.pos + 4;
  v

let r_i64 r =
  need r 8;
  let v = String.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  v

let r_string r =
  let n = r_u32 r in
  need r n;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let r_value r =
  let ty = Value.ty_of_tag (r_u8 r) in
  match ty with
  | Value.Int_t -> Value.Int (Int64.to_int (r_i64 r))
  | Value.Float_t -> Value.Float (Int64.float_of_bits (r_i64 r))
  | Value.Text_t -> Value.Text (r_string r)

let r_schema r =
  let n = r_u32 r in
  Array.init n (fun _ ->
      let name = r_string r in
      let ty = Value.ty_of_tag (r_u8 r) in
      let indexed = r_u8 r = 1 in
      Schema.column ~indexed name ty)

type frame_result = Frame of string | Torn | Bad_crc

let r_frame r =
  let saved = r.pos in
  match
    let n = r_u32 r in
    let crc = Int32.of_int (r_u32 r) in
    need r n;
    let payload = String.sub r.data r.pos n in
    r.pos <- r.pos + n;
    if crc32 payload = crc then Frame payload
    else begin
      r.pos <- saved;
      Bad_crc
    end
  with
  | result -> result
  | exception Short ->
      r.pos <- saved;
      Torn
