module Value = Storage.Value
module Schema = Storage.Schema

(* CRC32 lives in Util.Crc so the NVM media checksums share the table. *)
let crc32 = Util.Crc.string

(* -- writers -- *)

let w_u8 buf v = Buffer.add_uint8 buf (v land 0xff)
let w_u32 buf v = Buffer.add_int32_le buf (Int32.of_int v)
let w_i64 buf v = Buffer.add_int64_le buf v

let w_string buf s =
  w_u32 buf (String.length s);
  Buffer.add_string buf s

let w_value buf v =
  w_u8 buf (Value.ty_tag (Value.ty_of v));
  match v with
  | Value.Int i -> w_i64 buf (Int64.of_int i)
  | Value.Float f -> w_i64 buf (Int64.bits_of_float f)
  | Value.Text s -> w_string buf s

let w_schema buf (schema : Schema.t) =
  w_u32 buf (Schema.arity schema);
  Array.iter
    (fun (c : Schema.column) ->
      w_string buf c.Schema.name;
      w_u8 buf (Value.ty_tag c.Schema.ty);
      w_u8 buf (if c.Schema.indexed then 1 else 0))
    schema

let frame buf payload =
  w_u32 buf (String.length payload);
  Buffer.add_int32_le buf (crc32 payload);
  Buffer.add_string buf payload

(* -- readers -- *)

type reader = { data : string; mutable pos : int }

let reader_of_string data = { data; pos = 0 }
let pos r = r.pos
let at_end r = r.pos >= String.length r.data

exception Short

let need r n = if r.pos + n > String.length r.data then raise Short

let r_u8 r =
  need r 1;
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_u32 r =
  need r 4;
  let v = Int32.to_int (String.get_int32_le r.data r.pos) land 0xFFFFFFFF in
  r.pos <- r.pos + 4;
  v

let r_i64 r =
  need r 8;
  let v = String.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  v

let r_string r =
  let n = r_u32 r in
  need r n;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let r_value r =
  let ty = Value.ty_of_tag (r_u8 r) in
  match ty with
  | Value.Int_t -> Value.Int (Int64.to_int (r_i64 r))
  | Value.Float_t -> Value.Float (Int64.float_of_bits (r_i64 r))
  | Value.Text_t -> Value.Text (r_string r)

let r_schema r =
  let n = r_u32 r in
  Array.init n (fun _ ->
      let name = r_string r in
      let ty = Value.ty_of_tag (r_u8 r) in
      let indexed = r_u8 r = 1 in
      Schema.column ~indexed name ty)

type frame_result = Frame of string | Torn | Bad_crc

let r_frame r =
  let saved = r.pos in
  match
    let n = r_u32 r in
    let crc = Int32.of_int (r_u32 r) in
    need r n;
    let payload = String.sub r.data r.pos n in
    r.pos <- r.pos + n;
    if crc32 payload = crc then Frame payload
    else begin
      r.pos <- saved;
      Bad_crc
    end
  with
  | result -> result
  | exception Short ->
      r.pos <- saved;
      Torn

(* -- command-log operations (adaptive logging, PROTOCOLS.md §14) --

   A command record captures a transaction's writes as operations over
   logical names (log table ids, an indexed key column) instead of row
   images; replay re-executes them deterministically. Cell edits are
   absolute [Set]s or integer deltas, so the op stream is closed under
   the workload specs PR 8 introduced. *)

type cell_op = Set of Value.t | Add_int of int

type cmd_op =
  | Cmd_insert of { table_id : int; values : Value.t array }
  | Cmd_update of {
      table_id : int;
      key_col : int;
      key : Value.t;
      sets : (int * cell_op) array;
    }
  | Cmd_delete of { table_id : int; key_col : int; key : Value.t }

let w_cell_op buf = function
  | Set v ->
      w_u8 buf 0;
      w_value buf v
  | Add_int d ->
      w_u8 buf 1;
      w_i64 buf (Int64.of_int d)

let r_cell_op r =
  match r_u8 r with
  | 0 -> Set (r_value r)
  | 1 -> Add_int (Int64.to_int (r_i64 r))
  | k -> failwith (Printf.sprintf "Wal.Codec: unknown cell op %d" k)

let w_cmd_op buf = function
  | Cmd_insert { table_id; values } ->
      w_u8 buf 0;
      w_u32 buf table_id;
      w_u32 buf (Array.length values);
      Array.iter (w_value buf) values
  | Cmd_update { table_id; key_col; key; sets } ->
      w_u8 buf 1;
      w_u32 buf table_id;
      w_u32 buf key_col;
      w_value buf key;
      w_u32 buf (Array.length sets);
      Array.iter
        (fun (col, op) ->
          w_u32 buf col;
          w_cell_op buf op)
        sets
  | Cmd_delete { table_id; key_col; key } ->
      w_u8 buf 2;
      w_u32 buf table_id;
      w_u32 buf key_col;
      w_value buf key

let r_cmd_op r =
  match r_u8 r with
  | 0 ->
      let table_id = r_u32 r in
      let n = r_u32 r in
      let values = Array.init n (fun _ -> r_value r) in
      Cmd_insert { table_id; values }
  | 1 ->
      let table_id = r_u32 r in
      let key_col = r_u32 r in
      let key = r_value r in
      let n = r_u32 r in
      let sets =
        Array.init n (fun _ ->
            let col = r_u32 r in
            let op = r_cell_op r in
            (col, op))
      in
      Cmd_update { table_id; key_col; key; sets }
  | 2 ->
      let table_id = r_u32 r in
      let key_col = r_u32 r in
      let key = r_value r in
      Cmd_delete { table_id; key_col; key }
  | k -> failwith (Printf.sprintf "Wal.Codec: unknown command op %d" k)

(* encoded sizes without materializing a buffer — the adaptive policy's
   commit-time estimator prices both record shapes from these *)

let value_size = function
  | Value.Int _ | Value.Float _ -> 9
  | Value.Text s -> 5 + String.length s

let cell_op_size = function Set v -> 1 + value_size v | Add_int _ -> 9

let cmd_op_size = function
  | Cmd_insert { values; _ } ->
      9 + Array.fold_left (fun a v -> a + value_size v) 0 values
  | Cmd_update { key; sets; _ } ->
      13 + value_size key
      + Array.fold_left (fun a (_, op) -> a + 4 + cell_op_size op) 0 sets
  | Cmd_delete { key; _ } -> 9 + value_size key

let skip r n =
  need r n;
  r.pos <- r.pos + n
