(** Binary (de)serialization for log and checkpoint files.

    Little-endian, length-prefixed. Every framed record carries a CRC32 of
    its payload so replay can distinguish a torn tail write from
    corruption. *)

val crc32 : string -> int32

(** {1 Writing} *)

val w_u8 : Buffer.t -> int -> unit
val w_u32 : Buffer.t -> int -> unit
val w_i64 : Buffer.t -> int64 -> unit
val w_string : Buffer.t -> string -> unit
val w_value : Buffer.t -> Storage.Value.t -> unit
val w_schema : Buffer.t -> Storage.Schema.t -> unit

val frame : Buffer.t -> string -> unit
(** [frame buf payload] appends [len][crc][payload]. *)

(** {1 Reading} *)

type reader

val reader_of_string : string -> reader
val pos : reader -> int
val at_end : reader -> bool

val r_u8 : reader -> int
val r_u32 : reader -> int
val r_i64 : reader -> int64
val r_string : reader -> string
val r_value : reader -> Storage.Value.t
val r_schema : reader -> Storage.Schema.t

type frame_result =
  | Frame of string  (** a complete frame whose CRC verified *)
  | Torn  (** the data ran out mid-frame (a torn tail — expected on crash) *)
  | Bad_crc  (** a complete frame whose CRC did not match (media damage) *)

val r_frame : reader -> frame_result
(** Next framed payload. [Torn] and [Bad_crc] leave the reader position
    on the bad frame
    (replay treats both as end-of-log). *)
