(** Binary (de)serialization for log and checkpoint files.

    Little-endian, length-prefixed. Every framed record carries a CRC32 of
    its payload so replay can distinguish a torn tail write from
    corruption. *)

val crc32 : string -> int32

(** {1 Writing} *)

val w_u8 : Buffer.t -> int -> unit
val w_u32 : Buffer.t -> int -> unit
val w_i64 : Buffer.t -> int64 -> unit
val w_string : Buffer.t -> string -> unit
val w_value : Buffer.t -> Storage.Value.t -> unit
val w_schema : Buffer.t -> Storage.Schema.t -> unit

val frame : Buffer.t -> string -> unit
(** [frame buf payload] appends [len][crc][payload]. *)

(** {1 Reading} *)

type reader

val reader_of_string : string -> reader
val pos : reader -> int
val at_end : reader -> bool

val skip : reader -> int -> unit
(** Advance past [n] bytes (the checkpoint directory walk skips over
    column blobs it will decode out-of-line). *)

val r_u8 : reader -> int
val r_u32 : reader -> int
val r_i64 : reader -> int64
val r_string : reader -> string
val r_value : reader -> Storage.Value.t
val r_schema : reader -> Storage.Schema.t

type frame_result =
  | Frame of string  (** a complete frame whose CRC verified *)
  | Torn  (** the data ran out mid-frame (a torn tail — expected on crash) *)
  | Bad_crc  (** a complete frame whose CRC did not match (media damage) *)

val r_frame : reader -> frame_result
(** Next framed payload. [Torn] and [Bad_crc] leave the reader position
    on the bad frame
    (replay treats both as end-of-log). *)

(** {1 Command-log operations}

    The operation vocabulary of adaptive command logging (PROTOCOLS.md
    §14): a command record stores these instead of row images, and replay
    re-executes them. *)

type cell_op =
  | Set of Storage.Value.t  (** absolute assignment *)
  | Add_int of int  (** integer delta (blind increment) *)

type cmd_op =
  | Cmd_insert of { table_id : int; values : Storage.Value.t array }
  | Cmd_update of {
      table_id : int;
      key_col : int;  (** indexed column the key addresses *)
      key : Storage.Value.t;
      sets : (int * cell_op) array;  (** (column, edit) *)
    }
  | Cmd_delete of { table_id : int; key_col : int; key : Storage.Value.t }

val w_cell_op : Buffer.t -> cell_op -> unit
val r_cell_op : reader -> cell_op
val w_cmd_op : Buffer.t -> cmd_op -> unit
val r_cmd_op : reader -> cmd_op

val value_size : Storage.Value.t -> int
(** Encoded byte size of [w_value], without writing it. *)

val cmd_op_size : cmd_op -> int
(** Encoded byte size of [w_cmd_op], without writing it — the adaptive
    policy's commit-time estimator. *)
