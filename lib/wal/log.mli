(** Write-ahead value log with group commit — the recovery baseline the
    paper measures Hyrise-NV against.

    Every write operation of every transaction is logged in execution
    order (so replay reproduces physical row numbering exactly); commit
    and abort records decide which of them take effect. Records accumulate
    in a volatile buffer and reach the log device when
    [group_commit_size] commits have accumulated (or on [flush]) —
    committed-but-unflushed transactions are lost by a crash, the classic
    group-commit window.

    The log file starts with an epoch header; a checkpoint advances the
    epoch, so replay can tell a stale pre-checkpoint log from the one that
    continues the checkpoint. *)

type t

type config = {
  dir : string;  (** directory for [wal-<epoch>.log] and [checkpoint.bin] *)
  group_commit_size : int;  (** commits per fsync batch; 1 = every commit *)
  fsync : bool;  (** issue fdatasync on flush (off speeds up tests) *)
}

val default_config : dir:string -> config

type record =
  | Create_table of { name : string; schema : Storage.Schema.t }
  | Insert of { tid : int; table_id : int; values : Storage.Value.t array }
  | Commit of {
      tid : int;
      cid : Storage.Cid.t;
      invalidated : (int * int) list;  (** (table_id, row) *)
    }
  | Abort of { tid : int }
  | Command of { tid : int; ops : Codec.cmd_op array }
      (** Command-logged transaction (adaptive logging, PROTOCOLS.md
          §14): replay re-executes [ops] instead of replaying row images.
          Always followed by its [Commit] record (with an empty
          [invalidated] list — the re-execution recomputes it). *)

val create : config -> epoch:int -> t
(** Start a fresh (truncated) log for the given epoch. *)

val open_append : config -> epoch:int -> truncate_at:int -> t
(** Continue an existing log after replaying it: the file is truncated at
    [truncate_at] (the end of the last well-formed frame, discarding any
    torn tail) and further records append under the same epoch. *)

val append : t -> record -> unit
(** Buffer a record. [Commit] and [Create_table] records trigger the group
    commit policy; other records stay buffered until a flush they ride
    along with. *)

val flush : t -> unit
(** Force buffered records to the device (and fsync per config). *)

val begin_group : t -> unit
(** Open a writer-pipeline group-flush window: commit records buffer past
    the [group_commit_size] threshold until {!end_group} (DDL still
    flushes eagerly). Nests. *)

val end_group : t -> unit
(** Close the window and flush the accumulated epoch as one fsync
    batch. *)

val close : t -> unit
(** Flush and close. *)

val crash : t -> unit
(** Simulate power failure: discard the volatile buffer, close the fd.
    Whatever the OS was told to write stays (we fsync on every flush, so
    flushed = durable). *)

val bytes_written : t -> int
(** Bytes that reached the device so far. *)

val flushes : t -> int

val encoded_size : record -> int
(** Payload bytes the record encodes to, without materializing it — the
    adaptive policy prices a commit's value/command alternatives from
    this. (Frame overhead, 8 bytes, is the same for both shapes.) *)

val decode_record : string -> record
(** Decode one frame payload. Pure (no shared state): replay decodes
    payload chunks on the [Par] pool with this. Raises [Failure] on an
    unknown record kind. *)

val read_payloads : dir:string -> expected_epoch:int -> string array * int
(** Frame-boundary scan only: raw payloads of every well-formed frame up
    to the first torn or corrupt one, plus the byte count read, with the
    same degradation rules as {!read_all}. Feed the payloads to
    {!decode_record} (serially or chunked on the pool). *)

val read_all : dir:string -> expected_epoch:int -> record list * int
(** Parse one epoch's log for replay: all well-formed records up to the
    first torn or corrupt frame, plus the byte count read. A complete
    frame whose CRC fails (media damage rather than a torn tail) is
    counted in the [wal.bad_frames] metric; replay then degrades to the
    cleanly truncated prefix either way. Returns [[], 0] when the file is
    missing or belongs to a different epoch. *)

val log_path : dir:string -> epoch:int -> string

val epochs : dir:string -> int list
(** Epoch numbers of every retained log file, ascending. *)
