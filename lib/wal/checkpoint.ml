type column_dump = {
  dict : Storage.Value.t array; (* sorted distinct values *)
  avec : int array; (* one dictionary index per row *)
}

type table_dump = {
  name : string;
  schema : Storage.Schema.t;
  rows : int;
  columns : column_dump array;
}

type t = { cid : Storage.Cid.t; epoch : int; tables : table_dump list }

let magic = "HYRCKP03"

(* previous generation: identical layout except the column blobs are
   inlined with no length directory, so decoding is inherently serial *)
let magic_v2 = "HYRCKP02"

let path ~dir = Filename.concat dir "checkpoint.bin"
let bak_path ~dir = Filename.concat dir "checkpoint.bak"

let rejected = Obs.counter "wal.checkpoint_rejected"

let encode_column cd =
  let buf = Buffer.create 1024 in
  Codec.w_u32 buf (Array.length cd.dict);
  Array.iter (Codec.w_value buf) cd.dict;
  Array.iter (Codec.w_u32 buf) cd.avec;
  Buffer.contents buf

(* v3: each table header carries a directory of column-blob byte lengths,
   so a reader can slice the payload and decode columns on the [Par]
   pool (volatile string parsing, no shared state) *)
let encode t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Codec.w_i64 buf t.cid;
  Codec.w_i64 buf (Int64.of_int t.epoch);
  Codec.w_u32 buf (List.length t.tables);
  List.iter
    (fun td ->
      Codec.w_string buf td.name;
      Codec.w_schema buf td.schema;
      Codec.w_u32 buf td.rows;
      Codec.w_u32 buf (Array.length td.columns);
      let blobs = Array.map encode_column td.columns in
      Array.iter (fun b -> Codec.w_u32 buf (String.length b)) blobs;
      Array.iter (Buffer.add_string buf) blobs)
    t.tables;
  Buffer.contents buf

let encode_v2 t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic_v2;
  Codec.w_i64 buf t.cid;
  Codec.w_i64 buf (Int64.of_int t.epoch);
  Codec.w_u32 buf (List.length t.tables);
  List.iter
    (fun td ->
      Codec.w_string buf td.name;
      Codec.w_schema buf td.schema;
      Codec.w_u32 buf td.rows;
      Codec.w_u32 buf (Array.length td.columns);
      Array.iter (fun cd -> Buffer.add_string buf (encode_column cd)) td.columns)
    t.tables;
  Buffer.contents buf

let decode_column ~rows data off len =
  let r = Codec.reader_of_string (String.sub data off len) in
  let dict_len = Codec.r_u32 r in
  let dict = Array.init dict_len (fun _ -> Codec.r_value r) in
  let avec = Array.init rows (fun _ -> Codec.r_u32 r) in
  { dict; avec }

let decode_v3 data =
  let r = Codec.reader_of_string data in
  Codec.skip r (String.length magic);
  let cid = Codec.r_i64 r in
  let epoch = Int64.to_int (Codec.r_i64 r) in
  let n = Codec.r_u32 r in
  (* serial directory walk: table headers + (rows, offset, len) slice
     descriptors per column *)
  let headers =
    List.init n (fun _ ->
        let name = Codec.r_string r in
        let schema = Codec.r_schema r in
        let rows = Codec.r_u32 r in
        let n_cols = Codec.r_u32 r in
        let lens = Array.init n_cols (fun _ -> Codec.r_u32 r) in
        let descs =
          Array.map
            (fun len ->
              let off = Codec.pos r in
              Codec.skip r len;
              (rows, off, len))
            lens
        in
        (name, schema, rows, descs))
  in
  (* parallel leg: every column blob of every table is an independent
     decode task (pure volatile parsing — no Region, no registry) *)
  let descs =
    Array.concat (List.map (fun (_, _, _, d) -> d) headers)
  in
  let cols =
    Par.map_array (fun (rows, off, len) -> decode_column ~rows data off len) descs
  in
  let cursor = ref 0 in
  let tables =
    List.map
      (fun (name, schema, rows, d) ->
        let columns =
          Array.init (Array.length d) (fun i -> cols.(!cursor + i))
        in
        cursor := !cursor + Array.length d;
        { name; schema; rows; columns })
      headers
  in
  { cid; epoch; tables }

let decode_v2 data =
  let r = Codec.reader_of_string data in
  Codec.skip r (String.length magic_v2);
  let cid = Codec.r_i64 r in
  let epoch = Int64.to_int (Codec.r_i64 r) in
  let n = Codec.r_u32 r in
  let tables =
    List.init n (fun _ ->
        let name = Codec.r_string r in
        let schema = Codec.r_schema r in
        let rows = Codec.r_u32 r in
        let n_cols = Codec.r_u32 r in
        let columns =
          Array.init n_cols (fun _ ->
              let dict_len = Codec.r_u32 r in
              let dict = Array.init dict_len (fun _ -> Codec.r_value r) in
              let avec = Array.init rows (fun _ -> Codec.r_u32 r) in
              { dict; avec })
        in
        { name; schema; rows; columns })
  in
  { cid; epoch; tables }

let decode data =
  let has m =
    String.length data >= String.length m + 4
    && String.sub data 0 (String.length m) = m
  in
  match
    if has magic then Some (decode_v3 data)
    else if has magic_v2 then Some (decode_v2 data)
    else None
  with
  | t -> t
  | exception _ -> None

let write ?(on_step = fun _ -> ()) ~dir t =
  Obs.Span.with_ ~name:"checkpoint_write" @@ fun () ->
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let payload = encode t in
  on_step "checkpoint.encode";
  (* trailer CRC guards against torn writes despite the atomic rename *)
  let buf = Buffer.create (String.length payload + 4) in
  Buffer.add_string buf payload;
  Buffer.add_int32_le buf (Codec.crc32 payload);
  let final = Buffer.contents buf in
  let tmp = path ~dir ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc final);
  on_step "checkpoint.write_tmp";
  (* fsync the temp file before the rename makes it current *)
  let fd = Unix.openfile tmp [ Unix.O_RDONLY ] 0 in
  Unix.fsync fd;
  Unix.close fd;
  on_step "checkpoint.fsync_tmp";
  (* keep the previous generation as a fallback: a later media fault in
     the fresh file degrades to the .bak plus one extra epoch of log *)
  if Sys.file_exists (path ~dir) then Sys.rename (path ~dir) (bak_path ~dir);
  on_step "checkpoint.bak";
  Sys.rename tmp (path ~dir);
  on_step "checkpoint.rename";
  String.length final

let read_file p =
  if not (Sys.file_exists p) then None
  else begin
    let ic = open_in_bin p in
    let data =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let t =
      if String.length data < 4 then None
      else begin
        let payload = String.sub data 0 (String.length data - 4) in
        let crc = String.get_int32_le data (String.length data - 4) in
        if Codec.crc32 payload <> crc then None else decode payload
      end
    in
    (* the file exists but did not verify: that is damage, not absence *)
    if t = None then Obs.incr rejected;
    t
  end

let read ~dir =
  Obs.Span.with_ ~name:"checkpoint_read" @@ fun () -> read_file (path ~dir)

let read_bak ~dir =
  Obs.Span.with_ ~name:"checkpoint_read_bak" @@ fun () ->
  read_file (bak_path ~dir)
