(** Checkpoint files for the log-based recovery baseline.

    A checkpoint is a consistent {e columnar} dump of every table, taken
    while no transactions are active and immediately after a merge (so the
    physical row numbering of the dump equals the live numbering, which
    keeps subsequently logged row references valid). The format mirrors
    the main partition — sorted dictionary plus value-id vector per
    column — so loading is a bulk rebuild of the main, not a row-by-row
    re-insertion.

    Written to a temporary file and atomically renamed; a crash
    mid-checkpoint leaves the previous checkpoint intact, and a trailing
    CRC rejects torn files. *)

type column_dump = {
  dict : Storage.Value.t array;  (** sorted distinct values *)
  avec : int array;  (** one dictionary index per row *)
}

type table_dump = {
  name : string;
  schema : Storage.Schema.t;
  rows : int;
  columns : column_dump array;
}

type t = {
  cid : Storage.Cid.t;  (** commit horizon of the dump *)
  epoch : int;  (** the log epoch that continues this checkpoint *)
  tables : table_dump list;
}

val write : ?on_step:(string -> unit) -> dir:string -> t -> int
(** Durably write the checkpoint; returns its size in bytes. [on_step] is
    called after each protocol step ([checkpoint.encode],
    [checkpoint.write_tmp], [checkpoint.fsync_tmp], [checkpoint.rename]) —
    the sanitizer records these in its operation backtraces so file-side
    durability steps show up interleaved with NVM events. *)

val read : dir:string -> t option
(** The latest checkpoint, or [None] (missing or corrupt file). A file
    that exists but fails its trailer CRC or decode is counted in the
    [wal.checkpoint_rejected] metric. *)

val encode_v2 : t -> string
(** The previous on-disk payload generation (HYRCKP02, inline column
    blobs with no length directory), kept as a writer so tests can pin
    that {!read} still accepts pre-existing images. New checkpoints are
    always written in the current format (HYRCKP03), whose per-table
    column-length directory lets the reader slice the payload and decode
    columns on the [Par] pool. *)

val read_bak : dir:string -> t option
(** The previous checkpoint generation ([checkpoint.bak], kept by the
    rename in [write]) — the salvage fallback when the current file is
    rejected. *)

val path : dir:string -> string
val bak_path : dir:string -> string
