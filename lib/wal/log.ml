type config = { dir : string; group_commit_size : int; fsync : bool }

let default_config ~dir = { dir; group_commit_size = 8; fsync = true }

type record =
  | Create_table of { name : string; schema : Storage.Schema.t }
  | Insert of { tid : int; table_id : int; values : Storage.Value.t array }
  | Commit of {
      tid : int;
      cid : Storage.Cid.t;
      invalidated : (int * int) list;
    }
  | Abort of { tid : int }
  | Command of { tid : int; ops : Codec.cmd_op array }

type t = {
  config : config;
  fd : Unix.file_descr;
  buf : Buffer.t;
  mutable pending_commits : int;
  mutable group_depth : int; (* > 0: inside an epoch's group-flush window *)
  mutable bytes_written : int;
  mutable flushes : int;
  mutable closed : bool;
}

let log_path ~dir ~epoch = Filename.concat dir (Printf.sprintf "wal-%d.log" epoch)

(* every epoch's log is retained: together with checkpoint.bak they form
   the salvage ladder (a rejected checkpoint falls back to the previous
   one plus one more epoch of replay; with no checkpoint at all, replay
   runs from epoch 0 with a merge at each epoch boundary) *)
let epochs ~dir =
  if not (Sys.file_exists dir) then []
  else
    Array.to_list (Sys.readdir dir)
    |> List.filter_map (fun f ->
           Scanf.sscanf_opt f "wal-%d.log%!" (fun e -> e))
    |> List.sort compare

let bad_frames = Obs.counter "wal.bad_frames"

let magic = "HYRWAL01"

let encode_record r =
  let buf = Buffer.create 64 in
  (match r with
  | Create_table { name; schema } ->
      Codec.w_u8 buf 1;
      Codec.w_string buf name;
      Codec.w_schema buf schema
  | Insert { tid; table_id; values } ->
      Codec.w_u8 buf 2;
      Codec.w_i64 buf (Int64.of_int tid);
      Codec.w_u32 buf table_id;
      Codec.w_u32 buf (Array.length values);
      Array.iter (Codec.w_value buf) values
  | Commit { tid; cid; invalidated } ->
      Codec.w_u8 buf 3;
      Codec.w_i64 buf (Int64.of_int tid);
      Codec.w_i64 buf cid;
      Codec.w_u32 buf (List.length invalidated);
      List.iter
        (fun (table_id, row) ->
          Codec.w_u32 buf table_id;
          Codec.w_i64 buf (Int64.of_int row))
        invalidated
  | Abort { tid } ->
      Codec.w_u8 buf 4;
      Codec.w_i64 buf (Int64.of_int tid)
  | Command { tid; ops } ->
      Codec.w_u8 buf 5;
      Codec.w_i64 buf (Int64.of_int tid);
      Codec.w_u32 buf (Array.length ops);
      Array.iter (Codec.w_cmd_op buf) ops);
  Buffer.contents buf

(* payload bytes [encode_record] would produce, without materializing the
   buffer — the adaptive policy prices the value/command alternatives of
   a commit from this before choosing which to write *)
let encoded_size r =
  match r with
  | Create_table { name; schema } ->
      1 + 4 + String.length name + 4
      + Array.fold_left
          (fun a (c : Storage.Schema.column) ->
            a + 4 + String.length c.Storage.Schema.name + 2)
          0 schema
  | Insert { values; _ } ->
      17 + Array.fold_left (fun a v -> a + Codec.value_size v) 0 values
  | Commit { invalidated; _ } -> 21 + (12 * List.length invalidated)
  | Abort _ -> 9
  | Command { ops; _ } ->
      13 + Array.fold_left (fun a op -> a + Codec.cmd_op_size op) 0 ops

let decode_record payload =
  let r = Codec.reader_of_string payload in
  match Codec.r_u8 r with
  | 1 ->
      let name = Codec.r_string r in
      let schema = Codec.r_schema r in
      Create_table { name; schema }
  | 2 ->
      let tid = Int64.to_int (Codec.r_i64 r) in
      let table_id = Codec.r_u32 r in
      let n = Codec.r_u32 r in
      let values = Array.init n (fun _ -> Codec.r_value r) in
      Insert { tid; table_id; values }
  | 3 ->
      let tid = Int64.to_int (Codec.r_i64 r) in
      let cid = Codec.r_i64 r in
      let n = Codec.r_u32 r in
      let invalidated =
        List.init n (fun _ ->
            let table_id = Codec.r_u32 r in
            let row = Int64.to_int (Codec.r_i64 r) in
            (table_id, row))
      in
      Commit { tid; cid; invalidated }
  | 4 -> Abort { tid = Int64.to_int (Codec.r_i64 r) }
  | 5 ->
      let tid = Int64.to_int (Codec.r_i64 r) in
      let n = Codec.r_u32 r in
      let ops = Array.init n (fun _ -> Codec.r_cmd_op r) in
      Command { tid; ops }
  | k -> failwith (Printf.sprintf "Wal.Log: unknown record kind %d" k)

let create config ~epoch =
  if not (Sys.file_exists config.dir) then Unix.mkdir config.dir 0o755;
  let fd =
    Unix.openfile (log_path ~dir:config.dir ~epoch)
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
      0o644
  in
  let header = Buffer.create 16 in
  Buffer.add_string header magic;
  Codec.w_i64 header (Int64.of_int epoch);
  let h = Buffer.contents header in
  let n = Unix.write_substring fd h 0 (String.length h) in
  assert (n = String.length h);
  if config.fsync then Unix.fsync fd;
  {
    config;
    fd;
    buf = Buffer.create 4096;
    pending_commits = 0;
    group_depth = 0;
    bytes_written = String.length h;
    flushes = 0;
    closed = false;
  }

let open_append config ~epoch ~truncate_at =
  let path = log_path ~dir:config.dir ~epoch in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd truncate_at;
  ignore (Unix.lseek fd truncate_at Unix.SEEK_SET);
  {
    config;
    fd;
    buf = Buffer.create 4096;
    pending_commits = 0;
    group_depth = 0;
    bytes_written = truncate_at;
    flushes = 0;
    closed = false;
  }

let do_flush t =
  if Buffer.length t.buf > 0 then begin
    let s = Buffer.contents t.buf in
    Buffer.clear t.buf;
    let n = Unix.write_substring t.fd s 0 (String.length s) in
    assert (n = String.length s);
    if t.config.fsync then Unix.fsync t.fd;
    t.bytes_written <- t.bytes_written + String.length s;
    t.flushes <- t.flushes + 1;
    t.pending_commits <- 0
  end

let append t r =
  if t.closed then invalid_arg "Wal.Log.append: closed";
  Codec.frame t.buf (encode_record r);
  (match r with
  | Commit _ ->
      t.pending_commits <- t.pending_commits + 1;
      if t.pending_commits >= t.config.group_commit_size && t.group_depth = 0
      then do_flush t
  | Create_table _ ->
      (* DDL is flushed eagerly: table existence must not sit in the
         group-commit window *)
      do_flush t
  | Insert _ | Abort _ | Command _ -> ())

let flush t =
  if t.closed then invalid_arg "Wal.Log.flush: closed";
  do_flush t

(* Writer-pipeline group-flush window: while open, commit records buffer
   past the group-commit threshold; [end_group] closes the window and
   flushes the whole epoch as one frame batch (one fsync). DDL keeps its
   eager flush even inside the window — table existence must never sit
   in a loss window. *)
let begin_group t =
  if t.closed then invalid_arg "Wal.Log.begin_group: closed";
  t.group_depth <- t.group_depth + 1

let end_group t =
  if t.closed then invalid_arg "Wal.Log.end_group: closed";
  t.group_depth <- max 0 (t.group_depth - 1);
  if t.group_depth = 0 then do_flush t

let close t =
  if not t.closed then begin
    do_flush t;
    Unix.close t.fd;
    t.closed <- true
  end

let crash t =
  if not t.closed then begin
    Buffer.clear t.buf;
    Unix.close t.fd;
    t.closed <- true
  end

let bytes_written t = t.bytes_written
let flushes t = t.flushes

(* Frame-boundary scan only: collect raw payloads up to the first torn or
   corrupt frame. Decoding is separable from framing so replay can decode
   payload chunks on the [Par] pool ([decode_record] touches no shared
   state). *)
let read_payloads ~dir ~expected_epoch =
  let path = log_path ~dir ~epoch:expected_epoch in
  if not (Sys.file_exists path) then ([||], 0)
  else begin
    let ic = open_in_bin path in
    let data =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let hlen = String.length magic + 8 in
    if String.length data < hlen || String.sub data 0 (String.length magic) <> magic
    then ([||], 0)
    else begin
      let epoch =
        Int64.to_int (String.get_int64_le data (String.length magic))
      in
      if epoch <> expected_epoch then ([||], 0)
      else begin
        let rd = Codec.reader_of_string data in
        (* skip header *)
        for _ = 1 to hlen do
          ignore (Codec.r_u8 rd)
        done;
        let rec go acc =
          match Codec.r_frame rd with
          | Codec.Frame payload -> go (payload :: acc)
          | Codec.Torn ->
              (* expected crash artifact: the tail stops at a clean frame
                 boundary and replay simply ends there *)
              List.rev acc
          | Codec.Bad_crc ->
              (* a complete frame that fails its CRC is media damage, not
                 a torn tail — count it, then degrade identically (replay
                 up to the last intact frame) *)
              Obs.incr bad_frames;
              List.rev acc
        in
        let payloads = go [] in
        (Array.of_list payloads, Codec.pos rd)
      end
    end
  end

let read_all ~dir ~expected_epoch =
  let payloads, good = read_payloads ~dir ~expected_epoch in
  (Array.to_list (Array.map decode_record payloads), good)
