(* Self-checking metadata words.

   Every durable metadata word (allocator block headers, pstruct handles,
   catalog entries, table control words) is stored *sealed*: the low 48
   bits carry the value, the high 16 bits a truncated CRC32 of those 48
   bits. Sealing keeps the one property the whole persistence design
   rests on — a metadata update is still a single 8-byte aligned store,
   so publish protocols and the persist-order sanitizer are unchanged —
   while making a media fault in any metadata word detectable at read
   time instead of silently steering recovery off a cliff.

   The tag is XOR-folded with a nonzero constant so that seal 0 <> 0L:
   an all-zeroes word (the most common corruption pattern, and the state
   of never-written media) never verifies. *)

exception Corrupt of { what : string; off : int; raw : int64 }

let () =
  Printexc.register_printer (function
    | Corrupt { what; off; raw } ->
        Some (Printf.sprintf "Nvm.Seal.Corrupt(%s at %d, raw 0x%Lx)" what off raw)
    | _ -> None)

let max_value = (1 lsl 48) - 1
let tag_mask = 0xFFFF
let tag_fold = 0x5EA1

(* media.crc_failures counts every sealed-word or payload checksum that
   failed verification, across the whole stack. *)
let crc_failures = Obs.counter "media.crc_failures"

let[@inline] tag_of v = (Int32.to_int (Util.Crc.int48 v) lxor tag_fold) land tag_mask

let seal v =
  if v < 0 || v > max_value then invalid_arg "Nvm.Seal.seal: value out of 48-bit range";
  Int64.logor (Int64.of_int v) (Int64.shift_left (Int64.of_int (tag_of v)) 48)

let[@inline] split w =
  let v = Int64.to_int (Int64.logand w 0xFFFF_FFFF_FFFFL) in
  let tag = Int64.to_int (Int64.shift_right_logical w 48) land tag_mask in
  (v, tag)

let unseal w =
  let v, tag = split w in
  if tag = tag_of v then Some v else None

let unseal_exn ~what ~off w =
  let v, tag = split w in
  if tag = tag_of v then v
  else begin
    Obs.incr crc_failures;
    raise (Corrupt { what; off; raw = w })
  end

let check w =
  let v, tag = split w in
  tag = tag_of v

let count_failure () = Obs.incr crc_failures

(* Region-aware convenience wrappers: the read/write idiom repeated by
   every sealed-word call site across allocator, pstructs and catalog. *)
let read region ~what off = unseal_exn ~what ~off (Region.get_i64 region off)
let write region off v = Region.set_i64 region off (seal v)
