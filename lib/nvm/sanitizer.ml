(* Persist-order sanitizer: a pmemcheck-style shadow-state machine over a
   simulated NVM region — concurrency-aware since PR 6.

   Every 8-byte word moves through

       Clean --store--> Dirty --writeback--> Scheduled --fence--> Clean

   mirroring exactly what [Region] does with its volatile line cache and
   write-back queue: a store to a Scheduled word goes back to Dirty,
   because the region snapshots line contents at writeback time and the
   new value is not part of the queued snapshot. A word that is absent
   from the shadow table is Clean (durable media and volatile view
   agree), so the table only ever holds the in-flight frontier — global
   "everything durable" checks are O(in-flight), not O(region).

   Concurrency model. Tracer hooks fire on whatever domain performs the
   Region operation. Outside a pool job (and on the caller's slot 0) an
   event is processed directly — a [jobs () = 1] run is byte-identical
   to the pre-concurrent sanitizer. During a pool job every lane appends
   its events to a private per-[Util.Domain_slot] buffer, tagged with
   the chunk index it is working on; no shared sanitizer state is
   touched off the caller's lane. At the join barrier the buffers are
   merged in ascending chunk order — chunk→lane assignment is the static
   stride of [Par], and chunk bodies walk ascending indices, so the
   merged order IS the serial execution order and all serial checks fire
   unchanged.

   On top of the merge, a FastTrack-style happens-before checker flags
   real races: each lane carries a vector clock advanced at the pool's
   sync edges (dispatch releases the caller's clock, task-start acquires
   it, task-done releases into the join barrier via the pool mutex, the
   join acquires all of it back). Within one job, same-lane events are
   program-ordered and cross-lane events are concurrent unless an edge
   intervened — so two lanes touching the same 8-byte word with at
   least one store and no ordering edge is a race (Racy_store /
   Racy_load). Because every inter-job edge goes through the caller, the
   race table only needs to live for one job and serial events never
   enter it at all. *)

type word_state = Dirty | Scheduled

type severity = Correctness | Perf | Info

type kind =
  | Unflushed_at_commit
  | Unordered_publish
  | Redundant_writeback
  | Redundant_fence
  | Recovery_read_lost
  | Racy_store
  | Racy_load
  | Cross_lane_publish

type violation = {
  v_kind : kind;
  v_severity : severity;
  v_label : string;
  v_offset : int;
  v_detail : string;
  v_backtrace : string list;  (** most recent operations, newest first *)
}

type counters = {
  mutable c_stores : int;
  mutable c_loads : int;
  mutable c_writebacks : int;
  mutable c_fences : int;
  mutable c_crashes : int;
  mutable c_commit_points : int;
  mutable c_watches_set : int;
  mutable c_watches_fired : int;
  mutable c_par_jobs : int;
}

type watch = { w_label : string; w_before : (int * int) list }

let ring_size = 48
let backtrace_len = 12
let max_stored_violations = 200
let max_per_event = 8

let n_slots = Util.Domain_slot.max_slots

(* shadow entry: state plus the lane whose store put it in flight (lane 0
   for all serial traffic — Cross_lane_publish needs the provenance) *)
type shadow = { mutable ws : word_state; mutable ws_lane : int }

(* one buffered Region event; E_chunk marks the start of a chunk's trace *)
type event =
  | E_store of int * int
  | E_load of int * int
  | E_writeback of int * int
  | E_fence
  | E_commit_point of string * (int * int) list
  | E_expect_ordered of string * (int * int) list * int
  | E_label of [ `Push of string | `Pop ]
  | E_external of string
  | E_chunk of int

type lane = {
  mutable ev : event array;
  mutable ev_len : int;
  lvc : int array;  (* this lane's vector clock, indexed by slot *)
  mutable seg_vc : int array;  (* clock snapshot for the current job *)
  mutable pending_chunk : int option;
      (* chunk mark to flush before the next event, so untouched
         sanitizers' buffers stay empty through chunky untraced jobs *)
}

(* per-job race table entry for one word: last-writer epoch + per-lane
   read epochs, exactly FastTrack's adaptive representation collapsed to
   the small fixed lane count *)
type race_slot = {
  mutable rw_lane : int;  (* -1 = no write this job *)
  mutable rw_clock : int;
  mutable rd : (int * int) list;  (* (lane, clock), latest per lane *)
}

type t = {
  region : Region.t;
  line : int;
  shadow : (int, shadow) Hashtbl.t;
      (* word offset -> state; absent = Clean *)
  lost : (int, unit) Hashtbl.t;
      (* words whose volatile value was discarded by a crash *)
  watches : (int, watch list) Hashtbl.t;  (* commit-variable word -> watches *)
  mutable labels : string list;  (* call-site label stack, innermost first *)
  ring : string array;  (* recent-operation ring buffer *)
  mutable ring_next : int;
  mutable violations : violation list;  (* newest first, capped *)
  mutable stored : int;
  mutable total : int array;  (* per-severity totals, index by sev_index *)
  tally : (string, int ref) Hashtbl.t;  (* "kind@label" -> count *)
  ctr : counters;
  (* --- concurrency machinery; only the caller's lane mutates shared
     state, workers write only their own [lane] record --- *)
  lanes : lane array;  (* indexed by Util.Domain_slot *)
  mutable in_par : bool;  (* a pool job is in flight *)
  mutable job_vc : int array;  (* caller clock released at dispatch *)
  barrier_vc : int array;  (* join-barrier sync object (pool mutex) *)
  race : (int, race_slot) Hashtbl.t;  (* per-job, word -> accesses *)
  race_emitted : (int * int, unit) Hashtbl.t;  (* (word, kind) dedup *)
  mutable cur_lane : int;  (* lane of the event being processed/replayed *)
}

let sev_index = function Correctness -> 0 | Perf -> 1 | Info -> 2

let severity_of_kind = function
  | Unflushed_at_commit | Unordered_publish | Racy_store | Racy_load
  | Cross_lane_publish ->
      Correctness
  | Redundant_writeback | Redundant_fence -> Perf
  | Recovery_read_lost -> Info

let kind_name = function
  | Unflushed_at_commit -> "unflushed-at-commit"
  | Unordered_publish -> "unordered-publish"
  | Redundant_writeback -> "redundant-writeback"
  | Redundant_fence -> "redundant-fence"
  | Recovery_read_lost -> "recovery-read-lost"
  | Racy_store -> "racy-store"
  | Racy_load -> "racy-load"
  | Cross_lane_publish -> "cross-lane-publish"

let state_name = function Dirty -> "Dirty" | Scheduled -> "Scheduled"

(* ---------------------------------------------------------------- labels *)

let cur_label t =
  match t.labels with
  | [] -> "?"
  | l -> String.concat "/" (List.rev l)

(* ------------------------------------------------------- operation ring *)

let lane_tag t = if t.cur_lane = 0 then "" else Printf.sprintf "L%d " t.cur_lane

let record t fmt =
  Printf.ksprintf
    (fun s ->
      let s =
        match t.labels with [] -> s | _ -> s ^ " [" ^ cur_label t ^ "]"
      in
      t.ring.(t.ring_next mod ring_size) <- s;
      t.ring_next <- t.ring_next + 1)
    fmt

let backtrace t =
  let n = min backtrace_len (min t.ring_next ring_size) in
  List.init n (fun i -> t.ring.((t.ring_next - 1 - i) mod ring_size))

(* ---------------------------------------------------------- violations *)

let emit t kind ~label ~offset detail =
  let sev = severity_of_kind kind in
  t.total.(sev_index sev) <- t.total.(sev_index sev) + 1;
  let key = kind_name kind ^ "@" ^ label in
  (match Hashtbl.find_opt t.tally key with
  | Some r -> incr r
  | None -> Hashtbl.add t.tally key (ref 1));
  if t.stored < max_stored_violations then begin
    let v =
      {
        v_kind = kind;
        v_severity = sev;
        v_label = label;
        v_offset = offset;
        v_detail = detail;
        v_backtrace = backtrace t;
      }
    in
    t.violations <- v :: t.violations;
    t.stored <- t.stored + 1
  end

(* ------------------------------------------------------- range helpers *)

(* Iterate the 8-byte words intersecting [off, off+len). *)
let iter_words off len f =
  let w = ref (off land lnot 7) in
  let stop = off + len in
  while !w < stop do
    f !w;
    w := !w + 8
  done

(* First non-Clean word in the given ranges, excluding [excl]. *)
let find_nonclean t ranges ~excl =
  let found = ref None in
  (try
     List.iter
       (fun (off, len) ->
         iter_words off len (fun w ->
             if w <> excl then
               match Hashtbl.find_opt t.shadow w with
               | Some sh ->
                   found := Some (w, sh);
                   raise Exit
               | None -> ()))
       ranges
   with Exit -> ());
  !found

(* First non-Clean word anywhere, excluding [excl]. *)
let find_nonclean_global t ~excl =
  let found = ref None in
  (try
     Hashtbl.iter
       (fun w sh ->
         if w <> excl then begin
           found := Some (w, sh);
           raise Exit
         end)
       t.shadow
   with Exit -> ());
  !found

(* ------------------------------------------------------ event handlers *)

(* These run on the caller's lane only: directly for serial traffic,
   or single-threaded at the join while replaying merged lane buffers
   (with [t.cur_lane] set to the originating lane). *)

let fire_watches t w =
  match Hashtbl.find_opt t.watches w with
  | None -> ()
  | Some ws ->
      Hashtbl.remove t.watches w;
      List.iter
        (fun { w_label; w_before } ->
          t.ctr.c_watches_fired <- t.ctr.c_watches_fired + 1;
          let offender =
            match w_before with
            | [] -> find_nonclean_global t ~excl:w
            | ranges -> find_nonclean t ranges ~excl:w
          in
          match offender with
          | None -> ()
          | Some (bad, sh) ->
              if sh.ws_lane <> t.cur_lane then
                emit t Cross_lane_publish ~label:w_label ~offset:w
                  (Printf.sprintf
                     "commit variable 0x%x stored on lane %d while guarded \
                      word 0x%x is still %s from a store on lane %d"
                     w t.cur_lane bad (state_name sh.ws) sh.ws_lane)
              else
                emit t Unordered_publish ~label:w_label ~offset:w
                  (Printf.sprintf
                     "commit variable 0x%x stored while guarded word 0x%x is \
                      still %s"
                     w bad (state_name sh.ws)))
        ws

let store_now t off len =
  t.ctr.c_stores <- t.ctr.c_stores + 1;
  record t "%sstore 0x%x+%d" (lane_tag t) off len;
  iter_words off len (fun w ->
      fire_watches t w;
      (match Hashtbl.find_opt t.shadow w with
      | Some sh ->
          sh.ws <- Dirty;
          sh.ws_lane <- t.cur_lane
      | None -> Hashtbl.add t.shadow w { ws = Dirty; ws_lane = t.cur_lane });
      Hashtbl.remove t.lost w)

let load_now t off len =
  t.ctr.c_loads <- t.ctr.c_loads + 1;
  iter_words off len (fun w ->
      if Hashtbl.mem t.lost w then begin
        Hashtbl.remove t.lost w;
        record t "%sload 0x%x+%d" (lane_tag t) off len;
        emit t Recovery_read_lost ~label:(cur_label t) ~offset:w
          (Printf.sprintf
             "read of word 0x%x whose last store never persisted before the \
              crash"
             w)
      end)

let writeback_now t off len =
  t.ctr.c_writebacks <- t.ctr.c_writebacks + 1;
  record t "%swriteback 0x%x+%d" (lane_tag t) off len;
  (* The region schedules whole cache lines; mirror that expansion. *)
  let loff = off land lnot (t.line - 1) in
  let lend = (off + len + t.line - 1) land lnot (t.line - 1) in
  let scheduled_new = ref 0 and already = ref 0 in
  iter_words loff (lend - loff) (fun w ->
      match Hashtbl.find_opt t.shadow w with
      | Some sh -> (
          match sh.ws with
          | Dirty ->
              sh.ws <- Scheduled;
              incr scheduled_new
          | Scheduled -> incr already)
      | None -> ());
  if !scheduled_new = 0 && !already > 0 then
    emit t Redundant_writeback ~label:(cur_label t) ~offset:off
      (Printf.sprintf
         "writeback of 0x%x+%d re-queues %d already-scheduled word(s) and \
          schedules nothing new"
         off len !already)

let fence_now t =
  t.ctr.c_fences <- t.ctr.c_fences + 1;
  record t "%sfence" (lane_tag t);
  let drained = ref 0 in
  let sched = ref [] in
  Hashtbl.iter
    (fun w sh -> match sh.ws with Scheduled -> sched := w :: !sched | Dirty -> ())
    t.shadow;
  List.iter
    (fun w ->
      Hashtbl.remove t.shadow w;
      incr drained)
    !sched;
  if !drained = 0 then
    emit t Redundant_fence ~label:(cur_label t) ~offset:0
      "fence with no scheduled writeback drains nothing"

let commit_point_now t ~label ranges =
  t.ctr.c_commit_points <- t.ctr.c_commit_points + 1;
  record t "commit-point %s" label;
  let emitted = ref 0 in
  let complain w sh =
    if !emitted < max_per_event then
      emit t Unflushed_at_commit ~label ~offset:w
        (Printf.sprintf "word 0x%x is %s at declared commit point" w
           (state_name sh.ws));
    incr emitted
  in
  (match ranges with
  | [] -> Hashtbl.iter complain t.shadow
  | ranges ->
      List.iter
        (fun (off, len) ->
          iter_words off len (fun w ->
              match Hashtbl.find_opt t.shadow w with
              | Some sh -> complain w sh
              | None -> ()))
        ranges);
  if !emitted > max_per_event then
    emit t Unflushed_at_commit ~label ~offset:0
      (Printf.sprintf "...and %d more unflushed word(s) at this commit point"
         (!emitted - max_per_event))

let expect_ordered_now t ~label ~before ~after =
  t.ctr.c_watches_set <- t.ctr.c_watches_set + 1;
  record t "expect-ordered %s -> 0x%x" label after;
  let after = after land lnot 7 in
  let w = { w_label = label; w_before = before } in
  let prev = Option.value ~default:[] (Hashtbl.find_opt t.watches after) in
  Hashtbl.replace t.watches after (w :: prev)

let label_now t = function
  | `Push l -> t.labels <- l :: t.labels
  | `Pop -> ( match t.labels with [] -> () | _ :: tl -> t.labels <- tl)

let crash_now t kind =
  t.ctr.c_crashes <- t.ctr.c_crashes + 1;
  record t "crash (%s)"
    (match kind with
    | `Drop_unfenced -> "drop-unfenced"
    | `Persist_all -> "persist-all"
    | `Adversarial -> "adversarial");
  (match kind with
  | `Persist_all -> ()
  | `Drop_unfenced | `Adversarial ->
      (* Every in-flight word's volatile value is (possibly) gone; a
         recovery path that reads one is trusting an indeterminate value. *)
      Hashtbl.iter (fun w _ -> Hashtbl.replace t.lost w ()) t.shadow);
  Hashtbl.reset t.shadow;
  (* A pending publish watch refers to an aborted protocol run; keeping it
     armed would fire on an unrelated post-recovery store. *)
  Hashtbl.reset t.watches

(* -------------------------------------------------- per-lane buffering *)

let raw_push ln e =
  if ln.ev_len = Array.length ln.ev then begin
    let a = Array.make (max 64 (2 * Array.length ln.ev)) E_fence in
    Array.blit ln.ev 0 a 0 ln.ev_len;
    ln.ev <- a
  end;
  ln.ev.(ln.ev_len) <- e;
  ln.ev_len <- ln.ev_len + 1

let push_event t slot e =
  let ln = t.lanes.(slot) in
  (match ln.pending_chunk with
  | Some j ->
      ln.pending_chunk <- None;
      raw_push ln (E_chunk j)
  | None -> ());
  raw_push ln e

(* ------------------------------------------------- happens-before race *)

let join_into dst src =
  for i = 0 to n_slots - 1 do
    if src.(i) > dst.(i) then dst.(i) <- src.(i)
  done

let emit_race t kind ~word ~lane ~other ~me ~them =
  let tag = match kind with Racy_store -> 0 | _ -> 1 in
  if not (Hashtbl.mem t.race_emitted (word, tag)) then begin
    Hashtbl.add t.race_emitted (word, tag) ();
    emit t kind ~label:(cur_label t) ~offset:word
      (Printf.sprintf
         "%s of word 0x%x on lane %d races a %s on lane %d (no happens-before \
          edge between them)"
         me word lane them other)
  end

let race_slot t w =
  match Hashtbl.find_opt t.race w with
  | Some r -> r
  | None ->
      let r = { rw_lane = -1; rw_clock = 0; rd = [] } in
      Hashtbl.add t.race w r;
      r

(* [vc] is the acting lane's clock for the current job segment; a prior
   access (lane a, clock c) happens-before us iff vc.(a) >= c. *)
let race_check_store t lane vc off len =
  iter_words off len (fun w ->
      let rs = race_slot t w in
      if rs.rw_lane >= 0 && rs.rw_lane <> lane && vc.(rs.rw_lane) < rs.rw_clock
      then
        emit_race t Racy_store ~word:w ~lane ~other:rs.rw_lane ~me:"store"
          ~them:"store";
      List.iter
        (fun (rl, rc) ->
          if rl <> lane && vc.(rl) < rc then
            emit_race t Racy_store ~word:w ~lane ~other:rl ~me:"store"
              ~them:"load")
        rs.rd;
      rs.rw_lane <- lane;
      rs.rw_clock <- vc.(lane);
      rs.rd <- [])

let race_check_load t lane vc off len =
  iter_words off len (fun w ->
      let rs = race_slot t w in
      if rs.rw_lane >= 0 && rs.rw_lane <> lane && vc.(rs.rw_lane) < rs.rw_clock
      then
        emit_race t Racy_load ~word:w ~lane ~other:rs.rw_lane ~me:"load"
          ~them:"store";
      rs.rd <- (lane, vc.(lane)) :: List.remove_assoc lane rs.rd)

(* ------------------------------------------------------ the join merge *)

let replay_event t lane vc = function
  | E_store (off, len) ->
      race_check_store t lane vc off len;
      store_now t off len
  | E_load (off, len) ->
      race_check_load t lane vc off len;
      load_now t off len
  | E_writeback (off, len) -> writeback_now t off len
  | E_fence -> fence_now t
  | E_commit_point (label, ranges) -> commit_point_now t ~label ranges
  | E_expect_ordered (label, before, after) ->
      expect_ordered_now t ~label ~before ~after
  | E_label op -> label_now t op
  | E_external msg -> record t "%s%s" (lane_tag t) msg
  | E_chunk _ -> ()

(* Merge all lane buffers into the serial shadow machine, in ascending
   chunk order (= the serial execution order, since chunk bodies walk
   ascending indices), running the race checker on each buffered store
   and load. Returns whether anything was merged. *)
let merge_job t =
  let segs = ref [] in
  Array.iteri
    (fun l ln ->
      if ln.ev_len > 0 then begin
        (* split the buffer on its chunk marks; anything before the first
           mark (events traced outside any chunk — contract-violating
           producers) gets a synthetic pre-chunk key so it still replays *)
        let start = ref 0 and cur = ref (-1 - l) in
        for i = 0 to ln.ev_len - 1 do
          match ln.ev.(i) with
          | E_chunk j ->
              if i > !start then segs := (!cur, l, !start, i) :: !segs;
              cur := j;
              start := i + 1
          | _ -> ()
        done;
        if ln.ev_len > !start then segs := (!cur, l, !start, ln.ev_len) :: !segs
      end)
    t.lanes;
  let merged = !segs <> [] in
  if merged then begin
    let segs =
      List.sort
        (fun (ca, la, _, _) (cb, lb, _, _) ->
          match compare ca cb with 0 -> compare la lb | c -> c)
        !segs
    in
    Hashtbl.reset t.race;
    Hashtbl.reset t.race_emitted;
    List.iter
      (fun (_, l, lo, hi) ->
        let ln = t.lanes.(l) in
        t.cur_lane <- l;
        for i = lo to hi - 1 do
          replay_event t l ln.seg_vc ln.ev.(i)
        done)
      segs;
    t.cur_lane <- 0;
    Hashtbl.reset t.race;
    Hashtbl.reset t.race_emitted
  end;
  Array.iter
    (fun ln ->
      ln.ev_len <- 0;
      ln.pending_chunk <- None)
    t.lanes;
  merged

(* ----------------------------------------------------- Par sync hooks *)

(* All attached sanitizers, multiplexed behind the single Par hook. The
   list is only mutated on the caller's lane with no job in flight. *)
let attached : t list ref = ref []

let hook_dispatch ~lanes:_ =
  List.iter
    (fun t ->
      (* flush any stray buffered trace, then release the caller clock *)
      ignore (merge_job t);
      Array.fill t.barrier_vc 0 n_slots 0;
      t.job_vc <- Array.copy t.lanes.(0).lvc;
      t.in_par <- true)
    !attached

let hook_task_start () =
  let l = Util.Domain_slot.get () in
  List.iter
    (fun t ->
      let ln = t.lanes.(l) in
      join_into ln.lvc t.job_vc;
      ln.lvc.(l) <- ln.lvc.(l) + 1;
      ln.seg_vc <- Array.copy ln.lvc;
      ln.pending_chunk <- None)
    !attached

let hook_chunk j =
  let l = Util.Domain_slot.get () in
  List.iter (fun t -> t.lanes.(l).pending_chunk <- Some j) !attached

let hook_task_done () =
  (* under the pool mutex: the barrier clock is the mutex's sync object *)
  let l = Util.Domain_slot.get () in
  List.iter
    (fun t ->
      let ln = t.lanes.(l) in
      join_into t.barrier_vc ln.lvc;
      ln.lvc.(l) <- ln.lvc.(l) + 1)
    !attached

let hook_join () =
  List.iter
    (fun t ->
      let c = t.lanes.(0).lvc in
      join_into c t.barrier_vc;
      c.(0) <- c.(0) + 1;
      if merge_job t then t.ctr.c_par_jobs <- t.ctr.c_par_jobs + 1;
      t.in_par <- false)
    !attached

let hook_installed = ref false

let ensure_hook () =
  if not !hook_installed then begin
    hook_installed := true;
    Par.set_sync_hook
      (Some
         {
           Par.on_dispatch = hook_dispatch;
           on_task_start = hook_task_start;
           on_chunk = hook_chunk;
           on_task_done = hook_task_done;
           on_join = hook_join;
         })
  end

(* ------------------------------------------------------ tracer inlets *)

(* Fired on whatever domain performs the Region op: buffer when a job is
   in flight (or when a stray worker calls outside one); process
   directly otherwise — the serial path is untouched. *)

let on_store t off len =
  let slot = Util.Domain_slot.get () in
  if t.in_par || slot > 0 then push_event t slot (E_store (off, len))
  else store_now t off len

let on_load t off len =
  let slot = Util.Domain_slot.get () in
  if t.in_par || slot > 0 then push_event t slot (E_load (off, len))
  else load_now t off len

let on_writeback t off len =
  let slot = Util.Domain_slot.get () in
  if t.in_par || slot > 0 then push_event t slot (E_writeback (off, len))
  else writeback_now t off len

let on_fence t () =
  let slot = Util.Domain_slot.get () in
  if t.in_par || slot > 0 then push_event t slot E_fence else fence_now t

let on_crash t kind =
  (* a crash is inherently a whole-machine, caller-side event; merge any
     buffered trace first so it lands before the reset *)
  ignore (merge_job t);
  crash_now t kind

let on_commit_point t ~label ranges =
  let slot = Util.Domain_slot.get () in
  if t.in_par || slot > 0 then push_event t slot (E_commit_point (label, ranges))
  else commit_point_now t ~label ranges

let on_expect_ordered t ~label ~before ~after =
  let slot = Util.Domain_slot.get () in
  if t.in_par || slot > 0 then
    push_event t slot (E_expect_ordered (label, before, after))
  else expect_ordered_now t ~label ~before ~after

let on_label t op =
  let slot = Util.Domain_slot.get () in
  if t.in_par || slot > 0 then push_event t slot (E_label op)
  else label_now t op

(* -------------------------------------------------------------- public *)

let attach region =
  let t =
    {
      region;
      line = Region.line_size region;
      shadow = Hashtbl.create 1024;
      lost = Hashtbl.create 64;
      watches = Hashtbl.create 16;
      labels = [];
      ring = Array.make ring_size "";
      ring_next = 0;
      violations = [];
      stored = 0;
      total = Array.make 3 0;
      tally = Hashtbl.create 32;
      ctr =
        {
          c_stores = 0;
          c_loads = 0;
          c_writebacks = 0;
          c_fences = 0;
          c_crashes = 0;
          c_commit_points = 0;
          c_watches_set = 0;
          c_watches_fired = 0;
          c_par_jobs = 0;
        };
      lanes =
        Array.init n_slots (fun _ ->
            {
              ev = [||];
              ev_len = 0;
              lvc = Array.make n_slots 0;
              seg_vc = Array.make n_slots 0;
              pending_chunk = None;
            });
      in_par = false;
      job_vc = Array.make n_slots 0;
      barrier_vc = Array.make n_slots 0;
      race = Hashtbl.create 64;
      race_emitted = Hashtbl.create 16;
      cur_lane = 0;
    }
  in
  ensure_hook ();
  attached := t :: !attached;
  Region.set_tracer region
    (Some
       {
         Region.on_store = on_store t;
         on_load = on_load t;
         on_writeback = on_writeback t;
         on_fence = on_fence t;
         on_crash = on_crash t;
         on_commit_point = (fun ~label ranges -> on_commit_point t ~label ranges);
         on_expect_ordered =
           (fun ~label ~before ~after -> on_expect_ordered t ~label ~before ~after);
         on_label = on_label t;
       });
  t

let detach t =
  Region.set_tracer t.region None;
  ignore (merge_job t);
  attached := List.filter (fun x -> x != t) !attached

let region t = t.region
let violations t = List.rev t.violations

let count t sev = t.total.(sev_index sev)
let correctness_violations t = count t Correctness

let tallies t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.tally []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let counters t = t.ctr

let clear t =
  t.violations <- [];
  t.stored <- 0;
  Array.fill t.total 0 3 0;
  Hashtbl.reset t.tally;
  Hashtbl.reset t.lost

let word_state t off =
  match Hashtbl.find_opt t.shadow (off land lnot 7) with
  | None -> `Clean
  | Some { ws = Dirty; _ } -> `Dirty
  | Some { ws = Scheduled; _ } -> `Scheduled

let tracked_words t = Hashtbl.length t.shadow

let in_flight_words t =
  Hashtbl.fold
    (fun w sh acc ->
      (w, match sh.ws with Dirty -> `Dirty | Scheduled -> `Scheduled) :: acc)
    t.shadow []
  |> List.sort compare

let note_external t msg =
  let slot = Util.Domain_slot.get () in
  if t.in_par || slot > 0 then push_event t slot (E_external msg)
  else record t "%s" msg

let pp_violation buf v =
  Printf.bprintf buf "  [%s] %s @0x%x (%s): %s\n"
    (match v.v_severity with
    | Correctness -> "CORRECTNESS"
    | Perf -> "perf"
    | Info -> "info")
    (kind_name v.v_kind) v.v_offset v.v_label v.v_detail;
  List.iteri
    (fun i op -> if i < 6 then Printf.bprintf buf "      <- %s\n" op)
    v.v_backtrace

let report t =
  let buf = Buffer.create 1024 in
  let c = t.ctr in
  Printf.bprintf buf "persist-order sanitizer report\n";
  Printf.bprintf buf
    "  events: %d stores, %d loads, %d writebacks, %d fences, %d crashes\n"
    c.c_stores c.c_loads c.c_writebacks c.c_fences c.c_crashes;
  Printf.bprintf buf
    "  annotations: %d commit points, %d publish watches (%d fired)\n"
    c.c_commit_points c.c_watches_set c.c_watches_fired;
  if c.c_par_jobs > 0 then
    Printf.bprintf buf
      "  parallel: %d traced pool job(s) merged across lanes\n" c.c_par_jobs;
  Printf.bprintf buf "  in flight now: %d word(s)\n" (tracked_words t);
  Printf.bprintf buf
    "  violations: %d correctness, %d perf diagnostics, %d info\n"
    (count t Correctness) (count t Perf) (count t Info);
  let vs = violations t in
  if vs <> [] then begin
    Printf.bprintf buf "\n";
    List.iter (pp_violation buf) vs;
    if t.total.(0) + t.total.(1) + t.total.(2) > t.stored then
      Printf.bprintf buf "  ... (%d more not stored)\n"
        (t.total.(0) + t.total.(1) + t.total.(2) - t.stored)
  end;
  let ts = tallies t in
  if ts <> [] then begin
    Printf.bprintf buf "\n  per call-site tally:\n";
    List.iter (fun (k, n) -> Printf.bprintf buf "    %6d  %s\n" n k) ts
  end;
  Buffer.contents buf

let report_json t =
  let module J = Obs.Json in
  let c = t.ctr in
  J.Obj
    [
      ( "counters",
        J.Obj
          [
            ("stores", J.Int c.c_stores);
            ("loads", J.Int c.c_loads);
            ("writebacks", J.Int c.c_writebacks);
            ("fences", J.Int c.c_fences);
            ("crashes", J.Int c.c_crashes);
            ("commit_points", J.Int c.c_commit_points);
            ("watches_set", J.Int c.c_watches_set);
            ("watches_fired", J.Int c.c_watches_fired);
            ("par_jobs", J.Int c.c_par_jobs);
          ] );
      ( "violations",
        J.Obj
          [
            ("correctness", J.Int (count t Correctness));
            ("perf", J.Int (count t Perf));
            ("info", J.Int (count t Info));
          ] );
      ("tallies", J.Obj (List.map (fun (k, n) -> (k, J.Int n)) (tallies t)));
      ("in_flight", J.Int (tracked_words t));
    ]
