(* Persist-order sanitizer: a pmemcheck-style shadow-state machine over a
   simulated NVM region.

   Every 8-byte word moves through

       Clean --store--> Dirty --writeback--> Scheduled --fence--> Clean

   mirroring exactly what [Region] does with its volatile line cache and
   write-back queue: a store to a Scheduled word goes back to Dirty,
   because the region snapshots line contents at writeback time and the
   new value is not part of the queued snapshot. A word that is absent
   from the shadow table is Clean (durable media and volatile view
   agree), so the table only ever holds the in-flight frontier — global
   "everything durable" checks are O(in-flight), not O(region). *)

type word_state = Dirty | Scheduled

type severity = Correctness | Perf | Info

type kind =
  | Unflushed_at_commit
  | Unordered_publish
  | Redundant_writeback
  | Redundant_fence
  | Recovery_read_lost

type violation = {
  v_kind : kind;
  v_severity : severity;
  v_label : string;
  v_offset : int;
  v_detail : string;
  v_backtrace : string list;  (** most recent operations, newest first *)
}

type counters = {
  mutable c_stores : int;
  mutable c_loads : int;
  mutable c_writebacks : int;
  mutable c_fences : int;
  mutable c_crashes : int;
  mutable c_commit_points : int;
  mutable c_watches_set : int;
  mutable c_watches_fired : int;
}

type watch = { w_label : string; w_before : (int * int) list }

let ring_size = 48
let backtrace_len = 12
let max_stored_violations = 200
let max_per_event = 8

type t = {
  region : Region.t;
  line : int;
  shadow : (int, word_state) Hashtbl.t;
      (* word offset -> state; absent = Clean *)
  lost : (int, unit) Hashtbl.t;
      (* words whose volatile value was discarded by a crash *)
  watches : (int, watch list) Hashtbl.t;  (* commit-variable word -> watches *)
  mutable labels : string list;  (* call-site label stack, innermost first *)
  ring : string array;  (* recent-operation ring buffer *)
  mutable ring_next : int;
  mutable violations : violation list;  (* newest first, capped *)
  mutable stored : int;
  mutable total : int array;  (* per-severity totals, index by sev_index *)
  tally : (string, int ref) Hashtbl.t;  (* "kind@label" -> count *)
  ctr : counters;
}

let sev_index = function Correctness -> 0 | Perf -> 1 | Info -> 2

let severity_of_kind = function
  | Unflushed_at_commit | Unordered_publish -> Correctness
  | Redundant_writeback | Redundant_fence -> Perf
  | Recovery_read_lost -> Info

let kind_name = function
  | Unflushed_at_commit -> "unflushed-at-commit"
  | Unordered_publish -> "unordered-publish"
  | Redundant_writeback -> "redundant-writeback"
  | Redundant_fence -> "redundant-fence"
  | Recovery_read_lost -> "recovery-read-lost"

let state_name = function Dirty -> "Dirty" | Scheduled -> "Scheduled"

(* ---------------------------------------------------------------- labels *)

let cur_label t =
  match t.labels with
  | [] -> "?"
  | l -> String.concat "/" (List.rev l)

(* ------------------------------------------------------- operation ring *)

let record t fmt =
  Printf.ksprintf
    (fun s ->
      let s =
        match t.labels with [] -> s | _ -> s ^ " [" ^ cur_label t ^ "]"
      in
      t.ring.(t.ring_next mod ring_size) <- s;
      t.ring_next <- t.ring_next + 1)
    fmt

let backtrace t =
  let n = min backtrace_len (min t.ring_next ring_size) in
  List.init n (fun i -> t.ring.((t.ring_next - 1 - i) mod ring_size))

(* ---------------------------------------------------------- violations *)

let emit t kind ~label ~offset detail =
  let sev = severity_of_kind kind in
  t.total.(sev_index sev) <- t.total.(sev_index sev) + 1;
  let key = kind_name kind ^ "@" ^ label in
  (match Hashtbl.find_opt t.tally key with
  | Some r -> incr r
  | None -> Hashtbl.add t.tally key (ref 1));
  if t.stored < max_stored_violations then begin
    let v =
      {
        v_kind = kind;
        v_severity = sev;
        v_label = label;
        v_offset = offset;
        v_detail = detail;
        v_backtrace = backtrace t;
      }
    in
    t.violations <- v :: t.violations;
    t.stored <- t.stored + 1
  end

(* ------------------------------------------------------- range helpers *)

(* Iterate the 8-byte words intersecting [off, off+len). *)
let iter_words off len f =
  let w = ref (off land lnot 7) in
  let stop = off + len in
  while !w < stop do
    f !w;
    w := !w + 8
  done

(* First non-Clean word in the given ranges, excluding [excl]. *)
let find_nonclean t ranges ~excl =
  let found = ref None in
  (try
     List.iter
       (fun (off, len) ->
         iter_words off len (fun w ->
             if w <> excl then
               match Hashtbl.find_opt t.shadow w with
               | Some st ->
                   found := Some (w, st);
                   raise Exit
               | None -> ()))
       ranges
   with Exit -> ());
  !found

(* First non-Clean word anywhere, excluding [excl]. *)
let find_nonclean_global t ~excl =
  let found = ref None in
  (try
     Hashtbl.iter
       (fun w st ->
         if w <> excl then begin
           found := Some (w, st);
           raise Exit
         end)
       t.shadow
   with Exit -> ());
  !found

(* ------------------------------------------------------ event handlers *)

let fire_watches t w =
  match Hashtbl.find_opt t.watches w with
  | None -> ()
  | Some ws ->
      Hashtbl.remove t.watches w;
      List.iter
        (fun { w_label; w_before } ->
          t.ctr.c_watches_fired <- t.ctr.c_watches_fired + 1;
          let offender =
            match w_before with
            | [] -> find_nonclean_global t ~excl:w
            | ranges -> find_nonclean t ranges ~excl:w
          in
          match offender with
          | None -> ()
          | Some (bad, st) ->
              emit t Unordered_publish ~label:w_label ~offset:w
                (Printf.sprintf
                   "commit variable 0x%x stored while guarded word 0x%x is \
                    still %s"
                   w bad (state_name st)))
        ws

let on_store t off len =
  t.ctr.c_stores <- t.ctr.c_stores + 1;
  record t "store 0x%x+%d" off len;
  iter_words off len (fun w ->
      fire_watches t w;
      Hashtbl.replace t.shadow w Dirty;
      Hashtbl.remove t.lost w)

let on_load t off len =
  t.ctr.c_loads <- t.ctr.c_loads + 1;
  iter_words off len (fun w ->
      if Hashtbl.mem t.lost w then begin
        Hashtbl.remove t.lost w;
        record t "load 0x%x+%d" off len;
        emit t Recovery_read_lost ~label:(cur_label t) ~offset:w
          (Printf.sprintf
             "read of word 0x%x whose last store never persisted before the \
              crash"
             w)
      end)

let on_writeback t off len =
  t.ctr.c_writebacks <- t.ctr.c_writebacks + 1;
  record t "writeback 0x%x+%d" off len;
  (* The region schedules whole cache lines; mirror that expansion. *)
  let loff = off land lnot (t.line - 1) in
  let lend = (off + len + t.line - 1) land lnot (t.line - 1) in
  let scheduled_new = ref 0 and already = ref 0 in
  iter_words loff (lend - loff) (fun w ->
      match Hashtbl.find_opt t.shadow w with
      | Some Dirty ->
          Hashtbl.replace t.shadow w Scheduled;
          incr scheduled_new
      | Some Scheduled -> incr already
      | None -> ());
  if !scheduled_new = 0 && !already > 0 then
    emit t Redundant_writeback ~label:(cur_label t) ~offset:off
      (Printf.sprintf
         "writeback of 0x%x+%d re-queues %d already-scheduled word(s) and \
          schedules nothing new"
         off len !already)

let on_fence t =
  t.ctr.c_fences <- t.ctr.c_fences + 1;
  record t "fence";
  let drained = ref 0 in
  let sched = ref [] in
  Hashtbl.iter
    (fun w st -> match st with Scheduled -> sched := w :: !sched | Dirty -> ())
    t.shadow;
  List.iter
    (fun w ->
      Hashtbl.remove t.shadow w;
      incr drained)
    !sched;
  if !drained = 0 then
    emit t Redundant_fence ~label:(cur_label t) ~offset:0
      "fence with no scheduled writeback drains nothing"

let on_crash t kind =
  t.ctr.c_crashes <- t.ctr.c_crashes + 1;
  record t "crash (%s)"
    (match kind with
    | `Drop_unfenced -> "drop-unfenced"
    | `Persist_all -> "persist-all"
    | `Adversarial -> "adversarial");
  (match kind with
  | `Persist_all -> ()
  | `Drop_unfenced | `Adversarial ->
      (* Every in-flight word's volatile value is (possibly) gone; a
         recovery path that reads one is trusting an indeterminate value. *)
      Hashtbl.iter (fun w _ -> Hashtbl.replace t.lost w ()) t.shadow);
  Hashtbl.reset t.shadow;
  (* A pending publish watch refers to an aborted protocol run; keeping it
     armed would fire on an unrelated post-recovery store. *)
  Hashtbl.reset t.watches

let on_commit_point t ~label ranges =
  t.ctr.c_commit_points <- t.ctr.c_commit_points + 1;
  record t "commit-point %s" label;
  let emitted = ref 0 in
  let complain w st =
    if !emitted < max_per_event then
      emit t Unflushed_at_commit ~label ~offset:w
        (Printf.sprintf "word 0x%x is %s at declared commit point" w
           (state_name st));
    incr emitted
  in
  (match ranges with
  | [] -> Hashtbl.iter complain t.shadow
  | ranges ->
      List.iter
        (fun (off, len) ->
          iter_words off len (fun w ->
              match Hashtbl.find_opt t.shadow w with
              | Some st -> complain w st
              | None -> ()))
        ranges);
  if !emitted > max_per_event then
    emit t Unflushed_at_commit ~label ~offset:0
      (Printf.sprintf "...and %d more unflushed word(s) at this commit point"
         (!emitted - max_per_event))

let on_expect_ordered t ~label ~before ~after =
  t.ctr.c_watches_set <- t.ctr.c_watches_set + 1;
  record t "expect-ordered %s -> 0x%x" label after;
  let after = after land lnot 7 in
  let w = { w_label = label; w_before = before } in
  let prev = Option.value ~default:[] (Hashtbl.find_opt t.watches after) in
  Hashtbl.replace t.watches after (w :: prev)

let on_label t = function
  | `Push l -> t.labels <- l :: t.labels
  | `Pop -> ( match t.labels with [] -> () | _ :: tl -> t.labels <- tl)

(* -------------------------------------------------------------- public *)

let attach region =
  let t =
    {
      region;
      line = Region.line_size region;
      shadow = Hashtbl.create 1024;
      lost = Hashtbl.create 64;
      watches = Hashtbl.create 16;
      labels = [];
      ring = Array.make ring_size "";
      ring_next = 0;
      violations = [];
      stored = 0;
      total = Array.make 3 0;
      tally = Hashtbl.create 32;
      ctr =
        {
          c_stores = 0;
          c_loads = 0;
          c_writebacks = 0;
          c_fences = 0;
          c_crashes = 0;
          c_commit_points = 0;
          c_watches_set = 0;
          c_watches_fired = 0;
        };
    }
  in
  Region.set_tracer region
    (Some
       {
         Region.on_store = on_store t;
         on_load = on_load t;
         on_writeback = on_writeback t;
         on_fence = (fun () -> on_fence t);
         on_crash = on_crash t;
         on_commit_point = (fun ~label ranges -> on_commit_point t ~label ranges);
         on_expect_ordered =
           (fun ~label ~before ~after -> on_expect_ordered t ~label ~before ~after);
         on_label = on_label t;
       });
  t

let detach t = Region.set_tracer t.region None
let region t = t.region
let violations t = List.rev t.violations

let count t sev = t.total.(sev_index sev)
let correctness_violations t = count t Correctness

let tallies t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.tally []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let counters t = t.ctr

let clear t =
  t.violations <- [];
  t.stored <- 0;
  Array.fill t.total 0 3 0;
  Hashtbl.reset t.tally;
  Hashtbl.reset t.lost

let word_state t off =
  match Hashtbl.find_opt t.shadow (off land lnot 7) with
  | None -> `Clean
  | Some Dirty -> `Dirty
  | Some Scheduled -> `Scheduled

let tracked_words t = Hashtbl.length t.shadow

let note_external t msg = record t "%s" msg

let pp_violation buf v =
  Printf.bprintf buf "  [%s] %s @0x%x (%s): %s\n"
    (match v.v_severity with
    | Correctness -> "CORRECTNESS"
    | Perf -> "perf"
    | Info -> "info")
    (kind_name v.v_kind) v.v_offset v.v_label v.v_detail;
  List.iteri
    (fun i op -> if i < 6 then Printf.bprintf buf "      <- %s\n" op)
    v.v_backtrace

let report t =
  let buf = Buffer.create 1024 in
  let c = t.ctr in
  Printf.bprintf buf "persist-order sanitizer report\n";
  Printf.bprintf buf
    "  events: %d stores, %d loads, %d writebacks, %d fences, %d crashes\n"
    c.c_stores c.c_loads c.c_writebacks c.c_fences c.c_crashes;
  Printf.bprintf buf
    "  annotations: %d commit points, %d publish watches (%d fired)\n"
    c.c_commit_points c.c_watches_set c.c_watches_fired;
  Printf.bprintf buf "  in flight now: %d word(s)\n" (tracked_words t);
  Printf.bprintf buf
    "  violations: %d correctness, %d perf diagnostics, %d info\n"
    (count t Correctness) (count t Perf) (count t Info);
  let vs = violations t in
  if vs <> [] then begin
    Printf.bprintf buf "\n";
    List.iter (pp_violation buf) vs;
    if t.total.(0) + t.total.(1) + t.total.(2) > t.stored then
      Printf.bprintf buf "  ... (%d more not stored)\n"
        (t.total.(0) + t.total.(1) + t.total.(2) - t.stored)
  end;
  let ts = tallies t in
  if ts <> [] then begin
    Printf.bprintf buf "\n  per call-site tally:\n";
    List.iter (fun (k, n) -> Printf.bprintf buf "    %6d  %s\n" n k) ts
  end;
  Buffer.contents buf
