type config = {
  size : int;
  line_size : int;
  load_ns : int;
  store_ns : int;
  writeback_ns : int;
  fence_ns : int;
}

let default_config =
  {
    size = 1 lsl 20;
    line_size = 64;
    load_ns = 90;
    store_ns = 30;
    writeback_ns = 120;
    fence_ns = 20;
  }

let config_with_size size = { default_config with size }

type crash_kind = [ `Drop_unfenced | `Persist_all | `Adversarial ]

(* Observer of every persistence-relevant operation.  Installed by
   Sanitizer.attach; [None] (the default) keeps every hot path at the cost
   of a single physical-equality test.  Hooks fire on whatever domain
   performs the op — under the Par pool that is the worker's slot, and
   the sanitizer buffers those events per lane and merges at the join. *)
type tracer = {
  on_store : int -> int -> unit;
  on_load : int -> int -> unit;
  on_writeback : int -> int -> unit;
  on_fence : unit -> unit;
  on_crash : crash_kind -> unit;
  on_commit_point : label:string -> (int * int) list -> unit;
  on_expect_ordered : label:string -> before:(int * int) list -> after:int -> unit;
  on_label : [ `Push of string | `Pop ] -> unit;
}

(* Per-domain accounting shard.  Parallel scans read the region from pool
   domains; plain shared counters would race (and Atomic.t would put a
   contended RMW on every simulated load).  Instead each domain tallies
   into its own shard — indexed by Util.Domain_slot, so the lone initial
   domain pays one DLS read per op and nothing else changed — and [stats]
   sums the shards.  The engine's domain-safety contract (PROTOCOLS.md
   §10) restricts pool domains to reads, so only slot 0 ever touches
   [wb_queue]/[cache]-mutating paths. *)
type shard = {
  mutable sh_loads : int;
  mutable sh_stores : int;
  mutable sh_writebacks : int;
  mutable sh_fences : int;
  mutable sh_elided_fences : int;
  mutable sh_sim_ns : int;
}

(* A dirty line: the volatile (cache) content of one line that may differ
   from the durable media.  [wb_pending] snapshots taken by [writeback] sit
   in [wb_queue] until the next fence. *)
type t = {
  media : Bytes.t; (* durable image *)
  cache : (int, Bytes.t) Hashtbl.t; (* line index -> volatile content *)
  mutable wb_queue : (int * Bytes.t) list; (* reversed order of scheduling *)
  line_size : int;
  line_shift : int;
  mutable load_ns : int;
  mutable store_ns : int;
  mutable writeback_ns : int;
  mutable fence_ns : int;
  shards : shard array; (* per-domain-slot op/time tallies *)
  mutable persist_enabled : bool;
  mutable fuse : int; (* -1 = disarmed; 0 = next armed op raises *)
  mutable tracer : tracer option;
  stuck : (int, char) Hashtbl.t; (* media offset -> wedged value *)
  mutable faults_injected : int;
}

let[@inline] shard t = t.shards.(Util.Domain_slot.get ())

let shift_of_line_size n =
  if n <= 0 || n land (n - 1) <> 0 then
    invalid_arg "Region.create: line_size must be a power of two";
  let rec go n acc = if n = 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

let create (cfg : config) =
  let line_shift = shift_of_line_size cfg.line_size in
  let lines = (cfg.size + cfg.line_size - 1) / cfg.line_size in
  let size = lines * cfg.line_size in
  {
    media = Bytes.make size '\000';
    cache = Hashtbl.create 1024;
    wb_queue = [];
    line_size = cfg.line_size;
    line_shift;
    load_ns = cfg.load_ns;
    store_ns = cfg.store_ns;
    writeback_ns = cfg.writeback_ns;
    fence_ns = cfg.fence_ns;
    shards =
      Array.init Util.Domain_slot.max_slots (fun _ ->
          {
            sh_loads = 0;
            sh_stores = 0;
            sh_writebacks = 0;
            sh_fences = 0;
            sh_elided_fences = 0;
            sh_sim_ns = 0;
          });
    persist_enabled = true;
    fuse = -1;
    tracer = None;
    stuck = Hashtbl.create 4;
    faults_injected = 0;
  }

(* Tracer events fire only while persistence is enabled (a DRAM-mode region
   has no ordering protocol to check) and strictly AFTER the traced
   operation took effect — an armed [Power_failure] raises first, so the
   shadow state never records an operation the power cut off. *)
let[@inline] trace_store t off len =
  match t.tracer with
  | None -> ()
  | Some tr -> if t.persist_enabled then tr.on_store off len

let[@inline] trace_load t off len =
  match t.tracer with
  | None -> ()
  | Some tr -> if t.persist_enabled then tr.on_load off len

let set_tracer t tr = t.tracer <- tr

let annotate_commit_point t ~label ranges =
  match t.tracer with
  | None -> ()
  | Some tr -> if t.persist_enabled then tr.on_commit_point ~label ranges

let expect_ordered t ~label ~before ~after =
  match t.tracer with
  | None -> ()
  | Some tr -> if t.persist_enabled then tr.on_expect_ordered ~label ~before ~after

let push_label t l =
  match t.tracer with None -> () | Some tr -> tr.on_label (`Push l)

let pop_label t =
  match t.tracer with None -> () | Some tr -> tr.on_label `Pop

let with_label t l f =
  match t.tracer with
  | None -> f ()
  | Some tr ->
      tr.on_label (`Push l);
      Fun.protect ~finally:(fun () -> tr.on_label `Pop) f

let apply_cache_to_media t =
  Hashtbl.iter
    (fun li b -> Bytes.blit b 0 t.media (li lsl t.line_shift) t.line_size)
    t.cache;
  Hashtbl.reset t.cache;
  t.wb_queue <- []

let set_persist_enabled t b =
  (* With persistence disabled the region behaves as DRAM: accesses go
     straight to the byte array (no cache-line simulation) and a crash
     wipes everything.  Moving the volatile view into the media keeps the
     contents coherent across a toggle. *)
  if b <> t.persist_enabled then apply_cache_to_media t;
  t.persist_enabled <- b

let persist_enabled t = t.persist_enabled

let size t = Bytes.length t.media
let line_size t = t.line_size

let check_range t off len fn =
  if off < 0 || len < 0 || off + len > Bytes.length t.media then
    invalid_arg
      (Printf.sprintf "Region.%s: range [%d,+%d) outside region of %d bytes"
         fn off len (Bytes.length t.media))

let line_of t off = off lsr t.line_shift

(* Return the cache line for writing, creating it from media if clean. *)
let dirty_line t li =
  match Hashtbl.find_opt t.cache li with
  | Some b -> b
  | None ->
      let b = Bytes.create t.line_size in
      Bytes.blit t.media (li lsl t.line_shift) b 0 t.line_size;
      Hashtbl.replace t.cache li b;
      b

exception Power_failure

let burn_fuse t =
  if t.fuse >= 0 then
    if t.fuse = 0 then begin
      t.fuse <- -1;
      raise Power_failure
    end
    else t.fuse <- t.fuse - 1

let charge_load t =
  let s = shard t in
  s.sh_loads <- s.sh_loads + 1;
  s.sh_sim_ns <- s.sh_sim_ns + t.load_ns

let charge_store t =
  burn_fuse t;
  let s = shard t in
  s.sh_stores <- s.sh_stores + 1;
  s.sh_sim_ns <- s.sh_sim_ns + t.store_ns

(* Read [len] bytes at [off] into [dst] at [dpos], honouring dirty lines. *)
let read_into t off len dst dpos =
  let rec go off len dpos =
    if len > 0 then begin
      let li = line_of t off in
      let line_off = off land (t.line_size - 1) in
      let n = min len (t.line_size - line_off) in
      (match Hashtbl.find_opt t.cache li with
      | Some b -> Bytes.blit b line_off dst dpos n
      | None -> Bytes.blit t.media off dst dpos n);
      go (off + n) (len - n) (dpos + n)
    end
  in
  go off len dpos

let write_from t off len src spos =
  let rec go off len spos =
    if len > 0 then begin
      let li = line_of t off in
      let line_off = off land (t.line_size - 1) in
      let n = min len (t.line_size - line_off) in
      let b = dirty_line t li in
      Bytes.blit src spos b line_off n;
      go (off + n) (len - n) (spos + n)
    end
  in
  go off len spos

let get_i64 t off =
  check_range t off 8 "get_i64";
  assert (off land 7 = 0);
  charge_load t;
  trace_load t off 8;
  if not t.persist_enabled then Bytes.get_int64_le t.media off
  else
    let li = line_of t off in
    match Hashtbl.find_opt t.cache li with
    | Some b -> Bytes.get_int64_le b (off land (t.line_size - 1))
    | None -> Bytes.get_int64_le t.media off

let set_i64 t off v =
  check_range t off 8 "set_i64";
  assert (off land 7 = 0);
  charge_store t;
  if not t.persist_enabled then Bytes.set_int64_le t.media off v
  else begin
    let li = line_of t off in
    let b = dirty_line t li in
    Bytes.set_int64_le b (off land (t.line_size - 1)) v
  end;
  trace_store t off 8

let get_int t off = Int64.to_int (get_i64 t off)
let set_int t off v = set_i64 t off (Int64.of_int v)

let get_u8 t off =
  check_range t off 1 "get_u8";
  charge_load t;
  trace_load t off 1;
  if not t.persist_enabled then Char.code (Bytes.get t.media off)
  else
    let li = line_of t off in
    match Hashtbl.find_opt t.cache li with
    | Some b -> Char.code (Bytes.get b (off land (t.line_size - 1)))
    | None -> Char.code (Bytes.get t.media off)

let set_u8 t off v =
  check_range t off 1 "set_u8";
  charge_store t;
  if not t.persist_enabled then Bytes.set t.media off (Char.chr (v land 0xff))
  else begin
    let li = line_of t off in
    let b = dirty_line t li in
    Bytes.set b (off land (t.line_size - 1)) (Char.chr (v land 0xff))
  end;
  trace_store t off 1

let read_into_bytes t off dst dpos len =
  check_range t off len "read_into_bytes";
  if dpos < 0 || dpos + len > Bytes.length dst then
    invalid_arg "Region.read_into_bytes: destination range";
  let s = shard t in
  s.sh_loads <- s.sh_loads + ((len + 7) / 8);
  s.sh_sim_ns <- s.sh_sim_ns + (t.load_ns * ((len + 7) / 8));
  trace_load t off len;
  if not t.persist_enabled then Bytes.blit t.media off dst dpos len
  else read_into t off len dst dpos

let read_bytes t off len =
  let dst = Bytes.create len in
  read_into_bytes t off dst 0 len;
  dst

let write_bytes t off b =
  let len = Bytes.length b in
  check_range t off len "write_bytes";
  burn_fuse t;
  let s = shard t in
  s.sh_stores <- s.sh_stores + ((len + 7) / 8);
  s.sh_sim_ns <- s.sh_sim_ns + (t.store_ns * ((len + 7) / 8));
  if not t.persist_enabled then Bytes.blit b 0 t.media off len
  else write_from t off len b 0;
  trace_store t off len

let read_string t off len = Bytes.unsafe_to_string (read_bytes t off len)
let write_string t off s = write_bytes t off (Bytes.unsafe_of_string s)

let writeback t off len =
  check_range t off len "writeback";
  if len > 0 && t.persist_enabled then begin
    burn_fuse t;
    let first = line_of t off and last = line_of t (off + len - 1) in
    for li = first to last do
      match Hashtbl.find_opt t.cache li with
      | None -> () (* clean line: CLWB is a no-op *)
      | Some b ->
          let s = shard t in
          s.sh_writebacks <- s.sh_writebacks + 1;
          s.sh_sim_ns <- s.sh_sim_ns + t.writeback_ns;
          t.wb_queue <- (li, Bytes.copy b) :: t.wb_queue
    done;
    match t.tracer with None -> () | Some tr -> tr.on_writeback off len
  end

(* Stuck cells wedge at their injected value: any write-back that lands on
   them is immediately re-overridden, like a worn-out NVM cell that no
   longer accepts programming. *)
let reassert_stuck t =
  if Hashtbl.length t.stuck > 0 then
    Hashtbl.iter (fun off v -> Bytes.set t.media off v) t.stuck

let apply_wb t (li, snapshot) =
  Bytes.blit snapshot 0 t.media (li lsl t.line_shift) t.line_size;
  reassert_stuck t

(* Drop a cache entry that no longer differs from media, so [is_durable]
   and crash adversaries only consider genuinely dirty lines.  Only lines
   whose write-back was just applied can have become clean, so [fence]
   checks exactly those. *)
let scrub_line t li =
  match Hashtbl.find_opt t.cache li with
  | None -> ()
  | Some b ->
      let base = li lsl t.line_shift in
      let rec equal i =
        i >= t.line_size
        || (Bytes.get b i = Bytes.get t.media (base + i) && equal (i + 1))
      in
      if equal 0 then Hashtbl.remove t.cache li

let fence t =
  if t.persist_enabled then begin
    burn_fuse t;
    let s = shard t in
    s.sh_fences <- s.sh_fences + 1;
    s.sh_sim_ns <- s.sh_sim_ns + t.fence_ns;
    let applied = List.rev t.wb_queue in
    List.iter (apply_wb t) applied;
    t.wb_queue <- [];
    List.iter (fun (li, _) -> scrub_line t li) applied;
    match t.tracer with None -> () | Some tr -> tr.on_fence ()
  end

let persist t off len =
  writeback t off len;
  fence t

let pending_writebacks t = List.length t.wb_queue

(* The publish-path fence elision: a fence that would drain nothing is
   pure latency (and the sanitizer flags it as redundant), so skip it and
   tally the saving instead.  Centralizing the site keeps the elision
   count and the fence count on the same ledger as the sanitizer hooks. *)
let fence_if_pending t =
  if t.persist_enabled then begin
    if t.wb_queue <> [] then fence t
    else begin
      let s = shard t in
      s.sh_elided_fences <- s.sh_elided_fences + 1
    end
  end

let is_durable t off len =
  check_range t off len "is_durable";
  if len = 0 then true
  else begin
    let first = line_of t off and last = line_of t (off + len - 1) in
    let ok = ref true in
    for li = first to last do
      match Hashtbl.find_opt t.cache li with
      | None -> ()
      | Some b ->
          (* only the intersecting byte span matters *)
          let lo = max off (li lsl t.line_shift) in
          let hi = min (off + len) ((li + 1) lsl t.line_shift) in
          for i = lo to hi - 1 do
            if
              Bytes.get b (i land (t.line_size - 1)) <> Bytes.get t.media i
            then ok := false
          done
    done;
    (* a scheduled-but-unfenced writeback does not make data durable *)
    !ok
  end

type crash_mode =
  | Drop_unfenced
  | Persist_all
  | Adversarial of Util.Prng.t

let crash t mode =
  if not t.persist_enabled then begin
    (* DRAM: power loss takes everything *)
    Bytes.fill t.media 0 (Bytes.length t.media) '\000';
    ignore mode
  end
  else begin
  (match mode with
  | Drop_unfenced -> ()
  | Persist_all ->
      List.iter (apply_wb t) (List.rev t.wb_queue);
      Hashtbl.iter (fun li b -> apply_wb t (li, b)) t.cache
  | Adversarial rng ->
      List.iter
        (fun wb -> if Util.Prng.bool rng then apply_wb t wb)
        (List.rev t.wb_queue);
      let words_per_line = t.line_size / 8 in
      Hashtbl.iter
        (fun li b ->
          for w = 0 to words_per_line - 1 do
            if Util.Prng.bool rng then
              Bytes.blit b (w * 8) t.media ((li lsl t.line_shift) + (w * 8)) 8
          done)
        t.cache)
  end;
  reassert_stuck t;
  t.wb_queue <- [];
  t.fuse <- -1;
  Hashtbl.reset t.cache;
  match t.tracer with
  | None -> ()
  | Some tr ->
      if t.persist_enabled then
        tr.on_crash
          (match mode with
          | Drop_unfenced -> `Drop_unfenced
          | Persist_all -> `Persist_all
          | Adversarial _ -> `Adversarial)

(* -- media-fault injection ------------------------------------------------

   Faults damage the DURABLE image, the state a restart recovers from.
   They mirror the [crash_mode] API: deterministic given a Prng, applied
   explicitly by tests/benchmarks, never spontaneous. Any cache line
   covering the damaged range is evicted so subsequent loads observe the
   fault (as a real machine would after the corrupted line is fetched),
   and pending write-backs for those lines are dropped — the fault models
   damage that survives until something rewrites the cells. *)

type fault =
  | Flip_bit of { off : int; bit : int }
  | Torn_word of { off : int }
  | Stuck_byte of { off : int }
  | Corrupt_range of { off : int; len : int }

let media_faults = Obs.counter "media.faults_injected"

let evict_lines t off len =
  if len > 0 then begin
    let first = line_of t off and last = line_of t (off + len - 1) in
    for li = first to last do
      Hashtbl.remove t.cache li
    done;
    t.wb_queue <-
      List.filter (fun (li, _) -> li < first || li > last) t.wb_queue
  end

let inject_fault t rng fault =
  (match fault with
  | Flip_bit { off; bit } ->
      check_range t off 1 "inject_fault";
      if bit < 0 || bit > 7 then invalid_arg "Region.inject_fault: bit";
      let b = Char.code (Bytes.get t.media off) in
      Bytes.set t.media off (Char.chr (b lxor (1 lsl bit)));
      evict_lines t off 1
  | Torn_word { off } ->
      check_range t off 8 "inject_fault";
      if off land 7 <> 0 then
        invalid_arg "Region.inject_fault: torn word must be 8-aligned";
      (* one half of the word updates, the other is left as garbage *)
      let half = if Util.Prng.bool rng then 0 else 4 in
      for i = 0 to 3 do
        Bytes.set t.media (off + half + i) (Char.chr (Util.Prng.int rng 256))
      done;
      evict_lines t off 8
  | Stuck_byte { off } ->
      check_range t off 1 "inject_fault";
      let v = Char.chr (Util.Prng.int rng 256) in
      Hashtbl.replace t.stuck off v;
      Bytes.set t.media off v;
      evict_lines t off 1
  | Corrupt_range { off; len } ->
      check_range t off len "inject_fault";
      for i = off to off + len - 1 do
        Bytes.set t.media i (Char.chr (Util.Prng.int rng 256))
      done;
      evict_lines t off len);
  t.faults_injected <- t.faults_injected + 1;
  Obs.incr media_faults

(* A random fault inside [lo, hi) — the workhorse of the fuzz suite. *)
let random_fault t rng ~lo ~hi =
  if lo < 0 || hi > Bytes.length t.media || lo >= hi then
    invalid_arg "Region.random_fault: bad range";
  match Util.Prng.int rng 4 with
  | 0 -> Flip_bit { off = Util.Prng.int_in rng lo (hi - 1); bit = Util.Prng.int rng 8 }
  | 1 ->
      let words_lo = (lo + 7) / 8 and words_hi = hi / 8 in
      if words_hi > words_lo then
        Torn_word { off = Util.Prng.int_in rng words_lo (words_hi - 1) * 8 }
      else Flip_bit { off = lo; bit = Util.Prng.int rng 8 }
  | 2 -> Stuck_byte { off = Util.Prng.int_in rng lo (hi - 1) }
  | _ ->
      let len = min (hi - lo) (1 + Util.Prng.int rng 32) in
      Corrupt_range { off = Util.Prng.int_in rng lo (hi - len); len }

let faults_injected t = t.faults_injected

let clear_stuck t = Hashtbl.reset t.stuck

type stats = {
  loads : int;
  stores : int;
  writebacks : int;
  fences : int;
  elided_fences : int;
  sim_ns : int;
}

(* Merge point of the sharded accounting: sound whenever no parallel
   region is in flight (every Par entry point joins before returning). *)
let stats (t : t) =
  let acc =
    {
      loads = 0;
      stores = 0;
      writebacks = 0;
      fences = 0;
      elided_fences = 0;
      sim_ns = 0;
    }
  in
  Array.fold_left
    (fun acc s ->
      {
        loads = acc.loads + s.sh_loads;
        stores = acc.stores + s.sh_stores;
        writebacks = acc.writebacks + s.sh_writebacks;
        fences = acc.fences + s.sh_fences;
        elided_fences = acc.elided_fences + s.sh_elided_fences;
        sim_ns = acc.sim_ns + s.sh_sim_ns;
      })
    acc t.shards

let sim_ns_by_slot (t : t) = Array.map (fun s -> s.sh_sim_ns) t.shards

let traced (t : t) = t.tracer <> None

let reset_stats (t : t) =
  Array.iter
    (fun s ->
      s.sh_loads <- 0;
      s.sh_stores <- 0;
      s.sh_writebacks <- 0;
      s.sh_fences <- 0;
      s.sh_elided_fences <- 0;
      s.sh_sim_ns <- 0)
    t.shards

let arm_crash (t : t) ~after_ops =
  if after_ops < 0 then invalid_arg "Region.arm_crash";
  t.fuse <- after_ops

let disarm_crash (t : t) = t.fuse <- -1

let set_latencies (t : t) ~load_ns ~store_ns ~writeback_ns ~fence_ns =
  t.load_ns <- load_ns;
  t.store_ns <- store_ns;
  t.writeback_ns <- writeback_ns;
  t.fence_ns <- fence_ns

let save_to_file (t : t) path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc t.media)

let load_from_file cfg path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let media = Bytes.create len in
      really_input ic media 0 len;
      let t = create { cfg with size = len } in
      Bytes.blit media 0 t.media 0 len;
      t)

let media_digest ?(exclude = []) (t : t) =
  match exclude with
  | [] -> Digest.to_hex (Digest.bytes t.media)
  | ranges ->
      (* determinism checks exclude intentionally nondeterministic
         durable state (the flight-recorder ring holds wall clocks) *)
      let copy = Bytes.copy t.media in
      List.iter
        (fun (off, len) ->
          if off < 0 || len < 0 || off + len > Bytes.length copy then
            invalid_arg "Region.media_digest: exclude range out of bounds";
          Bytes.fill copy off len '\000')
        ranges;
      Digest.to_hex (Digest.bytes copy)
