(** Simulated byte-addressable non-volatile memory region.

    This module stands in for an NVDIMM mapped into the address space. It
    models the x86 persistency semantics that Hyrise-NV's durability
    protocols are designed against:

    - Stores land in a volatile CPU-cache view; they are {e not} durable.
    - [writeback] (CLWB/CLFLUSHOPT) schedules the cache lines covering a
      byte range for write-back to the persistent media.
    - [fence] (SFENCE) makes all scheduled write-backs durable.
    - 8-byte aligned stores are the atomicity unit: on a crash, any
      un-fenced dirty line may persist partially, but never with a torn
      8-byte word.

    [crash] simulates a power failure: the volatile view is lost and the
    region reverts to what was durable — optionally keeping an adversarial
    subset of un-fenced words, modelling arbitrary cache evictions.

    The region additionally accounts simulated NVM time (loads, stores,
    write-backs, fences at configurable latencies), which experiment E3
    uses to sweep NVM write latency deterministically. *)

type t

type config = {
  size : int;  (** region size in bytes; rounded up to a full line *)
  line_size : int;  (** cache line size in bytes; must be a power of two *)
  load_ns : int;  (** simulated latency per 8-byte load from NVM *)
  store_ns : int;  (** simulated latency per 8-byte store to the cache *)
  writeback_ns : int;  (** simulated latency per line write-back *)
  fence_ns : int;  (** simulated latency per fence *)
}

val default_config : config
(** 64-byte lines, latencies modelling early PCM-like NVM
    (load 90 ns as in the paper's emulation baseline). *)

val config_with_size : int -> config
(** [default_config] with the given size. *)

val create : config -> t
(** Fresh region, zero-filled and durable (as if freshly formatted). *)

val size : t -> int
val line_size : t -> int

(** {1 Loads and stores}

    Offsets are in bytes. 64-bit accessors require 8-byte alignment; this
    is asserted because alignment is what makes them atomic on real
    hardware. *)

val get_i64 : t -> int -> int64
val set_i64 : t -> int -> int64 -> unit

val get_int : t -> int -> int
(** [get_int t off] reads an OCaml int stored by [set_int] (63-bit range). *)

val set_int : t -> int -> int -> unit

val get_u8 : t -> int -> int
val set_u8 : t -> int -> int -> unit

val read_bytes : t -> int -> int -> bytes
(** [read_bytes t off len] copies a byte range out of the volatile view. *)

val read_into_bytes : t -> int -> bytes -> int -> int -> unit
(** [read_into_bytes t off dst dpos len] — [read_bytes] into a caller
    buffer at [dpos], with no allocation. The bulk-decode path of the
    block scan engine: one call covers a whole block, so the per-word
    bookkeeping of [get_i64] (range check, cache-line probe, trace hook)
    is paid once per line instead of twice per row. Load accounting is
    identical to [read_bytes] ([ceil(len/8)] loads). *)

val write_bytes : t -> int -> bytes -> unit
(** [write_bytes t off b] stores a byte range. Not atomic: persistence of
    the range requires [persist], and a crash can tear it at 8-byte
    boundaries. *)

val read_string : t -> int -> int -> string

val write_string : t -> int -> string -> unit

(** {1 Persistence primitives} *)

val writeback : t -> int -> int -> unit
(** [writeback t off len] schedules write-back of every cache line
    intersecting [off, off+len). Durable only after the next [fence]. *)

val fence : t -> unit
(** Make all scheduled write-backs durable, in order. *)

val persist : t -> int -> int -> unit
(** [persist t off len] = [writeback t off len; fence t]. *)

val pending_writebacks : t -> int
(** Number of line write-backs scheduled but not yet made durable by a
    fence. Publish paths use this to elide fences that would drain
    nothing (which the sanitizer otherwise flags as redundant). *)

val fence_if_pending : t -> unit
(** [fence] when write-backs are scheduled; otherwise count an elided
    fence (see {!stats}). No-op with persistence disabled. All publish
    paths elide through this helper so the elision tally shares the
    ledger with the fence/write-back tallies the sanitizer hooks. *)

val set_persist_enabled : t -> bool -> unit
(** When disabled, [writeback]/[fence]/[persist] become free no-ops: the
    region behaves like plain DRAM (a crash loses everything not already
    durable). The volatile and log-based engine modes run the very same
    data structures with persistence off, which is what makes the
    durability-mechanism comparison apples-to-apples. *)

val persist_enabled : t -> bool

val is_durable : t -> int -> int -> bool
(** [is_durable t off len] is [true] iff the volatile view and the durable
    media agree on the whole range — i.e. a crash right now cannot change
    its contents. Test/diagnostic helper; not available on real hardware. *)

(** {1 Crash injection} *)

type crash_mode =
  | Drop_unfenced
      (** Clean power loss: nothing that was not fenced survives. Scheduled
          but un-fenced write-backs are lost too (CLWB completion is only
          guaranteed by the fence). *)
  | Persist_all  (** Every dirty line reaches the media before power dies. *)
  | Adversarial of Util.Prng.t
      (** Each scheduled write-back, and each dirty 8-byte word, persists
          independently with probability 1/2 — models arbitrary cache
          eviction. The worst case crash-consistency must survive. *)

val crash : t -> crash_mode -> unit
(** Apply the crash: resolve un-fenced state per [mode], then discard the
    volatile view. The region remains usable — recovery code reads the
    durable state exactly as a restarted process re-mapping the NVM file
    would. *)

(** {1 Mid-operation failure injection} *)

exception Power_failure
(** Raised by the armed store/write-back/fence that exhausts the budget
    set by [arm_crash]. The raise happens {e before} the operation takes
    effect — the power died first. *)

val arm_crash : t -> after_ops:int -> unit
(** Arm a simulated power failure: after [after_ops] further persistence-
    relevant operations (stores, write-backs, fences), the next one raises
    {!Power_failure}. Callers catch it wherever it surfaces, call [crash],
    and exercise recovery — this is how crash-point fuzzing reaches the
    windows {e inside} multi-step protocols. *)

val disarm_crash : t -> unit

(** {1 Media-fault injection}

    Faults damage the {e durable} image — the state a restart recovers
    from — mirroring the {!crash_mode} API: deterministic given a
    {!Util.Prng.t}, applied explicitly, never spontaneous. Cache lines
    covering the damaged range are evicted (loads observe the fault) and
    their pending write-backs dropped. Each injection bumps the
    [media.faults_injected] counter. *)

type fault =
  | Flip_bit of { off : int; bit : int }
      (** Flip bit [bit] (0–7) of the durable byte at [off]. *)
  | Torn_word of { off : int }
      (** Replace one random half of the 8-aligned word at [off] with
          garbage — a torn 8-byte update frozen mid-flight. *)
  | Stuck_byte of { off : int }
      (** Wedge the byte at [off] at a random value. Subsequent
          write-backs cannot repair it (a worn-out cell). *)
  | Corrupt_range of { off : int; len : int }
      (** Randomize [len] durable bytes from [off] — a dead line or
          uncorrectable multi-byte error. *)

val inject_fault : t -> Util.Prng.t -> fault -> unit
(** Apply one fault. @raise Invalid_argument on out-of-range offsets. *)

val random_fault : t -> Util.Prng.t -> lo:int -> hi:int -> fault
(** Draw a random fault whose damage lies inside [\[lo, hi)]. *)

val faults_injected : t -> int
(** Number of faults injected into this region so far. *)

val clear_stuck : t -> unit
(** Forget stuck cells (they stop re-asserting after write-backs); the
    damage already in the media remains. *)

(** {1 Tracing and persist-order annotations}

    A tracer observes every persistence-relevant operation — the hook the
    {!Sanitizer} uses to maintain its shadow state. With no tracer
    installed (the default) every hook below costs one physical-equality
    test; the simulated-time accounting is never affected.

    The annotation entry points ([annotate_commit_point],
    [expect_ordered], labels) are called from inside the durable data
    structures at their protocol commit points. They are no-ops without a
    tracer, so annotated production code pays nothing. All tracer events
    are suppressed while persistence is disabled (DRAM mode has no
    ordering protocol to check).

    Hooks fire on whatever domain performs the operation: under the
    [Par] pool a worker lane's events arrive on that worker's
    {!Util.Domain_slot}. The {!Sanitizer} handles this by buffering each
    lane's events privately and merging them at the pool's join barrier
    (PROTOCOLS.md §10); a custom tracer must be similarly slot-aware or
    confine itself to serial runs. *)

type crash_kind = [ `Drop_unfenced | `Persist_all | `Adversarial ]

type tracer = {
  on_store : int -> int -> unit;  (** offset, length — after the store *)
  on_load : int -> int -> unit;
  on_writeback : int -> int -> unit;
      (** requested byte range; line expansion is the consumer's business *)
  on_fence : unit -> unit;
  on_crash : crash_kind -> unit;
  on_commit_point : label:string -> (int * int) list -> unit;
  on_expect_ordered :
    label:string -> before:(int * int) list -> after:int -> unit;
  on_label : [ `Push of string | `Pop ] -> unit;
}

val set_tracer : t -> tracer option -> unit

val traced : t -> bool
(** Whether a tracer is attached. Purely informational: traced runs fan
    out across the pool like untraced ones — parallel call sites must
    {e not} serialize on this (the [@sanitize] lint enforces it), since
    the sanitizer merges per-lane traces at every join barrier
    (PROTOCOLS.md §10). *)

val annotate_commit_point : t -> label:string -> (int * int) list -> unit
(** Declare a protocol commit point: every word of the given byte ranges
    must be durable {e right now}. The empty list asserts the strongest
    claim — {e no} word anywhere in the region is dirty or awaiting a
    fence (used at the MVCC commit point and the merge publication). *)

val expect_ordered :
  t -> label:string -> before:(int * int) list -> after:int -> unit
(** Declare a publish ordering: the next store to the 8-byte word at
    [after] (the commit variable) requires every word of [before] to be
    durable at the instant of that store — under adversarial eviction a
    dirty commit variable may persist at any moment, so scheduling-order
    alone is not enough. [before = []] demands global durability. The
    watch is one-shot and cleared by a crash. *)

val push_label : t -> string -> unit
(** Push a call-site label onto the tracer's provenance stack. *)

val pop_label : t -> unit

val with_label : t -> string -> (unit -> 'a) -> 'a
(** [with_label t l f] runs [f] with [l] pushed; the label is popped even
    if [f] raises (e.g. {!Power_failure}). *)

(** {1 Statistics and simulated time} *)

type stats = {
  loads : int;  (** 8-byte load operations *)
  stores : int;  (** 8-byte store operations *)
  writebacks : int;  (** line write-backs scheduled *)
  fences : int;
  elided_fences : int;
      (** fences skipped by {!fence_if_pending} because nothing was
          scheduled — the saving the batched publish protocol earns *)
  sim_ns : int;  (** accumulated simulated NVM time *)
}

val stats : t -> stats
(** Sum over the per-domain accounting shards. Counters are sharded by
    {!Util.Domain_slot} so parallel scans tally without races; sound
    whenever no parallel region is in flight (every pool entry point
    joins before returning), and exact regardless of how chunks were
    interleaved across domains. *)

val reset_stats : t -> unit

val sim_ns_by_slot : t -> int array
(** Per-domain-slot snapshot of accumulated simulated NVM time. The
    bench takes deltas of this across a parallel section: the maximum
    per-slot delta is the device-time critical path, which is how E8
    reports speedup faithfully even on core-limited hosts (the wall
    clock cannot shrink there, but the per-lane device ledger does). *)

val set_latencies : t -> load_ns:int -> store_ns:int -> writeback_ns:int -> fence_ns:int -> unit
(** Retune the cost model in place (used by the latency sweep). *)

(** {1 Persistence across processes} *)

val save_to_file : t -> string -> unit
(** Write the durable media image to a file (the volatile view is NOT
    included, exactly as a crash would lose it). *)

val load_from_file : config -> string -> t
(** Re-map a saved image. [config.size] is overridden by the file size. *)

val media_digest : ?exclude:(int * int) list -> t -> string
(** MD5 of the durable image; lets tests assert "nothing changed".
    [exclude] ranges ([off, len]) are zeroed in the hashed copy — for
    determinism checks that must skip intentionally nondeterministic
    durable state such as the flight-recorder ring (wall clocks).
    Raises [Invalid_argument] on an out-of-bounds range. *)
