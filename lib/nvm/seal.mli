(** Self-checking 64-bit metadata words: low 48 bits value, high 16 bits a
    truncated CRC32 tag. A sealed word is still written with one 8-byte
    aligned store, so every existing publish/fence protocol is unchanged;
    a media fault anywhere in the word makes [unseal] fail instead of
    feeding garbage to recovery. [seal 0] is nonzero, so zeroed media
    never verifies. *)

exception Corrupt of { what : string; off : int; raw : int64 }

val max_value : int
(** Largest sealable value, [2^48 - 1]. Region offsets, lengths and
    commit ids all fit. *)

val seal : int -> int64
(** @raise Invalid_argument if the value is outside [0, max_value]. *)

val unseal : int64 -> int option
(** [None] if the tag does not match (no metric side effect — use for
    probing during scrub walks). *)

val unseal_exn : what:string -> off:int -> int64 -> int
(** Unseal or raise {!Corrupt}, incrementing the [media.crc_failures]
    counter. [what] names the word for the report; [off] is its region
    offset. *)

val check : int64 -> bool
(** True iff the word unseals. No metric side effect. *)

val count_failure : unit -> unit
(** Bump [media.crc_failures] — for payload-checksum verifiers outside
    this module that detect corruption by other means. *)

val read : Region.t -> what:string -> int -> int
(** [read r ~what off] loads and unseals the word at [off];
    {!unseal_exn} semantics. *)

val write : Region.t -> int -> int -> unit
(** [write r off v] stores [seal v] at [off]. Not persisted — callers
    order and fence exactly as they would a raw store. *)
