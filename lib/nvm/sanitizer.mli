(** Persist-order sanitizer: a pmemcheck-style crash-consistency checker.

    Attaching a sanitizer to a {!Region} installs a tracer that shadows
    every 8-byte word through

    {v Clean --store--> Dirty --writeback--> Scheduled --fence--> Clean v}

    exactly mirroring the region's volatile-cache / write-back-queue
    semantics (a store to a Scheduled word returns it to Dirty, because
    the queued line snapshot predates the new value). On top of the
    shadow state it checks the protocol annotations the durable data
    structures declare ({!Region.annotate_commit_point},
    {!Region.expect_ordered}) and flags:

    - {b unflushed-at-commit} (correctness): a word inside a declared
      commit point's ranges is Dirty or merely Scheduled.
    - {b unordered-publish} (correctness): a commit variable is stored
      while a word it guards is not yet durable — under adversarial
      eviction the commit variable may persist first.
    - {b redundant-writeback} / {b redundant-fence} (perf): a writeback
      that schedules nothing new, or a fence that drains nothing. Counted
      per call-site label; each one is simulated-time measurable.
    - {b recovery-read-lost} (info): post-crash code reads a word whose
      last store never persisted — the value is indeterminate, which a
      recovery protocol must be deliberately tolerating.

    {b Concurrency.} Traced regions run the parallel engine like any
    other (PROTOCOLS.md §10): during a [Par] pool job each lane buffers
    its Region events privately per {!Util.Domain_slot}, and the join
    barrier merges them in ascending chunk order — the serial execution
    order — through the same shadow machine, so every check above fires
    unchanged under parallel runs. A FastTrack-style happens-before
    checker rides the merge, with per-lane vector clocks advanced at the
    pool's sync edges (dispatch, task start, chunk completion, the
    join's pool-mutex handoff), and flags:

    - {b racy-store} / {b racy-load} (correctness): two lanes touch the
      same 8-byte word, at least one storing, with no happens-before
      edge between the accesses.
    - {b cross-lane-publish} (correctness): a commit variable is stored
      on one lane while a word it guards is still non-durable from a
      store on another lane.

    The checker is purely observational: it never perturbs region
    contents, simulated time, or crash behaviour, so any run that is
    correct under the sanitizer is bit-identical to the same run without
    it. *)

type t

type severity = Correctness | Perf | Info

type kind =
  | Unflushed_at_commit
  | Unordered_publish
  | Redundant_writeback
  | Redundant_fence
  | Recovery_read_lost
  | Racy_store
  | Racy_load
  | Cross_lane_publish

type violation = {
  v_kind : kind;
  v_severity : severity;
  v_label : string;  (** annotation label or call-site label stack *)
  v_offset : int;  (** offending word's byte offset in the region *)
  v_detail : string;
  v_backtrace : string list;  (** recent operations, newest first *)
}

type counters = {
  mutable c_stores : int;
  mutable c_loads : int;
  mutable c_writebacks : int;
  mutable c_fences : int;
  mutable c_crashes : int;
  mutable c_commit_points : int;
  mutable c_watches_set : int;
  mutable c_watches_fired : int;
  mutable c_par_jobs : int;
      (** pool jobs whose per-lane traces were merged at a join *)
}

val attach : Region.t -> t
(** Create a sanitizer and install it as the region's tracer. The shadow
    table starts empty, i.e. the region is assumed all-durable — attach
    right after {!Region.create} or a recovery-completing fence. *)

val detach : t -> unit
(** Uninstall the tracer. The sanitizer's accumulated report remains
    readable. *)

val region : t -> Region.t

val violations : t -> violation list
(** Stored violations, oldest first (storage is capped; totals in
    {!count} and {!tallies} are exact). *)

val count : t -> severity -> int
val correctness_violations : t -> int

val tallies : t -> (string * int) list
(** Exact per-["kind@label"] counts, most frequent first. *)

val counters : t -> counters

val clear : t -> unit
(** Forget accumulated violations, tallies and lost-word marks. The
    shadow word states are kept — they mirror region reality. *)

val word_state : t -> int -> [ `Clean | `Dirty | `Scheduled ]
(** Shadow state of the word containing the given byte offset. *)

val tracked_words : t -> int
(** Number of words currently not durable (Dirty or Scheduled). *)

val in_flight_words : t -> (int * [ `Dirty | `Scheduled ]) list
(** The full in-flight frontier, sorted by word offset — the merged
    shadow state a parallel run must share with its serial twin (the
    differential tests compare this across lane counts). *)

val note_external : t -> string -> unit
(** Record an out-of-region protocol step (e.g. a checkpoint file fsync)
    into the operation backtrace ring. Slot-aware: a call from a pool
    worker lands in that lane's private trace and reaches the ring at
    the next join instead of racing it. *)

val kind_name : kind -> string

val report : t -> string
(** Human-readable multi-line report: event counts, violation totals,
    stored violations with backtraces, and the per-call-site tally. *)

val report_json : t -> Obs.Json.t
(** The same report as a JSON object ([counters] / [violations] /
    [tallies] / [in_flight]) — the per-phase payload of
    [hyrise_nv sanitize --json]. *)
