(** Multi-version concurrency control, Hyrise-style insert-only.

    Every write creates a new physical row version; an update additionally
    invalidates the old version by setting its end-CID. Visibility of a
    row version to a transaction with snapshot [s] is
    [begin <= s < end], plus own-writes (a transaction sees its not yet
    committed inserts and does not see rows it has itself invalidated).

    Durability protocol (the paper's core claim): all version timestamps
    live on NVM; at commit the manager stamps begin/end CIDs, publishes the
    touched tables, and then calls the engine's [persist_commit] hook —
    whose single durable word (the engine's last-CID) is the atomic commit
    point. Recovery rolls every CID beyond the durable last-CID back, so a
    transaction is either entirely visible or entirely gone.

    Write conflicts follow first-writer-wins: attempting to invalidate a
    row version that another in-flight transaction has claimed, or that a
    transaction committed after our snapshot already invalidated, raises
    {!Write_conflict}; the caller is expected to abort. *)

type manager
type txn

exception Write_conflict of string
exception Not_active of string

exception Staged_conflict of string
(** Lane-phase validation failure of a pipelined transaction (see
    {!begin_staged}): not a transaction outcome — the seal re-executes
    the transaction serially, so no conflict/abort tally moves. Raised
    out of [insert]/[update]/[delete] on a staged transaction only. *)

(** Commit/abort notifications, used by the engine to drive durability
    (NVM last-CID persist, or WAL records). *)
type event =
  | Ev_insert of { tid : int; table : Storage.Table.t; values : Storage.Value.t array }
  | Ev_commit of {
      tid : int;
      cid : Storage.Cid.t;
      invalidated : (Storage.Table.t * int) list;
    }
  | Ev_abort of { tid : int }

(** How commit publishes the touched tables' vector lengths — same crash
    semantics, different fence counts (ablation A2 measures the gap):
    [`Batched] (default) stages all secondary lengths, fences once, stages
    all begin lengths, fences again; [`Per_table] fences per table;
    [`Per_vector] is the naive two-fences-per-vector protocol. *)
type publish_mode = [ `Batched | `Per_table | `Per_vector ]

val create_manager :
  ?observer:(event -> unit) ->
  ?publish_mode:publish_mode ->
  ?write_gate:(Storage.Table.t -> int -> unit) ->
  persist_commit:(Storage.Cid.t -> unit) ->
  last_cid:Storage.Cid.t ->
  unit ->
  manager
(** [persist_commit cid] must make [cid] the durable last-CID; it is the
    commit point. [last_cid] seeds the CID counter (recovery passes the
    recovered value). [write_gate table row] runs before a serial claim
    touches [row] — the serve-while-salvaging engine uses it to restore a
    quarantined segment before any write lands on it (default no-op). *)

val last_cid : manager -> Storage.Cid.t
val active_count : manager -> int

val begin_txn : manager -> txn
val tid : txn -> int
val snapshot : txn -> Storage.Cid.t

val is_active : txn -> bool

val row_visible : txn -> Storage.Table.t -> int -> bool
(** MVCC visibility including own-writes. *)

val read_table : txn -> Storage.Table.t -> unit
val read_row : txn -> Storage.Table.t -> int -> unit
val read_point : txn -> Storage.Table.t -> col:int -> Storage.Value.t -> unit
(** Read-set recording for the writer pipeline — no-ops on a normal
    transaction. The engine's read paths call these {e before} looking
    at the data: [read_point] for an index probe (column index + probed
    value, so zero-hit lookups still record the phantom predicate),
    [read_row] for a direct physical-row read, [read_table] for scans
    and aggregates (conservative: any write to the table conflicts). The
    seal re-executes a staged transaction whose predicates overlap a
    row an epoch peer wrote — see {!seal_check}. *)

val visible_block :
  txn ->
  Storage.Table.t ->
  base:int ->
  ?begin_cids:int array ->
  end_cids:int array ->
  int array ->
  int ->
  int
(** [visible_block t table ~base ?begin_cids ~end_cids sel n] filters the
    first [n] entries of selection vector [sel] (block-local positions;
    position [p] is global row [base + p], and indexes [begin_cids] /
    [end_cids]) down to the MVCC-visible ones, compacting [sel] in place
    and returning the surviving count. CID arrays use the saturated
    native-int representation of {!Storage.Table}'s block accessors
    ([Cid.infinity] reads as [max_int]), so the no-own-writes fast path is
    pure unboxed compares. Omitting [begin_cids] means every row's
    begin-CID is {!Storage.Cid.zero} (the main partition). Decides
    from the bulk-read CID arrays alone unless the transaction has own
    writes, in which case each row consults the own-write sets first —
    bitwise the same answers as {!row_visible}. *)

val insert : manager -> txn -> Storage.Table.t -> Storage.Value.t array -> int
(** Stage a new row version; returns its physical row id (invisible to
    everyone else until commit). *)

val update :
  manager -> txn -> Storage.Table.t -> int -> Storage.Value.t array -> int
(** Invalidate the given (visible) version and stage its replacement.
    Raises {!Write_conflict} if the version is claimed or already
    invalidated. Returns the new version's row id. *)

val delete : manager -> txn -> Storage.Table.t -> int -> unit
(** Invalidate without replacement. Same conflict rules as [update]. *)

val commit : manager -> txn -> Storage.Cid.t
(** Stamp, publish, persist. Returns the commit CID (read-only
    transactions return their snapshot and consume no CID). *)

val abort : manager -> txn -> unit
(** Release claims. Staged row versions stay physically present but dead
    (begin-CID forever infinity) until a merge compacts them — the
    insert-only discipline. *)

(** {1 Writer pipeline: epoch-batched group commit}

    The multi-lane commit protocol (docs/PROTOCOLS.md §13). An {e epoch}
    batches transactions in three phases:

    + {b lane staging} — each transaction begins via {!begin_staged} and
      runs its body on a pool lane: inserts buffer lane-locally (schema
      validated, dictionary probed — pure Region reads), claims validate
      read-only against the frozen lock table and record privately, and
      every read records a predicate ({!read_point} / {!read_row} /
      {!read_table}). Nothing stores to NVM and nothing shared-mutable
      is written, so lanes race with nobody.
    + {b serial seal} — in submission order: {!seal_check} re-validates
      each transaction's read predicates (and claims) against what the
      epoch peers sealed before it wrote; on success {!commit_grouped}
      appends the staged inserts (in exactly serial order) and stamps
      CIDs; on failure {!reexec_reset} refreshes the snapshot and the
      caller re-runs the transaction body inline (now un-staged), then
      seals it the same way — observing exactly what a serial execution
      at its position would observe.
    + {b group commit} — {!finish_epoch} publishes every table the batch
      touched and calls [persist_commit] {e once}: a single durable
      last-CID write + fence covers the whole epoch. Until then every
      CID of the epoch is beyond the durable last-CID, so a crash
      anywhere inside the epoch rolls the entire batch back —
      all-or-nothing per epoch.

    Per-transaction CID stamping is preserved verbatim, so snapshots,
    conflict rules and recovery are byte-compatible with the serial
    path. *)

type epoch

val begin_epoch : ?prev:epoch -> manager -> epoch
(** [?prev] chains epochs for double-buffered staging (the pipelined
    driver stages epoch [k+1]'s transactions while epoch [k] is still
    unsealed): the new epoch inherits [prev]'s write log, so
    {!seal_check} also tests read predicates against everything the
    previous epoch wrote — exactly the writes that postdate those
    transactions' snapshots. *)

val begin_staged : manager -> txn
(** Begin a transaction in lane-staging mode (counted in
    [txn.lane.staged]). It must finish via {!commit_grouped} (directly,
    or after {!reexec_reset}) or {!abort}; {!commit} rejects it. *)

val is_staged : txn -> bool

val seal_check : manager -> epoch -> txn -> bool
(** Serial section only: is the lane execution still serially valid —
    no read predicate overlapping a row the epoch peers sealed so far
    (or, when the epoch was chained with [begin_epoch ~prev], the
    previous epoch's transactions) have written (appended or
    end-stamped), and every claim still claimable? [false] means the transaction must be re-executed
    ({!reexec_reset}) — or aborted. Point predicates are checked at row
    granularity (one cached column decode per written row), so disjoint
    keys of the same table never force a re-execution. *)

val reexec_reset : manager -> txn -> unit
(** Serial section only: clear all staged/recorded effects, leave
    staging mode and refresh the snapshot to the manager's current
    last-CID — the re-execution then observes exactly the state a serial
    engine would have shown this transaction. Counted in
    [txn.lane.reexec]; the transaction keeps its tid (no [txn.begin]
    drift vs the serial path). *)

val commit_grouped : manager -> epoch -> txn -> Storage.Cid.t
(** Serial section only: append staged inserts, stamp CIDs, release
    claims — everything {!commit} does {e except} publication and the
    durable persist, which are deferred to {!finish_epoch}. The commit
    is not durable until then. *)

val finish_epoch : manager -> epoch -> unit
(** Publish every table the epoch touched (same two-fence batched
    protocol as a serial commit) and persist the last-CID once for the
    whole batch; then emit the deferred per-transaction commit
    annotations and the [group-commit] flight-recorder event. Bumps
    [commit.epoch.sealed] / [commit.epoch.txns]. *)

val epoch_txns : epoch -> int
(** Write transactions sealed into the epoch so far. *)
