(** Multi-version concurrency control, Hyrise-style insert-only.

    Every write creates a new physical row version; an update additionally
    invalidates the old version by setting its end-CID. Visibility of a
    row version to a transaction with snapshot [s] is
    [begin <= s < end], plus own-writes (a transaction sees its not yet
    committed inserts and does not see rows it has itself invalidated).

    Durability protocol (the paper's core claim): all version timestamps
    live on NVM; at commit the manager stamps begin/end CIDs, publishes the
    touched tables, and then calls the engine's [persist_commit] hook —
    whose single durable word (the engine's last-CID) is the atomic commit
    point. Recovery rolls every CID beyond the durable last-CID back, so a
    transaction is either entirely visible or entirely gone.

    Write conflicts follow first-writer-wins: attempting to invalidate a
    row version that another in-flight transaction has claimed, or that a
    transaction committed after our snapshot already invalidated, raises
    {!Write_conflict}; the caller is expected to abort. *)

type manager
type txn

exception Write_conflict of string
exception Not_active of string

(** Commit/abort notifications, used by the engine to drive durability
    (NVM last-CID persist, or WAL records). *)
type event =
  | Ev_insert of { tid : int; table : Storage.Table.t; values : Storage.Value.t array }
  | Ev_commit of {
      tid : int;
      cid : Storage.Cid.t;
      invalidated : (Storage.Table.t * int) list;
    }
  | Ev_abort of { tid : int }

(** How commit publishes the touched tables' vector lengths — same crash
    semantics, different fence counts (ablation A2 measures the gap):
    [`Batched] (default) stages all secondary lengths, fences once, stages
    all begin lengths, fences again; [`Per_table] fences per table;
    [`Per_vector] is the naive two-fences-per-vector protocol. *)
type publish_mode = [ `Batched | `Per_table | `Per_vector ]

val create_manager :
  ?observer:(event -> unit) ->
  ?publish_mode:publish_mode ->
  persist_commit:(Storage.Cid.t -> unit) ->
  last_cid:Storage.Cid.t ->
  unit ->
  manager
(** [persist_commit cid] must make [cid] the durable last-CID; it is the
    commit point. [last_cid] seeds the CID counter (recovery passes the
    recovered value). *)

val last_cid : manager -> Storage.Cid.t
val active_count : manager -> int

val begin_txn : manager -> txn
val tid : txn -> int
val snapshot : txn -> Storage.Cid.t

val is_active : txn -> bool

val row_visible : txn -> Storage.Table.t -> int -> bool
(** MVCC visibility including own-writes. *)

val visible_block :
  txn ->
  Storage.Table.t ->
  base:int ->
  ?begin_cids:int array ->
  end_cids:int array ->
  int array ->
  int ->
  int
(** [visible_block t table ~base ?begin_cids ~end_cids sel n] filters the
    first [n] entries of selection vector [sel] (block-local positions;
    position [p] is global row [base + p], and indexes [begin_cids] /
    [end_cids]) down to the MVCC-visible ones, compacting [sel] in place
    and returning the surviving count. CID arrays use the saturated
    native-int representation of {!Storage.Table}'s block accessors
    ([Cid.infinity] reads as [max_int]), so the no-own-writes fast path is
    pure unboxed compares. Omitting [begin_cids] means every row's
    begin-CID is {!Storage.Cid.zero} (the main partition). Decides
    from the bulk-read CID arrays alone unless the transaction has own
    writes, in which case each row consults the own-write sets first —
    bitwise the same answers as {!row_visible}. *)

val insert : manager -> txn -> Storage.Table.t -> Storage.Value.t array -> int
(** Stage a new row version; returns its physical row id (invisible to
    everyone else until commit). *)

val update :
  manager -> txn -> Storage.Table.t -> int -> Storage.Value.t array -> int
(** Invalidate the given (visible) version and stage its replacement.
    Raises {!Write_conflict} if the version is claimed or already
    invalidated. Returns the new version's row id. *)

val delete : manager -> txn -> Storage.Table.t -> int -> unit
(** Invalidate without replacement. Same conflict rules as [update]. *)

val commit : manager -> txn -> Storage.Cid.t
(** Stamp, publish, persist. Returns the commit CID (read-only
    transactions return their snapshot and consume no CID). *)

val abort : manager -> txn -> unit
(** Release claims. Staged row versions stay physically present but dead
    (begin-CID forever infinity) until a merge compacts them — the
    insert-only discipline. *)
