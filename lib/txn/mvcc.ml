module Table = Storage.Table
module Cid = Storage.Cid

exception Write_conflict of string
exception Not_active of string
exception Staged_conflict of string

(* Transaction-outcome tallies in the process-wide metrics registry.
   Counter bumps are single [ref] increments — always on. *)
let c_begin = Obs.counter "txn.begin"
let c_commit = Obs.counter "txn.commit"
let c_commit_readonly = Obs.counter "txn.commit_readonly"
let c_abort = Obs.counter "txn.abort"
let c_conflict = Obs.counter "txn.conflict"

(* Writer-pipeline tallies: staged begins, seal-time re-executions and
   group-commit epochs (docs/PROTOCOLS.md §13). *)
let c_staged = Obs.counter "txn.lane.staged"
let c_reexec = Obs.counter "txn.lane.reexec"
let c_epoch_sealed = Obs.counter "commit.epoch.sealed"
let c_epoch_txns = Obs.counter "commit.epoch.txns"

type event =
  | Ev_insert of { tid : int; table : Table.t; values : Storage.Value.t array }
  | Ev_commit of {
      tid : int;
      cid : Cid.t;
      invalidated : (Table.t * int) list;
    }
  | Ev_abort of { tid : int }

type state = Active | Committed | Aborted

(* rows are identified volatile-side by (table ctrl offset, row id) *)
type rowkey = int * int

(* Lane-local staging buffer of a pipelined transaction: inserts are
   recorded volatile-side (values plus the dictionary probe results),
   with zero NVM stores and zero writes to any manager-shared structure —
   the whole point of running the staging phase on pool lanes. *)
(* What a staged transaction observed, at the granularity the engine's
   read paths naturally offer. Point predicates (index lookups) carry
   the probed column and value, so two transactions touching different
   keys of the same table never invalidate each other; whole-table reads
   (scans, aggregates) are conservative. The seal checks these against
   the epoch's write log: any overlap means the lane's snapshot may not
   match what a serial execution would have observed, and the
   transaction re-executes. *)
type read_pred =
  | R_table of Table.t
  | R_row of Table.t * int
  | R_point of Table.t * int * Storage.Value.t (* column index, probed value *)

type staged = {
  mutable st_reads : read_pred list;
  mutable st_inserts :
    (Table.t * Storage.Value.t array * Table.dict_probe array) list;
      (* reversed order of insertion *)
  st_counts : (int, int) Hashtbl.t; (* table handle -> staged insert count *)
}

type txn = {
  tid : int;
  mutable snapshot : Cid.t; (* refreshed by [reexec_reset] only *)
  mutable state : state;
  mutable staged : staged option; (* Some = pipelined staging mode *)
  mutable inserted : (Table.t * int) list; (* reversed order of insertion *)
  inserted_set : (rowkey, unit) Hashtbl.t;
  mutable invalidated : (Table.t * int) list;
  invalidated_set : (rowkey, unit) Hashtbl.t;
}

type publish_mode = [ `Batched | `Per_table | `Per_vector ]

type manager = {
  mutable last : Cid.t;
  mutable next_tid : int;
  observer : event -> unit;
  publish_mode : publish_mode;
  persist_commit : Cid.t -> unit;
  write_gate : Table.t -> int -> unit;
      (* serve-while-salvaging hook: called before a serial claim touches
         a row, so a write landing on a quarantined segment restores it
         first (restore-then-apply; the engine queues the repair against
         the salvage log). Runs on the calling domain only — staged
         (lane-side) claims are pre-gated by the engine wrapper, since
         worker lanes must not write NVM. *)
  locks : (rowkey, int) Hashtbl.t; (* row claims: first writer wins *)
  active : (int, txn) Hashtbl.t;
}

let create_manager ?(observer = fun _ -> ()) ?(publish_mode = `Batched)
    ?(write_gate = fun _ _ -> ()) ~persist_commit ~last_cid () =
  {
    last = last_cid;
    next_tid = 1;
    observer;
    publish_mode;
    persist_commit;
    write_gate;
    locks = Hashtbl.create 64;
    active = Hashtbl.create 16;
  }

let last_cid m = m.last
let active_count m = Hashtbl.length m.active

let begin_txn m =
  let t =
    {
      tid = m.next_tid;
      snapshot = m.last;
      state = Active;
      staged = None;
      inserted = [];
      inserted_set = Hashtbl.create 8;
      invalidated = [];
      invalidated_set = Hashtbl.create 8;
    }
  in
  m.next_tid <- m.next_tid + 1;
  Hashtbl.replace m.active t.tid t;
  Obs.incr c_begin;
  Obs.Blackbox.emit ~arg:t.tid Obs.Event.Txn_begin;
  t

let tid t = t.tid
let snapshot t = t.snapshot
let is_active t = t.state = Active

let check_active t fn =
  if t.state <> Active then
    raise (Not_active (Printf.sprintf "Mvcc.%s: txn %d is finished" fn t.tid))

let key table row = (Table.handle table, row)

(* -- staged read-set recording --

   Called by the engine's read paths. No-ops outside staged mode, so the
   serial path pays one branch per read call. Dedup keeps the list to a
   handful of entries per transaction (one per distinct query, not per
   row). *)

let pred_mem p preds =
  List.exists
    (fun q ->
      match (p, q) with
      | R_table a, R_table b -> a == b
      | R_row (a, r1), R_row (b, r2) -> a == b && r1 = r2
      | R_point (a, c1, v1), R_point (b, c2, v2) ->
          a == b && c1 = c2 && Storage.Value.equal v1 v2
      | _ -> false)
    preds

let note_read t p =
  match t.staged with
  | None -> ()
  | Some st ->
      if not (pred_mem p st.st_reads) then st.st_reads <- p :: st.st_reads

let read_table t table = note_read t (R_table table)
let read_row t table row = note_read t (R_row (table, row))
let read_point t table ~col value = note_read t (R_point (table, col, value))

let row_visible t table row =
  let k = key table row in
  if Hashtbl.mem t.invalidated_set k then false
  else if Hashtbl.mem t.inserted_set k then true
  else
    Cid.visible ~begin_cid:(Table.begin_cid table row)
      ~end_cid:(Table.end_cid table row) ~snapshot:t.snapshot

(* Batched visibility for the block scan engine: one pass over bulk-read
   CID arrays (saturated native ints — see Table's block accessors),
   compacting the selection vector in place. The common case — a
   transaction with no own writes — is pure unboxed integer compares; the
   own-write path preserves [row_visible]'s exact ordering (invalidated
   shadows inserted shadows CIDs). *)
let visible_block t table ~base ?begin_cids ~end_cids sel n =
  (* snapshots are committed CIDs, far below the 2^62 saturation line *)
  let snap = Int64.to_int t.snapshot in
  let own_writes =
    Hashtbl.length t.inserted_set > 0 || Hashtbl.length t.invalidated_set > 0
  in
  let m = ref 0 in
  if not own_writes then begin
    match begin_cids with
    | None ->
        (* main partition: begin is implicitly Cid.zero <= any snapshot *)
        for k = 0 to n - 1 do
          let p = sel.(k) in
          sel.(!m) <- p;
          m := !m + Bool.to_int (snap < end_cids.(p))
        done
    | Some begins ->
        for k = 0 to n - 1 do
          let p = sel.(k) in
          sel.(!m) <- p;
          m := !m + Bool.to_int (begins.(p) <= snap && snap < end_cids.(p))
        done
  end
  else begin
    let h = Table.handle table in
    for k = 0 to n - 1 do
      let p = sel.(k) in
      let rk = (h, base + p) in
      let vis =
        if Hashtbl.mem t.invalidated_set rk then false
        else if Hashtbl.mem t.inserted_set rk then true
        else
          let b = match begin_cids with None -> 0 | Some a -> a.(p) in
          b <= snap && snap < end_cids.(p)
      in
      sel.(!m) <- p;
      if vis then incr m
    done
  end;
  !m

let insert m t table values =
  check_active t "insert";
  match t.staged with
  | Some st ->
      (* lane phase: schema validation + dictionary probe are pure Region
         reads; the append itself is deferred to the serial seal. The
         predicted row id assumes every earlier staged insert of this
         transaction lands — callers must not read or claim it before
         commit (our workload drivers never do). *)
      let vids = Table.stage_probe table values in
      let h = Table.handle table in
      let n = Option.value ~default:0 (Hashtbl.find_opt st.st_counts h) in
      Hashtbl.replace st.st_counts h (n + 1);
      st.st_inserts <- (table, values, vids) :: st.st_inserts;
      Table.row_count table + n
  | None ->
      let row = Table.append_row table values in
      let k = key table row in
      Hashtbl.replace m.locks k t.tid;
      t.inserted <- (table, row) :: t.inserted;
      Hashtbl.replace t.inserted_set k ();
      m.observer (Ev_insert { tid = t.tid; table; values });
      row

let conflict fmt =
  Printf.ksprintf
    (fun msg ->
      Obs.incr c_conflict;
      Obs.Blackbox.emit Obs.Event.Txn_conflict;
      raise (Write_conflict msg))
    fmt

(* A staged-phase validation failure is not a transaction outcome: the
   seal re-executes the transaction serially against a fresh snapshot
   (which reproduces exactly what the serial path would have seen), so no
   conflict/abort tally moves and no flight-recorder event is emitted —
   only [txn.lane.reexec] counts the retry. *)
let staged_conflict fmt =
  Printf.ksprintf (fun msg -> raise (Staged_conflict msg)) fmt

let claim m t table row =
  check_active t "claim";
  let k = key table row in
  match t.staged with
  | Some _ ->
      (* lane phase: validate read-only — no lock-table write (shared
         across lanes), no NVM store. The claim is recorded privately and
         re-validated by [seal_check] in the serial section. *)
      (match Hashtbl.find_opt m.locks k with
      | Some owner when owner <> t.tid ->
          staged_conflict "row %d of %s claimed by txn %d" row
            (Table.name table) owner
      | _ -> ());
      if not (row_visible t table row) then
        staged_conflict "row %d of %s is not visible to txn %d" row
          (Table.name table) t.tid;
      if Table.end_cid table row <> Cid.infinity then
        staged_conflict "row %d of %s already invalidated" row
          (Table.name table);
      t.invalidated <- (table, row) :: t.invalidated;
      Hashtbl.replace t.invalidated_set k ()
  | None ->
      m.write_gate table row;
      (match Hashtbl.find_opt m.locks k with
      | Some owner when owner <> t.tid ->
          conflict "row %d of %s claimed by txn %d" row (Table.name table)
            owner
      | _ -> ());
      if not (row_visible t table row) then
        conflict "row %d of %s is not visible to txn %d" row
          (Table.name table) t.tid;
      (* a version invalidated by a committed-later transaction conflicts
         even though it may still be visible to our older snapshot *)
      if Table.end_cid table row <> Cid.infinity then
        conflict "row %d of %s already invalidated" row (Table.name table);
      Hashtbl.replace m.locks k t.tid;
      t.invalidated <- (table, row) :: t.invalidated;
      Hashtbl.replace t.invalidated_set k ()

let update m t table row values =
  claim m t table row;
  insert m t table values

let delete m t table row = claim m t table row

let release_locks m t =
  let drop (table, row) =
    let k = key table row in
    match Hashtbl.find_opt m.locks k with
    | Some owner when owner = t.tid -> Hashtbl.remove m.locks k
    | _ -> ()
  in
  List.iter drop t.inserted;
  List.iter drop t.invalidated

(* publish every touched table with O(1) fences: secondary lengths (and
   all staged data) first, then the begin-CID lengths — the row-existence
   authority — behind a second fence *)
let publish_touched m touched =
  match m.publish_mode with
  | `Batched ->
      let witness = ref None in
      Hashtbl.iter
        (fun _ table ->
          witness := Some table;
          Table.stage_publish_secondary table)
        touched;
      (match !witness with Some table -> Table.fence table | None -> ());
      Hashtbl.iter (fun _ table -> Table.stage_publish_begin table) touched;
      (match !witness with Some table -> Table.fence table | None -> ())
  | `Per_table -> Hashtbl.iter (fun _ table -> Table.publish table) touched
  | `Per_vector ->
      Hashtbl.iter (fun _ table -> Table.publish_each_vector table) touched

let commit m t =
  check_active t "commit";
  if t.staged <> None then
    invalid_arg "Mvcc.commit: staged transaction must seal via commit_grouped";
  if t.inserted = [] && t.invalidated = [] then begin
    (* read-only: nothing to make durable *)
    t.state <- Committed;
    Hashtbl.remove m.active t.tid;
    Obs.incr c_commit_readonly;
    Obs.Blackbox.emit Obs.Event.Txn_commit;
    t.snapshot
  end
  else begin
    let cid = Cid.next m.last in
    (* 1. stamp version timestamps (staged write-backs) *)
    List.iter (fun (table, row) -> Table.set_begin_cid table row cid) t.inserted;
    List.iter (fun (table, row) -> Table.set_end_cid table row cid) t.invalidated;
    (* 2. publish the touched tables *)
    let touched = Hashtbl.create 4 in
    List.iter
      (fun (table, _) -> Hashtbl.replace touched (Table.handle table) table)
      t.inserted;
    List.iter
      (fun (table, _) -> Hashtbl.replace touched (Table.handle table) table)
      t.invalidated;
    publish_touched m touched;
    (* 3. the durable commit point *)
    m.persist_commit cid;
    m.observer (Ev_commit { tid = t.tid; cid; invalidated = t.invalidated });
    m.last <- cid;
    t.state <- Committed;
    release_locks m t;
    Hashtbl.remove m.active t.tid;
    Obs.incr c_commit;
    (* recorded after the durable commit point, so the ring append's own
       write-back can never sit dirty across the commit annotation *)
    Obs.Blackbox.emit ~arg:(Int64.to_int cid land 0xFFFF_FFFF_FFFF)
      Obs.Event.Txn_commit;
    cid
  end

let abort m t =
  check_active t "abort";
  t.state <- Aborted;
  t.staged <- None;
  release_locks m t;
  Hashtbl.remove m.active t.tid;
  Obs.incr c_abort;
  Obs.Blackbox.emit ~arg:t.tid Obs.Event.Txn_abort;
  m.observer (Ev_abort { tid = t.tid })

(* -- writer pipeline: epoch-batched group commit (PROTOCOLS.md §13) --

   One epoch = a batch of transactions that stage on pool lanes (pure
   Region reads, all bookkeeping lane-local), then seal in submission
   order under a serial critical section: each transaction's staged
   claims are re-validated, its inserts physically appended (in exactly
   the order the serial engine would have produced), its CIDs stamped —
   and publication plus the durable last-CID persist happen ONCE for the
   whole batch in [finish_epoch]. Until that single [persist_commit],
   every CID of the epoch is beyond the durable last-CID, so a crash
   anywhere inside the epoch rolls the whole batch back: group commit is
   all-or-nothing by the same argument that makes a single serial commit
   atomic. *)

(* Per-table write log of the epoch: every row a sealed transaction
   appended (inserts and fresh update versions) or end-stamped. Later
   seals test their read predicates against it; the decode cache keeps
   point-predicate checks to one column decode per written row. *)
type epoch_writes = {
  ew_table : Table.t;
  mutable ew_rows : int list;
  ew_vals : (int * int, Storage.Value.t) Hashtbl.t; (* (row, col) -> value *)
}

type epoch = {
  e_touched : (int, Table.t) Hashtbl.t; (* handle -> table, whole batch *)
  mutable e_writes : epoch_writes list;
  e_prev : epoch_writes list;
      (* frozen write log of the previous epoch, for double-buffered
         staging: a transaction staged while epoch [k] was sealing has a
         snapshot from before [k], so its seal in epoch [k+1] must also
         test its reads against everything [k] wrote *)
  mutable e_commits : int list; (* deferred Txn_commit args, reversed *)
  mutable e_txns : int; (* write transactions sealed into the batch *)
}

let begin_epoch ?prev _m =
  {
    e_touched = Hashtbl.create 8;
    e_writes = [];
    e_prev = (match prev with Some ep -> ep.e_writes | None -> []);
    e_commits = [];
    e_txns = 0;
  }

let epoch_txns ep = ep.e_txns

let begin_staged m =
  let t = begin_txn m in
  t.staged <-
    Some { st_reads = []; st_inserts = []; st_counts = Hashtbl.create 4 };
  Obs.incr c_staged;
  t

let is_staged t = t.staged <> None

(* Does the epoch's write log intersect one read predicate? Point
   predicates decode exactly the probed column of each row written to
   that table (cached — each written row is decoded at most once per
   column across the whole epoch); whole-table predicates conflict with
   any write to the table. *)
let read_overlaps_in writes pred =
  let writes_of table =
    List.find_opt (fun ew -> ew.ew_table == table) writes
  in
  match pred with
  | R_table table -> (
      match writes_of table with Some ew -> ew.ew_rows <> [] | None -> false)
  | R_row (table, row) -> (
      match writes_of table with
      | Some ew -> List.mem row ew.ew_rows
      | None -> false)
  | R_point (table, col, v) -> (
      match writes_of table with
      | None -> false
      | Some ew ->
          List.exists
            (fun row ->
              let dv =
                match Hashtbl.find_opt ew.ew_vals (row, col) with
                | Some dv -> dv
                | None ->
                    let dv = Table.get table row col in
                    Hashtbl.add ew.ew_vals (row, col) dv;
                    dv
              in
              Storage.Value.equal dv v)
            ew.ew_rows)

let seal_check m ep t =
  check_active t "seal_check";
  (* serial equivalence: everything this transaction observed on the
     lane must still be what a serial execution at this position would
     observe — no epoch peer that sealed earlier may have written a row
     matching any of its read predicates ... *)
  (match t.staged with
  | Some st ->
      not
        (List.exists
           (fun p ->
             read_overlaps_in ep.e_writes p || read_overlaps_in ep.e_prev p)
           st.st_reads)
  | None -> true)
  (* ... and, defense in depth, its claims must still be claimable (a
     claimed row was necessarily read, so any claim conflict is already
     a read-set overlap) *)
  && List.for_all
       (fun (table, row) ->
         Table.end_cid table row = Cid.infinity
         && (match Hashtbl.find_opt m.locks (key table row) with
            | Some owner -> owner = t.tid
            | None -> true))
       t.invalidated

let reexec_reset m t =
  check_active t "reexec_reset";
  release_locks m t;
  t.inserted <- [];
  Hashtbl.reset t.inserted_set;
  t.invalidated <- [];
  Hashtbl.reset t.invalidated_set;
  t.staged <- None;
  (* the refreshed snapshot sees every epoch peer sealed so far — the
     serial re-execution observes exactly the state a serial engine
     would have shown this transaction *)
  t.snapshot <- m.last;
  Obs.incr c_reexec

let commit_grouped m ep t =
  check_active t "commit_grouped";
  (* promote staged inserts: the physical appends happen here, in seal
     (= submission = serial) order, with the lane-cached dictionary
     probes pre-paying the value-id lookups *)
  (match t.staged with
  | None -> ()
  | Some st ->
      t.staged <- None;
      List.iter
        (fun (table, values, vids) ->
          let row = Table.append_row_prepared table ~vids values in
          let k = key table row in
          t.inserted <- (table, row) :: t.inserted;
          Hashtbl.replace t.inserted_set k ();
          m.observer (Ev_insert { tid = t.tid; table; values }))
        (List.rev st.st_inserts));
  if t.inserted = [] && t.invalidated = [] then begin
    t.state <- Committed;
    Hashtbl.remove m.active t.tid;
    Obs.incr c_commit_readonly;
    (* read-only commits have no durable point to wait for *)
    Obs.Blackbox.emit Obs.Event.Txn_commit;
    t.snapshot
  end
  else begin
    let cid = Cid.next m.last in
    List.iter (fun (table, row) -> Table.set_begin_cid table row cid) t.inserted;
    List.iter (fun (table, row) -> Table.set_end_cid table row cid) t.invalidated;
    let log_write (table, row) =
      Hashtbl.replace ep.e_touched (Table.handle table) table;
      let ew =
        match
          List.find_opt (fun ew -> ew.ew_table == table) ep.e_writes
        with
        | Some ew -> ew
        | None ->
            let ew =
              { ew_table = table; ew_rows = []; ew_vals = Hashtbl.create 16 }
            in
            ep.e_writes <- ew :: ep.e_writes;
            ew
      in
      ew.ew_rows <- row :: ew.ew_rows
    in
    List.iter log_write t.inserted;
    List.iter log_write t.invalidated;
    m.observer (Ev_commit { tid = t.tid; cid; invalidated = t.invalidated });
    m.last <- cid;
    t.state <- Committed;
    release_locks m t;
    Hashtbl.remove m.active t.tid;
    Obs.incr c_commit;
    (* the commit annotation may only hit the flight recorder after the
       transaction is durable — deferred to [finish_epoch] *)
    ep.e_commits <- (Int64.to_int cid land 0xFFFF_FFFF_FFFF) :: ep.e_commits;
    ep.e_txns <- ep.e_txns + 1;
    cid
  end

let finish_epoch m ep =
  if Hashtbl.length ep.e_touched > 0 then begin
    (* one publish + one durable last-CID persist covering the batch *)
    publish_touched m ep.e_touched;
    m.persist_commit m.last
  end;
  (* deferred per-txn commit annotations: recorded strictly after the
     epoch's durable point, preserving the serial invariant that the
     ring append's write-back never sits dirty across a commit *)
  List.iter
    (fun arg -> Obs.Blackbox.emit ~arg Obs.Event.Txn_commit)
    (List.rev ep.e_commits);
  ep.e_commits <- [];
  Obs.incr c_epoch_sealed;
  Obs.add c_epoch_txns ep.e_txns;
  Obs.Blackbox.emit ~arg:ep.e_txns Obs.Event.Group_commit
