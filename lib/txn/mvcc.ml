module Table = Storage.Table
module Cid = Storage.Cid

exception Write_conflict of string
exception Not_active of string

(* Transaction-outcome tallies in the process-wide metrics registry.
   Counter bumps are single [ref] increments — always on. *)
let c_begin = Obs.counter "txn.begin"
let c_commit = Obs.counter "txn.commit"
let c_commit_readonly = Obs.counter "txn.commit_readonly"
let c_abort = Obs.counter "txn.abort"
let c_conflict = Obs.counter "txn.conflict"

type event =
  | Ev_insert of { tid : int; table : Table.t; values : Storage.Value.t array }
  | Ev_commit of {
      tid : int;
      cid : Cid.t;
      invalidated : (Table.t * int) list;
    }
  | Ev_abort of { tid : int }

type state = Active | Committed | Aborted

(* rows are identified volatile-side by (table ctrl offset, row id) *)
type rowkey = int * int

type txn = {
  tid : int;
  snapshot : Cid.t;
  mutable state : state;
  mutable inserted : (Table.t * int) list; (* reversed order of insertion *)
  inserted_set : (rowkey, unit) Hashtbl.t;
  mutable invalidated : (Table.t * int) list;
  invalidated_set : (rowkey, unit) Hashtbl.t;
}

type publish_mode = [ `Batched | `Per_table | `Per_vector ]

type manager = {
  mutable last : Cid.t;
  mutable next_tid : int;
  observer : event -> unit;
  publish_mode : publish_mode;
  persist_commit : Cid.t -> unit;
  locks : (rowkey, int) Hashtbl.t; (* row claims: first writer wins *)
  active : (int, txn) Hashtbl.t;
}

let create_manager ?(observer = fun _ -> ()) ?(publish_mode = `Batched)
    ~persist_commit ~last_cid () =
  {
    last = last_cid;
    next_tid = 1;
    observer;
    publish_mode;
    persist_commit;
    locks = Hashtbl.create 64;
    active = Hashtbl.create 16;
  }

let last_cid m = m.last
let active_count m = Hashtbl.length m.active

let begin_txn m =
  let t =
    {
      tid = m.next_tid;
      snapshot = m.last;
      state = Active;
      inserted = [];
      inserted_set = Hashtbl.create 8;
      invalidated = [];
      invalidated_set = Hashtbl.create 8;
    }
  in
  m.next_tid <- m.next_tid + 1;
  Hashtbl.replace m.active t.tid t;
  Obs.incr c_begin;
  Obs.Blackbox.emit ~arg:t.tid Obs.Event.Txn_begin;
  t

let tid t = t.tid
let snapshot t = t.snapshot
let is_active t = t.state = Active

let check_active t fn =
  if t.state <> Active then
    raise (Not_active (Printf.sprintf "Mvcc.%s: txn %d is finished" fn t.tid))

let key table row = (Table.handle table, row)

let row_visible t table row =
  let k = key table row in
  if Hashtbl.mem t.invalidated_set k then false
  else if Hashtbl.mem t.inserted_set k then true
  else
    Cid.visible ~begin_cid:(Table.begin_cid table row)
      ~end_cid:(Table.end_cid table row) ~snapshot:t.snapshot

(* Batched visibility for the block scan engine: one pass over bulk-read
   CID arrays (saturated native ints — see Table's block accessors),
   compacting the selection vector in place. The common case — a
   transaction with no own writes — is pure unboxed integer compares; the
   own-write path preserves [row_visible]'s exact ordering (invalidated
   shadows inserted shadows CIDs). *)
let visible_block t table ~base ?begin_cids ~end_cids sel n =
  (* snapshots are committed CIDs, far below the 2^62 saturation line *)
  let snap = Int64.to_int t.snapshot in
  let own_writes =
    Hashtbl.length t.inserted_set > 0 || Hashtbl.length t.invalidated_set > 0
  in
  let m = ref 0 in
  if not own_writes then begin
    match begin_cids with
    | None ->
        (* main partition: begin is implicitly Cid.zero <= any snapshot *)
        for k = 0 to n - 1 do
          let p = sel.(k) in
          sel.(!m) <- p;
          m := !m + Bool.to_int (snap < end_cids.(p))
        done
    | Some begins ->
        for k = 0 to n - 1 do
          let p = sel.(k) in
          sel.(!m) <- p;
          m := !m + Bool.to_int (begins.(p) <= snap && snap < end_cids.(p))
        done
  end
  else begin
    let h = Table.handle table in
    for k = 0 to n - 1 do
      let p = sel.(k) in
      let rk = (h, base + p) in
      let vis =
        if Hashtbl.mem t.invalidated_set rk then false
        else if Hashtbl.mem t.inserted_set rk then true
        else
          let b = match begin_cids with None -> 0 | Some a -> a.(p) in
          b <= snap && snap < end_cids.(p)
      in
      sel.(!m) <- p;
      if vis then incr m
    done
  end;
  !m

let insert m t table values =
  check_active t "insert";
  let row = Table.append_row table values in
  let k = key table row in
  Hashtbl.replace m.locks k t.tid;
  t.inserted <- (table, row) :: t.inserted;
  Hashtbl.replace t.inserted_set k ();
  m.observer (Ev_insert { tid = t.tid; table; values });
  row

let conflict fmt =
  Printf.ksprintf
    (fun msg ->
      Obs.incr c_conflict;
      Obs.Blackbox.emit Obs.Event.Txn_conflict;
      raise (Write_conflict msg))
    fmt

let claim m t table row =
  check_active t "claim";
  let k = key table row in
  (match Hashtbl.find_opt m.locks k with
  | Some owner when owner <> t.tid ->
      conflict "row %d of %s claimed by txn %d" row (Table.name table) owner
  | _ -> ());
  if not (row_visible t table row) then
    conflict "row %d of %s is not visible to txn %d" row (Table.name table)
      t.tid;
  (* a version invalidated by a committed-later transaction conflicts even
     though it may still be visible to our older snapshot *)
  if Table.end_cid table row <> Cid.infinity then
    conflict "row %d of %s already invalidated" row (Table.name table);
  Hashtbl.replace m.locks k t.tid;
  t.invalidated <- (table, row) :: t.invalidated;
  Hashtbl.replace t.invalidated_set k ()

let update m t table row values =
  claim m t table row;
  insert m t table values

let delete m t table row = claim m t table row

let release_locks m t =
  let drop (table, row) =
    let k = key table row in
    match Hashtbl.find_opt m.locks k with
    | Some owner when owner = t.tid -> Hashtbl.remove m.locks k
    | _ -> ()
  in
  List.iter drop t.inserted;
  List.iter drop t.invalidated

let commit m t =
  check_active t "commit";
  if t.inserted = [] && t.invalidated = [] then begin
    (* read-only: nothing to make durable *)
    t.state <- Committed;
    Hashtbl.remove m.active t.tid;
    Obs.incr c_commit_readonly;
    Obs.Blackbox.emit Obs.Event.Txn_commit;
    t.snapshot
  end
  else begin
    let cid = Cid.next m.last in
    (* 1. stamp version timestamps (staged write-backs) *)
    List.iter (fun (table, row) -> Table.set_begin_cid table row cid) t.inserted;
    List.iter (fun (table, row) -> Table.set_end_cid table row cid) t.invalidated;
    (* 2. publish every touched table with O(1) fences: secondary lengths
       (and all staged data) first, then the begin-CID lengths — the
       row-existence authority — behind a second fence *)
    let touched = Hashtbl.create 4 in
    List.iter
      (fun (table, _) -> Hashtbl.replace touched (Table.handle table) table)
      t.inserted;
    List.iter
      (fun (table, _) -> Hashtbl.replace touched (Table.handle table) table)
      t.invalidated;
    (match m.publish_mode with
    | `Batched ->
        let witness = ref None in
        Hashtbl.iter
          (fun _ table ->
            witness := Some table;
            Table.stage_publish_secondary table)
          touched;
        (match !witness with Some table -> Table.fence table | None -> ());
        Hashtbl.iter (fun _ table -> Table.stage_publish_begin table) touched;
        (match !witness with Some table -> Table.fence table | None -> ())
    | `Per_table -> Hashtbl.iter (fun _ table -> Table.publish table) touched
    | `Per_vector ->
        Hashtbl.iter (fun _ table -> Table.publish_each_vector table) touched);
    (* 3. the durable commit point *)
    m.persist_commit cid;
    m.observer (Ev_commit { tid = t.tid; cid; invalidated = t.invalidated });
    m.last <- cid;
    t.state <- Committed;
    release_locks m t;
    Hashtbl.remove m.active t.tid;
    Obs.incr c_commit;
    (* recorded after the durable commit point, so the ring append's own
       write-back can never sit dirty across the commit annotation *)
    Obs.Blackbox.emit ~arg:(Int64.to_int cid land 0xFFFF_FFFF_FFFF)
      Obs.Event.Txn_commit;
    cid
  end

let abort m t =
  check_active t "abort";
  t.state <- Aborted;
  release_locks m t;
  Hashtbl.remove m.active t.tid;
  Obs.incr c_abort;
  Obs.Blackbox.emit ~arg:t.tid Obs.Event.Txn_abort;
  m.observer (Ev_abort { tid = t.tid })
