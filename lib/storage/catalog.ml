module A = Nvm_alloc.Allocator
module Region = Nvm.Region
module Seal = Nvm.Seal
module Pcheck = Pstruct.Pcheck

(* Entry block (16 bytes): +0 name string offset, +8 table ctrl offset —
   both sealed. The catalog itself is a persistent vector of entry
   offsets, each element stored sealed too, so a media fault anywhere in
   the table directory is caught at read time. *)

module Pvector = Pstruct.Pvector

type t = { alloc : A.t; region : Region.t; entries : Pvector.t }
type entry_view = { name : string option; ctrl : int option; entry_off : int option }

let create alloc =
  { alloc; region = A.region alloc; entries = Pvector.create alloc }

let attach alloc handle =
  { alloc; region = A.region alloc; entries = Pvector.attach alloc handle }

let handle t = Pvector.handle t.entries

let entry_off t i =
  match Seal.unseal (Pvector.get t.entries i) with
  | Some e -> e
  | None ->
      Seal.count_failure ();
      Pcheck.fail ~at:(Pvector.handle t.entries) "catalog entry offset"

let entry_name t e =
  Pstruct.Pstring.get t.alloc (Seal.read t.region ~what:"catalog entry name" e)

let entry_ctrl t e = Seal.read t.region ~what:"catalog entry ctrl" (e + 8)

let find_entry t name =
  let n = Pvector.length t.entries in
  let rec go i =
    if i >= n then None
    else
      let e = entry_off t i in
      if entry_name t e = name then Some e else go (i + 1)
  in
  go 0

let find t name = Option.map (fun e -> entry_ctrl t e) (find_entry t name)

let add_table t ~name ~ctrl =
  if find_entry t name <> None then
    invalid_arg ("Catalog.add_table: duplicate table " ^ name);
  let name_off = Pstruct.Pstring.add t.alloc name in
  let e = A.alloc t.alloc 16 in
  Seal.write t.region e name_off;
  Seal.write t.region (e + 8) ctrl;
  Region.persist t.region e 16;
  A.activate t.alloc e;
  ignore (Pvector.append t.entries (Seal.seal e));
  (* publication of the vector length is the creation commit point *)
  Pvector.publish t.entries

let swap_table t ~name ~new_ctrl =
  match find_entry t name with
  | None -> raise Not_found
  | Some e ->
      (* single-word generation swap: everything the new ctrl block
         reaches must already be durable (the merge built it fenced) *)
      Region.expect_ordered t.region ~label:"catalog.swap_table" ~before:[]
        ~after:(e + 8);
      Seal.write t.region (e + 8) new_ctrl;
      Region.persist t.region (e + 8) 8

let tables t =
  List.init (Pvector.length t.entries) (fun i ->
      let e = entry_off t i in
      (entry_name t e, entry_ctrl t e))

let table_count t = Pvector.length t.entries

(* Per-entry damage containment for recovery: each field is read under a
   handler, so one rotten entry yields [None]s instead of taking the
   whole directory down. Order is creation order — the same order the
   engine assigns WAL table ids. *)
let entries_defensive t =
  List.init (Pvector.length t.entries) (fun i ->
      let guard f = try Some (f ()) with _ -> None in
      match guard (fun () -> entry_off t i) with
      | None -> { name = None; ctrl = None; entry_off = None }
      | Some e ->
          {
            name = guard (fun () -> entry_name t e);
            ctrl = guard (fun () -> entry_ctrl t e);
            entry_off = Some e;
          })

let verify ?(deep = false) t =
  Pvector.verify t.entries;
  for i = 0 to Pvector.length t.entries - 1 do
    let e = entry_off t i in
    let name_off = Seal.read t.region ~what:"catalog entry name" e in
    ignore (entry_ctrl t e);
    if deep then Pstruct.Pstring.verify t.alloc name_off
    else ignore (Pstruct.Pstring.get t.alloc name_off)
  done

let owned_blocks t =
  Pvector.owned_blocks t.entries
  @ List.concat_map
      (fun e -> [ e; Seal.read t.region ~what:"catalog entry name" e ])
      (List.init (Pvector.length t.entries) (entry_off t))
