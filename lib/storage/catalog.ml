module A = Nvm_alloc.Allocator
module Region = Nvm.Region
module Pvector = Pstruct.Pvector

(* Entry block (16 bytes): +0 name string offset, +8 table ctrl offset.
   The catalog itself is a persistent vector of entry offsets. *)

type t = { alloc : A.t; region : Region.t; entries : Pvector.t }

let create alloc =
  { alloc; region = A.region alloc; entries = Pvector.create alloc }

let attach alloc handle =
  { alloc; region = A.region alloc; entries = Pvector.attach alloc handle }

let handle t = Pvector.handle t.entries

let entry_name t e = Pstruct.Pstring.get t.alloc (Region.get_int t.region e)

let find_entry t name =
  let n = Pvector.length t.entries in
  let rec go i =
    if i >= n then None
    else
      let e = Pvector.get_int t.entries i in
      if entry_name t e = name then Some e else go (i + 1)
  in
  go 0

let find t name =
  Option.map (fun e -> Region.get_int t.region (e + 8)) (find_entry t name)

let add_table t ~name ~ctrl =
  if find_entry t name <> None then
    invalid_arg ("Catalog.add_table: duplicate table " ^ name);
  let name_off = Pstruct.Pstring.add t.alloc name in
  let e = A.alloc t.alloc 16 in
  Region.set_int t.region e name_off;
  Region.set_int t.region (e + 8) ctrl;
  Region.persist t.region e 16;
  A.activate t.alloc e;
  ignore (Pvector.append_int t.entries e);
  (* publication of the vector length is the creation commit point *)
  Pvector.publish t.entries

let swap_table t ~name ~new_ctrl =
  match find_entry t name with
  | None -> raise Not_found
  | Some e ->
      (* single-word generation swap: everything the new ctrl block
         reaches must already be durable (the merge built it fenced) *)
      Region.expect_ordered t.region ~label:"catalog.swap_table" ~before:[]
        ~after:(e + 8);
      Region.set_int t.region (e + 8) new_ctrl;
      Region.persist t.region (e + 8) 8

let tables t =
  List.map
    (fun e ->
      let e = Int64.to_int e in
      (entry_name t e, Region.get_int t.region (e + 8)))
    (Pvector.to_list t.entries)

let table_count t = Pvector.length t.entries

let owned_blocks t =
  Pvector.owned_blocks t.entries
  @ List.concat_map
      (fun e ->
        let e = Int64.to_int e in
        [ e; Region.get_int t.region e ])
      (Pvector.to_list t.entries)
