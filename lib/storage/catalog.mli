(** Persistent table catalog.

    Maps table names to table control blocks. Each table owns one 16-byte
    entry block whose second word is the table pointer — a single 8-byte
    word, so the delta→main merge can retire a whole table generation by
    one atomic, durable pointer swap ([swap_table]). *)

type t

val create : Nvm_alloc.Allocator.t -> t
(** Empty catalog; durable on return. Link [handle] into the engine
    control block to make it reachable. *)

val attach : Nvm_alloc.Allocator.t -> int -> t

val handle : t -> int

val add_table : t -> name:string -> ctrl:int -> unit
(** Durably register a table. Raises [Invalid_argument] on duplicate
    names. The registration is the table-creation commit point. *)

val find : t -> string -> int option
(** Current control-block offset of a table. *)

val swap_table : t -> name:string -> new_ctrl:int -> unit
(** Atomically and durably repoint a table at a new generation (merge
    publication). Raises [Not_found] for unknown tables. *)

val tables : t -> (string * int) list
(** All (name, ctrl) pairs, in creation order. *)

val table_count : t -> int

type entry_view = { name : string option; ctrl : int option; entry_off : int option }
(** One catalog entry read defensively: a field that fails its checksum
    (or whose entry block is unreachable) comes back [None] instead of
    raising. *)

val entries_defensive : t -> entry_view list
(** Every entry in creation order — the same order the engine assigns
    WAL table ids — with per-field damage containment. Recovery uses
    this to quarantine individual tables instead of losing the whole
    directory to one rotten entry. *)

val verify : ?deep:bool -> t -> unit
(** Scrub the directory: entry vector structure, sealed entry words,
    and (with [~deep:true]) the name-string payload checksums.
    @raise Pstruct.Pcheck.Invalid or [Nvm.Seal.Corrupt]. *)

val owned_blocks : t -> int list
(** The catalog's own blocks: entry vector, entry blocks and their name
    strings (table control blocks are reported by each table). *)
