(** NVM-resident column-store table with main/delta partitions.

    Physical layout per column (all on NVM, following Hyrise):

    - {b main}: a sorted dictionary (persistent vector of encoded values)
      plus a bit-packed attribute vector of value-ids — read-optimized,
      immutable between merges;
    - {b delta}: an unsorted append-only dictionary (persistent vector,
      value-id = position) with a persistent tree index for value lookup,
      plus an uncompressed attribute vector of value-ids — write-optimized;
    - optionally a persistent secondary index on the delta partition
      mapping (value-id, row) pairs, for indexed point lookups.

    MVCC state: per delta row a begin-CID and end-CID vector; per main row
    an end-CID vector (main rows are committed by construction — the merge
    runs without active transactions). Invalidation of main rows is
    additionally journaled in a small {e invalidation log} so that restart
    rollback touches only rows written since the last merge, never the
    whole table — this is what keeps Hyrise-NV's restart time independent
    of the dataset size.

    Rows are addressed by a single global index: [0 .. main_rows) are main
    rows, [main_rows .. row_count) are delta rows.

    Writing and committing are decoupled exactly like {!Pstruct.Pvector}:
    [append_row] / [set_end_cid] stage data with scheduled write-backs;
    [publish] is invoked by the transaction layer at commit, in an order
    that makes the begin-CID vector's published length the single
    authority for row existence. *)

type t

type row = int

val create : Nvm_alloc.Allocator.t -> name:string -> Schema.t -> t
(** Allocate the table's persistent structures. The returned handle must
    be linked into a catalog (and that link persisted) to survive a
    restart. *)

val attach : Nvm_alloc.Allocator.t -> int -> t
(** Re-wrap a table after restart. Volatile lengths are truncated to the
    begin-CID vector's published length; MVCC rollback of in-flight
    transactions is the engine's job (see [rollback_uncommitted]). *)

val rollback_uncommitted : t -> last_cid:Cid.t -> int
(** Undo effects of transactions whose commit never reached durability:
    delta rows with a begin-CID beyond [last_cid] are marked dead, and
    end-CIDs beyond [last_cid] (found via the delta scan and the main
    invalidation log) are reset to live. Returns the number of rows
    touched. Cost: O(delta + invalidations-since-merge). Equivalent to
    [rollback_apply t (rollback_plan t ~last_cid)]. *)

type rollback_plan

val rollback_plan : t -> last_cid:Cid.t -> rollback_plan
(** The analyze half of [rollback_uncommitted]: pure Region reads, safe
    to run on a pool domain (recovery plans every table in parallel). *)

val rollback_apply : t -> rollback_plan -> int
(** The apply half: stage the resets, fence once, return rows touched.
    NVM writes — caller domain only. *)

val handle : t -> int
val name : t -> string
val schema : t -> Schema.t

val main_rows : t -> int
val delta_rows : t -> int
val row_count : t -> int

val is_main : t -> row -> bool

(** {1 MVCC accessors} *)

val begin_cid : t -> row -> Cid.t
(** Main rows report {!Cid.zero}. *)

val end_cid : t -> row -> Cid.t

val set_begin_cid : t -> row -> Cid.t -> unit
(** Delta rows only (staged write-back, no fence). *)

val set_end_cid : t -> row -> Cid.t -> unit
(** Any row; staged. For main rows the (row, cid) pair is also journaled
    in the invalidation log. *)

(** {1 Data access} *)

val get : t -> row -> int -> Value.t

val get_row : t -> row -> Value.t array

val rows_with_value : t -> int -> Value.t -> row list
(** All physical rows (visibility not applied) whose column equals the
    value: main via dictionary binary search + attribute-vector scan,
    delta via the dictionary tree and, when the column is indexed, the
    secondary index. Ascending row order. *)

val append_row : t -> Value.t array -> row
(** Stage a new delta row with begin = end = {!Cid.infinity}. Distinct new
    dictionary values are made durable immediately (they are shared state);
    the row itself becomes durable at [publish]. *)

type dict_probe = Dict_hit of int | Dict_miss of Pstruct.Pbtree.snap
(** Result of a staged dictionary probe: an existing delta value-id, or
    a miss carrying the generation witness of the walked index leaves. *)

val stage_probe : t -> Value.t array -> dict_probe array
(** Lane-side half of a pipelined insert (writer pipeline, PROTOCOLS.md
    §13): validate the row against the schema and probe the delta
    dictionary for each value — {e pure Region reads}, safe on a pool
    lane. A [Dict_hit] caches an existing delta value-id (valid forever:
    delta dictionaries are append-only); a [Dict_miss] remembers which
    index leaves proved the absence. *)

val append_row_prepared :
  ?stale:int ref -> t -> vids:dict_probe array -> Value.t array -> row
(** [append_row] with the dictionary probe pre-paid by {!stage_probe}:
    cached value-ids are used as-is; a miss whose leaf witness is still
    valid ({!Pstruct.Pbtree.snap_valid}) proves the value is still
    absent and takes the fresh-encode path without re-walking the index;
    a stale witness falls back to the ordinary encode-and-insert path
    (incrementing [stale] when given — the parallel WAL replay surfaces
    the fallback rate as [wal.replay.stale_witness]). Byte-identical NVM
    effects to [append_row] called in the same engine state. *)

val publish : t -> unit
(** Commit-side durability: makes staged data durable, then the secondary
    lengths (attribute vectors, end-CIDs, invalidation log), then — behind
    a second fence — the begin-CID vector length, the row-existence
    authority. Two fences total. *)

(** {2 Batched publication}

    A transaction touching several tables needs O(1) fences, not O(columns):
    the manager stages every table's secondary lengths, fences once (which
    also flushes all staged row data), stages every begin length, fences
    again, then persists the engine's last-CID. The begin length is only
    durable after everything it governs, so the attach-time invariant
    "secondary published length >= begin published length" holds under any
    crash. *)

val stage_publish_secondary : t -> unit
val stage_publish_begin : t -> unit

val fence : t -> unit
(** Fence the table's region (shared by all tables of one engine). *)

val publish_each_vector : t -> unit
(** Ablation baseline: one fully-fenced publish per vector (2 fences
    each), the naive protocol the batched commit replaces. Same crash
    semantics, strictly more fences. *)

(** {1 Partition internals (query-engine surface)}

    Scans want to work in value-id space: filter the attribute vectors
    with integer comparisons and decode only what survives. *)

val allocator : t -> Nvm_alloc.Allocator.t

val main_vid : t -> int -> row -> int
(** [main_vid t col r] — value-id of main row [r] (bit-packed read). *)

val delta_vid : t -> int -> int -> int
(** [delta_vid t col i] — value-id of the [i]-th delta row. *)

(** {2 Block accessors}

    The vectorized scan engine decodes a block of rows with one bulk
    region read per column instead of one to two [get_i64] per row. All
    destinations are caller-provided and reusable across blocks; [pos] is
    partition-local (main row index, or delta index for the delta
    variants). CIDs decode as {e saturated native ints} ([Cid.infinity]
    and anything at or above [2^62] become [max_int]) so visibility runs
    on unboxed integer compares. *)

val main_vids_into : t -> int -> pos:int -> len:int -> int array -> unit
(** [main_vids_into t col ~pos ~len dst] — bulk-decode main value-ids
    [pos, pos+len) into [dst.(0 .. len-1)]. *)

val delta_vids_into : t -> int -> pos:int -> len:int -> int array -> unit
(** Same for the delta partition's uncompressed attribute vector. *)

val main_end_cids_into : t -> pos:int -> len:int -> int array -> unit
(** End-CIDs of main rows [pos, pos+len) (begin is implicitly
    {!Cid.zero}). *)

val delta_begin_cids_into : t -> pos:int -> len:int -> int array -> unit

val delta_end_cids_into : t -> pos:int -> len:int -> int array -> unit

val main_end_cids_gather : t -> pos:int -> int array -> int -> int array -> unit
(** [main_end_cids_gather t ~pos sel n dst] — for each of the first [n]
    block-local positions [p] in selection vector [sel], read the end-CID
    of main row [pos + p] into [dst.(p)]. Costs [n] loads instead of the
    bulk read's one per row; the scan engine uses it when the predicates
    left a sparse selection. *)

val delta_begin_cids_gather : t -> pos:int -> int array -> int -> int array -> unit

val delta_end_cids_gather : t -> pos:int -> int array -> int -> int array -> unit

val main_dict_value : t -> int -> int -> Value.t
(** Decode a main-dictionary entry by value-id (sorted order). *)

val delta_dict_value : t -> int -> int -> Value.t
(** Decode a delta-dictionary entry by value-id (insertion order). *)

(** {1 Introspection} *)

val nvm_bytes : t -> int
(** Total bytes of NVM backing this table (structures only, excluding
    allocator headers and string blocks). *)

val delta_dictionary_size : t -> int -> int

val main_dictionary_size : t -> int -> int

val destroy : t -> unit
(** Free every structure of this table (not the strings it encoded). *)

(** {1 Merge support (used by [Merge])} *)

val encoded_value : t -> row -> int -> int64
(** Raw encoded word of a cell (main rows decode through the main dict,
    delta rows through the delta dict). *)

val owned_blocks : t -> int list
(** Every allocator block reachable from this table (control block, name
    strings, vectors, indexes, arena chunks) — the reachability set the
    engine's vacuum sweeps against. *)

val verify : ?deep:bool -> ?last_cid:Cid.t -> t -> unit
(** Scrub this table's persistent structures. The default shallow pass
    checks sealed control words, structural invariants and cross-structure
    length agreement in (near-)constant time per structure; [~deep:true]
    additionally recomputes payload checksums (attribute-vector bits, main
    dictionary words, every name and text-dictionary string) and checks
    each attribute id against its dictionary — linear in the data.
    [last_cid] (deep only) additionally value-checks the unchecksummed
    MVCC timestamp words against the committed high-water mark: a main
    end-CID beyond it without its invalidation-journal entry is media
    damage (a mid-commit crash can conservatively trip this — salvage
    restores such a table exactly).
    @raise Pstruct.Pcheck.Invalid or [Nvm.Seal.Corrupt] on damage. *)

(** {1 Segment-granular damage map & online restore} *)

val segment_rows : int
(** Rows per quarantine segment (4096). Segment [s] covers global rows
    [s*segment_rows, (s+1)*segment_rows). *)

val segment_count : t -> int

type segment_report = {
  sr_damaged : int list;  (** ascending damaged segment indices *)
  sr_structural : bool;
      (** damage not addressable to a row range (control words,
          dictionaries, trees, arena, invalidation journal): the whole
          table needs a rebuild *)
  sr_reseal : int list;
      (** columns whose main attribute vector needs its whole-payload
          CRC word recomputed after the damaged segments are patched *)
}

val verify_segments : ?deep:bool -> ?last_cid:Cid.t -> t -> segment_report
(** Segment-granular variant of [verify] for serve-while-salvaging:
    the same ladder (shallow seals / deep payload CRCs + id-domain +
    CID-domain checks), but damage is mapped to 4K-row segments instead
    of raised, so healthy segments keep serving. Never raises. *)

val restore_segment : t -> from:t -> seg:int -> rows:int -> unit
(** [restore_segment t ~from:twin ~seg ~rows] repairs segment [seg] of
    [t] in place from the salvage twin (a rebuild from checkpoint +
    salvage log bounded at the durable commit point): main-partition
    attribute bits are re-packed byte-exactly and published per segment
    behind their directory seal, main end-CIDs and delta CID words are
    reset to committed values, and twin delta rows are re-encoded
    against [t]'s own dictionaries. Rows beyond the twin's count are
    reset dead (uncommitted at the crash); rows at or beyond [rows]
    (the count captured at quarantine) are untouched. Row numbering is
    preserved exactly. *)

val reseal_main_avec : t -> int -> unit
(** Recompute column [i]'s main attribute-vector whole-payload CRC
    (after restore, when the seal word itself took the fault). *)

val name_string_offsets : t -> int list
(** Offsets of the table-name and column-name strings (for reclamation
    when a table generation is retired). *)

val replace_ctrl_for_merge :
  Nvm_alloc.Allocator.t ->
  name:string ->
  schema:Schema.t ->
  columns:(Value.t array * int array) array ->
  main_end:Cid.t array ->
  t
(** Build a brand-new table whose {e main} partition holds the given
    per-column (sorted dictionary values, attribute vector) and end-CIDs,
    with empty delta structures. Text values are encoded into the new
    generation's own string arena, so retiring the old generation frees
    its strings wholesale. Fully durable on return; the caller swaps a
    catalog pointer to publish it. *)
