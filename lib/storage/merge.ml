module A = Nvm_alloc.Allocator

type stats = {
  rows_in : int;
  rows_out : int;
  dict_entries_out : int;
  bytes_before : int;
  bytes_after : int;
}

module Vmap = Map.Make (struct
  type t = Value.t

  let compare = Value.compare
end)

let run alloc table ~merge_cid =
  Obs.Span.with_ ~name:"merge" @@ fun () ->
  let rows_in = Table.row_count table in
  let bytes_before = Table.nvm_bytes table in
  let schema = Table.schema table in
  let n_cols = Schema.arity schema in
  (* surviving rows, in stable order *)
  let survivors = ref [] in
  for r = rows_in - 1 downto 0 do
    let b = Table.begin_cid table r and e = Table.end_cid table r in
    if Cid.visible ~begin_cid:b ~end_cid:e ~snapshot:merge_cid then
      survivors := r :: !survivors
  done;
  let survivors = Array.of_list !survivors in
  let rows_out = Array.length survivors in
  (* per column: sorted distinct dictionary + re-encoded attribute vector *)
  let dict_total = ref 0 in
  let columns =
    Array.init n_cols (fun i ->
        let decoded = Array.map (fun r -> Table.get table r i) survivors in
        let distinct =
          Array.fold_left (fun m v -> Vmap.add v () m) Vmap.empty decoded
        in
        let sorted = Array.of_list (List.map fst (Vmap.bindings distinct)) in
        let vid_of = Hashtbl.create (Array.length sorted) in
        Array.iteri (fun vid v -> Hashtbl.replace vid_of v vid) sorted;
        dict_total := !dict_total + Array.length sorted;
        let avec = Array.map (fun v -> Hashtbl.find vid_of v) decoded in
        (sorted, avec))
  in
  let main_end = Array.make rows_out Cid.infinity in
  let merged =
    Table.replace_ctrl_for_merge alloc ~name:(Table.name table) ~schema
      ~columns ~main_end
  in
  let finalize () =
    (* the old generation's string arena goes with its structures; only
       the allocator-resident name strings need individual frees *)
    List.iter (Pstruct.Pstring.free alloc) (Table.name_string_offsets table);
    Table.destroy table
  in
  let stats =
    {
      rows_in;
      rows_out;
      dict_entries_out = !dict_total;
      bytes_before;
      bytes_after = Table.nvm_bytes merged;
    }
  in
  Obs.Span.attr "rows_in" rows_in;
  Obs.Span.attr "rows_out" rows_out;
  (merged, stats, finalize)
