module A = Nvm_alloc.Allocator
module Region = Nvm.Region

type stats = {
  rows_in : int;
  rows_out : int;
  dict_entries_out : int;
  bytes_before : int;
  bytes_after : int;
}

module Vmap = Map.Make (struct
  type t = Value.t

  let compare = Value.compare
end)

let run alloc table ~merge_cid =
  Obs.Span.with_ ~name:"merge" @@ fun () ->
  let rows_in = Table.row_count table in
  let bytes_before = Table.nvm_bytes table in
  let schema = Table.schema table in
  let n_cols = Schema.arity schema in
  (* The volatile half of the merge — survivor visibility scan and the
     per-column dictionary/attribute-vector rebuild — runs on the pool:
     it is pure Region reads plus column-local state, and each column is
     independent. Everything that writes NVM (the new generation's
     [replace_ctrl_for_merge] build and the caller's catalog swap) stays
     on this domain, in the same order as the serial merge, so the new
     generation is byte-identical whatever the lane count — including
     traced runs, whose per-lane traces the sanitizer merges at each
     join (PROTOCOLS.md §10). *)
  (* surviving rows, in stable order: chunks in row order, concatenated *)
  let survivors =
    let chunks =
      Par.map_chunks ~chunk:4096 ~n:rows_in (fun ~lo ~hi ->
          let buf = Util.Intbuf.create 256 in
          for r = lo to hi - 1 do
            let b = Table.begin_cid table r and e = Table.end_cid table r in
            if Cid.visible ~begin_cid:b ~end_cid:e ~snapshot:merge_cid then
              Util.Intbuf.push buf r
          done;
          buf)
    in
    let total = Array.fold_left (fun n b -> n + Util.Intbuf.length b) 0 chunks in
    let out = Array.make total 0 in
    let k = ref 0 in
    Array.iter
      (fun buf ->
        Util.Intbuf.iter
          (fun r ->
            out.(!k) <- r;
            incr k)
          buf)
      chunks;
    out
  in
  let rows_out = Array.length survivors in
  (* per column: sorted distinct dictionary + re-encoded attribute vector *)
  let columns =
    Par.map_array
      (fun i ->
        let decoded = Array.map (fun r -> Table.get table r i) survivors in
        let distinct =
          Array.fold_left (fun m v -> Vmap.add v () m) Vmap.empty decoded
        in
        let sorted = Array.of_list (List.map fst (Vmap.bindings distinct)) in
        let vid_of = Hashtbl.create (Array.length sorted) in
        Array.iteri (fun vid v -> Hashtbl.replace vid_of v vid) sorted;
        let avec = Array.map (fun v -> Hashtbl.find vid_of v) decoded in
        (sorted, avec))
      (Array.init n_cols Fun.id)
  in
  let dict_total = ref 0 in
  Array.iter
    (fun (sorted, _) -> dict_total := !dict_total + Array.length sorted)
    columns;
  let main_end = Array.make rows_out Cid.infinity in
  let merged =
    Table.replace_ctrl_for_merge alloc ~name:(Table.name table) ~schema
      ~columns ~main_end
  in
  let finalize () =
    (* the old generation's string arena goes with its structures; only
       the allocator-resident name strings need individual frees *)
    List.iter (Pstruct.Pstring.free alloc) (Table.name_string_offsets table);
    Table.destroy table
  in
  let stats =
    {
      rows_in;
      rows_out;
      dict_entries_out = !dict_total;
      bytes_before;
      bytes_after = Table.nvm_bytes merged;
    }
  in
  Obs.Span.attr "rows_in" rows_in;
  Obs.Span.attr "rows_out" rows_out;
  (merged, stats, finalize)
