module A = Nvm_alloc.Allocator
module Region = Nvm.Region
module Seal = Nvm.Seal
module Pcheck = Pstruct.Pcheck
module Pvector = Pstruct.Pvector
module Pbitvec = Pstruct.Pbitvec
module Pbtree = Pstruct.Pbtree
module Parena = Pstruct.Parena

(* Control block:
     +0  name (string offset)
     +8  n_cols
     +16 main_rows
     +24 delta begin-CID vector     (row-existence authority)
     +32 delta end-CID vector
     +40 main end-CID vector
     +48 main invalidation log      (flat pairs: row, cid)
     +56 string arena               (this generation's text storage)
     +64 column entries, stride 80:
         +0  column name (string offset)
         +8  type tag | indexed flag << 8
         +16 main dictionary        (Pvector, sorted encoded values)
         +24 main attribute vector  (Pbitvec)
         +32 delta dictionary       (Pvector, value-id = position)
         +40 delta dictionary index (Pbtree: dict_key -> value-id)
         +48 delta attribute vector (Pvector of value-ids)
         +56 delta secondary index  (Pbtree: vid<<32|row -> row; 0 = none)
         +64 CRC32 of the main dictionary's element words
         +72 reserved (sealed zero)

   Every control and column-entry word is sealed (Nvm.Seal). The main
   dictionary is immutable between merges, so its checksum at +64 is
   computed once by [build] and verified by [verify ~deep:true]. *)

let col_stride = 80
let cols_base = 64

type row = int

type col = {
  cschema : Schema.column;
  main_dict : Pvector.t;
  main_avec : Pbitvec.t;
  delta_dictvec : Pvector.t;
  delta_dict_idx : Pbtree.t;
  delta_avec : Pvector.t;
  delta_row_idx : Pbtree.t option;
}

type t = {
  alloc : A.t;
  region : Region.t;
  ctrl : int;
  name : string;
  schema : Schema.t;
  main_rows : int;
  begin_v : Pvector.t;
  end_v : Pvector.t;
  main_end : Pvector.t;
  inval : Pvector.t;
  arena : Parena.t;
  cols : col array;
}

let handle t = t.ctrl
let name t = t.name
let schema t = t.schema
let main_rows t = t.main_rows
let delta_rows t = Pvector.length t.begin_v
let row_count t = t.main_rows + delta_rows t
let is_main t r = r < t.main_rows

let check_row t r fn =
  if r < 0 || r >= row_count t then
    invalid_arg (Printf.sprintf "Table.%s: row %d out of %d" fn r (row_count t))

(* -- construction -- *)

let col_entry_off ctrl i = ctrl + cols_base + (i * col_stride)

let write_col_entry region ctrl i ~name_off ~ty_tag ~indexed ~main_dict
    ~main_avec ~delta_dictvec ~delta_dict_idx ~delta_avec ~delta_row_idx
    ~main_dict_crc =
  let e = col_entry_off ctrl i in
  Seal.write region e name_off;
  Seal.write region (e + 8) (ty_tag lor (if indexed then 256 else 0));
  Seal.write region (e + 16) main_dict;
  Seal.write region (e + 24) main_avec;
  Seal.write region (e + 32) delta_dictvec;
  Seal.write region (e + 40) delta_dict_idx;
  Seal.write region (e + 48) delta_avec;
  Seal.write region (e + 56) delta_row_idx;
  Seal.write region (e + 64) main_dict_crc;
  Seal.write region (e + 72) 0

let crc_of_words words =
  let buf = Bytes.create (Array.length words * 8) in
  Array.iteri (fun i w -> Bytes.set_int64_le buf (i * 8) w) words;
  Int32.to_int (Util.Crc.bytes buf) land 0xFFFFFFFF

let fresh_delta alloc (c : Schema.column) =
  let delta_dictvec = Pvector.create alloc in
  let delta_dict_idx = Pbtree.create alloc in
  let delta_avec = Pvector.create alloc in
  let delta_row_idx = if c.indexed then Some (Pbtree.create alloc) else None in
  (delta_dictvec, delta_dict_idx, delta_avec, delta_row_idx)

let build ~alloc ~name ~(schema : Schema.t) ~main_rows ~main_parts ~main_end_cids
    =
  let region = A.region alloc in
  let n = Schema.arity schema in
  let name_off = Pstruct.Pstring.add alloc name in
  let begin_v = Pvector.create alloc in
  let end_v = Pvector.create alloc in
  let main_end = Pvector.create alloc in
  Array.iter (fun cid -> ignore (Pvector.append main_end cid)) main_end_cids;
  Pvector.publish main_end;
  let inval = Pvector.create alloc in
  let arena = Parena.create alloc in
  let add_string = Parena.add arena in
  let cols =
    Array.mapi
      (fun i (c : Schema.column) ->
        let dict_values, avec_ids = main_parts i in
        let dict_words = Array.map (Value.encode_with ~add_string) dict_values in
        let main_dict = Pvector.create alloc in
        Array.iter (fun w -> ignore (Pvector.append main_dict w)) dict_words;
        Pvector.publish main_dict;
        let main_dict_crc = crc_of_words dict_words in
        let main_avec = Pbitvec.build alloc avec_ids in
        let delta_dictvec, delta_dict_idx, delta_avec, delta_row_idx =
          fresh_delta alloc c
        in
        ( {
            cschema = c;
            main_dict;
            main_avec;
            delta_dictvec;
            delta_dict_idx;
            delta_avec;
            delta_row_idx;
          },
          main_dict_crc ))
      schema
  in
  let dict_crcs = Array.map snd cols in
  let cols = Array.map fst cols in
  let ctrl = A.alloc alloc (cols_base + (n * col_stride)) in
  Seal.write region ctrl name_off;
  Seal.write region (ctrl + 8) n;
  Seal.write region (ctrl + 16) main_rows;
  Seal.write region (ctrl + 24) (Pvector.handle begin_v);
  Seal.write region (ctrl + 32) (Pvector.handle end_v);
  Seal.write region (ctrl + 40) (Pvector.handle main_end);
  Seal.write region (ctrl + 48) (Pvector.handle inval);
  Seal.write region (ctrl + 56) (Parena.handle arena);
  Array.iteri
    (fun i col ->
      write_col_entry region ctrl i
        ~name_off:(Pstruct.Pstring.add alloc col.cschema.Schema.name)
        ~ty_tag:(Value.ty_tag col.cschema.Schema.ty)
        ~indexed:col.cschema.Schema.indexed
        ~main_dict:(Pvector.handle col.main_dict)
        ~main_avec:(Pbitvec.handle col.main_avec)
        ~delta_dictvec:(Pvector.handle col.delta_dictvec)
        ~delta_dict_idx:(Pbtree.handle col.delta_dict_idx)
        ~delta_avec:(Pvector.handle col.delta_avec)
        ~delta_row_idx:
          (match col.delta_row_idx with
          | Some idx -> Pbtree.handle idx
          | None -> 0)
        ~main_dict_crc:dict_crcs.(i))
    cols;
  Region.persist region ctrl (cols_base + (n * col_stride));
  A.activate alloc ctrl;
  {
    alloc;
    region;
    ctrl;
    name;
    schema;
    main_rows;
    begin_v;
    end_v;
    main_end;
    inval;
    arena;
    cols;
  }

let create alloc ~name schema =
  build ~alloc ~name ~schema ~main_rows:0
    ~main_parts:(fun _ -> ([||], [||]))
    ~main_end_cids:[||]

let replace_ctrl_for_merge alloc ~name ~schema ~columns ~main_end =
  build ~alloc ~name ~schema
    ~main_rows:(Array.length main_end)
    ~main_parts:(fun i -> columns.(i))
    ~main_end_cids:main_end

let attach alloc ctrl =
  let region = A.region alloc in
  let rd what off = Seal.read region ~what off in
  let name = Pstruct.Pstring.get alloc (rd "table name offset" ctrl) in
  let n = rd "column count" (ctrl + 8) in
  Pcheck.require
    (n >= 0 && n <= 4096)
    ~at:(ctrl + 8) "column count implausible";
  let main_rows = rd "main row count" (ctrl + 16) in
  let begin_v = Pvector.attach alloc (rd "begin vector" (ctrl + 24)) in
  let end_v = Pvector.attach alloc (rd "end vector" (ctrl + 32)) in
  let main_end = Pvector.attach alloc (rd "main-end vector" (ctrl + 40)) in
  let inval = Pvector.attach alloc (rd "invalidation log" (ctrl + 48)) in
  let arena = Parena.attach alloc (rd "arena" (ctrl + 56)) in
  let delta_rows = Pvector.length begin_v in
  (* the begin vector's published length is the row-count authority; every
     other per-row vector was published before it, so they can only be
     longer — truncate the stragglers *)
  Pcheck.require
    (Pvector.length end_v >= delta_rows)
    ~at:(ctrl + 32) "end vector shorter than begin vector";
  Pvector.truncate_volatile end_v delta_rows;
  Pcheck.require
    (Pvector.length main_end = main_rows)
    ~at:(ctrl + 40) "main-end vector length mismatch";
  let cols =
    Array.init n (fun i ->
        let e = col_entry_off ctrl i in
        let cname = Pstruct.Pstring.get alloc (rd "column name offset" e) in
        let tagword = rd "column type word" (e + 8) in
        (if tagword land 0xff > 2 then
           Pcheck.fail ~at:(e + 8) "unknown column type tag");
        let ty = Value.ty_of_tag (tagword land 0xff) in
        let indexed = tagword land 256 <> 0 in
        let delta_avec = Pvector.attach alloc (rd "delta attribute vector" (e + 48)) in
        Pcheck.require
          (Pvector.length delta_avec >= delta_rows)
          ~at:(e + 48) "delta attribute vector shorter than begin vector";
        Pvector.truncate_volatile delta_avec delta_rows;
        let idx_off = rd "delta row index" (e + 56) in
        {
          cschema = Schema.column ~indexed cname ty;
          main_dict = Pvector.attach alloc (rd "main dictionary" (e + 16));
          main_avec = Pbitvec.attach alloc (rd "main attribute vector" (e + 24));
          delta_dictvec = Pvector.attach alloc (rd "delta dictionary" (e + 32));
          delta_dict_idx = Pbtree.attach alloc (rd "delta dictionary index" (e + 40));
          delta_avec;
          delta_row_idx =
            (if idx_off = 0 then None else Some (Pbtree.attach alloc idx_off));
        })
  in
  let schema = Array.map (fun c -> c.cschema) cols in
  {
    alloc;
    region;
    ctrl;
    name;
    schema;
    main_rows;
    begin_v;
    end_v;
    main_end;
    inval;
    arena;
    cols;
  }

(* -- MVCC accessors -- *)

let begin_cid t r =
  check_row t r "begin_cid";
  if is_main t r then Cid.zero else Pvector.get t.begin_v (r - t.main_rows)

let end_cid t r =
  check_row t r "end_cid";
  if is_main t r then Pvector.get t.main_end r
  else Pvector.get t.end_v (r - t.main_rows)

let set_begin_cid t r cid =
  check_row t r "set_begin_cid";
  if is_main t r then invalid_arg "Table.set_begin_cid: main row";
  Pvector.set t.begin_v (r - t.main_rows) cid

let set_end_cid t r cid =
  check_row t r "set_end_cid";
  if is_main t r then begin
    Pvector.set t.main_end r cid;
    (* journal so that restart rollback never scans the whole main *)
    ignore (Pvector.append_int t.inval r);
    ignore (Pvector.append t.inval cid)
  end
  else Pvector.set t.end_v (r - t.main_rows) cid

(* -- data access -- *)

let encoded_value t r i =
  check_row t r "encoded_value";
  let col = t.cols.(i) in
  if is_main t r then Pvector.get col.main_dict (Pbitvec.get col.main_avec r)
  else
    Pvector.get col.delta_dictvec
      (Pvector.get_int col.delta_avec (r - t.main_rows))

let get t r i =
  Value.decode t.alloc t.cols.(i).cschema.Schema.ty (encoded_value t r i)

let get_row t r = Array.init (Array.length t.cols) (get t r)

(* -- delta dictionary -- *)

let delta_vids_of_value_snap t col v =
  (* all delta value-ids encoding [v]: tree hits verified semantically
     (string keys can collide); also returns the walk's generation
     witness, so a staged probe can be revalidated at seal time *)
  let key = Value.dict_key v in
  let vids = ref [] in
  let snap =
    Pbtree.iter_range_snap col.delta_dict_idx ~lo:key ~hi:key (fun _ vid ->
        let w = Pvector.get col.delta_dictvec (Int64.to_int vid) in
        if Value.equal (Value.decode t.alloc col.cschema.Schema.ty w) v then
          vids := Int64.to_int vid :: !vids)
  in
  (List.rev !vids, snap)

let delta_vids_of_value t col v = fst (delta_vids_of_value_snap t col v)

(* encode a value known to be absent from the delta dictionary *)
let delta_vid_new t col v =
  let w = Value.encode_with ~add_string:(Parena.add t.arena) v in
  let vid = Pvector.append col.delta_dictvec w in
  (* dictionary entries are shared across transactions: durable now,
     so the tree can never reference an unpublished value-id *)
  Pvector.publish col.delta_dictvec;
  (* the value-id is fresh, so the (key, vid) pair cannot pre-exist *)
  Pbtree.insert_fresh col.delta_dict_idx (Value.dict_key v) (Int64.of_int vid);
  vid

let delta_vid_for_insert t col v =
  match delta_vids_of_value t col v with
  | vid :: _ -> vid
  | [] -> delta_vid_new t col v

(* -- main dictionary -- *)

let main_vid_of_value t col v =
  let n = Pvector.length col.main_dict in
  let rec bsearch lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let w = Pvector.get col.main_dict mid in
      let c = Value.compare (Value.decode t.alloc col.cschema.Schema.ty w) v in
      if c = 0 then Some mid
      else if c < 0 then bsearch (mid + 1) hi
      else bsearch lo mid
  in
  bsearch 0 n

(* -- lookups -- *)

let rows_with_value t i v =
  let col = t.cols.(i) in
  let acc = ref [] in
  (* main: dictionary binary search, then attribute-vector scan *)
  (match main_vid_of_value t col v with
  | None -> ()
  | Some vid ->
      for r = 0 to t.main_rows - 1 do
        if Pbitvec.get col.main_avec r = vid then acc := r :: !acc
      done);
  (* delta *)
  let dr = delta_rows t in
  (match (delta_vids_of_value t col v, col.delta_row_idx) with
  | [], _ -> ()
  | vids, Some idx ->
      List.iter
        (fun vid ->
          let lo = Int64.shift_left (Int64.of_int vid) 32 in
          let hi = Int64.logor lo 0xFFFFFFFFL in
          Pbtree.iter_range idx ~lo ~hi (fun _ p ->
              let p = Int64.to_int p in
              (* the index may momentarily reference rows whose publication
                 a crash rolled back *)
              if p < dr then acc := (t.main_rows + p) :: !acc))
        vids
  | vids, None ->
      for p = 0 to dr - 1 do
        if List.mem (Pvector.get_int col.delta_avec p) vids then
          acc := (t.main_rows + p) :: !acc
      done);
  List.sort_uniq Int.compare !acc

(* -- writes -- *)

let append_row_with t values vid_for =
  Schema.validate_row t.schema values;
  let p = delta_rows t in
  Array.iteri
    (fun i v ->
      let col = t.cols.(i) in
      let vid = vid_for i col v in
      let p' = Pvector.append_int col.delta_avec vid in
      assert (p' = p);
      match col.delta_row_idx with
      | None -> ()
      | Some idx ->
          let key =
            Int64.logor
              (Int64.shift_left (Int64.of_int vid) 32)
              (Int64.of_int p)
          in
          (* the key embeds the fresh physical row: never a duplicate *)
          Pbtree.insert_fresh idx key (Int64.of_int p))
    values;
  ignore (Pvector.append t.end_v Cid.infinity);
  let p' = Pvector.append t.begin_v Cid.infinity in
  assert (p' = p);
  t.main_rows + p

let append_row t values =
  append_row_with t values (fun _ col v -> delta_vid_for_insert t col v)

(* Lane-side half of the writer pipeline's staged insert: pure Region
   reads. Probing the delta dictionary now both validates the row early
   and caches the probe result, so the serial seal's
   [append_row_prepared] skips the dictionary walk entirely: a hit
   stays valid forever (delta dictionaries are append-only), and a miss
   carries the walk's generation witness — still valid at seal time, it
   proves the value is still absent, so the seal can take the
   fresh-insert path without re-reading a single leaf. *)
type dict_probe = Dict_hit of int | Dict_miss of Pbtree.snap

let stage_probe t values =
  Schema.validate_row t.schema values;
  Array.mapi
    (fun i v ->
      match delta_vids_of_value_snap t t.cols.(i) v with
      | vid :: _, _ -> Dict_hit vid
      | [], snap -> Dict_miss snap)
    values

let append_row_prepared ?stale t ~vids values =
  if Array.length vids <> Array.length t.cols then
    invalid_arg "Table.append_row_prepared: vid count mismatch";
  append_row_with t values (fun i col v ->
      match vids.(i) with
      | Dict_hit vid -> vid
      | Dict_miss snap ->
          if Pbtree.snap_valid col.delta_dict_idx snap then
            delta_vid_new t col v
          else begin
            (* an epoch peer touched the probed leaves (possibly
               inserting this very value): fall back to the full walk *)
            (match stale with Some c -> incr c | None -> ());
            delta_vid_for_insert t col v
          end)

let stage_publish_secondary t =
  Array.iter (fun col -> Pvector.publish_unfenced col.delta_avec) t.cols;
  Pvector.publish_unfenced t.end_v;
  Pvector.publish_unfenced t.inval

let stage_publish_begin t = Pvector.publish_unfenced t.begin_v

let fence t =
  (* a delete-only or no-op stage leaves nothing scheduled; fencing then
     would be pure latency *)
  Region.fence_if_pending t.region

let publish t =
  (* one fence covers staged row data and the secondary lengths; the
     begin length becomes durable strictly after them. A stage that
     published nothing (read-only commit, unchanged vectors) leaves
     nothing pending and its fence is elided. *)
  stage_publish_secondary t;
  Region.fence_if_pending t.region;
  stage_publish_begin t;
  Region.fence_if_pending t.region

let publish_each_vector t =
  Array.iter (fun col -> Pvector.publish col.delta_avec) t.cols;
  Pvector.publish t.end_v;
  Pvector.publish t.inval;
  (* last: row-existence authority *)
  Pvector.publish t.begin_v

(* -- recovery -- *)

(* Restart rollback is split into an analyze half (pure reads: scan the
   delta begin/end CID vectors and the invalidation log) and an apply
   half (the resets plus one fence). The engine runs the analyze half of
   every table on the pool during recovery and applies serially — the
   read cost is the O(delta + invalidations) part, the writes are a
   handful of uncommitted rows. *)

type rollback_plan = {
  rp_begin : Util.Intbuf.t; (* delta positions with uncommitted begin *)
  rp_end : Util.Intbuf.t; (* delta positions with uncommitted end *)
  rp_main : Util.Intbuf.t; (* main rows whose invalidation is undone *)
}

let rollback_plan t ~last_cid =
  let plan =
    {
      rp_begin = Util.Intbuf.create 16;
      rp_end = Util.Intbuf.create 16;
      rp_main = Util.Intbuf.create 16;
    }
  in
  let dr = delta_rows t in
  for p = 0 to dr - 1 do
    let b = Pvector.get t.begin_v p in
    if b <> Cid.infinity && Int64.compare b last_cid > 0 then
      Util.Intbuf.push plan.rp_begin p;
    let e = Pvector.get t.end_v p in
    if e <> Cid.infinity && Int64.compare e last_cid > 0 then
      Util.Intbuf.push plan.rp_end p
  done;
  let entries = Pvector.length t.inval / 2 in
  (* a row appears at most once in the plan: a second log entry for the
     same row cannot match the stored end-CID once the first reset runs *)
  let planned = Hashtbl.create 16 in
  for k = 0 to entries - 1 do
    let r = Pvector.get_int t.inval (2 * k) in
    let cid = Pvector.get t.inval ((2 * k) + 1) in
    if
      Int64.compare cid last_cid > 0
      && Pvector.get t.main_end r = cid
      && not (Hashtbl.mem planned r)
    then begin
      Hashtbl.replace planned r ();
      Util.Intbuf.push plan.rp_main r
    end
  done;
  plan

let rollback_apply t plan =
  Util.Intbuf.iter (fun p -> Pvector.set t.begin_v p Cid.infinity) plan.rp_begin;
  Util.Intbuf.iter (fun p -> Pvector.set t.end_v p Cid.infinity) plan.rp_end;
  Util.Intbuf.iter (fun r -> Pvector.set t.main_end r Cid.infinity) plan.rp_main;
  Region.fence_if_pending t.region;
  Util.Intbuf.length plan.rp_begin
  + Util.Intbuf.length plan.rp_end
  + Util.Intbuf.length plan.rp_main

let rollback_uncommitted t ~last_cid =
  rollback_apply t (rollback_plan t ~last_cid)

(* -- introspection -- *)

let allocator t = t.alloc

let main_vid t i r = Pbitvec.get t.cols.(i).main_avec r

let delta_vid t i p = Pvector.get_int t.cols.(i).delta_avec p

(* -- block accessors (the vectorized scan path) -- *)

let main_vids_into t i ~pos ~len dst =
  Pbitvec.unpack_into t.cols.(i).main_avec ~pos ~len dst

let delta_vids_into t i ~pos ~len dst =
  Pvector.read_into_int t.cols.(i).delta_avec ~pos ~len dst

let main_end_cids_into t ~pos ~len dst =
  Pvector.read_into_int_sat t.main_end ~pos ~len dst

let delta_begin_cids_into t ~pos ~len dst =
  Pvector.read_into_int_sat t.begin_v ~pos ~len dst

let delta_end_cids_into t ~pos ~len dst =
  Pvector.read_into_int_sat t.end_v ~pos ~len dst

(* Sparse gathers: when a block's predicates leave few survivors, reading
   only their CIDs costs [n] accounted loads instead of the bulk read's
   one per row — the block engine picks per block. *)

let main_end_cids_gather t ~pos sel n dst =
  for k = 0 to n - 1 do
    let p = sel.(k) in
    dst.(p) <- Pvector.get_int_sat t.main_end (pos + p)
  done

let delta_begin_cids_gather t ~pos sel n dst =
  for k = 0 to n - 1 do
    let p = sel.(k) in
    dst.(p) <- Pvector.get_int_sat t.begin_v (pos + p)
  done

let delta_end_cids_gather t ~pos sel n dst =
  for k = 0 to n - 1 do
    let p = sel.(k) in
    dst.(p) <- Pvector.get_int_sat t.end_v (pos + p)
  done

let main_dict_value t i vid =
  Value.decode t.alloc t.cols.(i).cschema.Schema.ty
    (Pvector.get t.cols.(i).main_dict vid)

let delta_dict_value t i vid =
  Value.decode t.alloc t.cols.(i).cschema.Schema.ty
    (Pvector.get t.cols.(i).delta_dictvec vid)

let owned_blocks t =
  let col_blocks col =
    Pvector.owned_blocks col.main_dict
    @ Pbitvec.owned_blocks col.main_avec
    @ Pvector.owned_blocks col.delta_dictvec
    @ Pbtree.owned_blocks col.delta_dict_idx
    @ Pvector.owned_blocks col.delta_avec
    @ (match col.delta_row_idx with
      | Some idx -> Pbtree.owned_blocks idx
      | None -> [])
  in
  (t.ctrl :: Seal.read t.region ~what:"table name offset" t.ctrl
   :: List.init (Array.length t.cols) (fun i ->
          Seal.read t.region ~what:"column name offset" (col_entry_off t.ctrl i)))
  @ Pvector.owned_blocks t.begin_v
  @ Pvector.owned_blocks t.end_v
  @ Pvector.owned_blocks t.main_end
  @ Pvector.owned_blocks t.inval
  @ Parena.owned_blocks t.arena
  @ List.concat_map col_blocks (Array.to_list t.cols)

let name_string_offsets t =
  Seal.read t.region ~what:"table name offset" t.ctrl
  :: List.init (Array.length t.cols) (fun i ->
         Seal.read t.region ~what:"column name offset" (col_entry_off t.ctrl i))

let delta_dictionary_size t i = Pvector.length t.cols.(i).delta_dictvec
let main_dictionary_size t i = Pvector.length t.cols.(i).main_dict

let nvm_bytes t =
  let base =
    cols_base
    + (Array.length t.cols * col_stride)
    + Pvector.words_on_nvm t.begin_v
    + Pvector.words_on_nvm t.end_v
    + Pvector.words_on_nvm t.main_end
    + Pvector.words_on_nvm t.inval
    + Parena.bytes_on_nvm t.arena
  in
  Array.fold_left
    (fun acc col ->
      acc
      + Pvector.words_on_nvm col.main_dict
      + Pbitvec.bytes_on_nvm col.main_avec
      + Pvector.words_on_nvm col.delta_dictvec
      + Pbtree.bytes_on_nvm col.delta_dict_idx
      + Pvector.words_on_nvm col.delta_avec
      +
      match col.delta_row_idx with
      | Some idx -> Pbtree.bytes_on_nvm idx
      | None -> 0)
    base t.cols

(* -- verification -- *)

let verify_dict_strings region dict =
  for j = 0 to Pvector.length dict - 1 do
    let w = Pvector.get dict j in
    let off = Int64.to_int w in
    Pcheck.require
      (off > 0 && off + 8 <= Region.size region)
      ~at:(Pvector.handle dict) "text dictionary offset out of bounds";
    Pstruct.Pstring.verify_at region off
  done

(* MVCC timestamp words are write-hot, so they carry no checksum; what
   they CAN carry is a value-domain check. Durable CIDs are non-negative,
   and a main-partition end-CID above the committed high-water mark is
   only legitimate while its invalidation journal entry (the pair restart
   rollback uses to heal it) exists — so a fault that knocks a live row's
   [infinity] sentinel into a finite value is detectable, while faults
   that keep a cid on the same side of [last_cid] leave the visibility
   predicate's verdict at any post-recovery snapshot unchanged. Delta
   begin/end words can hold legitimate in-flight values above the mark
   right up to the crash, so they only get the sign check. *)
let cid_fail ~at what =
  Nvm.Seal.count_failure ();
  Pcheck.fail ~at what

let verify_cids ~last_cid t =
  let nonneg ~at what v =
    if Int64.compare v 0L < 0 && v <> Cid.infinity then cid_fail ~at what
  in
  for p = 0 to delta_rows t - 1 do
    nonneg ~at:(Pvector.handle t.begin_v) "delta begin-cid negative"
      (Pvector.get t.begin_v p);
    nonneg ~at:(Pvector.handle t.end_v) "delta end-cid negative"
      (Pvector.get t.end_v p)
  done;
  let entries = Pvector.length t.inval / 2 in
  let journal = Hashtbl.create (max 16 entries) in
  for k = 0 to entries - 1 do
    let r = Pvector.get_int t.inval (2 * k) in
    let cid = Pvector.get t.inval ((2 * k) + 1) in
    if r < 0 || r >= t.main_rows then
      cid_fail ~at:(Pvector.handle t.inval) "invalidation log row out of range";
    nonneg ~at:(Pvector.handle t.inval) "invalidation log cid negative" cid;
    Hashtbl.replace journal (r, cid) ()
  done;
  for r = 0 to t.main_rows - 1 do
    let e = Pvector.get t.main_end r in
    nonneg ~at:(Pvector.handle t.main_end) "main end-cid negative" e;
    if
      e <> Cid.infinity
      && Int64.compare e last_cid > 0
      && not (Hashtbl.mem journal (r, e))
    then
      cid_fail ~at:(Pvector.handle t.main_end)
        "main end-cid beyond commit point with no journal entry"
  done

let verify ?(deep = false) ?last_cid t =
  let region = t.region in
  let dr = delta_rows t in
  Pvector.verify t.begin_v;
  Pvector.verify t.end_v;
  Pvector.verify t.main_end;
  Pvector.verify t.inval;
  Parena.verify t.arena;
  Pcheck.require (t.main_rows >= 0) ~at:(t.ctrl + 16) "negative main row count";
  Pcheck.require
    (Pvector.length t.main_end = t.main_rows)
    ~at:(t.ctrl + 40) "main-end vector length mismatch";
  Pcheck.require
    (Pvector.length t.inval land 1 = 0)
    ~at:(t.ctrl + 48) "invalidation log has odd length";
  (match last_cid with
  | Some last when deep -> verify_cids ~last_cid:last t
  | _ -> ());
  Array.iteri
    (fun i col ->
      let e = col_entry_off t.ctrl i in
      Pvector.verify col.main_dict;
      Pbitvec.verify ~deep col.main_avec;
      Pvector.verify col.delta_dictvec;
      Pbtree.verify ~deep col.delta_dict_idx;
      Pvector.verify col.delta_avec;
      Option.iter (Pbtree.verify ~deep) col.delta_row_idx;
      Pcheck.require
        (Pbitvec.length col.main_avec = t.main_rows)
        ~at:(e + 24) "main attribute vector length mismatch";
      if deep then begin
        (* main dictionary content checksum, stored sealed at entry +64 *)
        let stored = Seal.read region ~what:"main dictionary checksum" (e + 64) in
        let words =
          Array.init (Pvector.length col.main_dict) (Pvector.get col.main_dict)
        in
        if crc_of_words words <> stored then begin
          Nvm.Seal.count_failure ();
          Pcheck.fail ~at:(e + 64) "main dictionary checksum mismatch"
        end;
        (* every attribute-vector id must resolve inside its dictionary *)
        let ndict = Pvector.length col.main_dict in
        for r = 0 to t.main_rows - 1 do
          if Pbitvec.get col.main_avec r >= ndict then
            Pcheck.fail ~at:(e + 24) "main attribute id out of dictionary"
        done;
        let ndelta = Pvector.length col.delta_dictvec in
        for r = 0 to dr - 1 do
          if Int64.to_int (Pvector.get col.delta_avec r) >= ndelta then
            Pcheck.fail ~at:(e + 48) "delta attribute id out of dictionary"
        done;
        if col.cschema.ty = Value.Text_t then begin
          verify_dict_strings region col.main_dict;
          verify_dict_strings region col.delta_dictvec
        end
      end)
    t.cols;
  if deep then begin
    Pstruct.Pstring.verify t.alloc
      (Seal.read region ~what:"table name offset" t.ctrl);
    Array.iteri
      (fun i _ ->
        Pstruct.Pstring.verify t.alloc
          (Seal.read region ~what:"column name offset" (col_entry_off t.ctrl i)))
      t.cols
  end

(* -- segment-granular damage map (online instant restore) -- *)

let segment_rows = Pbitvec.segment_entries

let segment_count t = (row_count t + segment_rows - 1) / segment_rows

type segment_report = {
  sr_damaged : int list;
  sr_structural : bool;
  sr_reseal : int list;
}

(* Row-addressable damage condemns one 4K-row segment; anything whose
   blast radius cannot be mapped to a row range (control words,
   dictionaries, trees, the arena, the invalidation journal) condemns
   the table structurally. Unlike [verify], this never raises: it is
   the serve-while-salvaging damage map, so a bad word must flag and
   move on, not abort the sweep. *)
let verify_segments ?(deep = false) ?last_cid t =
  let dr = delta_rows t in
  let damaged = Hashtbl.create 8 in
  let flag_seg s = Hashtbl.replace damaged s () in
  let flag r = flag_seg (r / segment_rows) in
  let reseal = ref [] in
  let structural = ref false in
  (try
     (* structure first: the non-row-addressable subset of [verify] *)
     Pvector.verify t.begin_v;
     Pvector.verify t.end_v;
     Pvector.verify t.main_end;
     Pvector.verify t.inval;
     Parena.verify t.arena;
     Pcheck.require (t.main_rows >= 0) ~at:(t.ctrl + 16)
       "negative main row count";
     Pcheck.require
       (Pvector.length t.main_end = t.main_rows)
       ~at:(t.ctrl + 40) "main-end vector length mismatch";
     Pcheck.require
       (Pvector.length t.inval land 1 = 0)
       ~at:(t.ctrl + 48) "invalidation log has odd length";
     Array.iteri
       (fun i col ->
         let e = col_entry_off t.ctrl i in
         Pvector.verify col.main_dict;
         Pbitvec.verify col.main_avec;
         Pvector.verify col.delta_dictvec;
         Pbtree.verify ~deep col.delta_dict_idx;
         Pvector.verify col.delta_avec;
         Option.iter (Pbtree.verify ~deep) col.delta_row_idx;
         Pcheck.require
           (Pbitvec.length col.main_avec = t.main_rows)
           ~at:(e + 24) "main attribute vector length mismatch";
         if deep then begin
           let stored =
             Seal.read t.region ~what:"main dictionary checksum" (e + 64)
           in
           let words =
             Array.init (Pvector.length col.main_dict)
               (Pvector.get col.main_dict)
           in
           if crc_of_words words <> stored then begin
             Nvm.Seal.count_failure ();
             Pcheck.fail ~at:(e + 64) "main dictionary checksum mismatch"
           end;
           if col.cschema.ty = Value.Text_t then begin
             verify_dict_strings t.region col.main_dict;
             verify_dict_strings t.region col.delta_dictvec
           end
         end)
       t.cols;
     if deep then begin
       Pstruct.Pstring.verify t.alloc
         (Seal.read t.region ~what:"table name offset" t.ctrl);
       Array.iteri
         (fun i _ ->
           Pstruct.Pstring.verify t.alloc
             (Seal.read t.region ~what:"column name offset"
                (col_entry_off t.ctrl i)))
         t.cols
     end
   with
  | Pcheck.Invalid _ | Seal.Corrupt _ | A.Heap_corrupt _ | Invalid_argument _
  | Not_found
  | Failure _ ->
      structural := true);
  if not !structural then begin
    (* row-addressable sweeps (tolerant; garbage values flag, never raise) *)
    Array.iteri
      (fun i col ->
        let rep = Pbitvec.verify_segments ~deep col.main_avec in
        List.iter flag_seg rep.Pbitvec.sr_damaged;
        if rep.Pbitvec.sr_reseal then reseal := i :: !reseal;
        if deep then begin
          let ndict = Pvector.length col.main_dict in
          for r = 0 to t.main_rows - 1 do
            if Pbitvec.get col.main_avec r >= ndict then begin
              Nvm.Seal.count_failure ();
              flag r
            end
          done;
          let ndelta = Pvector.length col.delta_dictvec in
          for p = 0 to dr - 1 do
            if Int64.to_int (Pvector.get col.delta_avec p) >= ndelta then begin
              Nvm.Seal.count_failure ();
              flag (t.main_rows + p)
            end
          done
        end)
      t.cols;
    match last_cid with
    | Some last when deep ->
        let neg v = Int64.compare v 0L < 0 && v <> Cid.infinity in
        for p = 0 to dr - 1 do
          if neg (Pvector.get t.begin_v p) || neg (Pvector.get t.end_v p)
          then begin
            Nvm.Seal.count_failure ();
            flag (t.main_rows + p)
          end
        done;
        let entries = Pvector.length t.inval / 2 in
        let journal = Hashtbl.create (max 16 entries) in
        for k = 0 to entries - 1 do
          let r = Pvector.get_int t.inval (2 * k) in
          let cid = Pvector.get t.inval ((2 * k) + 1) in
          if r < 0 || r >= t.main_rows || neg cid then begin
            (* the journal is rollback's healing authority: a corrupt
               entry is not addressable to the row it claims *)
            Nvm.Seal.count_failure ();
            structural := true
          end
          else Hashtbl.replace journal (r, cid) ()
        done;
        if not !structural then
          for r = 0 to t.main_rows - 1 do
            let e = Pvector.get t.main_end r in
            if
              neg e
              || e <> Cid.infinity
                 && Int64.compare e last > 0
                 && not (Hashtbl.mem journal (r, e))
            then begin
              Nvm.Seal.count_failure ();
              flag r
            end
          done
    | _ -> ()
  end;
  {
    sr_damaged = List.sort compare (Hashtbl.fold (fun s () l -> s :: l) damaged []);
    sr_structural = !structural;
    sr_reseal = List.sort compare !reseal;
  }

(* -- online restore: byte-exact in-place segment repair -- *)

(* [src] is the salvage twin — a volatile rebuild from checkpoint +
   salvage log bounded at the durable commit point, so its rows are the
   committed truth with the same row numbering. [rows] clamps the repair
   to the row count captured at quarantine time: rows appended after the
   damage map was taken are fresh writes, not casualties. Twin rows are
   re-encoded against [t]'s own dictionaries (identical by construction,
   since dictionary damage is structural and takes the full-rebuild path
   instead), so the patch reproduces the original bytes and the stored
   whole-payload CRCs remain authoritative. *)
let restore_segment t ~from:src ~seg ~rows =
  if main_rows src <> t.main_rows then
    invalid_arg "Table.restore_segment: main row-count mismatch with twin";
  let lo = seg * segment_rows in
  let hi = min rows ((seg + 1) * segment_rows) in
  if hi > lo then begin
    Region.with_label t.region "table.restore_segment" @@ fun () ->
    let mhi = min hi t.main_rows in
    if mhi > lo then begin
      Array.iteri
        (fun i col ->
          let vids = Pbitvec.get_block src.cols.(i).main_avec ~pos:lo ~len:(mhi - lo) in
          Pbitvec.patch_segment col.main_avec ~seg vids)
        t.cols;
      for r = lo to mhi - 1 do
        Pvector.set t.main_end r (Pvector.get src.main_end r)
      done
    end;
    let dlo = max lo t.main_rows in
    let src_rows = row_count src in
    for r = dlo to hi - 1 do
      let p = r - t.main_rows in
      if r < src_rows then begin
        Array.iteri
          (fun i col ->
            let vid = delta_vid_for_insert t col (get src r i) in
            Pvector.set_int col.delta_avec p vid)
          t.cols;
        Pvector.set t.begin_v p (Pvector.get src.begin_v p);
        Pvector.set t.end_v p (Pvector.get src.end_v p)
      end
      else begin
        (* beyond the twin: the row was uncommitted at the crash — dead *)
        Pvector.set t.begin_v p Cid.infinity;
        Pvector.set t.end_v p Cid.infinity
      end
    done;
    Region.fence_if_pending t.region
  end

let reseal_main_avec t i = Pbitvec.reseal t.cols.(i).main_avec

let destroy t =
  Array.iter
    (fun col ->
      Pvector.destroy col.main_dict;
      Pbitvec.destroy col.main_avec;
      Pvector.destroy col.delta_dictvec;
      Pbtree.destroy col.delta_dict_idx;
      Pvector.destroy col.delta_avec;
      match col.delta_row_idx with
      | Some idx -> Pbtree.destroy idx
      | None -> ())
    t.cols;
  Pvector.destroy t.begin_v;
  Pvector.destroy t.end_v;
  Pvector.destroy t.main_end;
  Pvector.destroy t.inval;
  Parena.destroy t.arena;
  A.free t.alloc t.ctrl
