(** Growable int buffer with amortized O(1) push. *)

type t

val create : int -> t
(** [create cap] — initial capacity (at least 1). *)

val length : t -> int
val push : t -> int -> unit
val get : t -> int -> int
val iter : (int -> unit) -> t -> unit
val to_array : t -> int array
val clear : t -> unit
