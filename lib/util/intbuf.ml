(* Growable int buffer: the scan engine's per-chunk row accumulator and
   the allocator's heap-skeleton record. Amortized O(1) push, no boxing. *)

type t = { mutable data : int array; mutable len : int }

let create cap = { data = Array.make (max cap 1) 0; len = 0 }

let length t = t.len

let push t v =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * Array.length t.data) 0 in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Intbuf.get";
  t.data.(i)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let to_array t = Array.sub t.data 0 t.len

let clear t = t.len <- 0
