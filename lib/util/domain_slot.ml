(* Dense per-domain slot indices for sharded accounting.

   Domain ids are unbounded (every spawn gets a fresh one), so data
   structures that want one accounting shard per *live* domain index by a
   small dense slot instead: the initial domain and any thread that never
   joined a pool read slot 0; pool workers are assigned slots 1 .. n-1 at
   spawn.  The slot lives in domain-local storage, so reading it is a
   single DLS load on the hot paths that shard by it (Region counters,
   Pvector/Pbitvec scratch buffers). *)

let max_slots = 64

let key = Domain.DLS.new_key (fun () -> 0)

let get () = Domain.DLS.get key

let set s =
  if s < 0 || s >= max_slots then invalid_arg "Domain_slot.set: out of range";
  Domain.DLS.set key s
