(* CRC32 (IEEE 802.3 polynomial, table-driven), shared by the WAL frame
   codec and the NVM media checksums. One table, computed lazily on first
   use; all entry points fold over the same [step]. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let[@inline] step table c byte =
  let idx = Int32.to_int (Int32.logand (Int32.logxor c (Int32.of_int byte)) 0xFFl) in
  Int32.logxor (Array.unsafe_get table idx) (Int32.shift_right_logical c 8)

let init = 0xFFFFFFFFl
let finish c = Int32.logxor c 0xFFFFFFFFl

let string s =
  let t = Lazy.force table in
  let c = ref init in
  String.iter (fun ch -> c := step t !c (Char.code ch)) s;
  finish !c

let bytes_sub b pos len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc.bytes_sub: range out of bounds";
  let t = Lazy.force table in
  let c = ref init in
  for i = pos to pos + len - 1 do
    c := step t !c (Char.code (Bytes.unsafe_get b i))
  done;
  finish !c

let bytes b = bytes_sub b 0 (Bytes.length b)

(* CRC of the low 48 bits of an int, fed least-significant byte first.
   Used by Nvm.Seal to tag metadata words; kept here so the polynomial
   lives in exactly one place. *)
let int48 v =
  let t = Lazy.force table in
  let c = ref init in
  for shift = 0 to 5 do
    c := step t !c ((v lsr (shift * 8)) land 0xFF)
  done;
  finish !c
