(** Log-bucketed histograms for latency and size distributions.

    Values are recorded as non-negative integers (typically nanoseconds or
    bytes). Buckets grow geometrically, giving ~2% relative error across
    twelve orders of magnitude at a fixed, small footprint — the standard
    HdrHistogram-style trade-off used by benchmark harnesses. *)

type t

val create : unit -> t

val clear : t -> unit

val record : t -> int -> unit
(** [record t v] adds observation [v] (clamped at 0). *)

val record_n : t -> int -> int -> unit
(** [record_n t v count] adds [count] observations of [v]. *)

val count : t -> int
(** Number of recorded observations. *)

val total : t -> int
(** Sum of all recorded observations. *)

val min_value : t -> int
(** Smallest recorded observation. Raises [Invalid_argument] if empty. *)

val max_value : t -> int
(** Largest recorded observation. Raises [Invalid_argument] if empty. *)

val mean : t -> float
(** Arithmetic mean. Raises [Invalid_argument] if empty. *)

val percentile : t -> float -> int
(** [percentile t p] with [p] in [\[0, 100\]]: the value at the given
    percentile, accurate to the bucket width (~1.6% relative), clamped to
    the recorded [\[min, max\]]. Values below the linear cutoff (128) are
    reported exactly; a percentile whose rank reaches the last observation
    returns the exact maximum. Raises [Invalid_argument] if empty. *)

val quantile : t -> float -> int
(** [quantile t q] with [q] in [\[0, 1\]] — same as
    [percentile t (q *. 100.)]. *)

val merge_into : src:t -> dst:t -> unit
(** Accumulate [src]'s observations into [dst]. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line summary: count, mean, p50/p95/p99, max. *)
