(* Buckets: values 0..127 map to their own bucket; above that, each
   half-decade in log2 space is split into 64 sub-buckets.  bucket(v) for
   v >= 128 is [64 * (log2 v - 6) + sub], giving <= ~1.6% relative width. *)

let linear_cutoff = 128
let sub_bucket_bits = 6
let sub_buckets = 1 lsl sub_bucket_bits
let max_buckets = linear_cutoff + (64 * sub_buckets)

type t = {
  buckets : int array;
  mutable count : int;
  mutable total : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create () =
  {
    buckets = Array.make max_buckets 0;
    count = 0;
    total = 0;
    min_v = max_int;
    max_v = 0;
  }

let clear t =
  Array.fill t.buckets 0 max_buckets 0;
  t.count <- 0;
  t.total <- 0;
  t.min_v <- max_int;
  t.max_v <- 0

let log2_floor v =
  (* v >= 1 *)
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let bucket_of_value v =
  if v < linear_cutoff then v
  else
    let exp = log2_floor v in
    (* take the [sub_bucket_bits] bits below the leading one *)
    let sub = (v lsr (exp - sub_bucket_bits)) land (sub_buckets - 1) in
    let idx = linear_cutoff + ((exp - 7) * sub_buckets) + sub in
    if idx >= max_buckets then max_buckets - 1 else idx

let value_of_bucket b =
  if b < linear_cutoff then b
  else
    let b = b - linear_cutoff in
    let exp = (b / sub_buckets) + 7 in
    let sub = b mod sub_buckets in
    (* LOWER edge: the smallest value that maps to this bucket. Reporting
       the upper edge overstates quantiles for exactly-representable
       values (a distribution of pure 128s would report p50 = 129). *)
    (1 lsl exp) + (sub lsl (exp - sub_bucket_bits))

let record_n t v count =
  assert (count >= 0);
  if count > 0 then begin
    let v = if v < 0 then 0 else v in
    let b = bucket_of_value v in
    t.buckets.(b) <- t.buckets.(b) + count;
    t.count <- t.count + count;
    t.total <- t.total + (v * count);
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end

let record t v = record_n t v 1

let count t = t.count
let total t = t.total

let check_nonempty t fn =
  if t.count = 0 then invalid_arg (Printf.sprintf "Histogram.%s: empty" fn)

let min_value t =
  check_nonempty t "min_value";
  t.min_v

let max_value t =
  check_nonempty t "max_value";
  t.max_v

let mean t =
  check_nonempty t "mean";
  float_of_int t.total /. float_of_int t.count

let percentile t p =
  check_nonempty t "percentile";
  let p = if p < 0.0 then 0.0 else if p > 100.0 then 100.0 else p in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.count)) in
  let rank = if rank < 1 then 1 else rank in
  (* the top order statistic is the recorded maximum, exactly *)
  if rank >= t.count then t.max_v
  else
    let rec go b seen =
      if b >= max_buckets then t.max_v
      else
        let seen = seen + t.buckets.(b) in
        if seen >= rank then max (min (value_of_bucket b) t.max_v) t.min_v
        else go (b + 1) seen
    in
    go 0 0

let quantile t q = percentile t (q *. 100.0)

let merge_into ~src ~dst =
  for b = 0 to max_buckets - 1 do
    dst.buckets.(b) <- dst.buckets.(b) + src.buckets.(b)
  done;
  dst.count <- dst.count + src.count;
  dst.total <- dst.total + src.total;
  if src.count > 0 then begin
    if src.min_v < dst.min_v then dst.min_v <- src.min_v;
    if src.max_v > dst.max_v then dst.max_v <- src.max_v
  end

let pp_summary ppf t =
  if t.count = 0 then Format.fprintf ppf "(empty)"
  else
    Format.fprintf ppf "n=%d mean=%.1f p50=%d p95=%d p99=%d max=%d" t.count
      (mean t) (percentile t 50.0) (percentile t 95.0) (percentile t 99.0)
      t.max_v
