(** CRC32 (IEEE 802.3), the one checksum used across the system: WAL frame
    and checkpoint trailers, NVM payload checksums, and the 16-bit tags on
    sealed metadata words. *)

val string : string -> int32
(** CRC32 of a whole string. *)

val bytes : Bytes.t -> int32
(** CRC32 of a whole byte buffer. *)

val bytes_sub : Bytes.t -> int -> int -> int32
(** [bytes_sub b pos len] checksums [len] bytes starting at [pos].
    @raise Invalid_argument if the range is out of bounds. *)

val int48 : int -> int32
(** CRC32 of the low 48 bits of an int, least-significant byte first. *)
