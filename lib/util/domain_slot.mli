(** Dense per-domain slot indices for sharded accounting.

    Sharded data structures (Region op counters, per-structure scratch
    buffers) keep one shard per slot rather than per domain id, because
    domain ids grow without bound. The initial domain — and any domain
    that was never assigned — reads slot [0]; the domain pool assigns its
    workers slots [1 .. jobs-1] at spawn. *)

val max_slots : int
(** Upper bound on slots (and therefore on useful pool width). *)

val get : unit -> int
(** This domain's slot; [0] unless {!set} was called on this domain. *)

val set : int -> unit
(** Assign this domain's slot. Raises [Invalid_argument] outside
    [0, max_slots). *)
