(** Recovery-aware persistent allocator on a simulated NVM region.

    Reproduces the allocation contract of nvm_malloc (Schwalb et al.,
    ADMS 2015), the allocator underneath Hyrise-NV:

    - {b reserve → initialize → activate}: [alloc] returns a RESERVED
      block; the caller initializes and persists the payload, then calls
      [activate]. A crash before activation reclaims the block at recovery,
      so half-initialized objects can never leak into a recovered heap.
    - {b atomic link-in-activate}: [activate] optionally takes a link — a
      pointer word inside some reachable structure that should point to the
      new block. The link intent is persisted in the block header before
      the state flips to ALLOCATED, so recovery can redo the link if the
      crash hit between activation and the pointer store. Allocation and
      publication are thereby atomic.
    - {b named roots}: a fixed table of root slots survives restarts;
      recovered data structures are found by walking their root offsets.
    - {b recovery scan}: [open_existing] walks the block headers, reclaims
      RESERVED blocks, redoes pending links, and rebuilds the volatile
      segregated free lists.

    Offsets handed out are absolute byte offsets into the region, 8-byte
    aligned; the allocator never moves a block (no compaction), which is
    what permits persistent intra-heap pointers. *)

type t

type offset = int
(** Absolute byte offset of a block payload within the region. *)

exception Out_of_space of int
(** Raised by [alloc] when no free block can satisfy the request; carries
    the requested size. *)

type corruption = { at : int; what : string }
(** Where ([at], a region byte offset) and what kind of damage a heap
    walk found. *)

exception Heap_corrupt of corruption
(** Raised by [open_existing] (and any later heap walk) when the header
    magic, a sealed metadata word, or the block chain is invalid. Every
    size hop is bounds-checked and the chain length capped, so a
    corrupted header surfaces as this structured error — never as an
    out-of-range region access or a non-terminating scan. Each raise on
    a sealed-word failure also bumps [media.crc_failures]. *)

val root_slots : int
(** Number of named root slots (root ids are [0 .. root_slots - 1]). *)

val min_region_size : int
(** Smallest region [format] accepts. *)

val format : Nvm.Region.t -> t
(** Initialize a fresh heap over the whole region, destroying previous
    contents. All roots are null, the heap is one free block. Durable on
    return. *)

val open_existing : Nvm.Region.t -> t
(** Re-open a heap after a crash or restart. Performs the recovery scan.
    Raises {!Heap_corrupt} if the region was never formatted or the
    media is damaged. *)

val region : t -> Nvm.Region.t

val alloc : t -> int -> offset
(** [alloc t n] reserves a block with at least [n] payload bytes (rounded
    up to 8). The block is RESERVED: it will be reclaimed by recovery until
    [activate] is called. The payload contents are unspecified. *)

val activate : ?link:offset * int64 -> t -> offset -> unit
(** [activate t off] flips the block to ALLOCATED (durable). With
    [~link:(addr, v)], additionally stores [v] at region offset [addr] —
    atomically with respect to crashes: after recovery either the block is
    free and [addr] untouched, or the block is allocated and [addr] = [v].
    [addr] must be 8-byte aligned. *)

val free : t -> offset -> unit
(** Return a block to the free list (durable). The caller is responsible
    for having unlinked it first; freeing a still-reachable block is the
    use-after-free of persistent heaps. Adjacent free blocks are
    coalesced. *)

val usable_size : t -> offset -> int
(** Actual payload capacity of an allocated or reserved block. *)

val set_root : t -> int -> offset -> unit
(** [set_root t slot off] durably stores a root pointer (0 = null).
    Atomic: a crash observes either the old or the new value. *)

val get_root : t -> int -> offset
(** [get_root t slot] reads a root pointer; 0 means null. *)

val sweep : t -> live:(offset -> bool) -> int * int
(** [sweep t ~live] walks the heap and frees every ALLOCATED block whose
    payload offset the predicate rejects — the offline reachability
    reclamation that closes the allocate/publish and retire/free crash
    windows (unreachable blocks cost space, never correctness; see
    docs/PROTOCOLS.md §7). Returns [(blocks_freed, bytes_freed)]. The
    caller guarantees the predicate accepts every block reachable from
    any root. *)

(** {1 Introspection} *)

type block_info = { offset : offset; size : int; state : [ `Free | `Reserved | `Allocated ] }

val blocks : t -> block_info list
(** Walk the heap in address order. Diagnostic / test helper. *)

type heap_stats = {
  heap_bytes : int;  (** total heap capacity *)
  live_bytes : int;  (** payload bytes in ALLOCATED blocks *)
  free_bytes : int;
  live_blocks : int;
  free_blocks : int;
}

val heap_stats : t -> heap_stats

type recovery_stats = {
  scanned_blocks : int;
  reclaimed_reserved : int;  (** crashed mid-allocation, returned to free *)
  redone_links : int;  (** activate links replayed *)
  coalesced : int;
}

val last_recovery : t -> recovery_stats option
(** Stats from the [open_existing] that produced this handle; [None] for a
    freshly formatted heap. *)
