module Region = Nvm.Region

(* On-media layout:

     0   magic
     8   version
     16  heap_start
     24  heap_end
     32  root table: [root_slots] x 8 bytes
     ..  heap: sequence of blocks

   Block = 32-byte header followed by the payload:

     +0   payload size in bytes (multiple of 8, >= 8)
     +8   state: 0 free / 1 reserved / 2 allocated
     +16  pending-link address (0 = none); only meaningful when allocated
     +24  pending-link value

   The heap is always walkable from [heap_start] by hopping
   [32 + size]; every mutation is ordered so that a crash at any point
   leaves a valid chain (see the comments at each persist). *)

let magic = 0x4E564D4845415031L (* "NVMHEAP1" *)
let version = 1L
let root_slots = 256
let header_size = 32
let min_payload = 8
let roots_off = 32
let heap_start_value = roots_off + (root_slots * 8)
let min_region_size = heap_start_value + header_size + min_payload

let st_free = 0L
let st_reserved = 1L
let st_allocated = 2L

type offset = int

exception Out_of_space of int
exception Corrupt_heap of string

type recovery_stats = {
  scanned_blocks : int;
  reclaimed_reserved : int;
  redone_links : int;
  coalesced : int;
}

type t = {
  region : Region.t;
  heap_start : int;
  heap_end : int;
  (* volatile segregated free lists: bin k holds free blocks whose payload
     size s satisfies floor(log2 s) = k; keyed by header offset *)
  bins : (int, unit) Hashtbl.t array;
  mutable recovery : recovery_stats option;
}

let region t = t.region

let round8 n = (n + 7) land lnot 7

let log2_floor v =
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let bin_count = 62
let bin_index size = min (log2_floor size) (bin_count - 1)

(* -- header accessors (offsets are header offsets) -- *)

let get_size t h = Region.get_int t.region h
let get_state t h = Region.get_i64 t.region (h + 8)
let get_link_addr t h = Region.get_int t.region (h + 16)
let get_link_value t h = Region.get_i64 t.region (h + 24)

let bin_add t h = Hashtbl.replace t.bins.(bin_index (get_size t h)) h ()

(* recovery already holds every size in a volatile array — no reload *)
let bin_add_sized t h size = Hashtbl.replace t.bins.(bin_index size) h ()
let bin_remove t h = Hashtbl.remove t.bins.(bin_index (get_size t h)) h

let header_of_payload p = p - header_size
let payload_of_header h = h + header_size

(* -- formatting -- *)

let format region =
  if Region.size region < min_region_size then
    invalid_arg "Allocator.format: region too small";
  let heap_end = Region.size region land lnot 7 in
  (* null out the roots *)
  for slot = 0 to root_slots - 1 do
    Region.set_i64 region (roots_off + (slot * 8)) 0L
  done;
  (* single free block spanning the heap *)
  let h = heap_start_value in
  Region.set_int region h (heap_end - h - header_size);
  Region.set_i64 region (h + 8) st_free;
  Region.set_i64 region (h + 16) 0L;
  Region.set_i64 region (h + 24) 0L;
  Region.set_i64 region 16 (Int64.of_int h);
  Region.set_i64 region 24 (Int64.of_int heap_end);
  Region.set_i64 region 8 version;
  Region.persist region 0 (h + header_size);
  (* magic last: its durability is the commit point of formatting *)
  Region.set_i64 region 0 magic;
  Region.persist region 0 8;
  let t =
    {
      region;
      heap_start = h;
      heap_end;
      bins = Array.init bin_count (fun _ -> Hashtbl.create 16);
      recovery = None;
    }
  in
  bin_add t h;
  t

(* -- recovery -- *)

let check_block t h =
  let size = get_size t h in
  if
    size < min_payload
    || size land 7 <> 0
    || h + header_size + size > t.heap_end
  then
    raise
      (Corrupt_heap
         (Printf.sprintf "invalid block header at %d (size %d)" h size))

let open_existing region =
  if Region.size region < min_region_size then
    raise (Corrupt_heap "region smaller than a formatted heap");
  if Region.get_i64 region 0 <> magic then raise (Corrupt_heap "bad magic");
  if Region.get_i64 region 8 <> version then raise (Corrupt_heap "bad version");
  let heap_start = Region.get_int region 16 in
  let heap_end = Region.get_int region 24 in
  if heap_start <> heap_start_value || heap_end > Region.size region then
    raise (Corrupt_heap "bad heap bounds");
  let t =
    {
      region;
      heap_start;
      heap_end;
      bins = Array.init bin_count (fun _ -> Hashtbl.create 16);
      recovery = None;
    }
  in
  (* Recovery in three passes.
     A (serial): skeleton chain walk — the hop to the next header depends
       on each size, so this is inherently sequential; it reads exactly
       one size word per block (after [check_block]'s validation read).
     B (parallel): state/link classification over the recorded offsets —
       pure header reads landing in disjoint array slots, so chunks fan
       out across the pool. Serial when a tracer is attached
       (PROTOCOLS.md §10) and, either way, issues the same loads in the
       same per-block pattern whatever the lane count.
     C (serial): repairs (reclaim reserved, redo links), free-run
       coalescing and bin population, in chain order — these write NVM,
       so they stay on the caller's domain. Bins are filled from the
       volatile record, which also retires the old second chain walk
       (two more loads per block). *)
  let offs = Util.Intbuf.create 1024 in
  let sizes = Util.Intbuf.create 1024 in
  let rec skeleton h =
    if h < heap_end then begin
      check_block t h;
      let size = get_size t h in
      Util.Intbuf.push offs h;
      Util.Intbuf.push sizes size;
      skeleton (h + header_size + size)
    end
  in
  skeleton heap_start;
  let nb = Util.Intbuf.length offs in
  let offs = Util.Intbuf.to_array offs in
  let sizes = Util.Intbuf.to_array sizes in
  let states = Array.make nb 0 in
  let link_addrs = Array.make nb 0 in
  let link_vals = Array.make nb 0L in
  Par.parallel_for
    ~force_serial:(Region.traced region)
    ~min_chunk:64 ~n:nb
    (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        let h = offs.(i) in
        let st = Int64.to_int (get_state t h) in
        states.(i) <- st;
        if st = 2 then begin
          let la = get_link_addr t h in
          link_addrs.(i) <- la;
          if la <> 0 then link_vals.(i) <- get_link_value t h
        end
      done);
  let reclaimed = ref 0
  and redone = ref 0
  and coalesced = ref 0 in
  (* the free run being grown, if any *)
  let run_head = ref (-1) in
  let run_size = ref 0 in
  let free_heads = Util.Intbuf.create 64 in
  let free_sizes = Util.Intbuf.create 64 in
  let close_run () =
    if !run_head >= 0 then begin
      Util.Intbuf.push free_heads !run_head;
      Util.Intbuf.push free_sizes !run_size;
      run_head := -1
    end
  in
  for i = 0 to nb - 1 do
    let h = offs.(i) in
    let size = sizes.(i) in
    let st =
      if states.(i) = 1 then begin
        (* crashed between alloc and activate: reclaim *)
        Region.set_i64 region (h + 8) st_free;
        Region.persist region (h + 8) 8;
        incr reclaimed;
        0
      end
      else states.(i)
    in
    if st = 2 then begin
      if link_addrs.(i) <> 0 then begin
        (* crashed between activation and publication: redo the link *)
        Region.set_i64 region link_addrs.(i) link_vals.(i);
        Region.persist region link_addrs.(i) 8;
        Region.set_i64 region (h + 16) 0L;
        Region.persist region (h + 16) 8;
        incr redone
      end;
      close_run ()
    end
    else if !run_head >= 0 then begin
      (* grow the previous free block over this one; the chain stays
         valid because the enlarged size is persisted atomically *)
      let merged = !run_size + header_size + size in
      Region.set_int region !run_head merged;
      Region.persist region !run_head 8;
      incr coalesced;
      run_size := merged
    end
    else begin
      run_head := h;
      run_size := size
    end
  done;
  close_run ();
  for k = 0 to Util.Intbuf.length free_heads - 1 do
    bin_add_sized t (Util.Intbuf.get free_heads k) (Util.Intbuf.get free_sizes k)
  done;
  t.recovery <-
    Some
      {
        scanned_blocks = nb;
        reclaimed_reserved = !reclaimed;
        redone_links = !redone;
        coalesced = !coalesced;
      };
  t

let last_recovery t = t.recovery

(* -- allocation -- *)

let find_block t nbytes =
  let rec from_bin k =
    if k >= bin_count then raise (Out_of_space nbytes)
    else
      let found = ref None in
      (try
         Hashtbl.iter
           (fun h () ->
             if get_size t h >= nbytes then begin
               found := Some h;
               raise Exit
             end)
           t.bins.(k)
       with Exit -> ());
      match !found with Some h -> h | None -> from_bin (k + 1)
  in
  from_bin (bin_index nbytes)

let alloc t n =
  if n < 0 then invalid_arg "Allocator.alloc: negative size";
  let nbytes = max min_payload (round8 n) in
  let h = find_block t nbytes in
  bin_remove t h;
  let size = get_size t h in
  let r = t.region in
  if size >= nbytes + header_size + min_payload then begin
    (* Split.  The remainder header is persisted first: until h's shrunken
       header is durable, the remainder bytes are plain free-payload and the
       chain is untouched. *)
    let rh = payload_of_header h + nbytes in
    Region.set_int r rh (size - nbytes - header_size);
    Region.set_i64 r (rh + 8) st_free;
    Region.set_i64 r (rh + 16) 0L;
    Region.set_i64 r (rh + 24) 0L;
    Region.persist r rh header_size;
    Region.set_int r h nbytes;
    Region.set_i64 r (h + 8) st_reserved;
    Region.set_i64 r (h + 16) 0L;
    Region.set_i64 r (h + 24) 0L;
    Region.persist r h header_size;
    bin_add t rh
  end
  else begin
    Region.set_i64 r (h + 8) st_reserved;
    Region.set_i64 r (h + 16) 0L;
    Region.set_i64 r (h + 24) 0L;
    Region.persist r h header_size
  end;
  payload_of_header h

let activate ?link t p =
  let h = header_of_payload p in
  let r = t.region in
  if get_state t h <> st_reserved then
    invalid_arg "Allocator.activate: block is not reserved";
  Region.with_label r "allocator.activate" @@ fun () ->
  (match link with
  | None -> ()
  | Some (addr, v) ->
      if addr land 7 <> 0 then
        invalid_arg "Allocator.activate: link address must be 8-byte aligned";
      (* link intent must be durable before the state flips: recovery only
         redoes links of ALLOCATED blocks *)
      Region.set_i64 r (h + 16) (Int64.of_int addr);
      Region.set_i64 r (h + 24) v;
      Region.persist r (h + 16) 16;
      Region.expect_ordered r ~label:"allocator.activate.state"
        ~before:[ (h + 16, 16) ] ~after:(h + 8));
  Region.set_i64 r (h + 8) st_allocated;
  Region.persist r (h + 8) 8;
  match link with
  | None -> ()
  | Some (addr, v) ->
      Region.expect_ordered r ~label:"allocator.activate.link"
        ~before:[ (h + 8, 8) ] ~after:addr;
      Region.set_i64 r addr v;
      Region.persist r addr 8;
      (* retire the intent so a later recovery cannot replay it onto
         memory that has been reused since *)
      Region.set_i64 r (h + 16) 0L;
      Region.persist r (h + 16) 8

let free t p =
  let h = header_of_payload p in
  let r = t.region in
  if get_state t h <> st_allocated && get_state t h <> st_reserved then
    invalid_arg "Allocator.free: double free";
  Region.set_i64 r (h + 8) st_free;
  Region.persist r (h + 8) 8;
  (* forward coalesce: swallowing [next] only grows this block's size, so a
     crash before the persist leaves two valid free blocks *)
  let next = payload_of_header h + get_size t h in
  if next < t.heap_end && get_state t next = st_free then begin
    bin_remove t next;
    Region.set_int r h (get_size t h + header_size + get_size t next);
    Region.persist r h 8
  end;
  bin_add t h

let usable_size t p = get_size t (header_of_payload p)

let sweep t ~live =
  (* collect first: freeing coalesces forward and rewrites sizes *)
  let victims = ref [] in
  let rec scan h =
    if h < t.heap_end then begin
      let size = get_size t h in
      if get_state t h = st_allocated && not (live (payload_of_header h)) then
        victims := (payload_of_header h, size) :: !victims;
      scan (h + header_size + size)
    end
  in
  scan t.heap_start;
  List.iter (fun (p, _) -> free t p) !victims;
  ( List.length !victims,
    List.fold_left (fun acc (_, size) -> acc + size) 0 !victims )

(* -- roots -- *)

let check_slot slot =
  if slot < 0 || slot >= root_slots then
    invalid_arg "Allocator: root slot out of range"

let set_root t slot off =
  check_slot slot;
  Region.set_i64 t.region (roots_off + (slot * 8)) (Int64.of_int off);
  Region.persist t.region (roots_off + (slot * 8)) 8

let get_root t slot =
  check_slot slot;
  Region.get_int t.region (roots_off + (slot * 8))

(* -- introspection -- *)

type block_info = {
  offset : offset;
  size : int;
  state : [ `Free | `Reserved | `Allocated ];
}

let blocks t =
  let rec go h acc =
    if h >= t.heap_end then List.rev acc
    else
      let size = get_size t h in
      let state =
        match get_state t h with
        | s when s = st_free -> `Free
        | s when s = st_reserved -> `Reserved
        | s when s = st_allocated -> `Allocated
        | s -> raise (Corrupt_heap (Printf.sprintf "bad state %Ld at %d" s h))
      in
      go (h + header_size + size)
        ({ offset = payload_of_header h; size; state } :: acc)
  in
  go t.heap_start []

type heap_stats = {
  heap_bytes : int;
  live_bytes : int;
  free_bytes : int;
  live_blocks : int;
  free_blocks : int;
}

let heap_stats t =
  let live_bytes = ref 0
  and free_bytes = ref 0
  and live_blocks = ref 0
  and free_blocks = ref 0 in
  List.iter
    (fun b ->
      match b.state with
      | `Allocated | `Reserved ->
          live_bytes := !live_bytes + b.size;
          incr live_blocks
      | `Free ->
          free_bytes := !free_bytes + b.size;
          incr free_blocks)
    (blocks t);
  {
    heap_bytes = t.heap_end - t.heap_start;
    live_bytes = !live_bytes;
    free_bytes = !free_bytes;
    live_blocks = !live_blocks;
    free_blocks = !free_blocks;
  }
